(* P7 — design-space fuzz campaign (DESIGN.md §16).

   A small fixed-seed campaign over the parameterized pipeline generator:
   every sampled design runs the full differential oracle battery
   (validate, lint admission, elaboration determinism, -j1/-j2 digest
   identity, warm-cache identity, prune-mode identity, portfolio
   identity, taint-grid containment).  The bench gate pins the campaign's
   semantic outputs — zero failures and the deterministic per-design
   netlist digests — while timings stay warn-only. *)

let section = Experiments.section
let check = Experiments.check

type fuzz_row = {
  fz_seed : int;
  fz_count : int;
  fz_designs : int;
  fz_failures : int;
  fz_skipped : int;
  fz_checker_props : int;
  fz_pruned_static : int;
  fz_digests : string;  (* comma-joined per-design netlist digests *)
  fz_t_total : float;
}

let fuzz_result : fuzz_row option ref = ref None

let fuzz_campaign () =
  section "P7" "Design-space fuzzing - generator + differential oracle battery";
  let seed = 42 in
  let count = match Experiments.profile with `Quick -> 2 | `Full -> 8 in
  let summary =
    Fuzz.Driver.campaign ~seed ~count
      ~log:(fun l -> Printf.printf "  %s\n%!" l)
      ()
  in
  let digests =
    String.concat ","
      (List.map
         (fun (_, (o : Fuzz.Oracle.outcome)) -> o.Fuzz.Oracle.netlist_digest)
         summary.Fuzz.Driver.designs)
  in
  let checker_props =
    List.fold_left
      (fun acc (_, (o : Fuzz.Oracle.outcome)) -> acc + o.Fuzz.Oracle.checker_props)
      0 summary.Fuzz.Driver.designs
  in
  let pruned =
    List.fold_left
      (fun acc (_, (o : Fuzz.Oracle.outcome)) ->
        acc + o.Fuzz.Oracle.pruned_static + o.Fuzz.Oracle.flow_pruned_static)
      0 summary.Fuzz.Driver.designs
  in
  Printf.printf
    "  %d designs, %d failures, %d skipped, %d checker props, %d covers \
     statically pruned, %.1fs\n"
    (List.length summary.Fuzz.Driver.designs)
    (List.length summary.Fuzz.Driver.failures)
    summary.Fuzz.Driver.skipped checker_props pruned
    summary.Fuzz.Driver.total_time_s;
  check "fuzz campaign ran every requested design"
    (List.length summary.Fuzz.Driver.designs = count
    && summary.Fuzz.Driver.skipped = 0);
  check "every oracle green on every generated design"
    (summary.Fuzz.Driver.failures = []);
  check "static prunes had work on generated designs" (pruned > 0);
  fuzz_result :=
    Some
      {
        fz_seed = seed;
        fz_count = count;
        fz_designs = List.length summary.Fuzz.Driver.designs;
        fz_failures = List.length summary.Fuzz.Driver.failures;
        fz_skipped = summary.Fuzz.Driver.skipped;
        fz_checker_props = checker_props;
        fz_pruned_static = pruned;
        fz_digests = digests;
        fz_t_total = summary.Fuzz.Driver.total_time_s;
      }

(* P8 — known-bits abstract interpretation (DESIGN.md §17).

   One dataflow core ({!Hdl.Absint}) feeds three clients; this experiment
   pins each one's contract:

   - prune: the gated demo DUV's "gate" µFSM keeps two states the plain
     FSM abstraction cannot kill but known-bits can — the absint prune
     must discharge both, and the report digest must be bit-identical
     across --absint on/off/audit (pruned counters are digest-excluded,
     pruned state names are digest-included in every mode);
   - SAT substitution: re-running the P6 cover batch with
     [Checker.known_bits] off must allocate strictly more induction-side
     solver variables while synthesizing the identical µPATH set (the
     BMC side is digest- and CNF-identical by construction: per-step
     folding of the reset constants subsumes the substitution there);
   - lint: the A-series pass must produce diagnostics on the built-in
     designs (all informational — built-ins stay warning-free). *)

type absint_row = {
  ab_covers_pruned : int;  (* absint-discharged covers, mode on *)
  ab_pruned_static : int;  (* base static prune, for scale *)
  ab_t_on : float;
  ab_t_off : float;
  ab_t_audit : float;
  ab_equal : bool;  (* digests identical across on/off/audit *)
  ab_digest : string;
  ab_vars_kb_on : int;  (* induction solver vars, known-bits on *)
  ab_vars_kb_off : int;
  ab_kb_equal : bool;  (* substitution preserves the synthesized set *)
  ab_lint_info : int;  (* A-series diagnostics across built-in designs *)
}

let absint_result : absint_row option ref = ref None

let absint_bench () =
  section "P8"
    "Known-bits absint - tri-mode prune identity, SAT substitution, A-series \
     lint";
  (* Tri-mode engine runs on the gated demo DUV (see Designs.Gated). *)
  let gated_config =
    {
      Mc.Checker.default_config with
      Mc.Checker.bmc_depth = 10;
      sim_episodes = 8;
      sim_cycles = 16;
    }
  in
  let run_gated absint =
    let t0 = Unix.gettimeofday () in
    let r =
      Synthlc.Engine.run ~config:gated_config ~synth_config:gated_config
        ~absint
        ~design:(fun () -> Designs.Gated.build ())
        ~jobs:1
        ~instructions:[ Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD ]
        ~transmitters:[ Isa.ADD ]
        ~kinds:[ Synthlc.Types.Intrinsic ]
        ~revisit_count_labels:[] ~iuv_pc:Designs.Gated.iuv_pc ()
    in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_on, r_on = run_gated Synthlc.Types.Prune_on in
  let t_off, r_off = run_gated Synthlc.Types.Prune_off in
  let t_audit, r_audit = run_gated Synthlc.Types.Prune_audit in
  let sum_stage f (r : Synthlc.Engine.report) =
    List.fold_left
      (fun acc (t : Synthlc.Engine.transponder_report) ->
        List.fold_left
          (fun acc (_, (s : Mupath.Synth.stage_stats)) -> acc + f s)
          acc t.Synthlc.Engine.synth.Mupath.Synth.stage_stats)
      0 r.Synthlc.Engine.transponders
  in
  let covers_pruned =
    sum_stage (fun s -> s.Mupath.Synth.pruned_absint) r_on
  in
  let pruned_static =
    sum_stage (fun s -> s.Mupath.Synth.pruned_static) r_on
  in
  let dg_on = Synthlc.Engine.report_digest r_on in
  let dg_off = Synthlc.Engine.report_digest r_off in
  let dg_audit = Synthlc.Engine.report_digest r_audit in
  Printf.printf
    "  absint on   : %6.1fs (%d covers known-bits-pruned, %d static-pruned)\n"
    t_on covers_pruned pruned_static;
  Printf.printf "  absint off  : %6.1fs (pruned covers re-dispatched)\n" t_off;
  Printf.printf "  absint audit: %6.1fs\n" t_audit;
  Printf.printf "  report digests: on %s, off %s, audit %s\n" dg_on dg_off
    dg_audit;
  check "known-bits prune discharges covers beyond the FSM abstraction"
    (covers_pruned > 0);
  check "report digest identical across absint on/off/audit"
    (dg_on = dg_off && dg_on = dg_audit);
  (* SAT substitution on a cold cover batch (the P6 batch shape, on the
     gated DUV — the workload with register-level known bits in both
     profiles): same synthesized set, fewer induction-side solver
     variables.  Var count is an encoder property, not a solve-time one,
     so the depth stays at the workload default. *)
  let batch_config kb =
    {
      gated_config with
      Mc.Checker.sim_episodes = 0;
      known_bits = kb;
    }
  in
  let run_batch kb =
    let meta = Designs.Gated.build () in
    Obs.enable ();
    Obs.reset ();
    let r =
      Mupath.Synth.run ~config:(batch_config kb) ~presim_episodes:0 ~meta
        ~iuv:(Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD)
        ~iuv_pc:Designs.Gated.iuv_pc ()
    in
    let snap = Obs.Metrics.snapshot () in
    Obs.disable ();
    Obs.reset ();
    let vars =
      int_of_float (try List.assoc "sat.ind_vars" snap with Not_found -> 0.)
    in
    (vars, r)
  in
  let vars_kb, r_kb = run_batch true in
  let vars_plain, r_plain = run_batch false in
  Printf.printf
    "  cover batch induction vars: %d (known-bits on) vs %d (off), %d saved\n"
    vars_kb vars_plain (vars_plain - vars_kb);
  check "known-bits substitution drops induction solver variables"
    (vars_kb < vars_plain);
  let kb_equal =
    r_kb.Mupath.Synth.paths = r_plain.Mupath.Synth.paths
    && r_kb.Mupath.Synth.decisions = r_plain.Mupath.Synth.decisions
  in
  check "substitution preserves the synthesized uPATH set" kb_equal;
  (* A-series lint across the built-in designs: the pass has real findings
     (stuck registers, dead mux arms) but every one is informational. *)
  let designs =
    [
      Designs.Ibex.build ();
      Designs.Core.build Designs.Core.baseline;
      Designs.Gated.build ();
    ]
  in
  let a_diags =
    List.concat_map
      (fun meta ->
        List.filter
          (fun (d : Lint.Diagnostic.t) -> d.Lint.Diagnostic.code.[0] = 'A')
          (Lint.Driver.run_design meta).Lint.Diagnostic.diags)
      designs
  in
  Printf.printf "  A-series lint: %d diagnostic(s) across %d built-ins\n"
    (List.length a_diags) (List.length designs);
  check "A-series lint fires on the built-in designs" (a_diags <> []);
  check "A-series findings are all informational"
    (List.for_all
       (fun (d : Lint.Diagnostic.t) ->
         d.Lint.Diagnostic.severity = Lint.Diagnostic.Info)
       a_diags);
  absint_result :=
    Some
      {
        ab_covers_pruned = covers_pruned;
        ab_pruned_static = pruned_static;
        ab_t_on = t_on;
        ab_t_off = t_off;
        ab_t_audit = t_audit;
        ab_equal = dg_on = dg_off && dg_on = dg_audit;
        ab_digest = dg_on;
        ab_vars_kb_on = vars_kb;
        ab_vars_kb_off = vars_plain;
        ab_kb_equal = kb_equal;
        ab_lint_info = List.length a_diags;
      }

(* P9 — Yosys-JSON frontend (DESIGN.md §18).

   The importer's contract is that an exported built-in re-imports as the
   structurally identical netlist ([Hdl.Netlist.digest] fixpoint, zero
   admission warnings), and that a synthesis run over the imported design
   produces the bit-identical µPATH report.  The bench gate pins both:
   per-design round-trip digests and the imported-vs-builtin report
   digest on the gated DUV.  Export/import wall times stay warn-only. *)

type frontend_row = {
  fe_designs : int;  (* built-ins round-tripped *)
  fe_roundtrip_identical : bool;  (* digest fixpoint on every design *)
  fe_warnings : int;  (* admission warnings across all round trips *)
  fe_digests : string;  (* comma-joined per-design netlist digests *)
  fe_t_export : float;
  fe_t_import : float;
  fe_run_identical : bool;  (* imported-vs-builtin report digest, gated *)
  fe_run_digest : string;
  fe_t_run : float;  (* mupath on the imported gated DUV *)
}

let frontend_result : frontend_row option ref = ref None

let frontend_bench () =
  section "P9" "Yosys-JSON frontend - round-trip fixpoint + imported-run identity";
  let builtins =
    [
      ("cva6_lite", fun () -> Designs.Core.build Designs.Core.baseline);
      ("ibex_lite", fun () -> Designs.Ibex.build ());
      ("gated", fun () -> Designs.Gated.build ());
      ("cva6_cache", fun () -> Designs.Cache.build ());
    ]
  in
  let t_export = ref 0. and t_import = ref 0. in
  let warnings = ref 0 in
  let identical = ref true in
  let digests =
    List.map
      (fun (name, build) ->
        let meta = build () in
        let nl = meta.Designs.Meta.nl in
        let t0 = Unix.gettimeofday () in
        let js = Frontend.Yosys.export_string nl in
        t_export := !t_export +. (Unix.gettimeofday () -. t0);
        let t1 = Unix.gettimeofday () in
        let imp = Frontend.Yosys.import_string ~design:name js in
        t_import := !t_import +. (Unix.gettimeofday () -. t1);
        warnings := !warnings + List.length imp.Frontend.Yosys.warnings;
        let d0 = Hdl.Netlist.digest nl
        and d1 = Hdl.Netlist.digest imp.Frontend.Yosys.nl in
        if d0 <> d1 then identical := false;
        Printf.printf "  %-10s %s -> %s (%d bytes, %d warning(s))\n" name
          (String.sub d0 0 12) (String.sub d1 0 12) (String.length js)
          (List.length imp.Frontend.Yosys.warnings);
        d0)
      builtins
  in
  check "export -> import is the netlist-digest identity on every built-in"
    !identical;
  check "round trips admit with zero warnings" (!warnings = 0);
  Printf.printf "  export %.3fs, import %.3fs across %d designs\n" !t_export
    !t_import (List.length builtins);
  (* Imported-run identity: synthesize on the gated DUV rebuilt from its
     own export + sidecar and demand the bit-identical report. *)
  let run meta =
    let config =
      {
        Mc.Checker.default_config with
        Mc.Checker.bmc_depth = 10;
        sim_episodes = 8;
        sim_cycles = 16;
      }
    in
    Mupath.Synth.run ~config ~meta
      ~iuv:(Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD)
      ~iuv_pc:Designs.Gated.iuv_pc ()
  in
  let builtin_meta = Designs.Gated.build () in
  let imported =
    let js = Frontend.Yosys.export_string builtin_meta.Designs.Meta.nl in
    let imp = Frontend.Yosys.import_string ~design:"gated" js in
    let sidecar =
      Frontend.Sidecar.of_meta ~stimulus:Frontend.Sidecar.S_none
        ~iuv_pc:Designs.Gated.iuv_pc builtin_meta
    in
    Frontend.Sidecar.resolve imp.Frontend.Yosys.nl sidecar
  in
  let r_builtin = run builtin_meta in
  let t2 = Unix.gettimeofday () in
  let r_imported = run imported.Frontend.Sidecar.meta in
  let t_run = Unix.gettimeofday () -. t2 in
  let dg_builtin = Mupath.Synth.result_digest r_builtin in
  let dg_imported = Mupath.Synth.result_digest r_imported in
  Printf.printf "  gated report digest: builtin %s, imported %s (%.1fs)\n"
    dg_builtin dg_imported t_run;
  check "imported gated DUV synthesizes the bit-identical report"
    (dg_builtin = dg_imported);
  frontend_result :=
    Some
      {
        fe_designs = List.length builtins;
        fe_roundtrip_identical = !identical;
        fe_warnings = !warnings;
        fe_digests = String.concat "," digests;
        fe_t_export = !t_export;
        fe_t_import = !t_import;
        fe_run_identical = dg_builtin = dg_imported;
        fe_run_digest = dg_builtin;
        fe_t_run = t_run;
      }

(* P10 — equivalence-aware netlist reduction (DESIGN.md §19).

   Three contracts of the SAT sweep, pinned on gate-level variants
   produced by {!Hdl.Gateify} (the committed examples/ibex_lite_gl.json
   is this lowering serialized):

   - reduction: the gate-level ibex_lite sweeps at least 20% of its
     combinational nodes away (merge ratio is a semantic gate key);
   - tri-mode identity: a synthesis run over the gate-level gated DUV is
     report-digest-identical with sweep off / on / audit, and identical
     to the word-level original — canonical witnesses make the verdict
     stream encoding-independent;
   - semantic cache: a cold gate-level run fills the behavioral-key
     namespace and the word-level original replays from it warm with
     zero misses.  Wall-clock (off vs on) stays warn-only. *)

type sweep_row = {
  sw_comb_nodes : int;  (* gate-level ibex_lite combinational nodes *)
  sw_merged : int;  (* nodes swept away *)
  sw_classes : int;  (* proven classes with at least one merge *)
  sw_t_off : float;  (* gl gated synth, sweep off *)
  sw_t_on : float;  (* gl gated synth, sweep on *)
  sw_equal : bool;  (* digest identical off/on/audit + word-level *)
  sw_digest : string;
  sw_sem_hits : int;  (* warm word-level run, semantic namespace *)
  sw_sem_misses : int;
  sw_sem_equal : bool;  (* cross-variant cached digests identical *)
}

let sweep_result : sweep_row option ref = ref None

(* Gate-level variant of a built-in, metadata re-resolved by name over
   the lowered netlist — the in-process equivalent of export --gate-level
   followed by import. *)
let gl_variant ~stimulus ~iuv_pc build =
  let meta = build () in
  let gl_nl, _ = Hdl.Gateify.run meta.Designs.Meta.nl in
  let sc =
    Frontend.Sidecar.resolve gl_nl
      (Frontend.Sidecar.of_meta ~stimulus ~iuv_pc meta)
  in
  sc.Frontend.Sidecar.meta

let sweep_bench () =
  section "P10"
    "Equivalence sweep - gate-level reduction, tri-mode identity, semantic \
     cache";
  (* Reduction ratio on the gate-level ibex_lite. *)
  let gl_ibex =
    gl_variant ~stimulus:Frontend.Sidecar.S_ibex ~iuv_pc:2 Designs.Ibex.build
  in
  let _, _, stats =
    Hdl.Equiv.reduce
      ~barriers:(Designs.Meta.signals gl_ibex)
      gl_ibex.Designs.Meta.nl
  in
  let ratio =
    float_of_int stats.Hdl.Equiv.merged
    /. float_of_int (max 1 stats.Hdl.Equiv.comb_nodes)
  in
  Printf.printf
    "  gate-level ibex_lite: %d/%d comb nodes merged (%.1f%%), %d classes, \
     %d SAT queries\n"
    stats.Hdl.Equiv.merged stats.Hdl.Equiv.comb_nodes (100. *. ratio)
    stats.Hdl.Equiv.classes stats.Hdl.Equiv.sat_queries;
  check "gate-level sweep merges at least 20% of combinational nodes"
    (ratio >= 0.20);
  (* Tri-mode synthesis identity on the gate-level gated DUV. *)
  let gated_config =
    {
      Mc.Checker.default_config with
      Mc.Checker.bmc_depth = 10;
      sim_episodes = 8;
      sim_cycles = 16;
    }
  in
  let gl_gated () =
    gl_variant ~stimulus:Frontend.Sidecar.S_none ~iuv_pc:Designs.Gated.iuv_pc
      Designs.Gated.build
  in
  let run ?cache ?(semantic_cache = false) ~sweep meta =
    let t0 = Unix.gettimeofday () in
    let r =
      Mupath.Synth.run ?cache ~semantic_cache
        ~config:{ gated_config with Mc.Checker.sweep }
        ~meta
        ~iuv:(Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD)
        ~iuv_pc:Designs.Gated.iuv_pc ()
    in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_off, r_off = run ~sweep:Mc.Checker.Sweep_off (gl_gated ()) in
  let t_on, r_on = run ~sweep:Mc.Checker.Sweep_on (gl_gated ()) in
  let t_audit, r_audit = run ~sweep:Mc.Checker.Sweep_audit (gl_gated ()) in
  let _, r_word = run ~sweep:Mc.Checker.Sweep_off (Designs.Gated.build ()) in
  let dg_off = Mupath.Synth.result_digest r_off in
  let dg_on = Mupath.Synth.result_digest r_on in
  let dg_audit = Mupath.Synth.result_digest r_audit in
  let dg_word = Mupath.Synth.result_digest r_word in
  Printf.printf "  gl gated: off %.1fs, on %.1fs, audit %.1fs\n" t_off t_on
    t_audit;
  Printf.printf "  report digests: off %s, on %s, audit %s, word-level %s\n"
    dg_off dg_on dg_audit dg_word;
  let equal = dg_off = dg_on && dg_off = dg_audit && dg_off = dg_word in
  check "report digest identical across sweep off/on/audit and variants" equal;
  (* Semantic cache: cold gate-level fill, warm word-level replay. *)
  let dir = "_vcache_sweep_bench" in
  ignore (Vcache.clear_dir ~dir);
  let cold = Vcache.create ~dir () in
  let _, r_cold =
    run ~cache:cold ~semantic_cache:true ~sweep:Mc.Checker.Sweep_on
      (gl_gated ())
  in
  let warm = Vcache.create ~dir () in
  let _, r_warm =
    run ~cache:warm ~semantic_cache:true ~sweep:Mc.Checker.Sweep_on
      (Designs.Gated.build ())
  in
  let hits, misses, _ = Vcache.counters warm in
  let sem_equal =
    Mupath.Synth.result_digest r_cold = Mupath.Synth.result_digest r_warm
  in
  ignore (Vcache.clear_dir ~dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  Printf.printf
    "  semantic cache: warm word-level run %d hits / %d misses, digest %s\n"
    hits misses
    (if sem_equal then "identical" else "DIVERGED");
  check "semantic namespace: word-level run replays the gate-level fill"
    (hits > 0 && misses = 0);
  check "cross-variant cached digests identical" sem_equal;
  sweep_result :=
    Some
      {
        sw_comb_nodes = stats.Hdl.Equiv.comb_nodes;
        sw_merged = stats.Hdl.Equiv.merged;
        sw_classes = stats.Hdl.Equiv.classes;
        sw_t_off = t_off;
        sw_t_on = t_on;
        sw_equal = equal;
        sw_digest = dg_off;
        sw_sem_hits = hits;
        sw_sem_misses = misses;
        sw_sem_equal = sem_equal;
      }
