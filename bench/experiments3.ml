(* P7 — design-space fuzz campaign (DESIGN.md §16).

   A small fixed-seed campaign over the parameterized pipeline generator:
   every sampled design runs the full differential oracle battery
   (validate, lint admission, elaboration determinism, -j1/-j2 digest
   identity, warm-cache identity, prune-mode identity, portfolio
   identity, taint-grid containment).  The bench gate pins the campaign's
   semantic outputs — zero failures and the deterministic per-design
   netlist digests — while timings stay warn-only. *)

let section = Experiments.section
let check = Experiments.check

type fuzz_row = {
  fz_seed : int;
  fz_count : int;
  fz_designs : int;
  fz_failures : int;
  fz_skipped : int;
  fz_checker_props : int;
  fz_pruned_static : int;
  fz_digests : string;  (* comma-joined per-design netlist digests *)
  fz_t_total : float;
}

let fuzz_result : fuzz_row option ref = ref None

let fuzz_campaign () =
  section "P7" "Design-space fuzzing - generator + differential oracle battery";
  let seed = 42 in
  let count = match Experiments.profile with `Quick -> 2 | `Full -> 8 in
  let summary =
    Fuzz.Driver.campaign ~seed ~count
      ~log:(fun l -> Printf.printf "  %s\n%!" l)
      ()
  in
  let digests =
    String.concat ","
      (List.map
         (fun (_, (o : Fuzz.Oracle.outcome)) -> o.Fuzz.Oracle.netlist_digest)
         summary.Fuzz.Driver.designs)
  in
  let checker_props =
    List.fold_left
      (fun acc (_, (o : Fuzz.Oracle.outcome)) -> acc + o.Fuzz.Oracle.checker_props)
      0 summary.Fuzz.Driver.designs
  in
  let pruned =
    List.fold_left
      (fun acc (_, (o : Fuzz.Oracle.outcome)) ->
        acc + o.Fuzz.Oracle.pruned_static + o.Fuzz.Oracle.flow_pruned_static)
      0 summary.Fuzz.Driver.designs
  in
  Printf.printf
    "  %d designs, %d failures, %d skipped, %d checker props, %d covers \
     statically pruned, %.1fs\n"
    (List.length summary.Fuzz.Driver.designs)
    (List.length summary.Fuzz.Driver.failures)
    summary.Fuzz.Driver.skipped checker_props pruned
    summary.Fuzz.Driver.total_time_s;
  check "fuzz campaign ran every requested design"
    (List.length summary.Fuzz.Driver.designs = count
    && summary.Fuzz.Driver.skipped = 0);
  check "every oracle green on every generated design"
    (summary.Fuzz.Driver.failures = []);
  check "static prunes had work on generated designs" (pruned > 0);
  fuzz_result :=
    Some
      {
        fz_seed = seed;
        fz_count = count;
        fz_designs = List.length summary.Fuzz.Driver.designs;
        fz_failures = List.length summary.Fuzz.Driver.failures;
        fz_skipped = summary.Fuzz.Driver.skipped;
        fz_checker_props = checker_props;
        fz_pruned_static = pruned;
        fz_digests = digests;
        fz_t_total = summary.Fuzz.Driver.total_time_s;
      }

(* P8 — known-bits abstract interpretation (DESIGN.md §17).

   One dataflow core ({!Hdl.Absint}) feeds three clients; this experiment
   pins each one's contract:

   - prune: the gated demo DUV's "gate" µFSM keeps two states the plain
     FSM abstraction cannot kill but known-bits can — the absint prune
     must discharge both, and the report digest must be bit-identical
     across --absint on/off/audit (pruned counters are digest-excluded,
     pruned state names are digest-included in every mode);
   - SAT substitution: re-running the P6 cover batch with
     [Checker.known_bits] off must allocate strictly more induction-side
     solver variables while synthesizing the identical µPATH set (the
     BMC side is digest- and CNF-identical by construction: per-step
     folding of the reset constants subsumes the substitution there);
   - lint: the A-series pass must produce diagnostics on the built-in
     designs (all informational — built-ins stay warning-free). *)

type absint_row = {
  ab_covers_pruned : int;  (* absint-discharged covers, mode on *)
  ab_pruned_static : int;  (* base static prune, for scale *)
  ab_t_on : float;
  ab_t_off : float;
  ab_t_audit : float;
  ab_equal : bool;  (* digests identical across on/off/audit *)
  ab_digest : string;
  ab_vars_kb_on : int;  (* induction solver vars, known-bits on *)
  ab_vars_kb_off : int;
  ab_kb_equal : bool;  (* substitution preserves the synthesized set *)
  ab_lint_info : int;  (* A-series diagnostics across built-in designs *)
}

let absint_result : absint_row option ref = ref None

let absint_bench () =
  section "P8"
    "Known-bits absint - tri-mode prune identity, SAT substitution, A-series \
     lint";
  (* Tri-mode engine runs on the gated demo DUV (see Designs.Gated). *)
  let gated_config =
    {
      Mc.Checker.default_config with
      Mc.Checker.bmc_depth = 10;
      sim_episodes = 8;
      sim_cycles = 16;
    }
  in
  let run_gated absint =
    let t0 = Unix.gettimeofday () in
    let r =
      Synthlc.Engine.run ~config:gated_config ~synth_config:gated_config
        ~absint
        ~design:(fun () -> Designs.Gated.build ())
        ~jobs:1
        ~instructions:[ Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD ]
        ~transmitters:[ Isa.ADD ]
        ~kinds:[ Synthlc.Types.Intrinsic ]
        ~revisit_count_labels:[] ~iuv_pc:Designs.Gated.iuv_pc ()
    in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_on, r_on = run_gated Synthlc.Types.Prune_on in
  let t_off, r_off = run_gated Synthlc.Types.Prune_off in
  let t_audit, r_audit = run_gated Synthlc.Types.Prune_audit in
  let sum_stage f (r : Synthlc.Engine.report) =
    List.fold_left
      (fun acc (t : Synthlc.Engine.transponder_report) ->
        List.fold_left
          (fun acc (_, (s : Mupath.Synth.stage_stats)) -> acc + f s)
          acc t.Synthlc.Engine.synth.Mupath.Synth.stage_stats)
      0 r.Synthlc.Engine.transponders
  in
  let covers_pruned =
    sum_stage (fun s -> s.Mupath.Synth.pruned_absint) r_on
  in
  let pruned_static =
    sum_stage (fun s -> s.Mupath.Synth.pruned_static) r_on
  in
  let dg_on = Synthlc.Engine.report_digest r_on in
  let dg_off = Synthlc.Engine.report_digest r_off in
  let dg_audit = Synthlc.Engine.report_digest r_audit in
  Printf.printf
    "  absint on   : %6.1fs (%d covers known-bits-pruned, %d static-pruned)\n"
    t_on covers_pruned pruned_static;
  Printf.printf "  absint off  : %6.1fs (pruned covers re-dispatched)\n" t_off;
  Printf.printf "  absint audit: %6.1fs\n" t_audit;
  Printf.printf "  report digests: on %s, off %s, audit %s\n" dg_on dg_off
    dg_audit;
  check "known-bits prune discharges covers beyond the FSM abstraction"
    (covers_pruned > 0);
  check "report digest identical across absint on/off/audit"
    (dg_on = dg_off && dg_on = dg_audit);
  (* SAT substitution on a cold cover batch (the P6 batch shape, on the
     gated DUV — the workload with register-level known bits in both
     profiles): same synthesized set, fewer induction-side solver
     variables.  Var count is an encoder property, not a solve-time one,
     so the depth stays at the workload default. *)
  let batch_config kb =
    {
      gated_config with
      Mc.Checker.sim_episodes = 0;
      known_bits = kb;
    }
  in
  let run_batch kb =
    let meta = Designs.Gated.build () in
    Obs.enable ();
    Obs.reset ();
    let r =
      Mupath.Synth.run ~config:(batch_config kb) ~presim_episodes:0 ~meta
        ~iuv:(Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD)
        ~iuv_pc:Designs.Gated.iuv_pc ()
    in
    let snap = Obs.Metrics.snapshot () in
    Obs.disable ();
    Obs.reset ();
    let vars =
      int_of_float (try List.assoc "sat.ind_vars" snap with Not_found -> 0.)
    in
    (vars, r)
  in
  let vars_kb, r_kb = run_batch true in
  let vars_plain, r_plain = run_batch false in
  Printf.printf
    "  cover batch induction vars: %d (known-bits on) vs %d (off), %d saved\n"
    vars_kb vars_plain (vars_plain - vars_kb);
  check "known-bits substitution drops induction solver variables"
    (vars_kb < vars_plain);
  let kb_equal =
    r_kb.Mupath.Synth.paths = r_plain.Mupath.Synth.paths
    && r_kb.Mupath.Synth.decisions = r_plain.Mupath.Synth.decisions
  in
  check "substitution preserves the synthesized uPATH set" kb_equal;
  (* A-series lint across the built-in designs: the pass has real findings
     (stuck registers, dead mux arms) but every one is informational. *)
  let designs =
    [
      Designs.Ibex.build ();
      Designs.Core.build Designs.Core.baseline;
      Designs.Gated.build ();
    ]
  in
  let a_diags =
    List.concat_map
      (fun meta ->
        List.filter
          (fun (d : Lint.Diagnostic.t) -> d.Lint.Diagnostic.code.[0] = 'A')
          (Lint.Driver.run_design meta).Lint.Diagnostic.diags)
      designs
  in
  Printf.printf "  A-series lint: %d diagnostic(s) across %d built-ins\n"
    (List.length a_diags) (List.length designs);
  check "A-series lint fires on the built-in designs" (a_diags <> []);
  check "A-series findings are all informational"
    (List.for_all
       (fun (d : Lint.Diagnostic.t) ->
         d.Lint.Diagnostic.severity = Lint.Diagnostic.Info)
       a_diags);
  absint_result :=
    Some
      {
        ab_covers_pruned = covers_pruned;
        ab_pruned_static = pruned_static;
        ab_t_on = t_on;
        ab_t_off = t_off;
        ab_t_audit = t_audit;
        ab_equal = dg_on = dg_off && dg_on = dg_audit;
        ab_digest = dg_on;
        ab_vars_kb_on = vars_kb;
        ab_vars_kb_off = vars_plain;
        ab_kb_equal = kb_equal;
        ab_lint_info = List.length a_diags;
      }

(* P9 — Yosys-JSON frontend (DESIGN.md §18).

   The importer's contract is that an exported built-in re-imports as the
   structurally identical netlist ([Hdl.Netlist.digest] fixpoint, zero
   admission warnings), and that a synthesis run over the imported design
   produces the bit-identical µPATH report.  The bench gate pins both:
   per-design round-trip digests and the imported-vs-builtin report
   digest on the gated DUV.  Export/import wall times stay warn-only. *)

type frontend_row = {
  fe_designs : int;  (* built-ins round-tripped *)
  fe_roundtrip_identical : bool;  (* digest fixpoint on every design *)
  fe_warnings : int;  (* admission warnings across all round trips *)
  fe_digests : string;  (* comma-joined per-design netlist digests *)
  fe_t_export : float;
  fe_t_import : float;
  fe_run_identical : bool;  (* imported-vs-builtin report digest, gated *)
  fe_run_digest : string;
  fe_t_run : float;  (* mupath on the imported gated DUV *)
}

let frontend_result : frontend_row option ref = ref None

let frontend_bench () =
  section "P9" "Yosys-JSON frontend - round-trip fixpoint + imported-run identity";
  let builtins =
    [
      ("cva6_lite", fun () -> Designs.Core.build Designs.Core.baseline);
      ("ibex_lite", fun () -> Designs.Ibex.build ());
      ("gated", fun () -> Designs.Gated.build ());
      ("cva6_cache", fun () -> Designs.Cache.build ());
    ]
  in
  let t_export = ref 0. and t_import = ref 0. in
  let warnings = ref 0 in
  let identical = ref true in
  let digests =
    List.map
      (fun (name, build) ->
        let meta = build () in
        let nl = meta.Designs.Meta.nl in
        let t0 = Unix.gettimeofday () in
        let js = Frontend.Yosys.export_string nl in
        t_export := !t_export +. (Unix.gettimeofday () -. t0);
        let t1 = Unix.gettimeofday () in
        let imp = Frontend.Yosys.import_string ~design:name js in
        t_import := !t_import +. (Unix.gettimeofday () -. t1);
        warnings := !warnings + List.length imp.Frontend.Yosys.warnings;
        let d0 = Hdl.Netlist.digest nl
        and d1 = Hdl.Netlist.digest imp.Frontend.Yosys.nl in
        if d0 <> d1 then identical := false;
        Printf.printf "  %-10s %s -> %s (%d bytes, %d warning(s))\n" name
          (String.sub d0 0 12) (String.sub d1 0 12) (String.length js)
          (List.length imp.Frontend.Yosys.warnings);
        d0)
      builtins
  in
  check "export -> import is the netlist-digest identity on every built-in"
    !identical;
  check "round trips admit with zero warnings" (!warnings = 0);
  Printf.printf "  export %.3fs, import %.3fs across %d designs\n" !t_export
    !t_import (List.length builtins);
  (* Imported-run identity: synthesize on the gated DUV rebuilt from its
     own export + sidecar and demand the bit-identical report. *)
  let run meta =
    let config =
      {
        Mc.Checker.default_config with
        Mc.Checker.bmc_depth = 10;
        sim_episodes = 8;
        sim_cycles = 16;
      }
    in
    Mupath.Synth.run ~config ~meta
      ~iuv:(Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD)
      ~iuv_pc:Designs.Gated.iuv_pc ()
  in
  let builtin_meta = Designs.Gated.build () in
  let imported =
    let js = Frontend.Yosys.export_string builtin_meta.Designs.Meta.nl in
    let imp = Frontend.Yosys.import_string ~design:"gated" js in
    let sidecar =
      Frontend.Sidecar.of_meta ~stimulus:Frontend.Sidecar.S_none
        ~iuv_pc:Designs.Gated.iuv_pc builtin_meta
    in
    Frontend.Sidecar.resolve imp.Frontend.Yosys.nl sidecar
  in
  let r_builtin = run builtin_meta in
  let t2 = Unix.gettimeofday () in
  let r_imported = run imported.Frontend.Sidecar.meta in
  let t_run = Unix.gettimeofday () -. t2 in
  let dg_builtin = Mupath.Synth.result_digest r_builtin in
  let dg_imported = Mupath.Synth.result_digest r_imported in
  Printf.printf "  gated report digest: builtin %s, imported %s (%.1fs)\n"
    dg_builtin dg_imported t_run;
  check "imported gated DUV synthesizes the bit-identical report"
    (dg_builtin = dg_imported);
  frontend_result :=
    Some
      {
        fe_designs = List.length builtins;
        fe_roundtrip_identical = !identical;
        fe_warnings = !warnings;
        fe_digests = String.concat "," digests;
        fe_t_export = !t_export;
        fe_t_import = !t_import;
        fe_run_identical = dg_builtin = dg_imported;
        fe_run_digest = dg_builtin;
        fe_t_run = t_run;
      }
