(* P7 — design-space fuzz campaign (DESIGN.md §16).

   A small fixed-seed campaign over the parameterized pipeline generator:
   every sampled design runs the full differential oracle battery
   (validate, lint admission, elaboration determinism, -j1/-j2 digest
   identity, warm-cache identity, prune-mode identity, portfolio
   identity, taint-grid containment).  The bench gate pins the campaign's
   semantic outputs — zero failures and the deterministic per-design
   netlist digests — while timings stay warn-only. *)

let section = Experiments.section
let check = Experiments.check

type fuzz_row = {
  fz_seed : int;
  fz_count : int;
  fz_designs : int;
  fz_failures : int;
  fz_skipped : int;
  fz_checker_props : int;
  fz_pruned_static : int;
  fz_digests : string;  (* comma-joined per-design netlist digests *)
  fz_t_total : float;
}

let fuzz_result : fuzz_row option ref = ref None

let fuzz_campaign () =
  section "P7" "Design-space fuzzing - generator + differential oracle battery";
  let seed = 42 in
  let count = match Experiments.profile with `Quick -> 2 | `Full -> 8 in
  let summary =
    Fuzz.Driver.campaign ~seed ~count
      ~log:(fun l -> Printf.printf "  %s\n%!" l)
      ()
  in
  let digests =
    String.concat ","
      (List.map
         (fun (_, (o : Fuzz.Oracle.outcome)) -> o.Fuzz.Oracle.netlist_digest)
         summary.Fuzz.Driver.designs)
  in
  let checker_props =
    List.fold_left
      (fun acc (_, (o : Fuzz.Oracle.outcome)) -> acc + o.Fuzz.Oracle.checker_props)
      0 summary.Fuzz.Driver.designs
  in
  let pruned =
    List.fold_left
      (fun acc (_, (o : Fuzz.Oracle.outcome)) ->
        acc + o.Fuzz.Oracle.pruned_static + o.Fuzz.Oracle.flow_pruned_static)
      0 summary.Fuzz.Driver.designs
  in
  Printf.printf
    "  %d designs, %d failures, %d skipped, %d checker props, %d covers \
     statically pruned, %.1fs\n"
    (List.length summary.Fuzz.Driver.designs)
    (List.length summary.Fuzz.Driver.failures)
    summary.Fuzz.Driver.skipped checker_props pruned
    summary.Fuzz.Driver.total_time_s;
  check "fuzz campaign ran every requested design"
    (List.length summary.Fuzz.Driver.designs = count
    && summary.Fuzz.Driver.skipped = 0);
  check "every oracle green on every generated design"
    (summary.Fuzz.Driver.failures = []);
  check "static prunes had work on generated designs" (pruned > 0);
  fuzz_result :=
    Some
      {
        fz_seed = seed;
        fz_count = count;
        fz_designs = List.length summary.Fuzz.Driver.designs;
        fz_failures = List.length summary.Fuzz.Driver.failures;
        fz_skipped = summary.Fuzz.Driver.skipped;
        fz_checker_props = checker_props;
        fz_pruned_static = pruned;
        fz_digests = digests;
        fz_t_total = summary.Fuzz.Driver.total_time_s;
      }
