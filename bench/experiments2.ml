(* Experiments E6/E8/E9/E13 (shared SynthLC engine run over the artifact's
   restricted 5-instruction ISA), E11 (property statistics), and the
   remaining ablations. *)

module Meta = Designs.Meta
module Checker = Mc.Checker

let section = Experiments.section
let check = Experiments.check
let config = Experiments.config

(* The artifact appendix's restricted ISA: ADD, DIV, LW, SW, BEQ. *)
let artifact_isa =
  [
    Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD;
    Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.DIV;
    Isa.make ~rd:3 ~rs1:2 Isa.LW;
    Isa.make ~rs1:1 ~rs2:3 Isa.SW;
    Isa.make ~rs1:1 ~rs2:2 ~imm:8 Isa.BEQ;
  ]

let transmitter_opcodes = [ Isa.DIV; Isa.LW; Isa.SW; Isa.BEQ; Isa.ADD ]

let engine_report = ref None

(* E13 — the artifact's first experiment: end-to-end RTL2MuPATH + SynthLC
   on DIV, with the 5-instruction transmitter set. *)
let e13 () =
  section "E13" "Artifact experiment - end-to-end SynthLC over the restricted ISA";
  let transponders =
    match Experiments.profile with
    | `Quick -> [ List.nth artifact_isa 1 ] (* DIV *)
    | `Full -> artifact_isa
  in
  let kinds =
    match Experiments.profile with
    | `Quick -> [ Synthlc.Types.Intrinsic; Synthlc.Types.Dynamic_older ]
    | `Full ->
      [
        Synthlc.Types.Intrinsic;
        Synthlc.Types.Dynamic_older;
        Synthlc.Types.Dynamic_younger;
      ]
  in
  let design () = Designs.Core.build Designs.Core.baseline in
  let stimulus ~pins ~rotate meta = Designs.Stimulus.core ~pins ~rotate meta in
  let transmitters =
    match Experiments.profile with
    | `Quick -> [ Isa.DIV; Isa.LW; Isa.SW; Isa.BEQ ]
    | `Full -> transmitter_opcodes
  in
  let exclude_sources =
    (* Quick profile skips the squash-refetch (IF) and retirement (scbCmt)
       decision sources during the IFT stage — cost control, not semantics;
       full profile queries everything. *)
    match Experiments.profile with `Quick -> [ "IF"; "scbCmt" ] | `Full -> []
  in
  let report =
    Synthlc.Engine.run ~config ~synth_config:config ~stimulus ~design
      ~exclude_sources ~instructions:transponders ~transmitters ~kinds
      ~revisit_count_labels:[ "divU"; "ID"; "scbFin" ]
      ~iuv_pc:Designs.Core.iuv_pc ()
  in
  engine_report := Some report;
  Experiments.record Experiments.core_stats report.Synthlc.Engine.checker_totals;
  Format.printf "%a@." Synthlc.Engine.pp_report report;
  (* Key artifact results (SS I-G of the appendix): *)
  let div_report =
    List.find
      (fun (t : Synthlc.Engine.transponder_report) -> t.Synthlc.Engine.instr.Isa.op = Isa.DIV)
      report.Synthlc.Engine.transponders
  in
  let div_counts =
    List.assoc "divU" div_report.Synthlc.Engine.synth.Mupath.Synth.revisit_counts
  in
  Printf.printf "DIV divU occupancy classes: {%s} (paper: 1..66; ours: 1..8)\n"
    (String.concat "," (List.map string_of_int div_counts));
  check "DIV has wide operand-dependent occupancy range" (List.length div_counts >= 5);
  let div_inputs =
    List.concat_map
      (fun (s : Synthlc.Types.signature) -> s.Synthlc.Types.inputs)
      div_report.Synthlc.Engine.signatures
  in
  check "DIV labelled an intrinsic transmitter"
    (List.exists
       (fun (i : Synthlc.Types.explicit_input) ->
         i.Synthlc.Types.kind = Synthlc.Types.Intrinsic
         && i.Synthlc.Types.transmitter = Isa.DIV)
       div_inputs);
  check "DIV is a transponder for dynamic transmitters"
    (List.exists
       (fun (i : Synthlc.Types.explicit_input) ->
         i.Synthlc.Types.kind <> Synthlc.Types.Intrinsic)
       div_inputs);
  match
    List.find_opt
      (fun (t : Synthlc.Engine.transponder_report) -> t.Synthlc.Engine.instr.Isa.op = Isa.LW)
      report.Synthlc.Engine.transponders
  with
  | None -> () (* LW analyzed in the full profile only; E5 covers LD_issue *)
  | Some lw_report ->
    check "LW signatures include a dynamic SW transmitter (store-to-load)"
      (List.exists
         (fun (s : Synthlc.Types.signature) ->
           List.exists
             (fun (i : Synthlc.Types.explicit_input) ->
               i.Synthlc.Types.transmitter = Isa.SW
               && i.Synthlc.Types.kind <> Synthlc.Types.Intrinsic)
             s.Synthlc.Types.inputs)
         lw_report.Synthlc.Engine.signatures)

(* E8 — Fig. 8: the leakage-signature grid. *)
let e8 () =
  section "E8" "Fig. 8 - leakage-signature grid (transponders x typed transmitters)";
  match !engine_report with
  | None -> Printf.printf "  (requires E13 to run first)\n"
  | Some report ->
    let grid = Synthlc.Grid.build report.Synthlc.Engine.transponders in
    Format.printf "%a@." Synthlc.Grid.pp grid;
    Printf.printf "columns (leakage signatures): %d\n" (Synthlc.Grid.count_signatures grid);
    Printf.printf "distinct transmitters: %d\n" (Synthlc.Grid.count_transmitters grid);
    Printf.printf "transponders with variability: %d / %d analyzed\n"
      (Synthlc.Grid.count_transponders report.Synthlc.Engine.transponders)
      (List.length report.Synthlc.Engine.transponders);
    check "grid is non-trivial" (Synthlc.Grid.count_signatures grid >= 2);
    check "intrinsic and dynamic rows both present"
      (List.exists (fun r -> r.Synthlc.Grid.row_kind = Synthlc.Types.Intrinsic) grid.Synthlc.Grid.rows
      && List.exists
           (fun r -> r.Synthlc.Grid.row_kind <> Synthlc.Types.Intrinsic)
           grid.Synthlc.Grid.rows);
    check "some secondary (stall-in-place) leakage cells"
      (List.exists (fun (_, _, c) -> c = Synthlc.Grid.Secondary) grid.Synthlc.Grid.cells)

(* E9 — §VII-A1 findings + E6 — Table I contracts. *)
let e9_e6 () =
  section "E9" "SS VII-A1 findings - transponders/transmitters census";
  (match !engine_report with
  | None -> Printf.printf "  (requires E13 to run first)\n"
  | Some report ->
    let all_variable =
      List.for_all
        (fun (t : Synthlc.Engine.transponder_report) ->
          List.length t.Synthlc.Engine.synth.Mupath.Synth.paths > 1
          || List.exists
               (fun (_, ds) -> List.length ds > 1)
               t.Synthlc.Engine.synth.Mupath.Synth.decisions)
        report.Synthlc.Engine.transponders
    in
    check "every analyzed instruction is a transponder (paper: all 72)" all_variable;
    let txs = Synthlc.Engine.all_transmitter_opcodes report in
    Printf.printf "transmitters found: %s\n"
      (String.concat ", " (List.map Isa.mnemonic txs));
    check "DIV among transmitters" (List.mem Isa.DIV txs);
    check "no static transmitters on the core (frontend black-boxed)"
      (List.for_all
         (fun (s : Synthlc.Types.signature) ->
           List.for_all
             (fun (i : Synthlc.Types.explicit_input) ->
               i.Synthlc.Types.kind <> Synthlc.Types.Static)
             s.Synthlc.Types.inputs)
         (Synthlc.Engine.all_signatures report)));
  section "E6" "Table I - six leakage contracts derived from signatures";
  match !engine_report with
  | None -> ()
  | Some report ->
    let signatures = Synthlc.Engine.all_signatures report in
    let revisit_counts =
      List.map
        (fun (t : Synthlc.Engine.transponder_report) ->
          (t.Synthlc.Engine.instr.Isa.op, t.Synthlc.Engine.synth.Mupath.Synth.revisit_counts))
        report.Synthlc.Engine.transponders
    in
    let bundle =
      Synthlc.Contracts.derive ~signatures ~revisit_counts
        ~store_opcodes:[ Isa.SW; Isa.SB ]
    in
    Format.printf "%a@." Synthlc.Contracts.pp_bundle bundle;
    check "CT contract non-empty"
      (bundle.Synthlc.Contracts.ct.Synthlc.Contracts.unsafe <> []);
    check "OISA flags the serial divider"
      (List.exists
         (fun (op, pl, _) -> op = Isa.DIV && pl = "divU")
         bundle.Synthlc.Contracts.oisa.Synthlc.Contracts.oisa_input_dependent_units);
    check "STT has explicit channels"
      (bundle.Synthlc.Contracts.stt.Synthlc.Contracts.stt_explicit_channels <> []);
    check "STT has implicit branches"
      (bundle.Synthlc.Contracts.stt.Synthlc.Contracts.stt_implicit_branches <> []);
    check "Dolma variable-time ops include DIV"
      (List.mem Isa.DIV
         bundle.Synthlc.Contracts.dolma.Synthlc.Contracts.dolma_variable_time)

(* E11 — §VII-B3 property-evaluation statistics. *)
let e11 () =
  section "E11" "SS VII-B3 - property-evaluation statistics (core vs cache)";
  let p (name : string) (b : Experiments.stat_bucket) =
    Printf.printf
      "%-6s: %6d properties, mean %6.3fs/property, %5.1f%% undetermined, %d sim-discharged, %d inductive\n"
      name b.Experiments.props
      (if b.Experiments.props = 0 then 0.
       else b.Experiments.time /. float_of_int b.Experiments.props)
      (if b.Experiments.props = 0 then 0.
       else 100. *. float_of_int b.Experiments.undetermined /. float_of_int b.Experiments.props)
      b.Experiments.sim_discharged b.Experiments.inductive
  in
  p "core" Experiments.core_stats;
  p "cache" Experiments.cache_stats;
  let core = Experiments.core_stats and cache = Experiments.cache_stats in
  let mean b =
    if b.Experiments.props = 0 then 0.
    else b.Experiments.time /. float_of_int b.Experiments.props
  in
  check "modular cache properties are cheaper than core properties (paper: 3s vs minutes)"
    (cache.Experiments.props > 0 && mean cache < mean core);
  check "undetermined fraction bounded (paper: up to ~16%)"
    (core.Experiments.props = 0
    || float_of_int core.Experiments.undetermined
       /. float_of_int core.Experiments.props
       < 0.25)

(* Ablation A1: dominates/exclusive pruning (§V-B3). *)
let ablation_pruning () =
  section "A1" "Ablation - dominates/exclusive pruning of the PL power set";
  match !engine_report with
  | None -> Printf.printf "  (requires E13 to run first)\n"
  | Some report ->
    Printf.printf "%-22s %10s %10s %8s\n" "IUV" "power set" "candidates" "uPATHs";
    List.iter
      (fun (t : Synthlc.Engine.transponder_report) ->
        let s = t.Synthlc.Engine.synth in
        Printf.printf "%-22s %10d %10d %8d\n"
          (Isa.to_string t.Synthlc.Engine.instr)
          s.Mupath.Synth.naive_sets s.Mupath.Synth.candidate_sets
          (List.length s.Mupath.Synth.paths))
      report.Synthlc.Engine.transponders;
    check "pruning shrinks the power set by >10x on every IUV"
      (List.for_all
         (fun (t : Synthlc.Engine.transponder_report) ->
           let s = t.Synthlc.Engine.synth in
           s.Mupath.Synth.candidate_sets * 10 <= s.Mupath.Synth.naive_sets)
         report.Synthlc.Engine.transponders)

(* P1 — domain-parallel SynthLC: the paper parallelizes per-instruction
   model checking across JasperGold jobs (§VII-B3); we fan the engine out
   across OCaml domains and measure sequential vs parallel wall-clock on
   the same multi-instruction experiment.  The parallel report must be
   bit-identical to the sequential one (per-task seed derivation). *)

let requested_jobs = ref 0 (* 0 = auto; set by bench -j *)

type speedup_record = {
  sp_jobs : int;
  sp_cores : int;
  sp_t_seq : float;
  sp_t_par : float;
  sp_speedup : float;
  sp_equal : bool;
  sp_mupath_props : int;
  sp_flow_props : int;
}

let speedup : speedup_record option ref = ref None

(* Shared P1/P2 workload.  Quick profile: the smaller Ibex core at reduced
   budgets; full profile: the CVA6-lite baseline over the artifact ISA (2x
   the E13 workload). *)
let engine_workload () =
  match Experiments.profile with
  | `Quick ->
    ( (fun () -> Designs.Ibex.build ()),
      (fun ~pins ~rotate meta -> Designs.Stimulus.ibex ~pins ~rotate meta),
      [
        Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD;
        Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.DIV;
        Isa.make ~rd:3 ~rs1:2 Isa.LW;
        Isa.make ~rs1:1 ~rs2:2 ~imm:8 Isa.BEQ;
      ],
      [ Isa.DIV; Isa.ADD ],
      {
        config with
        Checker.bmc_depth = 8;
        bmc_conflicts = 30_000;
        sim_episodes = 8;
        sim_cycles = 36;
      } )
  | `Full ->
    ( (fun () -> Designs.Core.build Designs.Core.baseline),
      (fun ~pins ~rotate meta -> Designs.Stimulus.core ~pins ~rotate meta),
      artifact_isa,
      [ Isa.DIV; Isa.LW; Isa.SW; Isa.BEQ ],
      config )

let parallel_speedup () =
  let jobs =
    max 2 (if !requested_jobs >= 1 then !requested_jobs else Pool.default_jobs ())
  in
  section "P1"
    (Printf.sprintf
       "Domain-parallel SynthLC - sequential vs -j %d fan-out (SS VII-B3)" jobs);
  let design, stimulus, instructions, transmitters, light_config =
    engine_workload ()
  in
  let run_with jobs =
    let t0 = Unix.gettimeofday () in
    let r =
      Synthlc.Engine.run ~config:light_config ~synth_config:light_config
        ~stimulus ~design ~jobs
        ~exclude_sources:[ "IF"; "scbCmt" ]
        ~instructions ~transmitters
        ~kinds:[ Synthlc.Types.Intrinsic; Synthlc.Types.Dynamic_older ]
        ~revisit_count_labels:[ "divU" ] ~iuv_pc:Designs.Core.iuv_pc ()
    in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_seq, r_seq = run_with 1 in
  let t_par, r_par = run_with jobs in
  let equal = Synthlc.Engine.equal_report r_seq r_par in
  let sp = if t_par > 0. then t_seq /. t_par else 1. in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "  sequential (-j 1): %6.1fs  (%d uPATH + %d IFT properties)\n"
    t_seq r_seq.Synthlc.Engine.total_mupath_props
    r_seq.Synthlc.Engine.total_flow_props;
  Printf.printf "  parallel   (-j %d): %6.1fs\n" jobs t_par;
  Printf.printf "  speedup: %.2fx (%d core%s available to this process)\n" sp
    cores (if cores = 1 then "" else "s");
  check "parallel report bit-identical to sequential" equal;
  if cores >= 2 then check "parallel fan-out is faster" (sp > 1.2)
  else
    Printf.printf
      "  [note] single-core host: domains interleave, no wall-clock win \
       expected\n";
  speedup :=
    Some
      {
        sp_jobs = jobs;
        sp_cores = cores;
        sp_t_seq = t_seq;
        sp_t_par = t_par;
        sp_speedup = sp;
        sp_equal = equal;
        sp_mupath_props = r_seq.Synthlc.Engine.total_mupath_props;
        sp_flow_props = r_seq.Synthlc.Engine.total_flow_props;
      }

(* P2 — persistent verdict cache: cold vs warm wall-clock on the same
   engine workload as P1.  The warm run opens a fresh store over the cold
   run's directory (a simulated process restart) and must replay >=90% of
   its checker calls from disk while producing a bit-identical report. *)

type cache_record = {
  vc_t_cold : float;
  vc_t_warm : float;
  vc_speedup : float;
  vc_calls : int;
  vc_hits : int;
  vc_hit_rate : float;
  vc_equal : bool;
  vc_digest : string;
}

let cache_result : cache_record option ref = ref None

let cache_warmup () =
  section "P2" "Persistent verdict cache - cold vs warm SynthLC wall-clock";
  let design, stimulus, instructions, transmitters, light_config =
    engine_workload ()
  in
  let dir = "_vcache_bench" in
  ignore (Vcache.clear_dir ~dir);
  let run_with cache =
    let t0 = Unix.gettimeofday () in
    let r =
      Synthlc.Engine.run ~cache ~config:light_config ~synth_config:light_config
        ~stimulus ~design ~jobs:1
        ~exclude_sources:[ "IF"; "scbCmt" ]
        ~instructions ~transmitters
        ~kinds:[ Synthlc.Types.Intrinsic; Synthlc.Types.Dynamic_older ]
        ~revisit_count_labels:[ "divU" ] ~iuv_pc:Designs.Core.iuv_pc ()
    in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_cold, r_cold = run_with (Vcache.create ~dir ()) in
  let warm = Vcache.create ~dir () in
  let t_warm, r_warm = run_with warm in
  let hits, misses, _ = Vcache.counters warm in
  let calls = hits + misses in
  let rate = if calls = 0 then 0. else float_of_int hits /. float_of_int calls in
  let sp = if t_warm > 0. then t_cold /. t_warm else 1. in
  let equal = Synthlc.Engine.equal_report r_cold r_warm in
  let dg_cold = Synthlc.Engine.report_digest r_cold in
  let dg_warm = Synthlc.Engine.report_digest r_warm in
  Printf.printf "  cold: %6.1fs (%d checker calls, %d entries cached)\n" t_cold
    calls (List.length (Vcache.disk_entries ~dir));
  Printf.printf "  warm: %6.1fs (%d hits / %d misses, %.1f%% from cache, %.1fx)\n"
    t_warm hits misses (100. *. rate) sp;
  Printf.printf "  report digests: cold %s, warm %s\n" dg_cold dg_warm;
  check "warm run discharges >= 90% of checker calls from the cache"
    (rate >= 0.9);
  check "warm report bit-identical to cold (equal_report)" equal;
  check "warm report digest equals cold" (dg_cold = dg_warm);
  check "warm run is faster than cold" (t_warm < t_cold);
  cache_result :=
    Some
      {
        vc_t_cold = t_cold;
        vc_t_warm = t_warm;
        vc_speedup = sp;
        vc_calls = calls;
        vc_hits = hits;
        vc_hit_rate = rate;
        vc_equal = equal && dg_cold = dg_warm;
        vc_digest = dg_cold;
      }

(* P3 — static FSM-abstraction reachability pre-pass: covers over
   statically-dead µFSM states are discharged by abstract interpretation
   instead of being dispatched to simulation/BMC.  Both modes must produce
   the same report digest (the audit mode re-checks the pruned covers as a
   trailing batch, tripping a hard failure on any unsound prune). *)

type static_prune_record = {
  st_pruned : int;  (* covers discharged statically (pre-pass on) *)
  st_duv_props_on : int;  (* duv_pl properties dispatched with the pre-pass *)
  st_duv_props_off : int;  (* ... and without (includes the audit batch) *)
  st_t_on : float;
  st_t_off : float;
  st_equal : bool;  (* digests identical across modes *)
  st_digest : string;
}

let static_prune_result : static_prune_record option ref = ref None

let static_prune_bench () =
  section "P3"
    "Static reachability pre-pass - covers pruned vs dispatched, cold wall-clock";
  let design, stimulus, instructions, transmitters, light_config =
    engine_workload ()
  in
  let run_with static_prune =
    let t0 = Unix.gettimeofday () in
    let r =
      Synthlc.Engine.run ~config:light_config ~synth_config:light_config
        ~static_prune ~stimulus ~design ~jobs:1
        ~exclude_sources:[ "IF"; "scbCmt" ]
        ~instructions ~transmitters
        ~kinds:[ Synthlc.Types.Intrinsic; Synthlc.Types.Dynamic_older ]
        ~revisit_count_labels:[ "divU" ] ~iuv_pc:Designs.Core.iuv_pc ()
    in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_on, r_on = run_with true in
  let t_off, r_off = run_with false in
  let duv_stage (r : Synthlc.Engine.report) =
    List.map
      (fun (t : Synthlc.Engine.transponder_report) ->
        List.assoc "duv_pl" t.Synthlc.Engine.synth.Mupath.Synth.stage_stats)
      r.Synthlc.Engine.transponders
  in
  let sum f l = List.fold_left (fun a s -> a + f s) 0 l in
  let pruned =
    sum (fun (s : Mupath.Synth.stage_stats) -> s.Mupath.Synth.pruned_static)
      (duv_stage r_on)
  in
  let props_on =
    sum (fun (s : Mupath.Synth.stage_stats) -> s.Mupath.Synth.props)
      (duv_stage r_on)
  in
  let props_off =
    sum (fun (s : Mupath.Synth.stage_stats) -> s.Mupath.Synth.props)
      (duv_stage r_off)
  in
  let dg_on = Synthlc.Engine.report_digest r_on in
  let dg_off = Synthlc.Engine.report_digest r_off in
  Printf.printf "  pre-pass on : %6.1fs (%d duv_pl properties, %d pruned statically)\n"
    t_on props_on pruned;
  Printf.printf "  pre-pass off: %6.1fs (%d duv_pl properties incl. audit batch)\n"
    t_off props_off;
  Printf.printf "  report digests: on %s, off %s\n" dg_on dg_off;
  check "pre-pass prunes at least one cover" (pruned > 0);
  check "every pruned cover reappears as an audit property"
    (props_off = props_on + pruned);
  check "report digest identical across modes" (dg_on = dg_off);
  static_prune_result :=
    Some
      {
        st_pruned = pruned;
        st_duv_props_on = props_on;
        st_duv_props_off = props_off;
        st_t_on = t_on;
        st_t_off = t_off;
        st_equal = dg_on = dg_off;
        st_digest = dg_on;
      }

(* P4 — observability overhead: the obs layer's contract is that
   instrumented hot paths cost nothing measurable while tracing is off
   (one atomic flag read, no allocation).  Measured two ways:

   - micro: a representative work unit timed bare vs. behind a disabled
     [Obs.with_span]; the per-call delta is the disabled-path overhead,
     which must stay under 5%;
   - macro: the P1/P2 engine workload run untraced and traced — the
     traced run must produce a bit-identical report digest (the
     digest-exclusion rule at bench level) while actually capturing
     spans and metrics. *)

type obs_record = {
  ob_ns_plain : float;  (* ns per work unit, bare *)
  ob_ns_disabled : float;  (* ns per work unit behind a disabled span *)
  ob_overhead_pct : float;
  ob_t_off : float;  (* engine workload, tracing off *)
  ob_t_on : float;  (* engine workload, tracing on *)
  ob_events : int;  (* spans captured by the traced run *)
  ob_metrics : (string * float) list;  (* traced run's metric snapshot *)
  ob_equal : bool;  (* digests identical on vs off *)
}

let obs_result : obs_record option ref = ref None

let obs_overhead () =
  section "P4" "Observability overhead - disabled-path cost and traced-run identity";
  Obs.disable ();
  Obs.reset ();
  (* Micro: ~0.3us of real mixing work per unit, so the disabled span's
     atomic read + closure call is amortized the way hot call sites
     amortize it (per-cover, per-task, per-batch — never per-gate). *)
  let work () =
    let acc = ref 0 in
    for i = 0 to 63 do
      acc := !acc lxor Pool.derive_seed ~base:7 ~index:i
    done;
    !acc
  in
  let reps = 200_000 in
  let time_loop f =
    (* Best of 3 trials: the minimum is the least-noise estimate. *)
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let sink = ref 0 in
      for _ = 1 to reps do
        sink := !sink lxor f ()
      done;
      ignore (Sys.opaque_identity !sink);
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best /. float_of_int reps *. 1e9
  in
  let ns_plain = time_loop work in
  let ns_disabled = time_loop (fun () -> Obs.with_span "p4" work) in
  let overhead_pct =
    if ns_plain > 0. then (ns_disabled -. ns_plain) /. ns_plain *. 100. else 0.
  in
  Printf.printf "  work unit bare         : %8.1f ns\n" ns_plain;
  Printf.printf "  behind a disabled span : %8.1f ns (%+.2f%%)\n" ns_disabled
    overhead_pct;
  check "disabled-path overhead below 5%" (overhead_pct < 5.);
  (* Macro: untraced vs traced engine run. *)
  let design, stimulus, instructions, transmitters, light_config =
    engine_workload ()
  in
  let run_engine () =
    let t0 = Unix.gettimeofday () in
    let r =
      Synthlc.Engine.run ~config:light_config ~synth_config:light_config
        ~stimulus ~design ~jobs:1
        ~exclude_sources:[ "IF"; "scbCmt" ]
        ~instructions ~transmitters
        ~kinds:[ Synthlc.Types.Intrinsic; Synthlc.Types.Dynamic_older ]
        ~revisit_count_labels:[ "divU" ] ~iuv_pc:Designs.Core.iuv_pc ()
    in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_off, r_off = run_engine () in
  Obs.enable ();
  let t_on, r_on = run_engine () in
  let events = List.length (Obs.events ()) in
  let metrics = Obs.Metrics.snapshot () in
  Obs.disable ();
  Obs.reset ();
  let dg_off = Synthlc.Engine.report_digest r_off in
  let dg_on = Synthlc.Engine.report_digest r_on in
  let equal = dg_off = dg_on in
  Printf.printf "  engine untraced: %6.1fs\n" t_off;
  Printf.printf "  engine traced  : %6.1fs (%d spans, %d metric series)\n" t_on
    events (List.length metrics);
  Printf.printf "  report digests: untraced %s, traced %s\n" dg_off dg_on;
  check "traced run captured spans" (events > 0);
  check "traced run captured metrics" (metrics <> []);
  check "report digest identical traced vs untraced" equal;
  obs_result :=
    Some
      {
        ob_ns_plain = ns_plain;
        ob_ns_disabled = ns_disabled;
        ob_overhead_pct = overhead_pct;
        ob_t_off = t_off;
        ob_t_on = t_on;
        ob_events = events;
        ob_metrics = metrics;
        ob_equal = equal;
      }

(* Ablation A2: simulation-assisted cover discharge. *)
let ablation_sim_assist () =
  section "A2" "Ablation - simulation pre-pass on vs off (one ADD synthesis)";
  let iuv = Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD in
  let run sim_episodes presim =
    let meta = Designs.Core.build Designs.Core.baseline in
    let stim = Designs.Stimulus.core ~pins:[ (Designs.Core.iuv_pc, iuv) ] meta in
    let t0 = Unix.gettimeofday () in
    let r =
      Mupath.Synth.run
        ~config:{ config with Checker.sim_episodes }
        ~presim_episodes:presim ~stimulus:stim ~meta ~iuv
        ~iuv_pc:Designs.Core.iuv_pc ()
    in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_on, r_on = run config.Checker.sim_episodes 64 in
  let t_off, r_off = run 0 0 in
  Printf.printf "with simulation assist   : %5.1fs, %d solver properties\n" t_on
    r_on.Mupath.Synth.checker_stats.Checker.Stats.n_props;
  Printf.printf "without simulation assist: %5.1fs, %d solver properties\n" t_off
    r_off.Mupath.Synth.checker_stats.Checker.Stats.n_props;
  check "same uPATH count either way"
    (List.length r_on.Mupath.Synth.paths = List.length r_off.Mupath.Synth.paths);
  check "assist reduces wall-clock or solver load"
    (t_on < t_off
    || r_on.Mupath.Synth.checker_stats.Checker.Stats.n_props
       < r_off.Mupath.Synth.checker_stats.Checker.Stats.n_props)

(* P5 — static taint-flow pre-pass: IFT covers whose destinations lie
   outside the static taint cone of the operand register are discharged
   without a checker call.  Pruning must not perturb the report: the
   prune-off run trails the same covers behind an identical mid-stream
   checker sequence, so both modes land on the same digest (any divergence
   would mean the word-level abstraction dropped a reachable flow). *)

type static_flow_record = {
  sf_pruned : int;  (* IFT covers discharged statically (prune on) *)
  sf_flow_props : int;  (* flow covers considered (same in both modes) *)
  sf_t_on : float;
  sf_t_off : float;
  sf_equal : bool;  (* digests identical across modes *)
  sf_digest : string;
}

let static_flow_result : static_flow_record option ref = ref None

let static_flow_bench () =
  section "P5"
    "Static taint-flow pre-pass - IFT covers pruned vs dispatched, cold wall-clock";
  let design, stimulus, instructions, transmitters, light_config =
    engine_workload ()
  in
  let run_with static_flow_prune =
    let t0 = Unix.gettimeofday () in
    let r =
      Synthlc.Engine.run ~config:light_config ~synth_config:light_config
        ~static_flow_prune ~stimulus ~design ~jobs:1
        ~exclude_sources:[ "IF"; "scbCmt" ]
        ~instructions ~transmitters
        ~kinds:[ Synthlc.Types.Intrinsic; Synthlc.Types.Dynamic_older ]
        ~revisit_count_labels:[ "divU" ] ~iuv_pc:Designs.Core.iuv_pc ()
    in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_on, r_on = run_with Synthlc.Types.Prune_on in
  let t_off, r_off = run_with Synthlc.Types.Prune_off in
  let pruned = r_on.Synthlc.Engine.total_flow_pruned_static in
  let dg_on = Synthlc.Engine.report_digest r_on in
  let dg_off = Synthlc.Engine.report_digest r_off in
  Printf.printf
    "  pre-pass on : %6.1fs (%d IFT covers, %d discharged statically)\n" t_on
    r_on.Synthlc.Engine.total_flow_props pruned;
  Printf.printf "  pre-pass off: %6.1fs (%d IFT covers, all dispatched)\n"
    t_off r_off.Synthlc.Engine.total_flow_props;
  Printf.printf "  report digests: on %s, off %s\n" dg_on dg_off;
  check "pre-pass discharges at least one IFT cover" (pruned > 0);
  check "both modes consider the same covers"
    (r_on.Synthlc.Engine.total_flow_props
    = r_off.Synthlc.Engine.total_flow_props);
  check "report digest identical across modes" (dg_on = dg_off);
  static_flow_result :=
    Some
      {
        sf_pruned = pruned;
        sf_flow_props = r_on.Synthlc.Engine.total_flow_props;
        sf_t_on = t_on;
        sf_t_off = t_off;
        sf_equal = dg_on = dg_off;
        sf_digest = dg_on;
      }

(* P6 — incremental-SAT overhaul: structural hashing (CSE) in the Tseitin
   encoder plus clause-DB reduction in the solver, measured on a cold
   cover batch with the simulation pre-pass off so every property is
   discharged by the SAT path.  The legacy configuration (both features
   off) is the pre-overhaul solver; the new defaults must be at least
   1.3x faster while synthesizing the identical µPATH set.

   The clause-sharing portfolio is validated separately at engine level:
   its contract is bit-identical verdicts, witnesses, and report digest
   (the canonical solver is authoritative), with a wall-clock win only
   when real cores back the racer domains — so the speedup check arms on
   multi-core hosts only, like P1. *)

type sat_record = {
  sb_t_legacy : float;  (* cover batch, cse + reduce_db off *)
  sb_t_new : float;  (* cover batch, new defaults *)
  sb_speedup : float;
  sb_conflicts_legacy : float;
  sb_conflicts_new : float;
  sb_cse_hits : int;
  sb_cse_lookups : int;
  sb_cse_hit_rate : float;
  sb_reduce_events : int;
  sb_learnt_peak : int;
  sb_port_domains : int;
  sb_t_seq : float;  (* engine run, portfolio off *)
  sb_t_port : float;  (* engine run, portfolio on *)
  sb_equal : bool;  (* digests identical portfolio on vs off *)
  sb_digest : string;
}

let sat_result : sat_record option ref = ref None

let sat_bench () =
  section "P6"
    "SAT overhaul - clause-DB reduction + structural hashing, cold cover batch";
  let design, stimulus, instructions, transmitters, light_config =
    engine_workload ()
  in
  (* DIV is the SAT-heavy instruction in both profiles' ISA lists.  The
     batch runs at a deeper unrolling than the engine workload: depth is
     where the encoder and solver dominate, and where the overhaul pays. *)
  let iuv = List.nth instructions 1 in
  let batch_config =
    {
      light_config with
      Checker.sim_episodes = 0;
      bmc_depth = max 20 light_config.Checker.bmc_depth;
    }
  in
  let metric key snap = try List.assoc key snap with Not_found -> 0. in
  let run_batch cfg =
    let meta = design () in
    Obs.enable ();
    Obs.reset ();
    let t0 = Unix.gettimeofday () in
    let r =
      Mupath.Synth.run ~config:cfg ~presim_episodes:0 ~meta ~iuv
        ~iuv_pc:Designs.Core.iuv_pc ()
    in
    let t = Unix.gettimeofday () -. t0 in
    let snap = Obs.Metrics.snapshot () in
    Obs.disable ();
    Obs.reset ();
    (t, r, snap)
  in
  let t_legacy, r_legacy, m_legacy =
    run_batch
      { batch_config with Checker.encode_cse = false; reduce_db = false }
  in
  let t_new, r_new, m_new = run_batch batch_config in
  let sp = if t_new > 0. then t_legacy /. t_new else 1. in
  let conflicts_legacy = metric "sat.conflicts.sum" m_legacy in
  let conflicts_new = metric "sat.conflicts.sum" m_new in
  let cse_hits = int_of_float (metric "sat.cse_hits" m_new) in
  let cse_lookups = int_of_float (metric "sat.cse_lookups" m_new) in
  let cse_rate =
    if cse_lookups = 0 then 0.
    else float_of_int cse_hits /. float_of_int cse_lookups
  in
  let reduces = int_of_float (metric "sat.reduce_events" m_new) in
  let learnt_peak = int_of_float (metric "sat.learnt_peak" m_new) in
  Printf.printf "  legacy (no cse, no reduce): %6.1fs  (%.0f conflicts)\n"
    t_legacy conflicts_legacy;
  Printf.printf "  new defaults              : %6.1fs  (%.0f conflicts)\n"
    t_new conflicts_new;
  Printf.printf
    "  speedup: %.2fx | cse: %d/%d hits (%.1f%%) | reduce events: %d | \
     learnt peak: %d\n"
    sp cse_hits cse_lookups (100. *. cse_rate) reduces learnt_peak;
  check "new defaults at least 1.3x faster on the cold cover batch"
    (sp >= 1.3);
  check "encoding changes preserve the synthesized uPATH set"
    (r_legacy.Mupath.Synth.paths = r_new.Mupath.Synth.paths
    && r_legacy.Mupath.Synth.decisions = r_new.Mupath.Synth.decisions);
  check "structural hashing sees cache hits" (cse_hits > 0);
  (* Portfolio identity at engine level: digest equality is unconditional;
     the wall-clock comparison arms on multi-core hosts only. *)
  let port_domains = 2 in
  let port_instrs =
    match instructions with a :: b :: _ -> [ a; b ] | l -> l
  in
  let run_engine domains =
    let cfg = { light_config with Checker.portfolio_domains = domains } in
    let t0 = Unix.gettimeofday () in
    let r =
      Synthlc.Engine.run ~config:cfg ~synth_config:cfg ~stimulus ~design
        ~jobs:1
        ~exclude_sources:[ "IF"; "scbCmt" ]
        ~instructions:port_instrs ~transmitters
        ~kinds:[ Synthlc.Types.Intrinsic; Synthlc.Types.Dynamic_older ]
        ~revisit_count_labels:[ "divU" ] ~iuv_pc:Designs.Core.iuv_pc ()
    in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_seq, r_seq = run_engine 1 in
  let t_port, r_port = run_engine port_domains in
  let dg_seq = Synthlc.Engine.report_digest r_seq in
  let dg_port = Synthlc.Engine.report_digest r_port in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "  engine, portfolio off        : %6.1fs\n" t_seq;
  Printf.printf "  engine, portfolio %d domains : %6.1fs\n" port_domains
    t_port;
  Printf.printf "  report digests: off %s, on %s\n" dg_seq dg_port;
  check "portfolio report bit-identical to sequential"
    (dg_seq = dg_port && Synthlc.Engine.equal_report r_seq r_port);
  if cores >= 2 then
    check "portfolio does not slow the run down on a multi-core host"
      (t_port < t_seq *. 1.15)
  else
    Printf.printf
      "  [note] single-core host: racer domains interleave with the \
       canonical solver, no wall-clock win expected\n";
  sat_result :=
    Some
      {
        sb_t_legacy = t_legacy;
        sb_t_new = t_new;
        sb_speedup = sp;
        sb_conflicts_legacy = conflicts_legacy;
        sb_conflicts_new = conflicts_new;
        sb_cse_hits = cse_hits;
        sb_cse_lookups = cse_lookups;
        sb_cse_hit_rate = cse_rate;
        sb_reduce_events = reduces;
        sb_learnt_peak = learnt_peak;
        sb_port_domains = port_domains;
        sb_t_seq = t_seq;
        sb_t_port = t_port;
        sb_equal = dg_seq = dg_port;
        sb_digest = dg_seq;
      }
