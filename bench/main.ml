(* Benchmark/reproduction harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's per-experiment index), then runs
   Bechamel micro-benchmarks of the substrate.

   Usage:
     dune exec bench/main.exe                 # quick profile, all experiments
     REPRO_PROFILE=full dune exec bench/main.exe
     dune exec bench/main.exe -- E1 E4        # selected experiments only
     dune exec bench/main.exe -- micro        # micro-benchmarks only
     dune exec bench/main.exe -- --json P1    # also write BENCH_results.json
     dune exec bench/main.exe -- -j 4 P1      # parallel fan-out width *)

let experiments =
  [
    ("E7", Experiments.e7);
    ("E1", Experiments.e1);
    ("E2", Experiments.e2);
    ("E3", Experiments.e3);
    ("E4", Experiments.e4);
    ("E5", Experiments.e5);
    ("E10", Experiments.e10);
    ("E12", Experiments.e12);
    ("E13", Experiments2.e13);
    ("E8", Experiments2.e8);
    ("E9", Experiments2.e9_e6);
    ("E11", Experiments2.e11);
    ("A1", Experiments2.ablation_pruning);
    ("A2", Experiments2.ablation_sim_assist);
    ("P1", Experiments2.parallel_speedup);
    ("P2", Experiments2.cache_warmup);
    ("P3", Experiments2.static_prune_bench);
    ("P4", Experiments2.obs_overhead);
    ("P5", Experiments2.static_flow_bench);
    ("P6", Experiments2.sat_bench);
    ("P7", Experiments3.fuzz_campaign);
    ("P8", Experiments3.absint_bench);
    ("P9", Experiments3.frontend_bench);
    ("P10", Experiments3.sweep_bench);
  ]

(* --- Bechamel micro-benchmarks of the substrates ---------------------- *)

let micro_benchmarks () =
  let open Bechamel in
  let bitvec_mul =
    Test.make ~name:"bitvec 8x8 mul"
      (Staged.stage (fun () ->
           let a = Bitvec.of_int ~width:8 173 and b = Bitvec.of_int ~width:8 91 in
           ignore (Bitvec.mul a b)))
  in
  let bitvec_udiv =
    Test.make ~name:"bitvec 8-bit udiv"
      (Staged.stage (fun () ->
           let a = Bitvec.of_int ~width:8 173 and b = Bitvec.of_int ~width:8 7 in
           ignore (Bitvec.udiv a b)))
  in
  let meta = Designs.Core.build Designs.Core.baseline in
  let nl = meta.Designs.Meta.nl in
  let sim = Sim.create nl in
  let in0 = Option.get (Hdl.Netlist.find_named nl Designs.Core.sig_if_instr_in0) in
  let in1 = Option.get (Hdl.Netlist.find_named nl Designs.Core.sig_if_instr_in1) in
  let nop = Isa.encode Isa.nop in
  let sim_cycle =
    Test.make ~name:"core simulator cycle"
      (Staged.stage (fun () ->
           Sim.poke sim in0 nop;
           Sim.poke sim in1 nop;
           Sim.eval sim;
           Sim.step sim))
  in
  let sat_php =
    Test.make ~name:"SAT pigeonhole php(5)"
      (Staged.stage (fun () ->
           let s = Sat.Solver.create () in
           let holes = 5 in
           let var p h = (p * holes) + h in
           for _ = 0 to ((holes + 1) * holes) - 1 do
             ignore (Sat.Solver.new_var s)
           done;
           for p = 0 to holes do
             Sat.Solver.add_clause s
               (List.init holes (fun h -> Sat.Solver.pos (var p h)))
           done;
           for h = 0 to holes - 1 do
             for p1 = 0 to holes do
               for p2 = p1 + 1 to holes do
                 Sat.Solver.add_clause s
                   [ Sat.Solver.neg_of_var (var p1 h); Sat.Solver.neg_of_var (var p2 h) ]
               done
             done
           done;
           assert (Sat.Solver.solve s = Sat.Solver.Unsat)))
  in
  let elaborate =
    Test.make ~name:"elaborate cva6_lite"
      (Staged.stage (fun () -> ignore (Designs.Core.build Designs.Core.baseline)))
  in
  let blast_step =
    Test.make ~name:"blast cva6_lite to depth 2"
      (Staged.stage (fun () ->
           let meta = Designs.Core.build Designs.Core.baseline in
           let b = Mc.Blast.create ~initial:`Reset ~assumes:[] meta.Designs.Meta.nl in
           Mc.Blast.ensure_depth b 2))
  in
  let tests =
    Test.make_grouped ~name:"substrates"
      [ bitvec_mul; bitvec_udiv; sim_cycle; sat_php; elaborate; blast_step ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
    Benchmark.all cfg instances tests
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  Printf.printf "\n=======================================================\n";
  Printf.printf "Micro-benchmarks (Bechamel, monotonic clock)\n";
  Printf.printf "=======================================================\n%!";
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ t ] -> Printf.printf "%-38s %14.1f ns/run\n" name t
      | _ -> Printf.printf "%-38s (no estimate)\n" name)
    results

let time_budget =
  (* Optional wall-clock guard: once exceeded, remaining experiments are
     skipped (each prints a SKIPPED line) so a tee'd run always terminates. *)
  match Sys.getenv_opt "REPRO_TIME_BUDGET" with
  | Some s -> float_of_string_opt s
  | None -> None

(* --- machine-readable results (--json) -------------------------------- *)

type exp_row = { row_id : string; row_time : float; row_props : int; row_status : string }

let bucket_props () =
  Experiments.core_stats.Experiments.props + Experiments.cache_stats.Experiments.props

let write_json path ~profile ~jobs ~total rows =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"profile\": \"%s\",\n" profile;
  add "  \"jobs\": %d,\n" jobs;
  add "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  add "  \"total_time_s\": %.3f,\n" total;
  add "  \"experiments\": [\n";
  List.iteri
    (fun i r ->
      add "    {\"id\": \"%s\", \"time_s\": %.3f, \"props\": %d, \"status\": \"%s\"}%s\n"
        r.row_id r.row_time r.row_props r.row_status
        (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ],\n";
  (match !Experiments2.speedup with
  | Some s ->
    add "  \"parallel\": {\"jobs\": %d, \"cores\": %d, \"t_seq_s\": %.3f, \"t_par_s\": %.3f, \"speedup\": %.3f, \"deterministic\": %b, \"mupath_props\": %d, \"flow_props\": %d},\n"
      s.Experiments2.sp_jobs s.Experiments2.sp_cores s.Experiments2.sp_t_seq
      s.Experiments2.sp_t_par s.Experiments2.sp_speedup s.Experiments2.sp_equal
      s.Experiments2.sp_mupath_props s.Experiments2.sp_flow_props
  | None -> add "  \"parallel\": null,\n");
  (match !Experiments2.cache_result with
  | Some c ->
    add "  \"cache\": {\"t_cold_s\": %.3f, \"t_warm_s\": %.3f, \"speedup\": %.3f, \"checker_calls\": %d, \"warm_hits\": %d, \"warm_hit_rate\": %.4f, \"bit_identical\": %b, \"report_digest\": \"%s\"},\n"
      c.Experiments2.vc_t_cold c.Experiments2.vc_t_warm c.Experiments2.vc_speedup
      c.Experiments2.vc_calls c.Experiments2.vc_hits c.Experiments2.vc_hit_rate
      c.Experiments2.vc_equal c.Experiments2.vc_digest
  | None -> add "  \"cache\": null,\n");
  (match !Experiments2.static_prune_result with
  | Some s ->
    add "  \"static_prune\": {\"covers_pruned\": %d, \"duv_props_on\": %d, \"duv_props_off\": %d, \"t_on_s\": %.3f, \"t_off_s\": %.3f, \"digest_identical\": %b, \"report_digest\": \"%s\"},\n"
      s.Experiments2.st_pruned s.Experiments2.st_duv_props_on
      s.Experiments2.st_duv_props_off s.Experiments2.st_t_on
      s.Experiments2.st_t_off s.Experiments2.st_equal s.Experiments2.st_digest
  | None -> add "  \"static_prune\": null,\n");
  (match !Experiments2.static_flow_result with
  | Some s ->
    add "  \"static_flow\": {\"covers_pruned\": %d, \"flow_props\": %d, \"t_on_s\": %.3f, \"t_off_s\": %.3f, \"digest_identical\": %b, \"report_digest\": \"%s\"},\n"
      s.Experiments2.sf_pruned s.Experiments2.sf_flow_props
      s.Experiments2.sf_t_on s.Experiments2.sf_t_off s.Experiments2.sf_equal
      s.Experiments2.sf_digest
  | None -> add "  \"static_flow\": null,\n");
  (match !Experiments2.sat_result with
  | Some s ->
    add "  \"sat\": {\"t_legacy_s\": %.3f, \"t_new_s\": %.3f, \"speedup\": %.3f, \"conflicts_legacy\": %.0f, \"conflicts_new\": %.0f, \"cse_hits\": %d, \"cse_lookups\": %d, \"cse_hit_rate\": %.4f, \"reduce_events\": %d, \"learnt_peak\": %d, \"portfolio_domains\": %d, \"t_seq_s\": %.3f, \"t_portfolio_s\": %.3f, \"digest_identical\": %b, \"report_digest\": \"%s\"},\n"
      s.Experiments2.sb_t_legacy s.Experiments2.sb_t_new
      s.Experiments2.sb_speedup s.Experiments2.sb_conflicts_legacy
      s.Experiments2.sb_conflicts_new s.Experiments2.sb_cse_hits
      s.Experiments2.sb_cse_lookups s.Experiments2.sb_cse_hit_rate
      s.Experiments2.sb_reduce_events s.Experiments2.sb_learnt_peak
      s.Experiments2.sb_port_domains s.Experiments2.sb_t_seq
      s.Experiments2.sb_t_port s.Experiments2.sb_equal
      s.Experiments2.sb_digest
  | None -> add "  \"sat\": null,\n");
  (match !Experiments3.fuzz_result with
  | Some f ->
    add "  \"fuzz\": {\"seed\": %d, \"count\": %d, \"designs\": %d, \"failures\": %d, \"skipped\": %d, \"checker_props\": %d, \"pruned_static\": %d, \"netlist_digests\": \"%s\", \"t_total_s\": %.3f},\n"
      f.Experiments3.fz_seed f.Experiments3.fz_count f.Experiments3.fz_designs
      f.Experiments3.fz_failures f.Experiments3.fz_skipped
      f.Experiments3.fz_checker_props f.Experiments3.fz_pruned_static
      f.Experiments3.fz_digests f.Experiments3.fz_t_total
  | None -> add "  \"fuzz\": null,\n");
  (match !Experiments3.absint_result with
  | Some a ->
    add "  \"absint\": {\"covers_pruned\": %d, \"pruned_static\": %d, \"t_on_s\": %.3f, \"t_off_s\": %.3f, \"t_audit_s\": %.3f, \"digest_identical\": %b, \"report_digest\": \"%s\", \"vars_kb_on\": %d, \"vars_kb_off\": %d, \"kb_set_identical\": %b, \"lint_info\": %d},\n"
      a.Experiments3.ab_covers_pruned a.Experiments3.ab_pruned_static
      a.Experiments3.ab_t_on a.Experiments3.ab_t_off a.Experiments3.ab_t_audit
      a.Experiments3.ab_equal a.Experiments3.ab_digest
      a.Experiments3.ab_vars_kb_on a.Experiments3.ab_vars_kb_off
      a.Experiments3.ab_kb_equal a.Experiments3.ab_lint_info
  | None -> add "  \"absint\": null,\n");
  (match !Experiments3.frontend_result with
  | Some f ->
    add "  \"frontend\": {\"designs\": %d, \"roundtrip_identical\": %b, \"warnings\": %d, \"netlist_digests\": \"%s\", \"t_export_s\": %.3f, \"t_import_s\": %.3f, \"run_identical\": %b, \"run_digest\": \"%s\", \"t_run_s\": %.3f},\n"
      f.Experiments3.fe_designs f.Experiments3.fe_roundtrip_identical
      f.Experiments3.fe_warnings f.Experiments3.fe_digests
      f.Experiments3.fe_t_export f.Experiments3.fe_t_import
      f.Experiments3.fe_run_identical f.Experiments3.fe_run_digest
      f.Experiments3.fe_t_run
  | None -> add "  \"frontend\": null,\n");
  (match !Experiments3.sweep_result with
  | Some s ->
    add "  \"sweep\": {\"comb_nodes\": %d, \"merged\": %d, \"classes\": %d, \"t_off_s\": %.3f, \"t_on_s\": %.3f, \"digest_identical\": %b, \"report_digest\": \"%s\", \"sem_hits\": %d, \"sem_misses\": %d, \"sem_identical\": %b},\n"
      s.Experiments3.sw_comb_nodes s.Experiments3.sw_merged
      s.Experiments3.sw_classes s.Experiments3.sw_t_off s.Experiments3.sw_t_on
      s.Experiments3.sw_equal s.Experiments3.sw_digest
      s.Experiments3.sw_sem_hits s.Experiments3.sw_sem_misses
      s.Experiments3.sw_sem_equal
  | None -> add "  \"sweep\": null,\n");
  (match !Experiments2.obs_result with
  | Some o ->
    add "  \"obs\": {\"ns_plain\": %.1f, \"ns_disabled\": %.1f, \"disabled_overhead_pct\": %.3f, \"t_untraced_s\": %.3f, \"t_traced_s\": %.3f, \"events\": %d, \"digest_identical\": %b},\n"
      o.Experiments2.ob_ns_plain o.Experiments2.ob_ns_disabled
      o.Experiments2.ob_overhead_pct o.Experiments2.ob_t_off
      o.Experiments2.ob_t_on o.Experiments2.ob_events o.Experiments2.ob_equal
  | None -> add "  \"obs\": null,\n");
  (* The traced run's metric snapshot, merged in as one flat object (the
     same shape `synthlc_cli --metrics` writes). *)
  (match !Experiments2.obs_result with
  | Some o when o.Experiments2.ob_metrics <> [] ->
    add "  \"metrics\": {\n";
    List.iteri
      (fun i (k, v) ->
        add "    \"%s\": %s%s\n" k
          (if Float.is_integer v && Float.abs v < 1e15 then
             Printf.sprintf "%.0f" v
           else Printf.sprintf "%.17g" v)
          (if i = List.length o.Experiments2.ob_metrics - 1 then "" else ","))
      o.Experiments2.ob_metrics;
    add "  }\n"
  | Some _ | None -> add "  \"metrics\": null\n");
  add "}\n";
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf));
  Printf.printf "wrote %s\n" path

let () =
  let raw = Array.to_list Sys.argv |> List.tl in
  let json = ref false in
  let sel = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "-j" :: n :: rest ->
      (match int_of_string_opt n with
      | Some v when v >= 1 -> Experiments2.requested_jobs := v
      | _ -> failwith "bench: -j expects a positive integer");
      parse rest
    | x :: rest ->
      sel := x :: !sel;
      parse rest
  in
  parse raw;
  let t0 = Unix.gettimeofday () in
  let profile =
    match Experiments.profile with `Quick -> "quick" | `Full -> "full"
  in
  Printf.printf "RTL2MuPATH + SynthLC reproduction benches (profile: %s)\n" profile;
  let selected =
    match List.rev !sel with
    | [] -> List.map fst experiments @ [ "micro" ]
    | l -> l
  in
  (* Unknown IDs are a harness error (exit 2), not a silent no-op: a CI
     step selecting a misspelled experiment must fail loudly rather than
     produce an empty-but-green run. *)
  let known = List.map fst experiments @ [ "micro" ] in
  (match List.filter (fun id -> not (List.mem id known)) selected with
  | [] -> ()
  | bad ->
    Printf.eprintf "bench: unknown experiment id(s): %s (expected: %s)\n"
      (String.concat ", " bad)
      (String.concat ", " known);
    exit 2);
  let rows = ref [] in
  List.iter
    (fun (id, f) ->
      if List.mem id selected then begin
        let over_budget =
          match time_budget with
          | Some b -> Unix.gettimeofday () -. t0 > b
          | None -> false
        in
        let p0 = bucket_props () in
        let te = Unix.gettimeofday () in
        let status =
          if over_budget then begin
            Printf.printf "  [SKIPPED] %s: REPRO_TIME_BUDGET exceeded\n%!" id;
            "skipped"
          end
          else
            try
              f ();
              "ok"
            with e ->
              Printf.printf "  [EXPERIMENT-ERROR] %s: %s\n%!" id
                (Printexc.to_string e);
              "error"
        in
        rows :=
          {
            row_id = id;
            row_time = Unix.gettimeofday () -. te;
            row_props = bucket_props () - p0;
            row_status = status;
          }
          :: !rows
      end)
    experiments;
  if List.mem "micro" selected then begin
    let te = Unix.gettimeofday () in
    micro_benchmarks ();
    rows :=
      {
        row_id = "micro";
        row_time = Unix.gettimeofday () -. te;
        row_props = 0;
        row_status = "ok";
      }
      :: !rows
  end;
  let total = Unix.gettimeofday () -. t0 in
  Printf.printf "\ntotal bench time: %.1fs\n" total;
  if !json then
    write_json "BENCH_results.json" ~profile
      ~jobs:
        (if !Experiments2.requested_jobs >= 1 then !Experiments2.requested_jobs
         else Pool.default_jobs ())
      ~total (List.rev !rows)
