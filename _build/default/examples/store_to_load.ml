(* The §IV-A store-to-load stalling channel, demonstrated three ways:

   1. timing: a load's latency depends on whether its page offset matches an
      older pending store's — i.e. on the *store's address operand*;
   2. SC-Safe (Def. V.1): two executions that agree on everything public but
      differ in the store's address produce different observation traces;
   3. µPATH synthesis: the load exhibits distinct µPATHs (ldStall vs not).

   Run with: dune exec examples/store_to_load.exe *)

let run_load_latency store_addr =
  let meta = Designs.Core.build Designs.Core.baseline in
  let nl = meta.Designs.Meta.nl in
  let sget n = Option.get (Hdl.Netlist.find_named nl n) in
  let sim = Sim.create ~seed:9 nl in
  (* r1 = store address (the secret), r2 = load address (public). *)
  List.iteri
    (fun i r ->
      Sim.poke_reg sim r
        (Bitvec.of_int ~width:Isa.xlen (if i = 0 then store_addr else 4)))
    meta.Designs.Meta.arf;
  let program =
    match Isa.assemble "sw r3, 0(r1)\nsw r3, 0(r1)\nlw r3, 0(r2)" with
    | Ok p -> Array.of_list p
    | Error e -> failwith e
  in
  let instr_at pc =
    if pc < Array.length program then Isa.encode program.(pc)
    else Isa.encode Isa.nop
  in
  let load_commit = ref None in
  for c = 0 to 39 do
    Sim.eval sim;
    let pc = Bitvec.to_int (Sim.peek sim (sget "fetch_pc")) in
    Sim.poke sim (sget Designs.Core.sig_if_instr_in0) (instr_at pc);
    Sim.poke sim (sget Designs.Core.sig_if_instr_in1) (instr_at (pc + 1));
    Sim.eval sim;
    if
      Sim.peek_bool sim (sget "commit")
      && Bitvec.to_int (Sim.peek sim (sget "commit_pc")) = 2
      && !load_commit = None
    then load_commit := Some c;
    Sim.step sim
  done;
  !load_commit

let () =
  (* 1. Timing difference: store address 4 shares the load's page offset
     (addr mod 4); store address 5 does not. *)
  let t_match = run_load_latency 4 in
  let t_clear = run_load_latency 5 in
  Printf.printf "load commit cycle, store offset matches : %s\n"
    (match t_match with Some c -> string_of_int c | None -> "never");
  Printf.printf "load commit cycle, store offset differs : %s\n"
    (match t_clear with Some c -> string_of_int c | None -> "never");
  assert (t_match <> t_clear);
  Printf.printf "=> the LOAD's latency leaks the STORE's address operand.\n\n";

  (* 2. SC-Safe violation per Definition V.1: secret = r1 (the store's
     address register). *)
  let program =
    match Isa.assemble "sw r3, 0(r1)\nsw r3, 0(r1)\nlw r3, 0(r2)" with
    | Ok p -> p
    | Error e -> failwith e
  in
  (match
     Synthlc.Scsafe.find_violation
       ~design:(fun () -> Designs.Core.build Designs.Core.baseline)
       ~program ~secret_reg:0 ()
   with
  | Some v ->
    Printf.printf
      "SC-Safe violated: secret r1 = %s vs %s diverges the observation trace at cycle %d\n\n"
      (Bitvec.to_hex_string v.Synthlc.Scsafe.vi_low)
      (Bitvec.to_hex_string v.Synthlc.Scsafe.vi_high)
      v.Synthlc.Scsafe.vi_diverge_cycle
  | None -> Printf.printf "no SC-Safe violation found (unexpected)\n\n");

  (* 3. µPATH variability for the load. *)
  let meta = Designs.Core.build Designs.Core.baseline in
  let iuv = Isa.make ~rd:3 ~rs1:2 Isa.LW in
  let stim =
    Designs.Stimulus.core
      ~pins:
        [
          (Designs.Core.iuv_pc, iuv);
          (Designs.Core.iuv_pc - 1, Isa.make ~rs1:1 ~rs2:3 Isa.SW);
        ]
      meta
  in
  let config =
    { Mc.Checker.default_config with bmc_depth = 14; sim_episodes = 10; sim_cycles = 40 }
  in
  Printf.printf "synthesizing uPATHs for `%s` behind a store...\n%!"
    (Isa.to_string iuv);
  let r =
    Mupath.Synth.run ~config ~stimulus:stim ~meta ~iuv
      ~iuv_pc:Designs.Core.iuv_pc ()
  in
  Format.printf "%a@." Mupath.Synth.pp_result r;
  let stall_path =
    List.exists
      (fun p -> List.mem_assoc "ldStall" p.Mupath.Synth.pl_set)
      r.Mupath.Synth.paths
  in
  let fast_path =
    List.exists
      (fun p -> not (List.mem_assoc "ldStall" p.Mupath.Synth.pl_set))
      r.Mupath.Synth.paths
  in
  Printf.printf "stall uPATH found: %b; stall-free uPATH found: %b\n" stall_path
    fast_path
