(* Fig. 1: the zero-skip multiply channel on CVA6-MUL (§I-A).

   On the CVA6-MUL variant, a multiply occupies the multiplication unit for
   1 cycle when an operand is zero and 4 cycles otherwise — an
   operand-dependent µPATH difference that a receiver can time.  This
   example measures the two latencies, then synthesizes MUL's µPATHs and
   mulU occupancy classes with RTL2MµPATH, reproducing the structure of the
   paper's Fig. 1 (µPATH 0 vs µPATH 1).

   Run with: dune exec examples/zero_skip_mul.exe *)

let mul_latency ~zero_operand =
  let meta = Designs.Core.build Designs.Core.cva6_mul in
  let nl = meta.Designs.Meta.nl in
  let sget n = Option.get (Hdl.Netlist.find_named nl n) in
  let sim = Sim.create ~seed:3 nl in
  List.iteri
    (fun i r ->
      Sim.poke_reg sim r
        (Bitvec.of_int ~width:Isa.xlen
           (if i = 0 then if zero_operand then 0 else 5 else 7)))
    meta.Designs.Meta.arf;
  let program =
    match Isa.assemble "mul r3, r1, r2" with
    | Ok p -> Array.of_list p
    | Error e -> failwith e
  in
  let instr_at pc =
    if pc < Array.length program then Isa.encode program.(pc)
    else Isa.encode Isa.nop
  in
  let commit_cycle = ref None in
  for c = 0 to 29 do
    Sim.eval sim;
    let pc = Bitvec.to_int (Sim.peek sim (sget "fetch_pc")) in
    Sim.poke sim (sget Designs.Core.sig_if_instr_in0) (instr_at pc);
    Sim.poke sim (sget Designs.Core.sig_if_instr_in1) (instr_at (pc + 1));
    Sim.eval sim;
    if
      Sim.peek_bool sim (sget "commit")
      && Bitvec.to_int (Sim.peek sim (sget "commit_pc")) = 0
      && !commit_cycle = None
    then commit_cycle := Some c;
    Sim.step sim
  done;
  Option.get !commit_cycle

let () =
  let fast = mul_latency ~zero_operand:true in
  let slow = mul_latency ~zero_operand:false in
  Printf.printf "MUL commit cycle with a zero operand   : %d\n" fast;
  Printf.printf "MUL commit cycle with nonzero operands : %d\n" slow;
  assert (slow - fast = 3);
  Printf.printf
    "=> uPATH 0 spends 1 cycle in mulU, uPATH 1 spends 4 (Fig. 1's shape).\n\n";

  let meta = Designs.Core.build Designs.Core.cva6_mul in
  let iuv = Isa.make ~rd:3 ~rs1:1 ~rs2:2 Isa.MUL in
  let stim = Designs.Stimulus.core ~pins:[ (Designs.Core.iuv_pc, iuv) ] meta in
  let config =
    { Mc.Checker.default_config with bmc_depth = 14; sim_episodes = 10; sim_cycles = 40 }
  in
  Printf.printf "synthesizing MUL uPATHs on cva6_mul...\n%!";
  let r =
    Mupath.Synth.run ~config ~stimulus:stim ~revisit_count_labels:[ "mulU" ]
      ~meta ~iuv ~iuv_pc:Designs.Core.iuv_pc ()
  in
  Format.printf "%a@." Mupath.Synth.pp_result r;
  let mulu_counts = List.assoc "mulU" r.Mupath.Synth.revisit_counts in
  Printf.printf "mulU occupancy classes: %s (paper: 1 vs 4)\n"
    (String.concat ", " (List.map string_of_int mulu_counts));
  assert (List.mem 1 mulu_counts && List.mem 4 mulu_counts)
