examples/cache_channel.ml: Bitvec Designs Format Hdl Isa List Mc Mupath Option Printf Sim String
