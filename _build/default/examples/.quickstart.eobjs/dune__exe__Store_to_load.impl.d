examples/store_to_load.ml: Array Bitvec Designs Format Hdl Isa List Mc Mupath Option Printf Sim Synthlc
