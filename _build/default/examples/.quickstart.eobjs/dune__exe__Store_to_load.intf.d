examples/store_to_load.mli:
