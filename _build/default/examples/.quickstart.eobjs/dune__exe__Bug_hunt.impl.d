examples/bug_hunt.ml: Array Bitvec Designs Hdl Isa List Option Printf Sim
