examples/cache_channel.mli:
