examples/quickstart.mli:
