examples/zero_skip_mul.ml: Array Bitvec Designs Format Hdl Isa List Mc Mupath Option Printf Sim String
