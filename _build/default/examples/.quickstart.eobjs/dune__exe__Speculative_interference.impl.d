examples/speculative_interference.ml: Array Bitvec Designs Hdl Isa List Option Printf Sim Synthlc
