examples/zero_skip_mul.mli:
