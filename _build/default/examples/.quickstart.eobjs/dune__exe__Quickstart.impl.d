examples/quickstart.ml: Array Bitvec Designs Format Hdl Isa List Mc Mupath Option Printf Sim String Uhb
