(* The three CVA6 control-flow bugs of §VII-B2, reproduced on CVA6-lite and
   shown absent on the fixed variant:

   1. JALR never raises a misaligned-target exception;
   2. JAL enforces only 2-byte alignment (checks target bit 0, not 1:0);
   3. conditional branches raise the misaligned-target exception regardless
      of whether the branch is taken.

   The paper found these by inspecting synthesized µPATHs (JALR never
   progressing to scbExcp, branch exception independence from operands);
   here we exercise each divergence by directed simulation on both design
   variants.

   Run with: dune exec examples/bug_hunt.exe *)

let saw_exception cfg program arf1 =
  let meta = Designs.Core.build cfg in
  let nl = meta.Designs.Meta.nl in
  let sget n = Option.get (Hdl.Netlist.find_named nl n) in
  let sim = Sim.create ~seed:5 nl in
  List.iteri
    (fun i r ->
      Sim.poke_reg sim r (Bitvec.of_int ~width:Isa.xlen (if i = 0 then arf1 else 0)))
    meta.Designs.Meta.arf;
  let program =
    match Isa.assemble program with
    | Ok p -> Array.of_list p
    | Error e -> failwith e
  in
  let instr_at pc =
    if pc < Array.length program then Isa.encode program.(pc)
    else Isa.encode Isa.nop
  in
  let excp = ref false in
  for _ = 0 to 29 do
    Sim.eval sim;
    let pc = Bitvec.to_int (Sim.peek sim (sget "fetch_pc")) in
    Sim.poke sim (sget Designs.Core.sig_if_instr_in0) (instr_at pc);
    Sim.poke sim (sget Designs.Core.sig_if_instr_in1) (instr_at (pc + 1));
    Sim.eval sim;
    for i = 0 to 3 do
      if Bitvec.to_int (Sim.peek sim (sget (Printf.sprintf "scb%d_state" i))) = 4
      then excp := true
    done;
    Sim.step sim
  done;
  !excp

let buggy = Designs.Core.baseline
let fixed = Designs.Core.all_fixed

let () =
  (* Bug 1: JALR to a 2-byte-misaligned target (r1 = 6, target 6+0: bits 1:0
     = 2'b10).  RISC-V requires an exception; buggy CVA6-lite is silent. *)
  let jalr_prog = "jalr r2, r1, 0" in
  let b1_buggy = saw_exception buggy jalr_prog 6 in
  let b1_fixed = saw_exception fixed jalr_prog 6 in
  Printf.printf "JALR to misaligned target: exception on buggy=%b fixed=%b\n"
    b1_buggy b1_fixed;
  assert ((not b1_buggy) && b1_fixed);

  (* Bug 2: JAL with target bits 1:0 = 2'b10 (imm = 2 from pc 0): buggy JAL
     checks only bit 0, so it misses this misalignment. *)
  let jal_prog = "jal r2, 2" in
  let b2_buggy = saw_exception buggy jal_prog 0 in
  let b2_fixed = saw_exception fixed jal_prog 0 in
  Printf.printf "JAL to 2-byte-aligned (4-byte-misaligned) target: buggy=%b fixed=%b\n"
    b2_buggy b2_fixed;
  assert ((not b2_buggy) && b2_fixed);
  (* ...but both variants catch a 1-byte-misaligned JAL target. *)
  let b2b_buggy = saw_exception buggy "jal r2, 1" 0 in
  assert b2b_buggy;

  (* Bug 3: a NOT-taken branch with a misaligned target.  RISC-V raises the
     exception only when the branch is taken; buggy CVA6-lite raises it
     regardless. *)
  let br_prog = "addi r1, r0, 1\nbeq r1, r0, 2" in
  (* r1=1 != r0 -> not taken; target pc*4+2 is misaligned *)
  let b3_buggy = saw_exception buggy br_prog 0 in
  let b3_fixed = saw_exception fixed br_prog 0 in
  Printf.printf "NOT-taken branch with misaligned target: buggy=%b fixed=%b\n"
    b3_buggy b3_fixed;
  assert (b3_buggy && not b3_fixed);

  (* Bug 4 (§VII-B2's SCB counter-width bug): the buggy scoreboard admits
     one fewer in-flight instruction.  Observe peak occupancy behind a slow
     divider. *)
  let peak_occupancy cfg =
    let meta = Designs.Core.build cfg in
    let nl = meta.Designs.Meta.nl in
    let sget n = Option.get (Hdl.Netlist.find_named nl n) in
    let sim = Sim.create ~seed:8 nl in
    List.iteri
      (fun i r -> Sim.poke_reg sim r (Bitvec.of_int ~width:Isa.xlen (200 + i)))
      meta.Designs.Meta.arf;
    let program =
      match
        Isa.assemble "divu r3, r1, r2\nadd r1, r2, r2\nsw r2, 0(r2)\nbeq r1, r0, 4\nsw r1, 1(r2)"
      with
      | Ok p -> Array.of_list p
      | Error e -> failwith e
    in
    let instr_at pc =
      if pc < Array.length program then Isa.encode program.(pc)
      else Isa.encode Isa.nop
    in
    let peak = ref 0 in
    for _ = 0 to 29 do
      Sim.eval sim;
      let pc = Bitvec.to_int (Sim.peek sim (sget "fetch_pc")) in
      Sim.poke sim (sget Designs.Core.sig_if_instr_in0) (instr_at pc);
      Sim.poke sim (sget Designs.Core.sig_if_instr_in1) (instr_at (pc + 1));
      Sim.eval sim;
      peak := max !peak (Bitvec.to_int (Sim.peek sim (sget "scb_count")));
      Sim.step sim
    done;
    !peak
  in
  let p_buggy = peak_occupancy buggy and p_fixed = peak_occupancy fixed in
  Printf.printf "peak scoreboard occupancy: buggy=%d fixed=%d (4 entries)\n"
    p_buggy p_fixed;
  assert (p_buggy = 3 && p_fixed = 4);
  Printf.printf "\nall four CVA6-lite bugs reproduced and absent when fixed.\n"
