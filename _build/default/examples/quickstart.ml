(* Quickstart: build the CVA6-lite core, run a program on the cycle-accurate
   simulator, watch performing-location occupancy (a concrete µPATH), and
   synthesize the formally verified µPATH set for one instruction.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Elaborate the design; [meta] carries the §V-A annotations. *)
  let meta = Designs.Core.build Designs.Core.baseline in
  let nl = meta.Designs.Meta.nl in
  Printf.printf "design %s: %d netlist nodes, %d registers, %d uFSMs\n"
    meta.Designs.Meta.design_name (Hdl.Netlist.num_nodes nl)
    (List.length (Hdl.Netlist.registers nl))
    (List.length meta.Designs.Meta.ufsms);

  (* 2. Assemble and simulate a small program. *)
  let program =
    match
      Isa.assemble
        "addi r1, r0, 6\naddi r2, r0, 7\nmul r3, r1, r2\nsw r3, 1(r0)\nlw r2, 1(r0)"
    with
    | Ok p -> Array.of_list p
    | Error e -> failwith e
  in
  let sim = Sim.create ~seed:42 nl in
  let sget n = Option.get (Hdl.Netlist.find_named nl n) in
  let instr_at pc =
    if pc < Array.length program then Isa.encode program.(pc)
    else Isa.encode Isa.nop
  in
  Printf.printf "\ncycle-by-cycle PL occupancy (instruction PCs in brackets):\n";
  for c = 0 to 19 do
    Sim.eval sim;
    let pc = Bitvec.to_int (Sim.peek sim (sget "fetch_pc")) in
    Sim.poke sim (sget Designs.Core.sig_if_instr_in0) (instr_at pc);
    Sim.poke sim (sget Designs.Core.sig_if_instr_in1) (instr_at (pc + 1));
    Sim.eval sim;
    let cells =
      List.filter_map
        (fun (u : Designs.Meta.ufsm) ->
          let state =
            match u.Designs.Meta.vars with
            | [] -> Bitvec.zero 1
            | v :: rest ->
              List.fold_left
                (fun acc v' -> Bitvec.concat acc (Sim.peek sim v'))
                (Sim.peek sim v) rest
          in
          if List.exists (Bitvec.equal state) u.Designs.Meta.idle_states then None
          else
            Some
              (Printf.sprintf "%s[%d]"
                 (Designs.Meta.state_value meta u state)
                 (Bitvec.to_int (Sim.peek sim u.Designs.Meta.pcr))))
        meta.Designs.Meta.ufsms
    in
    Printf.printf "  c%02d: %s\n" c (String.concat " " cells);
    Sim.step sim
  done;
  Sim.eval sim;
  Printf.printf "\nr3 = %d (expect 42), mem[1] = %d\n"
    (Bitvec.to_int (Sim.peek sim (sget "arf3")))
    (Bitvec.to_int (Sim.peek sim (sget "mem1")));

  (* 3. Synthesize the µPATH set for an ADD (fresh design instance: the
     harness instruments the netlist). *)
  let meta = Designs.Core.build Designs.Core.baseline in
  let iuv = Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD in
  let stim = Designs.Stimulus.core ~pins:[ (Designs.Core.iuv_pc, iuv) ] meta in
  let config =
    { Mc.Checker.default_config with bmc_depth = 12; sim_episodes = 6; sim_cycles = 36 }
  in
  Printf.printf "\nsynthesizing uPATHs for `%s` (a minute or two)...\n%!"
    (Isa.to_string iuv);
  let r =
    Mupath.Synth.run ~config ~stimulus:stim ~meta ~iuv
      ~iuv_pc:Designs.Core.iuv_pc ()
  in
  Format.printf "%a@." Mupath.Synth.pp_result r;
  (* 4. Render the µPATHs as DOT for graphviz. *)
  List.iteri
    (fun i p ->
      let dot = Uhb.Dot.of_path p in
      Printf.printf "uPATH %d as DOT (%d bytes) -- pipe to `dot -Tpng`\n" i
        (String.length dot))
    (Mupath.Synth.to_uhb_paths r)
