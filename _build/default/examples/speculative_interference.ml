(* The new ST_comSTB channel of §VII-A1, demonstrated at the value level:

   a COMMITTED store draining from the committed store buffer shares the
   single memory port with the load unit, and CVA6(-lite) prioritizes the
   younger load.  So *when a committed store's memory write lands* is a
   function of a younger load's address operand:

     - if the load's page offset matches a pending store, the load parks in
       ldStall and leaves the port alone -> the store drains immediately;
     - otherwise the load takes the port for its access -> the committed
       store's drain slips.

   The store has already committed: its execution time is over, yet its
   post-commit µPATH still varies with the *younger* instruction's operand.
   This is the channel the paper is first to report, and the basis of the
   new speculative-interference class (§VII-A1): a transient load — one
   squashed by an older excepting instruction — exerts the same port
   pressure, so a bound-to-squash instruction's operand reaches a receiver
   through an older, committed transponder.  (SynthLC establishes the
   transient/dynamic-younger typing via symbolic IFT in bench experiment
   E5; here we show the underlying port mechanics concretely.)

   Run with: dune exec examples/speculative_interference.exe *)

let second_store_drain ~ld_addr =
  let meta = Designs.Core.build Designs.Core.all_fixed in
  let nl = meta.Designs.Meta.nl in
  let sget n = Option.get (Hdl.Netlist.find_named nl n) in
  let sim = Sim.create ~seed:6 nl in
  (* r1 = first store's address (4), r3 = second store's address (8),
     r2 = the younger load's address — the secret-dependent operand. *)
  List.iteri
    (fun i r ->
      let v = match i with 0 -> 4 | 1 -> ld_addr | _ -> 8 in
      Sim.poke_reg sim r (Bitvec.of_int ~width:Isa.xlen v))
    meta.Designs.Meta.arf;
  let program =
    match Isa.assemble "sw r3, 0(r1)\nsw r1, 0(r3)\nlw r0, 0(r2)" with
    | Ok p -> Array.of_list p
    | Error e -> failwith e
  in
  let instr_at pc =
    if pc < Array.length program then Isa.encode program.(pc)
    else Isa.encode Isa.nop
  in
  let drain = ref None in
  for c = 0 to 39 do
    Sim.eval sim;
    let pc = Bitvec.to_int (Sim.peek sim (sget "fetch_pc")) in
    Sim.poke sim (sget Designs.Core.sig_if_instr_in0) (instr_at pc);
    Sim.poke sim (sget Designs.Core.sig_if_instr_in1) (instr_at (pc + 1));
    Sim.eval sim;
    (* watch the memory-request stage for the SECOND store (pc 1) *)
    if
      Sim.peek_bool sim (sget "mrq_v")
      && Bitvec.to_int (Sim.peek sim (sget "mrq_pc")) = 1
      && !drain = None
    then drain := Some c;
    Sim.step sim
  done;
  Option.get !drain

let () =
  (* Load address 12 shares page offset 0 with the pending stores (parks in
     ldStall); address 13 does not (takes the port). *)
  let off_match = second_store_drain ~ld_addr:12 in
  let contend = second_store_drain ~ld_addr:13 in
  Printf.printf "committed SW's memory write lands at cycle:\n";
  Printf.printf "  younger LW offset-matches (parks in ldStall) : %d\n" off_match;
  Printf.printf "  younger LW contends for the memory port      : %d\n" contend;
  assert (contend > off_match);
  Printf.printf
    "\n=> the committed store's drain cycle is a function of the YOUNGER\n";
  Printf.printf
    "   load's address operand: dst ST_comSTB(SW^N, LW^D>.rs1) — the novel\n";
  Printf.printf "   channel of SS VII-A1, reproduced at the value level.\n";

  (* And the receiver-visible consequence per Definition V.1: make the
     load's address the secret and diff observation traces. *)
  let program =
    match Isa.assemble "sw r3, 0(r1)\nsw r1, 0(r3)\nlw r0, 0(r2)" with
    | Ok p -> p
    | Error e -> failwith e
  in
  match
    Synthlc.Scsafe.find_violation
      ~design:(fun () -> Designs.Core.build Designs.Core.all_fixed)
      ~program ~secret_reg:1 ()
  with
  | Some v ->
    Printf.printf
      "\nSC-Safe violated with r2 secret: 0x%s vs 0x%s diverge at cycle %d\n"
      (Bitvec.to_hex_string v.Synthlc.Scsafe.vi_low)
      (Bitvec.to_hex_string v.Synthlc.Scsafe.vi_high)
      v.Synthlc.Scsafe.vi_diverge_cycle
  | None -> Printf.printf "\n(no SC-Safe witness found in this trial budget)\n"
