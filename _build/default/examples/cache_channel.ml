(* The cache DUV channels (§VII-A2): hit/miss µPATHs with bank-split write
   destinations, plus the static-transmitter effect — the cache's pre-state
   (residue of earlier accesses) decides a later access's path.

   Run with: dune exec examples/cache_channel.exe *)

let () =
  (* 1. Directed simulation: a store that hits takes the wrD0/wrD1 path; a
     store that misses goes out on the AXI write path. *)
  let meta = Designs.Cache.build () in
  let nl = meta.Designs.Meta.nl in
  let sget n = Option.get (Hdl.Netlist.find_named nl n) in
  let sim = Sim.create ~seed:11 nl in
  (* Pre-state: make set 0 way 0 hold tag of address 0x40. *)
  Sim.poke_reg sim (sget "tag_v_0_0") (Bitvec.of_int ~width:1 1);
  Sim.poke_reg sim (sget "tag_t_0_0")
    (Bitvec.extract (Bitvec.of_int ~width:8 0x40) ~hi:7 ~lo:2);
  List.iter
    (fun (s, w) ->
      Sim.poke_reg sim (sget (Printf.sprintf "tag_v_%d_%d" s w))
        (Bitvec.of_int ~width:1 0))
    [ (0, 1); (0, 2); (0, 3); (1, 0); (1, 1); (1, 2); (1, 3) ];
  let drive_store addr =
    let states = ref [] in
    for c = 0 to 11 do
      Sim.poke sim (sget Designs.Cache.sig_req_instr)
        (Isa.encode (Isa.make Isa.SW));
      Sim.poke sim (sget Designs.Cache.sig_req_addr)
        (Bitvec.of_int ~width:8 addr);
      Sim.poke sim (sget Designs.Cache.sig_req_data) (Bitvec.of_int ~width:8 c);
      Sim.poke sim (sget "axi_rdata0") (Bitvec.zero 8);
      Sim.poke sim (sget "axi_rdata1") (Bitvec.zero 8);
      Sim.eval sim;
      states := Bitvec.to_int (Sim.peek sim (sget "ctl_state")) :: !states;
      Sim.step sim
    done;
    List.rev !states
  in
  let hit_trace = drive_store 0x40 in
  Printf.printf "store to 0x40 (resident line) controller states: %s\n"
    (String.concat "," (List.map string_of_int hit_trace));
  assert (List.mem 2 hit_trace) (* wrD0: data-bank-0 write *);
  let sim2 = Sim.create ~seed:11 nl in
  ignore sim2;
  let miss_trace = drive_store 0x80 in
  Printf.printf "store to 0x80 (absent line)  controller states: %s\n"
    (String.concat "," (List.map string_of_int miss_trace));
  assert (List.mem 7 miss_trace) (* wrMiss: AXI write-through *);
  Printf.printf
    "=> which bank/path a store takes depends on its own address AND the\n";
  Printf.printf
    "   tags left behind by earlier (static-transmitter) accesses.\n\n";

  (* 2. µPATH synthesis for a store request on the cache DUV — modular
     analysis: note how much cheaper the properties are than on the core
     (the paper's §VII-B3 modularity observation). *)
  let meta = Designs.Cache.build () in
  let iuv = Isa.make Isa.SW in
  let stim = Designs.Stimulus.cache ~pins:[ (Designs.Cache.iuv_pc, iuv) ] meta in
  let config =
    { Mc.Checker.default_config with bmc_depth = 12; sim_episodes = 12; sim_cycles = 32 }
  in
  Printf.printf "synthesizing SW uPATHs on the cache DUV...\n%!";
  let r =
    Mupath.Synth.run ~config ~stimulus:stim ~meta ~iuv
      ~iuv_pc:Designs.Cache.iuv_pc ()
  in
  Format.printf "%a@." Mupath.Synth.pp_result r;
  let has lbl p = List.mem_assoc lbl p.Mupath.Synth.pl_set in
  Printf.printf "hit-path (wrD0/wrD1) found: %b; miss-path (wrMiss) found: %b\n"
    (List.exists (fun p -> has "wrD0" p || has "wrD1" p) r.Mupath.Synth.paths)
    (List.exists (has "wrMiss") r.Mupath.Synth.paths)
