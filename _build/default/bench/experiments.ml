(* Experiment harness regenerating every table and figure of the paper's
   evaluation (the E1..E13 index of DESIGN.md).  Absolute numbers differ —
   the substrate is a downscaled simulator, not the authors' JasperGold
   testbed — but each experiment asserts the paper's qualitative shape
   (who exhibits variability, which channels exist, where the crossovers
   are) and prints the regenerated rows/series. *)

module Meta = Designs.Meta
module Checker = Mc.Checker

let profile =
  match Sys.getenv_opt "REPRO_PROFILE" with
  | Some "full" -> `Full
  | _ -> `Quick

let config =
  match profile with
  | `Quick ->
    {
      Checker.default_config with
      Checker.bmc_depth = 12;
      bmc_conflicts = 60_000;
      induction_max_k = 2;
      sim_episodes = 12;
      sim_cycles = 44;
    }
  | `Full ->
    {
      Checker.default_config with
      Checker.bmc_depth = 16;
      bmc_conflicts = 150_000;
      induction_max_k = 3;
      sim_episodes = 24;
      sim_cycles = 52;
    }

let cache_config = { config with Checker.bmc_depth = 14 }

let section id title =
  Printf.printf "\n=======================================================\n";
  Printf.printf "%s: %s\n" id title;
  Printf.printf "=======================================================\n%!"

let check name cond =
  Printf.printf "  [%s] %s\n%!" (if cond then "ok" else "SHAPE-MISMATCH") name

(* Accumulated statistics for E11. *)
type stat_bucket = {
  mutable props : int;
  mutable undetermined : int;
  mutable sim_discharged : int;
  mutable inductive : int;
  mutable time : float;
}

let core_stats = { props = 0; undetermined = 0; sim_discharged = 0; inductive = 0; time = 0. }
let cache_stats = { props = 0; undetermined = 0; sim_discharged = 0; inductive = 0; time = 0. }

let record bucket (s : Checker.Stats.t) =
  bucket.props <- bucket.props + s.Checker.Stats.n_props;
  bucket.undetermined <- bucket.undetermined + s.Checker.Stats.n_undetermined;
  bucket.sim_discharged <- bucket.sim_discharged + s.Checker.Stats.n_sim_discharged;
  bucket.inductive <- bucket.inductive + s.Checker.Stats.n_inductive;
  bucket.time <- bucket.time +. s.Checker.Stats.total_time

let run_mupath ?(cfg = Designs.Core.baseline) ?(counts = []) ?(pins = []) iuv =
  let meta = Designs.Core.build cfg in
  let stim =
    Designs.Stimulus.core ~pins:((Designs.Core.iuv_pc, iuv) :: pins) meta
  in
  let r =
    Mupath.Synth.run ~config ~stimulus:stim ~revisit_count_labels:counts ~meta
      ~iuv ~iuv_pc:Designs.Core.iuv_pc ()
  in
  record core_stats r.Mupath.Synth.checker_stats;
  r

let run_cache_mupath ?(counts = []) iuv =
  let meta = Designs.Cache.build () in
  let stim = Designs.Stimulus.cache ~pins:[ (Designs.Cache.iuv_pc, iuv) ] meta in
  let r =
    Mupath.Synth.run ~config:cache_config ~stimulus:stim
      ~revisit_count_labels:counts ~meta ~iuv ~iuv_pc:Designs.Cache.iuv_pc ()
  in
  record cache_stats r.Mupath.Synth.checker_stats;
  r

let print_paths (r : Mupath.Synth.result) =
  Format.printf "%a@." Mupath.Synth.pp_result r

let has_pl lbl (p : Mupath.Synth.path) = List.mem_assoc lbl p.Mupath.Synth.pl_set

(* ------------------------------------------------------------------ *)
(* E1 — Fig. 1: MUL µPATHs on CVA6-MUL                                  *)
(* ------------------------------------------------------------------ *)
let e1 () =
  section "E1" "Fig. 1 - zero-skip MUL uPATHs on CVA6-MUL";
  let iuv = Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.MUL in
  let r = run_mupath ~cfg:Designs.Core.cva6_mul ~counts:[ "mulU" ] iuv in
  print_paths r;
  let counts = List.assoc "mulU" r.Mupath.Synth.revisit_counts in
  Printf.printf "mulU occupancy classes: {%s}  (paper: 1 vs 4 cycles)\n"
    (String.concat "," (List.map string_of_int counts));
  check "MUL has a 1-cycle (zero-skip) mulU class" (List.mem 1 counts);
  check "MUL has a 4-cycle mulU class" (List.mem 4 counts);
  check "exactly two mulU occupancy classes" (List.length counts = 2);
  check "mulU consecutively occupied in some uPATH"
    (List.exists
       (fun p ->
         match List.assoc_opt "mulU" p.Mupath.Synth.pl_set with
         | Some (Uhb.Revisit.Consecutive | Uhb.Revisit.Both) -> true
         | _ -> false)
       r.Mupath.Synth.paths)

(* ------------------------------------------------------------------ *)
(* E2 — Fig. 2: operand-packing ADD µPATHs on CVA6-OP                   *)
(* ------------------------------------------------------------------ *)
let e2 () =
  section "E2" "Fig. 2 - packed vs non-packed ADD on CVA6-OP";
  let iuv = Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD in
  let r = run_mupath ~cfg:Designs.Core.cva6_op ~counts:[ "ID" ] iuv in
  print_paths r;
  let id_counts = List.assoc "ID" r.Mupath.Synth.revisit_counts in
  Printf.printf "ID residency classes: {%s}  (paper: 1 packed vs 2 non-packed)\n"
    (String.concat "," (List.map string_of_int id_counts));
  check "1-cycle ID residency (packed or head-of-pair)" (List.mem 1 id_counts);
  check "2-cycle ID residency (non-packed younger)" (List.mem 2 id_counts);
  let a_dsts =
    Option.value (List.assoc_opt "ID" r.Mupath.Synth.decisions) ~default:[]
  in
  check "decision (ID, {ID}) - stall in decode" (List.mem [ "ID" ] a_dsts);
  check "decision (ID, {issue, scbIss}) - dispatch"
    (List.exists (fun d -> List.mem "issue" d && List.mem "scbIss" d) a_dsts)

(* ------------------------------------------------------------------ *)
(* E3 — Fig. 4a/4b: BEQ and LD µPATHs on the core                       *)
(* ------------------------------------------------------------------ *)
let e3 () =
  section "E3" "Fig. 4a/4b - BEQ and LW uPATHs on CVA6-lite";
  let beq = Isa.make ~rs1:1 ~rs2:2 ~imm:8 Isa.BEQ in
  let r = run_mupath beq in
  print_paths r;
  check "BEQ has multiple uPATHs (taken/not-taken contexts)"
    (List.length r.Mupath.Synth.paths >= 2);
  (* This BEQ's pinned immediate (8) yields an aligned target, so the
     misaligned-target exception path must be absent; E10 model-checks the
     misaligned (imm = 2) encoding against scbExcp on both design variants. *)
  check "aligned-target BEQ never reaches scbExcp"
    (not (List.exists (has_pl "scbExcp") r.Mupath.Synth.paths));
  let lw = Isa.make ~rd:3 ~rs1:2 Isa.LW in
  let r =
    run_mupath ~pins:[ (Designs.Core.iuv_pc - 1, Isa.make ~rs1:1 ~rs2:3 Isa.SW) ] lw
  in
  print_paths r;
  let stall = List.filter (has_pl "ldStall") r.Mupath.Synth.paths in
  let fast =
    List.filter (fun p -> not (has_pl "ldStall" p)) r.Mupath.Synth.paths
  in
  check "LW stall uPATH (page-offset match, SS IV-A)" (stall <> []);
  check "LW stall-free uPATH" (fast <> []);
  check "stall uPATH visits LSQ too" (List.exists (has_pl "LSQ") stall);
  let issue_dsts =
    Option.value (List.assoc_opt "issue" r.Mupath.Synth.decisions) ~default:[]
  in
  check "LD decision at issue has >= 2 destinations" (List.length issue_dsts >= 2)

(* ------------------------------------------------------------------ *)
(* E4 — Fig. 4c: ST µPATHs on the cache DUV                             *)
(* ------------------------------------------------------------------ *)
let e4 () =
  section "E4" "Fig. 4c - SW uPATHs on the cache DUV";
  let sw = Isa.make Isa.SW in
  let r = run_cache_mupath sw in
  print_paths r;
  check "hit path writes a data bank (wrD0/wrD1)"
    (List.exists (fun p -> has_pl "wrD0" p || has_pl "wrD1" p) r.Mupath.Synth.paths);
  check "miss path goes write-through (wrMiss + axiRq)"
    (List.exists (fun p -> has_pl "wrMiss" p && has_pl "axiRq" p) r.Mupath.Synth.paths);
  check "the two banks appear in different uPATHs (wr$[way/2], Fig. 5)"
    (List.exists (has_pl "wrD0") r.Mupath.Synth.paths
    && List.exists (has_pl "wrD1") r.Mupath.Synth.paths);
  let lw = Isa.make Isa.LW in
  let r = run_cache_mupath lw in
  print_paths r;
  check "LW hit path (rdTag -> rdData, no MSHR)"
    (List.exists
       (fun p -> has_pl "rdData" p && not (has_pl "MSHR" p))
       r.Mupath.Synth.paths);
  check "LW miss path allocates the MSHR and refills"
    (List.exists
       (fun p -> has_pl "MSHR" p && has_pl "fill" p)
       r.Mupath.Synth.paths)

(* ------------------------------------------------------------------ *)
(* E5 — Fig. 5: leakage functions (LD_issue and the new ST_comSTB)      *)
(* ------------------------------------------------------------------ *)
let flow_on_core ?(precise = true) ~transponder ~decisions ~transmitters ~kind
    ~operand () =
  let cell = ref None in
  let design () =
    let m = Designs.Core.build Designs.Core.baseline in
    cell := Some m;
    m
  in
  let pc_t = Synthlc.Flow.transmitter_pc ~iuv_pc:Designs.Core.iuv_pc kind in
  let tx_candidates =
    List.concat_map
      (fun o -> [ Isa.make ~rd:1 ~rs1:2 ~rs2:3 o; Isa.make ~rd:3 ~rs1:1 ~rs2:2 ~imm:4 o ])
      transmitters
  in
  let bound = ref None in
  let stim sim c =
    let f =
      match !bound with
      | Some f -> f
      | None ->
        let f =
          Designs.Stimulus.core
            ~pins:[ (Designs.Core.iuv_pc, transponder) ]
            ~rotate:[ (pc_t, tx_candidates) ]
            (Option.get !cell)
        in
        bound := Some f;
        f
    in
    f sim c
  in
  Synthlc.Flow.analyze ~config ~stimulus:stim ~precise ~design ~transponder
    ~decisions ~transmitters ~kind ~operand ~iuv_pc:Designs.Core.iuv_pc ()

let e5 () =
  section "E5" "Fig. 5 - leakage functions: LD_issue and the new ST_comSTB channel";
  (* LD_issue: a load's issue decision leaks an older store's rs1. *)
  let lw = Isa.make ~rd:3 ~rs1:2 Isa.LW in
  let r =
    run_mupath ~pins:[ (Designs.Core.iuv_pc - 1, Isa.make ~rs1:1 ~rs2:3 Isa.SW) ] lw
  in
  let decisions =
    List.filter (fun (_, ds) -> List.length ds > 1) r.Mupath.Synth.decisions
  in
  let a =
    flow_on_core ~transponder:lw ~decisions ~transmitters:[ Isa.SW ]
      ~kind:Synthlc.Types.Dynamic_older ~operand:Synthlc.Types.Rs1 ()
  in
  let ld_issue_tags =
    List.filter (fun (d : Synthlc.Types.tagged_decision) -> d.Synthlc.Types.src = "issue") a.Synthlc.Flow.tagged
  in
  Printf.printf "LD_issue: %d issue-decisions depend on an older SW's rs1\n"
    (List.length ld_issue_tags);
  List.iter
    (fun (d : Synthlc.Types.tagged_decision) ->
      Printf.printf "  dst LD_issue(LW^N, SW^D<.rs1) -> {%s}\n"
        (String.concat ", " d.Synthlc.Types.dst))
    ld_issue_tags;
  check "LD_issue leaks the older store's address operand (SS IV-A)"
    (List.length ld_issue_tags >= 2);
  let sigs =
    Synthlc.Engine.signatures_of_tagged lw r.Mupath.Synth.decisions a.Synthlc.Flow.tagged
  in
  List.iter (fun s -> Format.printf "%a@." Synthlc.Types.pp_signature s) sigs;

  (* ST_comSTB: a committed store's drain decision leaks a younger load's
     rs1 — the channel SS VII-A1 is first to report. *)
  let sw = Isa.make ~rs1:1 ~rs2:3 Isa.SW in
  let r =
    run_mupath ~pins:[ (Designs.Core.iuv_pc + 1, Isa.make ~rd:3 ~rs1:2 Isa.LW) ] sw
  in
  let decisions =
    List.filter (fun (_, ds) -> List.length ds > 1) r.Mupath.Synth.decisions
  in
  check "SW exhibits a comSTB decision"
    (List.mem_assoc "comSTB" decisions);
  let a =
    flow_on_core ~transponder:sw ~decisions ~transmitters:[ Isa.LW ]
      ~kind:Synthlc.Types.Dynamic_younger ~operand:Synthlc.Types.Rs1 ()
  in
  let st_comstb_tags =
    List.filter (fun (d : Synthlc.Types.tagged_decision) -> d.Synthlc.Types.src = "comSTB") a.Synthlc.Flow.tagged
  in
  Printf.printf "ST_comSTB: %d comSTB-decisions depend on a younger LW's rs1\n"
    (List.length st_comstb_tags);
  List.iter
    (fun (d : Synthlc.Types.tagged_decision) ->
      Printf.printf "  dst ST_comSTB(SW^N, LW^D>.rs1) -> {%s}\n"
        (String.concat ", " d.Synthlc.Types.dst))
    st_comstb_tags;
  check
    "NEW CHANNEL (SS VII-A1): committed store's drain leaks a younger load's address"
    (List.length st_comstb_tags >= 2)

(* ------------------------------------------------------------------ *)
(* E10 — §VII-B2 bugs: model-checked evidence                           *)
(* ------------------------------------------------------------------ *)
let scbexcp_reachable cfg iuv =
  let meta = Designs.Core.build cfg in
  let stim = Designs.Stimulus.core ~pins:[ (Designs.Core.iuv_pc, iuv) ] meta in
  let h =
    Mupath.Harness.create ~config ~stimulus:stim ~meta ~iuv
      ~iuv_pc:Designs.Core.iuv_pc ()
  in
  let chk = Mupath.Harness.checker h in
  let o = Checker.check_cover ~name:"scbExcp" chk [ (Mupath.Harness.occ_iuv h "scbExcp", true) ] in
  record core_stats (Checker.stats chk);
  match o with Checker.Reachable _ -> true | _ -> false

let e10 () =
  section "E10" "SS VII-B2 - the CVA6 bugs, found the paper's way";
  (* The paper: "RTL2MuPATH finds that following scbFin, JALR never
     progresses to scbExcp, while JAL and branches sometimes do." *)
  let jalr = Isa.make ~rd:1 ~rs1:2 Isa.JALR in
  let jal1 = Isa.make ~rd:1 ~imm:1 Isa.JAL in (* 1-byte misaligned target *)
  let jal2 = Isa.make ~rd:1 ~imm:2 Isa.JAL in (* 2-byte-aligned, 4-byte-misaligned *)
  let beq = Isa.make ~rs1:1 ~rs2:2 ~imm:2 Isa.BEQ in
  let b_jalr = scbexcp_reachable Designs.Core.baseline jalr in
  let b_jal1 = scbexcp_reachable Designs.Core.baseline jal1 in
  let b_jal2 = scbexcp_reachable Designs.Core.baseline jal2 in
  let b_beq = scbexcp_reachable Designs.Core.baseline beq in
  let f_jalr = scbexcp_reachable Designs.Core.all_fixed jalr in
  let f_jal2 = scbexcp_reachable Designs.Core.all_fixed jal2 in
  Printf.printf
    "scbExcp reachable on buggy design:  JALR=%b  JAL(imm=1)=%b  JAL(imm=2)=%b  BEQ=%b\n"
    b_jalr b_jal1 b_jal2 b_beq;
  Printf.printf "scbExcp reachable on fixed design:  JALR=%b  JAL(imm=2)=%b\n"
    f_jalr f_jal2;
  check "bug 1: JALR never raises the misaligned exception (buggy)" (not b_jalr);
  check "bug 1: fixed JALR can raise it" f_jalr;
  check "JAL and branches sometimes reach scbExcp (buggy)" (b_jal1 && b_beq);
  check "bug 2: buggy JAL misses the 2-byte-aligned misalignment" (not b_jal2);
  check "bug 2: fixed JAL catches it" f_jal2

(* ------------------------------------------------------------------ *)
(* E12 — §VII-B1: IFT precision ablation                                *)
(* ------------------------------------------------------------------ *)
let e12 () =
  section "E12" "SS VII-B1 - IFT over-taint: precise vs degraded cell rules";
  let lw = Isa.make ~rd:3 ~rs1:2 Isa.LW in
  let r = run_mupath lw in
  let decisions =
    List.filter (fun (_, ds) -> List.length ds > 1) r.Mupath.Synth.decisions
  in
  (* two decision sources suffice to exhibit the precision effect *)
  let decisions =
    match decisions with a :: b :: _ -> [ a; b ] | l -> l
  in
  let tags precise =
    let a =
      flow_on_core ~precise ~transponder:lw ~decisions ~transmitters:[ Isa.ADD ]
        ~kind:Synthlc.Types.Dynamic_older ~operand:Synthlc.Types.Rs2 ()
    in
    List.length a.Synthlc.Flow.tagged
  in
  let p = tags true in
  let c = tags false in
  Printf.printf
    "decisions tagged as depending on an older ADD's rs2 (a benign input):\n";
  Printf.printf "  precise cell rules   : %d\n" p;
  Printf.printf "  degraded (union) rules: %d\n" c;
  check "degraded rules over-taint at least as much" (c >= p);
  Printf.printf
    "(conservative arithmetic rules remain — the residual tags mirror the\n paper's 14/94 signatures with extraneous inputs)\n"

(* ------------------------------------------------------------------ *)
(* E7 — Table II: user annotations                                      *)
(* ------------------------------------------------------------------ *)
let e7 () =
  section "E7" "Table II - user annotations per DUV";
  Printf.printf "%-11s %5s %5s %6s %7s %8s %4s %5s\n" "design" "uFSMs" "PCRs"
    "states" "operand" "commit" "ARF" "AMEM";
  List.iter
    (fun (name, meta) ->
      Printf.printf "%-11s %5d %5d %6d %7d %8s %4d %5d\n" name
        (List.length meta.Meta.ufsms)
        (Designs.Meta.count_pcrs meta)
        (Designs.Meta.count_ufsm_state_regs meta)
        (List.length meta.Meta.operand_regs)
        "1 wire"
        (List.length meta.Meta.arf)
        (List.length meta.Meta.amem))
    [
      ("cva6_lite", Designs.Core.build Designs.Core.baseline);
      ("cva6_op", Designs.Core.build Designs.Core.cva6_op);
      ("cva6_cache", Designs.Cache.build ());
    ];
  let core = Designs.Core.build Designs.Core.baseline in
  let cache = Designs.Cache.build () in
  check "core has ~21-scale uFSM inventory (paper: 21 for CVA6)"
    (List.length core.Meta.ufsms >= 14);
  check "cache uFSM inventory smaller than core (paper: 13 vs 38 state regs)"
    (List.length cache.Meta.ufsms < List.length core.Meta.ufsms)
