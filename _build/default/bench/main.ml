(* Benchmark/reproduction harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's per-experiment index), then runs
   Bechamel micro-benchmarks of the substrate.

   Usage:
     dune exec bench/main.exe                 # quick profile, all experiments
     REPRO_PROFILE=full dune exec bench/main.exe
     dune exec bench/main.exe -- E1 E4        # selected experiments only
     dune exec bench/main.exe -- micro        # micro-benchmarks only *)

let experiments =
  [
    ("E7", Experiments.e7);
    ("E1", Experiments.e1);
    ("E2", Experiments.e2);
    ("E3", Experiments.e3);
    ("E4", Experiments.e4);
    ("E5", Experiments.e5);
    ("E10", Experiments.e10);
    ("E12", Experiments.e12);
    ("E13", Experiments2.e13);
    ("E8", Experiments2.e8);
    ("E9", Experiments2.e9_e6);
    ("E11", Experiments2.e11);
    ("A1", Experiments2.ablation_pruning);
    ("A2", Experiments2.ablation_sim_assist);
  ]

(* --- Bechamel micro-benchmarks of the substrates ---------------------- *)

let micro_benchmarks () =
  let open Bechamel in
  let bitvec_mul =
    Test.make ~name:"bitvec 8x8 mul"
      (Staged.stage (fun () ->
           let a = Bitvec.of_int ~width:8 173 and b = Bitvec.of_int ~width:8 91 in
           ignore (Bitvec.mul a b)))
  in
  let bitvec_udiv =
    Test.make ~name:"bitvec 8-bit udiv"
      (Staged.stage (fun () ->
           let a = Bitvec.of_int ~width:8 173 and b = Bitvec.of_int ~width:8 7 in
           ignore (Bitvec.udiv a b)))
  in
  let meta = Designs.Core.build Designs.Core.baseline in
  let nl = meta.Designs.Meta.nl in
  let sim = Sim.create nl in
  let in0 = Option.get (Hdl.Netlist.find_named nl Designs.Core.sig_if_instr_in0) in
  let in1 = Option.get (Hdl.Netlist.find_named nl Designs.Core.sig_if_instr_in1) in
  let nop = Isa.encode Isa.nop in
  let sim_cycle =
    Test.make ~name:"core simulator cycle"
      (Staged.stage (fun () ->
           Sim.poke sim in0 nop;
           Sim.poke sim in1 nop;
           Sim.eval sim;
           Sim.step sim))
  in
  let sat_php =
    Test.make ~name:"SAT pigeonhole php(5)"
      (Staged.stage (fun () ->
           let s = Sat.Solver.create () in
           let holes = 5 in
           let var p h = (p * holes) + h in
           for _ = 0 to ((holes + 1) * holes) - 1 do
             ignore (Sat.Solver.new_var s)
           done;
           for p = 0 to holes do
             Sat.Solver.add_clause s
               (List.init holes (fun h -> Sat.Solver.pos (var p h)))
           done;
           for h = 0 to holes - 1 do
             for p1 = 0 to holes do
               for p2 = p1 + 1 to holes do
                 Sat.Solver.add_clause s
                   [ Sat.Solver.neg_of_var (var p1 h); Sat.Solver.neg_of_var (var p2 h) ]
               done
             done
           done;
           assert (Sat.Solver.solve s = Sat.Solver.Unsat)))
  in
  let elaborate =
    Test.make ~name:"elaborate cva6_lite"
      (Staged.stage (fun () -> ignore (Designs.Core.build Designs.Core.baseline)))
  in
  let blast_step =
    Test.make ~name:"blast cva6_lite to depth 2"
      (Staged.stage (fun () ->
           let meta = Designs.Core.build Designs.Core.baseline in
           let b = Mc.Blast.create ~initial:`Reset ~assumes:[] meta.Designs.Meta.nl in
           Mc.Blast.ensure_depth b 2))
  in
  let tests =
    Test.make_grouped ~name:"substrates"
      [ bitvec_mul; bitvec_udiv; sim_cycle; sat_php; elaborate; blast_step ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
    Benchmark.all cfg instances tests
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  Printf.printf "\n=======================================================\n";
  Printf.printf "Micro-benchmarks (Bechamel, monotonic clock)\n";
  Printf.printf "=======================================================\n%!";
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ t ] -> Printf.printf "%-38s %14.1f ns/run\n" name t
      | _ -> Printf.printf "%-38s (no estimate)\n" name)
    results

let time_budget =
  (* Optional wall-clock guard: once exceeded, remaining experiments are
     skipped (each prints a SKIPPED line) so a tee'd run always terminates. *)
  match Sys.getenv_opt "REPRO_TIME_BUDGET" with
  | Some s -> float_of_string_opt s
  | None -> None

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let t0 = Unix.gettimeofday () in
  Printf.printf "RTL2MuPATH + SynthLC reproduction benches (profile: %s)\n"
    (match Experiments.profile with `Quick -> "quick" | `Full -> "full");
  let selected =
    match args with [] -> List.map fst experiments @ [ "micro" ] | l -> l
  in
  List.iter
    (fun (id, f) ->
      if List.mem id selected then
        let over_budget =
          match time_budget with
          | Some b -> Unix.gettimeofday () -. t0 > b
          | None -> false
        in
        if over_budget then
          Printf.printf "  [SKIPPED] %s: REPRO_TIME_BUDGET exceeded\n%!" id
        else
          try f ()
          with e ->
            Printf.printf "  [EXPERIMENT-ERROR] %s: %s\n%!" id (Printexc.to_string e))
    experiments;
  if List.mem "micro" selected then micro_benchmarks ();
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
