bench/experiments.ml: Designs Format Isa List Mc Mupath Option Printf String Synthlc Sys Uhb
