bench/main.mli:
