bench/main.ml: Analyze Array Bechamel Benchmark Bitvec Designs Experiments Experiments2 Hashtbl Hdl Isa List Mc Measure Option Printexc Printf Sat Sim Staged Sys Test Time Toolkit Unix
