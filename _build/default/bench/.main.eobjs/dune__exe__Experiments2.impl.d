bench/experiments2.ml: Designs Experiments Format Isa List Mc Mupath Printf String Synthlc Unix
