(* CVA6-lite functional verification: differential testing of the pipelined
   core against the golden architectural model, across all design variants,
   on directed and random programs. *)

module Meta = Designs.Meta

let run_core ?(cfg = Designs.Core.all_fixed) ?(cycles = 120) ?(seed = 13)
    ~regs program =
  let meta = Designs.Core.build cfg in
  let nl = meta.Meta.nl in
  let sget n = Option.get (Hdl.Netlist.find_named nl n) in
  let sim = Sim.create ~seed nl in
  List.iteri
    (fun i r -> if i < Array.length regs - 1 then Sim.poke_reg sim r regs.(i + 1))
    meta.Meta.arf;
  (* Zero memory so it matches the golden model's initial state. *)
  List.iter (fun m -> Sim.poke_reg sim m (Bitvec.zero 8)) meta.Meta.amem;
  let prog = Array.of_list program in
  let instr_at pc =
    if pc < Array.length prog then Isa.encode prog.(pc) else Isa.encode Isa.nop
  in
  let commits = ref 0 in
  for _ = 0 to cycles - 1 do
    Sim.eval sim;
    let pc = Bitvec.to_int (Sim.peek sim (sget "fetch_pc")) in
    Sim.poke sim (sget Designs.Core.sig_if_instr_in0) (instr_at pc);
    Sim.poke sim (sget Designs.Core.sig_if_instr_in1) (instr_at (pc + 1));
    Sim.eval sim;
    if Sim.peek_bool sim (sget "commit") then incr commits;
    Sim.step sim
  done;
  Sim.eval sim;
  let regs_out =
    Array.init 4 (fun i ->
        if i = 0 then Bitvec.zero 8
        else Sim.peek sim (List.nth meta.Meta.arf (i - 1)))
  in
  let mem_out = Array.of_list (List.map (Sim.peek sim) meta.Meta.amem) in
  (regs_out, mem_out, !commits)

let golden_run ~regs ~commits program =
  let st = Golden.create ~regs () in
  Golden.run st ~program ~max_steps:commits;
  (Array.init 4 (Golden.reg st), Array.copy st.Golden.mem)

let zero_regs () = Array.make 4 (Bitvec.zero 8)

let check_against_golden ?(cfg = Designs.Core.all_fixed) ~regs src =
  let program = match Isa.assemble src with Ok p -> p | Error e -> failwith e in
  let core_regs, core_mem, commits = run_core ~cfg ~regs program in
  Alcotest.(check bool) "some commits" true (commits > 0);
  let gold_regs, gold_mem = golden_run ~regs ~commits program in
  Array.iteri
    (fun i v ->
      if not (Bitvec.equal v core_regs.(i)) then
        Alcotest.failf "r%d: core=%s golden=%s (program %s)" i
          (Bitvec.to_hex_string core_regs.(i))
          (Bitvec.to_hex_string v) src)
    gold_regs;
  Array.iteri
    (fun i v ->
      if not (Bitvec.equal v core_mem.(i)) then
        Alcotest.failf "mem[%d]: core=%s golden=%s (program %s)" i
          (Bitvec.to_hex_string core_mem.(i))
          (Bitvec.to_hex_string v) src)
    gold_mem

let test_directed () =
  let regs = zero_regs () in
  List.iter
    (check_against_golden ~regs)
    [
      "addi r1, r0, 7\naddi r2, r0, 9\nadd r3, r1, r2\nsub r1, r3, r2";
      "addi r1, r0, 250\naddi r2, r0, 10\nadd r3, r1, r2";
      "addi r1, r0, 200\naddi r2, r0, 3\nmul r3, r1, r2";
      "addi r1, r0, 77\naddi r2, r0, 6\ndivu r3, r1, r2\nremu r1, r1, r2";
      "addi r1, r0, 249\naddi r2, r0, 2\ndiv r3, r1, r2\nrem r1, r1, r2";
      "addi r1, r0, 42\ndivu r2, r1, r0\nremu r3, r1, r0";
      "addi r1, r0, 99\nsw r1, 5(r0)\nlw r2, 5(r0)\nlb r3, 5(r0)";
      "addi r1, r0, 3\nsll r2, r1, r1\nsrl r3, r2, r1\nsra r3, r2, r1";
      "addi r1, r0, 5\nslt r2, r0, r1\nsltu r3, r1, r0";
      "andi r1, r0, 255\nori r2, r1, 170\nxori r3, r2, 255";
      "addi r1, r0, 1\nbeq r1, r1, 12\naddi r2, r0, 1\naddi r3, r0, 2";
      "addi r1, r0, 1\nbne r1, r1, 12\naddi r2, r0, 1\naddi r3, r0, 2";
      "jal r1, 8\naddi r2, r0, 1\naddi r3, r0, 2";
      "addi r1, r0, 12\njalr r2, r1, 0\naddi r3, r0, 9\nxor r3, r3, r3";
      "addi r1, r0, 8\nsw r1, 2(r0)\nsb r1, 2(r0)\nlw r2, 2(r0)";
    ]

(* Random differential: programs without control flow (control handled by
   directed tests; random branch targets would loop unpredictably). *)
let straightline_ops =
  List.filter
    (fun op ->
      match Isa.class_of op with
      | Isa.Branch | Isa.Jump -> false
      | _ -> true)
    Isa.all_opcodes

let random_program rng n =
  List.init n (fun _ ->
      let op = List.nth straightline_ops (Random.State.int rng (List.length straightline_ops)) in
      Isa.make
        ~rd:(Random.State.int rng 4)
        ~rs1:(Random.State.int rng 4)
        ~rs2:(Random.State.int rng 4)
        ~imm:(Random.State.int rng 256)
        op)

let test_random_differential () =
  let rng = Random.State.make [| 2024 |] in
  for trial = 1 to 25 do
    let program = random_program rng (4 + Random.State.int rng 8) in
    let regs =
      Array.init 4 (fun i -> if i = 0 then Bitvec.zero 8 else Bitvec.random rng 8)
    in
    let core_regs, core_mem, commits = run_core ~regs program in
    let gold_regs, gold_mem = golden_run ~regs ~commits program in
    for i = 0 to 3 do
      if not (Bitvec.equal gold_regs.(i) core_regs.(i)) then
        Alcotest.failf "trial %d r%d: core=%s golden=%s prog=[%s]" trial i
          (Bitvec.to_hex_string core_regs.(i))
          (Bitvec.to_hex_string gold_regs.(i))
          (String.concat "; " (List.map Isa.to_string program))
    done;
    for i = 0 to 7 do
      if not (Bitvec.equal gold_mem.(i) core_mem.(i)) then
        Alcotest.failf "trial %d mem[%d] mismatch prog=[%s]" trial i
          (String.concat "; " (List.map Isa.to_string program))
    done
  done

(* Random differential including control flow: branch/jump targets are
   forced 4-byte aligned (no exceptions), so the golden model and the core
   follow the same architectural path, loops included. *)
let random_cf_program rng n =
  List.init n (fun _ ->
      let op = List.nth Isa.all_opcodes (Random.State.int rng 32) in
      let imm =
        match Isa.class_of op with
        | Isa.Branch | Isa.Jump -> Random.State.int rng 64 * 4
        | _ -> Random.State.int rng 256
      in
      let op = if op = Isa.JALR then Isa.JAL else op in
      (* JALR targets come from registers; excluded to keep targets aligned *)
      Isa.make
        ~rd:(Random.State.int rng 4)
        ~rs1:(Random.State.int rng 4)
        ~rs2:(Random.State.int rng 4)
        ~imm op)

let test_random_control_flow_differential () =
  let rng = Random.State.make [| 777 |] in
  for trial = 1 to 15 do
    let program = random_cf_program rng (4 + Random.State.int rng 6) in
    let regs =
      Array.init 4 (fun i -> if i = 0 then Bitvec.zero 8 else Bitvec.random rng 8)
    in
    let core_regs, core_mem, commits = run_core ~regs program in
    if commits > 0 then begin
      let gold_regs, gold_mem = golden_run ~regs ~commits program in
      for i = 0 to 3 do
        if not (Bitvec.equal gold_regs.(i) core_regs.(i)) then
          Alcotest.failf "cf trial %d r%d: core=%s golden=%s prog=[%s]" trial i
            (Bitvec.to_hex_string core_regs.(i))
            (Bitvec.to_hex_string gold_regs.(i))
            (String.concat "; " (List.map Isa.to_string program))
      done;
      for i = 0 to 7 do
        if not (Bitvec.equal gold_mem.(i) core_mem.(i)) then
          Alcotest.failf "cf trial %d mem[%d] mismatch prog=[%s]" trial i
            (String.concat "; " (List.map Isa.to_string program))
      done
    end
  done

let test_variants_agree () =
  (* The MUL and OP variants are architecturally equivalent to baseline. *)
  let regs = zero_regs () in
  List.iter
    (fun cfg ->
      check_against_golden ~cfg ~regs
        "addi r1, r0, 6\naddi r2, r0, 7\nmul r3, r1, r2\nadd r1, r1, r2\nadd r2, r3, r1";
      check_against_golden ~cfg ~regs
        "addi r1, r0, 0\nmul r3, r1, r2\naddi r2, r0, 3\nmul r1, r2, r2")
    [
      { Designs.Core.all_fixed with Designs.Core.zero_skip_mul = true };
      { Designs.Core.all_fixed with Designs.Core.operand_packing = true };
    ]

let test_zero_skip_timing () =
  (* The variant changes timing, not results: same architectural outcome,
     fewer cycles to commit with a zero operand. *)
  let commit_cycle_of zero =
    let meta = Designs.Core.build Designs.Core.cva6_mul in
    let nl = meta.Meta.nl in
    let sget n = Option.get (Hdl.Netlist.find_named nl n) in
    let sim = Sim.create ~seed:4 nl in
    List.iteri
      (fun i r ->
        Sim.poke_reg sim r
          (Bitvec.of_int ~width:8 (if i = 0 && zero then 0 else 9)))
      meta.Meta.arf;
    let program =
      match Isa.assemble "mul r3, r1, r2" with Ok p -> Array.of_list p | Error e -> failwith e
    in
    let out = ref None in
    for c = 0 to 29 do
      Sim.eval sim;
      let pc = Bitvec.to_int (Sim.peek sim (sget "fetch_pc")) in
      let instr_at pc =
        if pc < Array.length program then Isa.encode program.(pc)
        else Isa.encode Isa.nop
      in
      Sim.poke sim (sget Designs.Core.sig_if_instr_in0) (instr_at pc);
      Sim.poke sim (sget Designs.Core.sig_if_instr_in1) (instr_at (pc + 1));
      Sim.eval sim;
      if
        Sim.peek_bool sim (sget "commit")
        && Bitvec.to_int (Sim.peek sim (sget "commit_pc")) = 0
        && !out = None
      then out := Some c;
      Sim.step sim
    done;
    Option.get !out
  in
  Alcotest.(check int) "zero-skip saves 3 cycles" 3
    (commit_cycle_of false - commit_cycle_of true)

let test_metadata_wellformed () =
  List.iter
    (fun cfg ->
      let meta = Designs.Core.build cfg in
      Hdl.Netlist.validate meta.Meta.nl;
      Alcotest.(check bool) "has ufsms" true (List.length meta.Meta.ufsms >= 14);
      Alcotest.(check bool) "has ifr slots" true (List.length meta.Meta.ifrs >= 1);
      Alcotest.(check int) "arf size" 3 (List.length meta.Meta.arf);
      Alcotest.(check int) "amem size" 8 (List.length meta.Meta.amem);
      List.iter
        (fun (u : Meta.ufsm) ->
          Alcotest.(check bool)
            (u.Meta.ufsm_name ^ " has labels")
            true
            (List.length u.Meta.state_labels >= 1))
        meta.Meta.ufsms)
    [ Designs.Core.baseline; Designs.Core.cva6_mul; Designs.Core.cva6_op ]

let suite =
  ( "core",
    [
      Alcotest.test_case "directed vs golden" `Quick test_directed;
      Alcotest.test_case "random differential" `Slow test_random_differential;
      Alcotest.test_case "random control-flow differential" `Slow
        test_random_control_flow_differential;
      Alcotest.test_case "variants agree with golden" `Quick test_variants_agree;
      Alcotest.test_case "zero-skip timing" `Quick test_zero_skip_timing;
      Alcotest.test_case "metadata well-formed" `Quick test_metadata_wellformed;
    ] )
