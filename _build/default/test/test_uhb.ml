(* µHB formalism tests: PL ordering, path invariants (acyclicity,
   topological sort, longest chains — the §III-B latency measure),
   decisions, concrete paths, and DOT rendering. *)

let pl label = Uhb.Pl.make ~ufsm:"core" ~label ~state:(Bitvec.of_int ~width:2 1)

let sample_path () =
  let if_ = pl "IF" and id = pl "ID" and iss = pl "issue" and cmt = pl "scbCmt" in
  Uhb.Path.make ~instr:"add"
    ~pls:
      [
        (if_, Uhb.Revisit.Once);
        (id, Uhb.Revisit.Consecutive);
        (iss, Uhb.Revisit.Once);
        (cmt, Uhb.Revisit.Once);
      ]
    ~edges:[ (if_, id); (id, iss); (iss, cmt); (id, cmt) ]

let test_pl () =
  Alcotest.(check string) "name" "core.IF" (Uhb.Pl.name (pl "IF"));
  Alcotest.(check bool) "equal" true (Uhb.Pl.equal (pl "IF") (pl "IF"));
  Alcotest.(check bool) "distinct labels" false (Uhb.Pl.equal (pl "IF") (pl "ID"));
  Alcotest.(check bool) "distinct states" false
    (Uhb.Pl.equal (pl "IF")
       (Uhb.Pl.make ~ufsm:"core" ~label:"IF" ~state:(Bitvec.of_int ~width:2 2)));
  let s = Uhb.Pl.Set.of_list [ pl "IF"; pl "ID"; pl "IF" ] in
  Alcotest.(check int) "set dedup" 2 (Uhb.Pl.Set.cardinal s)

let test_path_invariants () =
  let p = sample_path () in
  Alcotest.(check bool) "acyclic" true (Uhb.Path.check_acyclic p);
  let topo = Uhb.Path.topological p in
  Alcotest.(check int) "topo covers all" 4 (List.length topo);
  let idx l = Option.get (List.find_index (fun x -> Uhb.Pl.name x = "core." ^ l) topo) in
  Alcotest.(check bool) "IF before ID" true (idx "IF" < idx "ID");
  Alcotest.(check bool) "issue before cmt" true (idx "issue" < idx "scbCmt")

let test_longest_chain () =
  let p = sample_path () in
  (* IF -> ID -> issue -> scbCmt = 3 edges (longer than the ID->cmt shortcut) *)
  Alcotest.(check (option int)) "latency" (Some 3)
    (Uhb.Path.longest_chain p ~src:(pl "IF") ~dst:(pl "scbCmt"));
  Alcotest.(check (option int)) "unreachable pair" None
    (Uhb.Path.longest_chain p ~src:(pl "scbCmt") ~dst:(pl "IF"))

let test_cyclic_rejected () =
  let a = pl "A" and b = pl "B" in
  let p =
    Uhb.Path.make ~instr:"x"
      ~pls:[ (a, Uhb.Revisit.Once); (b, Uhb.Revisit.Once) ]
      ~edges:[ (a, b); (b, a) ]
  in
  Alcotest.(check bool) "cycle detected" false (Uhb.Path.check_acyclic p);
  Alcotest.(check bool) "edge endpoints checked" true
    (try
       ignore (Uhb.Path.make ~instr:"x" ~pls:[ (a, Uhb.Revisit.Once) ] ~edges:[ (a, b) ]);
       false
     with Invalid_argument _ -> true)

let test_path_equal () =
  let p1 = sample_path () and p2 = sample_path () in
  Alcotest.(check bool) "structural equality" true (Uhb.Path.equal p1 p2);
  let p3 =
    Uhb.Path.make ~instr:"add"
      ~pls:[ (pl "IF", Uhb.Revisit.Once) ]
      ~edges:[]
  in
  Alcotest.(check bool) "different sets differ" false (Uhb.Path.equal p1 p3)

let test_concrete () =
  let c =
    Uhb.Concrete.make ~instr:"mul"
      ~visits:[ (pl "mulU", 4); (pl "IF", 0); (pl "mulU", 3); (pl "ID", 1) ]
  in
  Alcotest.(check int) "latency spans visits" 5 (Uhb.Concrete.latency c);
  Alcotest.(check (list int)) "cycles in mulU" [ 3; 4 ] (Uhb.Concrete.cycles_in c (pl "mulU"));
  Alcotest.(check int) "empty latency" 0 (Uhb.Concrete.latency (Uhb.Concrete.make ~instr:"x" ~visits:[]))

let test_decision () =
  let d1 = Uhb.Decision.make ~src:(pl "issue") ~dsts:[ pl "ldFin" ] in
  let d2 = Uhb.Decision.make ~src:(pl "issue") ~dsts:[ pl "LSQ"; pl "ldStall" ] in
  let d1' = Uhb.Decision.make ~src:(pl "issue") ~dsts:[ pl "ldFin" ] in
  Alcotest.(check bool) "equal" true (Uhb.Decision.equal d1 d1');
  Alcotest.(check bool) "distinct" false (Uhb.Decision.equal d1 d2);
  let s = Uhb.Decision.Set.of_list [ d1; d2; d1' ] in
  Alcotest.(check int) "set dedup" 2 (Uhb.Decision.Set.cardinal s)

let test_dot () =
  let dot = Uhb.Dot.of_path (sample_path ()) in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph");
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has edge" true (contains "core_IF -> core_ID");
  Alcotest.(check bool) "consecutive shape" true (contains "shape=box");
  let cdot =
    Uhb.Dot.of_concrete
      (Uhb.Concrete.make ~instr:"m" ~visits:[ (pl "IF", 0); (pl "ID", 1) ])
  in
  Alcotest.(check bool) "concrete renders" true (String.length cdot > 20)

let suite =
  ( "uhb",
    [
      Alcotest.test_case "performing locations" `Quick test_pl;
      Alcotest.test_case "path invariants" `Quick test_path_invariants;
      Alcotest.test_case "longest chain latency" `Quick test_longest_chain;
      Alcotest.test_case "cyclic paths rejected" `Quick test_cyclic_rejected;
      Alcotest.test_case "path equality" `Quick test_path_equal;
      Alcotest.test_case "concrete paths" `Quick test_concrete;
      Alcotest.test_case "decisions" `Quick test_decision;
      Alcotest.test_case "dot rendering" `Quick test_dot;
    ] )
