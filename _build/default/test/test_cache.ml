(* Cache DUV behavioural tests: hit/miss paths for loads and stores, bank
   selection by way, fills with round-robin victims, write-buffer ordering,
   and the load-behind-store delay (the dynamic ST->LD cache channel). *)

module Meta = Designs.Meta

type rig = { meta : Meta.t; sim : Sim.t; sget : string -> Hdl.Netlist.signal }

let mk ?(seed = 21) () =
  let meta = Designs.Cache.build () in
  let nl = meta.Meta.nl in
  let sim = Sim.create ~seed nl in
  let sget n = Option.get (Hdl.Netlist.find_named nl n) in
  (* Invalidate all tags for a deterministic start. *)
  for s = 0 to 1 do
    for w = 0 to 3 do
      Sim.poke_reg sim (sget (Printf.sprintf "tag_v_%d_%d" s w)) (Bitvec.zero 1)
    done
  done;
  { meta; sim; sget }

let drive r ?(op = Isa.LW) ?(addr = 0) ?(data = 0) ?(axi = 0) () =
  Sim.poke r.sim (r.sget Designs.Cache.sig_req_instr) (Isa.encode (Isa.make op));
  Sim.poke r.sim (r.sget Designs.Cache.sig_req_addr) (Bitvec.of_int ~width:8 addr);
  Sim.poke r.sim (r.sget Designs.Cache.sig_req_data) (Bitvec.of_int ~width:8 data);
  Sim.poke r.sim (r.sget "axi_rdata0") (Bitvec.of_int ~width:8 axi);
  Sim.poke r.sim (r.sget "axi_rdata1") (Bitvec.of_int ~width:8 (axi + 1));
  Sim.eval r.sim;
  let st = Bitvec.to_int (Sim.peek r.sim (r.sget "ctl_state")) in
  let done_ = Sim.peek_bool r.sim (r.sget "commit") in
  Sim.step r.sim;
  (st, done_)

(* Drive the same request for a fixed window (the request interface always
   presents a request, so duplicates repeat); collect controller states and
   count load completions (done pulses in the rdData state). *)
let window r ?(cycles = 14) ?(op = Isa.LW) ?(addr = 0) ?(data = 0) ?(axi = 0) () =
  let states = ref [] in
  let load_dones = ref 0 in
  for _ = 1 to cycles do
    let st, done_ = drive r ~op ~addr ~data ~axi () in
    states := st :: !states;
    if done_ && st = 4 then incr load_dones
  done;
  (List.rev !states, !load_dones)

let test_load_miss_then_hit () =
  let r = mk () in
  let s1, _ = window r ~op:Isa.LW ~addr:0x24 ~axi:0x7E () in
  (* Miss: rdTag(3) -> fill(5) -> rdData(4). *)
  Alcotest.(check bool) "first load misses" true (List.mem 5 s1);
  Alcotest.(check bool) "load completes" true (List.mem 4 s1);
  (* Line is now resident: a fresh window of the same load never fills. *)
  let s2, dones = window r ~op:Isa.LW ~addr:0x24 () in
  Alcotest.(check bool) "second window no fill" false (List.mem 5 s2);
  Alcotest.(check bool) "hits complete" true (dones >= 2);
  (* The fill deposited the AXI data into the cache. *)
  Sim.eval r.sim;
  let found = ref false in
  for s = 0 to 1 do
    for w = 0 to 3 do
      for o = 0 to 1 do
        if
          Bitvec.to_int (Sim.peek r.sim (r.sget (Printf.sprintf "data_%d_%d_%d" s w o)))
          = 0x7E + o
        then found := true
      done
    done
  done;
  Alcotest.(check bool) "fill wrote line" true !found

let test_store_hit_banks () =
  let r = mk () in
  (* Pre-install a line in way 0 (bank 0) and one in way 2 (bank 1), set 0. *)
  Sim.poke_reg r.sim (r.sget "tag_v_0_0") (Bitvec.one 1);
  Sim.poke_reg r.sim (r.sget "tag_t_0_0")
    (Bitvec.extract (Bitvec.of_int ~width:8 0x10) ~hi:7 ~lo:2);
  Sim.poke_reg r.sim (r.sget "tag_v_0_2") (Bitvec.one 1);
  Sim.poke_reg r.sim (r.sget "tag_t_0_2")
    (Bitvec.extract (Bitvec.of_int ~width:8 0x20) ~hi:7 ~lo:2);
  let s_bank0, _ = window r ~op:Isa.SW ~addr:0x10 ~data:0xAA () in
  Alcotest.(check bool) "bank 0 write state (wrD0)" true (List.mem 2 s_bank0);
  Alcotest.(check bool) "bank 0 never touches bank 1" false (List.mem 6 s_bank0);
  let s_bank1, _ = window r ~op:Isa.SW ~addr:0x20 ~data:0xBB () in
  Alcotest.(check bool) "bank 1 write state (wrD1)" true (List.mem 6 s_bank1);
  Sim.eval r.sim;
  Alcotest.(check int) "bank0 data written" 0xAA
    (Bitvec.to_int (Sim.peek r.sim (r.sget "data_0_0_0")));
  Alcotest.(check int) "bank1 data written" 0xBB
    (Bitvec.to_int (Sim.peek r.sim (r.sget "data_0_2_0")))

let test_store_miss_writes_through () =
  let r = mk () in
  let s, _ = window r ~op:Isa.SW ~addr:0x33 ~data:0x5A () in
  (* No-write-allocate: miss goes to wrMiss(7)/AXI, never a data-bank write. *)
  Alcotest.(check bool) "wrMiss taken" true (List.mem 7 s);
  Alcotest.(check bool) "no bank write" false (List.mem 2 s || List.mem 6 s)

let test_round_robin_victims () =
  let r = mk () in
  (* Load misses to four distinct tags of the same set fill all four ways
     (duplicate requests hit and cause no extra fills). *)
  List.iter
    (fun addr -> ignore (window r ~op:Isa.LW ~addr ()))
    [ 0x00; 0x10; 0x20; 0x30 ];
  Sim.eval r.sim;
  for w = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "way %d filled" w)
      true
      (Sim.peek_bool r.sim (r.sget (Printf.sprintf "tag_v_0_%d" w)))
  done

let test_load_delayed_by_store () =
  (* Loads complete less often when interleaved with buffered stores: the
     load waits for the write buffer to drain — the dynamic ST->LD channel
     on the cache DUV. *)
  let loads_completed with_stores =
    let r = mk () in
    ignore (window r ~op:Isa.LW ~addr:0x24 ()) (* warm the line *);
    let dones = ref 0 in
    for c = 1 to 24 do
      let op = if with_stores && c mod 2 = 0 then Isa.SW else Isa.LW in
      let addr = if op = Isa.SW then 0x44 else 0x24 in
      let st, done_ = drive r ~op ~addr () in
      if done_ && st = 4 then incr dones
    done;
    !dones
  in
  let free = loads_completed false in
  let contended = loads_completed true in
  Alcotest.(check bool)
    (Printf.sprintf "stores slow loads (%d > %d)" free contended)
    true
    (free > contended && contended > 0)

let test_metadata () =
  let meta = Designs.Cache.build () in
  Hdl.Netlist.validate meta.Meta.nl;
  Alcotest.(check int) "ufsm count" 5 (List.length meta.Meta.ufsms);
  Alcotest.(check bool) "has environment assumption" true
    (meta.Meta.extra_assumes <> [])

let suite =
  ( "cache",
    [
      Alcotest.test_case "load miss then hit" `Quick test_load_miss_then_hit;
      Alcotest.test_case "store hits split banks" `Quick test_store_hit_banks;
      Alcotest.test_case "store miss writes through" `Quick test_store_miss_writes_through;
      Alcotest.test_case "round-robin victims" `Quick test_round_robin_victims;
      Alcotest.test_case "load delayed by store" `Quick test_load_delayed_by_store;
      Alcotest.test_case "metadata" `Quick test_metadata;
    ] )
