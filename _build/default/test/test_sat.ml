(* SAT solver tests: hand-built instances, pigeonhole UNSAT, assumption
   handling, conflict budgets, and a differential qcheck against a
   brute-force evaluator on random small CNFs. *)

module S = Sat.Solver

let mk nvars clauses =
  let s = S.create () in
  for _ = 1 to nvars do
    ignore (S.new_var s)
  done;
  List.iter (S.add_clause s) clauses;
  s

let lit v pol = if pol then S.pos v else S.neg_of_var v

let test_trivial () =
  let s = mk 1 [ [ S.pos 0 ] ] in
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "model" true (S.value s 0);
  let s = mk 1 [ [ S.pos 0 ]; [ S.neg_of_var 0 ] ] in
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat);
  let s = mk 0 [ [] ] in
  Alcotest.(check bool) "empty clause" true (S.solve s = S.Unsat)

let test_chain_implications () =
  (* x0 -> x1 -> ... -> x19, x0 forced true. *)
  let n = 20 in
  let clauses =
    [ S.pos 0 ]
    :: List.init (n - 1) (fun i -> [ S.neg_of_var i; S.pos (i + 1) ])
  in
  let s = mk n clauses in
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  for i = 0 to n - 1 do
    Alcotest.(check bool) (Printf.sprintf "x%d" i) true (S.value s i)
  done

let php holes =
  (* holes+1 pigeons into [holes] holes: classic UNSAT family. *)
  let var p h = (p * holes) + h in
  let s = S.create () in
  for _ = 0 to ((holes + 1) * holes) - 1 do
    ignore (S.new_var s)
  done;
  for p = 0 to holes do
    S.add_clause s (List.init holes (fun h -> S.pos (var p h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to holes do
      for p2 = p1 + 1 to holes do
        S.add_clause s [ S.neg_of_var (var p1 h); S.neg_of_var (var p2 h) ]
      done
    done
  done;
  s

let test_pigeonhole () =
  Alcotest.(check bool) "php5 unsat" true (S.solve (php 5) = S.Unsat);
  Alcotest.(check bool) "php6 unsat" true (S.solve (php 6) = S.Unsat)

let test_budget () =
  let s = php 9 in
  (* A tiny conflict budget must give up. *)
  Alcotest.(check bool) "unknown under budget" true
    (S.solve ~max_conflicts:10 s = S.Unknown);
  (* The solver stays usable afterwards. *)
  Alcotest.(check bool) "still solvable" true (S.solve (php 5) = S.Unsat)

let test_assumptions () =
  let s = mk 3 [ [ S.pos 0; S.pos 1 ]; [ S.neg_of_var 2; S.pos 0 ] ] in
  Alcotest.(check bool) "sat free" true (S.solve s = S.Sat);
  Alcotest.(check bool) "unsat under assumptions" true
    (S.solve ~assumptions:[ S.neg_of_var 0; S.neg_of_var 1 ] s = S.Unsat);
  Alcotest.(check bool) "sat again" true
    (S.solve ~assumptions:[ S.neg_of_var 0 ] s = S.Sat);
  Alcotest.(check bool) "assumption forced x1" true (S.value s 1);
  Alcotest.(check bool) "assumption pair x2 -> x0" true
    (S.solve ~assumptions:[ S.pos 2; S.neg_of_var 0 ] s = S.Unsat);
  (* Incremental: add a clause after solving. *)
  S.add_clause s [ S.neg_of_var 0 ];
  S.add_clause s [ S.neg_of_var 1 ];
  Alcotest.(check bool) "now unsat" true (S.solve s = S.Unsat)

(* Differential testing against brute force. *)
let eval_clause asn c = List.exists (fun l -> asn.(S.var_of l) = S.is_pos l) c

let brute_force nvars clauses =
  let asn = Array.make (max nvars 1) false in
  let rec go v =
    if v = nvars then List.for_all (eval_clause asn) clauses
    else begin
      asn.(v) <- false;
      go (v + 1)
      ||
      (asn.(v) <- true;
       go (v + 1))
    end
  in
  go 0

let arb_cnf =
  QCheck.make
    ~print:(fun (nv, cls) ->
      Printf.sprintf "nv=%d cls=%s" nv
        (String.concat "; "
           (List.map (fun c -> String.concat "," (List.map string_of_int c)) cls)))
    QCheck.Gen.(
      int_range 1 10 >>= fun nv ->
      list_size (int_range 1 40)
        (list_size (int_range 1 4)
           (int_range 0 ((2 * nv) - 1)))
      >>= fun cls -> return (nv, cls))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300 ~name:"solver agrees with brute force" arb_cnf
         (fun (nv, cls) ->
           let s = mk nv cls in
           match S.solve s with
           | S.Sat ->
             (* verify the model *)
             List.for_all
               (fun c -> List.exists (fun l -> S.lit_value s l) c)
               cls
             && brute_force nv cls
           | S.Unsat -> not (brute_force nv cls)
           | S.Unknown -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:100 ~name:"assumptions consistent with added units"
         arb_cnf (fun (nv, cls) ->
           let a = S.pos 0 in
           let s1 = mk nv cls in
           let r1 = S.solve ~assumptions:[ a ] s1 in
           let s2 = mk nv (cls @ [ [ a ] ]) in
           let r2 = S.solve s2 in
           r1 = r2));
  ]

let suite =
  ( "sat",
    [
      Alcotest.test_case "trivial" `Quick test_trivial;
      Alcotest.test_case "implication chain" `Quick test_chain_implications;
      Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
      Alcotest.test_case "conflict budget" `Quick test_budget;
      Alcotest.test_case "assumptions" `Quick test_assumptions;
    ]
    @ qcheck_tests )

let _ = lit
