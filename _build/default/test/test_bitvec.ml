(* Unit and property tests for Bitvec: arithmetic laws checked against
   OCaml's native integers on widths up to 62, plus RISC-V division corner
   cases and structural operations. *)

let bv w n = Bitvec.of_int ~width:w n

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_construction () =
  check_int "width" 8 (Bitvec.width (Bitvec.zero 8));
  check_int "of_int" 5 (Bitvec.to_int (bv 8 5));
  check_int "truncation" 1 (Bitvec.to_int (bv 4 17));
  check_int "negative wraps" 0xFB (Bitvec.to_int (bv 8 (-5)));
  check_bool "zero is_zero" true (Bitvec.is_zero (Bitvec.zero 16));
  check_bool "ones is_ones" true (Bitvec.is_ones (Bitvec.ones 16));
  check_int "one" 1 (Bitvec.to_int (Bitvec.one 13));
  check_int "popcount ones" 11 (Bitvec.popcount (Bitvec.ones 11));
  Alcotest.check_raises "bad width" (Invalid_argument "Bitvec: width must be positive")
    (fun () -> ignore (Bitvec.zero 0))

let test_bits () =
  let v = bv 8 0b1010_0110 in
  check_bool "bit 1" true (Bitvec.bit v 1);
  check_bool "bit 0" false (Bitvec.bit v 0);
  check_bool "bit 7" true (Bitvec.bit v 7);
  check_int "set_bit" 0b1010_0111 (Bitvec.to_int (Bitvec.set_bit v 0 true));
  check_int "clear_bit" 0b0010_0110 (Bitvec.to_int (Bitvec.set_bit v 7 false));
  check_string "binary" "10100110" (Bitvec.to_binary_string v);
  check_string "hex" "a6" (Bitvec.to_hex_string v);
  check_int "of_binary_string" 0b101 (Bitvec.to_int (Bitvec.of_binary_string "101"));
  check_int "of_bits lsb-first" 0b110 (Bitvec.to_int (Bitvec.of_bits [ false; true; true ]))

let test_wide () =
  (* Cross the 64-bit limb boundary. *)
  let v = Bitvec.shift_left (Bitvec.one 100) 80 in
  check_bool "bit 80" true (Bitvec.bit v 80);
  check_int "popcount" 1 (Bitvec.popcount v);
  let w = Bitvec.add v v in
  check_bool "bit 81 after add" true (Bitvec.bit w 81);
  check_bool "bit 80 after add" false (Bitvec.bit w 80);
  check_bool "ult" true (Bitvec.ult v w);
  check_bool "wide ones + 1 wraps" true
    (Bitvec.is_zero (Bitvec.add (Bitvec.ones 100) (Bitvec.one 100)))

let test_division_corner_cases () =
  (* RISC-V semantics. *)
  check_int "udiv by zero" 255 (Bitvec.to_int (Bitvec.udiv (bv 8 42) (bv 8 0)));
  check_int "urem by zero" 42 (Bitvec.to_int (Bitvec.urem (bv 8 42) (bv 8 0)));
  check_int "sdiv by zero" 255 (Bitvec.to_int (Bitvec.sdiv (bv 8 42) (bv 8 0)));
  check_int "srem by zero" 42 (Bitvec.to_int (Bitvec.srem (bv 8 42) (bv 8 0)));
  (* overflow: min / -1 = min, rem = 0 *)
  check_int "sdiv overflow" 0x80 (Bitvec.to_int (Bitvec.sdiv (bv 8 0x80) (bv 8 0xFF)));
  check_int "srem overflow" 0 (Bitvec.to_int (Bitvec.srem (bv 8 0x80) (bv 8 0xFF)));
  (* signed rounding toward zero: -7 / 2 = -3 rem -1 *)
  check_int "sdiv -7/2" 0xFD (Bitvec.to_int (Bitvec.sdiv (bv 8 (-7)) (bv 8 2)));
  check_int "srem -7/2" 0xFF (Bitvec.to_int (Bitvec.srem (bv 8 (-7)) (bv 8 2)))

let test_structure () =
  let v = bv 8 0xA5 in
  check_int "extract hi" 0xA (Bitvec.to_int (Bitvec.extract v ~hi:7 ~lo:4));
  check_int "extract lo" 0x5 (Bitvec.to_int (Bitvec.extract v ~hi:3 ~lo:0));
  check_int "concat" 0xA5 (Bitvec.to_int (Bitvec.concat (bv 4 0xA) (bv 4 0x5)));
  check_int "zero_extend" 0xA5 (Bitvec.to_int (Bitvec.zero_extend v 16));
  check_int "sign_extend neg" 0xFFA5 (Bitvec.to_int (Bitvec.sign_extend v 16));
  check_int "sign_extend pos" 0x25 (Bitvec.to_int (Bitvec.sign_extend (bv 8 0x25) 16));
  check_int "to_signed pos" 5 (Bitvec.to_signed_int (bv 8 5));
  check_int "to_signed neg" (-5) (Bitvec.to_signed_int (bv 8 (-5)))

let test_shifts () =
  check_int "shl" 0b101000 (Bitvec.to_int (Bitvec.shift_left (bv 8 0b1010) 2));
  check_int "shl saturate" 0 (Bitvec.to_int (Bitvec.shift_left (bv 8 0xFF) 8));
  check_int "srl" 0b10 (Bitvec.to_int (Bitvec.shift_right_logical (bv 8 0b1010) 2));
  check_int "sra neg" 0xFF (Bitvec.to_int (Bitvec.shift_right_arith (bv 8 0x80) 7));
  check_int "sra pos" 0x20 (Bitvec.to_int (Bitvec.shift_right_arith (bv 8 0x40) 1))

(* --- qcheck properties vs native ints -------------------------------- *)

let arb_w_pair =
  QCheck.make
    ~print:(fun (w, a, b) -> Printf.sprintf "w=%d a=%d b=%d" w a b)
    QCheck.Gen.(
      int_range 1 24 >>= fun w ->
      let m = (1 lsl w) - 1 in
      int_bound m >>= fun a ->
      int_bound m >>= fun b -> return (w, a, b))

let mask w x = x land ((1 lsl w) - 1)

let prop name f = QCheck.Test.make ~count:500 ~name arb_w_pair f

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop "add matches int" (fun (w, a, b) ->
          Bitvec.to_int (Bitvec.add (bv w a) (bv w b)) = mask w (a + b));
      prop "sub matches int" (fun (w, a, b) ->
          Bitvec.to_int (Bitvec.sub (bv w a) (bv w b)) = mask w (a - b));
      prop "mul matches int" (fun (w, a, b) ->
          w > 30
          || Bitvec.to_int (Bitvec.mul (bv w a) (bv w b)) = mask w (a * b));
      prop "udiv matches int" (fun (w, a, b) ->
          b = 0
          || Bitvec.to_int (Bitvec.udiv (bv w a) (bv w b)) = a / b);
      prop "urem matches int" (fun (w, a, b) ->
          b = 0 || Bitvec.to_int (Bitvec.urem (bv w a) (bv w b)) = a mod b);
      prop "divmod identity" (fun (w, a, b) ->
          let q = Bitvec.udiv (bv w a) (bv w b) in
          let r = Bitvec.urem (bv w a) (bv w b) in
          b = 0 || Bitvec.equal (bv w a) (Bitvec.add (Bitvec.mul q (bv w b)) r));
      prop "ult matches int" (fun (w, a, b) -> Bitvec.ult (bv w a) (bv w b) = (a < b));
      prop "logand matches int" (fun (w, a, b) ->
          Bitvec.to_int (Bitvec.logand (bv w a) (bv w b)) = a land b);
      prop "logor matches int" (fun (w, a, b) ->
          Bitvec.to_int (Bitvec.logor (bv w a) (bv w b)) = a lor b);
      prop "logxor matches int" (fun (w, a, b) ->
          Bitvec.to_int (Bitvec.logxor (bv w a) (bv w b)) = a lxor b);
      prop "lognot involutive" (fun (w, a, _) ->
          Bitvec.equal (bv w a) (Bitvec.lognot (Bitvec.lognot (bv w a))));
      prop "neg is two's complement" (fun (w, a, _) ->
          Bitvec.to_int (Bitvec.neg (bv w a)) = mask w (-a));
      prop "compare total order" (fun (w, a, b) ->
          Stdlib.compare (compare a b) 0 = Stdlib.compare (Bitvec.compare (bv w a) (bv w b)) 0);
      prop "binary string roundtrip" (fun (w, a, _) ->
          Bitvec.equal (bv w a) (Bitvec.of_binary_string (Bitvec.to_binary_string (bv w a))));
      prop "bits roundtrip" (fun (w, a, _) ->
          Bitvec.equal (bv w a) (Bitvec.of_bits (Bitvec.to_bits (bv w a))));
      prop "concat then extract" (fun (w, a, b) ->
          let c = Bitvec.concat (bv w a) (bv w b) in
          Bitvec.equal (bv w a) (Bitvec.extract c ~hi:((2 * w) - 1) ~lo:w)
          && Bitvec.equal (bv w b) (Bitvec.extract c ~hi:(w - 1) ~lo:0));
      prop "slt matches signed int" (fun (w, a, b) ->
          let signed w x = if x land (1 lsl (w - 1)) <> 0 then x - (1 lsl w) else x in
          Bitvec.slt (bv w a) (bv w b) = (signed w a < signed w b));
    ]

let suite =
  ( "bitvec",
    [
      Alcotest.test_case "construction" `Quick test_construction;
      Alcotest.test_case "bits" `Quick test_bits;
      Alcotest.test_case "wide vectors" `Quick test_wide;
      Alcotest.test_case "division corner cases" `Quick test_division_corner_cases;
      Alcotest.test_case "structure" `Quick test_structure;
      Alcotest.test_case "shifts" `Quick test_shifts;
    ]
    @ qcheck_tests )
