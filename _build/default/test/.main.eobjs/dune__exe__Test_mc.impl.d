test/test_mc.ml: Alcotest Bitvec Hdl Mc
