test/test_isa.ml: Alcotest Bitvec Golden Isa List QCheck QCheck_alcotest Random
