test/test_blast.ml: Alcotest Bitvec Hdl List Mc Option Printf Random Sim
