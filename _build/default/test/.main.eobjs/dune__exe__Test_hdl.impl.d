test/test_hdl.ml: Alcotest Array Bitvec Hashtbl Hdl List Option Random Sim
