test/test_synthlc.ml: Alcotest Contracts Designs Engine Flow Format Grid Isa List Mupath Scsafe String Synthlc Test_mupath Types
