test/test_uhb.ml: Alcotest Bitvec List Option String Uhb
