test/test_ift.ml: Alcotest Bitvec Hdl Ift Random Sim
