test/test_cache.ml: Alcotest Bitvec Designs Hdl Isa List Option Printf Sim
