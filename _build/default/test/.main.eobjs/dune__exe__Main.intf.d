test/main.mli:
