test/test_sim.ml: Alcotest Bitvec Buffer Hdl List Sim String
