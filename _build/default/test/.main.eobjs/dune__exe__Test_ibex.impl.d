test/test_ibex.ml: Alcotest Array Bitvec Designs Golden Hdl Isa List Option Random Sim String
