test/test_formats.ml: Alcotest Isa Mupath Sat String Test_mupath
