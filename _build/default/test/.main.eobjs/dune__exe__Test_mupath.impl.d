test/test_mupath.ml: Alcotest Bitvec Designs Hdl Isa List Mc Mupath Uhb
