test/main.ml: Alcotest Test_bitvec Test_blast Test_cache Test_core Test_formats Test_harness Test_hdl Test_ibex Test_ift Test_isa Test_mc Test_mupath Test_sat Test_sim Test_synthlc Test_uhb
