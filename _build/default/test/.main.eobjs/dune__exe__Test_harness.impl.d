test/test_harness.ml: Alcotest Bitvec Designs Hdl Isa List Mupath Option Sim Test_mupath
