(* Simulator tests: register/enable semantics, symbolic-init randomization,
   reset, trace recording and VCD rendering. *)

module N = Hdl.Netlist

let counter_netlist () =
  let nl = N.create "counter" in
  let module D = Hdl.Dsl.Make (struct
    let nl = nl
  end) in
  let open D in
  let en = input "en" 1 in
  let count = reg ~name:"count" ~width:8 () in
  count <== mux en (count +: of_int 8 1) count;
  (nl, en, count)

let test_counter () =
  let nl, en, count = counter_netlist () in
  let sim = Sim.create nl in
  for _ = 1 to 5 do
    Sim.poke sim en (Bitvec.one 1);
    Sim.eval sim;
    Sim.step sim
  done;
  Sim.poke sim en (Bitvec.zero 1);
  Sim.eval sim;
  Alcotest.(check int) "counted 5" 5 (Bitvec.to_int (Sim.peek sim count));
  Sim.step sim;
  Sim.eval sim;
  Alcotest.(check int) "hold when disabled" 5 (Bitvec.to_int (Sim.peek sim count));
  Alcotest.(check int) "cycle count" 6 (Sim.cycle sim);
  Sim.reset sim;
  Sim.eval sim;
  Alcotest.(check int) "reset clears" 0 (Bitvec.to_int (Sim.peek sim count));
  Alcotest.(check int) "reset cycle" 0 (Sim.cycle sim)

let test_symbolic_init () =
  let nl = N.create "sym" in
  let r = N.reg nl ~name:"r" ~init:N.Init_symbolic ~width:32 () in
  N.connect_reg nl r r;
  let v1 =
    let sim = Sim.create ~seed:1 nl in
    Sim.eval sim;
    Sim.peek sim r
  in
  let v2 =
    let sim = Sim.create ~seed:2 nl in
    Sim.eval sim;
    Sim.peek sim r
  in
  let v1' =
    let sim = Sim.create ~seed:1 nl in
    Sim.eval sim;
    Sim.peek sim r
  in
  Alcotest.(check bool) "seeds differ" false (Bitvec.equal v1 v2);
  Alcotest.(check bool) "same seed reproduces" true (Bitvec.equal v1 v1')

let test_poke_reg () =
  let nl, en, count = counter_netlist () in
  let sim = Sim.create nl in
  Sim.poke_reg sim count (Bitvec.of_int ~width:8 41);
  Sim.poke sim en (Bitvec.one 1);
  Sim.eval sim;
  Sim.step sim;
  Sim.eval sim;
  Alcotest.(check int) "continues from poked value" 42
    (Bitvec.to_int (Sim.peek sim count));
  Alcotest.(check bool) "poke_reg rejects inputs" true
    (try
       Sim.poke_reg sim en (Bitvec.one 1);
       false
     with Invalid_argument _ -> true)

let test_trace_and_vcd () =
  let nl, en, count = counter_netlist () in
  let sim = Sim.create nl in
  let trace = Sim.Trace.create nl ~watch:[ en; count ] in
  Sim.run sim ~cycles:4
    ~stimulus:(fun s c -> Sim.poke s en (Bitvec.of_int ~width:1 (c mod 2)))
    ~trace ();
  Alcotest.(check int) "trace length" 4 (Sim.Trace.length trace);
  Alcotest.(check int) "count at cycle 3" 1
    (Bitvec.to_int (Sim.Trace.value trace count ~cycle:3));
  Alcotest.(check bool) "en at cycle 1" true (Sim.Trace.value_bool trace en ~cycle:1);
  let buf = Buffer.create 256 in
  Sim.Trace.to_vcd trace buf;
  let vcd = Buffer.contents buf in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("vcd contains " ^ needle) true (contains vcd needle))
    [ "$timescale"; "$var wire 8"; "count"; "$enddefinitions"; "#3" ]

let suite =
  ( "sim",
    [
      Alcotest.test_case "counter with enable mux" `Quick test_counter;
      Alcotest.test_case "symbolic init randomization" `Quick test_symbolic_init;
      Alcotest.test_case "poke_reg" `Quick test_poke_reg;
      Alcotest.test_case "trace and vcd" `Quick test_trace_and_vcd;
    ] )
