(* Ibex-lite functional verification: differential testing against the
   golden architectural model, plus the cross-design contrast the paper's
   related work draws (simple in-order cores expose only the divider's
   timing channel). *)

module Meta = Designs.Meta

let run_ibex ?(cycles = 160) ?(seed = 31) ~regs program =
  let meta = Designs.Ibex.build () in
  let nl = meta.Meta.nl in
  let sget n = Option.get (Hdl.Netlist.find_named nl n) in
  let sim = Sim.create ~seed nl in
  List.iteri
    (fun i r -> if i < Array.length regs - 1 then Sim.poke_reg sim r regs.(i + 1))
    meta.Meta.arf;
  List.iter (fun m -> Sim.poke_reg sim m (Bitvec.zero 8)) meta.Meta.amem;
  let prog = Array.of_list program in
  let instr_at pc =
    if pc < Array.length prog then Isa.encode prog.(pc) else Isa.encode Isa.nop
  in
  let commits = ref 0 in
  for _ = 0 to cycles - 1 do
    Sim.eval sim;
    let pc = Bitvec.to_int (Sim.peek sim (sget "fetch_pc")) in
    Sim.poke sim (sget "if_instr_in") (instr_at pc);
    Sim.eval sim;
    if Sim.peek_bool sim (sget "commit") then incr commits;
    Sim.step sim
  done;
  Sim.eval sim;
  let regs_out =
    Array.init 4 (fun i ->
        if i = 0 then Bitvec.zero 8
        else Sim.peek sim (List.nth meta.Meta.arf (i - 1)))
  in
  let mem_out = Array.of_list (List.map (Sim.peek sim) meta.Meta.amem) in
  (regs_out, mem_out, !commits)

let check_against_golden ~regs src =
  let program = match Isa.assemble src with Ok p -> p | Error e -> failwith e in
  let core_regs, core_mem, commits = run_ibex ~regs program in
  Alcotest.(check bool) "some commits" true (commits > 0);
  let st = Golden.create ~regs () in
  Golden.run st ~program ~max_steps:commits;
  Array.iteri
    (fun i v ->
      if not (Bitvec.equal v core_regs.(i)) then
        Alcotest.failf "r%d: ibex=%s golden=%s (program %s)" i
          (Bitvec.to_hex_string core_regs.(i))
          (Bitvec.to_hex_string v) src)
    (Array.init 4 (Golden.reg st));
  Array.iteri
    (fun i v ->
      if not (Bitvec.equal v core_mem.(i)) then
        Alcotest.failf "mem[%d]: ibex=%s golden=%s (program %s)" i
          (Bitvec.to_hex_string core_mem.(i))
          (Bitvec.to_hex_string v) src)
    st.Golden.mem

let test_directed () =
  let regs = Array.make 4 (Bitvec.zero 8) in
  List.iter
    (check_against_golden ~regs)
    [
      "addi r1, r0, 7\naddi r2, r0, 9\nadd r3, r1, r2\nsub r1, r3, r2";
      "addi r1, r0, 77\naddi r2, r0, 6\ndivu r3, r1, r2\nremu r1, r1, r2";
      "addi r1, r0, 249\naddi r2, r0, 2\ndiv r3, r1, r2\nrem r1, r1, r2";
      "addi r1, r0, 42\ndivu r2, r1, r0\nremu r3, r1, r0";
      "addi r1, r0, 99\nsw r1, 5(r0)\nlw r2, 5(r0)\nlb r3, 5(r0)";
      "addi r1, r0, 6\nmul r3, r1, r1\nsll r2, r1, r1";
      "addi r1, r0, 1\nbeq r1, r1, 12\naddi r2, r0, 1\naddi r3, r0, 2";
      "jal r1, 8\naddi r2, r0, 9\naddi r3, r0, 1";
      "addi r1, r0, 12\njalr r2, r1, 0\naddi r3, r0, 9\nxor r3, r3, r3";
    ]

let test_random_differential () =
  let rng = Random.State.make [| 909 |] in
  let straightline =
    List.filter
      (fun op ->
        match Isa.class_of op with Isa.Branch | Isa.Jump -> false | _ -> true)
      Isa.all_opcodes
  in
  for trial = 1 to 20 do
    let program =
      List.init
        (3 + Random.State.int rng 8)
        (fun _ ->
          Isa.make
            ~rd:(Random.State.int rng 4)
            ~rs1:(Random.State.int rng 4)
            ~rs2:(Random.State.int rng 4)
            ~imm:(Random.State.int rng 256)
            (List.nth straightline (Random.State.int rng (List.length straightline))))
    in
    let regs =
      Array.init 4 (fun i -> if i = 0 then Bitvec.zero 8 else Bitvec.random rng 8)
    in
    let core_regs, _, commits = run_ibex ~regs program in
    let st = Golden.create ~regs () in
    Golden.run st ~program ~max_steps:commits;
    for i = 0 to 3 do
      if not (Bitvec.equal (Golden.reg st i) core_regs.(i)) then
        Alcotest.failf "trial %d r%d: ibex=%s golden=%s prog=[%s]" trial i
          (Bitvec.to_hex_string core_regs.(i))
          (Bitvec.to_hex_string (Golden.reg st i))
          (String.concat "; " (List.map Isa.to_string program))
    done
  done

let test_div_timing_channel () =
  (* The only intrinsic timing channel: DIV latency tracks |dividend|. *)
  let commit_cycle r1 =
    let meta = Designs.Ibex.build () in
    let nl = meta.Meta.nl in
    let sget n = Option.get (Hdl.Netlist.find_named nl n) in
    let sim = Sim.create ~seed:3 nl in
    List.iteri
      (fun i r ->
        Sim.poke_reg sim r (Bitvec.of_int ~width:8 (if i = 0 then r1 else 3)))
      meta.Meta.arf;
    let program =
      match Isa.assemble "divu r3, r1, r2" with
      | Ok p -> Array.of_list p
      | Error e -> failwith e
    in
    let out = ref None in
    for c = 0 to 29 do
      Sim.eval sim;
      let pc = Bitvec.to_int (Sim.peek sim (sget "fetch_pc")) in
      let instr_at pc =
        if pc < Array.length program then Isa.encode program.(pc)
        else Isa.encode Isa.nop
      in
      Sim.poke sim (sget "if_instr_in") (instr_at pc);
      Sim.eval sim;
      if
        Sim.peek_bool sim (sget "commit")
        && Bitvec.to_int (Sim.peek sim (sget "commit_pc")) = 0
        && !out = None
      then out := Some c;
      Sim.step sim
    done;
    Option.get !out
  in
  Alcotest.(check bool) "small dividend is faster" true
    (commit_cycle 2 < commit_cycle 200);
  (* ...whereas ALU latency is operand-independent by construction. *)
  let meta = Designs.Ibex.build () in
  Hdl.Netlist.validate meta.Meta.nl;
  Alcotest.(check int) "two uFSMs only" 2 (List.length meta.Meta.ufsms)

let suite =
  ( "ibex",
    [
      Alcotest.test_case "directed vs golden" `Quick test_directed;
      Alcotest.test_case "random differential" `Quick test_random_differential;
      Alcotest.test_case "div timing channel" `Quick test_div_timing_channel;
    ] )
