(* Harness monitor semantics, validated against hand-driven simulation on
   the toy DUV: visited flags, freeze-at-gone, consecutive/re-entry flags,
   first-entry edge flags, max-run counters, and the IUV-encoding /
   PC-uniqueness assumptions. *)

module N = Hdl.Netlist

let mk ?(iuv = Isa.make Isa.ADD) () =
  let meta = Test_mupath.toy_design () in
  let h = Mupath.Harness.create ~meta ~iuv ~iuv_pc:2 () in
  (meta, h)

(* Drive the toy design directly: word/operand inputs per cycle. *)
let drive sim meta ~word ~operand =
  let nl = meta.Designs.Meta.nl in
  let s n = Option.get (N.find_named nl n) in
  Sim.poke sim (s "word_in") word;
  Sim.poke sim (s "operand_in") (Bitvec.of_int ~width:8 operand);
  Sim.eval sim;
  Sim.step sim

let test_monitor_flags () =
  let iuv = Isa.make Isa.ADD in
  let meta, h = mk ~iuv () in
  let nl = meta.Designs.Meta.nl in
  let sim = Sim.create ~seed:2 nl in
  (* Tokens 0 and 1 take the B path (operand odd); token 2 (the IUV) takes
     the C path (operand even) and then retires. *)
  let enc = Isa.encode iuv in
  for c = 0 to 11 do
    drive sim meta ~word:enc ~operand:(if c < 4 then 1 else 0)
  done;
  Sim.eval sim;
  let b sig_ = Sim.peek_bool sim sig_ in
  Alcotest.(check bool) "visited A" true (b (Mupath.Harness.visited h "A"));
  Alcotest.(check bool) "visited C" true (b (Mupath.Harness.visited h "C"));
  Alcotest.(check bool) "not visited B" false (b (Mupath.Harness.visited h "B"));
  Alcotest.(check bool) "C consecutive" true (b (Mupath.Harness.cons_flag h "C"));
  Alcotest.(check bool) "A not consecutive" false (b (Mupath.Harness.cons_flag h "A"));
  Alcotest.(check bool) "no re-entry" false (b (Mupath.Harness.reenter_flag h "C"));
  Alcotest.(check bool) "gone after retire" true (b (Mupath.Harness.gone h));
  Alcotest.(check bool) "edge A->C observed" true
    (b (Mupath.Harness.edge_flag h ("A", "C")));
  Alcotest.(check bool) "edge A->B not observed" false
    (b (Mupath.Harness.edge_flag h ("A", "B")))

let test_freeze_after_gone () =
  (* After the IUV retires, later tokens through B must not pollute its
     visited flags. *)
  let iuv = Isa.make Isa.ADD in
  let meta, h = mk ~iuv () in
  let sim = Sim.create ~seed:3 meta.Designs.Meta.nl in
  let enc = Isa.encode iuv in
  for c = 0 to 19 do
    (* IUV (token 2) takes C; all later tokens take B. *)
    drive sim meta ~word:enc ~operand:(if c <= 8 then 0 else 1)
  done;
  Sim.eval sim;
  Alcotest.(check bool) "gone" true (Sim.peek_bool sim (Mupath.Harness.gone h));
  Alcotest.(check bool) "B still unvisited (frozen)" false
    (Sim.peek_bool sim (Mupath.Harness.visited h "B"))

let test_edge_candidates_from_connectivity () =
  let _, h = mk () in
  let cands = Mupath.Harness.edge_candidates h in
  (* The toy's single µFSM feeds itself: all ordered label pairs are
     candidates. *)
  Alcotest.(check bool) "A->B candidate" true (List.mem ("A", "B") cands);
  Alcotest.(check bool) "A->C candidate" true (List.mem ("A", "C") cands);
  (* Core: the divider µFSM reads the issue stage, so issue->divU must be a
     candidate; the divider does not feed the fetch stage. *)
  let meta = Designs.Core.build Designs.Core.baseline in
  let h =
    Mupath.Harness.create ~meta ~iuv:(Isa.make Isa.DIV)
      ~iuv_pc:Designs.Core.iuv_pc ()
  in
  let cands = Mupath.Harness.edge_candidates h in
  Alcotest.(check bool) "issue->divU candidate" true (List.mem ("issue", "divU") cands)

let test_maxrun_counter () =
  let iuv = Isa.make Isa.ADD in
  let meta = Test_mupath.toy_design () in
  let h =
    Mupath.Harness.create ~revisit_count_labels:[ "C" ] ~meta ~iuv ~iuv_pc:2 ()
  in
  let sim = Sim.create ~seed:5 meta.Designs.Meta.nl in
  let enc = Isa.encode iuv in
  for c = 0 to 11 do
    drive sim meta ~word:enc ~operand:(if c < 4 then 1 else 0)
  done;
  Sim.eval sim;
  Alcotest.(check bool) "maxrun C = 2" true
    (Sim.peek_bool sim (Mupath.Harness.maxrun_eq h "C" 2));
  Alcotest.(check bool) "maxrun C <> 1" false
    (Sim.peek_bool sim (Mupath.Harness.maxrun_eq h "C" 1))

let test_assumes_present () =
  let _, h = mk () in
  (* One IFR slot contributes an encoding pin and a no-refetch assumption. *)
  Alcotest.(check int) "two assumptions" 2 (List.length (Mupath.Harness.assumes h));
  let meta = Designs.Cache.build () in
  let h = Mupath.Harness.create ~meta ~iuv:(Isa.make Isa.LW) ~iuv_pc:2 () in
  (* Cache adds its environment constraint on top. *)
  Alcotest.(check int) "cache has three" 3 (List.length (Mupath.Harness.assumes h))

let test_unlabeled_states_enumerated () =
  let meta = Designs.Core.build Designs.Core.baseline in
  let h =
    Mupath.Harness.create ~meta ~iuv:(Isa.make Isa.ADD)
      ~iuv_pc:Designs.Core.iuv_pc ()
  in
  (* Each scoreboard entry has 3 unlabeled non-idle valuations (5,6,7) and
     the load unit one (3): 4*3 + 1 = 13 on the baseline core. *)
  Alcotest.(check int) "unlabeled states" 13
    (List.length (Mupath.Harness.unlabeled_states h))

let suite =
  ( "harness",
    [
      Alcotest.test_case "monitor flags" `Quick test_monitor_flags;
      Alcotest.test_case "freeze after gone" `Quick test_freeze_after_gone;
      Alcotest.test_case "edge candidates" `Quick test_edge_candidates_from_connectivity;
      Alcotest.test_case "maxrun counter" `Quick test_maxrun_counter;
      Alcotest.test_case "assumptions present" `Quick test_assumes_present;
      Alcotest.test_case "unlabeled state enumeration" `Quick test_unlabeled_states_enumerated;
    ] )
