(* Interchange-format tests: DIMACS CNF round-trips (and solver agreement
   on loaded instances) and µSPEC model emission from synthesis results. *)

let test_dimacs_roundtrip () =
  let clauses = [ [ 1; -2; 3 ]; [ -1 ]; [ 2; 3 ] ] in
  let text = Sat.Dimacs.to_string ~nvars:3 clauses in
  match Sat.Dimacs.parse text with
  | Ok (nv, cls) ->
    Alcotest.(check int) "nvars" 3 nv;
    Alcotest.(check (list (list int))) "clauses" clauses cls
  | Error e -> Alcotest.fail e

let test_dimacs_parse_forms () =
  (match Sat.Dimacs.parse "c comment\np cnf 2 1\n1 -2 0\n" with
  | Ok (2, [ [ 1; -2 ] ]) -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e);
  (match Sat.Dimacs.parse "p cnf 1 1\n1" with
  | Error _ -> () (* unterminated clause *)
  | Ok _ -> Alcotest.fail "accepted unterminated clause");
  match Sat.Dimacs.parse "p cnf 1 1\nx 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted junk literal"

let test_dimacs_load_solve () =
  (* (x1 | x2) & (~x1) & (~x2) : UNSAT *)
  let s = Sat.Solver.create () in
  (match Sat.Dimacs.load s "p cnf 2 3\n1 2 0\n-1 0\n-2 0\n" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "unsat" true (Sat.Solver.solve s = Sat.Solver.Unsat);
  let s = Sat.Solver.create () in
  (match Sat.Dimacs.load s "p cnf 2 2\n1 2 0\n-1 0\n" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat.Solver.Sat);
  Alcotest.(check bool) "x2 forced" true (Sat.Solver.value s 1)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_uspec_emission () =
  let meta = Test_mupath.toy_design () in
  let r =
    Mupath.Synth.run ~config:Test_mupath.toy_config ~meta ~iuv:(Isa.make Isa.ADD)
      ~iuv_pc:2 ()
  in
  let axiom = Mupath.Uspec.axiom_of_result r in
  Alcotest.(check bool) "axiom header" true (contains axiom "Axiom \"ADD_uPATHs\"");
  Alcotest.(check bool) "disjunction over uPATHs" true (contains axiom "\\/");
  Alcotest.(check bool) "node terms" true (contains axiom "NodeExists (i, A)");
  Alcotest.(check bool) "edge terms" true (contains axiom "EdgeExists ((i, A), (i, C))");
  Alcotest.(check bool) "consecutive convention" true (contains axiom "C(1)");
  let model = Mupath.Uspec.model_of_results ~design_name:"toy" [ r ] in
  Alcotest.(check bool) "stage definitions" true (contains model "StageName \"A\"");
  Alcotest.(check bool) "decision comments" true (contains model "(* decision ADD_A:")

let suite =
  ( "formats",
    [
      Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
      Alcotest.test_case "dimacs parse forms" `Quick test_dimacs_parse_forms;
      Alcotest.test_case "dimacs load+solve" `Quick test_dimacs_load_solve;
      Alcotest.test_case "uspec emission" `Quick test_uspec_emission;
    ] )
