(* RTL2MµPATH tests on a purpose-built toy DUV small enough for exhaustive
   reasoning: a one-token pipeline where a token visits A, then either B
   (1 cycle) or C (2 cycles) depending on bit 0 of its operand, then
   retires.  Ground truth: exactly two µPATHs, one decision source (A) with
   two destinations, C consecutively revisited, and HB edges A->B / A->C. *)

module Meta = Designs.Meta
module N = Hdl.Netlist

(* Build the toy DUV.  The token's "instruction word" reuses the RV-lite
   width so the harness's encoding assumption applies; the operand register
   is loaded from an input and steers the A-decision. *)
let toy_design () =
  let nl = N.create "toy" in
  let module D = Hdl.Dsl.Make (struct
    let nl = nl
  end) in
  let open D in
  let word_in = input "word_in" Isa.width in
  let operand_in = input "operand_in" 8 in
  let ctr = reg ~name:"ctr" ~width:Isa.pc_bits () in
  let st = reg ~name:"st" ~width:2 () in
  let pc = reg ~name:"pc" ~width:Isa.pc_bits () in
  let word = reg ~name:"word" ~width:Isa.width () in
  let opnd = reg ~name:"operand_rs1" ~width:8 () in
  let cnt = reg ~name:"cnt" ~width:2 () in
  let idle = eq_const st 0 in
  let in_a = eq_const st 1 in
  let in_b = eq_const st 2 in
  let in_c = eq_const st 3 in
  let c_done = in_c &: eq_const cnt 1 in
  let retire = in_b |: c_done in
  let accept = idle |: retire in
  let take_b = bit opnd 0 in
  let () =
    st
    <== priority_mux
          [
            (in_a, mux take_b (of_int 2 2) (of_int 2 3));
            (retire &: accept, mux accept (of_int 2 1) (zero 2));
            (in_c, of_int 2 3);
          ]
          (mux (idle &: accept) (of_int 2 1) st);
    pc <== mux (accept &: (idle |: retire)) ctr pc;
    ctr <== mux (accept &: (idle |: retire)) (ctr +: of_int Isa.pc_bits 1) ctr;
    word <== mux (accept &: (idle |: retire)) word_in word;
    opnd <== mux (accept &: (idle |: retire)) operand_in opnd;
    cnt
    <== priority_mux
          [ (in_a &: ~:take_b, of_int 2 2); (in_c, cnt -: of_int 2 1) ]
          cnt
  in
  let commit = wire ~name:"commit" 1 in
  commit <== retire;
  let commit_pc = wire ~name:"commit_pc" Isa.pc_bits in
  commit_pc <== pc;
  let flush = wire ~name:"flush" 1 in
  flush <== gnd;
  let stage_valid = wire ~name:"stage_valid" 1 in
  stage_valid <== in_a;
  {
    Meta.design_name = "toy";
    nl;
    ifrs = [ { Meta.ifr_valid = stage_valid; ifr_pc = pc; ifr_word = word } ];
    operand_stage_valid = stage_valid;
    operand_stage_pc = pc;
    commit;
    commit_pc;
    flush;
    ufsms =
      [
        {
          Meta.ufsm_name = "stage";
          pcr = pc;
          vars = [ st ];
          idle_states = [ Bitvec.zero 2 ];
          state_labels =
            [
              (Bitvec.of_int ~width:2 1, "A");
              (Bitvec.of_int ~width:2 2, "B");
              (Bitvec.of_int ~width:2 3, "C");
            ];
        };
      ];
    operand_regs = [ ("rs1", opnd) ];
    arf = [];
    amem = [];
    extra_assumes = [];
  }

let toy_config =
  { Mc.Checker.default_config with
    Mc.Checker.bmc_depth = 10;
    sim_episodes = 8;
    sim_cycles = 16;
  }

let test_pl_groups () =
  let meta = toy_design () in
  let groups = Mupath.Harness.pl_groups meta in
  Alcotest.(check (list string)) "labels" [ "A"; "B"; "C" ] (List.map fst groups);
  let meta = Designs.Core.build Designs.Core.baseline in
  let groups = Mupath.Harness.pl_groups meta in
  (* Scoreboard labels merge four µFSMs into one group. *)
  let scb_iss = List.assoc "scbIss" groups in
  Alcotest.(check int) "scbIss merges 4 entries" 4 (List.length scb_iss);
  Alcotest.(check bool) "IF present" true (List.mem_assoc "IF" groups)

let run_toy iuv =
  let meta = toy_design () in
  Mupath.Synth.run ~config:toy_config ~revisit_count_labels:[ "C" ] ~meta ~iuv
    ~iuv_pc:2 ()

let test_toy_paths () =
  let r = run_toy (Isa.make Isa.ADD) in
  Alcotest.(check (list string)) "duv pls" [ "A"; "B"; "C" ] (List.sort compare r.Mupath.Synth.duv_pls);
  Alcotest.(check int) "two uPATHs" 2 (List.length r.Mupath.Synth.paths);
  let sets =
    List.sort compare
      (List.map
         (fun p -> List.sort compare (List.map fst p.Mupath.Synth.pl_set))
         r.Mupath.Synth.paths)
  in
  Alcotest.(check (list (list string))) "path sets" [ [ "A"; "B" ]; [ "A"; "C" ] ] sets;
  (* B and C are mutually exclusive; everything implies A. *)
  Alcotest.(check bool) "B excl C" true
    (List.exists
       (fun (a, b) -> (a = "B" && b = "C") || (a = "C" && b = "B"))
       r.Mupath.Synth.exclusives);
  Alcotest.(check bool) "B -> A implication" true
    (List.mem ("B", "A") r.Mupath.Synth.implications);
  (* C is occupied two consecutive cycles. *)
  let c_path =
    List.find
      (fun p -> List.mem_assoc "C" p.Mupath.Synth.pl_set)
      r.Mupath.Synth.paths
  in
  Alcotest.(check bool) "C consecutive" true
    (match List.assoc "C" c_path.Mupath.Synth.pl_set with
    | Uhb.Revisit.Consecutive | Uhb.Revisit.Both -> true
    | _ -> false);
  (* HB edges. *)
  Alcotest.(check bool) "A->C edge" true
    (List.mem ("A", "C") c_path.Mupath.Synth.hb_edges);
  (* Revisit counts for C: exactly {2}. *)
  Alcotest.(check (list int)) "C occupancy count" [ 2 ]
    (List.assoc "C" r.Mupath.Synth.revisit_counts);
  (* Decision at A with two destinations. *)
  let a_dsts = List.assoc "A" r.Mupath.Synth.decisions in
  Alcotest.(check bool) "A has >=2 destinations" true (List.length a_dsts >= 2);
  Alcotest.(check bool) "A -> {B}" true (List.mem [ "B" ] a_dsts);
  Alcotest.(check bool) "A -> {C}" true (List.mem [ "C" ] a_dsts)

let test_uhb_conversion () =
  let r = run_toy (Isa.make Isa.ADD) in
  let paths = Mupath.Synth.to_uhb_paths r in
  Alcotest.(check int) "uhb paths" 2 (List.length paths);
  List.iter
    (fun p -> Alcotest.(check bool) "acyclic" true (Uhb.Path.check_acyclic p))
    paths;
  let ds = Mupath.Synth.to_uhb_decisions r in
  Alcotest.(check bool) "decisions nonempty" true (List.length ds >= 2)

let test_stats_recorded () =
  let r = run_toy (Isa.make Isa.ADD) in
  let total_props =
    List.fold_left (fun acc (_, s) -> acc + s.Mupath.Synth.props) 0 r.Mupath.Synth.stage_stats
  in
  Alcotest.(check bool) "some properties checked" true (total_props > 0);
  Alcotest.(check int) "checker agrees" total_props
    r.Mupath.Synth.checker_stats.Mc.Checker.Stats.n_props

let suite =
  ( "mupath",
    [
      Alcotest.test_case "pl groups" `Quick test_pl_groups;
      Alcotest.test_case "toy paths" `Quick test_toy_paths;
      Alcotest.test_case "uhb conversion" `Quick test_uhb_conversion;
      Alcotest.test_case "stats recorded" `Quick test_stats_recorded;
    ] )
