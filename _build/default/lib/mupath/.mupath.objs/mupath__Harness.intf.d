lib/mupath/harness.mli: Bitvec Designs Hdl Isa Mc Sim
