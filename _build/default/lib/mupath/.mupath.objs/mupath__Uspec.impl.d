lib/mupath/uspec.ml: Buffer Isa List Printf String Synth Uhb
