lib/mupath/harness.ml: Array Bitvec Designs Hashtbl Hdl Isa List Mc Printf
