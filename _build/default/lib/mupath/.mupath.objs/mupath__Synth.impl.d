lib/mupath/synth.ml: Array Bitvec Designs Format Harness Hashtbl Int Isa List Mc Option Printf Set Sim String Uhb
