lib/mupath/synth.mli: Designs Format Isa Mc Sim Uhb
