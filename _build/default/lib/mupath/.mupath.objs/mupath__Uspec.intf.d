lib/mupath/uspec.mli: Synth
