let buf_add = Buffer.add_string

let mnemonic (r : Synth.result) =
  String.uppercase_ascii (Isa.mnemonic r.Synth.instr.Isa.op)

(* One µPATH as a µSPEC conjunction: nodes exist at their PLs, with
   happens-before edges between them; consecutive revisits are expressed
   with the Row(1)/Row(l) convention of §III-B. *)
let path_term instr_var (p : Synth.path) =
  let node_term (lbl, rv) =
    match (rv : Uhb.Revisit.t) with
    | Uhb.Revisit.Once -> Printf.sprintf "NodeExists (%s, %s)" instr_var lbl
    | Uhb.Revisit.Consecutive ->
      Printf.sprintf
        "NodeExists (%s, %s(1)) /\\ NodeExists (%s, %s(l)) /\\ ConsecutiveRun (%s, %s)"
        instr_var lbl instr_var lbl instr_var lbl
    | Uhb.Revisit.Non_consecutive ->
      Printf.sprintf "NodeExists (%s, %s) /\\ MayRevisit (%s, %s)" instr_var lbl
        instr_var lbl
    | Uhb.Revisit.Both ->
      Printf.sprintf
        "NodeExists (%s, %s(1)) /\\ NodeExists (%s, %s(l)) /\\ MayRevisit (%s, %s)"
        instr_var lbl instr_var lbl instr_var lbl
  in
  let edge_term (a, b) =
    Printf.sprintf "EdgeExists ((%s, %s), (%s, %s))" instr_var a instr_var b
  in
  let terms =
    List.map node_term p.Synth.pl_set @ List.map edge_term p.Synth.hb_edges
  in
  "(" ^ String.concat " /\\\n     " terms ^ ")"

let axiom_of_result (r : Synth.result) =
  let buf = Buffer.create 512 in
  let name = mnemonic r in
  buf_add buf (Printf.sprintf "Axiom \"%s_uPATHs\":\n" name);
  buf_add buf (Printf.sprintf "  forall microop \"i\",\n");
  buf_add buf (Printf.sprintf "  IsAnyRead i \\/ ~(IsAnyRead i) => (* any dynamic instance *)\n");
  buf_add buf (Printf.sprintf "  OpcodeIs i \"%s\" =>\n" name);
  (match r.Synth.paths with
  | [] -> buf_add buf "  False. (* no completed execution observed *)\n"
  | ps ->
    let disjuncts = List.map (path_term "i") ps in
    buf_add buf "  (\n    ";
    buf_add buf (String.concat "\n    \\/\n    " disjuncts);
    buf_add buf "\n  ).\n");
  (* Decision annotations: not part of classic µSPEC, carried as comments
     so SynthLC-derived facts survive round-trips. *)
  List.iter
    (fun (src, dsts) ->
      if List.length dsts > 1 then
        buf_add buf
          (Printf.sprintf "(* decision %s_%s: %s *)\n" name src
             (String.concat " | "
                (List.map (fun d -> "{" ^ String.concat "," d ^ "}") dsts))))
    r.Synth.decisions;
  Buffer.contents buf

let model_of_results ~design_name results =
  let buf = Buffer.create 2048 in
  buf_add buf (Printf.sprintf "(* uSPEC model synthesized by RTL2MuPATH for %s *)\n" design_name);
  buf_add buf "(* Each instruction axiom is a disjunction over its uPATHs (SS III-A). *)\n\n";
  let all_pls =
    List.sort_uniq compare (List.concat_map (fun r -> r.Synth.iuv_pls) results)
  in
  buf_add buf "DefineMacro \"PerformingLocations\":\n";
  List.iter (fun pl -> buf_add buf (Printf.sprintf "  StageName \"%s\".\n" pl)) all_pls;
  buf_add buf "\n";
  List.iter
    (fun r ->
      buf_add buf (axiom_of_result r);
      buf_add buf "\n")
    results;
  Buffer.contents buf
