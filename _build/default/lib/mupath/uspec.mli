(** µSPEC model emission.

    The Check tools (§I) consume axiomatic µSPEC models: first-order axioms
    describing how to construct µHB graphs for each instruction.  RTL2µSPEC
    synthesized such models under the single-execution-path assumption;
    RTL2MµPATH's whole point is that one instruction may own {e several}
    µPATHs.  This module renders a synthesis result as a µSPEC-style axiom
    file in which each instruction's axiom is a {e disjunction} over its
    µPATHs — the encoding §III-A calls for — so downstream µHB analyses can
    consume the output.

    The emitted dialect follows the µSPEC look (Axiom "name": forall
    microop "i", ... => EdgesExists [...]) closely enough to be read by
    humans and simple parsers; it is not a bug-for-bug µSPEC grammar. *)

val axiom_of_result : Synth.result -> string
(** One axiom: a disjunction of per-µPATH conjunctions of node-existence and
    happens-before edge terms, with consecutive-revisit annotations. *)

val model_of_results : design_name:string -> Synth.result list -> string
(** A whole model file: a header, one axiom per instruction, and a shared
    definition block listing every performing location as a µHB row. *)
