(** Cycle-accurate netlist interpreter.

    Drives a validated {!Hdl.Netlist.t}: per cycle, inputs are poked,
    combinational logic is evaluated in topological order, outputs observed,
    and registers clocked.  Registers declared [Init_symbolic] receive
    random reset values drawn from the simulator's PRNG — the concrete
    counterpart of the model checker's symbolic initial state.

    The simulator doubles as the cheap pre-pass the model checker uses to
    discharge cover properties (a random trace that hits a cover proves
    reachability without a SAT call). *)

type t

val create : ?seed:int -> Hdl.Netlist.t -> t
(** Validates the netlist; raises if it is malformed. *)

val netlist : t -> Hdl.Netlist.t

val reset : t -> unit
(** Return to cycle 0: re-apply register init values (drawing fresh random
    values for symbolic-init registers) and clear inputs to zero. *)

val poke : t -> Hdl.Netlist.signal -> Bitvec.t -> unit
(** Set an input's value for the current cycle.  Raises if the signal is not
    an [Input] or the width differs. *)

val poke_random_inputs : t -> unit
(** Drive every input with a fresh random value for the current cycle. *)

val poke_reg : t -> Hdl.Netlist.signal -> Bitvec.t -> unit
(** Overwrite a register's current state — used to set up specific
    architectural initial states (e.g. the SC-Safe experiment's
    low-equivalent state pairs).  Raises if the signal is not a register. *)

val eval : t -> unit
(** Evaluate combinational logic from current register and input values. *)

val peek : t -> Hdl.Netlist.signal -> Bitvec.t
(** Value after the most recent {!eval}. *)

val peek_bool : t -> Hdl.Netlist.signal -> bool
(** [peek] of a 1-bit signal. *)

val step : t -> unit
(** Clock edge: latch register next-state values, advance the cycle count.
    Requires {!eval} to have run for the current cycle. *)

val cycle : t -> int

(** {1 Trace recording} *)

module Trace : sig
  type sim = t

  type t
  (** A recorded waveform: for a set of watched signals, one value per
      recorded cycle. *)

  val create : Hdl.Netlist.t -> watch:Hdl.Netlist.signal list -> t
  val record : t -> sim -> unit
  (** Record the watched signals' current values as the next cycle. *)

  val length : t -> int

  val value : t -> Hdl.Netlist.signal -> cycle:int -> Bitvec.t
  (** Raises [Not_found] if the signal is not watched or cycle out of range. *)

  val value_bool : t -> Hdl.Netlist.signal -> cycle:int -> bool
  val watched : t -> Hdl.Netlist.signal list

  val to_vcd : t -> Buffer.t -> unit
  (** Render as a Value Change Dump waveform. *)
end

val run : t -> cycles:int -> stimulus:(t -> int -> unit) -> ?trace:Trace.t -> unit -> unit
(** [run sim ~cycles ~stimulus ()] executes [cycles] full clock cycles.  Per
    cycle: [stimulus sim n] pokes inputs (poke what you need; unpoked inputs
    keep zero), then logic is evaluated, the optional trace records, and the
    clock steps. *)
