module Netlist = Hdl.Netlist

type t = {
  nl : Netlist.t;
  order : Netlist.signal array;
  values : Bitvec.t array; (* current combinational values by node id *)
  reg_state : Bitvec.t array; (* register values by node id (others unused) *)
  rng : Random.State.t;
  mutable cycle_count : int;
}

let netlist s = s.nl

let reg_init s id =
  match (Netlist.node s.nl id).Netlist.kind with
  | Netlist.Reg { init = Netlist.Init_value v; _ } -> v
  | Netlist.Reg { init = Netlist.Init_symbolic; _ } ->
    Bitvec.random s.rng (Netlist.width s.nl id)
  | _ -> assert false

let reset s =
  s.cycle_count <- 0;
  Netlist.iter_nodes s.nl (fun n ->
      match n.Netlist.kind with
      | Netlist.Reg _ -> s.reg_state.(n.Netlist.id) <- reg_init s n.Netlist.id
      | Netlist.Input -> s.values.(n.Netlist.id) <- Bitvec.zero n.Netlist.width
      | _ -> ())

let create ?(seed = 0) nl =
  Netlist.validate nl;
  let n = Netlist.num_nodes nl in
  let s =
    {
      nl;
      order = Netlist.comb_order nl;
      values = Array.init n (fun i -> Bitvec.zero (Netlist.width nl i));
      reg_state = Array.init n (fun i -> Bitvec.zero (Netlist.width nl i));
      rng = Random.State.make [| seed; 0x5eed |];
      cycle_count = 0;
    }
  in
  reset s;
  s

let poke s sig_ v =
  (match (Netlist.node s.nl sig_).Netlist.kind with
  | Netlist.Input -> ()
  | _ -> invalid_arg "Sim.poke: not an input");
  if Bitvec.width v <> Netlist.width s.nl sig_ then
    invalid_arg "Sim.poke: width mismatch";
  s.values.(sig_) <- v

let poke_reg s sig_ v =
  (match (Netlist.node s.nl sig_).Netlist.kind with
  | Netlist.Reg _ -> ()
  | _ -> invalid_arg "Sim.poke_reg: not a register");
  if Bitvec.width v <> Netlist.width s.nl sig_ then
    invalid_arg "Sim.poke_reg: width mismatch";
  s.reg_state.(sig_) <- v

let poke_random_inputs s =
  List.iter
    (fun i -> s.values.(i) <- Bitvec.random s.rng (Netlist.width s.nl i))
    (Netlist.inputs s.nl)

let eval_node s id =
  let open Netlist in
  match (node s.nl id).kind with
  | Input -> () (* keeps poked value *)
  | Const v -> s.values.(id) <- v
  | Reg _ -> s.values.(id) <- s.reg_state.(id)
  | Wire { driver = Some d } -> s.values.(id) <- s.values.(d)
  | Wire { driver = None } -> assert false
  | Not a -> s.values.(id) <- Bitvec.lognot s.values.(a)
  | Op2 (op, a, b) ->
    let va = s.values.(a) and vb = s.values.(b) in
    s.values.(id) <-
      (match op with
      | And -> Bitvec.logand va vb
      | Or -> Bitvec.logor va vb
      | Xor -> Bitvec.logxor va vb
      | Add -> Bitvec.add va vb
      | Sub -> Bitvec.sub va vb
      | Mul -> Bitvec.mul va vb
      | Eq -> Bitvec.of_bool (Bitvec.equal va vb)
      | Ult -> Bitvec.of_bool (Bitvec.ult va vb)
      | Slt -> Bitvec.of_bool (Bitvec.slt va vb))
  | Mux { sel; on_true; on_false } ->
    s.values.(id) <-
      (if Bitvec.is_zero s.values.(sel) then s.values.(on_false)
       else s.values.(on_true))
  | Extract { hi; lo; arg } -> s.values.(id) <- Bitvec.extract s.values.(arg) ~hi ~lo
  | Concat parts ->
    let v =
      List.fold_left
        (fun acc p ->
          match acc with
          | None -> Some s.values.(p)
          | Some hi -> Some (Bitvec.concat hi s.values.(p)))
        None parts
    in
    s.values.(id) <- Option.get v
  | ReduceOr a -> s.values.(id) <- Bitvec.of_bool (not (Bitvec.is_zero s.values.(a)))
  | ReduceAnd a -> s.values.(id) <- Bitvec.of_bool (Bitvec.is_ones s.values.(a))

let eval s = Array.iter (eval_node s) s.order

let peek s sig_ = s.values.(sig_)
let peek_bool s sig_ = not (Bitvec.is_zero s.values.(sig_))

let step s =
  Netlist.iter_nodes s.nl (fun n ->
      match n.Netlist.kind with
      | Netlist.Reg { next = Some nxt; enable; _ } ->
        let update =
          match enable with
          | None -> true
          | Some en -> not (Bitvec.is_zero s.values.(en))
        in
        if update then s.reg_state.(n.Netlist.id) <- s.values.(nxt)
      | _ -> ());
  s.cycle_count <- s.cycle_count + 1

let cycle s = s.cycle_count

module Trace = struct
  type sim = t

  type t = {
    nl : Netlist.t;
    watch : Netlist.signal list;
    idx : (Netlist.signal, int) Hashtbl.t;
    mutable rows : Bitvec.t array list; (* reversed *)
    mutable len : int;
  }

  let create nl ~watch =
    let idx = Hashtbl.create 16 in
    List.iteri (fun i s -> Hashtbl.replace idx s i) watch;
    { nl; watch; idx; rows = []; len = 0 }

  let record t sim =
    let row = Array.of_list (List.map (fun s -> peek sim s) t.watch) in
    t.rows <- row :: t.rows;
    t.len <- t.len + 1

  let length t = t.len

  let value t sig_ ~cycle =
    if cycle < 0 || cycle >= t.len then raise Not_found;
    let i = Hashtbl.find t.idx sig_ in
    (List.nth t.rows (t.len - 1 - cycle)).(i)

  let value_bool t sig_ ~cycle = not (Bitvec.is_zero (value t sig_ ~cycle))
  let watched t = t.watch

  let to_vcd t buf =
    let ident i = Printf.sprintf "s%d" i in
    Buffer.add_string buf "$timescale 1ns $end\n$scope module dut $end\n";
    List.iteri
      (fun i s ->
        let n = Netlist.node t.nl s in
        let nm = Option.value n.Netlist.name ~default:(Printf.sprintf "sig%d" s) in
        Buffer.add_string buf
          (Printf.sprintf "$var wire %d %s %s $end\n" n.Netlist.width (ident i) nm))
      t.watch;
    Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
    let rows = List.rev t.rows in
    List.iteri
      (fun c row ->
        Buffer.add_string buf (Printf.sprintf "#%d\n" c);
        Array.iteri
          (fun i v ->
            if Bitvec.width v = 1 then
              Buffer.add_string buf
                (Printf.sprintf "%c%s\n" (if Bitvec.is_zero v then '0' else '1') (ident i))
            else
              Buffer.add_string buf
                (Printf.sprintf "b%s %s\n" (Bitvec.to_binary_string v) (ident i)))
          row)
      rows
end

let run s ~cycles ~stimulus ?trace () =
  for c = 0 to cycles - 1 do
    stimulus s c;
    eval s;
    (match trace with Some t -> Trace.record t s | None -> ());
    step s
  done
