module Make (C : sig
  val nl : Netlist.t
end) =
struct
  type s = Netlist.signal

  let nl = C.nl
  let of_bv v = Netlist.const nl v
  let of_int w n = of_bv (Bitvec.of_int ~width:w n)
  let vdd = of_int 1 1
  let gnd = of_int 1 0
  let zero w = of_int w 0
  let ones w = of_bv (Bitvec.ones w)
  let input name w = Netlist.input nl name w

  let reg ?enable ?init ~name ~width () =
    let init =
      match init with
      | Some v -> Netlist.Init_value v
      | None -> Netlist.Init_value (Bitvec.zero width)
    in
    Netlist.reg nl ?enable ~name ~init ~width ()

  let reg_symbolic ?enable ~name ~width () =
    Netlist.reg nl ?enable ~name ~init:Netlist.Init_symbolic ~width ()

  let ( <== ) dst src =
    match (Netlist.node nl dst).Netlist.kind with
    | Netlist.Reg _ -> Netlist.connect_reg nl dst src
    | Netlist.Wire _ -> Netlist.connect_wire nl dst src
    | _ -> failwith "Dsl.(<==): destination must be a register or wire"

  let wire ?name w = Netlist.wire nl ?name w
  let ( &: ) a b = Netlist.op2 nl Netlist.And a b
  let ( |: ) a b = Netlist.op2 nl Netlist.Or a b
  let ( ^: ) a b = Netlist.op2 nl Netlist.Xor a b
  let ( ~: ) a = Netlist.not_ nl a
  let any a = Netlist.reduce_or nl a
  let all a = Netlist.reduce_and nl a
  let is_zero a = ~:(any a)
  let ( +: ) a b = Netlist.op2 nl Netlist.Add a b
  let ( -: ) a b = Netlist.op2 nl Netlist.Sub a b
  let ( *: ) a b = Netlist.op2 nl Netlist.Mul a b
  let ( ==: ) a b = Netlist.op2 nl Netlist.Eq a b
  let ( <>: ) a b = ~:(a ==: b)
  let ( <: ) a b = Netlist.op2 nl Netlist.Ult a b
  let ( <=: ) a b = ~:(Netlist.op2 nl Netlist.Ult b a)
  let ( >=: ) a b = ~:(Netlist.op2 nl Netlist.Ult a b)
  let ( >: ) a b = Netlist.op2 nl Netlist.Ult b a
  let ( <+ ) a b = Netlist.op2 nl Netlist.Slt a b
  let width s = Netlist.width nl s
  let eq_const s n = s ==: of_int (width s) n
  let mux sel on_true on_false = Netlist.mux nl ~sel ~on_true ~on_false
  let select s hi lo = Netlist.extract nl ~hi ~lo s
  let bit s i = select s i i
  let msb s = bit s (width s - 1)
  let concat parts = Netlist.concat nl parts

  let zero_extend s w =
    if w < width s then invalid_arg "Dsl.zero_extend: narrowing"
    else if w = width s then s
    else concat [ zero (w - width s); s ]

  let repeat_msb s n =
    let m = msb s in
    concat (List.init n (fun _ -> m))

  let sign_extend s w =
    if w < width s then invalid_arg "Dsl.sign_extend: narrowing"
    else if w = width s then s
    else concat [ repeat_msb s (w - width s); s ]

  let repeat s n =
    if n <= 0 then invalid_arg "Dsl.repeat: count must be positive"
    else concat (List.init n (fun _ -> s))

  let uresize s w =
    if w = width s then s
    else if w < width s then select s (w - 1) 0
    else zero_extend s w

  let priority_mux cases default =
    List.fold_right (fun (c, v) acc -> mux c v acc) cases default

  let binary_mux sel values =
    let n = List.length values in
    if n <> 1 lsl width sel then
      invalid_arg "Dsl.binary_mux: need exactly 2^width values";
    let rec go lo hi values sel_bit =
      if lo = hi then List.nth values lo
      else
        let mid = (lo + hi) / 2 in
        let lo_v = go lo mid values (sel_bit - 1) in
        let hi_v = go (mid + 1) hi values (sel_bit - 1) in
        mux (bit sel sel_bit) hi_v lo_v
    in
    go 0 (n - 1) values (width sel - 1)
end
