lib/hdl/dsl.ml: Bitvec List Netlist
