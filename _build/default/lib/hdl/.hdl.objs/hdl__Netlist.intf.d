lib/hdl/netlist.mli: Bitvec Hashtbl
