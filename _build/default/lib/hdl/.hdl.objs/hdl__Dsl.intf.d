lib/hdl/dsl.mli: Bitvec Netlist
