lib/hdl/netlist.ml: Array Bitvec Hashtbl List Option Printf
