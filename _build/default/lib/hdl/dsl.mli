(** Hardware-construction DSL.

    [Dsl.Make] instantiates combinator syntax over one netlist so that
    processor designs read like structural RTL:

    {[
      module D = Hdl.Dsl.Make (struct let nl = Hdl.Netlist.create "core" end)
      open D
      let pc = reg ~name:"pc" ~width:6 ()
      let () = pc <== pc +: of_int 6 1
    ]} *)

module Make (C : sig
  val nl : Netlist.t
end) : sig
  type s = Netlist.signal

  val nl : Netlist.t

 (** {1 Constants and inputs} *)

  val of_int : int -> int -> s

 (** [of_int width value]. *)

  val of_bv : Bitvec.t -> s

 (** 1-bit constant 1. *)
  val vdd : s

 (** 1-bit constant 0. *)
  val gnd : s

  val zero : int -> s
  val ones : int -> s
  val input : string -> int -> s

 (** {1 State} *)

  val reg : ?enable:s -> ?init:Bitvec.t -> name:string -> width:int -> unit -> s

 (** A register initialized to [init] (default all-zeros). *)

  val reg_symbolic : ?enable:s -> name:string -> width:int -> unit -> s

 (** A register with symbolic initial value — architectural state (§V-B). *)

  val ( <== ) : s -> s -> unit

 (** Connect a register's next-state input (or a wire's driver). *)

  val wire : ?name:string -> int -> s

 (** {1 Bitwise and logical} *)

  val ( &: ) : s -> s -> s
  val ( |: ) : s -> s -> s
  val ( ^: ) : s -> s -> s
  val ( ~: ) : s -> s

 (** OR-reduce to 1 bit. *)
  val any : s -> s

 (** AND-reduce to 1 bit. *)
  val all : s -> s

 (** 1-bit: value = 0. *)
  val is_zero : s -> s


 (** {1 Arithmetic} *)

  val ( +: ) : s -> s -> s
  val ( -: ) : s -> s -> s
  val ( *: ) : s -> s -> s

 (** {1 Comparisons (1-bit results)} *)

  val ( ==: ) : s -> s -> s
  val ( <>: ) : s -> s -> s

 (** Unsigned less-than. *)
  val ( <: ) : s -> s -> s

  val ( <=: ) : s -> s -> s
  val ( >=: ) : s -> s -> s
  val ( >: ) : s -> s -> s

 (** Signed less-than. *)
  val ( <+ ) : s -> s -> s

  val eq_const : s -> int -> s

 (** {1 Selection} *)

  val mux : s -> s -> s -> s

 (** [mux sel on_true on_false]. *)

  val select : s -> int -> int -> s

 (** [select s hi lo]. *)

  val bit : s -> int -> s
  val msb : s -> s

 (** Head = most significant. *)
  val concat : s list -> s

  val zero_extend : s -> int -> s
  val sign_extend : s -> int -> s
  val repeat : s -> int -> s
  val uresize : s -> int -> s

 (** Zero-extend or truncate to the given width. *)

  val priority_mux : (s * s) list -> s -> s

 (** [priority_mux [(c1, v1); ...] default]: first matching condition wins. *)

  val binary_mux : s -> s list -> s

 (** [binary_mux sel values] indexes [values] by the binary value of [sel];
      the list must have exactly [2^width sel] elements. *)

  val width : s -> int
end
