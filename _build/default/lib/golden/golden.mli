(** Architectural golden model of RV-lite.

    A sequential, instruction-at-a-time interpreter defining the ISA's
    architectural semantics — the specification the pipelined CVA6-lite
    implementations are differentially tested against.  Matches the fixed
    (bug-free) core: control-flow targets must be 4-byte aligned, a
    misaligned transfer raises an exception that redirects to the vector at
    PC 0, division follows RISC-V corner-case rules, and register 0 reads
    as zero. *)

type state = {
  regs : Bitvec.t array;  (** 4 registers; index 0 is hardwired zero. *)
  mem : Bitvec.t array;  (** 8 bytes. *)
  mutable pc : int;  (** Instruction-granular PC. *)
  mutable steps : int;  (** Retired-instruction count. *)
}

val create : ?regs:Bitvec.t array -> ?mem:Bitvec.t array -> unit -> state
(** Unspecified registers and memory bytes start at zero. *)

val step : state -> Isa.t -> unit
(** Execute one instruction (the one architecturally at [state.pc]) and
    advance the PC — to the (aligned) target for taken control flow, to the
    exception vector 0 on a misaligned-target exception, else to [pc+1]. *)

val run : state -> program:Isa.t list -> max_steps:int -> unit
(** Fetch from [program] by PC (out-of-range PCs execute NOPs) and [step]
    until [max_steps] instructions have retired. *)

val reg : state -> int -> Bitvec.t
