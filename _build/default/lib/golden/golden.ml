type state = {
  regs : Bitvec.t array;
  mem : Bitvec.t array;
  mutable pc : int;
  mutable steps : int;
}

let xlen = Isa.xlen

let create ?regs ?mem () =
  let dup n def src =
    Array.init n (fun i ->
        match src with
        | Some a when i < Array.length a -> a.(i)
        | _ -> def)
  in
  {
    regs = dup 4 (Bitvec.zero xlen) regs;
    mem = dup 8 (Bitvec.zero xlen) mem;
    pc = 0;
    steps = 0;
  }

let reg st i = if i = 0 then Bitvec.zero xlen else st.regs.(i)

let write_reg st i v = if i <> 0 then st.regs.(i) <- v

let mem_index addr = Bitvec.to_int (Bitvec.extract addr ~hi:2 ~lo:0)

let step st (i : Isa.t) =
  let a = reg st i.Isa.rs1 in
  let b = reg st i.Isa.rs2 in
  let imm = Bitvec.of_int ~width:xlen i.Isa.imm in
  let shamt = Bitvec.to_int b land 7 in
  let bool_to_bv c = Bitvec.of_int ~width:xlen (if c then 1 else 0) in
  let next = ref (st.pc + 1) in
  (* Control transfers compute byte-space targets; instruction slots are
     4-byte aligned.  Misalignment raises an exception redirecting to the
     vector at PC 0. *)
  let transfer target_byte =
    if Bitvec.to_int (Bitvec.extract target_byte ~hi:1 ~lo:0) <> 0 then next := 0
    else next := Bitvec.to_int (Bitvec.extract target_byte ~hi:7 ~lo:2)
  in
  let pc_bytes = Bitvec.of_int ~width:xlen (st.pc * 4) in
  let link = Bitvec.of_int ~width:xlen (((st.pc + 1) * 4) land 0xFF) in
  (match i.Isa.op with
  | Isa.NOP -> ()
  | Isa.ADD -> write_reg st i.Isa.rd (Bitvec.add a b)
  | Isa.SUB -> write_reg st i.Isa.rd (Bitvec.sub a b)
  | Isa.AND -> write_reg st i.Isa.rd (Bitvec.logand a b)
  | Isa.OR -> write_reg st i.Isa.rd (Bitvec.logor a b)
  | Isa.XOR -> write_reg st i.Isa.rd (Bitvec.logxor a b)
  | Isa.SLT -> write_reg st i.Isa.rd (bool_to_bv (Bitvec.slt a b))
  | Isa.SLTU -> write_reg st i.Isa.rd (bool_to_bv (Bitvec.ult a b))
  | Isa.ADDI -> write_reg st i.Isa.rd (Bitvec.add a imm)
  | Isa.ANDI -> write_reg st i.Isa.rd (Bitvec.logand a imm)
  | Isa.ORI -> write_reg st i.Isa.rd (Bitvec.logor a imm)
  | Isa.XORI -> write_reg st i.Isa.rd (Bitvec.logxor a imm)
  | Isa.SLL -> write_reg st i.Isa.rd (Bitvec.shift_left a shamt)
  | Isa.SRL -> write_reg st i.Isa.rd (Bitvec.shift_right_logical a shamt)
  | Isa.SRA -> write_reg st i.Isa.rd (Bitvec.shift_right_arith a shamt)
  | Isa.MUL -> write_reg st i.Isa.rd (Bitvec.mul a b)
  | Isa.DIV -> write_reg st i.Isa.rd (Bitvec.sdiv a b)
  | Isa.DIVU -> write_reg st i.Isa.rd (Bitvec.udiv a b)
  | Isa.REM -> write_reg st i.Isa.rd (Bitvec.srem a b)
  | Isa.REMU -> write_reg st i.Isa.rd (Bitvec.urem a b)
  | Isa.LW -> write_reg st i.Isa.rd st.mem.(mem_index (Bitvec.add a imm))
  | Isa.LB ->
    let byte = st.mem.(mem_index (Bitvec.add a imm)) in
    write_reg st i.Isa.rd
      (Bitvec.sign_extend (Bitvec.extract byte ~hi:3 ~lo:0) xlen)
  | Isa.SW -> st.mem.(mem_index (Bitvec.add a imm)) <- b
  | Isa.SB ->
    st.mem.(mem_index (Bitvec.add a imm)) <-
      Bitvec.zero_extend (Bitvec.extract b ~hi:3 ~lo:0) xlen
  | Isa.BEQ -> if Bitvec.equal a b then transfer (Bitvec.add pc_bytes imm)
  | Isa.BNE -> if not (Bitvec.equal a b) then transfer (Bitvec.add pc_bytes imm)
  | Isa.BLT -> if Bitvec.slt a b then transfer (Bitvec.add pc_bytes imm)
  | Isa.BGE -> if not (Bitvec.slt a b) then transfer (Bitvec.add pc_bytes imm)
  | Isa.BLTU -> if Bitvec.ult a b then transfer (Bitvec.add pc_bytes imm)
  | Isa.BGEU -> if not (Bitvec.ult a b) then transfer (Bitvec.add pc_bytes imm)
  | Isa.JAL ->
    write_reg st i.Isa.rd link;
    transfer (Bitvec.add pc_bytes imm)
  | Isa.JALR ->
    write_reg st i.Isa.rd link;
    transfer (Bitvec.add a imm));
  st.pc <- !next land ((1 lsl Isa.pc_bits) - 1);
  st.steps <- st.steps + 1

let run st ~program ~max_steps =
  let prog = Array.of_list program in
  while st.steps < max_steps do
    let i = if st.pc < Array.length prog then prog.(st.pc) else Isa.nop in
    step st i
  done
