(** Arbitrary-width bit-vectors.

    A value of type {!t} is an unsigned bit-vector of a fixed positive width,
    backed by little-endian 64-bit limbs.  All operations are total: inputs of
    mismatched width raise [Invalid_argument], and division by zero follows
    RISC-V semantics (see {!udiv}).  Values are immutable and normalized
    (bits above [width] are always zero), so structural equality coincides
    with semantic equality. *)

type t

(** {1 Construction} *)

val width : t -> int

val zero : int -> t
(** [zero w] is the all-zeros vector of width [w].  Raises if [w <= 0]. *)

val ones : int -> t
(** [ones w] is the all-ones vector of width [w]. *)

val one : int -> t
(** [one w] is the vector of width [w] with value 1. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] truncates the two's-complement representation of [n]
    to [width] bits. *)

val of_int64 : width:int -> int64 -> t

val of_bool : bool -> t
(** 1-bit vector: [true] is 1, [false] is 0. *)

val of_bits : bool list -> t
(** [of_bits bits] builds a vector from [bits] listed LSB first.
    Raises on the empty list. *)

val of_binary_string : string -> t
(** [of_binary_string "1010"] parses an MSB-first binary literal. *)

(** {1 Observation} *)

val to_int : t -> int
(** Value as a non-negative OCaml [int].  Raises [Invalid_argument] if the
    value does not fit in 62 bits. *)

val to_int64_trunc : t -> int64
(** Low 64 bits of the value. *)

val bit : t -> int -> bool
(** [bit v i] is bit [i] (0 = LSB).  Raises if [i] is out of range. *)

val to_bits : t -> bool list
(** LSB first. *)

val is_zero : t -> bool
val is_ones : t -> bool
val msb : t -> bool
val popcount : t -> int
val to_binary_string : t -> string
val to_hex_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
(** Unsigned comparison; vectors of different widths compare by width first. *)

val hash : t -> int

(** {1 Bitwise operations} (operands must have equal width) *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

(** {1 Arithmetic} (operands must have equal width; results wrap) *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val udiv : t -> t -> t
(** RISC-V semantics: division by zero yields all ones. *)

val urem : t -> t -> t
(** RISC-V semantics: remainder by zero yields the dividend. *)

val sdiv : t -> t -> t
(** Signed division, RISC-V semantics: by zero yields all ones; overflow
    (min / -1) yields min. *)

val srem : t -> t -> t
(** Signed remainder, RISC-V semantics: by zero yields the dividend;
    overflow yields zero. *)

(** {1 Shifts} — shift amount is an OCaml [int]; amounts [>= width] saturate. *)

val shift_left : t -> int -> t
val shift_right_logical : t -> int -> t
val shift_right_arith : t -> int -> t

(** {1 Comparisons as predicates} *)

val ult : t -> t -> bool
val ule : t -> t -> bool
val slt : t -> t -> bool
(** Signed less-than. *)

val sle : t -> t -> bool

(** {1 Structure} *)

val extract : t -> hi:int -> lo:int -> t
(** [extract v ~hi ~lo] is bits [hi..lo] inclusive, width [hi - lo + 1]. *)

val concat : t -> t -> t
(** [concat hi lo] has [hi] in the high bits. *)

val zero_extend : t -> int -> t
(** [zero_extend v w] widens to [w] bits ([w >= width v]). *)

val sign_extend : t -> int -> t

val set_bit : t -> int -> bool -> t
(** Functional update of one bit. *)

(** {1 Signed value} *)

val to_signed_int : t -> int
(** Two's-complement value.  Raises if it does not fit in an OCaml [int]. *)

(** {1 Randomness (for tests and simulation stimulus)} *)

val random : Random.State.t -> int -> t
(** [random st w] draws a uniform vector of width [w]. *)
