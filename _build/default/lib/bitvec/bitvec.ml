type t = { width : int; limbs : int64 array }

let nlimbs w = (w + 63) / 64

(* Mask off bits above [width] in the top limb so equality is structural. *)
let normalize width limbs =
  let top_bits = width land 63 in
  if top_bits <> 0 then begin
    let last = Array.length limbs - 1 in
    let mask = Int64.sub (Int64.shift_left 1L top_bits) 1L in
    limbs.(last) <- Int64.logand limbs.(last) mask
  end;
  { width; limbs }

let check_width w = if w <= 0 then invalid_arg "Bitvec: width must be positive"

let width v = v.width

let zero w =
  check_width w;
  { width = w; limbs = Array.make (nlimbs w) 0L }

let ones w =
  check_width w;
  normalize w (Array.make (nlimbs w) (-1L))

let of_int64 ~width:w n =
  check_width w;
  let limbs = Array.make (nlimbs w) 0L in
  limbs.(0) <- n;
  (* Sign-extend negative int64 across remaining limbs so that of_int64
     matches two's-complement truncation for any width. *)
  if Int64.compare n 0L < 0 then
    for i = 1 to Array.length limbs - 1 do
      limbs.(i) <- -1L
    done;
  normalize w limbs

let of_int ~width n = of_int64 ~width (Int64.of_int n)
let one w = of_int ~width:w 1
let of_bool b = of_int ~width:1 (if b then 1 else 0)

let bit v i =
  if i < 0 || i >= v.width then invalid_arg "Bitvec.bit: index out of range";
  Int64.logand (Int64.shift_right_logical v.limbs.(i / 64) (i land 63)) 1L = 1L

let set_bit v i b =
  if i < 0 || i >= v.width then invalid_arg "Bitvec.set_bit: index out of range";
  let limbs = Array.copy v.limbs in
  let mask = Int64.shift_left 1L (i land 63) in
  limbs.(i / 64) <-
    (if b then Int64.logor limbs.(i / 64) mask
     else Int64.logand limbs.(i / 64) (Int64.lognot mask));
  { v with limbs }

let of_bits bits =
  match bits with
  | [] -> invalid_arg "Bitvec.of_bits: empty"
  | _ ->
    let w = List.length bits in
    let v = ref (zero w) in
    List.iteri (fun i b -> if b then v := set_bit !v i b) bits;
    !v

let to_bits v = List.init v.width (bit v)

let of_binary_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bitvec.of_binary_string: empty";
  let v = ref (zero n) in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> v := set_bit !v (n - 1 - i) true
      | _ -> invalid_arg "Bitvec.of_binary_string: expected 0 or 1")
    s;
  !v

let to_binary_string v =
  String.init v.width (fun i -> if bit v (v.width - 1 - i) then '1' else '0')

let to_hex_string v =
  let digits = (v.width + 3) / 4 in
  String.init digits (fun i ->
      let lo = (digits - 1 - i) * 4 in
      let d = ref 0 in
      for j = 3 downto 0 do
        let idx = lo + j in
        d := (!d * 2) + if idx < v.width && bit v idx then 1 else 0
      done;
      "0123456789abcdef".[!d])

let pp fmt v = Format.fprintf fmt "%d'h%s" v.width (to_hex_string v)

let equal a b = a.width = b.width && Array.for_all2 Int64.equal a.limbs b.limbs

let hash v = Hashtbl.hash (v.width, Array.to_list v.limbs)

(* Unsigned limb comparison: flip sign bits so Int64.compare orders
   unsigned values correctly. *)
let ucompare_limb a b =
  Int64.compare (Int64.add a Int64.min_int) (Int64.add b Int64.min_int)

let compare a b =
  if a.width <> b.width then Int.compare a.width b.width
  else
    let rec go i =
      if i < 0 then 0
      else
        let c = ucompare_limb a.limbs.(i) b.limbs.(i) in
        if c <> 0 then c else go (i - 1)
    in
    go (Array.length a.limbs - 1)

let is_zero v = Array.for_all (Int64.equal 0L) v.limbs
let is_ones v = equal v (ones v.width)
let msb v = bit v (v.width - 1)

let popcount v =
  let pop64 l =
    let c = ref 0 in
    for i = 0 to 63 do
      if Int64.logand (Int64.shift_right_logical l i) 1L = 1L then incr c
    done;
    !c
  in
  Array.fold_left (fun acc l -> acc + pop64 l) 0 v.limbs

let to_int v =
  if v.width > 62 then begin
    (* Accept wide vectors whose value still fits. *)
    for i = 1 to Array.length v.limbs - 1 do
      if v.limbs.(i) <> 0L then invalid_arg "Bitvec.to_int: does not fit"
    done;
    let l = v.limbs.(0) in
    if Int64.compare l 0L < 0 || Int64.compare l (Int64.of_int max_int) > 0 then
      invalid_arg "Bitvec.to_int: does not fit";
    Int64.to_int l
  end
  else Int64.to_int v.limbs.(0)

let to_int64_trunc v = v.limbs.(0)

let to_signed_int v =
  if msb v then
    let m = (* -(2^width - value) *)
      let rec sum i acc =
        if i >= v.width then acc
        else sum (i + 1) (if bit v i then acc else acc + (1 lsl i))
      in
      if v.width > 62 then invalid_arg "Bitvec.to_signed_int: too wide"
      else -(sum 0 0) - 1
    in
    m
  else to_int v

let check_same a b =
  if a.width <> b.width then invalid_arg "Bitvec: width mismatch"

let map2 f a b =
  check_same a b;
  normalize a.width (Array.init (Array.length a.limbs) (fun i -> f a.limbs.(i) b.limbs.(i)))

let logand a b = map2 Int64.logand a b
let logor a b = map2 Int64.logor a b
let logxor a b = map2 Int64.logxor a b

let lognot a =
  normalize a.width (Array.map Int64.lognot a.limbs)

(* Addition with carry propagation across limbs. *)
let add a b =
  check_same a b;
  let n = Array.length a.limbs in
  let out = Array.make n 0L in
  let carry = ref 0L in
  for i = 0 to n - 1 do
    let s = Int64.add a.limbs.(i) b.limbs.(i) in
    let s' = Int64.add s !carry in
    (* carry-out of unsigned add: s < a (as unsigned) or (s' < s when adding carry) *)
    let c1 = if ucompare_limb s a.limbs.(i) < 0 then 1L else 0L in
    let c2 = if ucompare_limb s' s < 0 then 1L else 0L in
    out.(i) <- s';
    carry := Int64.add c1 c2
  done;
  normalize a.width out

let neg a = add (lognot a) (one a.width)
let sub a b = add a (neg b)

let shift_left v k =
  if k < 0 then invalid_arg "Bitvec.shift_left: negative";
  if k >= v.width then zero v.width
  else begin
    let out = zero v.width in
    let out = ref out in
    for i = v.width - 1 downto k do
      if bit v (i - k) then out := set_bit !out i true
    done;
    !out
  end

let shift_right_logical v k =
  if k < 0 then invalid_arg "Bitvec.shift_right_logical: negative";
  if k >= v.width then zero v.width
  else begin
    let out = ref (zero v.width) in
    for i = 0 to v.width - 1 - k do
      if bit v (i + k) then out := set_bit !out i true
    done;
    !out
  end

let shift_right_arith v k =
  if k < 0 then invalid_arg "Bitvec.shift_right_arith: negative";
  let sign = msb v in
  let k = min k v.width in
  let out = ref (shift_right_logical v (min k (v.width - 1)) ) in
  if k >= v.width then out := if sign then ones v.width else zero v.width
  else if sign then
    for i = v.width - k to v.width - 1 do
      out := set_bit !out i true
    done;
  !out

let mul a b =
  check_same a b;
  (* Schoolbook shift-and-add; widths in this project are small. *)
  let acc = ref (zero a.width) in
  for i = 0 to a.width - 1 do
    if bit b i then acc := add !acc (shift_left a i)
  done;
  !acc

let ult a b = compare a b < 0
let ule a b = compare a b <= 0

let slt a b =
  check_same a b;
  match (msb a, msb b) with
  | true, false -> true
  | false, true -> false
  | _ -> ult a b

let sle a b = slt a b || equal a b

(* Unsigned long division, restoring, bit-serial. *)
let udivmod a b =
  check_same a b;
  if is_zero b then (ones a.width, a) (* RISC-V: q = -1, r = dividend *)
  else begin
    let q = ref (zero a.width) in
    let r = ref (zero a.width) in
    for i = a.width - 1 downto 0 do
      r := shift_left !r 1;
      if bit a i then r := set_bit !r 0 true;
      if ule b !r then begin
        r := sub !r b;
        q := set_bit !q i true
      end
    done;
    (!q, !r)
  end

let udiv a b = fst (udivmod a b)
let urem a b = snd (udivmod a b)

let min_signed w = set_bit (zero w) (w - 1) true

let sdiv a b =
  check_same a b;
  if is_zero b then ones a.width
  else if equal a (min_signed a.width) && is_ones b then a (* overflow *)
  else begin
    let abs v = if msb v then neg v else v in
    let q = udiv (abs a) (abs b) in
    if msb a <> msb b then neg q else q
  end

let srem a b =
  check_same a b;
  if is_zero b then a
  else if equal a (min_signed a.width) && is_ones b then zero a.width
  else begin
    let abs v = if msb v then neg v else v in
    let r = urem (abs a) (abs b) in
    if msb a then neg r else r
  end

let extract v ~hi ~lo =
  if lo < 0 || hi >= v.width || hi < lo then
    invalid_arg "Bitvec.extract: bad range";
  let w = hi - lo + 1 in
  let out = ref (zero w) in
  for i = 0 to w - 1 do
    if bit v (lo + i) then out := set_bit !out i true
  done;
  !out

let concat hi lo =
  let w = hi.width + lo.width in
  let out = ref (zero w) in
  for i = 0 to lo.width - 1 do
    if bit lo i then out := set_bit !out i true
  done;
  for i = 0 to hi.width - 1 do
    if bit hi i then out := set_bit !out (lo.width + i) true
  done;
  !out

let zero_extend v w =
  if w < v.width then invalid_arg "Bitvec.zero_extend: narrowing";
  if w = v.width then v
  else begin
    let out = ref (zero w) in
    for i = 0 to v.width - 1 do
      if bit v i then out := set_bit !out i true
    done;
    !out
  end

let sign_extend v w =
  if w < v.width then invalid_arg "Bitvec.sign_extend: narrowing";
  let out = ref (zero_extend v w) in
  if msb v then
    for i = v.width to w - 1 do
      out := set_bit !out i true
    done;
  !out

let random st w =
  check_width w;
  let limbs = Array.init (nlimbs w) (fun _ -> Random.State.int64 st Int64.max_int) in
  (* int64 draws miss the sign bit; fill it from a separate draw. *)
  let limbs =
    Array.map
      (fun l -> if Random.State.bool st then Int64.logor l Int64.min_int else l)
      limbs
  in
  normalize w limbs
