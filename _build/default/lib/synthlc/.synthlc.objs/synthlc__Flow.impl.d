lib/synthlc/flow.ml: Designs Hdl Ift Isa List Mc Mupath Types Unix
