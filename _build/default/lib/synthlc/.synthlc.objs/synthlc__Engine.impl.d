lib/synthlc/engine.ml: Designs Flow Format Isa List Mc Mupath Sim Types Unix
