lib/synthlc/engine.mli: Designs Format Isa Mc Mupath Sim Types
