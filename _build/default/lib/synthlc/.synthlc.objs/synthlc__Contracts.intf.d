lib/synthlc/contracts.mli: Format Isa Types
