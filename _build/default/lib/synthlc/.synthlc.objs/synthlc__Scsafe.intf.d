lib/synthlc/scsafe.mli: Bitvec Designs Isa
