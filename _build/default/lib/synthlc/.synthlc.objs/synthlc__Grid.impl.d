lib/synthlc/grid.ml: Engine Format Isa List Mupath Printf String Types
