lib/synthlc/types.mli: Format Isa
