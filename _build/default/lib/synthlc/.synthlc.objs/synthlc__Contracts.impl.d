lib/synthlc/contracts.ml: Format Isa List String Types
