lib/synthlc/grid.mli: Engine Format Isa Types
