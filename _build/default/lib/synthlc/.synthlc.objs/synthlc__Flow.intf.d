lib/synthlc/flow.mli: Designs Isa Mc Sim Types
