lib/synthlc/types.ml: Format Isa List Printf String
