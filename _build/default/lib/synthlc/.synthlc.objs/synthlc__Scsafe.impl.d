lib/synthlc/scsafe.ml: Array Bitvec Designs Hdl Isa List Option Random Sim
