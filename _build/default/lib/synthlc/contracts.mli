(** Deriving the six leakage contracts of Table I from µPATHs and leakage
    signatures (§IV-D).

    Each derivation consumes the signature components named in the paper's
    Table I columns: P (transponder), src (decision source), typed
    transmitters T^N / T^D / T^S, unsafe arguments, and µPATH-level facts
    such as revisit-count variability. *)

type unsafe_operand = { uo_transmitter : Isa.opcode; uo_operand : Types.operand }

type ct_contract = { unsafe : unsafe_operand list }
(** The canonical constant-time contract (§II-B): transmitters and their
    unsafe operands — consumed by CT/SCT programming defenses and by
    SpecShield/ConTExt. *)

type mi6_contract = {
  mi6_dynamic_channels : Types.signature list;
      (** Contention (stateless) channels needing data-independent
          scheduling. *)
  mi6_static_channels : Types.signature list;
      (** Stateful channels needing purge/partitioning. *)
}

type oisa_contract = {
  oisa_input_dependent_units : (Isa.opcode * string * int list) list;
      (** Transmitter, functional-unit PL, possible occupancy counts. *)
  oisa_ct : ct_contract;
}

type stt_contract = {
  stt_explicit_channels : (Isa.opcode * string) list;
  stt_implicit_channels : Types.signature list;
  stt_implicit_branches : Isa.opcode list;
  stt_prediction_based : Types.signature list;
  stt_resolution_based : Types.signature list;
}
(** Shared by STT, SDO and SPT (§II-B). *)

type sdo_contract = {
  sdo_variants : (Isa.opcode * string * int list) list;
      (** Data-oblivious variant groups per explicit-channel transmitter. *)
  sdo_stt : stt_contract;
}

type dolma_contract = {
  dolma_variable_time : Isa.opcode list;
  dolma_dynamic_channels : Types.signature list;
  dolma_inducive : (Isa.opcode * string) list;
      (** Inducive micro-op with its prediction-resolution-point PL. *)
  dolma_resolvent : Isa.opcode list;
  dolma_persistent_modifiers : Isa.opcode list;
}

type spt_contract = { spt_stt : stt_contract; spt_ct : ct_contract }

type bundle = {
  ct : ct_contract;
  mi6 : mi6_contract;
  oisa : oisa_contract;
  stt : stt_contract;
  sdo : sdo_contract;
  dolma : dolma_contract;
  spt : spt_contract;
}

val ct_of_signatures : Types.signature list -> ct_contract
val mi6_of_signatures : Types.signature list -> mi6_contract

val oisa_of :
  signatures:Types.signature list ->
  revisit_counts:(Isa.opcode * (string * int list) list) list ->
  oisa_contract

val stt_of_signatures : Types.signature list -> stt_contract

val sdo_of :
  signatures:Types.signature list ->
  revisit_counts:(Isa.opcode * (string * int list) list) list ->
  sdo_contract

val dolma_of :
  signatures:Types.signature list ->
  revisit_counts:(Isa.opcode * (string * int list) list) list ->
  store_opcodes:Isa.opcode list ->
  dolma_contract

val spt_of_signatures : Types.signature list -> spt_contract

val derive :
  signatures:Types.signature list ->
  revisit_counts:(Isa.opcode * (string * int list) list) list ->
  store_opcodes:Isa.opcode list ->
  bundle

val pp_ct : Format.formatter -> ct_contract -> unit
val pp_bundle : Format.formatter -> bundle -> unit
