(** Fig. 8 rendering: the leakage-signature grid.

    Columns are leakage signatures (one per transponder × decision source,
    annotated with the output-range size); rows are typed transmitter
    operands; cells distinguish primary leakage, secondary leakage
    (stall-in-place back-pressure, §VII-A1), and none. *)

type cell = No_leak | Primary | Secondary

type column = {
  col_transponder : Isa.opcode;
  col_source : string;
  col_range : int;  (** Number of distinct decision destinations. *)
}

type row = {
  row_transmitter : Isa.opcode;
  row_kind : Types.transmitter_kind;
  row_operand : Types.operand;
}

type t = {
  columns : column list;
  rows : row list;
  cells : (row * column * cell) list;
}

val build : Engine.transponder_report list -> t
val cell_at : t -> row -> column -> cell
val pp : Format.formatter -> t -> unit

val count_transponders : Engine.transponder_report list -> int
(** Instructions exhibiting µPATH variability or carrying signatures. *)

val count_transmitters : t -> int
val count_signatures : t -> int
