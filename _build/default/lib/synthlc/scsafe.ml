(* Hardware side-channel safety (Definition V.1) as an executable check.

   The receiver R_uPATH observes, each cycle, which performing locations are
   occupied by in-flight instructions.  SC-Safe(M, R) requires that for any
   program whose public inputs agree, the observation traces agree.  This
   module searches for violations by running low-equivalent initial-state
   pairs through the simulator and diffing observations — the concrete
   counterpart of the paper's Eq. V.1, used by examples and tests to
   demonstrate that SynthLC-flagged channels are real. *)

module Meta = Designs.Meta

(* One cycle's observation: the occupied µFSM states (performing locations),
   without data values — the R_uPATH observer model (§V-C2). *)
type observation = string list list

type violation = {
  vi_secret_reg : int; (* index into the ARF list *)
  vi_low : Bitvec.t;
  vi_high : Bitvec.t;
  vi_diverge_cycle : int;
}

let observe ~(meta : Meta.t) ~(program : Isa.t list)
    ~(arf_values : Bitvec.t array) ~(cycles : int) ~seed () =
  let nl = meta.Meta.nl in
  let sim = Sim.create ~seed nl in
  (* Pin architectural registers; memory keeps its seeded contents (it is
     identical across paired runs because the seed is shared). *)
  List.iteri
    (fun i r -> if i < Array.length arf_values then Sim.poke_reg sim r arf_values.(i))
    meta.Meta.arf;
  let prog = Array.of_list program in
  let fetch_pc =
    match Hdl.Netlist.find_named nl "fetch_pc" with
    | Some s -> s
    | None -> failwith "Scsafe.observe: design lacks fetch_pc"
  in
  let in0 = Option.get (Hdl.Netlist.find_named nl Designs.Core.sig_if_instr_in0) in
  let in1 = Option.get (Hdl.Netlist.find_named nl Designs.Core.sig_if_instr_in1) in
  let instr_at pc =
    if pc < Array.length prog then Isa.encode prog.(pc) else Isa.encode Isa.nop
  in
  let obs = ref [] in
  for _ = 0 to cycles - 1 do
    Sim.eval sim;
    let pc = Bitvec.to_int (Sim.peek sim fetch_pc) in
    Sim.poke sim in0 (instr_at pc);
    Sim.poke sim in1 (instr_at (pc + 1));
    Sim.eval sim;
    let occupied =
      List.concat_map
        (fun (u : Meta.ufsm) ->
          let state =
            match u.Meta.vars with
            | [] -> Bitvec.zero 1
            | v0 :: rest ->
              List.fold_left
                (fun acc v -> Bitvec.concat acc (Sim.peek sim v))
                (Sim.peek sim v0) rest
          in
          if List.exists (Bitvec.equal state) u.Meta.idle_states then []
          else [ Meta.state_value meta u state ])
        meta.Meta.ufsms
    in
    obs := occupied :: !obs;
    Sim.step sim
  done;
  List.rev !obs

(* Search for an Eq. V.1 violation: vary one secret register between two
   values, keep everything else (including microarchitectural state, via the
   shared seed) identical, and diff the observation traces. *)
let find_violation ?(trials = 32) ?(cycles = 48) ~(design : unit -> Meta.t)
    ~(program : Isa.t list) ~(secret_reg : int) () =
  let rng = Random.State.make [| 0x5afe1 |] in
  let rec go trial =
    if trial >= trials then None
    else begin
      let seed = Random.State.int rng 0x3FFFFFF in
      let base = Array.init 3 (fun _ -> Bitvec.random rng Isa.xlen) in
      let low = base.(secret_reg) in
      let high = Bitvec.random rng Isa.xlen in
      let with_secret v =
        let a = Array.copy base in
        a.(secret_reg) <- v;
        a
      in
      let o1 =
        observe ~meta:(design ()) ~program ~arf_values:(with_secret low) ~cycles
          ~seed ()
      in
      let o2 =
        observe ~meta:(design ()) ~program ~arf_values:(with_secret high) ~cycles
          ~seed ()
      in
      let rec diff c a b =
        match (a, b) with
        | [], [] -> None
        | x :: xs, y :: ys ->
          if List.sort compare x <> List.sort compare y then Some c
          else diff (c + 1) xs ys
        | _ -> Some c
      in
      match diff 0 o1 o2 with
      | Some c ->
        Some { vi_secret_reg = secret_reg; vi_low = low; vi_high = high; vi_diverge_cycle = c }
      | None -> go (trial + 1)
    end
  in
  go 0
