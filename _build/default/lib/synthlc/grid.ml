(* Fig. 8 rendering: the leakage-signature grid.

   Coarse columns are transponder classes; fine columns are that class's
   leakage signatures (one per decision source, annotated with the output
   range size).  Rows are transmitter (class, operand) pairs, split into
   intrinsic (N) and dynamic (D) sub-rows.  Cells mark primary leakage,
   secondary leakage (stall-in-place back-pressure), or no leakage. *)

open Types

type cell = No_leak | Primary | Secondary

type column = {
  col_transponder : Isa.opcode;
  col_source : string;
  col_range : int; (* number of distinct decision destinations *)
}

type row = { row_transmitter : Isa.opcode; row_kind : transmitter_kind; row_operand : operand }

type t = {
  columns : column list;
  rows : row list;
  cells : (row * column * cell) list;
}

let build (reports : Engine.transponder_report list) =
  let columns =
    List.concat_map
      (fun (r : Engine.transponder_report) ->
        List.map
          (fun (s : signature) ->
            {
              col_transponder = s.transponder;
              col_source = s.source;
              col_range = List.length s.destinations;
            })
          r.signatures)
      reports
  in
  let rows =
    List.sort_uniq compare
      (List.concat_map
         (fun (r : Engine.transponder_report) ->
           List.map
             (fun (d : tagged_decision) ->
               {
                 row_transmitter = d.input.transmitter;
                 row_kind = d.input.kind;
                 row_operand = d.input.unsafe_operand;
               })
             r.tagged)
         reports)
  in
  let cells =
    List.concat_map
      (fun row ->
        List.filter_map
          (fun col ->
            (* A cell is set when some tagged decision of the column's
               transponder at the column's source carries the row's typed
               input. *)
            let matching =
              List.concat_map
                (fun (r : Engine.transponder_report) ->
                  if r.instr.Isa.op <> col.col_transponder then []
                  else
                    List.filter
                      (fun (d : tagged_decision) ->
                        d.src = col.col_source
                        && d.input.transmitter = row.row_transmitter
                        && d.input.kind = row.row_kind
                        && d.input.unsafe_operand = row.row_operand)
                      r.tagged)
                reports
            in
            match matching with
            | [] -> None
            | ds ->
              let cell =
                if List.for_all Engine.is_secondary ds then Secondary else Primary
              in
              Some (row, col, cell))
          columns)
      rows
  in
  { columns; rows; cells }

let cell_at t row col =
  match
    List.find_opt (fun (r, c, _) -> r = row && c = col) t.cells
  with
  | Some (_, _, c) -> c
  | None -> No_leak

let pp fmt t =
  let col_name c =
    Printf.sprintf "%s_%s(%d)"
      (String.uppercase_ascii (Isa.mnemonic c.col_transponder))
      c.col_source c.col_range
  in
  let row_name r =
    Printf.sprintf "%s^%s.%s"
      (String.uppercase_ascii (Isa.mnemonic r.row_transmitter))
      (kind_short r.row_kind) (operand_name r.row_operand)
  in
  let width = 18 in
  Format.fprintf fmt "@[<v>%-*s" width "";
  List.iter (fun c -> Format.fprintf fmt " %-*s" width (col_name c)) t.columns;
  Format.fprintf fmt "@,";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-*s" width (row_name r);
      List.iter
        (fun c ->
          let mark =
            match cell_at t r c with
            | No_leak -> "."
            | Primary -> "P"
            | Secondary -> "s"
          in
          Format.fprintf fmt " %-*s" width mark)
        t.columns;
      Format.fprintf fmt "@,")
    t.rows;
  Format.fprintf fmt "@]"

let count_transponders (reports : Engine.transponder_report list) =
  List.length (List.filter (fun (r : Engine.transponder_report) -> r.signatures <> [] || List.length r.synth.Mupath.Synth.paths > 1) reports)

let count_transmitters t = List.length (List.sort_uniq compare (List.map (fun r -> r.row_transmitter) t.rows))
let count_signatures t = List.length t.columns
