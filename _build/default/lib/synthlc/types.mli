(** Shared vocabulary for leakage-contract synthesis (§IV). *)

(** Transmitter typing per Fig. 7: intrinsic (the transponder itself),
    dynamic (a concurrently in-flight older/younger instruction), or static
    (materialized and dematerialized before the transponder reached the
    decision source). *)
type transmitter_kind = Intrinsic | Dynamic_older | Dynamic_younger | Static

val kind_name : transmitter_kind -> string

val kind_short : transmitter_kind -> string
(** The paper's superscript notation: N, D (older/younger), S. *)

type operand = Rs1 | Rs2

val operand_name : operand -> string

type explicit_input = {
  transmitter : Isa.opcode;
  unsafe_operand : operand;
  kind : transmitter_kind;
}
(** A typed explicit input to a leakage function (§IV-C). *)

type tagged_decision = {
  src : string;  (** Decision-source PL label. *)
  dst : string list;  (** Destination PL set (sorted labels). *)
  input : explicit_input;
}
(** A decision shown (by a reachable taint witness) to depend on the
    transmitter's operand (§V-C1). *)

type signature = {
  transponder : Isa.opcode;
  source : string;
  inputs : explicit_input list;
  destinations : string list list;
}
(** A leakage signature (§IV-D): transponder and decision source (the
    function name), typed transmitters with unsafe operands (explicit
    inputs), decision destinations (return values). *)

val signature_name : signature -> string
(** E.g. ["LD_issue"]. *)

val pp_explicit_input : Format.formatter -> explicit_input -> unit
val pp_signature : Format.formatter -> signature -> unit
