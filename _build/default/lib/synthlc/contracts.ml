(* Deriving the six leakage contracts of Table I from µPATHs and leakage
   signatures (§IV-D).

   Each derivation below names the signature components it consumes, in the
   same vocabulary as the paper's Table I columns: P (transponder), src
   (decision source), T^N / T^D / T^S (typed transmitters), a (arguments /
   unsafe operands), and µ (µPATH-level facts such as revisit-count
   variability). *)

open Types

type unsafe_operand = { uo_transmitter : Isa.opcode; uo_operand : operand }

(* The canonical constant-time contract (§II-B): the design's transmitters
   and their unsafe operands — consumed by CT/SCT programming defenses and
   by SpecShield/ConTExt. *)
type ct_contract = { unsafe : unsafe_operand list }

let input_kind_is ks (i : explicit_input) = List.mem i.kind ks

let ct_of_signatures signatures =
  let unsafe =
    List.concat_map
      (fun s ->
        List.map
          (fun (i : explicit_input) ->
            { uo_transmitter = i.transmitter; uo_operand = i.unsafe_operand })
          s.inputs)
      signatures
  in
  { unsafe = List.sort_uniq compare unsafe }

(* MI6: dynamic (contention/stateless) channels needing data-independent
   scheduling, and static (stateful) channels needing purge/partitioning. *)
type mi6_contract = {
  mi6_dynamic_channels : signature list;
  mi6_static_channels : signature list;
}

let mi6_of_signatures signatures =
  {
    mi6_dynamic_channels =
      List.filter
        (fun s ->
          List.exists
            (input_kind_is [ Intrinsic; Dynamic_older; Dynamic_younger ])
            s.inputs)
        signatures;
    mi6_static_channels =
      List.filter
        (fun s -> List.exists (input_kind_is [ Static ]) s.inputs)
        signatures;
  }

(* OISA: arithmetic units a transmitter may occupy for an operand-dependent
   number of cycles — derived from intrinsic-transmitter signatures plus
   µPATH revisit-count variability at functional-unit PLs. *)
type oisa_contract = {
  oisa_input_dependent_units : (Isa.opcode * string * int list) list;
      (* transmitter, FU performing location, possible occupancy counts *)
  oisa_ct : ct_contract;
}

let oisa_of ~signatures ~revisit_counts =
  let intrinsic_txs =
    List.sort_uniq compare
      (List.concat_map
         (fun s ->
           List.filter_map
             (fun (i : explicit_input) ->
               if i.kind = Intrinsic then Some s.transponder else None)
             s.inputs)
         signatures)
  in
  let units =
    List.concat_map
      (fun (op, counts) ->
        List.filter_map
          (fun (pl, ns) -> if List.length ns > 1 then Some (op, pl, ns) else None)
          counts)
      (List.filter (fun (op, _) -> List.mem op intrinsic_txs) revisit_counts)
  in
  { oisa_input_dependent_units = units; oisa_ct = ct_of_signatures signatures }

(* STT (shared with SDO and SPT): explicit channels, implicit channels,
   implicit branches, prediction-based and resolution-based channels. *)
type stt_contract = {
  stt_explicit_channels : (Isa.opcode * string) list;
      (* intrinsic transmitter and the source PL of its own variability *)
  stt_implicit_channels : signature list;
  stt_implicit_branches : Isa.opcode list;
  stt_prediction_based : signature list;
      (* variability due to (static) predictor state *)
  stt_resolution_based : signature list;
      (* variability due to in-flight (dynamic) transmitters *)
}

let stt_of_signatures signatures =
  let explicit_channels =
    List.filter_map
      (fun s ->
        if
          List.exists
            (fun (i : explicit_input) ->
              i.kind = Intrinsic && i.transmitter = s.transponder)
            s.inputs
        then Some (s.transponder, s.source)
        else None)
      signatures
  in
  let has_non_intrinsic s =
    List.exists (input_kind_is [ Dynamic_older; Dynamic_younger; Static ]) s.inputs
  in
  let implicit = List.filter has_non_intrinsic signatures in
  {
    stt_explicit_channels = List.sort_uniq compare explicit_channels;
    stt_implicit_channels = implicit;
    stt_implicit_branches =
      List.sort_uniq compare (List.map (fun s -> s.transponder) implicit);
    stt_prediction_based =
      List.filter (fun s -> List.exists (input_kind_is [ Static ]) s.inputs) implicit;
    stt_resolution_based =
      List.filter
        (fun s ->
          List.exists (input_kind_is [ Dynamic_older; Dynamic_younger ]) s.inputs)
        implicit;
  }

(* SDO: data-oblivious variants — per explicit-channel transmitter, the set
   of realizable execution-path variants (here: FU occupancy classes). *)
type sdo_contract = {
  sdo_variants : (Isa.opcode * string * int list) list;
  sdo_stt : stt_contract;
}

let sdo_of ~signatures ~revisit_counts =
  let stt = stt_of_signatures signatures in
  let variants =
    List.concat_map
      (fun (op, counts) ->
        if List.mem_assoc op (stt.stt_explicit_channels) then
          List.filter_map
            (fun (pl, ns) -> if List.length ns > 1 then Some (op, pl, ns) else None)
            counts
        else [])
      revisit_counts
  in
  { sdo_variants = variants; sdo_stt = stt }

(* Dolma: variable-time micro-ops, contention-based dynamic channels,
   inducive/resolvent micro-ops with resolution points, and persistent-state
   modifying micro-ops. *)
type dolma_contract = {
  dolma_variable_time : Isa.opcode list;
  dolma_dynamic_channels : signature list;
  dolma_inducive : (Isa.opcode * string) list;
      (* inducive micro-op and its resolution-point PL *)
  dolma_resolvent : Isa.opcode list;
  dolma_persistent_modifiers : Isa.opcode list;
}

let dolma_of ~signatures ~revisit_counts ~store_opcodes =
  let variable_time =
    List.filter_map
      (fun (op, counts) ->
        if List.exists (fun (_, ns) -> List.length ns > 1) counts then Some op
        else None)
      revisit_counts
  in
  let dyn =
    List.filter
      (fun s ->
        List.exists (input_kind_is [ Dynamic_older; Dynamic_younger ]) s.inputs)
      signatures
  in
  {
    dolma_variable_time = List.sort_uniq compare variable_time;
    dolma_dynamic_channels = dyn;
    dolma_inducive =
      List.sort_uniq compare (List.map (fun s -> (s.transponder, s.source)) dyn);
    dolma_resolvent =
      List.sort_uniq compare
        (List.concat_map
           (fun s ->
             List.filter_map
               (fun (i : explicit_input) ->
                 match i.kind with
                 | Dynamic_older | Dynamic_younger -> Some i.transmitter
                 | _ -> None)
               s.inputs)
           dyn);
    dolma_persistent_modifiers = store_opcodes;
  }

(* SPT shares STT's fine-grained contract and additionally needs the CT
   contract for its declassification policy. *)
type spt_contract = { spt_stt : stt_contract; spt_ct : ct_contract }

let spt_of_signatures signatures =
  { spt_stt = stt_of_signatures signatures; spt_ct = ct_of_signatures signatures }

(* A bundle of all six, as synthesized from one design's signatures. *)
type bundle = {
  ct : ct_contract;
  mi6 : mi6_contract;
  oisa : oisa_contract;
  stt : stt_contract;
  sdo : sdo_contract;
  dolma : dolma_contract;
  spt : spt_contract;
}

let derive ~signatures ~revisit_counts ~store_opcodes =
  {
    ct = ct_of_signatures signatures;
    mi6 = mi6_of_signatures signatures;
    oisa = oisa_of ~signatures ~revisit_counts;
    stt = stt_of_signatures signatures;
    sdo = sdo_of ~signatures ~revisit_counts;
    dolma = dolma_of ~signatures ~revisit_counts ~store_opcodes;
    spt = spt_of_signatures signatures;
  }

let pp_ct fmt c =
  Format.fprintf fmt "@[<v2>CT contract (transmitters and unsafe operands):@,";
  List.iter
    (fun u ->
      Format.fprintf fmt "%s.%s@,"
        (String.uppercase_ascii (Isa.mnemonic u.uo_transmitter))
        (operand_name u.uo_operand))
    c.unsafe;
  Format.fprintf fmt "@]"

let pp_bundle fmt b =
  Format.fprintf fmt "@[<v>%a@," pp_ct b.ct;
  Format.fprintf fmt "MI6: %d dynamic channels, %d static channels@,"
    (List.length b.mi6.mi6_dynamic_channels)
    (List.length b.mi6.mi6_static_channels);
  Format.fprintf fmt "OISA: %d input-dependent arithmetic units@,"
    (List.length b.oisa.oisa_input_dependent_units);
  List.iter
    (fun (op, pl, ns) ->
      Format.fprintf fmt "  %s occupies %s for %s cycles@,"
        (String.uppercase_ascii (Isa.mnemonic op))
        pl
        (String.concat "/" (List.map string_of_int ns)))
    b.oisa.oisa_input_dependent_units;
  Format.fprintf fmt
    "STT/SDO/SPT: %d explicit channels, %d implicit channels, %d implicit branches, %d resolution-based@,"
    (List.length b.stt.stt_explicit_channels)
    (List.length b.stt.stt_implicit_channels)
    (List.length b.stt.stt_implicit_branches)
    (List.length b.stt.stt_resolution_based);
  Format.fprintf fmt "SDO: %d data-oblivious variant groups@,"
    (List.length b.sdo.sdo_variants);
  Format.fprintf fmt
    "Dolma: %d variable-time ops, %d inducive points, %d resolvent ops, %d persistent-state modifiers@]"
    (List.length b.dolma.dolma_variable_time)
    (List.length b.dolma.dolma_inducive)
    (List.length b.dolma.dolma_resolvent)
    (List.length b.dolma.dolma_persistent_modifiers)
