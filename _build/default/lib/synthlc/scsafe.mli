(** Hardware side-channel safety (Definition V.1) as an executable check.

    The receiver R_µPATH observes, each cycle, which performing locations
    are occupied.  SC-Safe(M, R) requires any two executions agreeing on
    public inputs to produce identical observation traces; this module
    searches for violations by paired simulation of low-equivalent initial
    states — the concrete counterpart of Eq. V.1, used by examples and
    tests to confirm that SynthLC-flagged channels are real. *)

type observation = string list list
(** Per cycle: labels of the occupied performing locations. *)

type violation = {
  vi_secret_reg : int;  (** Index into the design's ARF list. *)
  vi_low : Bitvec.t;
  vi_high : Bitvec.t;
  vi_diverge_cycle : int;
}

val observe :
  meta:Designs.Meta.t ->
  program:Isa.t list ->
  arf_values:Bitvec.t array ->
  cycles:int ->
  seed:int ->
  unit ->
  observation
(** Run [program] on a core with the given architectural register values
    (microarchitectural state is seeded identically across paired runs). *)

val find_violation :
  ?trials:int ->
  ?cycles:int ->
  design:(unit -> Designs.Meta.t) ->
  program:Isa.t list ->
  secret_reg:int ->
  unit ->
  violation option
(** Vary one secret register between random values, hold everything else
    fixed, and diff the observation traces.  [None] means no violation was
    found within the trial budget (not a proof of safety). *)
