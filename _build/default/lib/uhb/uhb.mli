(** The cycle-accurate µHB (microarchitectural happens-before) formalism of
    §III: performing locations, µPATHs with consecutive/non-consecutive
    revisit structure, happens-before edges, and decisions (§IV-B). *)

(** Performing locations (§III-C): a PL is a ⟨µFSM, state⟩ pair — a valid,
    non-idle valuation of one µFSM's state variables.  An instruction visits
    a PL in a cycle when the µFSM's IIR holds the instruction's IID and its
    state variables hold [state]. *)
module Pl : sig
  type t = { ufsm : string; label : string; state : Bitvec.t }
  (** [ufsm] names the owning µFSM; [label] is the human-readable state name
      used as the µHB row label (e.g. ["issue"], ["mulU"]); [state] is the
      concrete valuation of the µFSM's state variables. *)

  val make : ufsm:string -> label:string -> state:Bitvec.t -> t
  val name : t -> string
  (** ["ufsm.label"] — unique within a design. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
end

(** How often a µPATH may revisit one PL (§III-B, §V-B4). *)
module Revisit : sig
  type t =
    | Once  (** Visited exactly once. *)
    | Consecutive
        (** May be occupied for a run of consecutive cycles — rendered as
            Row(1)…Row(l) with a dashed edge. *)
    | Non_consecutive  (** May be re-entered after leaving. *)
    | Both

  val pp : Format.formatter -> t -> unit
  val equal : t -> t -> bool
end

(** A synthesized µPATH: a reachable PL set with revisit annotations and
    happens-before edges (a partial order on first visits). *)
module Path : sig
  type t = {
    instr : string;  (** IUV mnemonic. *)
    pls : (Pl.t * Revisit.t) list;
    edges : (Pl.t * Pl.t) list;
        (** One-cycle happens-before edges between (first visits to) PLs. *)
  }

  val make : instr:string -> pls:(Pl.t * Revisit.t) list -> edges:(Pl.t * Pl.t) list -> t
  val pl_set : t -> Pl.Set.t
  val revisit_of : t -> Pl.t -> Revisit.t option

  val check_acyclic : t -> bool
  (** Happens-before must be a partial order. *)

  val topological : t -> Pl.t list
  (** PLs in a topological order of the HB edges.  Raises [Failure] on a
      cyclic path. *)

  val longest_chain : t -> src:Pl.t -> dst:Pl.t -> int option
  (** Length (in edges) of the longest HB chain from [src] to [dst] — the
      §III-B latency measure, ignoring folded consecutive revisits. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** A concrete, cycle-accurate execution of an instruction: which PLs it
    occupied in which cycles (one witness trace).  Used for Fig. 1/2/4-style
    rendering and for latency measurements. *)
module Concrete : sig
  type t = { instr : string; visits : (Pl.t * int) list }
  (** [(pl, cycle)] pairs, cycle-sorted. *)

  val make : instr:string -> visits:(Pl.t * int) list -> t
  val latency : t -> int
  (** Last visit cycle minus first visit cycle, plus one. *)

  val cycles_in : t -> Pl.t -> int list
  val pp : Format.formatter -> t -> unit
end

(** Decisions (§IV-B): a (src, dst) pair pinpointing a divergence between a
    pair of an instruction's µPATHs. *)
module Decision : sig
  type t = { src : Pl.t; dsts : Pl.Set.t }

  val make : src:Pl.t -> dsts:Pl.t list -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit

  module Set : Set.S with type elt = t
end

(** DOT rendering of µPATHs for inspection (the repository's analogue of the
    paper's µHB graph figures). *)
module Dot : sig
  val of_path : Path.t -> string
  val of_concrete : Concrete.t -> string
end
