module Pl = struct
  module T = struct
    type t = { ufsm : string; label : string; state : Bitvec.t }

    let compare a b =
      match String.compare a.ufsm b.ufsm with
      | 0 -> (
        match String.compare a.label b.label with
        | 0 -> Bitvec.compare a.state b.state
        | c -> c)
      | c -> c
  end

  include T

  let make ~ufsm ~label ~state = { ufsm; label; state }
  let name t = t.ufsm ^ "." ^ t.label
  let equal a b = compare a b = 0
  let pp fmt t = Format.pp_print_string fmt (name t)

  module Set = Set.Make (T)
  module Map = Map.Make (T)
end

module Revisit = struct
  type t = Once | Consecutive | Non_consecutive | Both

  let pp fmt = function
    | Once -> Format.pp_print_string fmt "once"
    | Consecutive -> Format.pp_print_string fmt "consecutive"
    | Non_consecutive -> Format.pp_print_string fmt "non-consecutive"
    | Both -> Format.pp_print_string fmt "both"

  let equal (a : t) b = a = b
end

module Path = struct
  type t = {
    instr : string;
    pls : (Pl.t * Revisit.t) list;
    edges : (Pl.t * Pl.t) list;
  }

  let make ~instr ~pls ~edges =
    let set = Pl.Set.of_list (List.map fst pls) in
    List.iter
      (fun (a, b) ->
        if not (Pl.Set.mem a set && Pl.Set.mem b set) then
          invalid_arg "Uhb.Path.make: edge endpoint not in PL set")
      edges;
    { instr; pls; edges }

  let pl_set t = Pl.Set.of_list (List.map fst t.pls)

  let revisit_of t pl =
    List.find_map (fun (p, r) -> if Pl.equal p pl then Some r else None) t.pls

  let successors t pl =
    List.filter_map (fun (a, b) -> if Pl.equal a pl then Some b else None) t.edges

  let topological t =
    let nodes = List.map fst t.pls in
    let temp = Hashtbl.create 16 and perm = Hashtbl.create 16 in
    let out = ref [] in
    let rec visit pl =
      let key = Pl.name pl in
      if Hashtbl.mem temp key then failwith "Uhb.Path.topological: cyclic";
      if not (Hashtbl.mem perm key) then begin
        Hashtbl.replace temp key ();
        List.iter visit (successors t pl);
        Hashtbl.remove temp key;
        Hashtbl.replace perm key ();
        out := pl :: !out
      end
    in
    List.iter visit nodes;
    !out

  let check_acyclic t =
    match topological t with _ -> true | exception Failure _ -> false

  let longest_chain t ~src ~dst =
    (* DFS with memoization over the acyclic HB relation. *)
    let memo = Hashtbl.create 16 in
    let rec go pl =
      if Pl.equal pl dst then Some 0
      else
        let key = Pl.name pl in
        match Hashtbl.find_opt memo key with
        | Some r -> r
        | None ->
          let best =
            List.fold_left
              (fun acc succ ->
                match go succ with
                | Some d -> Some (max (Option.value acc ~default:0) (d + 1))
                | None -> acc)
              None (successors t pl)
          in
          Hashtbl.replace memo key best;
          best
    in
    if not (check_acyclic t) then None else go src

  let equal a b =
    String.equal a.instr b.instr
    && List.length a.pls = List.length b.pls
    && List.for_all
         (fun (pl, r) ->
           match revisit_of b pl with
           | Some r' -> Revisit.equal r r'
           | None -> false)
         a.pls
    && Pl.Set.equal (pl_set a) (pl_set b)
    &&
    let norm es =
      List.sort_uniq
        (fun (a1, b1) (a2, b2) ->
          match Pl.compare a1 a2 with 0 -> Pl.compare b1 b2 | c -> c)
        es
    in
    norm a.edges = norm b.edges

  let pp fmt t =
    Format.fprintf fmt "@[<v>uPATH for %s:@," t.instr;
    List.iter
      (fun (pl, r) -> Format.fprintf fmt "  %a [%a]@," Pl.pp pl Revisit.pp r)
      t.pls;
    List.iter (fun (a, b) -> Format.fprintf fmt "  %a -> %a@," Pl.pp a Pl.pp b) t.edges;
    Format.fprintf fmt "@]"
end

module Concrete = struct
  type t = { instr : string; visits : (Pl.t * int) list }

  let make ~instr ~visits =
    { instr; visits = List.sort (fun (_, c1) (_, c2) -> Int.compare c1 c2) visits }

  let latency t =
    match t.visits with
    | [] -> 0
    | (_, c0) :: _ ->
      let last = List.fold_left (fun acc (_, c) -> max acc c) c0 t.visits in
      last - c0 + 1

  let cycles_in t pl =
    List.filter_map (fun (p, c) -> if Pl.equal p pl then Some c else None) t.visits

  let pp fmt t =
    Format.fprintf fmt "@[<v>concrete uPATH for %s:@," t.instr;
    List.iter (fun (pl, c) -> Format.fprintf fmt "  cycle %2d: %a@," c Pl.pp pl) t.visits;
    Format.fprintf fmt "@]"
end

module Decision = struct
  module T = struct
    type t = { src : Pl.t; dsts : Pl.Set.t }

    let compare a b =
      match Pl.compare a.src b.src with
      | 0 -> Pl.Set.compare a.dsts b.dsts
      | c -> c
  end

  include T

  let make ~src ~dsts = { src; dsts = Pl.Set.of_list dsts }
  let equal a b = compare a b = 0

  let pp fmt t =
    Format.fprintf fmt "(%a, {%s})" Pl.pp t.src
      (String.concat ", " (List.map Pl.name (Pl.Set.elements t.dsts)))

  module Set = Set.Make (T)
end

module Dot = struct
  let escape s = String.map (fun c -> if c = '.' then '_' else c) s

  let of_path (p : Path.t) =
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  rankdir=TB;\n" p.Path.instr);
    List.iter
      (fun (pl, r) ->
        let shape =
          match r with
          | Revisit.Once -> "ellipse"
          | Revisit.Consecutive -> "box"
          | Revisit.Non_consecutive | Revisit.Both -> "doubleoctagon"
        in
        Buffer.add_string buf
          (Printf.sprintf "  %s [label=\"%s\",shape=%s];\n" (escape (Pl.name pl))
             (Pl.name pl) shape))
      p.Path.pls;
    List.iter
      (fun (a, b) ->
        Buffer.add_string buf
          (Printf.sprintf "  %s -> %s;\n" (escape (Pl.name a)) (escape (Pl.name b))))
      p.Path.edges;
    Buffer.add_string buf "}\n";
    Buffer.contents buf

  let of_concrete (c : Concrete.t) =
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  rankdir=LR;\n" c.Concrete.instr);
    List.iteri
      (fun i (pl, cyc) ->
        Buffer.add_string buf
          (Printf.sprintf "  n%d [label=\"%s@%d\"];\n" i (Pl.name pl) cyc))
      c.Concrete.visits;
    (* Chain nodes in cycle order to depict one-cycle happens-before. *)
    List.iteri
      (fun i _ ->
        if i > 0 then Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" (i - 1) i))
      c.Concrete.visits;
    Buffer.add_string buf "}\n";
    Buffer.contents buf
end
