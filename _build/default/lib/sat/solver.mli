(** A CDCL SAT solver.

    Implements conflict-driven clause learning with two-watched literals,
    first-UIP learning, VSIDS-style activity ordering, Luby restarts, and
    phase saving.  Supports incremental solving under assumptions and a
    conflict budget that yields {!Unknown} when exhausted — the mechanism
    the model checker uses to produce the paper's [undetermined] outcomes. *)

type t

type lit = int
(** A literal: variable [v] (0-based) appears positively as [2*v] and
    negatively as [2*v+1]. *)

val pos : int -> lit
(** [pos v] is the positive literal of variable [v]. *)

val neg_of_var : int -> lit
(** [neg_of_var v] is the negative literal of variable [v]. *)

val negate : lit -> lit
val var_of : lit -> int
val is_pos : lit -> bool

type result =
  | Sat
  | Unsat
  | Unknown (** Conflict budget exhausted. *)

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its index. *)

val nvars : t -> int

val add_clause : t -> lit list -> unit
(** Add a clause.  Adding the empty clause (or a clause that simplifies to
    it) makes the instance permanently unsatisfiable. *)

val solve : ?assumptions:lit list -> ?max_conflicts:int -> t -> result
(** Solve under the given assumptions.  [max_conflicts] bounds the search;
    when exceeded the result is [Unknown].  The solver can be reused after
    any outcome; learned clauses persist. *)

val value : t -> int -> bool
(** [value s v] is the value of variable [v] in the most recent [Sat] model.
    Variables never touched by the search default to [false]. *)

val lit_value : t -> lit -> bool

val num_conflicts : t -> int
(** Total conflicts across all [solve] calls — used for benchmarking. *)

val num_decisions : t -> int
val num_propagations : t -> int
