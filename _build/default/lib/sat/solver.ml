type lit = int

let pos v = 2 * v
let neg_of_var v = (2 * v) + 1
let negate l = l lxor 1
let var_of l = l lsr 1
let is_pos l = l land 1 = 0

type result = Sat | Unsat | Unknown

(* Growable int-array vector used for watch lists and the clause arena. *)
module Vec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 4 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let data = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let len v = v.len
  let shrink v n = v.len <- n
end

type clause = { lits : int array; mutable activity : float; learnt : bool }

type t = {
  mutable clauses : clause array; (* arena; index = clause id *)
  mutable nclauses : int;
  mutable watches : Vec.t array; (* per literal *)
  mutable assigns : int array; (* per var: 0 undef, 1 true, 2 false *)
  mutable level : int array;
  mutable reason : int array; (* clause id or -1 *)
  mutable phase : bool array;
  mutable activity : float array;
  mutable heap : int array; (* binary max-heap of vars by activity *)
  mutable heap_pos : int array; (* -1 when not in heap *)
  mutable heap_len : int;
  trail : Vec.t;
  trail_lim : Vec.t;
  mutable qhead : int;
  mutable nvars : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool; (* false once the empty clause was derived *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable learnt_limit : int;
  seen : Vec.t; (* scratch for analyze: vars marked *)
}

let create () =
  {
    clauses = Array.make 16 { lits = [||]; activity = 0.; learnt = false };
    nclauses = 0;
    watches = Array.init 16 (fun _ -> Vec.create ());
    assigns = Array.make 8 0;
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    phase = Array.make 8 false;
    activity = Array.make 8 0.;
    heap = Array.make 8 0;
    heap_pos = Array.make 8 (-1);
    heap_len = 0;
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    nvars = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    learnt_limit = 4096;
    seen = Vec.create ();
  }

let nvars s = s.nvars
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations

let grow_arrays s n =
  let cap = Array.length s.assigns in
  if n > cap then begin
    let newcap = max n (2 * cap) in
    let copy_int a def =
      let a' = Array.make newcap def in
      Array.blit a 0 a' 0 cap; a'
    in
    let copy_float a =
      let a' = Array.make newcap 0. in
      Array.blit a 0 a' 0 cap; a'
    in
    let copy_bool a =
      let a' = Array.make newcap false in
      Array.blit a 0 a' 0 cap; a'
    in
    s.assigns <- copy_int s.assigns 0;
    s.level <- copy_int s.level 0;
    s.reason <- copy_int s.reason (-1);
    s.phase <- copy_bool s.phase;
    s.activity <- copy_float s.activity;
    s.heap <- copy_int s.heap 0;
    let hp = Array.make newcap (-1) in
    Array.blit s.heap_pos 0 hp 0 cap;
    s.heap_pos <- hp
  end;
  let wcap = Array.length s.watches in
  if 2 * n > wcap then begin
    let w =
      Array.init (max (2 * n) (2 * wcap)) (fun i ->
          if i < wcap then s.watches.(i) else Vec.create ())
    in
    s.watches <- w
  end

(* --- activity heap --------------------------------------------------- *)

let heap_swap s i j =
  let vi = s.heap.(i) and vj = s.heap.(j) in
  s.heap.(i) <- vj;
  s.heap.(j) <- vi;
  s.heap_pos.(vi) <- j;
  s.heap_pos.(vj) <- i

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if s.activity.(s.heap.(i)) > s.activity.(s.heap.(p)) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_len && s.activity.(s.heap.(l)) > s.activity.(s.heap.(!best))
  then best := l;
  if r < s.heap_len && s.activity.(s.heap.(r)) > s.activity.(s.heap.(!best))
  then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_len) <- v;
    s.heap_pos.(v) <- s.heap_len;
    s.heap_len <- s.heap_len + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_len <- s.heap_len - 1;
  if s.heap_len > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_len);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  s.heap_pos.(v) <- -1;
  v

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  grow_arrays s s.nvars;
  s.assigns.(v) <- 0;
  s.level.(v) <- 0;
  s.reason.(v) <- -1;
  s.phase.(v) <- false;
  s.activity.(v) <- 0.;
  heap_insert s v;
  v

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* --- assignment ------------------------------------------------------ *)

let lit_val s l =
  (* 0 undef, 1 true, 2 false for the literal *)
  let a = s.assigns.(var_of l) in
  if a = 0 then 0
  else if (a = 1) = is_pos l then 1
  else 2

let decision_level s = Vec.len s.trail_lim

let enqueue s l reason =
  s.assigns.(var_of l) <- (if is_pos l then 1 else 2);
  s.level.(var_of l) <- decision_level s;
  s.reason.(var_of l) <- reason;
  s.phase.(var_of l) <- is_pos l;
  Vec.push s.trail l

let add_clause_internal s lits learnt =
  let c = { lits; activity = 0.; learnt } in
  if s.nclauses = Array.length s.clauses then begin
    let a = Array.make (2 * s.nclauses) c in
    Array.blit s.clauses 0 a 0 s.nclauses;
    s.clauses <- a
  end;
  let id = s.nclauses in
  s.clauses.(id) <- c;
  s.nclauses <- id + 1;
  Vec.push s.watches.(negate lits.(0)) id;
  Vec.push s.watches.(negate lits.(1)) id;
  id

let add_clause s lits =
  if s.ok then begin
    (* Simplify: drop duplicates and false lits at level 0; detect tautology. *)
    let lits = List.sort_uniq Int.compare lits in
    let taut = List.exists (fun l -> List.mem (negate l) lits) lits in
    if not taut then begin
      let lits =
        List.filter (fun l -> not (decision_level s = 0 && lit_val s l = 2)) lits
      in
      if List.exists (fun l -> decision_level s = 0 && lit_val s l = 1) lits
      then ()
      else
        match lits with
        | [] -> s.ok <- false
        | [ l ] ->
          if lit_val s l = 2 then s.ok <- false
          else if lit_val s l = 0 then enqueue s l (-1)
        | _ ->
          let arr = Array.of_list lits in
          ignore (add_clause_internal s arr false)
    end
  end

(* --- propagation ------------------------------------------------------ *)

exception Conflict of int

(* Propagate all enqueued literals.  Returns the conflicting clause id, or
   -1 when no conflict arises. *)
let propagate s =
  try
    while s.qhead < Vec.len s.trail do
      let l = Vec.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      let ws = s.watches.(l) in
      let n = Vec.len ws in
      let j = ref 0 in
      (let i = ref 0 in
       while !i < n do
         let cid = Vec.get ws !i in
         incr i;
         let c = s.clauses.(cid).lits in
         (* Ensure the false literal (negate l) is at position 1. *)
         if c.(0) = negate l then begin
           c.(0) <- c.(1);
           c.(1) <- negate l
         end;
         if lit_val s c.(0) = 1 then begin
           (* Clause already satisfied; keep the watch. *)
           Vec.set ws !j cid;
           incr j
         end
         else begin
           (* Look for a new literal to watch. *)
           let found = ref false in
           let k = ref 2 in
           let len = Array.length c in
           while (not !found) && !k < len do
             if lit_val s c.(!k) <> 2 then begin
               c.(1) <- c.(!k);
               c.(!k) <- negate l;
               Vec.push s.watches.(negate c.(1)) cid;
               found := true
             end;
             incr k
           done;
           if not !found then begin
             (* Unit or conflicting. *)
             Vec.set ws !j cid;
             incr j;
             if lit_val s c.(0) = 2 then begin
               (* Conflict: copy remaining watches and bail out. *)
               while !i < n do
                 Vec.set ws !j (Vec.get ws !i);
                 incr j;
                 incr i
               done;
               Vec.shrink ws !j;
               s.qhead <- Vec.len s.trail;
               raise (Conflict cid)
             end
             else enqueue s c.(0) cid
           end
         end
       done;
       Vec.shrink ws !j)
    done;
    -1
  with Conflict cid -> cid

(* --- conflict analysis ------------------------------------------------ *)

let seen_mark = Array.make 0 false

let analyze s confl =
  let seen = Array.make s.nvars false in
  ignore seen_mark;
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  (* -1 means "take all literals of the conflict clause" *)
  let cid = ref confl in
  let idx = ref (Vec.len s.trail - 1) in
  let btlevel = ref 0 in
  let continue = ref true in
  while !continue do
    let c = s.clauses.(!cid) in
    if c.learnt then c.activity <- c.activity +. s.cla_inc;
    let lits = c.lits in
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length lits - 1 do
      let q = lits.(k) in
      let v = var_of q in
      if (not seen.(v)) && s.level.(v) > 0 then begin
        seen.(v) <- true;
        bump_var s v;
        if s.level.(v) = decision_level s then incr counter
        else begin
          learnt := q :: !learnt;
          if s.level.(v) > !btlevel then btlevel := s.level.(v)
        end
      end
    done;
    (* Find the next marked literal on the trail. *)
    let rec next () =
      let l = Vec.get s.trail !idx in
      decr idx;
      if seen.(var_of l) then l else next ()
    in
    let l = next () in
    p := l;
    seen.(var_of l) <- false;
    decr counter;
    if !counter = 0 then continue := false
    else cid := s.reason.(var_of l)
  done;
  (negate !p :: !learnt, !btlevel)

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.len s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = var_of l in
      s.assigns.(v) <- 0;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- Vec.len s.trail
  end

(* --- search ------------------------------------------------------------ *)

let pick_branch s =
  let rec go () =
    if s.heap_len = 0 then -1
    else
      let v = heap_pop s in
      if s.assigns.(v) = 0 then v else go ()
  in
  go ()

let luby i =
  (* Luby sequence: 1 1 2 1 1 2 4 ... *)
  let rec go k i =
    if i = (1 lsl k) - 1 then 1 lsl (k - 1)
    else if i < (1 lsl (k - 1)) - 1 then go (k - 1) i
    else go (k - 1) (i - ((1 lsl (k - 1)) - 1))
  in
  let rec size k = if i < (1 lsl k) - 1 then k else size (k + 1) in
  go (size 1) i

let solve ?(assumptions = []) ?(max_conflicts = max_int) s =
  if not s.ok then Unsat
  else begin
    let assumps = Array.of_list assumptions in
    let start_conflicts = s.conflicts in
    let result = ref None in
    let restart_idx = ref 0 in
    let conflicts_this_restart = ref 0 in
    let restart_limit = ref (100 * luby 1) in
    (match propagate s with
    | -1 -> ()
    | _ -> begin s.ok <- false; result := Some Unsat end);
    while !result = None do
      let confl = propagate s in
      if confl >= 0 then begin
        s.conflicts <- s.conflicts + 1;
        incr conflicts_this_restart;
        if decision_level s = 0 then begin
          s.ok <- false;
          result := Some Unsat
        end
        else if s.conflicts - start_conflicts > max_conflicts then
          result := Some Unknown
        else begin
          let learnt, btlevel = analyze s confl in
          cancel_until s btlevel;
          (match learnt with
          | [] -> begin s.ok <- false; result := Some Unsat end
          | [ l ] -> enqueue s l (-1)
          | l :: _ ->
            let arr = Array.of_list learnt in
            (* Position a literal of btlevel at index 1 for correct watching. *)
            let pos1 = ref 1 in
            for k = 1 to Array.length arr - 1 do
              if s.level.(var_of arr.(k)) > s.level.(var_of arr.(!pos1)) then
                pos1 := k
            done;
            let tmp = arr.(1) in
            arr.(1) <- arr.(!pos1);
            arr.(!pos1) <- tmp;
            let id = add_clause_internal s arr true in
            enqueue s l id);
          s.var_inc <- s.var_inc /. 0.95;
          s.cla_inc <- s.cla_inc /. 0.999
        end
      end
      else if
        !conflicts_this_restart >= !restart_limit && decision_level s > Array.length assumps
      then begin
        (* Restart, keeping the assumption prefix. *)
        conflicts_this_restart := 0;
        incr restart_idx;
        restart_limit := 100 * luby (!restart_idx + 1);
        cancel_until s (min (decision_level s) (Array.length assumps))
      end
      else begin
        (* Decide: first re-establish pending assumptions, then branch. *)
        let dl = decision_level s in
        if dl < Array.length assumps then begin
          let a = assumps.(dl) in
          match lit_val s a with
          | 1 ->
            (* Already true: open an empty decision level. *)
            Vec.push s.trail_lim (Vec.len s.trail)
          | 2 -> result := Some Unsat (* assumptions are contradictory *)
          | _ ->
            Vec.push s.trail_lim (Vec.len s.trail);
            s.decisions <- s.decisions + 1;
            enqueue s a (-1)
        end
        else begin
          let v = pick_branch s in
          if v < 0 then result := Some Sat
          else begin
            Vec.push s.trail_lim (Vec.len s.trail);
            s.decisions <- s.decisions + 1;
            let l = if s.phase.(v) then pos v else neg_of_var v in
            enqueue s l (-1)
          end
        end
      end
    done;
    (* For Sat we keep the trail so [value] can read the model, but reset
       the decision stack before the next call. *)
    (match !result with
    | Some Sat ->
      (* Snapshot model into phase (phase saving already updated on enqueue),
         then backtrack. *)
      for v = 0 to s.nvars - 1 do
        if s.assigns.(v) <> 0 then s.phase.(v) <- s.assigns.(v) = 1
      done;
      cancel_until s 0
    | _ -> cancel_until s 0);
    match !result with Some r -> r | None -> assert false
  end

let value s v = s.phase.(v)
let lit_value s l = if is_pos l then s.phase.(var_of l) else not s.phase.(var_of l)
