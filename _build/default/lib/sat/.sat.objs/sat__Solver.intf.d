lib/sat/solver.mli:
