lib/mc/blast.mli: Bitvec Hdl Sat
