lib/mc/blast.ml: Array Bitvec Hdl List Option Sat
