lib/mc/checker.mli: Bitvec Format Hdl Sim
