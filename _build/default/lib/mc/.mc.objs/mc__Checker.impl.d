lib/mc/checker.ml: Array Bitvec Blast Format Hdl List Option Printf Random Sat Sim Sys Unix
