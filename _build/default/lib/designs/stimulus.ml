let find nl name =
  match Hdl.Netlist.find_named nl name with
  | Some s -> s
  | None -> failwith ("Stimulus: missing signal " ^ name)

let core ?(pins = []) ?(rotate = []) ?(seed = 0x51e9) (meta : Meta.t) =
  let nl = meta.Meta.nl in
  let fetch_pc = find nl "fetch_pc" in
  let in0 = find nl Core.sig_if_instr_in0 in
  let in1 = find nl Core.sig_if_instr_in1 in
  let rng = Random.State.make [| seed |] in
  let memo = Hashtbl.create 16 in
  let rotation = ref [] in
  (* Keep PC-as-IID coherent within one episode: a slot keeps its random
     instruction across refetches. *)
  let pick pc =
    match List.assoc_opt pc !rotation with
    | Some i -> Isa.encode i
    | None -> (
      match List.assoc_opt pc pins with
      | Some i -> Isa.encode i
      | None -> (
        match Hashtbl.find_opt memo pc with
        | Some e -> e
        | None ->
          let e = Isa.encode (Isa.random rng) in
          Hashtbl.replace memo pc e;
          e))
  in
  fun sim cycle ->
    if cycle = 0 then begin
      Hashtbl.reset memo;
      (* Each episode pins every rotated slot to a fresh draw from its
         candidate list — used to place random transmitters (§V-C1). *)
      rotation :=
        List.map
          (fun (pc, cands) ->
            (pc, List.nth cands (Random.State.int rng (List.length cands))))
          rotate
    end;
    Sim.eval sim;
    let pc = Bitvec.to_int (Sim.peek sim fetch_pc) in
    Sim.poke sim in0 (pick pc);
    Sim.poke sim in1 (pick ((pc + 1) mod (1 lsl Isa.pc_bits)))

let cache ?(pins = []) ?(seed = 0xcac4e) (meta : Meta.t) =
  let nl = meta.Meta.nl in
  let rq_ctr = find nl "rq_ctr" in
  let req_instr = find nl Cache.sig_req_instr in
  let req_addr = find nl Cache.sig_req_addr in
  let req_data = find nl Cache.sig_req_data in
  let axi0 = find nl "axi_rdata0" in
  let axi1 = find nl "axi_rdata1" in
  let rng = Random.State.make [| seed |] in
  let pick pc =
    match List.assoc_opt pc pins with
    | Some i -> Isa.encode i
    | None ->
      let op = if Random.State.bool rng then Isa.LW else Isa.SW in
      Isa.encode (Isa.make op)
  in
  fun sim _cycle ->
    Sim.eval sim;
    let pc = Bitvec.to_int (Sim.peek sim rq_ctr) in
    Sim.poke sim req_instr (pick pc);
    Sim.poke sim req_addr (Bitvec.random rng Isa.xlen);
    Sim.poke sim req_data (Bitvec.random rng Isa.xlen);
    Sim.poke sim axi0 (Bitvec.random rng Isa.xlen);
    Sim.poke sim axi1 (Bitvec.random rng Isa.xlen)

let ibex ?(pins = []) ?(rotate = []) ?(seed = 0x1be8) (meta : Meta.t) =
  let nl = meta.Meta.nl in
  let fetch_pc = find nl "fetch_pc" in
  let in0 = find nl "if_instr_in" in
  let rng = Random.State.make [| seed |] in
  let memo = Hashtbl.create 16 in
  let rotation = ref [] in
  let pick pc =
    match List.assoc_opt pc !rotation with
    | Some i -> Isa.encode i
    | None -> (
      match List.assoc_opt pc pins with
      | Some i -> Isa.encode i
      | None -> (
        match Hashtbl.find_opt memo pc with
        | Some e -> e
        | None ->
          let e = Isa.encode (Isa.random rng) in
          Hashtbl.replace memo pc e;
          e))
  in
  fun sim cycle ->
    if cycle = 0 then begin
      Hashtbl.reset memo;
      rotation :=
        List.map
          (fun (pc, cands) ->
            (pc, List.nth cands (Random.State.int rng (List.length cands))))
          rotate
    end;
    Sim.eval sim;
    let pc = Bitvec.to_int (Sim.peek sim fetch_pc) in
    Sim.poke sim in0 (pick pc)
