(** CVA6-lite: the reproduction's processor core (§VI).

    A 6-stage, single-issue, scoreboarded pipeline with in-order issue and
    commit and out-of-order completion, downscaled per standard formal
    verification practice (the paper itself shrinks the STBs to 2 entries
    and the SCB to 4): XLEN = 8, four architectural registers, 8-byte
    behavioural memory, 2+2-entry speculative/committed store buffers,
    4-entry scoreboard.

    Microarchitectural structure mirrors the channels the paper's CVA6
    evaluation surfaces:
    - a serial divider with leading-zero skip (operand-dependent 1–8 cycle
      latency) serving DIV/DIVU/REM/REMU;
    - a multi-cycle multiplier — fixed-latency on the baseline, zero-skip
      (1 vs 4 cycles) on the CVA6-MUL variant (§I-A);
    - a load unit that stalls on a page-offset match against any pending
      store (the §IV-A store-to-load channel), is immune to squash once a
      load has entered it (§VII-A1 "All"), and wins the single memory port
      over draining committed stores (the §VII-A1 new ST_comSTB channel);
    - always-not-taken control flow resolved at issue, with misaligned-
      target exceptions raised at commit — including, by default, the three
      CVA6 bugs of §VII-B2 (JALR checks nothing, JAL checks only 2-byte
      alignment, branches raise the exception regardless of outcome) and the
      SCB counter-width bug that wastes one entry;
    - an operand-packing decode stage on the CVA6-OP variant (§III-A).

    [build] elaborates the netlist and returns the §V-A metadata. *)

type config = {
  zero_skip_mul : bool;  (** CVA6-MUL: 1-cycle multiply when an operand is zero, else 4. *)
  operand_packing : bool;  (** CVA6-OP: dual-decode with narrow-operand packing. *)
  fix_jalr_align : bool;  (** [false] reproduces the CVA6 bug: JALR never checks alignment. *)
  fix_jal_align : bool;  (** [false]: JAL checks only 2-byte alignment. *)
  fix_branch_excp : bool;
      (** [false]: branches raise misaligned-target exceptions regardless of
          whether they are taken. *)
  fix_scb_width : bool;  (** [false]: the occupancy counter bug wastes one SCB entry. *)
}

val baseline : config
(** CVA6-lite as shipped: bugs present, fixed-latency multiplier, no packing. *)

val cva6_mul : config
(** The zero-skip-multiply variant of §I-A / Fig. 1. *)

val cva6_op : config
(** The operand-packing variant of §III-A / Fig. 2. *)

val all_fixed : config
(** Baseline with the §VII-B2 bugs repaired. *)

val iuv_pc : int
(** The canonical PC slot used for instructions under verification: the
    third fetched instruction, leaving room for older in-flight context. *)

val build : config -> Meta.t

(** Names of distinguished signals for tests and examples. *)

val sig_if_instr_in0 : string
val sig_if_instr_in1 : string
val sig_commit : string
val sig_commit_pc : string
