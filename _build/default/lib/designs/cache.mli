(** The L1 data cache DUV (§VII-A2).

    A standalone design-under-verification modelling the CVA6 L1 data cache
    and controller, downscaled: 2 sets × 4 ways × 2-byte lines, with the
    four ways split across two data banks (bank = way/2, reproducing the
    [wr$\[way/2\]] decision of Fig. 5), a one-entry write buffer, a
    no-write-allocate write-through store path, a single MSHR, and an AXI
    request FSM whose read data is a free input (the backing memory is
    black-boxed, as the paper black-boxes everything behind the cache).

    Requests play the role of instructions: each accepted request is
    assigned an incrementing PC (its IID); the request word reuses the
    RV-lite encoding and must be LW or SW (the [req_valid_assume] signal,
    exported via metadata [extra_assumes], pins this).  The address operand
    arrives through a separate input and is latched into an operand
    register for SynthLC taint introduction.

    Tag and data arrays are symbolically initialized: their pre-state is
    the residue of earlier (static) loads and stores — exactly the static
    transmitters the paper's cache evaluation flags. *)

val build : unit -> Meta.t

val iuv_pc : int
(** Request slot used for the request under verification. *)

val sig_req_instr : string
val sig_req_addr : string
val sig_req_data : string
val sig_done : string
