let iuv_pc = 2

let sig_req_instr = "req_instr"
let sig_req_addr = "req_addr"
let sig_req_data = "req_data"
let sig_done = "commit"

let xlen = Isa.xlen
let pcw = Isa.pc_bits
let iw = Isa.width
let n_sets = 2
let n_ways = 4
let line_bytes = 2
let tag_bits = 6

(* Controller states. *)
let s_idle = 0
let s_wbvld = 1
let s_wrd0 = 2
let s_rdtag = 3
let s_rddata = 4
let s_fill = 5
let s_wrd1 = 6
let s_wrmiss = 7

let build () =
  let module D = Hdl.Dsl.Make (struct
    let nl = Hdl.Netlist.create "cva6_cache"
  end) in
  let open D in
  (* Request interface: the request word reuses the RV-lite encoding and the
     address/data operands arrive alongside. *)
  let req_instr = input sig_req_instr iw in
  let req_addr = input sig_req_addr xlen in
  let req_data = input sig_req_data xlen in
  let axi_rdata0 = input "axi_rdata0" xlen in
  let axi_rdata1 = input "axi_rdata1" xlen in

  let rq_ctr = reg ~name:"rq_ctr" ~width:pcw () in
  let rq_v = reg ~name:"rq_v" ~width:1 () in
  let rq_pc = reg ~name:"rq_pc" ~width:pcw () in
  let rq_i = reg ~name:"rq_i" ~width:iw () in
  let rq_addr = reg ~name:"operand_addr" ~width:xlen () in
  let rq_data = reg ~name:"operand_data" ~width:xlen () in

  let wbuf_v = reg ~name:"wbuf_v" ~width:1 () in
  let wbuf_pc = reg ~name:"wbuf_pc" ~width:pcw () in
  let wbuf_addr = reg ~name:"wbuf_addr" ~width:xlen () in
  let wbuf_data = reg ~name:"wbuf_data" ~width:xlen () in

  let ctl_state = reg ~name:"ctl_state" ~width:3 () in
  let ctl_pc = reg ~name:"ctl_pc" ~width:pcw () in
  let ctl_addr = reg ~name:"ctl_addr" ~width:xlen () in
  let ctl_data = reg ~name:"ctl_data" ~width:xlen () in
  let ctl_way = reg ~name:"ctl_way" ~width:2 () in

  let mshr_v = reg ~name:"mshr_v" ~width:1 () in
  let mshr_pc = reg ~name:"mshr_pc" ~width:pcw () in

  let axi_v = reg ~name:"axi_v" ~width:1 () in
  let axi_pc = reg ~name:"axi_pc" ~width:pcw () in
  let axi_cnt = reg ~name:"axi_cnt" ~width:2 () in

  let rr = reg ~name:"rr_victim" ~width:2 () in

  (* Tag and data arrays: symbolic initial state — the residue of earlier
     (static-transmitter) accesses. *)
  let tags =
    List.init n_sets (fun s ->
        List.init n_ways (fun w ->
            ( reg_symbolic ~name:(Printf.sprintf "tag_v_%d_%d" s w) ~width:1 (),
              reg_symbolic ~name:(Printf.sprintf "tag_t_%d_%d" s w) ~width:tag_bits () )))
  in
  let data =
    List.init n_sets (fun s ->
        List.init n_ways (fun w ->
            List.init line_bytes (fun o ->
                reg_symbolic ~name:(Printf.sprintf "data_%d_%d_%d" s w o) ~width:xlen ())))
  in

  (* Address split: [7:2]=tag, [1]=set, [0]=offset. *)
  let addr_tag a_ = select a_ 7 2 in
  let addr_set a_ = bit a_ 1 in
  let addr_off a_ = bit a_ 0 in

  let st v = eq_const ctl_state v in
  let ctl_idle = st s_idle in
  let axi_done = axi_v &: eq_const axi_cnt 1 in

  (* Probe the tags for the controller's address. *)
  let hit_way_sigs =
    List.init n_ways (fun w ->
        let probe_set s_ =
          let tv, tt = List.nth (List.nth tags s_) w in
          tv &: (tt ==: addr_tag ctl_addr)
        in
        mux (addr_set ctl_addr) (probe_set 1) (probe_set 0))
  in
  let hit = List.fold_left ( |: ) gnd hit_way_sigs in
  let hit_way =
    (* Priority-encode the (at most one, by fill discipline) matching way;
       symbolic tag pre-state may alias several ways, in which case the
       lowest wins. *)
    List.fold_left
      (fun acc (w, h) -> mux h (of_int 2 w) acc)
      (zero 2)
      (List.rev (List.mapi (fun w h -> (w, h)) hit_way_sigs))
  in

  (* Request acceptance and hand-off. *)
  let rq_is_store = eq_const (select rq_i 18 14) (Isa.opcode_to_int Isa.SW) in
  let store_handoff = rq_v &: rq_is_store &: ~:wbuf_v in
  (* Loads wait for the write buffer to drain (the dynamic ST->LD channel)
     and for the controller to be free. *)
  let load_handoff = rq_v &: ~:rq_is_store &: ctl_idle &: ~:wbuf_v in
  let rq_leave = store_handoff |: load_handoff in
  let accept = ~:rq_v |: rq_leave in
  let () =
    rq_v <== vdd;
    (* the request interface always presents a request *)
    rq_ctr <== mux accept (rq_ctr +: of_int pcw 1) rq_ctr;
    rq_pc <== mux accept rq_ctr rq_pc;
    rq_i <== mux accept req_instr rq_i;
    rq_addr <== mux accept req_addr rq_addr;
    rq_data <== mux accept req_data rq_data
  in

  (* Write buffer: stores wait here until the controller is free. *)
  let wbuf_handoff = wbuf_v &: ctl_idle in
  let () =
    wbuf_v <== mux store_handoff vdd (mux wbuf_handoff gnd wbuf_v);
    wbuf_pc <== mux store_handoff rq_pc wbuf_pc;
    wbuf_addr <== mux store_handoff rq_addr wbuf_addr;
    wbuf_data <== mux store_handoff rq_data wbuf_data
  in

  (* Controller transitions. *)
  let next_state =
    priority_mux
      [
        (ctl_idle &: wbuf_handoff, of_int 3 s_wbvld);
        (ctl_idle &: load_handoff, of_int 3 s_rdtag);
        ( st s_wbvld,
          mux hit
            (mux (bit hit_way 1) (of_int 3 s_wrd1) (of_int 3 s_wrd0))
            (of_int 3 s_wrmiss) );
        (st s_wrd0 |: st s_wrd1, of_int 3 s_idle);
        (st s_wrmiss, mux axi_done (of_int 3 s_idle) (of_int 3 s_wrmiss));
        (st s_rdtag, mux hit (of_int 3 s_rddata) (of_int 3 s_fill));
        (st s_fill, mux axi_done (of_int 3 s_rddata) (of_int 3 s_fill));
        (st s_rddata, of_int 3 s_idle);
      ]
      ctl_state
  in
  let () =
    ctl_state <== next_state;
    ctl_pc
    <== priority_mux
          [ (ctl_idle &: wbuf_handoff, wbuf_pc); (ctl_idle &: load_handoff, rq_pc) ]
          ctl_pc;
    ctl_addr
    <== priority_mux
          [ (ctl_idle &: wbuf_handoff, wbuf_addr); (ctl_idle &: load_handoff, rq_addr) ]
          ctl_addr;
    ctl_data <== mux (ctl_idle &: wbuf_handoff) wbuf_data ctl_data;
    ctl_way
    <== priority_mux
          [ (st s_wbvld &: hit, hit_way); (st s_rdtag &: ~:hit, rr); (st s_rdtag &: hit, hit_way) ]
          ctl_way
  in

  (* AXI engine: engaged by a store miss (write-through) or a load miss. *)
  let axi_start = (st s_wbvld &: ~:hit) |: (st s_rdtag &: ~:hit) in
  let () =
    axi_v <== mux axi_start vdd (mux axi_done gnd axi_v);
    axi_pc <== mux axi_start ctl_pc axi_pc;
    axi_cnt
    <== mux axi_start (of_int 2 2)
          (mux (axi_v &: (axi_cnt <>: zero 2)) (axi_cnt -: of_int 2 1) axi_cnt)
  in

  (* MSHR: held by a missing load until its refill completes. *)
  let mshr_alloc = st s_rdtag &: ~:hit in
  let mshr_release = st s_fill &: axi_done in
  let () =
    mshr_v <== mux mshr_alloc vdd (mux mshr_release gnd mshr_v);
    mshr_pc <== mux mshr_alloc ctl_pc mshr_pc
  in

  (* Fill: on refill completion write the victim way's tag and line; advance
     the round-robin victim pointer. *)
  let filling = st s_fill &: axi_done in
  let () =
    List.iteri
      (fun s_ ways ->
        List.iteri
          (fun w (tv, tt) ->
            let sel =
              filling
              &: (of_int 1 s_ ==: addr_set ctl_addr)
              &: eq_const ctl_way w
            in
            tv <== mux sel vdd tv;
            tt <== mux sel (addr_tag ctl_addr) tt)
          ways)
      tags;
    rr <== mux filling (rr +: of_int 2 1) rr
  in

  (* Data-array writes: store hits write their byte; fills write the line. *)
  let store_write = st s_wrd0 |: st s_wrd1 in
  let () =
    List.iteri
      (fun s_ ways ->
        List.iteri
          (fun w bytes ->
            List.iteri
              (fun o b ->
                let here =
                  (of_int 1 s_ ==: addr_set ctl_addr) &: eq_const ctl_way w
                in
                let st_sel =
                  store_write &: here &: (of_int 1 o ==: addr_off ctl_addr)
                in
                let fill_sel = filling &: here in
                let fill_data = if o = 0 then axi_rdata0 else axi_rdata1 in
                b <== priority_mux [ (st_sel, ctl_data); (fill_sel, fill_data) ] b)
              bytes)
          ways)
      data;
  in

  (* Completion pulse. *)
  let done_now = store_write |: (st s_wrmiss &: axi_done) |: st s_rddata in
  let name_wire nm s =
    let w = wire ~name:nm (width s) in
    w <== s;
    w
  in
  let done_w = name_wire sig_done done_now in
  let done_pc = name_wire "commit_pc" ctl_pc in
  let flush_w = name_wire "flush" gnd in

  (* Environment constraint: request words are always LW or SW. *)
  let valid_req =
    let op = select req_instr 18 14 in
    (op ==: of_int 5 (Isa.opcode_to_int Isa.LW))
    |: (op ==: of_int 5 (Isa.opcode_to_int Isa.SW))
  in
  let valid_req_w = name_wire "req_valid_assume" valid_req in

  let one_state name pcr v label =
    {
      Meta.ufsm_name = name;
      pcr;
      vars = [ v ];
      idle_states = [ Bitvec.zero 1 ];
      state_labels = [ (Bitvec.of_int ~width:1 1, label) ];
    }
  in
  let ufsms =
    [
      one_state "rq" rq_pc rq_v "rqSlot";
      one_state "wbuf" wbuf_pc wbuf_v "wBuf";
      {
        Meta.ufsm_name = "ctl";
        pcr = ctl_pc;
        vars = [ ctl_state ];
        idle_states = [ Bitvec.zero 3 ];
        state_labels =
          [
            (Bitvec.of_int ~width:3 s_wbvld, "wBVld");
            (Bitvec.of_int ~width:3 s_wrd0, "wrD0");
            (Bitvec.of_int ~width:3 s_wrd1, "wrD1");
            (Bitvec.of_int ~width:3 s_wrmiss, "wrMiss");
            (Bitvec.of_int ~width:3 s_rdtag, "rdTag");
            (Bitvec.of_int ~width:3 s_rddata, "rdData");
            (Bitvec.of_int ~width:3 s_fill, "fill");
          ];
      };
      one_state "mshr" mshr_pc mshr_v "MSHR";
      one_state "axi" axi_pc axi_v "axiRq";
    ]
  in
  {
    Meta.design_name = "cva6_cache";
    nl;
    ifrs = [ { Meta.ifr_valid = rq_v; ifr_pc = rq_pc; ifr_word = rq_i } ];
    operand_stage_valid = rq_v;
    operand_stage_pc = rq_pc;
    commit = done_w;
    commit_pc = done_pc;
    flush = flush_w;
    ufsms;
    operand_regs = [ ("rs1", rq_addr); ("rs2", rq_data) ];
    arf = [];
    amem = [];
    extra_assumes = [ valid_req_w ];
  }
