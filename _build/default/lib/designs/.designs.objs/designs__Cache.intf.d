lib/designs/cache.mli: Meta
