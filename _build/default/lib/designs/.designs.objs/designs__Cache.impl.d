lib/designs/cache.ml: Bitvec Hdl Isa List Meta Printf
