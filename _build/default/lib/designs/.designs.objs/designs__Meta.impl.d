lib/designs/meta.ml: Bitvec Hdl List Printf
