lib/designs/core.ml: Bitvec Hdl Isa List Meta Printf
