lib/designs/stimulus.ml: Bitvec Cache Core Hashtbl Hdl Isa List Meta Random Sim
