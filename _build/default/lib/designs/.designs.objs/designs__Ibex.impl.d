lib/designs/ibex.ml: Bitvec Hdl Isa List Meta Printf
