lib/designs/ibex.mli: Meta
