lib/designs/stimulus.mli: Isa Meta Sim
