lib/designs/core.mli: Meta
