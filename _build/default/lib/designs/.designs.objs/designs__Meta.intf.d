lib/designs/meta.mli: Bitvec Hdl
