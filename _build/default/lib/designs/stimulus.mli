(** Constrained-random stimulus generators for the shipped DUVs.

    The model checker's simulation pre-pass needs input streams that respect
    the IUV constraint (§V-A): the fetch slot whose PC equals the IUV's PC
    must carry the IUV's encoding.  These generators poke the design's fetch
    inputs accordingly, optionally pinning further PC slots to specific
    instructions (used by SynthLC to place transmitters), and randomize
    everything else. *)

val core :
  ?pins:(int * Isa.t) list ->
  ?rotate:(int * Isa.t list) list ->
  ?seed:int ->
  Meta.t ->
  Sim.t ->
  int ->
  unit
(** Stimulus for the CVA6-lite cores: drives [if_instr_in0]/[if_instr_in1]
    from the current fetch PC, honouring [pins] (PC slot → instruction).
    Slots listed in [rotate] are re-pinned each episode to a fresh draw
    from the given candidates — SynthLC uses this to place random
    transmitters at the transmitter PC slot. *)

val cache :
  ?pins:(int * Isa.t) list ->
  ?seed:int ->
  Meta.t ->
  Sim.t ->
  int ->
  unit
(** Stimulus for the cache DUV: drives the request word (LW/SW only, per
    the DUV's environment assumption), address/data operands, and AXI read
    data.  [pins] pin request slots (by request PC) to a given LW/SW. *)

val ibex :
  ?pins:(int * Isa.t) list ->
  ?rotate:(int * Isa.t list) list ->
  ?seed:int ->
  Meta.t ->
  Sim.t ->
  int ->
  unit
(** Stimulus for Ibex-lite (single fetch input), same conventions as
    {!core}. *)
