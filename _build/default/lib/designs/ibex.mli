(** Ibex-lite: a second, simpler DUV for cross-design comparisons.

    The paper's related work (§VIII) evaluates in-order cores like Ibex,
    where prior contract-verification tools fare best because there is so
    little µPATH machinery: no scoreboard, no store buffers, no speculation
    beyond fetch-ahead.  Ibex-lite is a two-stage (IF + multi-cycle EX)
    RV-lite core with a serialized execute stage: single-cycle ALU ops, a
    2-cycle memory stage, the same leading-zero-skip serial divider as
    CVA6-lite, branch/jump resolution at EX with an IF flush, and
    misaligned-target exceptions (no alignment bugs — Ibex-lite is
    "correct by simplicity").

    Running RTL2MµPATH/SynthLC across both cores shows the contrast the
    paper draws: the simple core's only intrinsic timing channel is the
    divider, while CVA6-lite's buffers and scheduling add load/store and
    back-pressure channels. *)

val iuv_pc : int
val build : unit -> Meta.t
