(* Command-line driver for the RTL2MµPATH / SynthLC reproduction.

   Subcommands:
     sim       — assemble and run a program on a core, printing PL occupancy
     mupath    — synthesize the µPATH set for one instruction
     synthlc   — synthesize leakage signatures for one or more instructions
     scsafe    — search for an SC-Safe (Def. V.1) violation
     designs   — print design metadata (the Table II annotations) *)

open Cmdliner

let design_names =
  [
    "cva6_lite"; "cva6_mul"; "cva6_op"; "cva6_fixed"; "ibex_lite";
    "cva6_cache"; "gated";
  ]

let build_design = function
  | "cva6_lite" -> Designs.Core.build Designs.Core.baseline
  | "cva6_mul" -> Designs.Core.build Designs.Core.cva6_mul
  | "cva6_op" -> Designs.Core.build Designs.Core.cva6_op
  | "cva6_fixed" -> Designs.Core.build Designs.Core.all_fixed
  | "ibex_lite" -> Designs.Ibex.build ()
  | "cva6_cache" -> Designs.Cache.build ()
  | "gated" -> Designs.Gated.build ()
  | d -> failwith ("unknown design " ^ d)

let is_cache d = d = "cva6_cache"

(* --- design resolution -------------------------------------------------- *)
(* A design is either a built-in name or a path to a Yosys write_json
   netlist ([*.json]) with a metadata sidecar next to it.  Imported designs
   go through the Frontend.Admission pipeline (parse, cell mapping, sidecar
   resolution, mandatory µLint) before any checker sees them. *)

let is_json_path d = Filename.check_suffix d ".json"

let default_meta_path json_path =
  Filename.remove_extension json_path ^ ".meta.json"

(* An unknown design name is a harness error: exit 2 with a clean message,
   matching lint's 0/1/2 contract (mupath/synthlc/lint all agree). *)
let check_design_name ~cmd d =
  if (not (is_json_path d)) && not (List.mem d design_names) then begin
    Printf.eprintf
      "%s: unknown design %S (expected: %s, or a Yosys .json netlist path)\n"
      cmd d
      (String.concat ", " design_names);
    exit 2
  end

(* A rejected import is also a harness error: print the full admission
   report (every offending cell named) and exit 2. *)
let with_admission ~cmd f =
  try f ()
  with Frontend.Diag.Rejected r ->
    Format.eprintf "%a@." Lint.Diagnostic.pp_report r;
    Printf.eprintf "%s: design rejected at admission\n" cmd;
    exit 2

type design_src =
  | Builtin of string
  | Imported of Frontend.Admission.design * string * string
      (* admission result, netlist path, sidecar path *)

let resolve_design ~cmd ?meta d =
  check_design_name ~cmd d;
  if is_json_path d then begin
    let meta_path = Option.value meta ~default:(default_meta_path d) in
    let a =
      with_admission ~cmd (fun () ->
          Frontend.Admission.load ~json_path:d ~meta_path ())
    in
    Imported (a, d, meta_path)
  end
  else Builtin d

(* Fresh meta per call (Mupath.Synth consumes its meta).  The admission
   pass above already vetted the import, so rebuilds skip µLint. *)
let builder_of ~cmd = function
  | Builtin d -> fun () -> build_design d
  | Imported (a, json_path, meta_path) ->
    let first = ref (Some a.Frontend.Admission.meta) in
    fun () -> (
      match !first with
      | Some m ->
        first := None;
        m
      | None ->
        (with_admission ~cmd (fun () ->
             Frontend.Admission.load ~lint:false ~json_path ~meta_path ()))
          .Frontend.Admission.meta)

let stim_kind_of = function
  | Builtin d ->
    if d = "gated" then `None
    else if is_cache d then `Cache
    else if d = "ibex_lite" then `Ibex
    else `Core
  | Imported (a, _, _) -> (
    match a.Frontend.Admission.stimulus with
    | Frontend.Sidecar.S_none -> `None
    | Frontend.Sidecar.S_core -> `Core
    | Frontend.Sidecar.S_ibex -> `Ibex
    | Frontend.Sidecar.S_cache -> `Cache)

let iuv_pc_of = function
  | Builtin d ->
    if is_cache d then Designs.Cache.iuv_pc
    else if d = "gated" then Designs.Gated.iuv_pc
    else Designs.Core.iuv_pc
  | Imported (a, _, _) -> a.Frontend.Admission.iuv_pc

let design_arg =
  let doc =
    "Design under verification: " ^ String.concat ", " design_names
    ^ ", or a path to a Yosys $(b,write_json) netlist (anything ending in \
       .json; see the $(b,import) subcommand and --meta)."
  in
  Arg.(value & opt string "cva6_lite" & info [ "d"; "design" ] ~docv:"DESIGN" ~doc)

let meta_arg =
  let doc =
    "Metadata sidecar for an imported .json design (µFSM/IFR annotations by \
     signal name).  Default: $(i,DESIGN).meta.json next to the netlist."
  in
  Arg.(value & opt (some string) None & info [ "meta" ] ~docv:"FILE" ~doc)

let depth_arg =
  Arg.(value & opt int 12 & info [ "depth" ] ~docv:"N" ~doc:"BMC unrolling depth.")

let episodes_arg =
  Arg.(value & opt int 12 & info [ "episodes" ] ~docv:"N" ~doc:"Random-simulation pre-pass episodes.")

let jobs_arg =
  let doc =
    "Worker domains for the per-instruction fan-out.  0 (the default) \
     resolves to $(b,SYNTHLC_JOBS) if set, else the recommended domain \
     count.  Results are bit-identical for every value."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs j = if j >= 1 then j else Pool.default_jobs ()

let shards_arg =
  let doc =
    "Checker shards for property-level parallelism within one synthesis \
     (trades shared learned clauses for cores; 1 = single incremental \
     solver)."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"K" ~doc)

let cache_dir_arg =
  let env = Cmd.Env.info "SYNTHLC_CACHE" ~doc:"Default directory for $(b,--cache-dir)." in
  let doc =
    "Persistent verdict-cache directory.  Checker verdicts (witness traces \
     included) are stored content-addressed under $(docv) and replayed on \
     later runs; a fully-warm run is bit-identical to the cold run that \
     filled the cache."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~env ~docv:"DIR" ~doc)

let cache_of = Option.map (fun dir -> Vcache.create ~dir ())

let no_static_prune_arg =
  let doc =
    "Disable the static FSM-abstraction reachability pre-pass: dispatch \
     covers over statically-unreachable states to the model checker as a \
     trailing audit batch instead of discharging them statically.  The \
     report digest is bit-identical either way; this flag exists to audit \
     the abstraction (an unsound verdict fails the run)."
  in
  Arg.(value & flag & info [ "no-static-prune" ] ~doc)

let flow_prune_conv =
  let parse = function
    | "on" -> Ok Synthlc.Types.Prune_on
    | "off" -> Ok Synthlc.Types.Prune_off
    | "audit" -> Ok Synthlc.Types.Prune_audit
    | s -> Error (`Msg (Printf.sprintf "invalid prune mode %S (expected on, off, or audit)" s))
  in
  let print fmt m = Format.pp_print_string fmt (Synthlc.Types.prune_mode_name m) in
  Arg.conv (parse, print)

let static_flow_prune_arg =
  let doc =
    "Static taint-flow pre-pass over the IFT covers: $(b,on) (default) \
     discharges covers whose destinations lie outside the operand's static \
     taint cone without checker calls; $(b,off) dispatches them as a \
     trailing batch and trusts the checker; $(b,audit) dispatches the same \
     batch but fails the run on any reachable verdict (the unsoundness \
     tripwire).  All modes issue the same mid-stream checker sequence, so \
     the report digest is bit-identical across them."
  in
  Arg.(
    value
    & opt flow_prune_conv Synthlc.Types.Prune_on
    & info [ "static-flow-prune" ] ~docv:"MODE" ~doc)

let no_static_flow_prune_arg =
  let doc = "Shorthand for $(b,--static-flow-prune=audit)." in
  Arg.(value & flag & info [ "no-static-flow-prune" ] ~doc)

let absint_arg =
  let doc =
    "Known-bits abstract-interpretation pruning: $(b,on) (default) \
     discharges the extra µPATH covers and IFT covers the known-bits \
     refinement proves unreachable beyond the base pre-passes; $(b,off) \
     dispatches them as a trailing batch and trusts the checker; \
     $(b,audit) fails the run on any reachable verdict.  All modes issue \
     the same mid-stream checker sequence, so the report digest is \
     bit-identical across them."
  in
  Arg.(
    value
    & opt flow_prune_conv Synthlc.Types.Prune_on
    & info [ "absint" ] ~docv:"MODE" ~doc)

(* Mupath's absint mode is a structural variant (it cannot depend on
   Synthlc.Types); the mapping is one-to-one. *)
let synth_absint_mode = function
  | Synthlc.Types.Prune_on -> `On
  | Synthlc.Types.Prune_off -> `Off
  | Synthlc.Types.Prune_audit -> `Audit

let no_known_bits_arg =
  let doc =
    "Disable known-bits constant substitution in the BMC encoding \
     (proven-constant bits otherwise encode as constant literals instead \
     of fresh variables).  Purely an encoding-size optimization; the \
     report digest is expected to be identical either way."
  in
  Arg.(value & flag & info [ "no-known-bits" ] ~doc)

let sweep_conv =
  let parse = function
    | "on" -> Ok Mc.Checker.Sweep_on
    | "off" -> Ok Mc.Checker.Sweep_off
    | "audit" -> Ok Mc.Checker.Sweep_audit
    | s -> Error (`Msg (Printf.sprintf "invalid sweep mode %S (expected on, off, or audit)" s))
  in
  let print fmt m = Format.pp_print_string fmt (Mc.Checker.sweep_mode_tag m) in
  Arg.conv (parse, print)

let sweep_arg =
  let doc =
    "Equivalence-sweep the netlist the SAT engines encode: $(b,off) \
     (default) encodes the design as-is; $(b,on) merges SAT-proven \
     equivalent combinational nodes before encoding ($(b,Hdl.Equiv)); \
     $(b,audit) computes with the swept engine and re-runs every \
     SAT-resolved cover on an unswept engine, failing the run on any \
     verdict or witness divergence.  Witnesses are canonical, so the \
     report digest is bit-identical across all three modes."
  in
  Arg.(value & opt sweep_conv Mc.Checker.Sweep_off & info [ "sweep" ] ~docv:"MODE" ~doc)

let semantic_cache_arg =
  let doc =
    "Key the verdict cache by behavioral signatures instead of netlist \
     structure, so semantically equivalent variants of one design (e.g. a \
     gate-level re-synthesis) share cached verdicts.  Requires \
     $(b,--cache-dir)."
  in
  Arg.(value & flag & info [ "semantic-cache" ] ~doc)

let imprecise_ift_arg =
  let doc =
    "Degrade the IFT cell rules from value-aware to taint-union for \
     AND/OR/MUX (the SS VII-B1 precision ablation).  Threaded identically \
     into the static taint pre-pass, recorded in the report (the digest \
     differs from a precise run), and namespaced in the verdict cache."
  in
  Arg.(value & flag & info [ "imprecise-ift" ] ~doc)

let print_cache_counters = function
  | None -> ()
  | Some c ->
    let hits, misses, stores = Vcache.counters c in
    Printf.printf "cache: hits=%d misses=%d stores=%d\n" hits misses stores

(* Assembly parse failures surface as Cmdliner conversion errors (usage +
   exit 124), not uncaught exceptions. *)
let instr_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Isa.parse s) in
  let print fmt i = Format.pp_print_string fmt (Isa.to_string i) in
  Arg.conv (parse, print)

let instrs_conv =
  let parse s =
    match Isa.parse_list s with
    | Ok [] -> Error (`Msg "no instructions given")
    | Ok l -> Ok l
    | Error e -> Error (`Msg e)
  in
  let print fmt l =
    Format.pp_print_string fmt (String.concat "; " (List.map Isa.to_string l))
  in
  Arg.conv (parse, print)

let instr_arg =
  let doc = "Instruction under verification, in assembly (e.g. 'div r1, r2, r3')." in
  Arg.(
    value
    & opt instr_conv (Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD)
    & info [ "i"; "instr" ] ~docv:"ASM" ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace-event JSON file of the run's spans (checker \
     dispatches, cache traffic, synthesis stages, engine tasks) to $(docv); \
     open it in chrome://tracing or ui.perfetto.dev.  Tracing never changes \
     results: the report digest is bit-identical with and without it."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the run's metrics registry (counters/gauges/histograms, e.g. \
     $(b,cache.hits)) as a flat JSON object to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Observability wrapper: enable the obs layer when either output was
   requested, write the files when the action finishes (even on raise, so
   a failing run still leaves its partial trace behind). *)
let with_obs ~trace ~metrics f =
  if trace = None && metrics = None then f ()
  else begin
    Obs.enable ();
    Fun.protect
      ~finally:(fun () ->
        Option.iter Obs.write_chrome_trace trace;
        Option.iter Obs.write_metrics_json metrics;
        Obs.disable ())
      f
  end

let portfolio_arg =
  let doc =
    "Race $(docv) diversified solver configurations per hard BMC query \
     (clause-sharing portfolio).  The canonical solver's verdict and \
     witness are always the ones reported, so results and the report \
     digest are bit-identical to $(b,--portfolio=1)."
  in
  Arg.(value & opt int 1 & info [ "portfolio" ] ~docv:"K" ~doc)

let no_cse_arg =
  let doc =
    "Disable structural hashing (CSE) in the Tseitin encoding — mainly for \
     measuring the encoding-sharing win.  Changes the solver trajectory, so \
     witnesses (and the digest) may differ from the default."
  in
  Arg.(value & flag & info [ "no-cse" ] ~doc)

let dump_cnf_arg =
  let doc =
    "Write the BMC unrolling as DIMACS CNF to $(docv) at the end of the run \
     for offline debugging (multi-instruction synthlc runs append the task \
     index to the path)."
  in
  Arg.(value & opt (some string) None & info [ "dump-cnf" ] ~docv:"FILE" ~doc)

let config_of depth episodes ~portfolio ~no_cse ~no_known_bits ~sweep =
  {
    Mc.Checker.default_config with
    Mc.Checker.bmc_depth = depth;
    bmc_conflicts = 60_000;
    induction_max_k = 2;
    sim_episodes = episodes;
    sim_cycles = 44;
    encode_cse = not no_cse;
    known_bits = not no_known_bits;
    portfolio_domains = max 1 portfolio;
    sweep;
  }

(* `None (e.g. the gated demo) means no program-shaped input protocol: the
   design accepts whatever the random pokes feed it, so it runs without a
   stimulus. *)
let stimulus_of src ~pins meta =
  match stim_kind_of src with
  | `None -> None
  | `Cache -> Some (Designs.Stimulus.cache ~pins meta)
  | `Ibex -> Some (Designs.Stimulus.ibex ~pins meta)
  | `Core -> Some (Designs.Stimulus.core ~pins meta)

let rotating_stimulus_of src =
  match stim_kind_of src with
  | `None -> None
  | (`Cache | `Ibex | `Core) as k ->
    Some
      (fun ~pins ~rotate meta ->
        match k with
        | `Cache -> Designs.Stimulus.cache ~pins meta
        | `Ibex -> Designs.Stimulus.ibex ~pins ~rotate meta
        | `Core -> Designs.Stimulus.core ~pins ~rotate meta)

(* --- sim -------------------------------------------------------------- *)

let sim_cmd =
  let run dname program_file cycles =
    let meta = build_design dname in
    if is_cache dname then failwith "sim drives processor cores; use the cache tests for the cache DUV";
    if dname = "gated" then failwith "sim drives processor cores; the gated demo DUV has no program input";
    let src =
      if program_file = "-" then In_channel.input_all In_channel.stdin
      else In_channel.with_open_text program_file In_channel.input_all
    in
    let program =
      match Isa.assemble src with Ok p -> Array.of_list p | Error e -> failwith e
    in
    let nl = meta.Designs.Meta.nl in
    let sget n = Option.get (Hdl.Netlist.find_named nl n) in
    let sim = Sim.create ~seed:1 nl in
    let instr_at pc =
      if pc < Array.length program then Isa.encode program.(pc)
      else Isa.encode Isa.nop
    in
    for c = 0 to cycles - 1 do
      Sim.eval sim;
      let pc = Bitvec.to_int (Sim.peek sim (sget "fetch_pc")) in
      (match Hdl.Netlist.find_named nl Designs.Core.sig_if_instr_in0 with
      | Some s0 ->
        Sim.poke sim s0 (instr_at pc);
        Sim.poke sim (sget Designs.Core.sig_if_instr_in1) (instr_at (pc + 1))
      | None -> Sim.poke sim (sget "if_instr_in") (instr_at pc));
      Sim.eval sim;
      let cells =
        List.filter_map
          (fun (u : Designs.Meta.ufsm) ->
            let state =
              match u.Designs.Meta.vars with
              | [] -> Bitvec.zero 1
              | v :: rest ->
                List.fold_left
                  (fun acc v' -> Bitvec.concat acc (Sim.peek sim v'))
                  (Sim.peek sim v) rest
            in
            if List.exists (Bitvec.equal state) u.Designs.Meta.idle_states then None
            else
              Some
                (Printf.sprintf "%s[%d]"
                   (Designs.Meta.state_value meta u state)
                   (Bitvec.to_int (Sim.peek sim u.Designs.Meta.pcr))))
          meta.Designs.Meta.ufsms
      in
      Printf.printf "c%03d: %s\n" c (String.concat " " cells);
      Sim.step sim
    done;
    Sim.eval sim;
    List.iteri
      (fun i r ->
        Printf.printf "r%d = 0x%s\n" (i + 1)
          (Bitvec.to_hex_string (Sim.peek sim r)))
      meta.Designs.Meta.arf
  in
  let program =
    Arg.(value & opt string "-" & info [ "p"; "program" ] ~docv:"FILE" ~doc:"Assembly file ('-' for stdin).")
  in
  let cycles = Arg.(value & opt int 32 & info [ "cycles" ] ~docv:"N" ~doc:"Cycles to simulate.") in
  Cmd.v
    (Cmd.info "sim" ~doc:"Run a program on a core, printing PL occupancy per cycle")
    Term.(const run $ design_arg $ program $ cycles)

(* --- mupath ----------------------------------------------------------- *)

let mupath_cmd =
  let run dname meta_path iuv depth episodes dot counts shards cache_dir nsp
      absint portfolio no_cse no_known_bits sweep semantic_cache dump_cnf trace
      metrics =
    let src = resolve_design ~cmd:"mupath" ?meta:meta_path dname in
    with_obs ~trace ~metrics (fun () ->
        let meta = builder_of ~cmd:"mupath" src () in
        let iuv_pc = iuv_pc_of src in
        let stim = stimulus_of src ~pins:[ (iuv_pc, iuv) ] meta in
        let config =
          config_of depth episodes ~portfolio ~no_cse ~no_known_bits ~sweep
        in
        let cache = cache_of cache_dir in
        let r =
          Mupath.Synth.run ?cache ~config ?stimulus:stim ~semantic_cache
            ~static_prune:(not nsp)
            ~absint:(synth_absint_mode absint) ?dump_cnf
            ~revisit_count_labels:counts ~shards ~meta ~iuv ~iuv_pc ()
        in
        Format.printf "%a@." Mupath.Synth.pp_result r;
        Printf.printf "report digest: %s\n" (Mupath.Synth.result_digest r);
        print_cache_counters cache;
        if dot then
          List.iteri
            (fun i p ->
              Printf.printf "--- uPATH %d DOT ---\n%s" i (Uhb.Dot.of_path p))
            (Mupath.Synth.to_uhb_paths r))
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit DOT for each uPATH.") in
  let counts =
    Arg.(value & opt (list string) [] & info [ "counts" ] ~docv:"PLS" ~doc:"PLs to derive revisit cycle counts for (SS V-B6).")
  in
  Cmd.v
    (Cmd.info "mupath" ~doc:"RTL2MuPATH: synthesize the uPATH set for one instruction")
    Term.(
      const run $ design_arg $ meta_arg $ instr_arg $ depth_arg $ episodes_arg
      $ dot $ counts $ shards_arg $ cache_dir_arg $ no_static_prune_arg
      $ absint_arg $ portfolio_arg $ no_cse_arg $ no_known_bits_arg
      $ sweep_arg $ semantic_cache_arg $ dump_cnf_arg $ trace_arg $ metrics_arg)

(* --- synthlc ---------------------------------------------------------- *)

let synthlc_cmd =
  let run dname meta_path instructions txs depth episodes static jobs cache_dir
      nsp flow_prune no_flow_prune absint imprecise portfolio no_cse
      no_known_bits sweep semantic_cache dump_cnf trace metrics =
    let src = resolve_design ~cmd:"synthlc" ?meta:meta_path dname in
    with_obs ~trace ~metrics @@ fun () ->
    let transmitters =
      List.filter_map Isa.opcode_of_mnemonic txs
    in
    let design = builder_of ~cmd:"synthlc" src in
    let iuv_pc = iuv_pc_of src in
    let stimulus = rotating_stimulus_of src in
    let config =
      config_of depth episodes ~portfolio ~no_cse ~no_known_bits ~sweep
    in
    let kinds =
      [ Synthlc.Types.Intrinsic; Synthlc.Types.Dynamic_older; Synthlc.Types.Dynamic_younger ]
      @ (if static then [ Synthlc.Types.Static ] else [])
    in
    let jobs = resolve_jobs jobs in
    let revisit_count_labels =
      (* Keep only the labels this design actually has (ibex_lite has no
         mulU, the cache DUV has neither). *)
      let available = List.map fst (Mupath.Harness.pl_groups (design ())) in
      List.filter (fun l -> List.mem l available) [ "divU"; "mulU"; "ID" ]
    in
    let cache = cache_of cache_dir in
    let static_flow_prune =
      if no_flow_prune then Synthlc.Types.Prune_audit else flow_prune
    in
    let report =
      Synthlc.Engine.run ?cache ~config ~synth_config:config ~semantic_cache
        ~static_prune:(not nsp) ?dump_cnf ~precise:(not imprecise)
        ~static_flow_prune ~absint ?stimulus ~design ~jobs ~instructions
        ~transmitters ~kinds ~revisit_count_labels ~iuv_pc ()
    in
    Format.printf "%a@." Synthlc.Engine.pp_report report;
    Printf.printf "report digest: %s\n" (Synthlc.Engine.report_digest report);
    print_cache_counters cache;
    let grid = Synthlc.Grid.build report.Synthlc.Engine.transponders in
    Format.printf "@.Fig. 8-style grid:@.%a@." Synthlc.Grid.pp grid;
    let signatures = Synthlc.Engine.all_signatures report in
    let revisit_counts =
      List.map
        (fun (t : Synthlc.Engine.transponder_report) ->
          (t.Synthlc.Engine.instr.Isa.op, t.Synthlc.Engine.synth.Mupath.Synth.revisit_counts))
        report.Synthlc.Engine.transponders
    in
    let bundle =
      Synthlc.Contracts.derive ~signatures ~revisit_counts
        ~store_opcodes:[ Isa.SW; Isa.SB ]
    in
    Format.printf "@.%a@." Synthlc.Contracts.pp_bundle bundle
  in
  let instrs =
    Arg.(value & opt instrs_conv [ Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.DIV ] & info [ "i"; "instrs" ] ~docv:"ASM;..." ~doc:"Transponder instructions, separated by $(b,;) or $(b,,) (a segment starting with a mnemonic begins a new instruction).")
  in
  let txs =
    Arg.(value & opt (list string) [ "div"; "lw"; "sw"; "beq"; "add" ] & info [ "t"; "transmitters" ] ~docv:"OPS" ~doc:"Candidate transmitter opcodes.")
  in
  let static = Arg.(value & flag & info [ "static" ] ~doc:"Also analyze static transmitters (Assumption 3).") in
  Cmd.v
    (Cmd.info "synthlc" ~doc:"SynthLC: synthesize leakage signatures and contracts")
    Term.(
      const run $ design_arg $ meta_arg $ instrs $ txs $ depth_arg
      $ episodes_arg $ static $ jobs_arg $ cache_dir_arg $ no_static_prune_arg
      $ static_flow_prune_arg $ no_static_flow_prune_arg $ absint_arg
      $ imprecise_ift_arg $ portfolio_arg $ no_cse_arg $ no_known_bits_arg
      $ sweep_arg $ semantic_cache_arg $ dump_cnf_arg $ trace_arg $ metrics_arg)

(* --- scsafe ----------------------------------------------------------- *)

let scsafe_cmd =
  let run program_src secret trials =
    let program =
      match Isa.assemble program_src with Ok p -> p | Error e -> failwith e
    in
    match
      Synthlc.Scsafe.find_violation ~trials
        ~design:(fun () -> Designs.Core.build Designs.Core.baseline)
        ~program ~secret_reg:secret ()
    with
    | Some v ->
      Printf.printf
        "SC-Safe VIOLATED: secret r%d = 0x%s vs 0x%s diverges observations at cycle %d\n"
        (secret + 1)
        (Bitvec.to_hex_string v.Synthlc.Scsafe.vi_low)
        (Bitvec.to_hex_string v.Synthlc.Scsafe.vi_high)
        v.Synthlc.Scsafe.vi_diverge_cycle
    | None -> Printf.printf "no violation found in %d trials\n" trials
  in
  let program =
    Arg.(value & opt string "sw r3, 0(r1)\nlw r3, 0(r2)" & info [ "p"; "program" ] ~docv:"ASM" ~doc:"Program (newline-separated).")
  in
  let secret =
    Arg.(value & opt int 0 & info [ "secret" ] ~docv:"N" ~doc:"Secret ARF register index (0 = r1).")
  in
  let trials = Arg.(value & opt int 32 & info [ "trials" ] ~docv:"N" ~doc:"Random trials.") in
  Cmd.v
    (Cmd.info "scsafe" ~doc:"Search for a Definition V.1 violation by paired simulation")
    Term.(const run $ program $ secret $ trials)

(* --- cache ------------------------------------------------------------ *)

let cache_cmd =
  (* A missing directory is a usage error, not a crash: report it through
     Cmdliner (message on stderr, exit 124) instead of an uncaught
     [Failure] backtrace. *)
  let with_dir k = function
    | Some d -> `Ok (k d)
    | None ->
      `Error (false, "no cache directory: pass --cache-dir or set SYNTHLC_CACHE")
  in
  let stats_cmd =
    let run dir =
      with_dir
        (fun dir ->
          let entries = Vcache.disk_entries ~dir in
          let bytes = List.fold_left (fun a (_, b) -> a + b) 0 entries in
          Printf.printf "%s: %d entries, %d bytes (format v%d)\n" dir
            (List.length entries) bytes Vcache.format_version)
        dir
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Report entry count and total size of a verdict-cache directory")
      Term.(ret (const run $ cache_dir_arg))
  in
  let clear_cmd =
    let run dir =
      with_dir
        (fun dir ->
          Printf.printf "removed %d entries from %s\n" (Vcache.clear_dir ~dir) dir)
        dir
    in
    Cmd.v
      (Cmd.info "clear" ~doc:"Delete every entry in a verdict-cache directory")
      Term.(ret (const run $ cache_dir_arg))
  in
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect or clear the persistent verdict cache")
    [ stats_cmd; clear_cmd ]

(* --- lint ------------------------------------------------------------- *)

let lint_cmd =
  (* Lint a .json import without the fail-fast admission wrapper: frontend
     warnings and the lint findings land in one printable report, and a
     rejected import contributes its error report (exit 2 via the shared
     exit-code computation) instead of aborting the other designs. *)
  let lint_imported path =
    match
      let { Frontend.Yosys.nl; warnings } = Frontend.Yosys.import_file path in
      let sc = Frontend.Sidecar.resolve_file nl (default_meta_path path) in
      let r = Lint.Driver.run_design sc.Frontend.Sidecar.meta in
      { r with Lint.Diagnostic.diags = warnings @ r.Lint.Diagnostic.diags }
    with
    | r -> r
    | exception Frontend.Diag.Rejected r -> r
  in
  let run json names =
    (* An unknown design name is a harness error (exit 2), not a
       Cmdliner-level crash: the 0/1/2 contract below is what CI asserts. *)
    let unknown =
      List.filter
        (fun n -> (not (is_json_path n)) && not (List.mem n design_names))
        names
    in
    if unknown <> [] then begin
      Printf.eprintf "lint: unknown design(s): %s (expected: %s)\n"
        (String.concat ", " unknown)
        (String.concat ", " design_names);
      exit 2
    end;
    let names = if names = [] then design_names else names in
    let reports =
      List.map
        (fun dname ->
          if is_json_path dname then lint_imported dname
          else Lint.Driver.run_design (build_design dname))
        names
    in
    if json then print_string (Lint.Diagnostic.to_json reports)
    else
      List.iter
        (fun r -> Format.printf "%a@." Lint.Diagnostic.pp_report r)
        reports;
    exit (Lint.Diagnostic.exit_code reports)
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as JSON (the CI artifact format).")
  in
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"DESIGN" ~doc:"Designs to lint: built-in names or .json netlist paths (default: all built-ins).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"uLint: static analysis of a design's netlist and annotations"
       ~man:
         [
           `S Manpage.s_description;
           `P "Runs the structural (L0xx), annotation (L1xx), \
               reachability (L2xx), taint-flow (T3xx), and known-bits \
               (A4xx) passes over each named design.  Exit status is 0 \
               when clean, 1 when the worst finding is a warning, and 2 \
               on any error; infos (the whole A series) never affect the \
               exit status.";
         ])
    Term.(const run $ json $ names)

(* --- fuzz ------------------------------------------------------------- *)

let fuzz_cmd =
  let run seed count budget_s only defect_s out depth episodes =
    (* Everything unexpected is a harness error: exit 2, mirroring lint's
       0/1/2 contract (0 = all oracles green, 1 = oracle divergence). *)
    match
      let defect =
        match defect_s with
        | None -> None
        | Some s -> (
          match Fuzz.Gen.defect_of_string s with
          | Some d -> Some d
          | None ->
            failwith
              (Printf.sprintf
                 "unknown defect %S (expected: label-idle, pc-width)" s))
      in
      let summary =
        Fuzz.Driver.campaign ~depth ~episodes ~defect ?only ~budget_s
          ~log:print_endline ~seed ~count ()
      in
      Option.iter
        (fun f ->
          Out_channel.with_open_text f (fun oc ->
              output_string oc (Fuzz.Driver.summary_to_json summary)))
        out;
      summary
    with
    | summary ->
      Printf.printf
        "fuzz: seed %d: %d design(s), %d failure(s), %d skipped in %.1fs\n"
        summary.Fuzz.Driver.seed
        (List.length summary.Fuzz.Driver.designs)
        (List.length summary.Fuzz.Driver.failures)
        summary.Fuzz.Driver.skipped summary.Fuzz.Driver.total_time_s;
      exit (Fuzz.Driver.exit_code summary)
    | exception e ->
      Printf.eprintf "fuzz: harness error: %s\n" (Printexc.to_string e);
      exit 2
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Campaign seed; design $(i,i) is derived from (seed, i) alone.")
  in
  let count =
    Arg.(value & opt int 25 & info [ "count" ] ~docv:"N" ~doc:"Number of generated designs.")
  in
  let budget =
    Arg.(value & opt float 0. & info [ "budget-s" ] ~docv:"T" ~doc:"Wall-clock budget in seconds; designs beyond it are skipped (0 = unbounded).")
  in
  let only =
    Arg.(value & opt (some int) None & info [ "only" ] ~docv:"I" ~doc:"Run a single design index (the reproducer form).")
  in
  let defect =
    Arg.(value & opt (some string) None & info [ "inject-defect" ] ~docv:"D" ~doc:"Inject a deliberate metadata defect into every design: $(b,label-idle) or $(b,pc-width).  The lint oracle must catch it.")
  in
  let out =
    Arg.(value & opt (some string) (Some "fuzz_corpus.json") & info [ "out" ] ~docv:"FILE" ~doc:"Corpus summary JSON path (the CI artifact format): per-design digests, oracle verdicts, pruned/checked counts, timing, failures with reproducers.")
  in
  let depth =
    Arg.(value & opt int Fuzz.Driver.default_depth & info [ "depth" ] ~docv:"N" ~doc:"BMC unrolling depth for the oracle battery.")
  in
  let episodes =
    Arg.(value & opt int Fuzz.Driver.default_episodes & info [ "episodes" ] ~docv:"N" ~doc:"Simulation pre-pass episodes for the oracle battery.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Design-space fuzzing: generate pipelines, differentially test the flow"
       ~man:
         [
           `S Manpage.s_description;
           `P "Samples pipeline configs (frontend depth, MUL/DIV latency \
               mix, store-buffer depth, cache tags, speculation), elaborates \
               each into a netlist with auto-derived µFSM/IFR metadata, and \
               runs a differential oracle battery over it: µLint admission, \
               elaboration determinism, -j1 vs -j2 digest equality, cold vs \
               warm verdict-cache bit-identity, static prune on/off/audit \
               digest identity, --portfolio 2 digest equality, and static \
               leakage-grid containment of every dynamically tagged flow.";
           `P "On a failure the config is shrunk along its parameter \
               lattice (the shrunk config must reproduce the same oracle \
               failure class) and a one-line reproducer is printed: \
               $(b,synthlc fuzz --seed S --only I).";
           `S Manpage.s_exit_status;
           `P "0 when every oracle on every design passes; 1 on any oracle \
               divergence; 2 on a harness error (bad usage, unexpected \
               exception).  This mirrors the $(b,lint) 0/1/2 contract.";
         ])
    Term.(
      const run $ seed $ count $ budget $ only $ defect $ out $ depth
      $ episodes)

(* --- import / export --------------------------------------------------- *)

let import_cmd =
  let run path meta_path top json sweep =
    let meta_path = Option.value meta_path ~default:(default_meta_path path) in
    match Frontend.Admission.load ?top ~json_path:path ~meta_path () with
    | d ->
      let reports = [ d.Frontend.Admission.report ] in
      if json then print_string (Lint.Diagnostic.to_json reports)
      else begin
        Format.printf "%a@." Lint.Diagnostic.pp_report
          d.Frontend.Admission.report;
        let nl = d.Frontend.Admission.meta.Designs.Meta.nl in
        Printf.printf
          "admitted: %s (%d nodes, %d regs, %d uFSMs) stimulus=%s iuv_pc=%d\n"
          d.Frontend.Admission.meta.Designs.Meta.design_name
          (Hdl.Netlist.num_nodes nl)
          (List.length (Hdl.Netlist.registers nl))
          (List.length d.Frontend.Admission.meta.Designs.Meta.ufsms)
          (Frontend.Sidecar.stim_name d.Frontend.Admission.stimulus)
          d.Frontend.Admission.iuv_pc;
        if sweep then begin
          let meta = d.Frontend.Admission.meta in
          let reduced, _, st =
            Hdl.Equiv.reduce ~barriers:(Designs.Meta.signals meta) nl
          in
          Printf.printf
            "sweep: %d/%d comb nodes merged (%.1f%%) -> %d nodes \
             (classes=%d complement=%d const=%d vetoed=%d sat=%d/%d unknown=%d)\n"
            st.Hdl.Equiv.merged st.Hdl.Equiv.comb_nodes
            (if st.Hdl.Equiv.comb_nodes = 0 then 0.
             else
               100.
               *. float_of_int st.Hdl.Equiv.merged
               /. float_of_int st.Hdl.Equiv.comb_nodes)
            (Hdl.Netlist.num_nodes reduced)
            st.Hdl.Equiv.classes st.Hdl.Equiv.complement_merged
            st.Hdl.Equiv.const_merged st.Hdl.Equiv.vetoed
            st.Hdl.Equiv.sat_refuted st.Hdl.Equiv.sat_queries
            st.Hdl.Equiv.sat_unknown
        end
      end;
      exit (Lint.Diagnostic.exit_code reports)
    | exception Frontend.Diag.Rejected r ->
      if json then print_string (Lint.Diagnostic.to_json [ r ])
      else Format.printf "%a@." Lint.Diagnostic.pp_report r;
      Printf.eprintf "import: rejected %s\n" path;
      exit 2
  in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN.json" ~doc:"Yosys $(b,write_json) netlist to admit.")
  in
  let top =
    Arg.(value & opt (some string) None & info [ "top" ] ~docv:"MODULE" ~doc:"Module to import (default: the module with the $(b,top) attribute, else the only non-blackbox module).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the admission report as JSON (the CI artifact format).")
  in
  let sweep =
    Arg.(value & flag & info [ "sweep" ] ~doc:"After admission, run the equivalence sweep ($(b,Hdl.Equiv)) on the imported netlist and print reduction statistics (merged node count, class breakdown, SAT query tally).")
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:"Admit a Yosys JSON netlist: parse, map cells, resolve the \
             sidecar, run uLint"
       ~man:
         [
           `S Manpage.s_description;
           `P "Runs the full admission pipeline without any synthesis: parse \
               the netlist, map every cell onto the word-level IR (naming \
               each unsupported cell type and instance), resolve the \
               metadata sidecar by signal name, and run the mandatory uLint \
               filter.  The printed report is exactly what $(b,mupath) and \
               $(b,synthlc) gate on before touching a checker.";
           `S Manpage.s_exit_status;
           `P "0 when admitted clean, 1 when admitted with warnings, 2 when \
               rejected (unsupported cells, malformed JSON or sidecar, \
               clock-discipline or lint errors).";
         ])
    Term.(const run $ path $ meta_arg $ top $ json $ sweep)

let export_cmd =
  let run dname out meta_out gate =
    if not (List.mem dname design_names) then begin
      Printf.eprintf "export: unknown design %S (expected: %s)\n" dname
        (String.concat ", " design_names);
      exit 2
    end;
    let meta = build_design dname in
    let out =
      match out with Some o -> o | None -> meta.Designs.Meta.design_name ^ ".json"
    in
    let meta_out = Option.value meta_out ~default:(default_meta_path out) in
    let src = Builtin dname in
    let stimulus =
      match stim_kind_of src with
      | `None -> Frontend.Sidecar.S_none
      | `Core -> Frontend.Sidecar.S_core
      | `Ibex -> Frontend.Sidecar.S_ibex
      | `Cache -> Frontend.Sidecar.S_cache
    in
    let sidecar =
      Frontend.Sidecar.of_meta ~stimulus ~iuv_pc:(iuv_pc_of src) meta
    in
    let nl =
      if gate then fst (Hdl.Gateify.run meta.Designs.Meta.nl)
      else meta.Designs.Meta.nl
    in
    Out_channel.with_open_text out (fun oc ->
        output_string oc (Frontend.Yosys.export_string nl));
    Out_channel.with_open_text meta_out (fun oc ->
        output_string oc (Frontend.Json.to_string sidecar);
        output_char oc '\n');
    Printf.printf "wrote %s and %s\n" out meta_out
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Netlist output path (default: $(i,DESIGN).json in the current directory).")
  in
  let meta_out =
    Arg.(value & opt (some string) None & info [ "meta-out" ] ~docv:"FILE" ~doc:"Sidecar output path (default: derived from the netlist path).")
  in
  let dname =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN" ~doc:"Built-in design to export.")
  in
  let gate =
    Arg.(value & flag & info [ "gate-level" ] ~doc:"Lower the netlist to 1-bit gates ($(b,Hdl.Gateify)) before exporting — a post-synthesis-shaped variant of the same design.  Annotated signals keep their names, so the sidecar is unchanged and the variant admits against the same metadata.")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export a built-in design as Yosys-compatible JSON plus its \
             metadata sidecar"
       ~man:
         [
           `S Manpage.s_description;
           `P "The emitted netlist round-trips: importing it yields a \
               netlist whose digest is identical to the built-in's, which \
               is how examples/ stays honest (the committed example is a \
               checked-in $(b,export) output).";
         ])
    Term.(const run $ dname $ out $ meta_out $ gate)

(* --- designs ---------------------------------------------------------- *)

let designs_cmd =
  let run () =
    List.iter
      (fun dname ->
        let meta = build_design dname in
        let nl = meta.Designs.Meta.nl in
        Printf.printf "%-11s nodes=%5d regs=%3d inputs=%d uFSMs=%2d PCRs=%2d state-regs=%2d\n"
          dname (Hdl.Netlist.num_nodes nl)
          (List.length (Hdl.Netlist.registers nl))
          (List.length (Hdl.Netlist.inputs nl))
          (List.length meta.Designs.Meta.ufsms)
          (Designs.Meta.count_pcrs meta)
          (Designs.Meta.count_ufsm_state_regs meta);
        List.iter
          (fun (u : Designs.Meta.ufsm) ->
            Printf.printf "    %-8s states: %s\n" u.Designs.Meta.ufsm_name
              (String.concat " "
                 (List.map (fun (_, l) -> l) u.Designs.Meta.state_labels)))
          meta.Designs.Meta.ufsms)
      design_names
  in
  Cmd.v
    (Cmd.info "designs" ~doc:"Print design inventories and Table II-style annotations")
    Term.(const run $ const ())

let () =
  let doc = "RTL2MuPATH + SynthLC (MICRO 2024) reproduction toolkit" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "synthlc" ~doc)
          [
            sim_cmd;
            mupath_cmd;
            synthlc_cmd;
            scsafe_cmd;
            cache_cmd;
            lint_cmd;
            fuzz_cmd;
            import_cmd;
            export_cmd;
            designs_cmd;
          ]))
