(** Fixed-size domain work pool (OCaml 5 [Domain]/[Mutex]/[Condition]).

    The model-checking workloads RTL2MµPATH and SynthLC generate are
    embarrassingly parallel at two granularities — one task per instruction
    under verification ({!Synthlc.Engine.run}) and one checker shard per
    cover batch ({!Mupath.Synth.run}) — so a single shared pool covers
    both.  Guarantees:

    - {b order preservation}: {!map} and friends return results in input
      order, independent of completion order;
    - {b exception transparency}: if tasks raise, the exception of the
      lowest-index failing task is re-raised (with its backtrace) at the
      join point, so [jobs > 1] surfaces the same error a sequential run
      would;
    - {b nested-submission safety}: calling {!map} from inside a pool task
      runs the inner map inline in the calling domain — no deadlock on a
      fixed-size pool;
    - {b deterministic seeding}: {!derive_seed} gives every task a seed
      that is a pure function of [(base, index)], so parallel runs are
      bit-identical to sequential ones and to each other regardless of
      [jobs].

    The joining caller participates in draining the queue, so a pool of
    [jobs = n] keeps [n] domains busy (n-1 workers + the caller). *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs = 1] spawns
    none and makes every submission run inline).  Default: {!default_jobs}.
    Raises [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [SYNTHLC_JOBS] if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val derive_seed : base:int -> index:int -> int
(** A well-mixed non-negative seed that is a pure function of
    [(base, index)] — give task [i] the seed [derive_seed ~base ~index:i]
    and its RNG stream is independent of scheduling. *)

val map : t -> f:('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map], input-order-preserving. *)

val mapi : t -> f:(int -> 'a -> 'b) -> 'a list -> 'b list

val map_reduce :
  t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c -> 'a list -> 'c
(** [map] in parallel, then fold the results {e in input order} — the
    reduction is deterministic even for non-commutative [reduce]. *)

val run : t -> (unit -> 'a) list -> 'a list
(** Run a heterogeneous batch of thunks; results in input order. *)

val shutdown : t -> unit
(** Join the worker domains.  Subsequent submissions raise
    [Invalid_argument].  Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] creates a pool, applies [f], and shuts the pool
    down even if [f] raises. *)
