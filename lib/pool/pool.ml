(* Fixed-size domain work pool.  One shared FIFO feeds [jobs - 1] worker
   domains; the caller of a join drains the same queue, so [jobs] domains
   make progress and a pool is never idle while a join is pending.  Nested
   submissions from inside a task run inline (detected via a domain-local
   flag) — a fixed pool that blocked on subtasks it must itself execute
   would deadlock. *)

type task = unit -> unit

type t = {
  jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t; (* signalled on enqueue *)
  progress : Condition.t; (* broadcast on task completion *)
  queue : task Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* True inside a worker domain or inside a caller currently helping drain
   the queue — either way, further submissions must run inline. *)
let inside_task = Domain.DLS.new_key (fun () -> false)

let worker_loop t =
  Domain.DLS.set inside_task true;
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.nonempty t.mutex
    done;
    match Queue.take_opt t.queue with
    | None ->
      (* closed and drained *)
      Mutex.unlock t.mutex
    | Some task ->
      Mutex.unlock t.mutex;
      task ();
      loop ()
  in
  loop ()

let default_jobs () =
  match Sys.getenv_opt "SYNTHLC_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      progress = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Seed mixing: a 63-bit multiply/xor-shift avalanche over (base, index).
   Constants fit OCaml's native int; wrap-around is part of the mix. *)
let derive_seed ~base ~index =
  let m = 0x2545F4914F6CDD1D in
  let z = ref (((base + 1) * m) + ((index + 1) * 0x9E3779B9)) in
  z := !z lxor (!z lsr 29);
  z := !z * m;
  z := !z lxor (!z lsr 32);
  z := !z * 0x27D4EB2F165667C5;
  z := !z lxor (!z lsr 31);
  !z land max_int

type 'b cell = Pending | Done of 'b | Raised of exn * Printexc.raw_backtrace

let run_inline thunks = List.map (fun f -> f ()) thunks

let run t thunks =
  let n = List.length thunks in
  if n = 0 then []
  else if t.jobs = 1 || n = 1 || Domain.DLS.get inside_task then
    (* Inline path: sequential semantics (a raise stops the batch), used
       for trivial batches and for nested submissions. *)
    run_inline thunks
  else begin
    let results = Array.make n Pending in
    let remaining = ref n in
    let submitted_ns = if Obs.enabled () then Obs.now_ns () else 0 in
    let wrap i f () =
      let traced = Obs.enabled () in
      if traced then begin
        Obs.Metrics.incr "pool.tasks";
        Obs.Metrics.observe "pool.queue_wait_s"
          (float_of_int (Obs.now_ns () - submitted_ns) /. 1e9)
      end;
      let t0 = if traced then Obs.now_ns () else 0 in
      (match f () with
      | v -> results.(i) <- Done v
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        results.(i) <- Raised (e, bt));
      if traced then
        Obs.Metrics.observe "pool.task_run_s"
          (float_of_int (Obs.now_ns () - t0) /. 1e9);
      Mutex.lock t.mutex;
      decr remaining;
      Condition.broadcast t.progress;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool: submission to a shut-down pool"
    end;
    List.iteri (fun i f -> Queue.add (wrap i f) t.queue) thunks;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    (* Joining caller helps drain the queue.  Tasks executed here may
       themselves call [run]; flag the domain so those run inline. *)
    let saved = Domain.DLS.get inside_task in
    Domain.DLS.set inside_task true;
    let rec join () =
      Mutex.lock t.mutex;
      if !remaining = 0 then Mutex.unlock t.mutex
      else
        match Queue.take_opt t.queue with
        | Some task ->
          Mutex.unlock t.mutex;
          task ();
          join ()
        | None ->
          Condition.wait t.progress t.mutex;
          Mutex.unlock t.mutex;
          join ()
    in
    Fun.protect ~finally:(fun () -> Domain.DLS.set inside_task saved) join;
    (* Deterministic exception choice: lowest task index wins, matching
       what a sequential run would have raised first. *)
    Array.iter
      (function
        | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
        | Done _ | Pending -> ())
      results;
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Pending | Raised _ -> assert false (* remaining = 0 *))
         results)
  end

let mapi t ~f xs = run t (List.mapi (fun i x () -> f i x) xs)
let map t ~f xs = run t (List.map (fun x () -> f x) xs)

let map_reduce t ~map:m ~reduce ~init xs =
  List.fold_left reduce init (map t ~f:m xs)
