(* Cover-property checking: the model-checking interface RTL2MuPATH and
   SynthLC drive (SS V-B).  A cover property asks for any execution trace, from
   a valid reset state and subject to per-cycle assumptions, on which a given
   1-bit signal becomes true.  Three outcomes mirror the paper: [Reachable]
   (with a witness trace), [Unreachable] (with a proof kind), and
   [Undetermined] (budget exhausted).

   Engine pipeline, cheapest first:
   1. constrained-random simulation — a simulated hit proves reachability;
   2. incremental BMC over a shared unrolling — SAT proves reachability;
   3. k-induction with simple-path constraints — UNSAT step proves genuine
      unreachability;
   4. otherwise, exhausting the BMC depth without solver budget overruns
      yields a bounded unreachability verdict ([Bounded]), the analogue of
      the paper's undetermined-as-unreachable configuration (SS VII-B4).

   The SAT engines may run on an equivalence-swept copy of the netlist
   ([config.sweep]): [Hdl.Equiv.reduce] merges proven-equivalent
   combinational nodes and every engine query is translated through the
   total old->new signal mapping.  BMC witnesses are canonicalized
   (minimal hit time, then lexicographically-minimal free variables) so
   the reported witness depends only on the design's semantics, never on
   which encoding the solver happened to search — the mechanism that
   keeps report digests bit-identical across sweep modes, cache warmth,
   and gate-level vs word-level variants of one design. *)

module Netlist = Hdl.Netlist
module Solver = Sat.Solver

module Cex = struct
  (* A witness trace: values of every named signal, per cycle. *)
  type t = { length : int; values : (string * Bitvec.t array) list }

  let length t = t.length

  let value t name ~cycle =
    match List.assoc_opt name t.values with
    | None -> None
    | Some arr -> if cycle < 0 || cycle >= t.length then None else Some arr.(cycle)

  let value_exn t name ~cycle =
    match value t name ~cycle with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Cex.value_exn: %s@%d" name cycle)

  let equal a b =
    a.length = b.length
    && List.length a.values = List.length b.values
    && List.for_all2
         (fun (na, va) (nb, vb) ->
           String.equal na nb
           && Array.length va = Array.length vb
           && Array.for_all2 Bitvec.equal va vb)
         a.values b.values

  let pp fmt t =
    Format.fprintf fmt "@[<v>";
    List.iter
      (fun (name, arr) ->
        Format.fprintf fmt "%-24s" name;
        Array.iter (fun v -> Format.fprintf fmt " %s" (Bitvec.to_hex_string v)) arr;
        Format.fprintf fmt "@,")
      t.values;
    Format.fprintf fmt "@]"
end

type proof = Inductive of int | Bounded of int

type outcome = Reachable of Cex.t | Unreachable of proof | Undetermined

let outcome_tag = function
  | Reachable _ -> "reachable"
  | Unreachable (Inductive _) -> "unreachable(inductive)"
  | Unreachable (Bounded _) -> "unreachable(bounded)"
  | Undetermined -> "undetermined"

module Stats = struct
  type t = {
    mutable n_props : int;
    mutable n_reachable : int;
    mutable n_unreachable : int;
    mutable n_undetermined : int;
    mutable n_sim_discharged : int;
    mutable n_inductive : int;
    mutable n_cache_hits : int;
    mutable n_cache_misses : int;
    mutable total_time : float;
  }

  let create () =
    {
      n_props = 0;
      n_reachable = 0;
      n_unreachable = 0;
      n_undetermined = 0;
      n_sim_discharged = 0;
      n_inductive = 0;
      n_cache_hits = 0;
      n_cache_misses = 0;
      total_time = 0.;
    }

  let mean_time t = if t.n_props = 0 then 0. else t.total_time /. float_of_int t.n_props

  let merge a b =
    {
      n_props = a.n_props + b.n_props;
      n_reachable = a.n_reachable + b.n_reachable;
      n_unreachable = a.n_unreachable + b.n_unreachable;
      n_undetermined = a.n_undetermined + b.n_undetermined;
      n_sim_discharged = a.n_sim_discharged + b.n_sim_discharged;
      n_inductive = a.n_inductive + b.n_inductive;
      n_cache_hits = a.n_cache_hits + b.n_cache_hits;
      n_cache_misses = a.n_cache_misses + b.n_cache_misses;
      total_time = a.total_time +. b.total_time;
    }

  let pct_undetermined t =
    if t.n_props = 0 then 0.
    else 100. *. float_of_int t.n_undetermined /. float_of_int t.n_props

  (* Rate over cache *lookups* (hits + misses), not over all properties:
     merging stats from a checker with no cache attached must not dilute
     the rate of the checkers that do have one.  For a single cached
     checker every property is a lookup, so the two denominators agree. *)
  let hit_rate t =
    let lookups = t.n_cache_hits + t.n_cache_misses in
    if lookups = 0 then 0. else float_of_int t.n_cache_hits /. float_of_int lookups

  let copy t = merge t (create ())

  let pp fmt t =
    Format.fprintf fmt
      "props=%d reachable=%d unreachable=%d undetermined=%d (%.2f%%) sim-discharged=%d inductive=%d cache-hits=%d cache-misses=%d mean-time=%.4fs"
      t.n_props t.n_reachable t.n_unreachable t.n_undetermined (pct_undetermined t)
      t.n_sim_discharged t.n_inductive t.n_cache_hits t.n_cache_misses
      (mean_time t)
end

type sweep_mode = Sweep_off | Sweep_on | Sweep_audit

let sweep_mode_tag = function
  | Sweep_off -> "off"
  | Sweep_on -> "on"
  | Sweep_audit -> "audit"

type config = {
  bmc_depth : int;  (* maximum unrolling depth *)
  bmc_conflicts : int;  (* SAT conflict budget per BMC solve *)
  induction_max_k : int;  (* 0 disables k-induction *)
  induction_conflicts : int;
  sim_episodes : int;  (* 0 disables the simulation pre-pass *)
  sim_cycles : int;
  seed : int;
  encode_cse : bool;  (* structural hashing in the Tseitin encoding *)
  known_bits : bool;  (* known-bits substitution: BMC + induction strengthening *)
  reduce_db : bool;  (* periodic learnt-clause DB reduction *)
  portfolio_domains : int;  (* <= 1 disables portfolio racing *)
  sweep : sweep_mode;  (* SAT-sweep the netlist the engines encode *)
}

let default_config =
  {
    bmc_depth = 24;
    bmc_conflicts = 200_000;
    induction_max_k = 3;
    induction_conflicts = 50_000;
    sim_episodes = 24;
    sim_cycles = 32;
    seed = 1;
    encode_cse = true;
    known_bits = true;
    reduce_db = true;
    portfolio_domains = 1;
    sweep = Sweep_off;
  }

(* One SAT engine stack: the netlist it encodes (original, or the swept
   reduction), the total original->encoded signal map, and the shared BMC
   unrolling.  Audit mode instantiates two. *)
type engine = {
  enc_nl : Netlist.t;
  map : Netlist.signal array;
  bmc : Blast.t;
  known : (Bitvec.t * Bitvec.t) array option;
      (* Known-bits invariants shared by the BMC unrolling and every
         induction side solver (strengthening); None when the config
         flag is off. *)
  mutable ind_vars : int;
      (* Variables allocated across the short-lived induction solvers,
         cumulative — the encoder-size counter the BMC-side
         [Solver.nvars] cannot see. *)
}

type t = {
  nl : Netlist.t;
  config : config;
  assumes : Netlist.signal list;
  assume_initial : Netlist.signal list;
  stimulus : (Sim.t -> int -> unit) option;
  eng : engine;  (* swept when config.sweep is on/audit *)
  shadow : engine option;  (* unswept cross-check engine (audit mode) *)
  sweep_stats : Hdl.Equiv.stats option;
  stats : Stats.t;
  named : (string * Netlist.signal) list;
  rng : Random.State.t;
  cache : Vcache.t option;
  key_prefix : string;  (* "" when no cache is attached *)
  sigs : string array option;
      (* Name-structural per-node descriptors ([Equiv.describe_all]);
         present only in the semantic cache-key namespace, where
         cover/assume keys are built from them instead of node ids.
         Behavioral trace signatures would collide for covers the
         canonical stimulus never activates (all-zero traces), silently
         cross-serving verdicts; descriptors never collide for distinct
         cones yet still match across equivalent netlist variants. *)
}

(* The cache key covers everything a verdict depends on: the elaborated
   netlist structure, the assumption signals, every budget/seed field of
   the config, and a caller salt (for inputs the checker cannot see, e.g.
   the stimulus closure's identity).  The per-property key then appends
   the cover literals — see [cover_key]. *)
(* [encode_cse], [known_bits] and [reduce_db] are part of the key: they
   change the solver trajectory and hence which engine decides a verdict.
   [sweep] participates as its effective boolean — audit mode computes
   bit-identically to on (the unswept shadow run is a tripwire, not an
   input).  [portfolio_domains] deliberately is not — the canonical
   solver's verdict and model are bit-identical whatever the domain count
   (see Solver.solve_portfolio). *)
let config_key (config : config) =
  Printf.sprintf "c:%d.%d.%d.%d.%d.%d.%d|e:%b.%b.%b|w:%b" config.bmc_depth
    config.bmc_conflicts config.induction_max_k config.induction_conflicts
    config.sim_episodes config.sim_cycles config.seed config.encode_cse
    config.known_bits config.reduce_db (config.sweep <> Sweep_off)

let make_key_prefix ~salt ~assumes ~assume_initial ~(config : config) nl =
  Printf.sprintf "%s|a:%s|i:%s|%s|s:%s" (Netlist.digest nl)
    (String.concat "," (List.map string_of_int assumes))
    (String.concat "," (List.map string_of_int assume_initial))
    (config_key config) salt

(* Semantic namespace: the design contributes its behavioral digest and
   the assumption signals contribute name-structural descriptors, so
   equivalent netlist variants (a word-level built-in and its gate-level
   re-synthesis, say) produce the same keys and share verdicts.  Sound
   under the same caveat as sharding and cache warmth: with canonical
   witnesses the verdict and witness depend only on semantics, except
   where a conflict budget runs out — semantically-keyed sharing assumes
   budgets generous enough that no shared query lands [Undetermined]. *)
let make_semantic_key_prefix ~salt ~assumes ~assume_initial ~(config : config)
    ~(sigs : string array) nl =
  let sig_list l = String.concat "," (List.sort compare (List.map (fun s -> sigs.(s)) l)) in
  Printf.sprintf "sem1:%s|a:%s|i:%s|%s|s:%s"
    (Hdl.Equiv.semantic_digest nl)
    (sig_list assumes) (sig_list assume_initial) (config_key config) salt

let identity_map nl = Array.init (Netlist.num_nodes nl) Fun.id

let make_engine ~(config : config) ~assumes ~assume_initial ~sweep_barriers
    ~swept nl =
  let enc_nl, map, sweep_stats =
    if swept then begin
      let red, image, st = Hdl.Equiv.reduce ~barriers:sweep_barriers nl in
      if Obs.enabled () then begin
        Obs.Metrics.incr "equiv.merged" ~by:st.Hdl.Equiv.merged;
        Obs.Metrics.incr "equiv.comb_nodes" ~by:st.Hdl.Equiv.comb_nodes;
        Obs.Metrics.incr "equiv.classes" ~by:st.Hdl.Equiv.classes;
        Obs.Metrics.incr "equiv.vetoed" ~by:st.Hdl.Equiv.vetoed;
        Obs.Metrics.incr "equiv.sat_queries" ~by:st.Hdl.Equiv.sat_queries;
        Obs.Metrics.incr "equiv.patterns" ~by:st.Hdl.Equiv.patterns
      end;
      (red, image, Some st)
    end
    else (nl, identity_map nl, None)
  in
  let tr l = List.map (fun s -> map.(s)) l in
  let known =
    if config.known_bits then Some (Hdl.Absint.known_bits enc_nl) else None
  in
  let bmc =
    Blast.create ~assume_initial:(tr assume_initial) ?known
      ~cse:config.encode_cse ~initial:`Reset ~assumes:(tr assumes) enc_nl
  in
  Solver.set_reduce_db (Blast.solver bmc) config.reduce_db;
  ({ enc_nl; map; bmc; known; ind_vars = 0 }, sweep_stats)

let create ?cache ?(cache_salt = "") ?stimulus ?(config = default_config)
    ?(assume_initial = []) ?(sweep_barriers = []) ?(semantic_cache = false)
    ~assumes nl =
  Netlist.validate nl;
  let named =
    Netlist.fold_nodes nl ~init:[] ~f:(fun acc n ->
        match n.Netlist.name with
        | Some name -> (name, n.Netlist.id) :: acc
        | None -> acc)
    |> List.rev
  in
  let swept = config.sweep <> Sweep_off in
  let eng, sweep_stats =
    make_engine ~config ~assumes ~assume_initial ~sweep_barriers ~swept nl
  in
  let shadow =
    if config.sweep = Sweep_audit then
      Some
        (fst
           (make_engine ~config ~assumes ~assume_initial ~sweep_barriers
              ~swept:false nl))
    else None
  in
  let sigs =
    if semantic_cache && cache <> None then Some (Hdl.Equiv.describe_all nl)
    else None
  in
  {
    nl;
    config;
    assumes;
    assume_initial;
    stimulus;
    eng;
    shadow;
    sweep_stats;
    stats = Stats.create ();
    named;
    rng = Random.State.make [| config.seed |];
    cache;
    key_prefix =
      (match (cache, sigs) with
      | None, _ -> ""
      | Some _, Some sigs ->
        make_semantic_key_prefix ~salt:cache_salt ~assumes ~assume_initial
          ~config ~sigs nl
      | Some _, None ->
        make_key_prefix ~salt:cache_salt ~assumes ~assume_initial ~config nl);
    sigs;
  }

let stats t = t.stats
let netlist t = t.nl
let sweep_stats t = t.sweep_stats

let cex_of_model t eng ~upto =
  let values =
    List.map
      (fun (name, s) ->
        ( name,
          Array.init (upto + 1) (fun time ->
              Blast.model_value eng.bmc eng.map.(s) ~time) ))
      t.named
  in
  { Cex.length = upto + 1; values }

(* --- simulation pre-pass ------------------------------------------------ *)

(* Drive one random episode; return the cycle where [cover] held, if any.
   Aborts (returns None) as soon as an assumption is violated, which keeps
   the pre-pass sound: only assumption-respecting traces can witness. *)
let cover_holds sim cover =
  List.for_all (fun (s, pol) -> Sim.peek_bool sim s = pol) cover

(* Drive one random episode, recording named signals as it goes; return the
   recorded witness if the cover fired.  Aborts as soon as an assumption is
   violated, which keeps the pre-pass sound: only assumption-respecting
   traces can witness.  Always runs on the original netlist — the pre-pass
   is identical whatever the sweep mode. *)
let sim_episode t cover seed =
  let sim = Sim.create ~seed t.nl in
  let rows = ref [] in
  let ok = ref true in
  let hit = ref None in
  let c = ref 0 in
  while !ok && !hit = None && !c < t.config.sim_cycles do
    (match t.stimulus with
    | Some f -> f sim !c
    | None -> Sim.poke_random_inputs sim);
    Sim.eval sim;
    let assumes_ok =
      List.for_all (fun a -> Sim.peek_bool sim a) t.assumes
      && (!c > 0 || List.for_all (fun a -> Sim.peek_bool sim a) t.assume_initial)
    in
    if not assumes_ok then ok := false
    else begin
      rows := List.map (fun (_, s) -> Sim.peek sim s) t.named :: !rows;
      if cover_holds sim cover then hit := Some !c;
      Sim.step sim;
      incr c
    end
  done;
  match !hit with
  | None -> None
  | Some upto ->
    let rows = Array.of_list (List.rev !rows) in
    let values =
      List.mapi
        (fun i (name, _) -> (name, Array.init (upto + 1) (fun c_ -> List.nth rows.(c_) i)))
        t.named
    in
    Some { Cex.length = upto + 1; values }

(* Also reports how many seeds were drawn from [t.rng]: a cache hit must
   replay exactly that many draws (see [check_cover]) so the RNG stream
   seen by later properties is independent of which verdicts were cached. *)
let try_simulation t cover =
  let rec go ep =
    if ep >= t.config.sim_episodes then (None, ep)
    else
      let seed = Random.State.int t.rng 0x3FFFFFFF in
      match sim_episode t cover seed with
      | Some cex -> (Some cex, ep + 1)
      | None -> go (ep + 1)
  in
  go 0

(* --- k-induction --------------------------------------------------------- *)

(* Prove [cover] unreachable by k-induction with simple-path constraints.
   The induction solver starts from a free state; hypothesis units not-bad@i
   and pairwise state-distinctness accumulate as k grows. *)
let try_induction t eng cover =
  if t.config.induction_max_k = 0 then None
  else begin
    (* Hypothesis units are specific to one cover, so each attempt gets a
       fresh unrolling. *)
    let ind =
      Blast.create ?known:eng.known ~cse:t.config.encode_cse ~initial:`Free
        ~assumes:(List.map (fun s -> eng.map.(s)) t.assumes)
        eng.enc_nl
    in
    Solver.set_reduce_db (Blast.solver ind) t.config.reduce_db;
    let lits_at time =
      List.map
        (fun (s, pol) ->
          let l = Blast.lit1 ind eng.map.(s) ~time in
          if pol then l else Solver.negate l)
        cover
    in
    let hyp_depth = ref 0 in
    let rec go k =
      if k > t.config.induction_max_k then None
      else begin
        Blast.ensure_depth ind k;
        (* Hypothesis: not bad at steps < k; pairwise-distinct states. *)
        for i = !hyp_depth to k - 1 do
          Solver.add_clause (Blast.solver ind) (List.map Solver.negate (lits_at i))
        done;
        hyp_depth := max !hyp_depth k;
        if k >= 1 then
          for i = 0 to k - 1 do
            Blast.add_state_distinct ind i k
          done;
        match
          Solver.solve ~assumptions:(lits_at k)
            ~max_conflicts:t.config.induction_conflicts (Blast.solver ind)
        with
        | Solver.Unsat -> Some k
        | Solver.Sat -> go (k + 1)
        | Solver.Unknown -> None
      end
    in
    let r = go 0 in
    let nv = Solver.nvars (Blast.solver ind) in
    eng.ind_vars <- eng.ind_vars + nv;
    if Obs.enabled () then Obs.Metrics.incr "sat.ind_vars" ~by:nv;
    r
  end

(* --- canonical witnesses -------------------------------------------------- *)

(* After a Sat BMC query, the raw model is an artifact of the encoding and
   the solver's trajectory: the swept and unswept CNFs are equisatisfiable
   over the design's free variables but return different models.  The
   reported witness is therefore canonicalized:

   1. minimal hit time — the earliest per-time gate that is satisfiable;
   2. lexicographically minimal free variables (symbolic-init register
      bits at time 0, then primary-input bits per time), in a fixed
      time-major, id-major, LSB-first order, preferring 0 — found with
      incremental solves under a growing assumption list, skipping solves
      for bits the current model already has at 0;
   3. one final solve under the full assumption list, whose model is read.

   The result depends only on the design's semantics (and the budgets),
   so report digests agree across sweep modes, cache warmth and
   equivalent netlist variants.  A budget overrun mid-minimization
   degrades to best-effort (the bit keeps its current model value); the
   audit tripwire is the backstop. *)
let canonical_witness t eng ~gates ~default_upto =
  let s = Blast.solver eng.bmc in
  let budget = t.config.bmc_conflicts in
  let model_upto =
    match List.find_opt (fun (_, g) -> Solver.lit_value s g) gates with
    | Some (time, _) -> time
    | None -> default_upto
  in
  let gate_at time = List.assoc time gates in
  (* 1. Minimal hit time: scan upward; a budget overrun counts as a miss
     (best effort — never unsound, the gate implies the cover). *)
  let rec scan time =
    if time >= model_upto then model_upto
    else
      match Solver.solve ~assumptions:[ gate_at time ] ~max_conflicts:budget s with
      | Solver.Sat -> time
      | Solver.Unsat | Solver.Unknown -> scan (time + 1)
  in
  let upto = scan 0 in
  (* Re-establish a model for the chosen time (scan may have ended on an
     Unsat step or skipped solving entirely). *)
  (match Solver.solve ~assumptions:[ gate_at upto ] ~max_conflicts:budget s with
  | Solver.Sat -> ()
  | _ -> failwith "Checker: canonical witness lost the satisfying model");
  (* 2. The free variables, in canonical order. *)
  let free =
    let sym_regs =
      List.filter
        (fun r ->
          match (Netlist.node t.nl r).Netlist.kind with
          | Netlist.Reg { init = Netlist.Init_symbolic; _ } -> true
          | _ -> false)
        (Netlist.registers t.nl)
    in
    let reg_bits =
      List.concat_map
        (fun r -> Array.to_list (Blast.lits eng.bmc eng.map.(r) ~time:0))
        sym_regs
    in
    let input_bits =
      List.concat_map
        (fun time ->
          List.concat_map
            (fun i -> Array.to_list (Blast.lits eng.bmc eng.map.(i) ~time))
            (Netlist.inputs t.nl))
        (List.init (upto + 1) Fun.id)
    in
    Array.of_list (reg_bits @ input_bits)
  in
  let nfree = Array.length free in
  let model = Array.map (fun l -> Solver.lit_value s l) free in
  let capture from =
    for j = from to nfree - 1 do
      model.(j) <- Solver.lit_value s free.(j)
    done
  in
  let fixed = ref [ gate_at upto ] in
  for i = 0 to nfree - 1 do
    let l = free.(i) in
    if not model.(i) then fixed := Solver.negate l :: !fixed
    else
      match
        Solver.solve ~assumptions:(Solver.negate l :: !fixed) ~max_conflicts:budget s
      with
      | Solver.Sat ->
        capture i;
        fixed := Solver.negate l :: !fixed
      | Solver.Unsat | Solver.Unknown -> fixed := l :: !fixed
  done;
  (* 3. Final model under the full pin-down; the free variables are fully
     assigned, so this is satisfiable by construction. *)
  (match Solver.solve ~assumptions:!fixed s with
  | Solver.Sat -> ()
  | _ -> failwith "Checker: canonical witness pin-down unsatisfiable");
  upto

(* --- verdict cache entries ---------------------------------------------- *)

(* What a warm run needs to be indistinguishable from the cold one: the
   outcome itself (witness traces included, so harvesting replays), whether
   the sim pre-pass discharged it (stats fidelity), and how many RNG draws
   the pre-pass consumed (stream fidelity for subsequent properties). *)
type cache_entry = { ce_outcome : outcome; ce_sim : bool; ce_draws : int }

(* '\002': canonical witnesses changed which model a Sat BMC query
   reports, so entries written by older binaries must miss. *)
let codec_version = '\002'

let encode_entry (e : cache_entry) =
  Printf.sprintf "%c%s" codec_version (Marshal.to_string e [])

let decode_entry blob =
  if String.length blob < 1 || blob.[0] <> codec_version then None
  else
    match (Marshal.from_string blob 1 : cache_entry) with
    | e -> Some e
    | exception _ -> None

let cover_key t cover =
  let lit (s, pol) =
    match t.sigs with
    | Some sigs -> sigs.(s) ^ if pol then "+" else "-"
    | None -> string_of_int s ^ if pol then "+" else "-"
  in
  (* Semantic keys sort the literals: equivalent variants may construct
     the same cover in a different order. *)
  let lits = List.map lit cover in
  let lits = if t.sigs = None then lits else List.sort compare lits in
  Digest.to_hex (Digest.string (t.key_prefix ^ "|p:" ^ String.concat "," lits))

(* --- main entry ----------------------------------------------------------- *)

let debug =
  match Sys.getenv_opt "CHECKER_DEBUG" with Some ("1" | "true") -> true | _ -> false

(* SAT phases (induction, then single-shot BMC) on one engine.  The sim
   pre-pass has already run (shared across engines). *)
let compute_sat t eng cover =
  (* k-induction: a genuine unreachability proof, attempted first
     because it is far cheaper than a deep UNSAT BMC sweep.  The step
     proof alone is unsound without its base case (the cover could hold
     within the first k steps from reset — e.g. via symbolic initial
     state), so verify the base with a small BMC before concluding. *)
  let base_holds k =
    (* no cover at times 0..k-1 from the reset state *)
    k = 0
    ||
    (Blast.ensure_depth eng.bmc (k - 1);
     let s = Blast.solver eng.bmc in
     let act = Solver.pos (Solver.new_var s) in
     let gates =
       List.init k (fun time ->
           let g = Solver.pos (Solver.new_var s) in
           List.iter
             (fun (sig_, pol) ->
               let l = Blast.lit1 eng.bmc eng.map.(sig_) ~time in
               let l = if pol then l else Solver.negate l in
               Solver.add_clause s [ Solver.negate g; l ])
             cover;
           g)
     in
     Solver.add_clause s (Solver.negate act :: gates);
     let r = Solver.solve ~assumptions:[ act ] ~max_conflicts:t.config.bmc_conflicts s in
     Solver.add_clause s [ Solver.negate act ];
     r = Solver.Unsat)
  in
  match try_induction t eng cover with
  | Some k when base_holds k -> Unreachable (Inductive k)
  | _ -> (
    (* Single-shot BMC over all depths: one activation-gated
       disjunction OR_t cover@t; SAT yields a witness, UNSAT proves
       bounded unreachability in one solve. *)
    Blast.ensure_depth eng.bmc t.config.bmc_depth;
    let s = Blast.solver eng.bmc in
    let gates =
      List.init (t.config.bmc_depth + 1) (fun time ->
          let g = Solver.pos (Solver.new_var s) in
          List.iter
            (fun (sig_, pol) ->
              let l = Blast.lit1 eng.bmc eng.map.(sig_) ~time in
              let l = if pol then l else Solver.negate l in
              Solver.add_clause s [ Solver.negate g; l ])
            cover;
          (time, g))
    in
    let act = Solver.pos (Solver.new_var s) in
    Solver.add_clause s (Solver.negate act :: List.map snd gates);
    let result =
      if t.config.portfolio_domains > 1 then begin
        let pr =
          Solver.solve_portfolio ~assumptions:[ act ]
            ~max_conflicts:t.config.bmc_conflicts
            ~domains:t.config.portfolio_domains s
        in
        if Obs.enabled () then begin
          Obs.Metrics.incr "sat.portfolio_solves";
          Obs.Metrics.incr "sat.portfolio_shared" ~by:pr.Solver.p_shared;
          Obs.Metrics.incr "sat.portfolio_imported" ~by:pr.Solver.p_imported;
          Obs.Metrics.incr "sat.portfolio_racer_decisive"
            ~by:pr.Solver.p_racer_decisive
        end;
        pr.Solver.p_result
      end
      else
        Solver.solve ~assumptions:[ act ] ~max_conflicts:t.config.bmc_conflicts
          s
    in
    (* Retire this property's activation clause. *)
    Solver.add_clause s [ Solver.negate act ];
    match result with
    | Solver.Sat ->
      let upto =
        canonical_witness t eng ~gates ~default_upto:t.config.bmc_depth
      in
      Reachable (cex_of_model t eng ~upto)
    | Solver.Unsat -> Unreachable (Bounded t.config.bmc_depth)
    | Solver.Unknown -> Undetermined)

(* The engine pipeline proper: returns (outcome, discharged-by-sim, RNG
   draws consumed by the sim pre-pass).  In audit mode the SAT phases run
   twice — swept and unswept — and any verdict or witness divergence is a
   soundness bug in the sweep, so it trips a hard failure. *)
let compute_cover t cover =
  (* 1. simulation pre-pass (shared by both engines: it runs on the
     original netlist and consumes the RNG stream exactly once). *)
  let sim_result =
    if Obs.enabled () then
      Obs.with_span "checker.sim_prepass" (fun () -> try_simulation t cover)
    else try_simulation t cover
  in
  match sim_result with
  | Some cex, draws -> (Reachable cex, true, draws)
  | None, draws ->
    let outcome = compute_sat t t.eng cover in
    (match t.shadow with
    | None -> ()
    | Some shadow ->
      let unswept = compute_sat t shadow cover in
      let divergence =
        match (outcome, unswept) with
        | Reachable a, Reachable b ->
          if Cex.equal a b then None else Some "witness mismatch"
        | Unreachable _, Unreachable _ | Undetermined, Undetermined -> None
        | a, b ->
          Some
            (Printf.sprintf "verdict mismatch: swept=%s unswept=%s"
               (outcome_tag a) (outcome_tag b))
      in
      (match divergence with
      | Some what ->
        failwith
          (Printf.sprintf
             "Checker sweep audit: %s on %s — the equivalence sweep changed \
              an outcome"
             what (Netlist.name t.nl))
      | None -> ()));
    (outcome, false, draws)

let check_cover ?name t cover =
  let t0 = Unix.gettimeofday () in
  (* Snapshots for the per-property sat.* metrics; deltas are taken over the
     shared BMC solver (the induction pass uses short-lived solvers whose
     work is not attributed here). *)
  let bmc_s = Blast.solver t.eng.bmc in
  let c0 = Solver.num_conflicts bmc_s in
  let p0 = Solver.num_propagations bmc_s in
  let r0 = Solver.num_reduces bmc_s in
  let h0, l0 = Blast.cse_stats t.eng.bmc in
  let finish ~hit ~sim_discharged outcome =
    t.stats.Stats.n_props <- t.stats.Stats.n_props + 1;
    t.stats.Stats.total_time <- t.stats.Stats.total_time +. Unix.gettimeofday () -. t0;
    if sim_discharged then
      t.stats.Stats.n_sim_discharged <- t.stats.Stats.n_sim_discharged + 1;
    (match hit with
    | None -> ()
    | Some true -> t.stats.Stats.n_cache_hits <- t.stats.Stats.n_cache_hits + 1
    | Some false -> t.stats.Stats.n_cache_misses <- t.stats.Stats.n_cache_misses + 1);
    (match outcome with
    | Reachable _ -> t.stats.Stats.n_reachable <- t.stats.Stats.n_reachable + 1
    | Unreachable p ->
      t.stats.Stats.n_unreachable <- t.stats.Stats.n_unreachable + 1;
      (match p with
      | Inductive _ -> t.stats.Stats.n_inductive <- t.stats.Stats.n_inductive + 1
      | Bounded _ -> ())
    | Undetermined -> t.stats.Stats.n_undetermined <- t.stats.Stats.n_undetermined + 1);
    if Obs.enabled () then begin
      Obs.Metrics.incr "checker.props";
      Obs.Metrics.incr "checker.outcome" ~labels:[ ("tag", outcome_tag outcome) ];
      if sim_discharged then Obs.Metrics.incr "checker.sim_discharged";
      (match hit with
      | None -> ()
      | Some true -> Obs.Metrics.incr "cache.hits"
      | Some false -> Obs.Metrics.incr "cache.misses");
      Obs.Metrics.observe "checker.check_time_s" (Unix.gettimeofday () -. t0);
      Obs.Metrics.observe "sat.conflicts"
        (float_of_int (Solver.num_conflicts bmc_s - c0));
      Obs.Metrics.observe "sat.propagations"
        (float_of_int (Solver.num_propagations bmc_s - p0));
      Obs.Metrics.gauge "sat.learnt_db" (float_of_int (Solver.num_learnts bmc_s));
      Obs.Metrics.gauge "sat.learnt_peak"
        (float_of_int (Solver.learnt_peak bmc_s));
      Obs.Metrics.gauge "sat.vars" (float_of_int (Solver.nvars bmc_s));
      Obs.Metrics.incr "sat.reduce_events" ~by:(Solver.num_reduces bmc_s - r0);
      let hits, lookups = Blast.cse_stats t.eng.bmc in
      Obs.Metrics.incr "sat.cse_hits" ~by:(hits - h0);
      Obs.Metrics.incr "sat.cse_lookups" ~by:(lookups - l0)
    end;
    if debug then
      Printf.eprintf "[checker] %-12s %-24s %.2fs%s\n%!"
        (Option.value name ~default:"?") (outcome_tag outcome)
        (Unix.gettimeofday () -. t0)
        (if hit = Some true then " (cached)" else "");
    outcome
  in
  List.iter
    (fun (s, _) ->
      if Netlist.width t.nl s <> 1 then
        invalid_arg "Checker.check_cover: cover literals must be 1 bit")
    cover;
  let dispatch () =
    match t.cache with
    | None ->
      let outcome, sim_discharged, _draws = compute_cover t cover in
      finish ~hit:None ~sim_discharged outcome
    | Some cache -> (
      let key = cover_key t cover in
      (* Audit mode never *serves* from the cache — the point is to run
         both engines and compare — but it still stores, so an audited
         cold run warms the cache for subsequent on-mode runs. *)
      let cached =
        if t.config.sweep = Sweep_audit then None
        else Option.bind (Vcache.find cache key) decode_entry
      in
      match cached with
      | Some e ->
        (* Replay the RNG draws the cold run's sim pre-pass consumed, so the
           stream later properties see is the same whether or not this
           verdict came from the cache. *)
        for _ = 1 to e.ce_draws do
          ignore (Random.State.int t.rng 0x3FFFFFFF)
        done;
        finish ~hit:(Some true) ~sim_discharged:e.ce_sim e.ce_outcome
      | None ->
        let outcome, sim_discharged, draws = compute_cover t cover in
        Vcache.add cache key
          (encode_entry
             { ce_outcome = outcome; ce_sim = sim_discharged; ce_draws = draws });
        finish ~hit:(Some false) ~sim_discharged outcome)
  in
  if Obs.enabled () then
    Obs.with_span "checker.check_cover"
      ~args:(match name with Some n -> [ ("prop", n) ] | None -> [])
      dispatch
  else dispatch ()

(* --- solver introspection ------------------------------------------------ *)

let dump_cnf t = Sat.Dimacs.of_solver (Blast.solver t.eng.bmc)

type sat_stats = {
  ss_conflicts : int;
  ss_propagations : int;
  ss_learnts : int;
  ss_learnt_peak : int;
  ss_reduces : int;
  ss_cse_hits : int;
  ss_cse_lookups : int;
  ss_vars : int;
  ss_ind_vars : int;
}

let sat_stats t =
  let s = Blast.solver t.eng.bmc in
  let hits, lookups = Blast.cse_stats t.eng.bmc in
  {
    ss_conflicts = Solver.num_conflicts s;
    ss_propagations = Solver.num_propagations s;
    ss_learnts = Solver.num_learnts s;
    ss_learnt_peak = Solver.learnt_peak s;
    ss_reduces = Solver.num_reduces s;
    ss_cse_hits = hits;
    ss_cse_lookups = lookups;
    ss_vars = Solver.nvars s;
    ss_ind_vars =
      (t.eng.ind_vars
      + match t.shadow with None -> 0 | Some e -> e.ind_vars);
  }
