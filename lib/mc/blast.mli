(** Incremental bit-blasting of a netlist into a SAT solver.

    An [unrolling] maintains, inside one {!Sat.Solver.t}, a time-indexed copy
    of a netlist's combinational logic plus its register transition relation.
    Each signal bit at each time step maps to a SAT literal.  The unrolling
    is extended lazily with {!ensure_depth}; thousands of cover properties
    over the same design share one unrolling (and its learned clauses),
    which is what makes the paper's property-count workloads tractable.

    Two initial-state modes support the two proof engines:
    - [`Reset]: registers take their reset value at time 0 ([Init_symbolic]
      registers get free variables) — used by BMC from the valid reset state
      (§V-B).
    - [`Free]: all registers are unconstrained at time 0 — used by the
      inductive step of k-induction. *)

type t

val create :
  ?assume_initial:Hdl.Netlist.signal list ->
  ?known:(Bitvec.t * Bitvec.t) array ->
  ?cse:bool ->
  initial:[ `Reset | `Free ] ->
  assumes:Hdl.Netlist.signal list ->
  Hdl.Netlist.t ->
  t
(** [assumes] are 1-bit signals constrained to 1 at {e every} unrolled time
    step; [assume_initial] only at time 0.

    [known] optionally supplies per-signal known-bits invariants
    ({!Hdl.Absint.known_bits} of the same netlist): proven bits encode as
    the constant true/false literal instead of fresh variables — a fully
    proven node builds no gates at all — and constant folding in the gate
    helpers then shrinks everything downstream, on top of [cse].  Sound
    under [`Reset] because the invariants hold in every reachable state
    from reset at every cycle (there the substitution is also subsumed by
    per-step folding of the reset constants, so it never changes the
    encoding); sound under [`Free] because the known-bits fixpoint is an
    {e inductive} invariant — closed under the transition relation from
    any conforming state — so the substitution restricts the free initial
    state exactly to the invariant, the standard strengthening of
    k-induction.  The [`Free] unrolling is where the CNF actually shrinks
    (free registers' proven bits stop being variables), and where the
    strengthening can prove covers unreachable that plain induction
    cannot.

    [cse] (default [true]) enables structural hashing of the Tseitin
    encoding: AND/XOR gates (and everything built on them — OR, mux,
    adders, comparators) are keyed on their operand literals with sign
    normalization and constant folding, so identical subterms across time
    steps and across covers map to a single literal instead of being
    re-encoded.  Purely an encoding-size optimization: the encoded function
    is unchanged. *)

val solver : t -> Sat.Solver.t
val depth : t -> int
(** Number of time steps currently encoded (steps [0 .. depth - 1]). *)

val ensure_depth : t -> int -> unit
(** [ensure_depth t k] extends the unrolling so steps [0..k] exist. *)

val lits : t -> Hdl.Netlist.signal -> time:int -> Sat.Solver.lit array
(** The literals of a signal's bits at a time step (LSB first).
    The step must already be encoded. *)

val lit1 : t -> Hdl.Netlist.signal -> time:int -> Sat.Solver.lit
(** The literal of a 1-bit signal. *)

val model_value : t -> Hdl.Netlist.signal -> time:int -> Bitvec.t
(** Read a signal's value from the most recent satisfying model. *)

val lit_true : t -> Sat.Solver.lit
(** A literal constrained to true (handy for building assumptions). *)

val cse_stats : t -> int * int
(** [(hits, lookups)] of the structural-hashing cache; [(0, 0)] when
    [cse:false].  The hit rate measures how much encoding was shared. *)

val add_state_distinct : t -> int -> int -> unit
(** [add_state_distinct t i j] adds clauses forcing the register states at
    times [i] and [j] to differ — the simple-path constraint that makes
    k-induction complete for finite systems. *)
