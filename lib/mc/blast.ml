module Netlist = Hdl.Netlist
module Solver = Sat.Solver

type t = {
  nl : Netlist.t;
  order : Netlist.signal array;
  s : Solver.t;
  initial : [ `Reset | `Free ];
  assumes : Netlist.signal list;
  assume_initial : Netlist.signal list;
  true_lit : Solver.lit;
  false_lit : Solver.lit;
  mutable steps : Solver.lit array array list; (* reversed: per time, per node, lit array *)
  mutable depth : int;
  known : (Bitvec.t * Bitvec.t) array option;
      (* Known-bits invariants ([Hdl.Absint.known_bits] of [nl]): proven
         bits encode as the true/false literal instead of fresh variables,
         and constant folding in the gate helpers shrinks everything
         downstream.  Sound under [`Reset] because the facts hold in every
         reachable state; sound under [`Free] because the fixpoint is an
         inductive invariant (closed under the abstract transfer from any
         conforming state), so substituting its constant bits restricts
         the free states exactly to the invariant — standard strengthening
         for relative induction.  Under [`Reset] the substitution is
         subsumed by per-step constant folding of the reset values (it
         never changes the encoding); the [`Free] unrolling is where it
         shrinks the CNF. *)
  cse : bool;
  cse_tbl : (int * int * int, Solver.lit) Hashtbl.t;
      (* Structural hashing of gate outputs, keyed on (gate tag, operand
         literals).  Constant folding runs first, so keys never contain the
         true/false literal; all cached gates are permanent level-0
         definitions, so entries stay valid for the lifetime of [t]. *)
  mutable cse_hits : int;
  mutable cse_lookups : int;
}

let solver t = t.s
let depth t = t.depth
let lit_true t = t.true_lit
let cse_stats t = (t.cse_hits, t.cse_lookups)

(* --- gate helpers ------------------------------------------------------ *)

let fresh t = Solver.pos (Solver.new_var t.s)

let g_and t a b =
  if a = t.false_lit || b = t.false_lit then t.false_lit
  else if a = t.true_lit then b
  else if b = t.true_lit then a
  else if a = b then a
  else if a = Solver.negate b then t.false_lit
  else begin
    let key = (0, min a b, max a b) in
    let cached =
      if t.cse then begin
        t.cse_lookups <- t.cse_lookups + 1;
        Hashtbl.find_opt t.cse_tbl key
      end
      else None
    in
    match cached with
    | Some z ->
      t.cse_hits <- t.cse_hits + 1;
      z
    | None ->
      let z = fresh t in
      Solver.add_clause t.s [ Solver.negate z; a ];
      Solver.add_clause t.s [ Solver.negate z; b ];
      Solver.add_clause t.s [ z; Solver.negate a; Solver.negate b ];
      if t.cse then Hashtbl.replace t.cse_tbl key z;
      z
  end

let g_or t a b = Solver.negate (g_and t (Solver.negate a) (Solver.negate b))

let g_xor t a b =
  if a = t.false_lit then b
  else if b = t.false_lit then a
  else if a = t.true_lit then Solver.negate b
  else if b = t.true_lit then Solver.negate a
  else if a = b then t.false_lit
  else if a = Solver.negate b then t.true_lit
  else begin
    (* XOR is invariant under sign normalization: a^b = (a0^b0) ^ parity,
       where a0/b0 strip the sign bits.  Cache the positive form once and
       re-sign the cached output, so all four polarity variants of the same
       gate collapse into one definition. *)
    let sign = (a land 1) lxor (b land 1) in
    let a0 = a land lnot 1 and b0 = b land lnot 1 in
    let key = (1, min a0 b0, max a0 b0) in
    let cached =
      if t.cse then begin
        t.cse_lookups <- t.cse_lookups + 1;
        Hashtbl.find_opt t.cse_tbl key
      end
      else None
    in
    match cached with
    | Some z0 ->
      t.cse_hits <- t.cse_hits + 1;
      z0 lxor sign
    | None ->
      let z = fresh t in
      Solver.add_clause t.s [ Solver.negate z; a; b ];
      Solver.add_clause t.s [ Solver.negate z; Solver.negate a; Solver.negate b ];
      Solver.add_clause t.s [ z; Solver.negate a; b ];
      Solver.add_clause t.s [ z; a; Solver.negate b ];
      if t.cse then Hashtbl.replace t.cse_tbl key (z lxor sign);
      z
  end

let g_mux t sel a b =
  (* sel=1 -> a, sel=0 -> b *)
  if sel = t.true_lit then a
  else if sel = t.false_lit then b
  else if a = b then a
  else g_or t (g_and t sel a) (g_and t (Solver.negate sel) b)

let g_and_reduce t lits = Array.fold_left (g_and t) t.true_lit lits
let g_or_reduce t lits = Array.fold_left (g_or t) t.false_lit lits

(* Full adder: returns (sum, carry). *)
let g_fulladd t a b c =
  let s1 = g_xor t a b in
  let sum = g_xor t s1 c in
  let carry = g_or t (g_and t a b) (g_and t c s1) in
  (sum, carry)

let g_adder t ?(cin = None) a_bits b_bits =
  let n = Array.length a_bits in
  let out = Array.make n t.false_lit in
  let carry = ref (match cin with Some c -> c | None -> t.false_lit) in
  for i = 0 to n - 1 do
    let s, c = g_fulladd t a_bits.(i) b_bits.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  out

(* Unsigned a < b via LSB-to-MSB fold: higher bits override lower ones. *)
let g_ult t a_bits b_bits =
  let n = Array.length a_bits in
  let r = ref t.false_lit in
  for i = 0 to n - 1 do
    let lt_i = g_and t (Solver.negate a_bits.(i)) b_bits.(i) in
    let eq_i = Solver.negate (g_xor t a_bits.(i) b_bits.(i)) in
    r := g_or t lt_i (g_and t eq_i !r)
  done;
  !r

let const_lits t v =
  Array.init (Bitvec.width v) (fun i ->
      if Bitvec.bit v i then t.true_lit else t.false_lit)

(* --- node encoding ------------------------------------------------------ *)

(* Proven-constant literals for a node, when every bit is known: the node
   encodes as constants and builds no gates at all. *)
let fully_known_lits t id =
  match t.known with
  | None -> None
  | Some kb ->
    let kn, v = kb.(id) in
    if Bitvec.is_ones kn then Some (const_lits t v) else None

(* Overlay the proven bits of a partially-known node onto its encoded
   literals (a fresh array: step literals are shared across nodes). *)
let overlay_known t id lits_arr =
  match t.known with
  | None -> lits_arr
  | Some kb ->
    let kn, v = kb.(id) in
    if Bitvec.is_zero kn then lits_arr
    else
      Array.mapi
        (fun i l ->
          if Bitvec.bit kn i then
            if Bitvec.bit v i then t.true_lit else t.false_lit
          else l)
        lits_arr

let encode_node_gates t step prev_step time id =
  let open Netlist in
  let n = node t.nl id in
  let w = n.width in
  let lits_of s = step.(s) in
  (match n.kind with
  | Input -> step.(id) <- Array.init w (fun _ -> fresh t)
  | Const v -> step.(id) <- const_lits t v
  | Reg { init; next; enable } ->
    if time = 0 then
      step.(id) <-
        (match (t.initial, init) with
        | `Reset, Init_value v -> const_lits t v
        | `Reset, Init_symbolic | `Free, _ -> Array.init w (fun _ -> fresh t))
    else begin
      let prev = Option.get prev_step in
      let nxt = prev.(Option.get next) in
      let cur = prev.(id) in
      step.(id) <-
        (match enable with
        | None -> nxt
        | Some en ->
          let e = prev.(en).(0) in
          Array.init w (fun i -> g_mux t e nxt.(i) cur.(i)))
    end
  | Wire { driver } -> step.(id) <- lits_of (Option.get driver)
  | Not a -> step.(id) <- Array.map Solver.negate (lits_of a)
  | Op2 (op, a, b) ->
    let la = lits_of a and lb = lits_of b in
    step.(id) <-
      (match op with
      | And -> Array.init w (fun i -> g_and t la.(i) lb.(i))
      | Or -> Array.init w (fun i -> g_or t la.(i) lb.(i))
      | Xor -> Array.init w (fun i -> g_xor t la.(i) lb.(i))
      | Add -> g_adder t la lb
      | Sub ->
        (* a - b = a + ~b + 1 *)
        g_adder t ~cin:(Some t.true_lit) la (Array.map Solver.negate lb)
      | Mul ->
        (* Shift-and-add over the operand width; result truncated to w. *)
        let wa = Array.length la in
        let acc = ref (Array.make wa t.false_lit) in
        for i = 0 to wa - 1 do
          (* partial product of a shifted by i, gated by b_i *)
          let pp =
            Array.init wa (fun j ->
                if j < i then t.false_lit else g_and t la.(j - i) lb.(i))
          in
          acc := g_adder t !acc pp
        done;
        !acc
      | Eq ->
        let eqs =
          Array.init (Array.length la) (fun i ->
              Solver.negate (g_xor t la.(i) lb.(i)))
        in
        [| g_and_reduce t eqs |]
      | Ult -> [| g_ult t la lb |]
      | Slt ->
        (* Flip sign bits, then unsigned compare. *)
        let flip l =
          let l = Array.copy l in
          let top = Array.length l - 1 in
          l.(top) <- Solver.negate l.(top);
          l
        in
        [| g_ult t (flip la) (flip lb) |])
  | Mux { sel; on_true; on_false } ->
    let s = (lits_of sel).(0) in
    let a = lits_of on_true and b = lits_of on_false in
    step.(id) <- Array.init w (fun i -> g_mux t s a.(i) b.(i))
  | Extract { hi = _; lo; arg } ->
    let l = lits_of arg in
    step.(id) <- Array.init w (fun i -> l.(lo + i))
  | Concat parts ->
    (* Head of the list is the most significant part. *)
    let rev = List.rev parts in
    let out = Array.make w t.false_lit in
    let pos = ref 0 in
    List.iter
      (fun p ->
        let l = lits_of p in
        Array.iteri (fun i li -> out.(!pos + i) <- li) l;
        pos := !pos + Array.length l)
      rev;
    step.(id) <- out
  | ReduceOr a -> step.(id) <- [| g_or_reduce t (lits_of a) |]
  | ReduceAnd a -> step.(id) <- [| g_and_reduce t (lits_of a) |]);
  match n.kind with
  | Input -> () (* inputs are free by definition: nothing is provable *)
  | _ -> step.(id) <- overlay_known t id step.(id)

let encode_node t step prev_step time id =
  match fully_known_lits t id with
  | Some lits when (Netlist.node t.nl id).Netlist.kind <> Netlist.Input ->
    step.(id) <- lits
  | _ -> encode_node_gates t step prev_step time id

let encode_step t =
  let time = t.depth in
  let prev_step = match t.steps with [] -> None | s :: _ -> Some s in
  let step = Array.make (Netlist.num_nodes t.nl) [||] in
  Array.iter (fun id -> encode_node t step prev_step time id) t.order;
  t.steps <- step :: t.steps;
  t.depth <- t.depth + 1;
  (* Pin assumptions for this step. *)
  List.iter (fun a -> Solver.add_clause t.s [ step.(a).(0) ]) t.assumes;
  if time = 0 then
    List.iter (fun a -> Solver.add_clause t.s [ step.(a).(0) ]) t.assume_initial

let ensure_depth t k =
  while t.depth <= k do
    encode_step t
  done

let create ?(assume_initial = []) ?known ?(cse = true) ~initial ~assumes nl =
  Netlist.validate nl;
  let s = Solver.create () in
  let tv = Solver.pos (Solver.new_var s) in
  Solver.add_clause s [ tv ];
  let t =
    {
      nl;
      order = Netlist.comb_order nl;
      s;
      initial;
      assumes;
      assume_initial;
      true_lit = tv;
      false_lit = Solver.negate tv;
      steps = [];
      depth = 0;
      known;
      cse;
      cse_tbl = Hashtbl.create 1024;
      cse_hits = 0;
      cse_lookups = 0;
    }
  in
  List.iter
    (fun a ->
      if Netlist.width nl a <> 1 then invalid_arg "Blast.create: assume must be 1 bit")
    (assumes @ assume_initial);
  ensure_depth t 0;
  t

let step_at t time =
  if time < 0 || time >= t.depth then invalid_arg "Blast: step not encoded";
  List.nth t.steps (t.depth - 1 - time)

let lits t sig_ ~time = (step_at t time).(sig_)

let lit1 t sig_ ~time =
  let l = lits t sig_ ~time in
  if Array.length l <> 1 then invalid_arg "Blast.lit1: signal is not 1 bit";
  l.(0)

let model_value t sig_ ~time =
  let l = lits t sig_ ~time in
  let v = ref (Bitvec.zero (Array.length l)) in
  Array.iteri
    (fun i li -> if Solver.lit_value t.s li then v := Bitvec.set_bit !v i true)
    l;
  !v

let add_state_distinct t i j =
  let si = step_at t i and sj = step_at t j in
  let diffs = ref [] in
  Netlist.iter_nodes t.nl (fun n ->
      match n.Netlist.kind with
      | Netlist.Reg _ ->
        let a = si.(n.Netlist.id) and b = sj.(n.Netlist.id) in
        Array.iteri (fun k la -> diffs := g_xor t la b.(k) :: !diffs) a
      | _ -> ());
  Solver.add_clause t.s !diffs
