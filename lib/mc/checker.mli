(** Cover-property checking — the model-checking service RTL2MµPATH and
    SynthLC drive (§V-B).

    A cover property asks whether some execution trace, starting from a
    valid reset state and subject to per-cycle assumption signals, reaches a
    cycle where a conjunction of 1-bit literals holds.  Outcomes mirror the
    paper's: [Reachable] (with a witness), [Unreachable] (with a proof
    kind), [Undetermined] (budgets exhausted — §VII-B3).

    Engines, cheapest first: constrained-random simulation (a hit proves
    reachability), incremental BMC over a shared unrolling (thousands of
    properties on the same design share one solver and its learned
    clauses), k-induction with simple-path constraints (a genuine
    unreachability proof), and finally a bounded-unreachable verdict when
    the BMC depth is exhausted cleanly — the analogue of the paper's
    undetermined-as-unreachable configuration (§VII-B4).

    The SAT engines can run on an equivalence-swept copy of the netlist
    ({!config.sweep}): {!Hdl.Equiv.reduce} merges proven-equivalent
    combinational nodes before encoding, and every query crosses the
    total old→new signal map at the boundary.  BMC witnesses are
    {e canonical} — minimal hit time, then lexicographically-minimal free
    variables — so the reported trace depends only on the design's
    semantics, never on the encoding the solver searched; that is what
    keeps report digests bit-identical across sweep modes. *)

module Cex : sig
  type t
  (** A witness trace: per-cycle values of every named signal. *)

  val length : t -> int
  val value : t -> string -> cycle:int -> Bitvec.t option
  val value_exn : t -> string -> cycle:int -> Bitvec.t

  val equal : t -> t -> bool
  (** Structural equality: same length, same signals in the same order,
      bit-identical values — the comparison the sweep audit applies. *)

  val pp : Format.formatter -> t -> unit
end

type proof =
  | Inductive of int  (** k-induction succeeded at this k. *)
  | Bounded of int  (** No witness within this BMC depth; no budget overrun. *)

type outcome = Reachable of Cex.t | Unreachable of proof | Undetermined

val outcome_tag : outcome -> string

module Stats : sig
  type t = {
    mutable n_props : int;
    mutable n_reachable : int;
    mutable n_unreachable : int;
    mutable n_undetermined : int;
    mutable n_sim_discharged : int;
    mutable n_inductive : int;
    mutable n_cache_hits : int;
        (** Verdicts served from the attached {!Vcache.t}. *)
    mutable n_cache_misses : int;
        (** Verdicts computed and stored (0 when no cache is attached). *)
    mutable total_time : float;
  }

  val create : unit -> t

  val merge : t -> t -> t
  (** Field-wise sum, as a fresh record — the aggregation point for
      per-shard and per-task checker instances. *)

  val copy : t -> t
  (** A snapshot: a fresh record with the same totals.  Use when exposing
      stats from a live checker, so later checking cannot mutate what the
      caller already holds. *)

  val mean_time : t -> float
  (** Mean seconds per property (0 when no properties were checked). *)

  val pct_undetermined : t -> float
  (** Percentage of properties left undetermined (0 when none checked). *)

  val hit_rate : t -> float
  (** [n_cache_hits / (n_cache_hits + n_cache_misses)] — the rate over
      cache {e lookups}, so stats merged in from checkers with no cache
      attached do not dilute it (0 when no lookups happened). *)

  val pp : Format.formatter -> t -> unit
end

type sweep_mode =
  | Sweep_off  (** Encode the netlist as given. *)
  | Sweep_on
      (** SAT-sweep the netlist ({!Hdl.Equiv.reduce}) before encoding;
          both the BMC unrolling and every induction solver run on the
          reduction, with queries translated through the signal map. *)
  | Sweep_audit
      (** Compute with the swept engine {e and} re-run every
          SAT-resolved query on an unswept shadow engine.  Any verdict
          divergence — or, for reachable covers, any difference between
          the two canonical witnesses — raises [Failure]: the sweep
          changed an outcome, which is a soundness bug.  Audit never
          serves verdicts from the cache (it must run both engines) but
          still stores what it computes.  Proof kinds are not compared:
          known-bits strength can legitimately differ between the two
          encodings, turning an inductive proof into a bounded one, and
          proof kinds are not part of any report digest. *)

val sweep_mode_tag : sweep_mode -> string
(** ["off"] / ["on"] / ["audit"]. *)

type config = {
  bmc_depth : int;
  bmc_conflicts : int;
  induction_max_k : int;  (** 0 disables k-induction. *)
  induction_conflicts : int;
  sim_episodes : int;  (** 0 disables the simulation pre-pass. *)
  sim_cycles : int;
  seed : int;
  encode_cse : bool;
      (** Structural hashing of the Tseitin encoding (default [true]).
          Part of the verdict-cache key: it changes the solver trajectory
          and hence how a verdict is reached. *)
  known_bits : bool;
      (** Substitute {!Hdl.Absint.known_bits} invariants as constant
          literals in both engines' encodings (default [true]).  On the
          BMC (reset-state) side the substitution never changes the CNF —
          per-step folding of the reset constants subsumes it — but on
          the induction side it is the standard invariant strengthening:
          the known-bits fixpoint is an inductive invariant, so the
          free-initial unrollings substitute its constant bits, shrinking
          variables and clauses (see [ss_ind_vars]) and letting induction
          discharge covers plain induction cannot.  Part of the cache
          key: the strengthening can change verdicts (Undetermined
          becoming Unreachable) and solver trajectories.  When sweeping,
          known bits are computed on the netlist each engine actually
          encodes. *)
  reduce_db : bool;
      (** Periodic learnt-clause DB reduction (default [true]).  Also part
          of the cache key, for the same reason. *)
  portfolio_domains : int;
      (** Race this many diversified solver configurations per hard BMC
          query (default 1 = off).  Deliberately {e not} part of the cache
          key: the canonical solver's verdict and model are bit-identical
          whatever the domain count — see {!Sat.Solver.solve_portfolio}. *)
  sweep : sweep_mode;
      (** Equivalence-sweep the netlist the SAT engines encode (default
          {!Sweep_off}).  Verdicts, witnesses and hence report digests
          are bit-identical across all three modes — witnesses are
          canonical, the sim pre-pass always runs on the original
          netlist, and audit is on-plus-tripwire.  The cache key
          therefore carries only the effective boolean (audit keys as
          on). *)
}

val default_config : config

type t

val create :
  ?cache:Vcache.t ->
  ?cache_salt:string ->
  ?stimulus:(Sim.t -> int -> unit) ->
  ?config:config ->
  ?assume_initial:Hdl.Netlist.signal list ->
  ?sweep_barriers:Hdl.Netlist.signal list ->
  ?semantic_cache:bool ->
  assumes:Hdl.Netlist.signal list ->
  Hdl.Netlist.t ->
  t
(** [assumes] are 1-bit signals pinned true on every cycle (SVA [assume]);
    [stimulus] optionally drives the simulation pre-pass (unpoked inputs
    are randomized by the caller's own logic); traces violating an
    assumption are discarded.

    [cache] attaches a persistent verdict store: each {!check_cover} is
    keyed by a digest of (netlist structure, assumption signals, every
    [config] field including the seed, [cache_salt], cover literals) and
    served from the store when present.  A cached verdict replays exactly
    as the cold run computed it — witness trace, sim-discharged
    accounting, and the RNG draws the sim pre-pass consumed — so a run
    whose properties all hit is bit-identical to the run that filled the
    store.  [cache_salt] must identify any verdict-relevant input the
    checker cannot see, in practice the [stimulus] closure's identity.

    [sweep_barriers] are extra signals the equivalence sweep must never
    merge away (named signals, registers and inputs are always barriers);
    callers pass every metadata-referenced signal, belt and braces on top
    of those signals being named.  Ignored when [config.sweep] is
    {!Sweep_off}.

    [semantic_cache] (default [false], meaningful only with [cache])
    switches the cache keys to the behavioral namespace: the netlist
    contributes {!Hdl.Equiv.semantic_digest} instead of its structural
    digest, and assume/cover signals contribute their
    {!Hdl.Equiv.signatures} instead of node ids.  Semantically equivalent
    netlist variants — a word-level design and its gate-level
    re-synthesis, say — then share verdicts.  Sound for the same reason
    digests agree across sweep modes (canonical witnesses), with one
    caveat: a budget-limited [Undetermined] could in principle resolve
    differently on another variant, so pair this with budgets generous
    enough that shared queries terminate. *)

val check_cover : ?name:string -> t -> (Hdl.Netlist.signal * bool) list -> outcome
(** [check_cover t lits] searches for a cycle where every [(signal,
    polarity)] literal holds simultaneously.  Signals are those of the
    {e original} netlist whatever the sweep mode.  In audit mode, raises
    [Failure] if the swept and unswept engines ever disagree. *)

val stats : t -> Stats.t
val netlist : t -> Hdl.Netlist.t

val sweep_stats : t -> Hdl.Equiv.stats option
(** Reduction statistics of the equivalence sweep the engines run on;
    [None] when [config.sweep] is {!Sweep_off}. *)

val dump_cnf : t -> string
(** The shared BMC unrolling's current clause set as DIMACS CNF text
    (via {!Sat.Dimacs.of_solver}) — for offline debugging with external
    solvers.  Cheap relative to solving, but the text can be large. *)

type sat_stats = {
  ss_conflicts : int;
  ss_propagations : int;
  ss_learnts : int;  (** Learnt clauses currently in the BMC solver's DB. *)
  ss_learnt_peak : int;
  ss_reduces : int;  (** reduce_db events on the BMC solver. *)
  ss_cse_hits : int;
  ss_cse_lookups : int;
  ss_vars : int;  (** Variables allocated in the BMC engine's solver. *)
  ss_ind_vars : int;
      (** Variables allocated across the short-lived k-induction side
          solvers, cumulative over every induction attempt (both engines
          in audit mode).  This is the counter the known-bits
          substitution ([config.known_bits]) shrinks: the [`Free]-initial
          unrolling stops allocating variables for proven register bits.
          (On the [`Reset]-initial BMC side the substitution is subsumed
          by per-step constant folding, so [ss_vars] is unaffected by the
          flag.) *)
}

val sat_stats : t -> sat_stats
(** Cumulative solver/encoding statistics: the shared BMC unrolling,
    plus the induction side solvers' variable total. *)
