(** Cover-property checking — the model-checking service RTL2MµPATH and
    SynthLC drive (§V-B).

    A cover property asks whether some execution trace, starting from a
    valid reset state and subject to per-cycle assumption signals, reaches a
    cycle where a conjunction of 1-bit literals holds.  Outcomes mirror the
    paper's: [Reachable] (with a witness), [Unreachable] (with a proof
    kind), [Undetermined] (budgets exhausted — §VII-B3).

    Engines, cheapest first: constrained-random simulation (a hit proves
    reachability), incremental BMC over a shared unrolling (thousands of
    properties on the same design share one solver and its learned
    clauses), k-induction with simple-path constraints (a genuine
    unreachability proof), and finally a bounded-unreachable verdict when
    the BMC depth is exhausted cleanly — the analogue of the paper's
    undetermined-as-unreachable configuration (§VII-B4). *)

module Cex : sig
  type t
  (** A witness trace: per-cycle values of every named signal. *)

  val length : t -> int
  val value : t -> string -> cycle:int -> Bitvec.t option
  val value_exn : t -> string -> cycle:int -> Bitvec.t
  val pp : Format.formatter -> t -> unit
end

type proof =
  | Inductive of int  (** k-induction succeeded at this k. *)
  | Bounded of int  (** No witness within this BMC depth; no budget overrun. *)

type outcome = Reachable of Cex.t | Unreachable of proof | Undetermined

val outcome_tag : outcome -> string

module Stats : sig
  type t = {
    mutable n_props : int;
    mutable n_reachable : int;
    mutable n_unreachable : int;
    mutable n_undetermined : int;
    mutable n_sim_discharged : int;
    mutable n_inductive : int;
    mutable n_cache_hits : int;
        (** Verdicts served from the attached {!Vcache.t}. *)
    mutable n_cache_misses : int;
        (** Verdicts computed and stored (0 when no cache is attached). *)
    mutable total_time : float;
  }

  val create : unit -> t

  val merge : t -> t -> t
  (** Field-wise sum, as a fresh record — the aggregation point for
      per-shard and per-task checker instances. *)

  val copy : t -> t
  (** A snapshot: a fresh record with the same totals.  Use when exposing
      stats from a live checker, so later checking cannot mutate what the
      caller already holds. *)

  val mean_time : t -> float
  (** Mean seconds per property (0 when no properties were checked). *)

  val pct_undetermined : t -> float
  (** Percentage of properties left undetermined (0 when none checked). *)

  val hit_rate : t -> float
  (** [n_cache_hits / (n_cache_hits + n_cache_misses)] — the rate over
      cache {e lookups}, so stats merged in from checkers with no cache
      attached do not dilute it (0 when no lookups happened). *)

  val pp : Format.formatter -> t -> unit
end

type config = {
  bmc_depth : int;
  bmc_conflicts : int;
  induction_max_k : int;  (** 0 disables k-induction. *)
  induction_conflicts : int;
  sim_episodes : int;  (** 0 disables the simulation pre-pass. *)
  sim_cycles : int;
  seed : int;
  encode_cse : bool;
      (** Structural hashing of the Tseitin encoding (default [true]).
          Part of the verdict-cache key: it changes the solver trajectory
          and hence which witness a satisfiable query returns. *)
  known_bits : bool;
      (** Substitute {!Hdl.Absint.known_bits} invariants as constant
          literals in both engines' encodings (default [true]).  On the
          BMC (reset-state) side the substitution never changes the CNF —
          per-step folding of the reset constants subsumes it — but on
          the induction side it is the standard invariant strengthening:
          the known-bits fixpoint is an inductive invariant, so the
          free-initial unrollings substitute its constant bits, shrinking
          variables and clauses (see [ss_ind_vars]) and letting induction
          discharge covers plain induction cannot.  Part of the cache
          key: the strengthening can change verdicts (Undetermined
          becoming Unreachable) and solver trajectories. *)
  reduce_db : bool;
      (** Periodic learnt-clause DB reduction (default [true]).  Also part
          of the cache key, for the same reason. *)
  portfolio_domains : int;
      (** Race this many diversified solver configurations per hard BMC
          query (default 1 = off).  Deliberately {e not} part of the cache
          key: the canonical solver's verdict and witness are bit-identical
          whatever the domain count — see {!Sat.Solver.solve_portfolio}. *)
}

val default_config : config

type t

val create :
  ?cache:Vcache.t ->
  ?cache_salt:string ->
  ?stimulus:(Sim.t -> int -> unit) ->
  ?config:config ->
  ?assume_initial:Hdl.Netlist.signal list ->
  assumes:Hdl.Netlist.signal list ->
  Hdl.Netlist.t ->
  t
(** [assumes] are 1-bit signals pinned true on every cycle (SVA [assume]);
    [stimulus] optionally drives the simulation pre-pass (unpoked inputs
    are randomized by the caller's own logic); traces violating an
    assumption are discarded.

    [cache] attaches a persistent verdict store: each {!check_cover} is
    keyed by a digest of (netlist structure, assumption signals, every
    [config] field including the seed, [cache_salt], cover literals) and
    served from the store when present.  A cached verdict replays exactly
    as the cold run computed it — witness trace, sim-discharged
    accounting, and the RNG draws the sim pre-pass consumed — so a run
    whose properties all hit is bit-identical to the run that filled the
    store.  On partially-warm runs, skipped engine work changes the shared
    BMC solver's state, so freshly computed witnesses (not verdicts) may
    differ from a fully cold run — the same caveat property sharding has.
    [cache_salt] must identify any verdict-relevant input the checker
    cannot see, in practice the [stimulus] closure's identity. *)

val check_cover : ?name:string -> t -> (Hdl.Netlist.signal * bool) list -> outcome
(** [check_cover t lits] searches for a cycle where every [(signal,
    polarity)] literal holds simultaneously. *)

val stats : t -> Stats.t
val netlist : t -> Hdl.Netlist.t

val dump_cnf : t -> string
(** The shared BMC unrolling's current clause set as DIMACS CNF text
    (via {!Sat.Dimacs.of_solver}) — for offline debugging with external
    solvers.  Cheap relative to solving, but the text can be large. *)

type sat_stats = {
  ss_conflicts : int;
  ss_propagations : int;
  ss_learnts : int;  (** Learnt clauses currently in the BMC solver's DB. *)
  ss_learnt_peak : int;
  ss_reduces : int;  (** reduce_db events on the BMC solver. *)
  ss_cse_hits : int;
  ss_cse_lookups : int;
  ss_vars : int;  (** Variables allocated in the BMC engine's solver. *)
  ss_ind_vars : int;
      (** Variables allocated across the short-lived k-induction side
          solvers, cumulative over every induction attempt.  This is the
          counter the known-bits substitution ([config.known_bits])
          shrinks: the [`Free]-initial unrolling stops allocating
          variables for proven register bits.  (On the [`Reset]-initial
          BMC side the substitution is subsumed by per-step constant
          folding, so [ss_vars] is unaffected by the flag.) *)
}

val sat_stats : t -> sat_stats
(** Cumulative solver/encoding statistics: the shared BMC unrolling,
    plus the induction side solvers' variable total. *)
