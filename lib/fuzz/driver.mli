(** Fuzz campaign driver: sampling loop, budget, shrinking, corpus JSON.

    A campaign runs designs [0 .. count-1] of a seed (or a single [only]
    index) through {!Oracle.run}, stops early when the wall-clock budget
    is exhausted, minimizes every failing config along the parameter
    lattice ({!Gen.shrink_steps}, re-checked with {!Oracle.fails_like} so
    the shrunk config still reproduces the original failure class), and
    renders a JSON corpus summary for CI artifact upload.

    Exit-code contract (shared with the [synthlc fuzz] CLI and mirrored
    on [synthlc lint]): 0 = all oracles green, 1 = at least one oracle
    divergence, 2 = harness error (bad usage or an unexpected exception
    outside the oracle battery). *)

type failure_row = {
  fr_index : int;
  fr_oracle : Oracle.oracle;
  fr_message : string;
  fr_config : Gen.config;  (** As sampled. *)
  fr_shrunk : Gen.config;  (** Lattice-minimal, same failure class. *)
  fr_shrink_steps : int;  (** Lattice steps accepted by the minimizer. *)
  fr_reproducer : string;  (** One-line [synthlc fuzz] invocation. *)
}

type summary = {
  seed : int;
  count : int;
  budget_s : float;  (** 0 = unbounded. *)
  depth : int;
  episodes : int;
  designs : (int * Oracle.outcome) list;  (** (index, outcome), run order. *)
  failures : failure_row list;
  skipped : int;  (** Designs not run because the budget ran out. *)
  total_time_s : float;
}

val default_depth : int
val default_episodes : int

val reproducer :
  seed:int -> depth:int -> episodes:int -> defect:Gen.defect option -> int -> string
(** The one-line reproducer for design [index] of a campaign. *)

val shrink :
  ?depth:int ->
  ?episodes:int ->
  ?workdir:string ->
  Oracle.oracle ->
  Gen.config ->
  Gen.config * int
(** Greedy lattice descent: repeatedly take the first single-parameter
    reduction that still fails on the given oracle class.  Returns the
    fixpoint and the number of accepted steps (re-runs are capped, so
    shrinking always terminates quickly). *)

val campaign :
  ?depth:int ->
  ?episodes:int ->
  ?workdir:string ->
  ?defect:Gen.defect option ->
  ?only:int ->
  ?budget_s:float ->
  ?log:(string -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  summary
(** Run a campaign.  [defect] (default [None]) overrides every sampled
    config's defect field — the seeded-defect acceptance path.  [log]
    receives one progress line per design (default: drop). *)

val summary_to_json : summary -> string
val exit_code : summary -> int
(** 0 when every oracle passed, 1 otherwise (harness errors raise). *)
