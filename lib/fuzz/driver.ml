(* Fuzz campaign driver.  See driver.mli. *)

type failure_row = {
  fr_index : int;
  fr_oracle : Oracle.oracle;
  fr_message : string;
  fr_config : Gen.config;
  fr_shrunk : Gen.config;
  fr_shrink_steps : int;
  fr_reproducer : string;
}

type summary = {
  seed : int;
  count : int;
  budget_s : float;
  depth : int;
  episodes : int;
  designs : (int * Oracle.outcome) list;
  failures : failure_row list;
  skipped : int;
  total_time_s : float;
}

let default_depth = 6
let default_episodes = 3

let reproducer ~seed ~depth ~episodes ~defect index =
  String.concat ""
    [
      Printf.sprintf "synthlc fuzz --seed %d --only %d" seed index;
      (match defect with
      | None -> ""
      | Some d -> " --inject-defect " ^ Gen.defect_name d);
      (if depth = default_depth then "" else Printf.sprintf " --depth %d" depth);
      (if episodes = default_episodes then ""
       else Printf.sprintf " --episodes %d" episodes);
    ]

(* Greedy descent: first reduction that still fails the same oracle class
   wins; the re-run budget bounds worst-case shrink cost (each re-run is a
   full oracle battery, expensive for engine-class failures). *)
let shrink ?depth ?episodes ?workdir oracle cfg =
  let budget = ref 24 in
  let rec go cfg steps =
    let candidates = Gen.shrink_steps cfg in
    let next =
      List.find_opt
        (fun c ->
          !budget > 0
          && begin
               decr budget;
               Oracle.fails_like ?depth ?episodes ?workdir oracle c
             end)
        candidates
    in
    match next with None -> (cfg, steps) | Some c -> go c (steps + 1)
  in
  go cfg 0

(* --- JSON rendering --------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ json_escape s ^ "\""

let verdict_json = function
  | Oracle.Pass -> {|"pass"|}
  | Oracle.Skipped -> {|"skipped"|}
  | Oracle.Fail m -> Printf.sprintf {|{"fail":%s}|} (jstr m)

let outcome_json index (o : Oracle.outcome) =
  let verdicts =
    List.map
      (fun (orc, v) ->
        Printf.sprintf "%s:%s" (jstr (Oracle.oracle_name orc)) (verdict_json v))
      o.Oracle.verdicts
  in
  Printf.sprintf
    {|{"index":%d,"name":%s,"config":%s,"describe":%s,"netlist_digest":%s,"report_digest":%s,"oracles":{%s},"mupath_props":%d,"flow_props":%d,"pruned_static":%d,"flow_pruned_static":%d,"checker_props":%d,"time_s":%.3f}|}
    index
    (jstr (Gen.name o.Oracle.config))
    (Gen.to_json o.Oracle.config)
    (jstr (Gen.describe o.Oracle.config))
    (jstr o.Oracle.netlist_digest)
    (match o.Oracle.report_digest with None -> "null" | Some d -> jstr d)
    (String.concat "," verdicts)
    o.Oracle.mupath_props o.Oracle.flow_props o.Oracle.pruned_static
    o.Oracle.flow_pruned_static o.Oracle.checker_props o.Oracle.time_s

let failure_json f =
  Printf.sprintf
    {|{"index":%d,"oracle":%s,"message":%s,"config":%s,"shrunk_config":%s,"shrunk_describe":%s,"shrink_steps":%d,"reproducer":%s}|}
    f.fr_index
    (jstr (Oracle.oracle_name f.fr_oracle))
    (jstr f.fr_message) (Gen.to_json f.fr_config) (Gen.to_json f.fr_shrunk)
    (jstr (Gen.describe f.fr_shrunk))
    f.fr_shrink_steps (jstr f.fr_reproducer)

let summary_to_json s =
  Printf.sprintf
    {|{"schema":"synthlc-fuzz-corpus/1","seed":%d,"count":%d,"budget_s":%.1f,"depth":%d,"episodes":%d,"designs_run":%d,"designs_skipped":%d,"failures_count":%d,"designs":[%s],"failures":[%s],"total_time_s":%.3f}
|}
    s.seed s.count s.budget_s s.depth s.episodes (List.length s.designs)
    s.skipped (List.length s.failures)
    (String.concat "," (List.map (fun (i, o) -> outcome_json i o) s.designs))
    (String.concat "," (List.map failure_json s.failures))
    s.total_time_s

let exit_code s = if s.failures = [] then 0 else 1

(* --- campaign --------------------------------------------------------- *)

let campaign ?(depth = default_depth) ?(episodes = default_episodes) ?workdir
    ?(defect = None) ?only ?(budget_s = 0.) ?(log = fun _ -> ()) ~seed ~count
    () =
  let t0 = Unix.gettimeofday () in
  let targets =
    match only with
    | Some i ->
      if i < 0 then invalid_arg "fuzz: --only index must be non-negative";
      [ i ]
    | None ->
      if count < 1 then invalid_arg "fuzz: --count must be at least 1";
      List.init count (fun i -> i)
  in
  let designs = ref [] in
  let failures = ref [] in
  let skipped = ref 0 in
  List.iter
    (fun i ->
      let elapsed = Unix.gettimeofday () -. t0 in
      if budget_s > 0. && elapsed > budget_s && !designs <> [] then begin
        incr skipped;
        log (Printf.sprintf "fuzz[%3d] skipped (budget %.0fs exhausted)" i budget_s)
      end
      else begin
        let cfg = { (Gen.config_for ~seed i) with Gen.defect } in
        let outcome = Oracle.run ~depth ~episodes ?workdir cfg in
        designs := (i, outcome) :: !designs;
        match Oracle.failure outcome with
        | None ->
          log
            (Printf.sprintf "fuzz[%3d] %-52s ok    %d oracles, %d+%d props, %.1fs"
               i (Gen.describe cfg)
               (List.length
                  (List.filter (fun (_, v) -> v = Oracle.Pass) outcome.Oracle.verdicts))
               outcome.Oracle.mupath_props outcome.Oracle.flow_props
               outcome.Oracle.time_s)
        | Some (oracle, msg) ->
          log
            (Printf.sprintf "fuzz[%3d] %-52s FAIL  oracle %s: %s" i
               (Gen.describe cfg) (Oracle.oracle_name oracle) msg);
          let shrunk, steps = shrink ~depth ~episodes ?workdir oracle cfg in
          if steps > 0 then
            log
              (Printf.sprintf "fuzz[%3d]   shrunk %d step(s) to: %s" i steps
                 (Gen.describe shrunk));
          let repro = reproducer ~seed ~depth ~episodes ~defect i in
          log (Printf.sprintf "fuzz[%3d]   reproduce with: %s" i repro);
          failures :=
            {
              fr_index = i;
              fr_oracle = oracle;
              fr_message = msg;
              fr_config = cfg;
              fr_shrunk = shrunk;
              fr_shrink_steps = steps;
              fr_reproducer = repro;
            }
            :: !failures
      end)
    targets;
  {
    seed;
    count = List.length targets;
    budget_s;
    depth;
    episodes;
    designs = List.rev !designs;
    failures = List.rev !failures;
    skipped = !skipped;
    total_time_s = Unix.gettimeofday () -. t0;
  }
