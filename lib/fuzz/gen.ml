(* Parameterized pipeline generator.  See gen.mli and DESIGN.md §16.

   The elaborated pipelines are ibex_lite-shaped on purpose: a frontend
   chain of 1-3 slots feeding a single EX stage whose 3-bit state machine
   folds in whatever functional units the config asks for.  Everything the
   config does NOT ask for is simply not built — unreachable state
   encodings are left unlabeled so the static FSM-reachability prune always
   has something to discharge, and unused datapath logic never exists, so
   generated designs stay µLint-clean. *)

type mul_unit = Mul_comb | Mul_iter of { mul_latency : int; mul_zero_skip : bool }
type div_unit = Div_none | Div_serial of { div_zero_skip : bool }
type defect = Defect_label_idle | Defect_pc_width

type config = {
  fe_stages : int;
  mul : mul_unit;
  div : div_unit;
  mem_wait : int;
  stb_depth : int;
  dcache_sets : int;
  speculate : bool;
  defect : defect option;
}

let minimal =
  {
    fe_stages = 1;
    mul = Mul_comb;
    div = Div_none;
    mem_wait = 0;
    stb_depth = 0;
    dcache_sets = 0;
    speculate = true;
    defect = None;
  }

let default =
  {
    minimal with
    div = Div_serial { div_zero_skip = true };
    mul = Mul_iter { mul_latency = 3; mul_zero_skip = true };
    mem_wait = 1;
  }

let sample rng =
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  {
    fe_stages = pick [ 1; 2; 3 ];
    mul =
      pick
        [
          Mul_comb;
          Mul_iter { mul_latency = 2; mul_zero_skip = false };
          Mul_iter { mul_latency = 3; mul_zero_skip = true };
          Mul_iter { mul_latency = 4; mul_zero_skip = true };
        ];
    div =
      pick
        [
          Div_none;
          Div_serial { div_zero_skip = false };
          Div_serial { div_zero_skip = true };
        ];
    mem_wait = pick [ 0; 1; 2 ];
    stb_depth = pick [ 0; 1; 2 ];
    dcache_sets = pick [ 0; 1; 2 ];
    speculate = Random.State.bool rng;
    defect = None;
  }

(* Private PRNG stream per design index: [--only i] must regenerate design
   [i] of a campaign without replaying designs 0..i-1. *)
let config_for ~seed i = sample (Random.State.make [| 0xf022; seed; i |])

let shrink_steps c =
  let steps = ref [] in
  let add c' = steps := c' :: !steps in
  if c.fe_stages > 1 then add { c with fe_stages = c.fe_stages - 1 };
  (match c.mul with
  | Mul_comb -> ()
  | Mul_iter { mul_latency; mul_zero_skip } ->
    add { c with mul = Mul_comb };
    if mul_zero_skip then
      add { c with mul = Mul_iter { mul_latency; mul_zero_skip = false } };
    if mul_latency > 2 then
      add { c with mul = Mul_iter { mul_latency = mul_latency - 1; mul_zero_skip } });
  (match c.div with
  | Div_none -> ()
  | Div_serial { div_zero_skip } ->
    add { c with div = Div_none };
    if div_zero_skip then
      add { c with div = Div_serial { div_zero_skip = false } });
  if c.mem_wait > 0 then add { c with mem_wait = c.mem_wait - 1 };
  if c.stb_depth > 0 then add { c with stb_depth = c.stb_depth - 1 };
  if c.dcache_sets > 0 then add { c with dcache_sets = c.dcache_sets - 1 };
  if not c.speculate then add { c with speculate = true };
  List.rev !steps

let defect_name = function
  | Defect_label_idle -> "label-idle"
  | Defect_pc_width -> "pc-width"

let defect_of_string = function
  | "label-idle" -> Some Defect_label_idle
  | "pc-width" -> Some Defect_pc_width
  | _ -> None

let describe c =
  let mul =
    match c.mul with
    | Mul_comb -> "comb"
    | Mul_iter { mul_latency; mul_zero_skip } ->
      Printf.sprintf "iter%d%s" mul_latency (if mul_zero_skip then "z" else "")
  in
  let div =
    match c.div with
    | Div_none -> "none"
    | Div_serial { div_zero_skip } -> if div_zero_skip then "serialz" else "serial"
  in
  Printf.sprintf "fe=%d mul=%s div=%s memw=%d stb=%d dc=%d spec=%b%s" c.fe_stages
    mul div c.mem_wait c.stb_depth c.dcache_sets c.speculate
    (match c.defect with
    | None -> ""
    | Some d -> " defect=" ^ defect_name d)

let to_json c =
  let mul =
    match c.mul with
    | Mul_comb -> {|{"kind":"comb"}|}
    | Mul_iter { mul_latency; mul_zero_skip } ->
      Printf.sprintf {|{"kind":"iter","latency":%d,"zero_skip":%b}|} mul_latency
        mul_zero_skip
  in
  let div =
    match c.div with
    | Div_none -> {|{"kind":"none"}|}
    | Div_serial { div_zero_skip } ->
      Printf.sprintf {|{"kind":"serial","zero_skip":%b}|} div_zero_skip
  in
  Printf.sprintf
    {|{"fe_stages":%d,"mul":%s,"div":%s,"mem_wait":%d,"stb_depth":%d,"dcache_sets":%d,"speculate":%b,"defect":%s}|}
    c.fe_stages mul div c.mem_wait c.stb_depth c.dcache_sets c.speculate
    (match c.defect with
    | None -> "null"
    | Some d -> Printf.sprintf "%S" (defect_name d))

let name c = "fuzz_" ^ String.sub (Digest.to_hex (Digest.string (describe c))) 0 8

let iuv_pc = 2

let pick_iuv c =
  let mk op = Isa.make ~rd:1 ~rs1:2 ~rs2:3 op in
  if c.dcache_sets > 0 then mk Isa.LW
  else if c.stb_depth > 0 then mk Isa.SW
  else if c.div <> Div_none then mk Isa.DIV
  else if c.mul <> Mul_comb then mk Isa.MUL
  else mk Isa.ADD

let pick_transmitters c =
  let base = [ (pick_iuv c).Isa.op; Isa.ADD ] in
  List.sort_uniq compare base

let xlen = Isa.xlen
let pcw = Isa.pc_bits
let iw = Isa.width
let mem_words = 8

(* EX states.  Only the states the config can reach are built and labeled;
   the rest of the 3-bit space stays unreachable on purpose. *)
let s_idle = 0
let s_ex = 1
let s_div = 2
let s_mem = 3
let s_excp = 4
let s_mul = 5
let s_stb = 6

let fixed_div_latency = 3

let check_range what v lo hi =
  if v < lo || v > hi then
    invalid_arg (Printf.sprintf "Fuzz.Gen.build: %s = %d outside [%d, %d]" what v lo hi)

let build cfg =
  check_range "fe_stages" cfg.fe_stages 1 3;
  check_range "mem_wait" cfg.mem_wait 0 2;
  check_range "stb_depth" cfg.stb_depth 0 2;
  check_range "dcache_sets" cfg.dcache_sets 0 2;
  (match cfg.mul with
  | Mul_comb -> ()
  | Mul_iter { mul_latency; _ } -> check_range "mul_latency" mul_latency 2 4);
  let module D = Hdl.Dsl.Make (struct
    let nl = Hdl.Netlist.create (name cfg)
  end) in
  let open D in
  let has_div = cfg.div <> Div_none in
  let has_mul = cfg.mul <> Mul_comb in
  let has_stb = cfg.stb_depth > 0 in
  let conj = List.fold_left ( &: ) in
  let disj = List.fold_left ( |: ) gnd in

  let if_in = input "if_instr_in" iw in
  let fetch_pc = reg ~name:"fetch_pc" ~width:pcw () in

  (* Frontend chain: slot 0 is IF (fetch side), slot fe_stages-1 feeds EX. *)
  let fe =
    Array.init cfg.fe_stages (fun j ->
        let n s = if j = 0 then "if_" ^ s else Printf.sprintf "id%d_%s" j s in
        ( reg ~name:(n "v") ~width:1 (),
          reg ~name:(n "pc") ~width:pcw (),
          reg ~name:(n "i") ~width:iw () ))
  in
  let fe_v j = let v, _, _ = fe.(j) in v in
  let fe_pc j = let _, p, _ = fe.(j) in p in
  let fe_i j = let _, _, i = fe.(j) in i in
  let last = cfg.fe_stages - 1 in

  let ex_state = reg ~name:"ex_state" ~width:3 () in
  let ex_pc = reg ~name:"ex_pc" ~width:pcw () in
  let ex_i = reg ~name:"ex_i" ~width:iw () in
  let ex_r1 = reg ~name:"operand_rs1" ~width:xlen () in
  let ex_r2 = reg ~name:"operand_rs2" ~width:xlen () in

  let arf =
    List.init 3 (fun i -> reg_symbolic ~name:(Printf.sprintf "arf%d" (i + 1)) ~width:xlen ())
  in
  let mem =
    List.init mem_words (fun i ->
        reg_symbolic ~name:(Printf.sprintf "mem%d" i) ~width:xlen ())
  in

  (* Decode helpers. *)
  let f_op i = select i 18 14 in
  let f_rd i = select i 13 12 in
  let f_rs1 i = select i 11 10 in
  let f_rs2 i = select i 9 8 in
  let f_imm i = select i 7 0 in
  let op_is i o = eq_const (f_op i) (Isa.opcode_to_int o) in
  let op_in i os = disj (List.map (op_is i) os) in
  let cls c i = op_in i (List.filter (fun o -> Isa.class_of o = c) Isa.all_opcodes) in
  let is_div = cls Isa.Divc in
  let is_mul = cls Isa.Mulc in
  let is_load = cls Isa.Load in
  let is_store = cls Isa.Store in
  let is_branch = cls Isa.Branch in
  let is_jump = cls Isa.Jump in
  let writes_rd i =
    op_in i (List.filter Isa.writes_rd Isa.all_opcodes) &: (f_rd i <>: zero 2)
  in

  let st v = eq_const ex_state v in
  let ex_first = st s_ex in
  let ex_busy = ~:(st s_idle) in
  let a = ex_r1 and b = ex_r2 in
  let imm = f_imm ex_i in

  (* Single-cycle datapath. *)
  let sll8 x k = if k = 0 then x else concat [ select x (xlen - 1 - k) 0; zero k ] in
  let srl8 x k = if k = 0 then x else concat [ zero k; select x (xlen - 1) k ] in
  let sra8 x k = if k = 0 then x else concat [ repeat (msb x) k; select x (xlen - 1) k ] in
  let shift f = binary_mux (select b 2 0) (List.init 8 (fun k -> f a k)) in
  let onehot_or d cases = List.fold_left (fun acc (c, v) -> mux c v acc) d cases in
  let link_val = concat [ ex_pc +: of_int pcw 1; zero 2 ] in
  let alu_res =
    onehot_or (zero xlen)
      ([
         (op_is ex_i Isa.ADD, a +: b);
         (op_is ex_i Isa.ADDI, a +: imm);
         (op_is ex_i Isa.SUB, a -: b);
         (op_is ex_i Isa.AND, a &: b);
         (op_is ex_i Isa.ANDI, a &: imm);
         (op_is ex_i Isa.OR, a |: b);
         (op_is ex_i Isa.ORI, a |: imm);
         (op_is ex_i Isa.XOR, a ^: b);
         (op_is ex_i Isa.XORI, a ^: imm);
         (op_is ex_i Isa.SLT, zero_extend (a <+ b) xlen);
         (op_is ex_i Isa.SLTU, zero_extend (a <: b) xlen);
         (op_is ex_i Isa.SLL, shift sll8);
         (op_is ex_i Isa.SRL, shift srl8);
         (op_is ex_i Isa.SRA, shift sra8);
         (is_jump ex_i, link_val);
       ]
      @ if has_mul then [] else [ (op_is ex_i Isa.MUL, a *: b) ])
  in
  let br_taken =
    onehot_or gnd
      [
        (op_is ex_i Isa.BEQ, a ==: b);
        (op_is ex_i Isa.BNE, a <>: b);
        (op_is ex_i Isa.BLT, a <+ b);
        (op_is ex_i Isa.BGE, ~:(a <+ b));
        (op_is ex_i Isa.BLTU, a <: b);
        (op_is ex_i Isa.BGEU, ~:(a <: b));
      ]
  in
  let pc_bytes = concat [ ex_pc; zero 2 ] in
  let target = mux (op_is ex_i Isa.JALR) (a +: imm) (pc_bytes +: imm) in
  let ctrl_taken = is_jump ex_i |: (is_branch ex_i &: br_taken) in
  let misaligned = select target 1 0 <>: zero 2 in
  let excp_now = ex_first &: ctrl_taken &: misaligned in
  let redirect = ex_first &: ctrl_taken &: ~:misaligned in
  let redirect_pc = uresize (select target 7 2) pcw in

  (* Serial divider (restoring, optionally with CVA6's leading-zero skip;
     without it the iteration count is a fixed latency, so DIV timing is
     operand-independent). *)
  let div_done, div_result =
    match cfg.div with
    | Div_none -> (gnd, zero xlen)
    | Div_serial { div_zero_skip } ->
      let div_cnt = reg ~name:"div_cnt" ~width:4 () in
      let div_rem = reg ~name:"div_rem" ~width:xlen () in
      let div_quo = reg ~name:"div_quo" ~width:xlen () in
      let div_dvs = reg ~name:"div_dvs" ~width:xlen () in
      let div_negq = reg ~name:"div_negq" ~width:1 () in
      let div_negr = reg ~name:"div_negr" ~width:1 () in
      let div_div0 = reg ~name:"div_div0" ~width:1 () in
      let div_a0 = reg ~name:"div_a0" ~width:xlen () in
      let signed_div = op_in ex_i [ Isa.DIV; Isa.REM ] in
      let abs_x x neg = mux neg (zero xlen -: x) x in
      let da = abs_x a (signed_div &: msb a) in
      let db = abs_x b (signed_div &: msb b) in
      let cnt_init, quo_init =
        if div_zero_skip then begin
          let sig_bits =
            let rec scan k =
              if k < 0 then zero 4 else mux (bit da k) (of_int 4 (k + 1)) (scan (k - 1))
            in
            scan (xlen - 1)
          in
          ( sig_bits,
            mux (eq_const sig_bits 0) (zero xlen)
              (binary_mux (select (of_int 4 8 -: sig_bits) 2 0)
                 (List.init 8 (fun k -> sll8 da k))) )
        end
        else (of_int 4 fixed_div_latency, da)
      in
      let div_step_rem = concat [ select div_rem (xlen - 2) 0; msb div_quo ] in
      let div_sub = div_step_rem >=: div_dvs in
      let div_rem_next = mux div_sub (div_step_rem -: div_dvs) div_step_rem in
      let div_quo_next = concat [ select div_quo (xlen - 2) 0; div_sub ] in
      let div_done = st s_div &: (eq_const div_cnt 0 |: eq_const div_cnt 1) in
      let div_quo_final = mux (eq_const div_cnt 0) div_quo div_quo_next in
      let div_rem_final = mux (eq_const div_cnt 0) div_rem div_rem_next in
      let div_q = mux div_negq (zero xlen -: div_quo_final) div_quo_final in
      let div_r = mux div_negr (zero xlen -: div_rem_final) div_rem_final in
      let div_result =
        mux div_div0
          (mux (op_in ex_i [ Isa.REM; Isa.REMU ]) div_a0 (ones xlen))
          (mux (op_in ex_i [ Isa.REM; Isa.REMU ]) div_r div_q)
      in
      div_cnt
      <== priority_mux
            [
              (ex_first &: is_div ex_i, cnt_init);
              (st s_div &: (div_cnt <>: zero 4), div_cnt -: of_int 4 1);
            ]
            div_cnt;
      div_rem <== priority_mux [ (ex_first, zero xlen); (st s_div, div_rem_next) ] div_rem;
      div_quo <== priority_mux [ (ex_first, quo_init); (st s_div, div_quo_next) ] div_quo;
      div_dvs <== mux ex_first db div_dvs;
      div_negq <== mux ex_first (signed_div &: (msb a ^: msb b) &: (b <>: zero xlen)) div_negq;
      div_negr <== mux ex_first (signed_div &: msb a) div_negr;
      div_div0 <== mux ex_first (b ==: zero xlen) div_div0;
      div_a0 <== mux ex_first a div_a0;
      (div_done, div_result)
  in

  (* Iterative multiplier: a counter in front of the combinational product;
     with zero-skip a zero operand completes in one s_mul cycle. *)
  let mul_done, mul_result =
    match cfg.mul with
    | Mul_comb -> (gnd, zero xlen)
    | Mul_iter { mul_latency; mul_zero_skip } ->
      let mul_cnt = reg ~name:"mul_cnt" ~width:3 () in
      let cnt_init =
        if mul_zero_skip then
          mux ((a ==: zero xlen) |: (b ==: zero xlen)) (of_int 3 1) (of_int 3 mul_latency)
        else of_int 3 mul_latency
      in
      mul_cnt
      <== priority_mux
            [
              (ex_first &: is_mul ex_i, cnt_init);
              (st s_mul &: (mul_cnt <>: zero 3), mul_cnt -: of_int 3 1);
            ]
            mul_cnt;
      (st s_mul &: (eq_const mul_cnt 0 |: eq_const mul_cnt 1), a *: b)
  in

  (* Store path.  Depth 0 writes memory during the first EX cycle; with a
     buffer, stores allocate an entry (committing immediately) and the head
     entry drains to memory one per cycle, holding the memory port — a
     completing load defers while a drain is in flight (the store→load
     back-pressure channel). *)
  let addr = a +: imm in
  let word_of x = select x 2 0 in
  let store_now = ex_first &: is_store ex_i in
  let st_data = mux (op_is ex_i Isa.SB) (concat [ zero 4; select b 3 0 ]) b in
  let drain, store_done, stb_slots =
    if not has_stb then begin
      List.iteri
        (fun i m -> m <== mux (store_now &: eq_const (word_of addr) i) st_data m)
        mem;
      (gnd, gnd, [])
    end
    else begin
      let depth = cfg.stb_depth in
      let slot k =
        ( reg ~name:(Printf.sprintf "stb%d_v" k) ~width:1 (),
          reg ~name:(Printf.sprintf "stb%d_pc" k) ~width:pcw (),
          reg ~name:(Printf.sprintf "stb%d_a" k) ~width:3 (),
          reg ~name:(Printf.sprintf "stb%d_d" k) ~width:xlen () )
      in
      let slots = List.init depth slot in
      let v_of (v, _, _, _) = v in
      let head_v, head_pc, head_a, head_d = List.nth slots 0 in
      ignore head_pc;
      let drain = head_v in
      (* Post-drain view: entries shift down one slot while the head is
         written to memory. *)
      let shifted =
        List.mapi
          (fun k (v, p, a', d) ->
            if k + 1 < depth then
              let v', p', a'', d' = List.nth slots (k + 1) in
              (mux drain v' v, mux drain p' p, mux drain a'' a', mux drain d' d)
            else (mux drain gnd v, p, a', d))
          slots
      in
      let can_alloc = disj (List.map (fun s -> ~:(v_of s)) shifted) in
      let alloc_now = (store_now |: st s_stb) &: can_alloc in
      (* First free post-drain slot takes the allocation. *)
      let takes =
        let rec go busy_below = function
          | [] -> []
          | [ s ] -> [ busy_below &: ~:(v_of s) ]
          | s :: rest -> (busy_below &: ~:(v_of s)) :: go (busy_below &: v_of s) rest
        in
        go vdd shifted
      in
      List.iteri
        (fun k (v, p, a', d) ->
          let sv, sp, sa, sd = List.nth shifted k in
          let alloc_k = alloc_now &: List.nth takes k in
          v <== mux alloc_k vdd sv;
          p <== mux alloc_k ex_pc sp;
          a' <== mux alloc_k (word_of addr) sa;
          d <== mux alloc_k st_data sd)
        slots;
      List.iteri
        (fun i m -> m <== mux (drain &: eq_const head_a i) head_d m)
        mem;
      (drain, alloc_now, slots)
    end
  in

  (* Load path: mem_wait extra wait states, plus a 2-cycle miss penalty
     when the config has load tags.  The tags are ordinary registers that
     are NOT architectural state, so their contents persist across
     instructions — a stateful latency channel. *)
  let mem_cnt = reg ~name:"mem_cnt" ~width:3 () in
  let load_engage = ex_first &: is_load ex_i in
  let word_new = word_of addr in
  let wait_init =
    if cfg.dcache_sets = 0 then of_int 3 cfg.mem_wait
    else begin
      let sets = cfg.dcache_sets in
      let dc =
        List.init sets (fun k ->
            ( reg ~name:(Printf.sprintf "dc%d_v" k) ~width:1 (),
              reg ~name:(Printf.sprintf "dc%d_tag" k) ~width:3 () ))
      in
      let sel_is k =
        if sets = 1 then vdd
        else if k = 1 then bit word_new 0
        else ~:(bit word_new 0)
      in
      let hit_k (v, t) = v &: (t ==: word_new) in
      let hit =
        if sets = 1 then hit_k (List.nth dc 0)
        else mux (bit word_new 0) (hit_k (List.nth dc 1)) (hit_k (List.nth dc 0))
      in
      List.iteri
        (fun k (v, t) ->
          let fill = load_engage &: ~:hit &: sel_is k in
          v <== mux fill vdd v;
          t <== mux fill word_new t)
        dc;
      mux hit (of_int 3 cfg.mem_wait) (of_int 3 (cfg.mem_wait + 2))
    end
  in
  mem_cnt
  <== priority_mux
        [
          (load_engage, wait_init);
          (st s_mem &: (mem_cnt <>: zero 3), mem_cnt -: of_int 3 1);
        ]
        mem_cnt;
  let mem_done = st s_mem &: eq_const mem_cnt 0 &: ~:drain in
  let mem_rdata = binary_mux word_new mem in
  let ld_result =
    mux (op_is ex_i Isa.LB) (sign_extend (select mem_rdata 3 0) xlen) mem_rdata
  in

  (* Completion and writeback. *)
  let uses_div_t = if has_div then [ ~:(is_div ex_i) ] else [] in
  let uses_mul_t = if has_mul then [ ~:(is_mul ex_i) ] else [] in
  let stb_t = if has_stb then [ ~:(is_store ex_i) ] else [] in
  let single_cycle = conj ex_first (uses_div_t @ uses_mul_t @ stb_t @ [ ~:(is_load ex_i) ]) in
  let complete =
    disj
      ([ single_cycle &: ~:excp_now; mem_done ]
      @ (if has_div then [ div_done ] else [])
      @ (if has_mul then [ mul_done ] else [])
      @ if has_stb then [ store_done ] else [])
  in
  let result =
    onehot_or alu_res
      ((if has_div then [ (div_done, div_result) ] else [])
      @ (if has_mul then [ (mul_done, mul_result) ] else [])
      @ [ (mem_done, ld_result) ])
  in
  List.iteri
    (fun i r ->
      r <== mux (complete &: writes_rd ex_i &: eq_const (f_rd ex_i) (i + 1)) result r)
    arf;

  (* EX transitions. *)
  let flush_now = redirect |: excp_now |: st s_excp in
  let accept = (st s_idle |: complete |: st s_excp) &: fe_v last &: ~:flush_now in
  let rf v =
    let base = binary_mux v (zero xlen :: arf) in
    mux (complete &: writes_rd ex_i &: (f_rd ex_i ==: v)) result base
  in
  ex_state
  <== priority_mux
        ([ (accept, of_int 3 s_ex); (ex_first &: excp_now, of_int 3 s_excp) ]
        @ (if has_div then [ (ex_first &: is_div ex_i, of_int 3 s_div) ] else [])
        @ (if has_mul then [ (ex_first &: is_mul ex_i, of_int 3 s_mul) ] else [])
        @ [ (load_engage, of_int 3 s_mem) ]
        @ (if has_stb then [ (store_now, of_int 3 s_stb) ] else [])
        @ [ (complete |: st s_excp, of_int 3 s_idle) ])
        ex_state;
  ex_pc <== mux accept (fe_pc last) ex_pc;
  ex_i <== mux accept (fe_i last) ex_i;
  ex_r1 <== mux accept (rf (f_rs1 (fe_i last))) ex_r1;
  ex_r2 <== mux accept (rf (f_rs2 (fe_i last))) ex_r2;

  (* Frontend advance: a bubble-collapsing chain; slot j refills whenever
     slot j+1 drains it or it is empty.  With speculation off, fetch is
     starved (bubbles supplied) while an unresolved control transfer sits
     anywhere in the frontend. *)
  let loads = Array.make cfg.fe_stages gnd in
  loads.(last) <- accept |: ~:(fe_v last);
  for j = last - 1 downto 0 do
    loads.(j) <- loads.(j + 1) |: ~:(fe_v j)
  done;
  let supply =
    if cfg.speculate then vdd
    else
      ~:(disj
           (List.init cfg.fe_stages (fun j ->
                fe_v j &: (is_branch (fe_i j) |: is_jump (fe_i j)))))
  in
  for j = 0 to last do
    let upstream_v = if j = 0 then supply else fe_v (j - 1) in
    let upstream_pc = if j = 0 then fetch_pc else fe_pc (j - 1) in
    let upstream_i = if j = 0 then if_in else fe_i (j - 1) in
    fe_v j <== mux flush_now gnd (mux loads.(j) upstream_v (fe_v j));
    fe_pc j <== mux loads.(j) upstream_pc (fe_pc j);
    fe_i j <== mux loads.(j) upstream_i (fe_i j)
  done;
  let fetch_adv = if cfg.speculate then loads.(0) else loads.(0) &: supply in
  fetch_pc
  <== priority_mux
        [
          (st s_excp, zero pcw);
          (redirect, redirect_pc);
          (fetch_adv, fetch_pc +: of_int pcw 1);
        ]
        fetch_pc;

  (* Annotation surface. *)
  let name_wire nm s =
    let w = wire ~name:nm (width s) in
    w <== s;
    w
  in
  let commit_w = name_wire "commit" (complete |: st s_excp) in
  let commit_pc_w = name_wire "commit_pc" ex_pc in
  let flush_w = name_wire "flush" flush_now in
  let operand_valid_w = name_wire "operand_stage_valid" ex_busy in

  let one_state nm pcr v label =
    {
      Designs.Meta.ufsm_name = nm;
      pcr;
      vars = [ v ];
      idle_states = [ Bitvec.zero 1 ];
      state_labels = [ (Bitvec.of_int ~width:1 1, label) ];
    }
  in
  let bv3 v = Bitvec.of_int ~width:3 v in
  let ex_labels =
    [ (bv3 s_ex, "EX") ]
    @ (if has_div then [ (bv3 s_div, "divU") ] else [])
    @ [ (bv3 s_mem, "memU"); (bv3 s_excp, "exExcp") ]
    @ (if has_mul then [ (bv3 s_mul, "mulU") ] else [])
    @ (if has_stb then [ (bv3 s_stb, "stbW") ] else [])
    @
    match cfg.defect with
    | Some Defect_label_idle -> [ (Bitvec.zero 3, "zIDL") ]
    | _ -> []
  in
  let if0_pcr =
    match cfg.defect with
    | Some Defect_pc_width ->
      (* Deliberately ill-typed PCR: one bit short of the PC width. *)
      let bad = reg ~name:"bad_pcr" ~width:(pcw - 1) () in
      bad <== bad;
      bad
    | _ -> fe_pc 0
  in
  let ufsms =
    [ { (one_state "if0" (fe_pc 0) (fe_v 0) "IF") with Designs.Meta.pcr = if0_pcr } ]
    @ List.init (cfg.fe_stages - 1) (fun j ->
          one_state (Printf.sprintf "id%d" (j + 1)) (fe_pc (j + 1)) (fe_v (j + 1)) "ID")
    @ [
        {
          Designs.Meta.ufsm_name = "ex";
          pcr = ex_pc;
          vars = [ ex_state ];
          idle_states = [ Bitvec.zero 3 ];
          state_labels = ex_labels;
        };
      ]
    @ List.mapi
        (fun k (v, p, _, _) -> one_state (Printf.sprintf "stb%d" k) p v "STB")
        stb_slots
  in
  {
    Designs.Meta.design_name = name cfg;
    nl;
    ifrs = [ { Designs.Meta.ifr_valid = fe_v 0; ifr_pc = fe_pc 0; ifr_word = fe_i 0 } ];
    operand_stage_valid = operand_valid_w;
    operand_stage_pc = ex_pc;
    commit = commit_w;
    commit_pc = commit_pc_w;
    flush = flush_w;
    ufsms;
    operand_regs = [ ("rs1", ex_r1); ("rs2", ex_r2) ];
    arf;
    amem = mem;
    extra_assumes = [];
  }
