(* Differential oracle battery.  See oracle.mli. *)

type oracle =
  | O_validate
  | O_absint
  | O_lint
  | O_determinism
  | O_roundtrip
  | O_jobs
  | O_cache_warm
  | O_prune_modes
  | O_portfolio
  | O_sweep
  | O_grid

type verdict = Pass | Fail of string | Skipped

type outcome = {
  config : Gen.config;
  netlist_digest : string;
  report_digest : string option;
  verdicts : (oracle * verdict) list;
  mupath_props : int;
  flow_props : int;
  pruned_static : int;
  flow_pruned_static : int;
  checker_props : int;
  time_s : float;
}

let all_oracles =
  [
    O_validate;
    O_absint;
    O_lint;
    O_determinism;
    O_roundtrip;
    O_jobs;
    O_cache_warm;
    O_prune_modes;
    O_portfolio;
    O_sweep;
    O_grid;
  ]

let oracle_name = function
  | O_validate -> "validate"
  | O_absint -> "absint"
  | O_lint -> "lint"
  | O_determinism -> "determinism"
  | O_roundtrip -> "roundtrip"
  | O_jobs -> "jobs"
  | O_cache_warm -> "cache-warm"
  | O_prune_modes -> "prune-modes"
  | O_portfolio -> "portfolio"
  | O_sweep -> "sweep"
  | O_grid -> "grid"

let failure o =
  List.find_map
    (fun (orc, v) -> match v with Fail m -> Some (orc, m) | _ -> None)
    o.verdicts

let config_of ~depth ~episodes ~portfolio =
  {
    Mc.Checker.default_config with
    Mc.Checker.bmc_depth = depth;
    bmc_conflicts = 60_000;
    induction_max_k = 2;
    sim_episodes = episodes;
    sim_cycles = 44;
    portfolio_domains = portfolio;
  }

(* One Engine.run over the generated design.  Exceptions (including the
   audit tripwires' [failwith]) are turned into [Error msg] so the caller
   can attribute them to the oracle the run serves. *)
let engine_run ~cache ~depth ~episodes ~jobs ~portfolio ~static_prune
    ~static_flow_prune ~sweep cfg =
  let config = { (config_of ~depth ~episodes ~portfolio) with Mc.Checker.sweep } in
  try
    Ok
      (Synthlc.Engine.run ~cache ~config ~synth_config:config ~static_prune
         ~static_flow_prune
         ~stimulus:(fun ~pins ~rotate meta -> Designs.Stimulus.ibex ~pins ~rotate meta)
         ~design:(fun () -> Gen.build cfg)
         ~jobs
         ~instructions:[ Gen.pick_iuv cfg ]
         ~transmitters:(Gen.pick_transmitters cfg)
         ~kinds:[ Synthlc.Types.Intrinsic ]
         ~revisit_count_labels:[] ~iuv_pc:Gen.iuv_pc ())
  with
  | Failure m -> Error m
  | Invalid_argument m -> Error ("invalid argument: " ^ m)

let grid_violations (report : Synthlc.Engine.report) =
  List.concat_map
    (fun (t : Synthlc.Engine.transponder_report) ->
      List.concat_map
        (fun (d : Synthlc.Types.tagged_decision) ->
          let live =
            match
              List.assoc_opt d.Synthlc.Types.input.Synthlc.Types.unsafe_operand
                t.Synthlc.Engine.static_flow_live
            with
            | Some l -> l
            | None -> []
          in
          List.filter_map
            (fun lbl ->
              if List.mem lbl live then None
              else
                Some
                  (Printf.sprintf "tagged dst %s (src %s, operand %s) outside static grid"
                     lbl d.Synthlc.Types.src
                     (Synthlc.Types.operand_name
                        d.Synthlc.Types.input.Synthlc.Types.unsafe_operand)))
            d.Synthlc.Types.dst)
        t.Synthlc.Engine.tagged)
    report.Synthlc.Engine.transponders

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let run ?(depth = 6) ?(episodes = 3) ?workdir cfg =
  let t0 = Unix.gettimeofday () in
  let verdicts = ref [] in
  let push o v = verdicts := (o, v) :: !verdicts in
  let report = ref None in
  let netlist_digest = ref "" in
  (* Each step returns [true] to continue the battery. *)
  let step o f =
    match f () with
    | None ->
      push o Pass;
      true
    | Some msg ->
      push o (Fail msg);
      false
    | exception Failure m ->
      push o (Fail m);
      false
  in
  let base_digest = ref "" in
  let warm_counters = ref None in
  let workdir =
    Option.value workdir ~default:(Filename.get_temp_dir_name ())
  in
  let cache_dir =
    Filename.concat workdir
      (Printf.sprintf "vcache_%d_%s" (Unix.getpid ()) (Gen.name cfg))
  in
  rm_rf cache_dir;
  let check_engine ?(sweep = Mc.Checker.Sweep_off) ~jobs ~portfolio
      ~static_prune ~static_flow_prune ~judge () =
    let cache = Vcache.create ~dir:cache_dir () in
    match
      engine_run ~cache ~depth ~episodes ~jobs ~portfolio ~static_prune
        ~static_flow_prune ~sweep cfg
    with
    | Error m -> Some m
    | Ok r -> judge cache r
  in
  let digest_equal what r =
    let d = Synthlc.Engine.report_digest r in
    if d = !base_digest then None
    else
      Some
        (Printf.sprintf "%s digest %s != baseline %s" what d !base_digest)
  in
  let continue =
    step O_validate (fun () ->
        let meta = Gen.build cfg in
        netlist_digest := Hdl.Netlist.digest meta.Designs.Meta.nl;
        match Hdl.Netlist.validate meta.Designs.Meta.nl with
        | () -> None
        | exception Failure m -> Some m)
  in
  let continue =
    continue
    && step O_absint (fun () ->
           (* Known-bits containment: the {!Hdl.Absint} facts must cover
              every concrete state of a randomized simulation — the same
              soundness invariant the prune, lint, and SAT-substitution
              clients all lean on. *)
           let nl = (Gen.build cfg).Designs.Meta.nl in
           let kb = Hdl.Absint.known_bits nl in
           let sim = Sim.create ~seed:7 nl in
           let nn = Hdl.Netlist.num_nodes nl in
           let violation = ref None in
           (for cycle = 0 to 23 do
              Sim.poke_random_inputs sim;
              Sim.eval sim;
              for s = 0 to nn - 1 do
                let known, value = kb.(s) in
                let concrete = Sim.peek sim s in
                if
                  !violation = None
                  && not (Bitvec.equal (Bitvec.logand concrete known) value)
                then
                  violation :=
                    Some
                      (Printf.sprintf
                         "cycle %d signal %d: value %s escapes known bits \
                          (k=%s, v=%s)"
                         cycle s
                         (Bitvec.to_hex_string concrete)
                         (Bitvec.to_hex_string known)
                         (Bitvec.to_hex_string value))
              done;
              Sim.step sim
            done);
           !violation)
  in
  let continue =
    continue
    && step O_lint (fun () ->
           let r = Lint.Driver.run_design (Gen.build cfg) in
           let errors =
             List.filter
               (fun (d : Lint.Diagnostic.t) -> d.severity = Lint.Diagnostic.Error)
               r.Lint.Diagnostic.diags
           in
           match errors with
           | [] -> None
           | d :: _ ->
             Some
               (Printf.sprintf "%d lint error(s), first %s: %s"
                  (List.length errors) d.Lint.Diagnostic.code
                  d.Lint.Diagnostic.message))
  in
  let continue =
    continue
    && step O_determinism (fun () ->
           let d2 = Hdl.Netlist.digest (Gen.build cfg).Designs.Meta.nl in
           if d2 = !netlist_digest then None
           else
             Some
               (Printf.sprintf "re-elaboration digest %s != %s" d2
                  !netlist_digest))
  in
  let continue =
    continue
    && step O_roundtrip (fun () ->
           (* Frontend round trip: export the generated design as Yosys
              JSON, import it back, and require digest identity with the
              original elaboration — the exporter, parser, cell mapping,
              and emission order all differentially tested on every fuzzed
              pipeline.  The sidecar writer/reader round-trips too. *)
           let meta = Gen.build cfg in
           let js = Frontend.Yosys.export_string meta.Designs.Meta.nl in
           match
             Frontend.Yosys.import_string ~design:(Gen.name cfg) js
           with
           | exception Frontend.Diag.Rejected r ->
             let first =
               match r.Lint.Diagnostic.diags with
               | d :: _ -> d.Lint.Diagnostic.message
               | [] -> "empty report"
             in
             Some ("re-import rejected: " ^ first)
           | { Frontend.Yosys.nl; warnings } -> (
             let d2 = Hdl.Netlist.digest nl in
             if d2 <> !netlist_digest then
               Some
                 (Printf.sprintf "round-trip digest %s != %s" d2
                    !netlist_digest)
             else if warnings <> [] then
               Some
                 (Printf.sprintf "re-import warned: %s"
                    (List.hd warnings).Lint.Diagnostic.message)
             else
               let sj =
                 Frontend.Json.to_string
                   (Frontend.Sidecar.of_meta ~stimulus:Frontend.Sidecar.S_ibex
                      ~iuv_pc:Gen.iuv_pc meta)
               in
               match
                 Frontend.Sidecar.resolve nl (Frontend.Json.parse_string sj)
               with
               | exception Frontend.Diag.Rejected r ->
                 let first =
                   match r.Lint.Diagnostic.diags with
                   | d :: _ -> d.Lint.Diagnostic.message
                   | [] -> "empty report"
                 in
                 Some ("sidecar round trip rejected: " ^ first)
               | sc ->
                 if sc.Frontend.Sidecar.iuv_pc <> Gen.iuv_pc then
                   Some "sidecar round trip changed iuv_pc"
                 else None))
  in
  (* Baseline cold run: -j1, both prunes on.  Fills the verdict cache and
     anchors every digest comparison; a failure here is attributed to the
     jobs oracle only after the -j2 run, so baseline errors surface as
     O_jobs harness messages. *)
  let continue =
    continue
    && step O_jobs (fun () ->
           match
             check_engine ~jobs:1 ~portfolio:1 ~static_prune:true
               ~static_flow_prune:Synthlc.Types.Prune_on
               ~judge:(fun _cache r ->
                 report := Some r;
                 base_digest := Synthlc.Engine.report_digest r;
                 None)
               ()
           with
           | Some m -> Some ("baseline run: " ^ m)
           | None ->
             check_engine ~jobs:2 ~portfolio:1 ~static_prune:true
               ~static_flow_prune:Synthlc.Types.Prune_on
               ~judge:(fun cache r ->
                 match digest_equal "-j2" r with
                 | Some m -> Some m
                 | None ->
                   (* The -j2 run doubles as the warm-cache probe; stash
                      its counters for the next oracle. *)
                   let hits, misses, _ = Vcache.counters cache in
                   warm_counters := Some (hits, misses);
                   None)
               ())
  in
  let continue =
    continue
    && step O_cache_warm (fun () ->
           match !warm_counters with
           | None -> Some "warm run never executed"
           | Some (hits, misses) ->
             if misses > 0 then
               Some
                 (Printf.sprintf "warm run missed: hits=%d misses=%d" hits
                    misses)
             else if hits = 0 then Some "warm run served no cache hits"
             else None)
  in
  let continue =
    continue
    && step O_prune_modes
         (check_engine ~jobs:1 ~portfolio:1 ~static_prune:false
            ~static_flow_prune:Synthlc.Types.Prune_audit
            ~judge:(fun _cache r -> digest_equal "audit (prunes off)" r))
  in
  let continue =
    continue
    && step O_portfolio
         (check_engine ~jobs:1 ~portfolio:2 ~static_prune:true
            ~static_flow_prune:Synthlc.Types.Prune_on
            ~judge:(fun _cache r -> digest_equal "--portfolio 2" r))
  in
  (* Sweep tri-mode identity: the equivalence-swept engines (and the
     audit's swept-vs-unswept cross-check, whose divergence tripwire
     raises Failure into this step) must reproduce the unswept baseline
     digest bit-for-bit. *)
  let continue =
    continue
    && step O_sweep (fun () ->
           match
             check_engine ~sweep:Mc.Checker.Sweep_on ~jobs:1 ~portfolio:1
               ~static_prune:true ~static_flow_prune:Synthlc.Types.Prune_on
               ~judge:(fun _cache r -> digest_equal "--sweep on" r)
               ()
           with
           | Some m -> Some m
           | None ->
             check_engine ~sweep:Mc.Checker.Sweep_audit ~jobs:1 ~portfolio:1
               ~static_prune:true ~static_flow_prune:Synthlc.Types.Prune_on
               ~judge:(fun _cache r -> digest_equal "--sweep audit" r)
               ())
  in
  let _ =
    continue
    && step O_grid (fun () ->
           match !report with
           | None -> Some "no baseline report"
           | Some r -> (
             match grid_violations r with
             | [] -> None
             | v :: rest ->
               Some
                 (if rest = [] then v
                  else Printf.sprintf "%s (+%d more)" v (List.length rest))))
  in
  rm_rf cache_dir;
  let verdicts =
    let ran = List.rev !verdicts in
    ran
    @ List.filter_map
        (fun o -> if List.mem_assoc o ran then None else Some (o, Skipped))
        all_oracles
  in
  let mupath_props, flow_props, pruned_static, flow_pruned_static, checker_props
      =
    match !report with
    | None -> (0, 0, 0, 0, 0)
    | Some r ->
      let pruned =
        List.fold_left
          (fun acc (t : Synthlc.Engine.transponder_report) ->
            List.fold_left
              (fun acc (_, (s : Mupath.Synth.stage_stats)) ->
                acc + s.Mupath.Synth.pruned_static)
              acc t.Synthlc.Engine.synth.Mupath.Synth.stage_stats)
          0 r.Synthlc.Engine.transponders
      in
      ( r.Synthlc.Engine.total_mupath_props,
        r.Synthlc.Engine.total_flow_props,
        pruned,
        r.Synthlc.Engine.total_flow_pruned_static,
        r.Synthlc.Engine.checker_totals.Mc.Checker.Stats.n_props )
  in
  {
    config = cfg;
    netlist_digest = !netlist_digest;
    report_digest = (match !report with None -> None | Some r -> Some (Synthlc.Engine.report_digest r));
    verdicts;
    mupath_props;
    flow_props;
    pruned_static;
    flow_pruned_static;
    checker_props;
    time_s = Unix.gettimeofday () -. t0;
  }

let fails_like ?depth ?episodes ?workdir o cfg =
  let outcome = run ?depth ?episodes ?workdir cfg in
  match failure outcome with Some (o', _) -> o' = o | None -> false
