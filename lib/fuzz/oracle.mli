(** Differential oracle battery for generated designs (DESIGN.md §16).

    Every invariant the repo's PRs shipped becomes one machine-checkable
    oracle, run against each generated design:

    - [O_validate]: the netlist passes {!Hdl.Netlist.validate};
    - [O_absint]: known-bits containment — every concrete state of a
      24-cycle randomized simulation lies inside the {!Hdl.Absint}
      abstraction (the soundness invariant behind the prune, lint, and
      SAT-substitution clients);
    - [O_lint]: µLint admission — no Error-severity diagnostics
      (exit ≤ 1 under the lint CLI contract);
    - [O_determinism]: re-elaborating the config reproduces the same
      {!Hdl.Netlist.digest};
    - [O_roundtrip]: exporting the design as Yosys JSON
      ({!Frontend.Yosys.export_string}) and importing it back reproduces
      the original netlist digest with no warnings, and the metadata
      sidecar survives its own write/read cycle;
    - [O_jobs]: [-j 2] reproduces the [-j 1] report digest bit-for-bit;
    - [O_cache_warm]: a warm verdict-cache run is all-hits/no-misses and
      digests identically to the cold run that filled the store;
    - [O_prune_modes]: static FSM-reachability prune off (audit batch,
      tripwires armed) + static taint-flow prune in audit mode reproduce
      the pruned run's digest;
    - [O_portfolio]: [--portfolio 2] reproduces the sequential digest;
    - [O_sweep]: equivalence-swept runs ([config.sweep] on, then audit —
      the audit re-running every SAT-resolved cover unswept with its
      divergence tripwire armed) reproduce the unswept digest;
    - [O_grid]: every dynamically tagged decision destination lies inside
      the static leakage grid of its operand (taint-grid vs dynamic IFT
      containment).

    The battery stops at the first failing oracle (later ones report
    [Skipped]); exceptions escaping the battery itself — as opposed to a
    divergence detected by it — are harness errors and propagate to the
    caller. *)

type oracle =
  | O_validate
  | O_absint
  | O_lint
  | O_determinism
  | O_roundtrip
  | O_jobs
  | O_cache_warm
  | O_prune_modes
  | O_portfolio
  | O_sweep
  | O_grid

type verdict = Pass | Fail of string | Skipped

type outcome = {
  config : Gen.config;
  netlist_digest : string;
  report_digest : string option;  (** Baseline run digest, once reached. *)
  verdicts : (oracle * verdict) list;  (** In battery order. *)
  mupath_props : int;
  flow_props : int;
  pruned_static : int;  (** µPATH covers discharged by the FSM prune. *)
  flow_pruned_static : int;  (** IFT covers discharged by the taint prune. *)
  checker_props : int;
  time_s : float;
}

val all_oracles : oracle list
val oracle_name : oracle -> string

val failure : outcome -> (oracle * string) option
(** First failing oracle, if any. *)

val run :
  ?depth:int -> ?episodes:int -> ?workdir:string -> Gen.config -> outcome
(** Run the full battery.  [depth]/[episodes] size the checker (defaults
    6/3, the quick profile); [workdir] hosts the per-design verdict-cache
    directory (default: the system temp dir).  The cache directory is
    deleted afterwards. *)

val fails_like :
  ?depth:int -> ?episodes:int -> ?workdir:string -> oracle -> Gen.config -> bool
(** [fails_like o c]: does [c]'s battery fail on exactly oracle class [o]?
    The shrink predicate — a shrunk config must reproduce the original
    failure class, not just any failure. *)
