(** Parameterized pipeline generator (design-space fuzzing, DESIGN.md §16).

    A [config] names one point in a small pipeline design space — frontend
    depth, functional-unit latency mix, store-buffer depth, speculation,
    cache geometry.  [build] elaborates it into a well-formed {!Hdl} DSL
    design with auto-derived µFSM/IFR metadata ({!Designs.Meta.t}), so a
    generated design drops straight into {!Synthlc.Engine.run} next to the
    hand-built cores.

    Elaboration is pure: all randomness lives in {!sample}, and
    [build c] emits a structurally identical netlist every time, so
    [Hdl.Netlist.digest] is a stable fingerprint of the config.  The fetch
    interface reuses the ibex_lite signal names ([fetch_pc],
    [if_instr_in]), so {!Designs.Stimulus.ibex} drives any generated
    design unchanged. *)

type mul_unit =
  | Mul_comb  (** Single-cycle multiplier folded into the ALU. *)
  | Mul_iter of { mul_latency : int; mul_zero_skip : bool }
      (** Iterative multiplier, [mul_latency] in [2, 4]; with
          [mul_zero_skip] a zero operand completes in one cycle (the
          operand-dependent-latency channel from the paper's §VII-B1). *)

type div_unit =
  | Div_none  (** No divider: DIV-class opcodes execute as single-cycle. *)
  | Div_serial of { div_zero_skip : bool }
      (** Restoring serial divider; with [div_zero_skip] the iteration
          count is the dividend's significant-bit count (CVA6's
          leading-zero skip), otherwise a fixed latency. *)

(** Deliberate metadata defects, for oracle-of-the-oracle testing: the
    netlist stays well-formed but the µFSM annotations violate the µLint
    admission contract, so the lint oracle must catch the design. *)
type defect =
  | Defect_label_idle  (** PL label on an idle state — L104 error. *)
  | Defect_pc_width  (** Wrong-width PCR on a µFSM — L102 error. *)

type config = {
  fe_stages : int;  (** Frontend slots (IF + ID chain), in [1, 3]. *)
  mul : mul_unit;
  div : div_unit;
  mem_wait : int;  (** Extra load wait states, in [0, 2]. *)
  stb_depth : int;  (** Store-buffer entries, in [0, 2]; 0 = direct write. *)
  dcache_sets : int;
      (** Direct-mapped load-tag sets, in [0, 2]; misses add 2 wait
          states and the tags persist across instructions (a
          store→load-style stateful channel). *)
  speculate : bool;
      (** [false] stalls fetch while an unresolved control transfer is in
          the frontend (no wrong-path fetch). *)
  defect : defect option;
}

val minimal : config
(** The bottom of the parameter lattice: 1 frontend slot, combinational
    MUL, no divider, no waits, no store buffer, no cache, speculation on. *)

val default : config
(** An ibex_lite-like midpoint used by docs and benches. *)

val sample : Random.State.t -> config
(** Draw a config uniformly from the parameter space (defect-free). *)

val config_for : seed:int -> int -> config
(** [config_for ~seed i] is the config of design [i] of campaign [seed]:
    a private PRNG stream seeded from [(seed, i)], so [--only i]
    regenerates design [i] without replaying designs [0..i-1]. *)

val shrink_steps : config -> config list
(** One-step reductions toward {!minimal} along the parameter lattice
    (never touches [defect]).  Empty exactly on configs equal to
    {!minimal} up to [defect]. *)

val describe : config -> string
(** One-line human-readable form, stable across runs (used for the
    design-name hash and reproducer output). *)

val to_json : config -> string
(** The config as a JSON object (corpus summary format). *)

val defect_name : defect -> string
val defect_of_string : string -> defect option

val name : config -> string
(** Deterministic design name, ["fuzz_" ^ hash-of-describe]. *)

val build : config -> Designs.Meta.t
(** Elaborate the config.  Raises [Invalid_argument] on out-of-range
    parameters. *)

val iuv_pc : int
(** IUV slot convention shared with the built-in cores. *)

val pick_iuv : config -> Isa.t
(** A transponder instruction that exercises the config's most
    interesting unit (load when cached, store when buffered, DIV/MUL when
    iterative, ADD otherwise). *)

val pick_transmitters : config -> Isa.opcode list
(** A small transmitter-candidate set matched to [pick_iuv]. *)
