(** µLint diagnostics: severities, stable codes, and text/JSON rendering.

    Codes are stable across releases so CI filters and waivers can key on
    them: [L0xx] structural netlist findings, [L1xx] annotation findings,
    [L2xx] reachability findings, [T3xx] taint-flow findings, [A4xx]
    known-bits findings.  See DESIGN.md §12 for the catalogue. *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** Stable diagnostic code, e.g. ["L004"]. *)
  severity : severity;
  signal : int option;  (** Offending netlist node, when one exists. *)
  signal_name : string option;
  message : string;
}

type report = { design : string; diags : t list }

val make :
  ?signal:int ->
  ?signal_name:string ->
  code:string ->
  severity:severity ->
  string ->
  t

val severity_name : severity -> string

val pass_of_code : string -> string
(** The pass a diagnostic code belongs to, derived from its prefix
    ([L0xx] → ["structural"], … [A4xx] → ["knownbits"]); ["unknown"] for
    unrecognized codes. *)

val rule_summary : string -> string
(** One-line catalogue entry for a diagnostic code — what the rule means,
    independent of the instance-specific message. *)

val counts : t list -> int * int * int
(** [(errors, warnings, infos)]. *)

val exit_code : report list -> int
(** 0 when every report is clean, 1 when the worst finding is a warning,
    2 on any error.  Infos never affect the exit code. *)

val pp_report : Format.formatter -> report -> unit

val to_json : report list -> string
(** One JSON array entry per report, with per-severity counts and every
    diagnostic (including its [pass] name and one-line [rule] summary) —
    the CI artifact format. *)
