(** µLint driver: the structural, annotation, and reachability passes over
    one design, concatenated into a single report. *)

val run_design : Designs.Meta.t -> Diagnostic.report
