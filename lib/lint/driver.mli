(** µLint driver: the structural, annotation, reachability, and taint-flow
    passes over one design, concatenated into a single report. *)

val run_design : Designs.Meta.t -> Diagnostic.report
