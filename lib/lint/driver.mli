(** µLint driver: the structural, annotation, reachability, taint-flow,
    and known-bits passes over one design, concatenated into a single
    report. *)

val run_design : Designs.Meta.t -> Diagnostic.report
