(** µLint driver: the structural, annotation, reachability, taint-flow,
    known-bits, and equivalence passes over one design, concatenated into
    a single report. *)

val run_design : Designs.Meta.t -> Diagnostic.report
