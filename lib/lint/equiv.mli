(** Equivalence µLint pass (E501–E503).

    Runs the simulation-guided SAT sweep ({!Hdl.Equiv.analyze}) and
    reports redundancy it {e proves} — not suspects: every finding is
    backed by an UNSAT miter over the combinational logic, so two
    reported nodes compute the same function of the registers and inputs
    on every cycle.

    - [E501] (info): a duplicate logic cone — two or more combinational
      nodes proven to compute the same word.
    - [E502] (info): a complementary duplicate — a 1-bit node proven to
      be the negation of another; the pair collapses to one cone plus an
      inverter.
    - [E503] (info): a node proven constant by the sweep that the
      known-bits analysis ({!Hdl.Absint}) cannot see — redundancy beyond
      [A401]'s reach, since the proof needs a SAT query rather than a
      dataflow fixpoint.

    All three are informational: duplicate logic is legal (and common in
    post-synthesis netlists), but it inflates every downstream encoding.
    The annotated metadata signals are passed as merge barriers, matching
    what a [config.sweep] run would actually merge.

    The pass bails out silently on netlists the sweep rejects (e.g.
    combinationally cyclic ones): reporting those is the structural
    pass's job. *)

val run : Designs.Meta.t -> Diagnostic.t list
