(* Taint-flow µLint pass (T301–T305): runs the same static word-level taint
   dataflow SynthLC's Flow stage uses for its cover-pruning pre-pass
   (Hdl.Analysis.taint_reach) and audits the IFT-facing annotations against
   it — dead operand annotations, vacuous blockers, persistent state no
   taint can reach, and registers Ift.instrument would reject outright. *)

module Meta = Designs.Meta
module N = Hdl.Netlist
module D = Diagnostic

let valid nl s = s >= 0 && s < N.num_nodes nl

let connected_reg nl s =
  valid nl s
  &&
  match (N.node nl s).N.kind with N.Reg { next = Some _; _ } -> true | _ -> false

let node_name nl s =
  match (N.node nl s).N.name with
  | Some nm -> nm
  | None -> Printf.sprintf "n%d" s

let run (meta : Meta.t) =
  let nl = meta.Meta.nl in
  let diags = ref [] in
  let emit ?signal ~code ~severity fmt =
    Printf.ksprintf
      (fun msg ->
        let signal_name = Option.map (node_name nl) signal in
        diags := D.make ?signal ?signal_name ~code ~severity msg :: !diags)
      fmt
  in

  (* T305: Ift.instrument rejects any netlist with an enabled register, so
     none of SynthLC's flow stage can run on this design as annotated. *)
  N.iter_nodes nl (fun n ->
      match n.N.kind with
      | N.Reg { enable = Some _; _ } ->
        emit ~signal:n.N.id ~code:"T305" ~severity:D.Warning
          "register %s has an enable: IFT instrumentation rejects it (taint \
           would be lost on hold cycles)"
          (node_name nl n.N.id)
      | _ -> ());

  (* T304: taint inject (operand) and block (ARF/AMEM) targets must be
     connected registers — an unconnected one type-checks as a register
     (so L105 passes it) but Ift.instrument fails and the shadow state has
     no next-state to pin. *)
  let check_connected role s =
    if valid nl s then
      match (N.node nl s).N.kind with
      | N.Reg { next = None; _ } ->
        emit ~signal:s ~code:"T304" ~severity:D.Error
          "%s is an unconnected register — taint injection/blocking has no \
           next-state to act on"
          role
      | _ -> ()
  in
  List.iter
    (fun (k, s) -> check_connected ("operand." ^ k) s)
    meta.Meta.operand_regs;
  List.iteri
    (fun i s -> check_connected (Printf.sprintf "arf[%d]" i) s)
    meta.Meta.arf;
  List.iteri
    (fun i s -> check_connected (Printf.sprintf "amem[%d]" i) s)
    meta.Meta.amem;

  let operands =
    List.filter (fun (_, s) -> connected_reg nl s) meta.Meta.operand_regs
  in
  let blocked = meta.Meta.arf @ meta.Meta.amem in
  let state_sigs =
    List.concat_map
      (fun (u : Meta.ufsm) -> u.Meta.pcr :: u.Meta.vars)
      meta.Meta.ufsms
    |> List.filter (valid nl)
  in

  if operands <> [] then begin
    (* T301: a dead operand annotation — its taint reaches no µFSM state
       variable or PCR, so no decision can ever be tagged on it and every
       flow query over it is a statically-wasted cover. *)
    List.iter
      (fun (k, r) ->
        let masks = Hdl.Analysis.taint_reach ~blocked ~sources:[ r ] nl in
        if
          not
            (List.exists (Hdl.Analysis.taint_reaches masks) state_sigs)
        then
          (* Info, not warning: a dead operand is wasted flow-stage work,
             not unsoundness, and legitimately occurs (cva6_cache's rs2
             steers nothing — the cache channel is address-only). *)
          emit ~signal:r ~code:"T301" ~severity:D.Info
            "operand %s taint reaches no µFSM state variable or PCR — SynthLC \
             can never tag a decision on it"
            k)
      operands;

    (* T302: a blocker that blocks nothing.  Analysed with blocking OFF: a
       blocked register no operand taint can reach even then is certainly a
       vacuous annotation. *)
    let unblocked_masks =
      Hdl.Analysis.taint_reach ~sources:(List.map snd operands) nl
    in
    List.iter
      (fun r ->
        if connected_reg nl r && not (Hdl.Analysis.taint_reaches unblocked_masks r)
        then
          emit ~signal:r ~code:"T302" ~severity:D.Info
            "blocked register %s blocks nothing: no operand taint can reach \
             it even without blocking"
            (node_name nl r))
      blocked;

    (* T303: persistent-state candidates (symbolically-initialised,
       non-architectural registers — what the flow stage exempts from the
       sticky-taint flush) outside every operand's taint cone: the
       exemption is irrelevant for them. *)
    let cone_masks =
      Hdl.Analysis.taint_reach ~blocked ~sources:(List.map snd operands) nl
    in
    N.iter_nodes nl (fun n ->
        match n.N.kind with
        | N.Reg { init = N.Init_symbolic; _ }
          when (not (List.mem n.N.id blocked))
               && not (Hdl.Analysis.taint_reaches cone_masks n.N.id) ->
          emit ~signal:n.N.id ~code:"T303" ~severity:D.Info
            "persistent register %s lies outside every operand taint cone — \
             the sticky-taint flush exemption is irrelevant for it"
            (node_name nl n.N.id)
        | _ -> ())
  end;

  List.rev !diags
