(** Reachability µLint pass (codes L201–L203): abstract µFSM reachability
    (see {!Hdl.Analysis.fsm_reachable}) reported as lint findings —
    statically-prunable unlabelled states (info), labelled-but-unreachable
    states (warning, a likely annotation bug), and non-convergence (info). *)

val run : Designs.Meta.t -> Diagnostic.t list

val statically_dead_unlabelled :
  Designs.Meta.t -> (string * Bitvec.t) list
(** The unlabelled, non-idle state valuations the abstraction proves
    unreachable, as [(µFSM name, valuation)] pairs — exactly the covers the
    synthesis pre-pass prunes.  Empty for µFSMs where the abstraction bails. *)
