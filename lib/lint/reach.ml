(* Reachability µLint pass (L201–L203): runs the same abstract µFSM
   reachability analysis Mupath.Synth uses for its static cover-pruning
   pre-pass, and reports what it would prune.  L202 flags labelled states
   the abstraction proves unreachable — almost always an annotation bug,
   since the designer named a state the design can never enter. *)

module Meta = Designs.Meta
module D = Diagnostic

let run (meta : Meta.t) =
  List.concat_map
    (fun (u : Meta.ufsm) ->
      match Hdl.Analysis.fsm_reachable meta.Meta.nl ~vars:u.Meta.vars with
      | None ->
        [
          D.make ~code:"L203" ~severity:D.Info
            (Printf.sprintf
               "µFSM %s: abstract reachability did not converge; none of its \
                covers are statically pruned"
               u.Meta.ufsm_name);
        ]
      | Some reach ->
        let reachable v = List.exists (Bitvec.equal v) reach in
        let idle v = List.exists (Bitvec.equal v) u.Meta.idle_states in
        let labelled v =
          List.exists (fun (s, _) -> Bitvec.equal s v) u.Meta.state_labels
        in
        let dead_labels =
          List.filter_map
            (fun (v, lbl) ->
              if (not (idle v)) && not (reachable v) then
                Some
                  (D.make ~code:"L202" ~severity:D.Warning
                     (Printf.sprintf
                        "µFSM %s: labelled state %s (%s) is statically \
                         unreachable — is the annotation wrong?"
                        u.Meta.ufsm_name lbl (Bitvec.to_hex_string v)))
              else None)
            u.Meta.state_labels
        in
        let unlabelled =
          List.filter
            (fun v -> (not (idle v)) && not (labelled v))
            (Meta.all_state_valuations meta u)
        in
        let dead_unlabelled =
          List.filter (fun v -> not (reachable v)) unlabelled
        in
        let prune_info =
          if dead_unlabelled = [] then []
          else
            [
              D.make ~code:"L201" ~severity:D.Info
                (Printf.sprintf
                   "µFSM %s: %d of %d unlabelled state(s) statically \
                    unreachable (%s); synthesis prunes their covers without \
                    the model checker"
                   u.Meta.ufsm_name
                   (List.length dead_unlabelled)
                   (List.length unlabelled)
                   (String.concat ", "
                      (List.map Bitvec.to_hex_string dead_unlabelled)));
            ]
        in
        dead_labels @ prune_info)
    meta.Meta.ufsms

let statically_dead_unlabelled (meta : Meta.t) =
  List.concat_map
    (fun (u : Meta.ufsm) ->
      match Hdl.Analysis.fsm_reachable meta.Meta.nl ~vars:u.Meta.vars with
      | None -> []
      | Some reach ->
        let reachable v = List.exists (Bitvec.equal v) reach in
        let idle v = List.exists (Bitvec.equal v) u.Meta.idle_states in
        let labelled v =
          List.exists (fun (s, _) -> Bitvec.equal s v) u.Meta.state_labels
        in
        List.filter_map
          (fun v ->
            if (not (idle v)) && (not (labelled v)) && not (reachable v) then
              Some (u.Meta.ufsm_name, v)
            else None)
          (Meta.all_state_valuations meta u))
    meta.Meta.ufsms
