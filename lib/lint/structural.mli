(** Structural µLint pass (codes L001–L007): combinational cycles,
    unconnected registers/wires, width audit of [Extract]/[Concat]/[Mux],
    dead cells, constant-foldable logic, unnamed annotated signals, and
    unused inputs. *)

val run : Designs.Meta.t -> Diagnostic.t list
