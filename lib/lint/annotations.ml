(* Annotation µLint pass (L101–L106): does the design metadata actually
   describe the netlist it points at?  Every referenced signal must exist
   with the width its role demands, µFSM state variables must be connected
   registers, labels must be unambiguous and representable, and the signals
   SynthLC uses as taint boundaries (ARF/AMEM blockers, operand-register
   introduction points) must be registers so IFT instrumentation can pin or
   inject their shadows. *)

module N = Hdl.Netlist
module Meta = Designs.Meta
module D = Diagnostic

(* Every signal the metadata annotates, with a human-readable role. *)
let signals (meta : Meta.t) =
  List.concat
    (List.mapi
       (fun i (s : Meta.ifr_slot) ->
         [
           (Printf.sprintf "ifr[%d].valid" i, s.Meta.ifr_valid);
           (Printf.sprintf "ifr[%d].pc" i, s.Meta.ifr_pc);
           (Printf.sprintf "ifr[%d].word" i, s.Meta.ifr_word);
         ])
       meta.Meta.ifrs)
  @ [
      ("operand_stage_valid", meta.Meta.operand_stage_valid);
      ("operand_stage_pc", meta.Meta.operand_stage_pc);
      ("commit", meta.Meta.commit);
      ("commit_pc", meta.Meta.commit_pc);
      ("flush", meta.Meta.flush);
    ]
  @ List.concat_map
      (fun (u : Meta.ufsm) ->
        (u.Meta.ufsm_name ^ ".pcr", u.Meta.pcr)
        :: List.mapi
             (fun i v -> (Printf.sprintf "%s.var[%d]" u.Meta.ufsm_name i, v))
             u.Meta.vars)
      meta.Meta.ufsms
  @ List.map (fun (k, s) -> ("operand." ^ k, s)) meta.Meta.operand_regs
  @ List.mapi (fun i s -> (Printf.sprintf "arf[%d]" i, s)) meta.Meta.arf
  @ List.mapi (fun i s -> (Printf.sprintf "amem[%d]" i, s)) meta.Meta.amem
  @ List.mapi
      (fun i s -> (Printf.sprintf "extra_assumes[%d]" i, s))
      meta.Meta.extra_assumes

let run (meta : Meta.t) =
  let nl = meta.Meta.nl in
  let nn = N.num_nodes nl in
  let valid s = s >= 0 && s < nn in
  let diags = ref [] in
  let emit ?signal ~code ~severity fmt =
    Printf.ksprintf
      (fun msg ->
        let signal_name =
          Option.bind signal (fun s ->
              if valid s then (N.node nl s).N.name else None)
        in
        diags := D.make ?signal ?signal_name ~code ~severity msg :: !diags)
      fmt
  in
  let w s = N.width nl s in

  (* L101: every annotated signal must be a node of this netlist. *)
  let sigs = signals meta in
  List.iter
    (fun (role, s) ->
      if not (valid s) then
        emit ~signal:s ~code:"L101" ~severity:D.Error
          "annotated signal %s refers to node %d, outside the netlist (%d nodes)"
          role s nn)
    sigs;

  (* L102: role-specific width expectations.  Guard every node access on
     L101 having passed for that signal. *)
  let check_w1 role s =
    if valid s && w s <> 1 then
      emit ~signal:s ~code:"L102" ~severity:D.Error
        "%s must be 1 bit wide, has width %d" role (w s)
  in
  check_w1 "commit" meta.Meta.commit;
  check_w1 "flush" meta.Meta.flush;
  check_w1 "operand_stage_valid" meta.Meta.operand_stage_valid;
  List.iteri
    (fun i (s : Meta.ifr_slot) ->
      check_w1 (Printf.sprintf "ifr[%d].valid" i) s.Meta.ifr_valid;
      if valid s.Meta.ifr_word && w s.Meta.ifr_word <> Isa.width then
        emit ~signal:s.Meta.ifr_word ~code:"L102" ~severity:D.Error
          "ifr[%d].word must hold a %d-bit instruction encoding, has width %d"
          i Isa.width (w s.Meta.ifr_word))
    meta.Meta.ifrs;
  List.iteri
    (fun i s -> check_w1 (Printf.sprintf "extra_assumes[%d]" i) s)
    meta.Meta.extra_assumes;
  (if valid meta.Meta.commit_pc then begin
     let pcw = w meta.Meta.commit_pc in
     let check_pc role s =
       if valid s && w s <> pcw then
         emit ~signal:s ~code:"L102" ~severity:D.Error
           "%s has width %d but commit_pc has width %d — PC-as-IID comparisons \
            would be ill-typed"
           role (w s) pcw
     in
     check_pc "operand_stage_pc" meta.Meta.operand_stage_pc;
     List.iteri
       (fun i (s : Meta.ifr_slot) ->
         check_pc (Printf.sprintf "ifr[%d].pc" i) s.Meta.ifr_pc)
       meta.Meta.ifrs;
     List.iter
       (fun (u : Meta.ufsm) -> check_pc (u.Meta.ufsm_name ^ ".pcr") u.Meta.pcr)
       meta.Meta.ufsms
   end);

  (* L103/L104/L106: per-µFSM structure. *)
  List.iter
    (fun (u : Meta.ufsm) ->
      if u.Meta.vars = [] then
        emit ~code:"L103" ~severity:D.Error "µFSM %s has no state variables"
          u.Meta.ufsm_name;
      List.iter
        (fun v ->
          if valid v then
            match (N.node nl v).N.kind with
            | N.Reg { next = Some _; _ } -> ()
            | N.Reg { next = None; _ } ->
              emit ~signal:v ~code:"L103" ~severity:D.Error
                "µFSM %s state variable is an unconnected register"
                u.Meta.ufsm_name
            | _ ->
              emit ~signal:v ~code:"L103" ~severity:D.Error
                "µFSM %s state variable must be a register" u.Meta.ufsm_name)
        u.Meta.vars;
      (if valid u.Meta.pcr then
         match (N.node nl u.Meta.pcr).N.kind with
         | N.Reg _ -> ()
         | _ ->
           emit ~signal:u.Meta.pcr ~code:"L103" ~severity:D.Error
             "µFSM %s PCR (per-µFSM IIR) must be a register" u.Meta.ufsm_name);
      let sw = Meta.ufsm_state_width meta u in
      List.iter
        (fun (v, lbl) ->
          if Bitvec.width v <> sw then
            emit ~code:"L103" ~severity:D.Error
              "µFSM %s: label %s valuation has width %d, state width is %d"
              u.Meta.ufsm_name lbl (Bitvec.width v) sw)
        u.Meta.state_labels;
      List.iter
        (fun v ->
          if Bitvec.width v <> sw then
            emit ~code:"L103" ~severity:D.Error
              "µFSM %s: idle state %s has width %d, state width is %d — not \
               representable"
              u.Meta.ufsm_name (Bitvec.to_hex_string v) (Bitvec.width v) sw)
        u.Meta.idle_states;
      (* L104: unambiguous labels. *)
      ignore
        (List.fold_left
           (fun seen (v, lbl) ->
             if List.exists (fun (v', _) -> Bitvec.equal v v') seen then begin
               emit ~code:"L104" ~severity:D.Error
                 "µFSM %s: state %s is labelled twice (second label %s)"
                 u.Meta.ufsm_name (Bitvec.to_hex_string v) lbl;
               seen
             end
             else (v, lbl) :: seen)
           [] u.Meta.state_labels);
      List.iter
        (fun (v, lbl) ->
          if List.exists (Bitvec.equal v) u.Meta.idle_states then
            emit ~code:"L104" ~severity:D.Error
              "µFSM %s: label %s is on idle state %s and would be silently \
               dropped by PL-group collection"
              u.Meta.ufsm_name lbl (Bitvec.to_hex_string v))
        u.Meta.state_labels;
      (* L106: without an idle state every valuation is a candidate PL. *)
      if u.Meta.idle_states = [] then
        emit ~code:"L106" ~severity:D.Warning
          "µFSM %s declares no idle state" u.Meta.ufsm_name)
    meta.Meta.ufsms;

  (* L105: taint boundaries.  The ARF/AMEM lists are the IFT blockers
     (shadow pinned to 0 between instructions) and the operand registers are
     the taint-introduction points — both instrument registers only. *)
  let check_reg role s =
    if valid s then
      match (N.node nl s).N.kind with
      | N.Reg _ -> ()
      | _ ->
        emit ~signal:s ~code:"L105" ~severity:D.Error
          "%s must be a register — IFT pins/injects shadow state at registers \
           only"
          role
  in
  List.iteri (fun i s -> check_reg (Printf.sprintf "arf[%d]" i) s) meta.Meta.arf;
  List.iteri
    (fun i s -> check_reg (Printf.sprintf "amem[%d]" i) s)
    meta.Meta.amem;
  List.iter
    (fun (k, s) -> check_reg ("operand." ^ k) s)
    meta.Meta.operand_regs;

  List.rev !diags
