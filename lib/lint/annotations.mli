(** Annotation µLint pass (codes L101–L106): checks that the design metadata
    — IFR slots, operand stage, commit/flush, µFSM declarations, ARF/AMEM
    taint boundaries — consistently describes the netlist it annotates. *)

val signals : Designs.Meta.t -> (string * Hdl.Netlist.signal) list
(** Every signal the metadata references, paired with its role (e.g.
    ["ifr[0].pc"], ["scb0.var[0]"]).  Shared with the structural pass,
    which treats these as observability roots. *)

val run : Designs.Meta.t -> Diagnostic.t list
