(* Structural µLint pass (L001–L007): netlist-level findings independent of
   annotation semantics — combinational cycles, unconnected nodes, a width
   audit of the width-sensitive kinds, dead logic, foldable constants,
   unnamed annotated signals, and unused inputs. *)

module N = Hdl.Netlist
module Meta = Designs.Meta
module D = Diagnostic

let name_or_id nl s =
  match (N.node nl s).N.name with
  | Some nm -> Printf.sprintf "%s (node %d)" nm s
  | None -> Printf.sprintf "node %d" s

let kind_name = function
  | N.Input -> "input"
  | N.Const _ -> "constant"
  | N.Reg _ -> "register"
  | N.Wire _ -> "wire"
  | N.Not _ -> "not"
  | N.Op2 _ -> "operator"
  | N.Mux _ -> "mux"
  | N.Extract _ -> "extract"
  | N.Concat _ -> "concat"
  | N.ReduceOr _ -> "reduce-or"
  | N.ReduceAnd _ -> "reduce-and"

let run (meta : Meta.t) =
  let nl = meta.Meta.nl in
  let nn = N.num_nodes nl in
  let mk ?signal ~code ~severity fmt =
    Printf.ksprintf
      (fun msg ->
        let signal_name =
          Option.bind signal (fun s -> (N.node nl s).N.name)
        in
        D.make ?signal ?signal_name ~code ~severity msg)
      fmt
  in

  (* L001: every combinational cycle, one diagnostic per SCC. *)
  let cycles =
    List.map
      (fun scc ->
        mk ~signal:(List.hd scc) ~code:"L001" ~severity:D.Error
          "combinational cycle through %s"
          (String.concat " -> " (List.map (name_or_id nl) scc)))
      (N.comb_sccs nl)
  in

  (* L002: unconnected registers and wires. *)
  let unconnected =
    N.fold_nodes nl ~init:[] ~f:(fun acc n ->
        match n.N.kind with
        | N.Reg { next = None; _ } ->
          mk ~signal:n.N.id ~code:"L002" ~severity:D.Error
            "register has no next-state driver"
          :: acc
        | N.Wire { driver = None } ->
          mk ~signal:n.N.id ~code:"L002" ~severity:D.Error "wire has no driver"
          :: acc
        | _ -> acc)
    |> List.rev
  in

  (* L003: width audit of the width-sensitive kinds.  The construction API
     enforces these, so a finding means the node table was built or mutated
     outside it. *)
  let widths =
    N.fold_nodes nl ~init:[] ~f:(fun acc n ->
        let bad fmt =
          Printf.ksprintf
            (fun msg ->
              mk ~signal:n.N.id ~code:"L003" ~severity:D.Error "%s" msg :: acc)
            fmt
        in
        match n.N.kind with
        | N.Extract { hi; lo; arg } ->
          let wa = N.width nl arg in
          if lo < 0 || hi >= wa || hi < lo then
            bad "extract [%d:%d] outside its %d-bit argument" hi lo wa
          else if n.N.width <> hi - lo + 1 then
            bad "extract [%d:%d] has width %d, expected %d" hi lo n.N.width
              (hi - lo + 1)
          else acc
        | N.Concat parts ->
          let sum = List.fold_left (fun s p -> s + N.width nl p) 0 parts in
          if n.N.width <> sum then
            bad "concat has width %d but its parts sum to %d" n.N.width sum
          else acc
        | N.Mux { sel; on_true; on_false } ->
          if N.width nl sel <> 1 then
            bad "mux selector has width %d, must be 1" (N.width nl sel)
          else if N.width nl on_true <> n.N.width || N.width nl on_false <> n.N.width
          then
            bad "mux branches have widths %d/%d, node has width %d"
              (N.width nl on_true) (N.width nl on_false) n.N.width
          else acc
        | _ -> acc)
    |> List.rev
  in

  (* L004/L007: observability.  Roots are all registers, all named signals
     (the IR's outputs), and every annotated signal; anything outside their
     cone of influence cannot affect observable behaviour.  Unreferenced
     inputs are reported separately as info — an input is an interface
     commitment, not necessarily a bug. *)
  let named_roots =
    N.fold_nodes nl ~init:[] ~f:(fun acc n ->
        if n.N.name <> None then n.N.id :: acc else acc)
  in
  let annotated = List.map snd (Annotations.signals meta) in
  let annotated = List.filter (fun s -> s >= 0 && s < nn) annotated in
  let roots = N.registers nl @ named_roots @ annotated in
  let dead = Hdl.Analysis.dead_cells nl ~roots in
  let dead_diags =
    List.filter_map
      (fun s ->
        match (N.node nl s).N.kind with
        | N.Const _ | N.Input -> None (* constants are free; inputs -> L007 *)
        | k ->
          Some
            (mk ~signal:s ~code:"L004" ~severity:D.Warning
               "dead %s: not in the cone of influence of any register, named \
                signal, or annotated signal"
               (kind_name k)))
      dead
  in
  let referenced = Array.make (max nn 1) false in
  N.iter_nodes nl (fun n ->
      let deps =
        match n.N.kind with
        | N.Reg { next; enable; _ } -> List.filter_map Fun.id [ next; enable ]
        | _ -> N.comb_fanin nl n.N.id
      in
      List.iter (fun d -> referenced.(d) <- true) deps);
  let unused_inputs =
    List.filter_map
      (fun s ->
        if referenced.(s) then None
        else
          Some
            (mk ~signal:s ~code:"L007" ~severity:D.Info
               "input drives no logic"))
      (N.inputs nl)
  in

  (* L005: constant-foldable logic, aggregated into one finding. *)
  let foldable = Hdl.Analysis.constant_foldable nl in
  let foldable_diag =
    match foldable with
    | [] -> []
    | l ->
      let shown = List.filteri (fun i _ -> i < 8) l in
      [
        mk ~code:"L005" ~severity:D.Info
          "%d node(s) are constant-foldable (e.g. %s%s)" (List.length l)
          (String.concat ", " (List.map (name_or_id nl) shown))
          (if List.length l > 8 then ", ..." else "");
      ]
  in

  (* L006: annotated signals should carry names — counterexample traces and
     diagnostics refer to signals by name. *)
  let unnamed_annotated =
    List.filter_map
      (fun (role, s) ->
        if s >= 0 && s < nn && (N.node nl s).N.name = None then
          Some
            (mk ~signal:s ~code:"L006" ~severity:D.Warning
               "annotated signal %s is unnamed — witness traces cannot refer \
                to it"
               role)
        else None)
      (Annotations.signals meta)
  in

  cycles @ unconnected @ widths @ dead_diags @ foldable_diag
  @ unnamed_annotated @ unused_inputs
