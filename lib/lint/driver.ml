(* µLint entry point: run all six passes over a design's metadata. *)

let run_design (meta : Designs.Meta.t) =
  let diags =
    Structural.run meta @ Annotations.run meta @ Reach.run meta
    @ Taintflow.run meta @ Knownbits.run meta @ Equiv.run meta
  in
  { Diagnostic.design = meta.Designs.Meta.design_name; diags }
