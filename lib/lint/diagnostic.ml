type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  signal : int option;
  signal_name : string option;
  message : string;
}

type report = { design : string; diags : t list }

let make ?signal ?signal_name ~code ~severity message =
  { code; severity; signal; signal_name; message }

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let counts diags =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) diags

let exit_code reports =
  let e, w =
    List.fold_left
      (fun (e, w) r ->
        let e', w', _ = counts r.diags in
        (e + e', w + w'))
      (0, 0) reports
  in
  if e > 0 then 2 else if w > 0 then 1 else 0

(* Codes are namespaced by prefix (see the .mli); the pass name is derivable
   from the code alone, which keeps the JSON self-describing without
   threading pass identity through every emit site. *)
let pass_of_code code =
  if String.length code < 2 then "unknown"
  else
    match (code.[0], code.[1]) with
    | 'L', '0' -> "structural"
    | 'L', '1' -> "annotations"
    | 'L', '2' -> "reach"
    | 'T', '3' -> "taintflow"
    | 'A', '4' -> "knownbits"
    | 'F', '5' -> "frontend"
    | _ -> "unknown"

(* One-line catalogue entries: what the rule means, independent of the
   instance-specific message.  CI dashboards group on these. *)
let rule_summary = function
  | "L001" -> "combinational cycle"
  | "L002" -> "unconnected register or wire"
  | "L003" -> "width mismatch in extract/concat/mux"
  | "L004" -> "dead cell outside every cone of influence"
  | "L005" -> "constant-foldable logic"
  | "L006" -> "annotated signal is unnamed"
  | "L007" -> "input drives no logic"
  | "L101" -> "annotation refers outside the netlist"
  | "L102" -> "annotated signal has the wrong width"
  | "L103" -> "malformed uFSM declaration"
  | "L104" -> "duplicate or idle-state uFSM label"
  | "L105" -> "IFT annotation target is not a register"
  | "L106" -> "uFSM declares no idle state"
  | "L201" -> "unlabelled uFSM states statically unreachable"
  | "L202" -> "labelled uFSM state statically unreachable"
  | "L203" -> "abstract reachability did not converge"
  | "T301" -> "operand taint reaches no uFSM state"
  | "T302" -> "blocker blocks nothing"
  | "T303" -> "persistent register outside every taint cone"
  | "T304" -> "taint inject/block target unconnected"
  | "T305" -> "enabled register defeats IFT instrumentation"
  | "A401" -> "signal stuck at one value in every reachable state"
  | "A402" -> "mux select invariant: one arm is dead"
  | "A403" -> "comparison outcome is foregone"
  | "A404" -> "extract discards bits proven 1"
  | "A405" -> "register never toggles from reset"
  | "A406" -> "register enable proven always 1"
  | "F501" -> "unsupported cell type in imported netlist"
  | "F502" -> "malformed netlist JSON"
  | "F503" -> "clock discipline violation"
  | "F504" -> "x/z constant bit treated as 0"
  | "F505" -> "undriven net consumed by a cell"
  | "F506" -> "net driven by more than one cell"
  | "F507" -> "combinational cycle among imported cells"
  | "F508" -> "imported netlist failed validation"
  | "F509" -> "netname not representable on the word-level IR"
  | "F510" -> "sidecar names an unknown signal"
  | "F511" -> "malformed metadata sidecar"
  | "F512" -> "malformed cell connection or parameter"
  | _ -> "unknown rule"

let where d =
  match (d.signal_name, d.signal) with
  | Some nm, Some s -> Printf.sprintf "%s (node %d): " nm s
  | Some nm, None -> nm ^ ": "
  | None, Some s -> Printf.sprintf "node %d: " s
  | None, None -> ""

let pp_report ppf r =
  let e, w, i = counts r.diags in
  Format.fprintf ppf "%s: %d error(s), %d warning(s), %d info(s)" r.design e w i;
  List.iter
    (fun d ->
      Format.fprintf ppf "@\n  %s %-7s %s%s" d.code
        (severity_name d.severity)
        (where d) d.message)
    r.diags;
  Format.fprintf ppf "@\n"

(* Hand-rolled JSON writer (the repo carries no JSON dependency). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json reports =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "[";
  List.iteri
    (fun ri r ->
      if ri > 0 then add ",";
      let e, w, i = counts r.diags in
      add "\n  {\"design\": \"%s\", \"errors\": %d, \"warnings\": %d, \"infos\": %d,\n   \"diagnostics\": ["
        (json_escape r.design) e w i;
      List.iteri
        (fun di d ->
          if di > 0 then add ",";
          add "\n    {\"code\": \"%s\", \"pass\": \"%s\", \"rule\": \"%s\", \"severity\": \"%s\", "
            (json_escape d.code)
            (json_escape (pass_of_code d.code))
            (json_escape (rule_summary d.code))
            (severity_name d.severity);
          (match d.signal with
          | Some s -> add "\"signal\": %d, " s
          | None -> add "\"signal\": null, ");
          (match d.signal_name with
          | Some nm -> add "\"signal_name\": \"%s\", " (json_escape nm)
          | None -> add "\"signal_name\": null, ");
          add "\"message\": \"%s\"}" (json_escape d.message))
        r.diags;
      if r.diags <> [] then add "\n   ";
      add "]}")
    reports;
  add "\n]\n";
  Buffer.contents buf
