(* Known-bits µLint pass (A401–A406): runs the same abstract interpretation
   the prune and SAT-simplification clients use (Hdl.Absint) and reports
   logic the analysis proves degenerate in every reachable state — stuck
   signals, dead mux arms, foregone comparisons, truncated known-1 bits,
   never-toggling registers, and always-true enables.  Everything here is
   invariant-grade: a finding holds on every cycle of every execution from
   reset, not just on the cycles some testbench happened to visit. *)

module Meta = Designs.Meta
module N = Hdl.Netlist
module AI = Hdl.Absint
module D = Diagnostic

let node_name nl s =
  match (N.node nl s).N.name with
  | Some nm -> nm
  | None -> Printf.sprintf "n%d" s

(* Bit mask with positions [lo..hi] set, in a word of width [w]. *)
let range_mask ~w ~hi ~lo =
  let hi = min hi (w - 1) in
  if lo > hi then Bitvec.zero w
  else
    Bitvec.shift_left
      (Bitvec.zero_extend (Bitvec.ones (hi - lo + 1)) w)
      lo

let run (meta : Meta.t) =
  let nl = meta.Meta.nl in
  (* The analysis needs a validated netlist (acyclic combinational logic,
     connected registers).  µLint must degrade, not crash, on the broken
     netlists the structural pass exists to report — so bail out silently
     if the fixpoint rejects the design. *)
  match (try Some (AI.known_bits nl) with _ -> None) with
  | None -> []
  | Some kb ->
    let diags = ref [] in
    let emit ?signal ~code ~severity fmt =
      Printf.ksprintf
        (fun msg ->
          let signal_name = Option.map (node_name nl) signal in
          diags := D.make ?signal ?signal_name ~code ~severity msg :: !diags)
        fmt
    in
    let fact s = kb.(s) in
    let fully_known s =
      let kn, _ = fact s in
      Bitvec.is_ones kn
    in
    (* Structurally-constant nodes are the structural pass's business
       (constant folding); this pass only reports what needs the register
       fixpoint to see. *)
    let foldable = Hashtbl.create 16 in
    List.iter
      (fun s -> Hashtbl.replace foldable s ())
      (Hdl.Analysis.constant_foldable nl);
    let structurally_const s = Hashtbl.mem foldable s in
    N.iter_nodes nl (fun n ->
        let id = n.N.id in
        match n.N.kind with
        | N.Input | N.Const _ -> ()
        | N.Reg { next = None; _ } -> ()
        | N.Reg { init; enable; _ } ->
          (* A405: a register every reachable state agrees on — it never
             toggles, so its flop (and downstream logic) is dead weight. *)
          (if fully_known id then
             let _, v = fact id in
             match init with
             | N.Init_value _ ->
               emit ~signal:id ~code:"A405" ~severity:D.Info
                 "register %s never toggles: it is proven stuck at its \
                  reset value %s in every reachable state"
                 (node_name nl id)
                 (Bitvec.to_hex_string v)
             | N.Init_symbolic -> ());
          (* A406: an enable proven always-1 — the hold path is dead and
             the register behaves as if unconditionally clocked. *)
          (match enable with
          | Some e when (not (structurally_const e)) && fully_known e ->
            let _, ev = fact e in
            if Bitvec.is_ones ev then
              emit ~signal:id ~code:"A406" ~severity:D.Info
                "register %s has a redundant enable: %s is proven 1 in \
                 every reachable state"
                (node_name nl id) (node_name nl e)
          | _ -> ())
        | N.Mux { sel; _ } ->
          (* A402: a mux whose select is invariant — one arm is dead.  The
             structural pass already reports selects that are constants by
             construction; this fires only when the fixpoint is needed. *)
          if (not (structurally_const id)) && (not (structurally_const sel))
             && fully_known sel
          then begin
            let _, sv = fact sel in
            emit ~signal:id ~code:"A402" ~severity:D.Info
              "mux %s always selects its %s arm (select %s is proven %s): \
               the other arm is dead logic"
              (node_name nl id)
              (if Bitvec.is_zero sv then "false" else "true")
              (node_name nl sel)
              (if Bitvec.is_zero sv then "0" else "1")
          end
        | N.Op2 ((N.Eq | N.Ult | N.Slt), a, b) ->
          (* A403: a comparison whose outcome is foregone even though
             neither operand is structurally constant. *)
          if (not (structurally_const id)) && fully_known id then begin
            let a_const =
              match (N.node nl a).N.kind with N.Const _ -> true | _ -> false
            in
            let b_const =
              match (N.node nl b).N.kind with N.Const _ -> true | _ -> false
            in
            if not (a_const && b_const) then
              let _, v = fact id in
              emit ~signal:id ~code:"A403" ~severity:D.Info
                "comparison %s is proven always %s: its operands can never \
                 order the other way in any reachable state"
                (node_name nl id)
                (if Bitvec.is_zero v then "false" else "true")
          end
        | N.Extract { hi; lo; arg } ->
          (* A404: an extract that throws away bits proven 1 — usually a
             truncation the designer believed was lossless. *)
          let kn, v = fact arg in
          let w = N.width nl arg in
          let kept = range_mask ~w ~hi ~lo in
          let dropped_ones =
            Bitvec.logand (Bitvec.logand kn v) (Bitvec.lognot kept)
          in
          if not (Bitvec.is_zero dropped_ones) then
            emit ~signal:id ~code:"A404" ~severity:D.Info
              "extract %s[%d:%d] discards %d bit(s) of %s proven 1 in every \
               reachable state"
              (node_name nl arg) hi lo
              (Bitvec.popcount dropped_ones)
              (node_name nl arg)
        | N.Wire _ | N.Not _ | N.Op2 _ | N.Concat _ | N.ReduceOr _
        | N.ReduceAnd _ ->
          (* A401: a named combinational signal proven stuck at one value
             yet not foldable structurally — it only looks alive.  Limited
             to named signals: anonymous expression temporaries stuck via
             a stuck input just restate their source. *)
          if n.N.name <> None && (not (structurally_const id))
             && fully_known id
          then
            let _, v = fact id in
            emit ~signal:id ~code:"A401" ~severity:D.Info
              "signal %s is stuck at %s in every reachable state but is not \
               structurally constant"
              (node_name nl id)
              (Bitvec.to_hex_string v));
    List.rev !diags
