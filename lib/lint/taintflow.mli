(** Taint-flow µLint pass (T301–T305).

    Audits the IFT-facing annotations against the same static taint
    dataflow ({!Hdl.Analysis.taint_reach}) SynthLC's flow stage prunes
    with:
    - [T301] (info): an operand register whose taint reaches no µFSM
      state variable or PCR — a dead transmitter-operand annotation (every
      flow query over it is statically-wasted work).
    - [T302] (info): an ARF/AMEM blocker no operand taint can reach even
      with blocking disabled — it blocks nothing.
    - [T303] (info): a persistent-state candidate (symbolically-initialised
      non-architectural register) outside every operand taint cone.
    - [T304] (error): a taint inject/block target that is an unconnected
      register.
    - [T305] (warning): a register with an enable — [Ift.instrument]
      rejects the whole design. *)

val run : Designs.Meta.t -> Diagnostic.t list
