(* Equivalence µLint pass (E501–E503): SAT-sweep the netlist and report
   the proven redundancy — duplicate cones, complement pairs, and
   constants only a miter (not the known-bits fixpoint) can see.  See the
   interface for the pass contract. *)

module Meta = Designs.Meta
module N = Hdl.Netlist
module E = Hdl.Equiv
module D = Diagnostic

let node_name nl s =
  match (N.node nl s).N.name with
  | Some nm -> nm
  | None -> Printf.sprintf "n%d" s

(* "a, b, c and 4 more" — class listings must stay readable on the
   gate-level imports where one class can have hundreds of members. *)
let listing nl members =
  let names = List.map (fun (s, _) -> node_name nl s) members in
  let shown = List.filteri (fun i _ -> i < 4) names in
  let rest = List.length names - List.length shown in
  String.concat ", " shown
  ^ if rest > 0 then Printf.sprintf " and %d more" rest else ""

let run (meta : Meta.t) =
  let nl = meta.Meta.nl in
  match
    try Some (E.analyze ~barriers:(Meta.signals meta) nl) with _ -> None
  with
  | None -> []
  | Some (classes, _stats) ->
    let diags = ref [] in
    let emit ?signal ~code fmt =
      Printf.ksprintf
        (fun msg ->
          let signal_name = Option.map (node_name nl) signal in
          diags := D.make ?signal ?signal_name ~code ~severity:D.Info msg :: !diags)
        fmt
    in
    (* Known-bits facts, to keep E503 disjoint from A401: only constants
       the dataflow fixpoint cannot prove are worth a second diagnostic. *)
    let kb = try Some (Hdl.Absint.known_bits nl) with _ -> None in
    let kb_proves s v =
      match kb with
      | None -> false
      | Some kb ->
        let kn, kv = kb.(s) in
        Bitvec.is_ones kn && Bitvec.equal kv v
    in
    List.iter
      (fun (c : E.cls) ->
        match c.E.const_value with
        | Some v ->
          (* E503: sweep-proven constants.  Every member ties to the same
             value (complement members to its negation); report the ones
             known-bits misses. *)
          List.iter
            (fun (s, phase) ->
              let sv = if phase then Bitvec.lognot v else v in
              if not (kb_proves s sv) then
                emit ~signal:s ~code:"E503"
                  "%s is proven constant %s by SAT sweep, beyond the \
                   known-bits fixpoint — the cone is dead logic"
                  (node_name nl s) (Bitvec.to_hex_string sv))
            ((c.E.rep, false) :: c.E.members)
        | None ->
          let same, compl_ =
            List.partition (fun (_, phase) -> not phase) c.E.members
          in
          if same <> [] then
            emit ~signal:c.E.rep ~code:"E501"
              "duplicate logic cone: %s recomputes the same %d-bit word as \
               %s on every cycle"
              (listing nl same)
              (N.width nl c.E.rep)
              (node_name nl c.E.rep);
          if compl_ <> [] then
            emit ~signal:c.E.rep ~code:"E502"
              "complementary duplicate: %s is proven the negation of %s — \
               the pair collapses to one cone plus an inverter"
              (listing nl compl_) (node_name nl c.E.rep))
      classes;
    List.rev !diags
