(** Known-bits µLint pass (A401–A406).

    Runs the {!Hdl.Absint} abstract interpretation — the same dataflow the
    synthesis prune and SAT-simplification clients consume — and reports
    logic it proves degenerate in {e every} reachable state from reset:
    - [A401] (info): a named combinational signal stuck at one value yet
      not structurally constant (the fixpoint is needed to see it).
    - [A402] (info): a mux whose select is invariant — one arm is dead.
    - [A403] (info): an Eq/Ult/Slt comparison with a foregone outcome
      although neither operand is a literal constant.
    - [A404] (info): an extract discarding bits proven 1 — a truncation
      that is provably lossy.
    - [A405] (info): a register proven stuck at its reset value — it never
      toggles.
    - [A406] (info): a register enable proven always-1 — the hold path is
      dead.

    The pass returns no diagnostics on netlists the analysis rejects
    (e.g. combinationally cyclic ones): reporting those is the structural
    pass's job. *)

val run : Designs.Meta.t -> Diagnostic.t list
