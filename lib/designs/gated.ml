(* A minimal DUV whose µFSM state space is over-approximated by the plain
   FSM-reachability abstraction but tightened by known-bits (see
   Hdl.Absint): the "gate" µFSM's upper state bit is fed through an AND
   with a register that provably stays 0 from reset.  The base abstraction
   treats that register as unconstrained (it is not one of the µFSM's state
   variables), so it reaches all four states; the known-bits refinement
   proves the two upper states dead and the synthesis prune discharges
   their covers without the model checker.  This is the demo workload for
   the absint prune path — the bench, the CI smoke, and the tri-mode
   digest-identity test all drive it. *)

module N = Hdl.Netlist

let iuv_pc = 2

let build () =
  let nl = N.create "gated" in
  let module D = Hdl.Dsl.Make (struct
    let nl = nl
  end) in
  let open D in
  let word_in = input "word_in" Isa.width in
  let operand_in = input "operand_in" 8 in
  let ctr = reg ~name:"ctr" ~width:Isa.pc_bits () in
  let st = reg ~name:"st" ~width:2 () in
  let pc = reg ~name:"pc" ~width:Isa.pc_bits () in
  let word = reg ~name:"word" ~width:Isa.width () in
  let opnd = reg ~name:"operand_rs1" ~width:8 () in
  let idle = eq_const st 0 in
  let in_a = eq_const st 1 in
  let in_b = eq_const st 2 in
  let retire = in_b in
  let accept = idle |: retire in
  let () =
    st
    <== priority_mux
          [ (in_a, of_int 2 2); (retire, mux accept (of_int 2 1) (zero 2)) ]
          (mux (idle &: accept) (of_int 2 1) st);
    pc <== mux (accept &: (idle |: retire)) ctr pc;
    ctr <== mux (accept &: (idle |: retire)) (ctr +: of_int Isa.pc_bits 1) ctr;
    word <== mux (accept &: (idle |: retire)) word_in word;
    opnd <== mux (accept &: (idle |: retire)) operand_in opnd
  in
  (* The gate: [z] is 0 at reset and its next-state keeps it 0 in every
     reachable state — but only a register-step fixpoint can see that; no
     structural constant fold applies.  [aux]'s upper bit is AND-gated on
     [z], so states 2 and 3 of the "gate" µFSM are dead exactly when the
     known-bits invariant z ≡ 0 is available. *)
  let z = reg ~name:"z" ~width:1 () in
  let () = z <== (z &: bit word 0) in
  let aux = reg ~name:"aux" ~width:2 () in
  let () = aux <== concat [ z &: retire; in_a ] in
  let commit = wire ~name:"commit" 1 in
  commit <== retire;
  let commit_pc = wire ~name:"commit_pc" Isa.pc_bits in
  commit_pc <== pc;
  let flush = wire ~name:"flush" 1 in
  flush <== gnd;
  let stage_valid = wire ~name:"stage_valid" 1 in
  stage_valid <== in_a;
  {
    Meta.design_name = "gated";
    nl;
    ifrs = [ { Meta.ifr_valid = stage_valid; ifr_pc = pc; ifr_word = word } ];
    operand_stage_valid = stage_valid;
    operand_stage_pc = pc;
    commit;
    commit_pc;
    flush;
    ufsms =
      [
        {
          Meta.ufsm_name = "stage";
          pcr = pc;
          vars = [ st ];
          idle_states = [ Bitvec.zero 2 ];
          state_labels =
            [
              (Bitvec.of_int ~width:2 1, "A");
              (Bitvec.of_int ~width:2 2, "B");
            ];
        };
        {
          Meta.ufsm_name = "gate";
          pcr = pc;
          vars = [ aux ];
          idle_states = [ Bitvec.zero 2 ];
          state_labels = [ (Bitvec.of_int ~width:2 1, "G1") ];
        };
      ];
    operand_regs = [ ("rs1", opnd) ];
    arf = [];
    amem = [];
    extra_assumes = [];
  }
