type config = {
  zero_skip_mul : bool;
  operand_packing : bool;
  fix_jalr_align : bool;
  fix_jal_align : bool;
  fix_branch_excp : bool;
  fix_scb_width : bool;
}

let baseline =
  {
    zero_skip_mul = false;
    operand_packing = false;
    fix_jalr_align = false;
    fix_jal_align = false;
    fix_branch_excp = false;
    fix_scb_width = false;
  }

let cva6_mul = { baseline with zero_skip_mul = true }
let cva6_op = { baseline with operand_packing = true }

let all_fixed =
  {
    baseline with
    fix_jalr_align = true;
    fix_jal_align = true;
    fix_branch_excp = true;
    fix_scb_width = true;
  }

let iuv_pc = 2

let sig_if_instr_in0 = "if_instr_in0"
let sig_if_instr_in1 = "if_instr_in1"
let sig_commit = "commit"
let sig_commit_pc = "commit_pc"

let xlen = Isa.xlen
let pcw = Isa.pc_bits
let iw = Isa.width
let n_scb = 4
let mem_words = 8

let design_name cfg =
  if cfg.operand_packing then "cva6_op"
  else if cfg.zero_skip_mul then "cva6_mul"
  else if cfg.fix_scb_width then "cva6_fixed"
  else "cva6_lite"

let build cfg =
  let module D = Hdl.Dsl.Make (struct
    let nl = Hdl.Netlist.create (design_name cfg)
  end) in
  let open D in
  let bv = Bitvec.of_int in

  (* ------------------------------------------------------------------ *)
  (* Combinational helpers                                                *)
  (* ------------------------------------------------------------------ *)
  let sll8 x k = if k = 0 then x else concat [ select x (xlen - 1 - k) 0; zero k ] in
  let srl8 x k = if k = 0 then x else concat [ zero k; select x (xlen - 1) k ] in
  let sra8 x k = if k = 0 then x else concat [ repeat (msb x) k; select x (xlen - 1) k ] in
  let shift_dyn f x amt3 = binary_mux amt3 (List.init 8 (fun k -> f x k)) in
  let onehot_or default cases =
    (* cases: (cond, value) with at most one cond true *)
    List.fold_left (fun acc (c, v) -> mux c v acc) default cases
  in

  (* Decode field extractors over a 19-bit instruction word. *)
  let f_op i = select i 18 14 in
  let f_rd i = select i 13 12 in
  let f_rs1 i = select i 11 10 in
  let f_rs2 i = select i 9 8 in
  let f_imm i = select i 7 0 in
  let op_is i opc = eq_const (f_op i) (Isa.opcode_to_int opc) in
  let op_in i opcs = List.fold_left (fun acc o -> acc |: op_is i o) gnd opcs in
  let cls_test cls i =
    op_in i (List.filter (fun o -> Isa.class_of o = cls) Isa.all_opcodes)
  in
  let is_div_cls = cls_test Isa.Divc in
  let is_mul_cls = cls_test Isa.Mulc in
  let is_load_cls = cls_test Isa.Load in
  let is_store_cls = cls_test Isa.Store in
  let is_branch_cls = cls_test Isa.Branch in
  let is_jump_cls = cls_test Isa.Jump in
  let writes_rd_w i =
    op_in i (List.filter Isa.writes_rd Isa.all_opcodes) &: (f_rd i <>: zero 2)
  in

  (* ------------------------------------------------------------------ *)
  (* State elements                                                      *)
  (* ------------------------------------------------------------------ *)
  let if_in0 = input sig_if_instr_in0 iw in
  let if_in1 = input sig_if_instr_in1 iw in

  let fetch_pc = reg ~name:"fetch_pc" ~width:pcw () in
  let if_v0 = reg ~name:"if_v0" ~width:1 () in
  let if_pc0 = reg ~name:"if_pc0" ~width:pcw () in
  let if_i0 = reg ~name:"if_i0" ~width:iw () in
  let if_v1 = reg ~name:"if_v1" ~width:1 () in
  let if_pc1 = reg ~name:"if_pc1" ~width:pcw () in
  let if_i1 = reg ~name:"if_i1" ~width:iw () in

  let id0_v = reg ~name:"id0_v" ~width:1 () in
  let id0_pc = reg ~name:"id0_pc" ~width:pcw () in
  let id0_i = reg ~name:"id0_i" ~width:iw () in
  let id1_v = reg ~name:"id1_v" ~width:1 () in
  let id1_pc = reg ~name:"id1_pc" ~width:pcw () in
  let id1_i = reg ~name:"id1_i" ~width:iw () in

  let is_v = reg ~name:"is_v" ~width:1 () in
  let is_pc = reg ~name:"is_pc" ~width:pcw () in
  let is_i = reg ~name:"is_i" ~width:iw () in
  let is_r1 = reg ~name:"operand_rs1" ~width:xlen () in
  let is_r2 = reg ~name:"operand_rs2" ~width:xlen () in
  let is_scb = reg ~name:"is_scb" ~width:2 () in
  let is2_v = reg ~name:"is2_v" ~width:1 () in
  let is2_pc = reg ~name:"is2_pc" ~width:pcw () in
  let is2_i = reg ~name:"is2_i" ~width:iw () in
  let is2_r1 = reg ~name:"operand2_rs1" ~width:xlen () in
  let is2_r2 = reg ~name:"operand2_rs2" ~width:xlen () in
  let is2_scb = reg ~name:"is2_scb" ~width:2 () in

  let arf =
    List.init 3 (fun i -> reg_symbolic ~name:(Printf.sprintf "arf%d" (i + 1)) ~width:xlen ())
  in

  (* Scoreboard entries: state 0=idle 1=issued 2=finished 3=commit 4=excp *)
  let scb =
    List.init n_scb (fun i ->
        let n s = Printf.sprintf "scb%d_%s" i s in
        ( reg ~name:(n "state") ~width:3 (),
          reg ~name:(n "pc") ~width:pcw (),
          reg ~name:(n "rd") ~width:2 (),
          reg ~name:(n "wen") ~width:1 (),
          reg ~name:(n "res") ~width:xlen (),
          reg ~name:(n "isst") ~width:1 (),
          reg ~name:(n "exc") ~width:1 () ))
  in
  let head = reg ~name:"scb_head" ~width:2 () in
  let tail = reg ~name:"scb_tail" ~width:2 () in
  let count = reg ~name:"scb_count" ~width:3 () in

  (* Serial divider with leading-zero skip. *)
  let div_busy = reg ~name:"div_busy" ~width:1 () in
  let div_pc = reg ~name:"div_pc" ~width:pcw () in
  let div_cnt = reg ~name:"div_cnt" ~width:4 () in
  let div_rem = reg ~name:"div_rem" ~width:xlen () in
  let div_quo = reg ~name:"div_quo" ~width:xlen () in
  let div_dvs = reg ~name:"div_dvs" ~width:xlen () in
  let div_negq = reg ~name:"div_negq" ~width:1 () in
  let div_negr = reg ~name:"div_negr" ~width:1 () in
  let div_isrem = reg ~name:"div_isrem" ~width:1 () in
  let div_scb = reg ~name:"div_scb" ~width:2 () in
  let div_div0 = reg ~name:"div_div0" ~width:1 () in
  let div_a0 = reg ~name:"div_a0" ~width:xlen () in

  (* Multiplier. *)
  let mul_busy = reg ~name:"mul_busy" ~width:1 () in
  let mul_pc = reg ~name:"mul_pc" ~width:pcw () in
  let mul_cnt = reg ~name:"mul_cnt" ~width:3 () in
  let mul_a = reg ~name:"mul_a" ~width:xlen () in
  let mul_b = reg ~name:"mul_b" ~width:xlen () in
  let mul_scb = reg ~name:"mul_scb" ~width:2 () in

  (* Load unit: state 0=idle 1=ldStall 2=ldFin *)
  let ld_state = reg ~name:"ld_state" ~width:2 () in
  let ld_pc = reg ~name:"ld_pc" ~width:pcw () in
  let ld_addr = reg ~name:"ld_addr" ~width:xlen () in
  let ld_lb = reg ~name:"ld_lb" ~width:1 () in
  let ld_scb = reg ~name:"ld_scb" ~width:2 () in
  let lsq_v = reg ~name:"lsq_v" ~width:1 () in

  (* Store buffers. *)
  let stb n_ name =
    List.init n_ (fun i ->
        let nm s = Printf.sprintf "%s%d_%s" name i s in
        ( reg ~name:(nm "v") ~width:1 (),
          reg ~name:(nm "pc") ~width:pcw (),
          reg ~name:(nm "addr") ~width:xlen (),
          reg ~name:(nm "data") ~width:xlen (),
          reg ~name:(nm "sb") ~width:1 () ))
  in
  let spec = stb 2 "spec" in
  let com = stb 2 "com" in

  (* Memory request stage (single R/W port) + behavioural memory. *)
  let mrq_v = reg ~name:"mrq_v" ~width:1 () in
  let mrq_pc = reg ~name:"mrq_pc" ~width:pcw () in
  let mrq_addr = reg ~name:"mrq_addr" ~width:xlen () in
  let mrq_data = reg ~name:"mrq_data" ~width:xlen () in
  let mrq_sb = reg ~name:"mrq_sb" ~width:1 () in
  let mem =
    List.init mem_words (fun i ->
        reg_symbolic ~name:(Printf.sprintf "mem%d" i) ~width:xlen ())
  in

  (* ------------------------------------------------------------------ *)
  (* Scoreboard observation                                              *)
  (* ------------------------------------------------------------------ *)
  let entry_state (st, _, _, _, _, _, _) = st in
  let entry_pc (_, pc, _, _, _, _, _) = pc in
  let entry_rd (_, _, rd, _, _, _, _) = rd in
  let entry_wen (_, _, _, wen, _, _, _) = wen in
  let entry_res (_, _, _, _, res, _, _) = res in
  let entry_isst (_, _, _, _, _, isst, _) = isst in
  let entry_exc (_, _, _, _, _, _, exc) = exc in
  let st_issued e = eq_const (entry_state e) 1 in
  let st_finished e = eq_const (entry_state e) 2 in
  let st_commit e = eq_const (entry_state e) 3 in
  let st_excp e = eq_const (entry_state e) 4 in
  let idx_eq i j = eq_const j i in

  (* A (unique) entry in state commit/excp this cycle is the head retiring. *)
  let committing = List.map (fun e -> st_commit e |: st_excp e) scb in
  let commit_now = List.fold_left ( |: ) gnd committing in
  let sel_committing proj default =
    onehot_or default (List.map2 (fun c e -> (c, proj e)) committing scb)
  in
  let commit_pc_w = sel_committing entry_pc (zero pcw) in
  let commit_is_store = sel_committing entry_isst gnd in
  let excp_flush = List.fold_left ( |: ) gnd (List.map st_excp scb) in
  let head_next = mux commit_now (head +: of_int 2 1) head in

  (* ------------------------------------------------------------------ *)
  (* Issue-stage execution (combinational)                               *)
  (* ------------------------------------------------------------------ *)
  let is_imm = f_imm is_i in
  let a = is_r1 and b = is_r2 in
  let link_val = concat [ is_pc +: of_int pcw 1; zero 2 ] in
  let slt_r = zero_extend (a <+ b) xlen in
  let sltu_r = zero_extend (a <: b) xlen in
  let shamt = select b 2 0 in
  let alu_res =
    onehot_or (zero xlen)
      [
        (op_in is_i [ Isa.ADD ], a +: b);
        (op_is is_i Isa.ADDI, a +: is_imm);
        (op_is is_i Isa.SUB, a -: b);
        (op_in is_i [ Isa.AND ], a &: b);
        (op_is is_i Isa.ANDI, a &: is_imm);
        (op_in is_i [ Isa.OR ], a |: b);
        (op_is is_i Isa.ORI, a |: is_imm);
        (op_in is_i [ Isa.XOR ], a ^: b);
        (op_is is_i Isa.XORI, a ^: is_imm);
        (op_is is_i Isa.SLT, slt_r);
        (op_is is_i Isa.SLTU, sltu_r);
        (op_is is_i Isa.SLL, shift_dyn sll8 a shamt);
        (op_is is_i Isa.SRL, shift_dyn srl8 a shamt);
        (op_is is_i Isa.SRA, shift_dyn sra8 a shamt);
        (is_jump_cls is_i, link_val);
      ]
  in

  (* Control flow: resolved during the issue cycle (frontend predicts
     not-taken). Targets are byte addresses; instruction slots are 4-byte
     aligned. *)
  let br_taken =
    onehot_or gnd
      [
        (op_is is_i Isa.BEQ, a ==: b);
        (op_is is_i Isa.BNE, a <>: b);
        (op_is is_i Isa.BLT, a <+ b);
        (op_is is_i Isa.BGE, ~:(a <+ b));
        (op_is is_i Isa.BLTU, a <: b);
        (op_is is_i Isa.BGEU, ~:(a <: b));
      ]
  in
  let pc_bytes = concat [ is_pc; zero 2 ] in
  let direct_target = pc_bytes +: is_imm in
  let jalr_target = a +: is_imm in
  let target = mux (op_is is_i Isa.JALR) jalr_target direct_target in
  let misaligned2 = select target 1 0 <>: zero 2 in
  let br_excp =
    if cfg.fix_branch_excp then br_taken &: misaligned2 else misaligned2
  in
  (* The buggy (pre-fix) JAL check only looks at bit 0; build that extract
     only in configs that use it. *)
  let jal_excp = if cfg.fix_jal_align then misaligned2 else bit target 0 in
  let jalr_excp = if cfg.fix_jalr_align then misaligned2 else gnd in
  let is_excp =
    is_v
    &: onehot_or gnd
         [
           (is_branch_cls is_i, br_excp);
           (op_is is_i Isa.JAL, jal_excp);
           (op_is is_i Isa.JALR, jalr_excp);
         ]
  in
  let ctrl_taken = mux (is_jump_cls is_i) vdd (is_branch_cls is_i &: br_taken) in
  let redirect = is_v &: ctrl_taken &: ~:is_excp in
  let redirect_pc = select target 7 2 in
  let redirect_pc = uresize redirect_pc pcw in
  let flush_front = redirect |: excp_flush in
  let flush_any = flush_front in

  (* Issue-stage completion event: everything except div/mul/load completes
     during its issue cycle. *)
  let is_complete_now =
    is_v &: ~:(is_div_cls is_i) &: ~:(is_mul_cls is_i) &: ~:(is_load_cls is_i)
  in
  let is2_res = zero xlen in
  (* is2 only ever holds packed ALU ops; compute its ALU result. *)
  let a2 = is2_r1 and b2 = is2_r2 in
  let is2_res =
    if cfg.operand_packing then
      onehot_or is2_res
        [
          (op_is is2_i Isa.ADD, a2 +: b2);
          (op_is is2_i Isa.SUB, a2 -: b2);
          (op_is is2_i Isa.AND, a2 &: b2);
          (op_is is2_i Isa.OR, a2 |: b2);
          (op_is is2_i Isa.XOR, a2 ^: b2);
        ]
    else is2_res
  in

  (* ------------------------------------------------------------------ *)
  (* Divider (serial restoring, leading-zero skip)                       *)
  (* ------------------------------------------------------------------ *)
  let signed_div = op_in is_i [ Isa.DIV; Isa.REM ] in
  let abs_x x neg = mux neg (zero xlen -: x) x in
  let da = abs_x a (signed_div &: msb a) in
  let db = abs_x b (signed_div &: msb b) in
  (* Count of significant bits of the |dividend|: priority encode MSB. *)
  let sig_bits =
    (* returns 0..8 as 4 bits *)
    let rec scan k =
      if k < 0 then zero 4
      else mux (bit da k) (of_int 4 (k + 1)) (scan (k - 1))
    in
    scan (xlen - 1)
  in
  (* Pre-shift the dividend so iteration count equals significant bits. *)
  let quo_init = shift_dyn sll8 da (select (of_int 4 8 -: sig_bits) 2 0) in
  let quo_init = mux (eq_const sig_bits 0) (zero xlen) quo_init in
  let div_engage = is_v &: is_div_cls is_i &: ~:flush_any in
  let div_step_rem = concat [ select div_rem (xlen - 2) 0; msb div_quo ] in
  let div_sub = div_step_rem >=: div_dvs in
  let div_rem_next = mux div_sub (div_step_rem -: div_dvs) div_step_rem in
  let div_quo_next = concat [ select div_quo (xlen - 2) 0; div_sub ] in
  let div_done = div_busy &: (eq_const div_cnt 0 |: eq_const div_cnt 1) in
  let div_quo_final = mux (eq_const div_cnt 0) div_quo div_quo_next in
  let div_rem_final = mux (eq_const div_cnt 0) div_rem div_rem_next in
  let div_q_signed = mux div_negq (zero xlen -: div_quo_final) div_quo_final in
  let div_r_signed = mux div_negr (zero xlen -: div_rem_final) div_rem_final in
  let div_result =
    mux div_div0
      (mux div_isrem div_a0 (ones xlen))
      (mux div_isrem div_r_signed div_q_signed)
  in
  let () =
    div_busy <== mux excp_flush gnd (mux div_engage vdd (mux div_done gnd div_busy));
    div_pc <== mux div_engage is_pc div_pc;
    div_cnt
    <== mux div_engage sig_bits
          (mux (div_busy &: (div_cnt <>: zero 4)) (div_cnt -: of_int 4 1) div_cnt);
    div_rem <== mux div_engage (zero xlen) (mux div_busy div_rem_next div_rem);
    div_quo <== mux div_engage quo_init (mux div_busy div_quo_next div_quo);
    div_dvs <== mux div_engage db div_dvs;
    div_negq <== mux div_engage (signed_div &: (msb a ^: msb b) &: (b <>: zero xlen)) div_negq;
    div_negr <== mux div_engage (signed_div &: msb a) div_negr;
    div_isrem <== mux div_engage (op_in is_i [ Isa.REM; Isa.REMU ]) div_isrem;
    div_scb <== mux div_engage is_scb div_scb;
    div_div0 <== mux div_engage (b ==: zero xlen) div_div0;
    div_a0 <== mux div_engage a div_a0
  in

  (* ------------------------------------------------------------------ *)
  (* Multiplier                                                          *)
  (* ------------------------------------------------------------------ *)
  let mul_engage = is_v &: is_mul_cls is_i &: ~:flush_any in
  let mul_lat =
    if cfg.zero_skip_mul then
      mux ((a ==: zero xlen) |: (b ==: zero xlen)) (of_int 3 1) (of_int 3 4)
    else of_int 3 2
  in
  let mul_done = mul_busy &: eq_const mul_cnt 1 in
  let mul_result = mul_a *: mul_b in
  let () =
    mul_busy <== mux excp_flush gnd (mux mul_engage vdd (mux mul_done gnd mul_busy));
    mul_pc <== mux mul_engage is_pc mul_pc;
    mul_cnt
    <== mux mul_engage mul_lat
          (mux (mul_busy &: (mul_cnt <>: zero 3)) (mul_cnt -: of_int 3 1) mul_cnt);
    mul_a <== mux mul_engage a mul_a;
    mul_b <== mux mul_engage b mul_b;
    mul_scb <== mux mul_engage is_scb mul_scb
  in

  (* ------------------------------------------------------------------ *)
  (* Store buffers, memory port, load unit                               *)
  (* ------------------------------------------------------------------ *)
  let offset_of addr = select addr 1 0 in
  let word_of addr = select addr 2 0 in
  let stb_v (v, _, _, _, _) = v in
  let stb_pc (_, pc, _, _, _) = pc in
  let stb_addr (_, _, ad, _, _) = ad in
  let stb_data (_, _, _, d, _) = d in
  let stb_sb (_, _, _, _, s) = s in

  (* A load's page-offset match against every pending store (speculative,
     committed, or in the memory-request stage) — the SS IV-A channel. *)
  let offset_match addr =
    let m e = stb_v e &: (offset_of (stb_addr e) ==: offset_of addr) in
    List.fold_left ( |: ) gnd (List.map m (spec @ com))
    |: (mrq_v &: (offset_of mrq_addr ==: offset_of addr))
  in

  (* Load unit.  Once a load is accepted it cannot be squashed (the paper's
     SS VII-A1 "All" finding); its scoreboard writeback is guarded instead. *)
  let ld_engage = is_v &: is_load_cls is_i &: ~:excp_flush in
  let ld_addr_new = a +: is_imm in
  let ld_new_match = offset_match ld_addr_new in
  let ld_cur_match = offset_match ld_addr in
  let ld_idle = eq_const ld_state 0 in
  let ld_stalling = eq_const ld_state 1 in
  let ld_fin = eq_const ld_state 2 in
  let ld_enter_fin =
    (ld_engage &: ~:ld_new_match) |: (ld_stalling &: ~:ld_cur_match)
  in
  let ld_state_next =
    onehot_or (zero 2)
      [
        (ld_engage &: ld_new_match, of_int 2 1);
        (ld_engage &: ~:ld_new_match, of_int 2 2);
        (~:ld_engage &: ld_stalling &: ld_cur_match, of_int 2 1);
        (~:ld_engage &: ld_stalling &: ~:ld_cur_match, of_int 2 2);
      ]
  in
  let () =
    ld_state <== ld_state_next;
    lsq_v <== eq_const ld_state_next 1;
    ld_pc <== mux ld_engage is_pc ld_pc;
    ld_addr <== mux ld_engage ld_addr_new ld_addr;
    ld_lb <== mux ld_engage (op_is is_i Isa.LB) ld_lb;
    ld_scb <== mux ld_engage is_scb ld_scb
  in
  ignore ld_idle;

  (* Memory read during the ldFin cycle. *)
  let mem_rdata = binary_mux (word_of ld_addr) mem in
  let ld_result =
    mux ld_lb (sign_extend (select mem_rdata 3 0) xlen) mem_rdata
  in
  let ld_done = ld_fin in

  (* Committed-store drain: the single memory port prioritizes loads, so a
     store drains only on cycles where no load will access (SS VII-A1's new
     ST_comSTB channel). *)
  let com0 = List.nth com 0 and com1 = List.nth com 1 in
  let spec0 = List.nth spec 0 and spec1 = List.nth spec 1 in
  let drain_grant = stb_v com0 &: ~:ld_enter_fin in
  let () =
    mrq_v <== drain_grant;
    mrq_pc <== mux drain_grant (stb_pc com0) mrq_pc;
    mrq_addr <== mux drain_grant (stb_addr com0) mrq_addr;
    mrq_data <== mux drain_grant (stb_data com0) mrq_data;
    mrq_sb <== mux drain_grant (stb_sb com0) mrq_sb
  in

  (* Behavioural memory write during the memRq cycle. *)
  let mem_wdata = mux mrq_sb (concat [ zero 4; select mrq_data 3 0 ]) mrq_data in
  let () =
    List.iteri
      (fun i m ->
        m <== mux (mrq_v &: eq_const (word_of mrq_addr) i) mem_wdata m)
      mem
  in

  (* Store commit: transfer the matching speculative entry to the committed
     STB (commit is gated on a free slot). *)
  let transfer = commit_now &: commit_is_store in
  let spec_match e = stb_v e &: (stb_pc e ==: commit_pc_w) in
  let tr_of proj = mux (spec_match spec0) (proj spec0) (proj spec1) in
  let tr_pc = tr_of stb_pc in
  let tr_addr = tr_of stb_addr in
  let tr_data = tr_of stb_data in
  let tr_sb = tr_of stb_sb in
  let c0v_after = mux drain_grant (stb_v com1) (stb_v com0) in
  let c1v_after = mux drain_grant gnd (stb_v com1) in
  let pick_com proj = mux drain_grant (proj com1) (proj com0) in
  let () =
    let set_com (v, pc, ad, d, s) ~vld ~pcv ~adv ~dav ~sbv =
      v <== vld; pc <== pcv; ad <== adv; d <== dav; s <== sbv
    in
    let take0 = transfer &: ~:c0v_after in
    set_com com0
      ~vld:(c0v_after |: take0)
      ~pcv:(mux take0 tr_pc (pick_com stb_pc))
      ~adv:(mux take0 tr_addr (pick_com stb_addr))
      ~dav:(mux take0 tr_data (pick_com stb_data))
      ~sbv:(mux take0 tr_sb (pick_com stb_sb));
    let take1 = transfer &: c0v_after &: ~:c1v_after in
    set_com com1
      ~vld:(c1v_after |: take1)
      ~pcv:(mux take1 tr_pc (stb_pc com1))
      ~adv:(mux take1 tr_addr (stb_addr com1))
      ~dav:(mux take1 tr_data (stb_data com1))
      ~sbv:(mux take1 tr_sb (stb_sb com1))
  in

  (* Speculative STB allocation at the end of a store's issue cycle;
     squashed wholesale on an exception flush. *)
  let st_engage = is_v &: is_store_cls is_i &: ~:excp_flush in
  let st_addr_new = a +: is_imm in
  let st_data_new = b in
  let st_sb_new = op_is is_i Isa.SB in
  let () =
    let release e = transfer &: spec_match e in
    let alloc0 = st_engage &: ~:(stb_v spec0) in
    let alloc1 = st_engage &: stb_v spec0 &: ~:(stb_v spec1) in
    let set_spec (v, pc, ad, d, s) ~alloc ~keep =
      v <== mux excp_flush gnd (mux alloc vdd keep);
      pc <== mux alloc is_pc pc;
      ad <== mux alloc st_addr_new ad;
      d <== mux alloc st_data_new d;
      s <== mux alloc st_sb_new s
    in
    set_spec spec0 ~alloc:alloc0 ~keep:(stb_v spec0 &: ~:(release spec0));
    set_spec spec1 ~alloc:alloc1 ~keep:(stb_v spec1 &: ~:(release spec1))
  in

  (* ------------------------------------------------------------------ *)
  (* Scoreboard result events and state transitions                      *)
  (* ------------------------------------------------------------------ *)
  let com_has_free = ~:(stb_v com0) |: ~:(stb_v com1) in
  let scb_next =
    List.mapi
      (fun i e ->
        let ev_is = is_complete_now &: idx_eq i is_scb in
        let ev_is2 =
          if cfg.operand_packing then is2_v &: idx_eq i is2_scb else gnd
        in
        let ev_div = div_done &: idx_eq i div_scb in
        let ev_mul = mul_done &: idx_eq i mul_scb in
        let ev_ld =
          ld_done &: idx_eq i ld_scb &: st_issued e &: (entry_pc e ==: ld_pc)
        in
        let res_event = ev_is |: ev_is2 |: ev_div |: ev_mul |: ev_ld in
        let res_val =
          onehot_or (entry_res e)
            [
              (ev_is, alu_res);
              (ev_is2, is2_res);
              (ev_div, div_result);
              (ev_mul, mul_result);
              (ev_ld, ld_result);
            ]
        in
        let exc_now = mux ev_is is_excp (entry_exc e) in
        let head_hit = idx_eq i head_next in
        let commit_ok = head_hit &: (~:(entry_isst e) |: com_has_free) in
        let retiring = st_commit e |: st_excp e in
        let squash = excp_flush &: ~:retiring in
        let next_state =
          onehot_or (entry_state e)
            [
              (squash, zero 3);
              ( ~:squash &: st_issued e &: res_event,
                mux commit_ok
                  (mux exc_now (of_int 3 4) (of_int 3 3))
                  (of_int 3 2) );
              ( ~:squash &: st_finished e &: commit_ok,
                mux (entry_exc e) (of_int 3 4) (of_int 3 3) );
              (~:squash &: retiring, zero 3);
            ]
        in
        (e, res_event, res_val, exc_now, next_state, ev_is))
      scb
  in

  (* ------------------------------------------------------------------ *)
  (* Dispatch (hazards computed on the ID slots)                         *)
  (* ------------------------------------------------------------------ *)
  let rf_base rs = binary_mux rs (zero xlen :: arf) in
  let producer_match states rs =
    let m e =
      let st_ok =
        List.fold_left ( |: ) gnd
          (List.map (fun s_ -> eq_const (entry_state e) s_) states)
      in
      st_ok &: entry_wen e &: (entry_rd e ==: rs)
    in
    List.map m scb
  in
  let raw_on rs = List.fold_left ( |: ) gnd (producer_match [ 1 ] rs) in
  let fwd_hits rs = producer_match [ 2; 3 ] rs in
  let rf_val rs =
    let hits = fwd_hits rs in
    let fwd =
      onehot_or (rf_base rs) (List.map2 (fun h e -> (h, entry_res e)) hits scb)
    in
    fwd
  in
  let reads_rs1_w i = op_in i (List.filter Isa.reads_rs1 Isa.all_opcodes) in
  let reads_rs2_w i = op_in i (List.filter Isa.reads_rs2 Isa.all_opcodes) in
  let raw_for i =
    (reads_rs1_w i &: raw_on (f_rs1 i)) |: (reads_rs2_w i &: raw_on (f_rs2 i))
  in
  let waw_for i =
    writes_rd_w i
    &: List.fold_left ( |: ) gnd (producer_match [ 1; 2 ] (f_rd i))
  in
  let fu_conflict_for i =
    (is_div_cls i &: (div_busy |: (is_v &: is_div_cls is_i)))
    |: (is_mul_cls i &: (mul_busy |: (is_v &: is_mul_cls is_i)))
    |: (is_load_cls i &: (~:ld_idle |: (is_v &: is_load_cls is_i)))
    |: (is_store_cls i
       &: ((stb_v spec0 &: stb_v spec1)
          |: (is_v &: is_store_cls is_i &: (stb_v spec0 |: stb_v spec1))))
  in
  let scb_limit = if cfg.fix_scb_width then n_scb else n_scb - 1 in
  let eff_count = count -: zero_extend commit_now 3 in
  let can_take1 = eff_count <: of_int 3 scb_limit in
  let dispatch0 =
    id0_v &: ~:flush_front &: ~:(raw_for id0_i) &: ~:(waw_for id0_i)
    &: ~:(fu_conflict_for id0_i) &: can_take1
  in
  let narrow v = select v (xlen - 1) 4 ==: zero 4 in
  let v1a = rf_val (f_rs1 id0_i) in
  let v1b = rf_val (f_rs2 id0_i) in
  let v2a = rf_val (f_rs1 id1_i) in
  let v2b = rf_val (f_rs2 id1_i) in
  let dispatch_pack =
    if not cfg.operand_packing then gnd
    else begin
      (* Only the packing path can dispatch two; single-issue configs never
         read this headroom check, so build it only here. *)
      let can_take2 = eff_count <: of_int 3 (scb_limit - 1) in
      let packable =
        op_in id0_i [ Isa.ADD; Isa.SUB; Isa.AND; Isa.OR; Isa.XOR ]
      in
      let same_op = f_op id0_i ==: f_op id1_i in
      let cross_raw =
        writes_rd_w id0_i
        &: ((f_rd id0_i ==: f_rs1 id1_i) |: (f_rd id0_i ==: f_rs2 id1_i))
      in
      let cross_waw =
        writes_rd_w id0_i &: writes_rd_w id1_i &: (f_rd id0_i ==: f_rd id1_i)
      in
      dispatch0 &: id1_v &: packable &: same_op &: ~:(raw_for id1_i)
      &: ~:(waw_for id1_i) &: ~:cross_raw &: ~:cross_waw &: narrow v1a
      &: narrow v1b &: narrow v2a &: narrow v2b &: can_take2
    end
  in

  (* Issue-stage registers. *)
  let () =
    is_v <== mux excp_flush gnd dispatch0;
    is_pc <== mux dispatch0 id0_pc is_pc;
    is_i <== mux dispatch0 id0_i is_i;
    is_r1 <== mux dispatch0 v1a is_r1;
    is_r2 <== mux dispatch0 v1b is_r2;
    is_scb <== mux dispatch0 tail is_scb;
    is2_v <== mux excp_flush gnd dispatch_pack;
    is2_pc <== mux dispatch_pack id1_pc is2_pc;
    is2_i <== mux dispatch_pack id1_i is2_i;
    is2_r1 <== mux dispatch_pack v2a is2_r1;
    is2_r2 <== mux dispatch_pack v2b is2_r2;
    is2_scb <== mux dispatch_pack (tail +: of_int 2 1) is2_scb
  in

  (* Scoreboard register updates, including allocation at the tail. *)
  let () =
    List.iteri
      (fun i (e, res_event, res_val, exc_now, next_state, ev_is) ->
        let st, pc, rd, wen, res, isst, exc = e in
        let alloc0 = dispatch0 &: idx_eq i tail in
        let alloc1 = dispatch_pack &: idx_eq i (tail +: of_int 2 1) in
        let alloc = alloc0 |: alloc1 in
        let src_pc = mux alloc1 id1_pc id0_pc in
        let src_i = mux alloc1 id1_i id0_i in
        st <== mux alloc (of_int 3 1) next_state;
        pc <== mux alloc src_pc pc;
        rd <== mux alloc (f_rd src_i) rd;
        wen <== mux alloc (writes_rd_w src_i) wen;
        res <== mux res_event res_val res;
        isst <== mux alloc (is_store_cls src_i) isst;
        exc <== mux alloc gnd (mux ev_is exc_now exc))
      scb_next
  in

  (* Head/tail/count bookkeeping. *)
  let ndisp =
    zero_extend dispatch0 3 +: zero_extend dispatch_pack 3
  in
  let () =
    head <== mux excp_flush (zero 2) (mux commit_now (head +: of_int 2 1) head);
    tail <== mux excp_flush (zero 2) (tail +: select ndisp 1 0);
    count
    <== mux excp_flush (zero 3)
          (count +: ndisp -: zero_extend commit_now 3)
  in

  (* ARF writeback on (non-excepting) commit. *)
  let commit_wen = sel_committing entry_wen gnd &: ~:excp_flush in
  let commit_rd = sel_committing entry_rd (zero 2) in
  let commit_res = sel_committing entry_res (zero xlen) in
  let () =
    List.iteri
      (fun i r ->
        r
        <== mux
              (commit_now &: commit_wen &: eq_const commit_rd (i + 1))
              commit_res r)
      arf
  in

  (* ------------------------------------------------------------------ *)
  (* Frontend: fetch queue and ID refill                                 *)
  (* ------------------------------------------------------------------ *)
  let () =
    if not cfg.operand_packing then begin
      (* Single-wide frontend: one IF slot, one ID slot. *)
      let id_take = dispatch0 |: ~:id0_v in
      let if_adv = (id_take &: if_v0) |: ~:if_v0 in
      id0_v <== mux flush_front gnd (mux id_take if_v0 id0_v);
      id0_pc <== mux (id_take &: if_v0) if_pc0 id0_pc;
      id0_i <== mux (id_take &: if_v0) if_i0 id0_i;
      id1_v <== gnd;
      id1_pc <== zero pcw;
      id1_i <== zero iw;
      if_v0 <== mux flush_front gnd vdd;
      if_pc0 <== mux if_adv fetch_pc if_pc0;
      if_i0 <== mux if_adv if_in0 if_i0;
      if_v1 <== gnd;
      if_pc1 <== zero pcw;
      if_i1 <== zero iw;
      fetch_pc
      <== mux excp_flush (zero pcw)
            (mux redirect redirect_pc
               (mux if_adv (fetch_pc +: of_int pcw 1) fetch_pc))
    end
    else begin
      (* Dual-wide frontend for CVA6-OP: two IF slots, two ID slots. *)
      let rem0_v = ~:dispatch_pack &: mux dispatch0 id1_v id0_v in
      let rem0_pc = mux dispatch0 id1_pc id0_pc in
      let rem0_i = mux dispatch0 id1_i id0_i in
      let rem1_v = ~:dispatch_pack &: ~:dispatch0 &: id1_v in
      id0_v <== mux flush_front gnd (mux rem0_v vdd if_v0);
      id0_pc <== mux rem0_v rem0_pc if_pc0;
      id0_i <== mux rem0_v rem0_i if_i0;
      id1_v
      <== mux flush_front gnd
            (mux rem1_v vdd (mux rem0_v if_v0 if_v1));
      id1_pc <== mux rem1_v id1_pc (mux rem0_v if_pc0 if_pc1);
      id1_i <== mux rem1_v id1_i (mux rem0_v if_i0 if_i1);
      (* Instructions consumed from the IF queue. *)
      let ncons =
        onehot_or (zero 2)
          [
            (rem0_v &: rem1_v, zero 2);
            (rem0_v &: ~:rem1_v, zero_extend if_v0 2);
            ( ~:rem0_v,
              zero_extend if_v0 2 +: zero_extend (if_v0 &: if_v1) 2 );
          ]
      in
      let keep0_v =
        onehot_or gnd
          [ (eq_const ncons 0, if_v0); (eq_const ncons 1, if_v1) ]
      in
      let keep0_pc = mux (eq_const ncons 1) if_pc1 if_pc0 in
      let keep0_i = mux (eq_const ncons 1) if_i1 if_i0 in
      let keep1_v = eq_const ncons 0 &: if_v1 in
      if_v0 <== mux flush_front gnd vdd;
      if_pc0 <== mux keep0_v keep0_pc fetch_pc;
      if_i0 <== mux keep0_v keep0_i if_in0;
      if_v1 <== mux flush_front gnd vdd;
      if_pc1
      <== mux keep1_v if_pc1
            (mux keep0_v fetch_pc (fetch_pc +: of_int pcw 1));
      if_i1 <== mux keep1_v if_i1 (mux keep0_v if_in0 if_in1);
      let nkeep = zero_extend keep0_v 2 +: zero_extend keep1_v 2 in
      fetch_pc
      <== mux excp_flush (zero pcw)
            (mux redirect redirect_pc
               (fetch_pc +: zero_extend (of_int 2 2 -: nkeep) pcw))
    end
  in

  (* ------------------------------------------------------------------ *)
  (* Named outputs and metadata                                          *)
  (* ------------------------------------------------------------------ *)
  let name_wire nm s =
    let w = wire ~name:nm (width s) in
    w <== s;
    w
  in
  let commit_w = name_wire sig_commit commit_now in
  let commit_pc_named = name_wire sig_commit_pc commit_pc_w in
  let flush_w = name_wire "flush" flush_any in
  ignore bv;
  ignore f_imm;
  ignore mrq_pc;

  let one_state_ufsm name pcr v label =
    {
      Meta.ufsm_name = name;
      pcr;
      vars = [ v ];
      idle_states = [ Bitvec.zero 1 ];
      state_labels = [ (Bitvec.of_int ~width:1 1, label) ];
    }
  in
  let scb_ufsms =
    List.mapi
      (fun i (st, pc, _, _, _, _, _) ->
        {
          Meta.ufsm_name = Printf.sprintf "scb%d" i;
          pcr = pc;
          vars = [ st ];
          idle_states = [ Bitvec.zero 3 ];
          state_labels =
            [
              (Bitvec.of_int ~width:3 1, "scbIss");
              (Bitvec.of_int ~width:3 2, "scbFin");
              (Bitvec.of_int ~width:3 3, "scbCmt");
              (Bitvec.of_int ~width:3 4, "scbExcp");
            ];
        })
      scb
  in
  let stb_ufsms prefix label entries =
    List.mapi
      (fun i (v, pc, _, _, _) ->
        one_state_ufsm (Printf.sprintf "%s%d" prefix i) pc v label)
      entries
  in
  let ufsms =
    [
      one_state_ufsm "if0" if_pc0 if_v0 "IF";
      one_state_ufsm "id0" id0_pc id0_v "ID";
      one_state_ufsm "is" is_pc is_v "issue";
    ]
    @ (if cfg.operand_packing then
         [
           one_state_ufsm "if1" if_pc1 if_v1 "IF";
           one_state_ufsm "id1" id1_pc id1_v "ID";
           one_state_ufsm "is2" is2_pc is2_v "issue";
         ]
       else [])
    @ scb_ufsms
    @ [
        one_state_ufsm "div" div_pc div_busy "divU";
        one_state_ufsm "mul" mul_pc mul_busy "mulU";
        {
          Meta.ufsm_name = "ldu";
          pcr = ld_pc;
          vars = [ ld_state ];
          idle_states = [ Bitvec.zero 2 ];
          state_labels =
            [
              (Bitvec.of_int ~width:2 1, "ldStall");
              (Bitvec.of_int ~width:2 2, "ldFin");
            ];
        };
        one_state_ufsm "lsq" ld_pc lsq_v "LSQ";
      ]
    @ stb_ufsms "spec" "specSTB" spec
    @ stb_ufsms "com" "comSTB" com
    @ [ one_state_ufsm "mrq" mrq_pc mrq_v "memRq" ]
  in
  {
    Meta.design_name = design_name cfg;
    nl;
    ifrs =
      ({ Meta.ifr_valid = if_v0; ifr_pc = if_pc0; ifr_word = if_i0 }
      ::
      (if cfg.operand_packing then
         [ { Meta.ifr_valid = if_v1; ifr_pc = if_pc1; ifr_word = if_i1 } ]
       else []));
    operand_stage_valid = is_v;
    operand_stage_pc = is_pc;
    commit = commit_w;
    commit_pc = commit_pc_named;
    flush = flush_w;
    ufsms;
    operand_regs = [ ("rs1", is_r1); ("rs2", is_r2) ];
    arf;
    amem = mem;
    extra_assumes = [];
  }
