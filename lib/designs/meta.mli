(** Design metadata — the user annotations of §V-A / Table II.

    A design-under-verification (DUV) ships with: the instruction fetch
    register (IFR) interface, the commit signal, its µFSMs (⟨PCR, state
    vars⟩ tuples with idle states and human-readable PL labels), the
    operand registers at the register-read stage (taint-introduction points
    for SynthLC), and the architectural register file / main memory
    (taint-propagation blockers). *)

type ufsm = {
  ufsm_name : string;
  pcr : Hdl.Netlist.signal;
      (** Program-counter register acting as the instruction-identifying
          register (IIR): holds the PC of the occupying instruction. *)
  vars : Hdl.Netlist.signal list;
      (** State variables; their concatenation (head = MSBs) is the µFSM
          state. *)
  idle_states : Bitvec.t list;
      (** Valuations that denote "no instruction here" — never PLs. *)
  state_labels : (Bitvec.t * string) list;
      (** Human-readable PL label per non-idle state valuation, e.g.
          [(0b01, "scbIss")].  States without a label get a hex name. *)
}

type ifr_slot = {
  ifr_valid : Hdl.Netlist.signal;
  ifr_pc : Hdl.Netlist.signal;
  ifr_word : Hdl.Netlist.signal;
}
(** One instruction-fetch-register slot: the model checker constrains the
    word held at the slot whose PC matches the instruction under
    verification (§V-A). *)

type t = {
  design_name : string;
  nl : Hdl.Netlist.t;
  ifrs : ifr_slot list;  (** Every IFR slot (dual-fetch designs have two). *)
  operand_stage_valid : Hdl.Netlist.signal;
      (** The stage owning the operand registers is occupied. *)
  operand_stage_pc : Hdl.Netlist.signal;
      (** PC of the instruction occupying the operand stage. *)
  commit : Hdl.Netlist.signal;  (** 1-bit commit pulse. *)
  commit_pc : Hdl.Netlist.signal;  (** PC of the committing instruction. *)
  flush : Hdl.Netlist.signal;  (** 1-bit squash pulse (redirect/exception). *)
  ufsms : ufsm list;
  operand_regs : (string * Hdl.Netlist.signal) list;
      (** Registers holding instruction operands at the register-read stage,
          keyed ["rs1"]/["rs2"] — SynthLC's taint-introduction points. *)
  arf : Hdl.Netlist.signal list;  (** Architectural register file. *)
  amem : Hdl.Netlist.signal list;  (** Architectural main memory. *)
  extra_assumes : Hdl.Netlist.signal list;
      (** Design-specific environment constraints that must hold on every
          model-checked cycle (e.g. well-formed request interfaces). *)
}

val ufsm_state_width : t -> ufsm -> int
(** Total width of a µFSM's concatenated state variables. *)

val state_value : t -> ufsm -> Bitvec.t -> string
(** The label for a state valuation (falls back to hex). *)

val all_state_valuations : t -> ufsm -> Bitvec.t list
(** Every constant valuation of the µFSM's state variables, idle included —
    the starting point of PL enumeration (§V-B1). *)

val signals : t -> Hdl.Netlist.signal list
(** Every netlist signal the metadata references (IFR slots, stage
    interface, µFSM registers, operand registers, ARF/memory, extra
    assumes), deduplicated and sorted — the merge-barrier set handed to
    the equivalence sweep so annotated semantics survive reduction. *)

val count_pcrs : t -> int
val count_ufsm_state_regs : t -> int
