type ufsm = {
  ufsm_name : string;
  pcr : Hdl.Netlist.signal;
  vars : Hdl.Netlist.signal list;
  idle_states : Bitvec.t list;
  state_labels : (Bitvec.t * string) list;
}

type ifr_slot = {
  ifr_valid : Hdl.Netlist.signal;
  ifr_pc : Hdl.Netlist.signal;
  ifr_word : Hdl.Netlist.signal;
}

type t = {
  design_name : string;
  nl : Hdl.Netlist.t;
  ifrs : ifr_slot list;
  operand_stage_valid : Hdl.Netlist.signal;
  operand_stage_pc : Hdl.Netlist.signal;
  commit : Hdl.Netlist.signal;
  commit_pc : Hdl.Netlist.signal;
  flush : Hdl.Netlist.signal;
  ufsms : ufsm list;
  operand_regs : (string * Hdl.Netlist.signal) list;
  arf : Hdl.Netlist.signal list;
  amem : Hdl.Netlist.signal list;
  extra_assumes : Hdl.Netlist.signal list;
}

let ufsm_state_width t u =
  List.fold_left (fun acc v -> acc + Hdl.Netlist.width t.nl v) 0 u.vars

let state_value _t u v =
  match List.find_opt (fun (s, _) -> Bitvec.equal s v) u.state_labels with
  | Some (_, l) -> l
  | None -> Printf.sprintf "%s_s%s" u.ufsm_name (Bitvec.to_hex_string v)

let all_state_valuations t u =
  let w = ufsm_state_width t u in
  List.init (1 lsl w) (fun i -> Bitvec.of_int ~width:w i)

let signals t =
  let ufsm u = (u.pcr :: u.vars) in
  List.sort_uniq compare
    (List.concat_map (fun s -> [ s.ifr_valid; s.ifr_pc; s.ifr_word ]) t.ifrs
    @ [ t.operand_stage_valid; t.operand_stage_pc; t.commit; t.commit_pc; t.flush ]
    @ List.concat_map ufsm t.ufsms
    @ List.map snd t.operand_regs
    @ t.arf @ t.amem @ t.extra_assumes)

let count_pcrs t = List.length t.ufsms

let count_ufsm_state_regs t =
  List.fold_left (fun acc u -> acc + List.length u.vars) 0 t.ufsms
