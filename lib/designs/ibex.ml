let iuv_pc = 2

let xlen = Isa.xlen
let pcw = Isa.pc_bits
let iw = Isa.width
let mem_words = 8

(* EX-stage states. *)
let s_idle = 0
let s_ex = 1 (* single-cycle execute / first cycle of every instruction *)
let s_div = 2
let s_mem = 3
let s_excp = 4

let build () =
  let module D = Hdl.Dsl.Make (struct
    let nl = Hdl.Netlist.create "ibex_lite"
  end) in
  let open D in
  let if_in = input "if_instr_in" iw in

  let fetch_pc = reg ~name:"fetch_pc" ~width:pcw () in
  let if_v = reg ~name:"if_v" ~width:1 () in
  let if_pc = reg ~name:"if_pc" ~width:pcw () in
  let if_i = reg ~name:"if_i" ~width:iw () in

  let ex_state = reg ~name:"ex_state" ~width:3 () in
  let ex_pc = reg ~name:"ex_pc" ~width:pcw () in
  let ex_i = reg ~name:"ex_i" ~width:iw () in
  let ex_r1 = reg ~name:"operand_rs1" ~width:xlen () in
  let ex_r2 = reg ~name:"operand_rs2" ~width:xlen () in

  let arf =
    List.init 3 (fun i -> reg_symbolic ~name:(Printf.sprintf "arf%d" (i + 1)) ~width:xlen ())
  in
  let mem =
    List.init mem_words (fun i ->
        reg_symbolic ~name:(Printf.sprintf "mem%d" i) ~width:xlen ())
  in

  (* Divider state (same restoring, leading-zero-skip structure as the
     CVA6-lite divider, folded into the EX stage). *)
  let div_cnt = reg ~name:"div_cnt" ~width:4 () in
  let div_rem = reg ~name:"div_rem" ~width:xlen () in
  let div_quo = reg ~name:"div_quo" ~width:xlen () in
  let div_dvs = reg ~name:"div_dvs" ~width:xlen () in
  let div_negq = reg ~name:"div_negq" ~width:1 () in
  let div_negr = reg ~name:"div_negr" ~width:1 () in
  let div_div0 = reg ~name:"div_div0" ~width:1 () in
  let div_a0 = reg ~name:"div_a0" ~width:xlen () in
  let mem_cnt = reg ~name:"mem_cnt" ~width:1 () in

  (* Decode helpers over the EX instruction word. *)
  let f_op i = select i 18 14 in
  let f_rd i = select i 13 12 in
  let f_rs1 i = select i 11 10 in
  let f_rs2 i = select i 9 8 in
  let f_imm i = select i 7 0 in
  let op_is i o = eq_const (f_op i) (Isa.opcode_to_int o) in
  let op_in i os = List.fold_left (fun acc o -> acc |: op_is i o) gnd os in
  let cls c i = op_in i (List.filter (fun o -> Isa.class_of o = c) Isa.all_opcodes) in
  let is_div = cls Isa.Divc in
  let is_load = cls Isa.Load in
  let is_store = cls Isa.Store in
  let is_branch = cls Isa.Branch in
  let is_jump = cls Isa.Jump in
  let writes_rd i =
    op_in i (List.filter Isa.writes_rd Isa.all_opcodes) &: (f_rd i <>: zero 2)
  in

  let st v = eq_const ex_state v in
  let ex_busy = ~:(st s_idle) in

  let a = ex_r1 and b = ex_r2 in
  let imm = f_imm ex_i in

  (* --- single-cycle datapath during the first EX cycle ---------------- *)
  let sll8 x k = if k = 0 then x else concat [ select x (xlen - 1 - k) 0; zero k ] in
  let srl8 x k = if k = 0 then x else concat [ zero k; select x (xlen - 1) k ] in
  let sra8 x k = if k = 0 then x else concat [ repeat (msb x) k; select x (xlen - 1) k ] in
  let shift f = binary_mux (select b 2 0) (List.init 8 (fun k -> f a k)) in
  let onehot_or d cases = List.fold_left (fun acc (c, v) -> mux c v acc) d cases in
  let link_val = concat [ ex_pc +: of_int pcw 1; zero 2 ] in
  let alu_res =
    onehot_or (zero xlen)
      [
        (op_is ex_i Isa.ADD, a +: b);
        (op_is ex_i Isa.ADDI, a +: imm);
        (op_is ex_i Isa.SUB, a -: b);
        (op_is ex_i Isa.AND, a &: b);
        (op_is ex_i Isa.ANDI, a &: imm);
        (op_is ex_i Isa.OR, a |: b);
        (op_is ex_i Isa.ORI, a |: imm);
        (op_is ex_i Isa.XOR, a ^: b);
        (op_is ex_i Isa.XORI, a ^: imm);
        (op_is ex_i Isa.SLT, zero_extend (a <+ b) xlen);
        (op_is ex_i Isa.SLTU, zero_extend (a <: b) xlen);
        (op_is ex_i Isa.SLL, shift sll8);
        (op_is ex_i Isa.SRL, shift srl8);
        (op_is ex_i Isa.SRA, shift sra8);
        (op_is ex_i Isa.MUL, a *: b);
        (is_jump ex_i, link_val);
      ]
  in
  let br_taken =
    onehot_or gnd
      [
        (op_is ex_i Isa.BEQ, a ==: b);
        (op_is ex_i Isa.BNE, a <>: b);
        (op_is ex_i Isa.BLT, a <+ b);
        (op_is ex_i Isa.BGE, ~:(a <+ b));
        (op_is ex_i Isa.BLTU, a <: b);
        (op_is ex_i Isa.BGEU, ~:(a <: b));
      ]
  in
  let pc_bytes = concat [ ex_pc; zero 2 ] in
  let target =
    mux (op_is ex_i Isa.JALR) (a +: imm) (pc_bytes +: imm)
  in
  let ctrl_taken = is_jump ex_i |: (is_branch ex_i &: br_taken) in
  let misaligned = select target 1 0 <>: zero 2 in
  (* Ibex-lite is bug-free: the exception fires exactly when the transfer
     is taken and misaligned. *)
  let ex_first = st s_ex in
  let excp_now = ex_first &: ctrl_taken &: misaligned in
  let redirect = ex_first &: ctrl_taken &: ~:misaligned in
  let redirect_pc = uresize (select target 7 2) pcw in

  (* Divider step (operates while st s_div). *)
  let signed_div = op_in ex_i [ Isa.DIV; Isa.REM ] in
  let abs_x x neg = mux neg (zero xlen -: x) x in
  let da = abs_x a (signed_div &: msb a) in
  let db = abs_x b (signed_div &: msb b) in
  let sig_bits =
    let rec scan k =
      if k < 0 then zero 4 else mux (bit da k) (of_int 4 (k + 1)) (scan (k - 1))
    in
    scan (xlen - 1)
  in
  let quo_init =
    mux (eq_const sig_bits 0) (zero xlen)
      (binary_mux (select (of_int 4 8 -: sig_bits) 2 0)
         (List.init 8 (fun k -> sll8 da k)))
  in
  let div_step_rem = concat [ select div_rem (xlen - 2) 0; msb div_quo ] in
  let div_sub = div_step_rem >=: div_dvs in
  let div_rem_next = mux div_sub (div_step_rem -: div_dvs) div_step_rem in
  let div_quo_next = concat [ select div_quo (xlen - 2) 0; div_sub ] in
  let div_done = st s_div &: (eq_const div_cnt 0 |: eq_const div_cnt 1) in
  let div_quo_final = mux (eq_const div_cnt 0) div_quo div_quo_next in
  let div_rem_final = mux (eq_const div_cnt 0) div_rem div_rem_next in
  let div_q = mux div_negq (zero xlen -: div_quo_final) div_quo_final in
  let div_r = mux div_negr (zero xlen -: div_rem_final) div_rem_final in
  let div_result =
    mux div_div0
      (mux (op_in ex_i [ Isa.REM; Isa.REMU ]) div_a0 (ones xlen))
      (mux (op_in ex_i [ Isa.REM; Isa.REMU ]) div_r div_q)
  in

  (* Memory. *)
  let addr = a +: imm in
  let word_of x = select x 2 0 in
  let mem_rdata = binary_mux (word_of addr) mem in
  let ld_result =
    mux (op_is ex_i Isa.LB) (sign_extend (select mem_rdata 3 0) xlen) mem_rdata
  in
  let mem_done = st s_mem &: eq_const mem_cnt 1 in
  let store_now = ex_first &: is_store ex_i in
  let st_data =
    mux (op_is ex_i Isa.SB) (concat [ zero 4; select b 3 0 ]) b
  in
  let () =
    List.iteri
      (fun i m -> m <== mux (store_now &: eq_const (word_of addr) i) st_data m)
      mem
  in

  (* Completion and writeback. *)
  let single_cycle =
    ex_first &: ~:(is_div ex_i) &: ~:(is_load ex_i)
  in
  let complete =
    (single_cycle &: ~:excp_now) |: div_done |: mem_done
  in
  let result =
    onehot_or alu_res [ (div_done, div_result); (mem_done, ld_result) ]
  in
  let () =
    List.iteri
      (fun i r ->
        r
        <== mux
              (complete &: writes_rd ex_i &: eq_const (f_rd ex_i) (i + 1))
              result r)
      arf
  in

  (* EX-stage transitions: idle/complete -> accept from IF.  A redirect or
     exception kills the fetched (wrong-path) instruction instead. *)
  let flush_now = redirect |: excp_now |: st s_excp in
  let accept = (st s_idle |: complete |: st s_excp) &: if_v &: ~:flush_now in
  (* Register read with same-cycle forwarding from the completing
     instruction (its ARF write lands at the end of this cycle). *)
  let rf v =
    let base = binary_mux v (zero xlen :: arf) in
    mux
      (complete &: writes_rd ex_i &: (f_rd ex_i ==: v))
      result base
  in
  let () =
    ex_state
    <== priority_mux
          [
            (accept, of_int 3 s_ex);
            (ex_first &: excp_now, of_int 3 s_excp);
            (ex_first &: is_div ex_i, of_int 3 s_div);
            (ex_first &: is_load ex_i, of_int 3 s_mem);
            (complete |: st s_excp, of_int 3 s_idle);
          ]
          ex_state;
    ex_pc <== mux accept if_pc ex_pc;
    ex_i <== mux accept if_i ex_i;
    ex_r1 <== mux accept (rf (f_rs1 if_i)) ex_r1;
    ex_r2 <== mux accept (rf (f_rs2 if_i)) ex_r2;
    div_cnt
    <== priority_mux
          [
            (ex_first &: is_div ex_i, sig_bits);
            (st s_div &: (div_cnt <>: zero 4), div_cnt -: of_int 4 1);
          ]
          div_cnt;
    div_rem <== priority_mux [ (ex_first, zero xlen); (st s_div, div_rem_next) ] div_rem;
    div_quo <== priority_mux [ (ex_first, quo_init); (st s_div, div_quo_next) ] div_quo;
    div_dvs <== mux ex_first db div_dvs;
    div_negq <== mux ex_first (signed_div &: (msb a ^: msb b) &: (b <>: zero xlen)) div_negq;
    div_negr <== mux ex_first (signed_div &: msb a) div_negr;
    div_div0 <== mux ex_first (b ==: zero xlen) div_div0;
    div_a0 <== mux ex_first a div_a0;
    mem_cnt
    <== priority_mux
          [ (ex_first &: is_load ex_i, gnd); (st s_mem, vdd) ]
          mem_cnt
  in
  (* The mem stage takes two cycles: cnt 0 then 1. *)
  let () = ignore mem_done in

  (* Frontend: one IF slot; flush on redirect or exception. *)
  let if_adv = accept |: ~:if_v in
  let () =
    if_v <== mux flush_now gnd vdd;
    if_pc <== mux if_adv fetch_pc if_pc;
    if_i <== mux if_adv if_in if_i;
    fetch_pc
    <== priority_mux
          [
            (st s_excp, zero pcw);
            (redirect, redirect_pc);
            (if_adv, fetch_pc +: of_int pcw 1);
          ]
          fetch_pc
  in

  let name_wire nm s =
    let w = wire ~name:nm (width s) in
    w <== s;
    w
  in
  let commit_w = name_wire "commit" (complete |: st s_excp) in
  let commit_pc_w = name_wire "commit_pc" ex_pc in
  let flush_w = name_wire "flush" flush_now in
  let operand_valid_w = name_wire "operand_stage_valid" ex_busy in

  let ufsms =
    [
      {
        Meta.ufsm_name = "if0";
        pcr = if_pc;
        vars = [ if_v ];
        idle_states = [ Bitvec.zero 1 ];
        state_labels = [ (Bitvec.of_int ~width:1 1, "IF") ];
      };
      {
        Meta.ufsm_name = "ex";
        pcr = ex_pc;
        vars = [ ex_state ];
        idle_states = [ Bitvec.zero 3 ];
        state_labels =
          [
            (Bitvec.of_int ~width:3 s_ex, "EX");
            (Bitvec.of_int ~width:3 s_div, "divU");
            (Bitvec.of_int ~width:3 s_mem, "memU");
            (Bitvec.of_int ~width:3 s_excp, "exExcp");
          ];
      };
    ]
  in
  {
    Meta.design_name = "ibex_lite";
    nl;
    ifrs = [ { Meta.ifr_valid = if_v; ifr_pc = if_pc; ifr_word = if_i } ];
    operand_stage_valid = operand_valid_w;
    operand_stage_pc = ex_pc;
    commit = commit_w;
    commit_pc = commit_pc_w;
    flush = flush_w;
    ufsms;
    operand_regs = [ ("rs1", ex_r1); ("rs2", ex_r2) ];
    arf;
    amem = mem;
    extra_assumes = [];
  }
