(** A minimal DUV demonstrating the known-bits prune ({!Hdl.Absint}).

    Its "gate" µFSM's upper state bit is AND-gated on a register that
    provably stays 0 from reset — an invariant only the register-step
    known-bits fixpoint can see (no structural constant fold applies, and
    the plain FSM-reachability abstraction treats the gating register as
    unconstrained).  The two upper states are therefore base-reachable but
    known-bits-dead: exactly the covers the absint prune discharges.  Used
    by the bench (P8), the CI absint smoke, and the tri-mode
    digest-identity test. *)

val iuv_pc : int

val build : unit -> Meta.t
