(** SynthLC top level (§V): RTL2MµPATH per instruction, candidate-transponder
    detection, symbolic-IFT attribution of decisions to typed transmitters,
    and leakage-signature assembly. *)

type stimulus_builder =
  pins:(int * Isa.t) list ->
  rotate:(int * Isa.t list) list ->
  Designs.Meta.t ->
  Sim.t ->
  int ->
  unit
(** Stimulus factory: the engine pins the IUV slot and rotates random
    transmitter candidates through the transmitter slot (§V-C1). *)

type transponder_report = {
  instr : Isa.t;
  synth : Mupath.Synth.result;  (** The µPATH synthesis result. *)
  tagged : Types.tagged_decision list;
  signatures : Types.signature list;
  flow_props : int;
  flow_undetermined : int;
  flow_pruned_static : int;
      (** IFT covers discharged by the static taint pre-pass without checker
          calls.  Differs across {!Types.prune_mode}s (0 in off/audit), so
          excluded from {!report_digest}. *)
  flow_pruned_absint : int;
      (** IFT covers discharged {e only} by the known-bits-refined pre-pass
          ({!Hdl.Absint}) — dead refined, live under the base pre-pass.
          Same digest-exclusion rule as [flow_pruned_static]. *)
  static_flow_live : (Types.operand * string list) list;
      (** The static leakage grid: per operand register, the PL labels whose
          µFSMs the operand's taint may reach.  Recomputed independently of
          the Flow pre-pass; every tagged decision is asserted to lie inside
          it (except in {!Types.Prune_off}).  Excluded from the digest. *)
  flow_time : float;
}

type report = {
  design_name : string;
  transponders : transponder_report list;
  checker_totals : Mc.Checker.Stats.t;
      (** {!Mc.Checker.Stats.merge} over every per-instruction synthesis. *)
  total_mupath_props : int;
  total_flow_props : int;
  total_flow_pruned_static : int;
  total_flow_pruned_absint : int;
      (** Sum of per-transponder [flow_pruned_absint]; excluded from the
          digest. *)
  precise : bool;
      (** IFT cell-rule precision the flow stage ran with.  Part of the
          digest — imprecise runs answer a different question. *)
  jobs : int;  (** Domain count the report was produced with. *)
  elapsed : float;
  metrics : (string * float) list;
      (** {!Obs.Metrics.snapshot} taken at the end of the run; [[]] when
          the obs layer is disabled.  Observability only — excluded from
          {!equal_report} and {!report_digest} (the digest-exclusion
          rule), so tracing a run cannot change its identity. *)
}

val is_secondary : Types.tagged_decision -> bool
(** §VII-A1 secondary-leakage heuristic: a stall-in-place decision
    (destination = source alone) leaks only through shared-resource
    back-pressure. *)

val signatures_of_tagged :
  Isa.t ->
  (string * string list list) list ->
  Types.tagged_decision list ->
  Types.signature list
(** Assemble signatures per decision source; requires at least two tagged
    destinations per source (the paper's footnote 3). *)

val static_leakage_grid :
  precise:bool ->
  (unit -> Designs.Meta.t) ->
  (Types.operand * string list) list
(** The static leakage-grid over-approximation for a design: per operand
    register, the PL labels whose member µFSM state (PCR or vars) the
    operand's taint may reach under {!Hdl.Analysis.taint_reach} with the
    ARF/AMEM blocked.  Any decision destination outside the grid can never
    be tagged by a sound flow analysis. *)

val analyze_transponder :
  ?cache:Vcache.t ->
  ?config:Mc.Checker.config ->
  ?synth_config:Mc.Checker.config ->
  ?semantic_cache:bool ->
  ?static_prune:bool ->
  ?dump_cnf:string ->
  ?precise:bool ->
  ?static_flow_prune:Types.prune_mode ->
  ?absint:Types.prune_mode ->
  ?stimulus:stimulus_builder ->
  ?exclude_sources:string list ->
  design:(unit -> Designs.Meta.t) ->
  instr:Isa.t ->
  transmitters:Isa.opcode list ->
  kinds:Types.transmitter_kind list ->
  revisit_count_labels:string list ->
  iuv_pc:int ->
  unit ->
  transponder_report

(** [run]'s [exclude_sources] skips the listed decision-source PLs during
    the IFT stage — a cost-control knob, not a semantic one.

    [dump_cnf] writes the synthesis checker's BMC unrolling to the given
    path as DIMACS CNF at the end of each task (per-instruction runs
    suffix the path with the task index) — offline debugging only, no
    semantic effect.

    [jobs] fans {!analyze_transponder} out across that many domains (one
    fresh design + checker per instruction); [pool] reuses an existing
    {!Pool.t} instead (taking its job count).  Every task's checker seed is
    derived deterministically from [(config.seed, task index)], so the
    report is bit-identical for every [jobs] value, including 1.

    [cache] attaches a persistent verdict store shared by every
    per-instruction synthesis and IFT stage.  Each task works against its
    own staged view (no lock contention inside worker domains); the stages
    are merged into the root store in task order at the join.  A fully-warm
    run replays every verdict — witnesses included — from the store and
    produces a bit-identical report (same {!report_digest}) to the cold run
    that filled it.

    [static_prune] is forwarded to {!Mupath.Synth.run} (default [true]):
    covers over statically-unreachable µFSM states are discharged by the
    FSM-abstraction reachability pre-pass without dispatching properties.
    {!report_digest} is bit-identical across [static_prune] modes.

    [static_flow_prune] (default {!Types.Prune_on}) is forwarded to
    {!Flow.analyze}: IFT covers whose destinations lie outside the operand's
    static taint cone are discharged without checker calls (on), dispatched
    as a trailing trusted batch (off), or dispatched with a [failwith]
    tripwire on any reachable verdict (audit).  All modes issue the same
    mid-stream checker sequence, so {!report_digest} is bit-identical across
    them whenever the abstraction is sound.

    [absint] (default {!Types.Prune_on}) governs the known-bits refinement
    ({!Hdl.Absint}) independently: it is forwarded to {!Mupath.Synth.run}
    (extra statically-dead µFSM states and known-zero occupancy monitors)
    and to {!Flow.analyze} (covers dead only under the known-bits-refined
    taint pre-pass), with the same tri-mode contract and the same
    digest-invariance guarantee.  [precise] (default [true])
    selects the IFT cell-rule precision, is threaded identically into the
    instrumentation and the static pre-pass, and namespaces the verdict
    cache when imprecise. *)
val run :
  ?cache:Vcache.t ->
  ?config:Mc.Checker.config ->
  ?synth_config:Mc.Checker.config ->
  ?semantic_cache:bool ->
  ?static_prune:bool ->
  ?dump_cnf:string ->
  ?precise:bool ->
  ?static_flow_prune:Types.prune_mode ->
  ?absint:Types.prune_mode ->
  ?stimulus:stimulus_builder ->
  ?exclude_sources:string list ->
  ?jobs:int ->
  ?pool:Pool.t ->
  design:(unit -> Designs.Meta.t) ->
  instructions:Isa.t list ->
  transmitters:Isa.opcode list ->
  kinds:Types.transmitter_kind list ->
  revisit_count_labels:string list ->
  iuv_pc:int ->
  unit ->
  report

val equal_report : report -> report -> bool
(** Semantic equality — every synthesized fact (µPATH sets, decisions,
    tagged flows, signatures, property/outcome counts), ignoring
    wall-clock fields.  Reports produced with different [jobs] values must
    compare equal. *)

val report_digest : report -> string
(** Hex digest over the semantic facts of a report — µPATH sets, decisions,
    tagged flows, signatures — excluding wall-clock, cache hit/miss, and
    property/outcome counters.  [equal_report a b] implies
    [report_digest a = report_digest b]; a warm-cache run digests
    identically to the cold run that filled its store, and the digest is
    bit-identical across [static_prune] modes (whose stage counters
    differ). *)

val all_signatures : report -> Types.signature list
val all_transmitter_opcodes : report -> Isa.opcode list
val pp_report : Format.formatter -> report -> unit
