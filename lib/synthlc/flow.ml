(* Symbolic information-flow queries (§V-C1).

   For one transponder P and one (transmitter-kind, operand) pair, [analyze]
   builds a fresh copy of the design, instruments it with CellIFT-style
   taint logic whose single taint source is the chosen operand register while
   the transmitter's PC occupies the operand-read stage (Fig. 7), adds the
   transmitter-typing monitors (in-flight / gone) implementing Assumptions
   1/2a/2b/3, and then evaluates one cover property per (transmitter,
   decision): is there a trace where P exhibits decision (src, dst) one
   cycle after visiting src, with the destination µFSMs tainted? *)

module Netlist = Hdl.Netlist
module Meta = Designs.Meta
module Checker = Mc.Checker

type query_stats = {
  mutable q_props : int;
  mutable q_tagged : int;
  mutable q_undetermined : int;
  mutable q_pruned_static : int;
  mutable q_pruned_absint : int;
  mutable q_audit_props : int;
  mutable q_audit_undetermined : int;
  mutable q_time : float;
}

type analysis = {
  tagged : Types.tagged_decision list;
  static_live : string list;
  stats : query_stats;
}

(* Transmitter PC slots relative to the IUV (§V-C1, Fig. 7). *)
let transmitter_pc ~iuv_pc = function
  | Types.Intrinsic -> iuv_pc
  | Types.Dynamic_older -> iuv_pc - 1
  | Types.Dynamic_younger -> iuv_pc + 1
  | Types.Static -> iuv_pc - 2

let analyze_inner ?cache ?cache_salt ?config ?stimulus ?semantic_cache
    ?(precise = true)
    ?(static_flow_prune = Types.Prune_on) ?(absint = Types.Prune_on)
    ~(design : unit -> Meta.t)
    ~(transponder : Isa.t)
    ~(decisions : (string * string list list) list)
    ~(transmitters : Isa.opcode list) ~(kind : Types.transmitter_kind)
    ~(operand : Types.operand) ~iuv_pc () =
  let t_start = Unix.gettimeofday () in
  let meta = design () in
  let nl = meta.Meta.nl in
  let module D = Hdl.Dsl.Make (struct
    let nl = nl
  end) in
  let open D in
  let pcw = Netlist.width nl meta.Meta.commit_pc in
  let pc_t = transmitter_pc ~iuv_pc kind in
  let pc_t_c = of_int pcw pc_t in
  let or_all = List.fold_left ( |: ) gnd in

  (* --- transmitter-instance monitors --------------------------------- *)
  (* Latch the first instruction word fetched at the transmitter's PC and
     pin later refetches to it, so the transmitter's identity is stable. *)
  let slot_holds_t (s : Meta.ifr_slot) =
    s.Meta.ifr_valid &: (s.Meta.ifr_pc ==: pc_t_c)
  in
  let any_slot_t = or_all (List.map slot_holds_t meta.Meta.ifrs) in
  let slot_word =
    List.fold_left
      (fun acc (s : Meta.ifr_slot) -> mux (slot_holds_t s) s.Meta.ifr_word acc)
      (zero Isa.width) meta.Meta.ifrs
  in
  let t_word_valid = reg ~name:"tx_word_valid" ~width:1 () in
  let t_word = reg ~name:"tx_word" ~width:Isa.width () in
  let () =
    t_word_valid <== (t_word_valid |: any_slot_t);
    t_word <== mux (any_slot_t &: ~:t_word_valid) slot_word t_word
  in
  let t_word_stable =
    ~:(any_slot_t &: t_word_valid) |: (slot_word ==: t_word)
  in
  let t_op = select t_word 18 14 in
  let t_op_is =
    List.map (fun o -> (o, t_word_valid &: eq_const t_op (Isa.opcode_to_int o)))
      transmitters
  in

  (* Transmitter in-flight / gone tracking over the design's µFSMs. *)
  let groups = Mupath.Harness.pl_groups meta in
  let occ_t_of ((u : Meta.ufsm), state) =
    (concat u.Meta.vars ==: of_bv state) &: (u.Meta.pcr ==: pc_t_c)
  in
  let inflight_t =
    or_all (List.concat_map (fun (_, members) -> List.map occ_t_of members) groups)
  in
  let prev_inflight_t = reg ~name:"tx_prev_inflight" ~width:1 () in
  let () = prev_inflight_t <== inflight_t in
  let committed_t = reg ~name:"tx_committed" ~width:1 () in
  let () =
    committed_t
    <== (committed_t |: (meta.Meta.commit &: (meta.Meta.commit_pc ==: pc_t_c)))
  in
  let gone_t_now = committed_t &: ~:inflight_t in
  let gone_t = reg ~name:"tx_gone" ~width:1 () in
  let () = gone_t <== (gone_t |: gone_t_now) in
  let prev_gone_t = reg ~name:"tx_prev_gone" ~width:1 () in
  let () = prev_gone_t <== gone_t in
  let flush_pulse = gone_t_now &: ~:gone_t in

  (* --- taint instrumentation ------------------------------------------ *)
  let op_reg = List.assoc_opt (Types.operand_name operand) meta.Meta.operand_regs in
  let inject_cond =
    meta.Meta.operand_stage_valid &: (meta.Meta.operand_stage_pc ==: pc_t_c)
  in
  match op_reg with
  | None ->
    (* The design has no such operand register (e.g. a single-operand toy
       DUV): nothing can be tainted, nothing is tagged. *)
    {
      tagged = [];
      static_live = [];
      stats =
        {
          q_props = 0;
          q_tagged = 0;
          q_undetermined = 0;
          q_pruned_static = 0;
          q_pruned_absint = 0;
          q_audit_props = 0;
          q_audit_undetermined = 0;
          q_time = 0.;
        };
    }
  | Some op_reg ->
  let blocked = meta.Meta.arf @ meta.Meta.amem in

  (* --- static taint-flow pre-pass -------------------------------------- *)
  (* Over-approximate, on the un-instrumented netlist, which PL groups the
     operand's taint may ever reach.  A cover whose destination set lies
     entirely outside this cone (or is empty — [or_all [] = gnd]) asks the
     checker to reach a constant-false taint conjunct and is statically
     unreachable.  All three prune modes keep such covers out of the
     mid-stream checker sequence so the report digest is mode-invariant;
     see {!Types.prune_mode}. *)
  let static_masks =
    let go () = Hdl.Analysis.taint_reach ~precise ~blocked ~sources:[ op_reg ] nl in
    if Obs.enabled () then Obs.with_span "flow.static_taint" go else go ()
  in
  let label_live =
    List.map
      (fun (label, members) ->
        let m_live ((u : Meta.ufsm), _) =
          List.exists
            (fun v -> Hdl.Analysis.taint_reaches static_masks v)
            (u.Meta.pcr :: u.Meta.vars)
        in
        (label, List.exists m_live members))
      groups
  in
  (* Unknown labels are treated as live: never prune on missing data. *)
  let dst_live ds =
    List.exists
      (fun lbl ->
        match List.assoc_opt lbl label_live with Some b -> b | None -> true)
      ds
  in
  let static_live =
    List.filter_map (fun (l, live) -> if live then Some l else None) label_live
  in
  (* --- known-bits refinement of the taint pre-pass ---------------------- *)
  (* Re-run the same pre-pass with the known-bits invariants from
     {!Hdl.Absint}: proven-constant selector and operand bits let the
     precise cell rules drop propagation edges the plain pre-pass keeps,
     so strictly more covers are proven dead.  The refinement only prunes
     {e extra} covers (dead refined, live under the base pre-pass); those
     are tracked separately under [absint] with the same tri-mode contract
     as [static_flow_prune], so each abstraction is auditable on its own. *)
  let refined_masks =
    let go () =
      let kb = Hdl.Absint.known_bits nl in
      Hdl.Analysis.taint_reach ~precise ~known:kb ~blocked
        ~sources:[ op_reg ] nl
    in
    if Obs.enabled () then Obs.with_span "flow.absint_taint" go else go ()
  in
  let label_live_refined =
    List.map
      (fun (label, members) ->
        let m_live ((u : Meta.ufsm), _) =
          List.exists
            (fun v -> Hdl.Analysis.taint_reaches refined_masks v)
            (u.Meta.pcr :: u.Meta.vars)
        in
        (label, List.exists m_live members))
      groups
  in
  let dst_live_refined ds =
    List.exists
      (fun lbl ->
        match List.assoc_opt lbl label_live_refined with
        | Some b -> b
        | None -> true)
      ds
  in
  (* Persistent state for the sticky-taint flush of Assumption 3: every
     symbolically-initialized register that is not architectural (cache tag
     and data arrays in the cache DUV). *)
  let persistent =
    Netlist.fold_nodes nl ~init:[] ~f:(fun acc n ->
        match n.Netlist.kind with
        | Netlist.Reg { init = Netlist.Init_symbolic; _ }
          when not (List.mem n.Netlist.id blocked) ->
          n.Netlist.id :: acc
        | _ -> acc)
  in
  let flush = match kind with Types.Static -> Some flush_pulse | _ -> None in
  let ift =
    Ift.instrument ~precise
      ~inject:[ (op_reg, inject_cond) ]
      ~blocked ?flush ~persistent nl
  in

  (* Per-PL-group taint: any taint bit in a member µFSM's state variables or
     PCR. *)
  let group_taint =
    List.map
      (fun (label, members) ->
        let m_taint ((u : Meta.ufsm), _) =
          or_all (List.map (fun v -> Ift.any_taint ift v) (u.Meta.pcr :: u.Meta.vars))
        in
        (label, or_all (List.map m_taint members)))
      groups
  in
  (* One OR node per distinct destination set. *)
  let dst_sets =
    List.sort_uniq compare (List.concat_map (fun (_, ds) -> ds) decisions)
  in
  let dst_taints =
    List.map
      (fun ds -> (ds, or_all (List.map (fun lbl -> List.assoc lbl group_taint) ds)))
      dst_sets
  in

  (* --- IUV harness (checker) ------------------------------------------ *)
  let meta = { meta with Meta.extra_assumes = t_word_stable :: meta.Meta.extra_assumes } in
  (* Imprecise IFT changes what every cover means even if the instrumented
     netlist digest were to collide, so fold the mode into the verdict-cache
     namespace explicitly. *)
  let cache_salt =
    if precise then cache_salt
    else Some (Option.value cache_salt ~default:"" ^ "|ift:imprecise")
  in
  let h =
    Mupath.Harness.create ?cache ?cache_salt ?config ?stimulus ?semantic_cache
      ~meta ~iuv:transponder ~iuv_pc ()
  in
  let chk = Mupath.Harness.checker h in

  (* --- queries ---------------------------------------------------------- *)
  let stats =
    {
      q_props = 0;
      q_tagged = 0;
      q_undetermined = 0;
      q_pruned_static = 0;
      q_pruned_absint = 0;
      q_audit_props = 0;
      q_audit_undetermined = 0;
      q_time = 0.;
    }
  in
  let iuv_labels = Mupath.Harness.labels h in
  let kind_lits =
    match kind with
    | Types.Intrinsic -> []
    | Types.Dynamic_older | Types.Dynamic_younger ->
      [ (prev_inflight_t, true) ]
    | Types.Static -> [ (prev_gone_t, true) ]
  in
  let tagged = ref [] in
  let deferred = ref [] in
  let deferred_absint = ref [] in
  List.iter
    (fun tx ->
      (* Intrinsic transmitters can only be the transponder itself. *)
      if kind <> Types.Intrinsic || tx = transponder.Isa.op then
        let op_lit =
          if kind = Types.Intrinsic then []
          else [ (List.assoc tx t_op_is, true) ]
        in
        List.iter
          (fun (src, dsts) ->
            List.iter
              (fun dst ->
                let pattern =
                  List.map
                    (fun lbl -> (Mupath.Harness.occ_iuv h lbl, List.mem lbl dst))
                    iuv_labels
                in
                let lits =
                  ((Mupath.Harness.prev_occ_iuv h src, true) :: pattern)
                  @ [ (List.assoc dst dst_taints, true) ]
                  @ op_lit @ kind_lits
                in
                stats.q_props <- stats.q_props + 1;
                if not (dst_live dst) then begin
                  (* Statically dead: no destination µFSM lies inside the
                     operand's taint cone (an empty destination set is dead
                     by vacuity — its taint conjunct is a constant false). *)
                  match static_flow_prune with
                  | Types.Prune_on ->
                    stats.q_pruned_static <- stats.q_pruned_static + 1;
                    if Obs.enabled () then Obs.Metrics.incr "flow.pruned_static"
                  | Types.Prune_off | Types.Prune_audit ->
                    deferred := (tx, src, dst, lits) :: !deferred
                end
                else if not (dst_live_refined dst) then begin
                  (* Dead only under the known-bits-refined pre-pass: the
                     extra prune attributable to {!Hdl.Absint}.  Kept out of
                     the mid-stream sequence in every [absint] mode so the
                     report digest is mode-invariant. *)
                  match absint with
                  | Types.Prune_on ->
                    stats.q_pruned_absint <- stats.q_pruned_absint + 1;
                    if Obs.enabled () then Obs.Metrics.incr "flow.pruned_absint"
                  | Types.Prune_off | Types.Prune_audit ->
                    deferred_absint := (tx, src, dst, lits) :: !deferred_absint
                end
                else
                  match Checker.check_cover ~name:"ift" chk lits with
                  | Checker.Reachable _ ->
                    stats.q_tagged <- stats.q_tagged + 1;
                    tagged :=
                      {
                        Types.src;
                        dst;
                        input =
                          { Types.transmitter = tx; unsafe_operand = operand; kind };
                      }
                      :: !tagged
                  | Checker.Undetermined ->
                    stats.q_undetermined <- stats.q_undetermined + 1
                  | Checker.Unreachable _ -> ())
              dsts)
          decisions)
    transmitters;
  (* Trailing batch: in off/audit mode the statically-dead covers are still
     dispatched, but only after the live mid-stream sequence above so every
     mode issues the same mid-stream checker calls (same RNG draws, same
     learned clauses — see {!Types.prune_mode}). *)
  List.iter
    (fun (tx, src, dst, lits) ->
      stats.q_audit_props <- stats.q_audit_props + 1;
      match Checker.check_cover ~name:"ift" chk lits with
      | Checker.Reachable _ ->
        if static_flow_prune = Types.Prune_audit then
          failwith
            (Printf.sprintf
               "Flow: static taint abstraction unsound: cover %s -> {%s} \
                (%s, %s.%s) is reachable but its destinations lie outside \
                the static taint cone"
               src
               (String.concat ", " dst)
               (Types.kind_name kind) (Isa.mnemonic tx)
               (Types.operand_name operand))
        else begin
          stats.q_tagged <- stats.q_tagged + 1;
          tagged :=
            {
              Types.src;
              dst;
              input = { Types.transmitter = tx; unsafe_operand = operand; kind };
            }
            :: !tagged
        end
      | Checker.Undetermined ->
        stats.q_audit_undetermined <- stats.q_audit_undetermined + 1
      | Checker.Unreachable _ -> ())
    (List.rev !deferred);
  (* Second trailing batch: the known-bits-only prunes, audited under the
     [absint] mode with the same off/audit semantics. *)
  List.iter
    (fun (tx, src, dst, lits) ->
      stats.q_audit_props <- stats.q_audit_props + 1;
      match Checker.check_cover ~name:"ift" chk lits with
      | Checker.Reachable _ ->
        if absint = Types.Prune_audit then
          failwith
            (Printf.sprintf
               "Flow: known-bits abstraction unsound: cover %s -> {%s} \
                (%s, %s.%s) is reachable but the refined taint pre-pass \
                proved its destinations unreachable"
               src
               (String.concat ", " dst)
               (Types.kind_name kind) (Isa.mnemonic tx)
               (Types.operand_name operand))
        else begin
          stats.q_tagged <- stats.q_tagged + 1;
          tagged :=
            {
              Types.src;
              dst;
              input = { Types.transmitter = tx; unsafe_operand = operand; kind };
            }
            :: !tagged
        end
      | Checker.Undetermined ->
        stats.q_audit_undetermined <- stats.q_audit_undetermined + 1
      | Checker.Unreachable _ -> ())
    (List.rev !deferred_absint);
  stats.q_time <- Unix.gettimeofday () -. t_start;
  { tagged = List.rev !tagged; static_live; stats }

let analyze ?cache ?cache_salt ?config ?stimulus ?semantic_cache ?precise
    ?static_flow_prune
    ?absint ~design ~transponder ~decisions ~transmitters ~kind ~operand
    ~iuv_pc () =
  let go () =
    analyze_inner ?cache ?cache_salt ?config ?stimulus ?semantic_cache ?precise
      ?static_flow_prune ?absint ~design ~transponder ~decisions ~transmitters
      ~kind ~operand ~iuv_pc ()
  in
  if Obs.enabled () then
    Obs.with_span "flow.analyze"
      ~args:[ ("transponder", Isa.to_string transponder) ]
      go
  else go ()
