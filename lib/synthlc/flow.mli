(** Symbolic information-flow queries (§V-C1).

    For one transponder and one (transmitter-kind, operand) pair, {!analyze}
    builds a fresh copy of the design, instruments it with CellIFT-style
    taint logic whose single source is the chosen operand register while the
    transmitter's PC occupies the operand-read stage (Fig. 7), adds the
    transmitter-typing monitors implementing Assumptions 1/2a/2b/3, and
    evaluates one cover property per (transmitter, decision): is there a
    trace where the transponder exhibits decision (src, dst) one cycle after
    visiting src with the destination µFSMs tainted?  Reachable ⇒ the
    decision is tagged operand-dependent on that typed transmitter. *)

type query_stats = {
  mutable q_props : int;
      (** Covers considered, including statically-discharged ones — identical
          across prune modes and part of the report digest. *)
  mutable q_tagged : int;
  mutable q_undetermined : int;
  mutable q_pruned_static : int;
      (** Covers discharged by the static taint pre-pass without a checker
          call.  Only incremented in {!Types.Prune_on}; excluded from the
          report digest. *)
  mutable q_pruned_absint : int;
      (** Covers discharged {e only} by the known-bits-refined pre-pass
          (dead refined, live under the base pre-pass).  Only incremented
          when the [absint] mode is {!Types.Prune_on}; excluded from the
          report digest. *)
  mutable q_audit_props : int;
      (** Statically-dead covers dispatched in the trailing batch of
          {!Types.Prune_off}/{!Types.Prune_audit}.  Excluded from the
          digest. *)
  mutable q_audit_undetermined : int;
  mutable q_time : float;
}

type analysis = {
  tagged : Types.tagged_decision list;
  static_live : string list;
      (** PL labels inside the operand's static taint cone — the leakage-grid
          over-approximation.  Every tagged decision's destination set must
          intersect it (asserted by {!Engine}). *)
  stats : query_stats;
}

val transmitter_pc : iuv_pc:int -> Types.transmitter_kind -> int
(** PC slot the transmitter instance occupies relative to the IUV:
    intrinsic shares the IUV's slot, dynamic-older/-younger sit one slot
    before/after, static sits two slots before (so it can complete first). *)

val analyze :
  ?cache:Vcache.t ->
  ?cache_salt:string ->
  ?config:Mc.Checker.config ->
  ?stimulus:(Sim.t -> int -> unit) ->
  ?semantic_cache:bool ->
  ?precise:bool ->
  ?static_flow_prune:Types.prune_mode ->
  ?absint:Types.prune_mode ->
  design:(unit -> Designs.Meta.t) ->
  transponder:Isa.t ->
  decisions:(string * string list list) list ->
  transmitters:Isa.opcode list ->
  kind:Types.transmitter_kind ->
  operand:Types.operand ->
  iuv_pc:int ->
  unit ->
  analysis
(** [decisions] come from {!Mupath.Synth.run} (sources with their observed
    destination sets); [transmitters] are the candidate opcodes considered
    at the transmitter slot (intrinsic analyses only query the transponder
    itself); [precise] selects the IFT cell-rule precision (§VII-B1
    ablation) — it is threaded identically into the static taint pre-pass
    and folded into the verdict-cache namespace when imprecise.
    [static_flow_prune] (default {!Types.Prune_on}) selects what happens to
    covers the pre-pass proves unreachable; all three modes issue the same
    mid-stream checker sequence (see {!Types.prune_mode}).  [absint]
    (default {!Types.Prune_on}) independently governs the covers discharged
    only by the known-bits-refined pre-pass ({!Hdl.Absint}): they are kept
    out of the mid-stream sequence in every mode, discharged silently under
    [Prune_on], re-dispatched in a second trailing batch under
    [Prune_off]/[Prune_audit], and [Prune_audit] fails hard if any such
    cover is in fact reachable.  [design] must build a fresh metadata
    instance per call. *)
