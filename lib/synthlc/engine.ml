(* SynthLC top level (§V): RTL2MµPATH per instruction, candidate-transponder
   detection, symbolic-IFT attribution of decisions to typed transmitters,
   and leakage-signature assembly. *)

module Meta = Designs.Meta

(* Callers supply stimulus as a builder so the engine can pin the IUV slot
   and rotate random transmitters through the transmitter slot (§V-C1). *)
type stimulus_builder =
  pins:(int * Isa.t) list ->
  rotate:(int * Isa.t list) list ->
  Meta.t ->
  Sim.t ->
  int ->
  unit

type transponder_report = {
  instr : Isa.t;
  synth : Mupath.Synth.result;
  tagged : Types.tagged_decision list;
  signatures : Types.signature list;
  flow_props : int;
  flow_undetermined : int;
  flow_pruned_static : int;
      (* Covers discharged by the static taint pre-pass; differs across
         prune modes (0 in off/audit) so excluded from report_digest. *)
  flow_pruned_absint : int;
      (* Covers discharged only by the known-bits-refined pre-pass; same
         digest-exclusion rule as flow_pruned_static. *)
  static_flow_live : (Types.operand * string list) list;
      (* The static leakage grid: per operand, the PL labels its taint may
         reach.  Recomputed independently of Flow's pre-pass and used as a
         standing tripwire; excluded from report_digest (observability). *)
  flow_time : float;
}

type report = {
  design_name : string;
  transponders : transponder_report list;
  checker_totals : Mc.Checker.Stats.t;
  total_mupath_props : int;
  total_flow_props : int;
  total_flow_pruned_static : int;
  total_flow_pruned_absint : int;
  precise : bool;
      (* IFT cell-rule precision the flow stage ran with.  Part of the
         digest: imprecise runs answer a different question. *)
  jobs : int;
  elapsed : float;
  metrics : (string * float) list;
      (* Obs.Metrics snapshot at end of run; [] when tracing is off.
         Observability only — excluded from equal_report/report_digest. *)
}

(* Secondary leakage heuristic (§VII-A1): a tagged decision whose
   destination set equals its source alone is a pure stall-in-place —
   leakage observed only through shared-resource back-pressure. *)
let is_secondary (d : Types.tagged_decision) = d.Types.dst = [ d.Types.src ]

let signatures_of_tagged (transponder : Isa.t)
    (decisions : (string * string list list) list)
    (tagged : Types.tagged_decision list) =
  let sources = List.sort_uniq compare (List.map (fun d -> d.Types.src) tagged) in
  List.filter_map
    (fun src ->
      let here = List.filter (fun d -> d.Types.src = src) tagged in
      let distinct_dsts =
        List.sort_uniq compare (List.map (fun d -> d.Types.dst) here)
      in
      (* Footnote 3: at least two operand-dependent decisions are needed for
         >1 receiver observation as a function of operand values. *)
      if List.length distinct_dsts < 2 then None
      else
        let inputs =
          List.sort_uniq compare (List.map (fun d -> d.Types.input) here)
        in
        let destinations =
          match List.assoc_opt src decisions with
          | Some ds -> ds
          | None -> distinct_dsts
        in
        Some
          {
            Types.transponder = transponder.Isa.op;
            source = src;
            inputs;
            destinations;
          })
    sources

(* The static leakage grid, recomputed from scratch (fresh design, fresh
   analysis) so it is independent of the instance Flow pruned against: per
   operand, the PL labels whose member µFSMs the operand's taint may reach. *)
let static_leakage_grid ~precise (design : unit -> Meta.t) =
  let m = design () in
  let groups = Mupath.Harness.pl_groups m in
  let blocked = m.Meta.arf @ m.Meta.amem in
  List.filter_map
    (fun op ->
      match List.assoc_opt (Types.operand_name op) m.Meta.operand_regs with
      | None -> None
      | Some r ->
        let masks =
          Hdl.Analysis.taint_reach ~precise ~blocked ~sources:[ r ] m.Meta.nl
        in
        let live =
          List.filter_map
            (fun (label, members) ->
              if
                List.exists
                  (fun ((u : Meta.ufsm), _) ->
                    List.exists
                      (Hdl.Analysis.taint_reaches masks)
                      (u.Meta.pcr :: u.Meta.vars))
                  members
              then Some label
              else None)
            groups
        in
        Some (op, live))
    [ Types.Rs1; Types.Rs2 ]

(* Standing soundness tripwire: every checker-tagged decision must lie
   inside the static grid.  Skipped in [Prune_off], whose trailing batch
   deliberately admits checker verdicts that contradict the abstraction. *)
let assert_inside_grid ~grid (tagged : Types.tagged_decision list) =
  List.iter
    (fun (d : Types.tagged_decision) ->
      let live =
        match List.assoc_opt d.Types.input.Types.unsafe_operand grid with
        | Some l -> l
        | None -> []
      in
      if not (List.exists (fun lbl -> List.mem lbl live) d.Types.dst) then
        failwith
          (Printf.sprintf
             "Engine: static leakage grid violated: tagged decision %s -> \
              {%s} (%s.%s) lies outside the static taint cone {%s}"
             d.Types.src
             (String.concat ", " d.Types.dst)
             (Isa.mnemonic d.Types.input.Types.transmitter)
             (Types.operand_name d.Types.input.Types.unsafe_operand)
             (String.concat ", "
                (List.concat_map snd grid |> List.sort_uniq compare))))
    tagged

(* {!Mupath.Synth} cannot depend on this library's {!Types}, so its absint
   mode is a structural variant; the mapping is one-to-one. *)
let synth_absint_mode = function
  | Types.Prune_on -> `On
  | Types.Prune_off -> `Off
  | Types.Prune_audit -> `Audit

let analyze_transponder ?cache ?config ?synth_config ?semantic_cache
    ?static_prune ?dump_cnf
    ?(precise = true) ?(static_flow_prune = Types.Prune_on)
    ?(absint = Types.Prune_on)
    ?(stimulus : stimulus_builder option) ?(exclude_sources = [])
    ~(design : unit -> Meta.t) ~(instr : Isa.t)
    ~(transmitters : Isa.opcode list) ~(kinds : Types.transmitter_kind list)
    ~(revisit_count_labels : string list) ~iuv_pc () =
  let t0 = Unix.gettimeofday () in
  (* Stage 1: µPATH synthesis on a fresh design instance. *)
  let meta = design () in
  let stim =
    match stimulus with
    | Some f -> Some (f ~pins:[ (iuv_pc, instr) ] ~rotate:[] meta)
    | None -> None
  in
  let synth =
    Mupath.Synth.run ?cache ?config:synth_config ?stimulus:stim
      ?semantic_cache ?static_prune
      ~absint:(synth_absint_mode absint) ?dump_cnf ~revisit_count_labels ~meta
      ~iuv:instr ~iuv_pc ()
  in
  (* Candidate transponders have µPATH variability (§V-C): more than one
     µPATH, or any decision source with several destinations. *)
  let variable =
    List.length synth.Mupath.Synth.paths > 1
    || List.exists (fun (_, ds) -> List.length ds > 1) synth.Mupath.Synth.decisions
  in
  let multi_decisions =
    List.filter
      (fun (src, ds) ->
        List.length ds > 1 && not (List.mem src exclude_sources))
      synth.Mupath.Synth.decisions
  in
  if not variable || multi_decisions = [] then
    {
      instr;
      synth;
      tagged = [];
      signatures = [];
      flow_props = 0;
      flow_undetermined = 0;
      flow_pruned_static = 0;
      flow_pruned_absint = 0;
      static_flow_live = [];
      flow_time = Unix.gettimeofday () -. t0;
    }
  else begin
    (* Stage 2: symbolic IFT per (kind, operand). *)
    let pairs =
      List.concat_map
        (fun kind -> List.map (fun op -> (kind, op)) [ Types.Rs1; Types.Rs2 ])
        kinds
    in
    (* Transmitter candidates rotated through the transmitter slot by the
       simulation pre-pass: two register-field shapes per opcode. *)
    let tx_candidates =
      List.concat_map
        (fun o ->
          [ Isa.make ~rd:1 ~rs1:2 ~rs2:3 o; Isa.make ~rd:3 ~rs1:1 ~rs2:2 ~imm:4 o ])
        transmitters
    in
    let all =
      List.map
        (fun (kind, operand) ->
          (* Flow builds a fresh design; the stimulus factory is rebound to
             that fresh metadata lazily through a reference cell. *)
          let pc_t = Flow.transmitter_pc ~iuv_pc kind in
          let cell = ref None in
          let design' () =
            let m = design () in
            cell := Some m;
            m
          in
          let stim' =
            match stimulus with
            | None -> None
            | Some mk ->
              let bound = ref None in
              Some
                (fun sim c ->
                  let f =
                    match !bound with
                    | Some f -> f
                    | None ->
                      let f =
                        match !cell with
                        | Some m ->
                          mk
                            ~pins:[ (iuv_pc, instr) ]
                            ~rotate:[ (pc_t, tx_candidates) ]
                            m
                        | None -> fun _ _ -> ()
                      in
                      bound := Some f;
                      f
                  in
                  f sim c)
          in
          Flow.analyze ?cache ?config ?stimulus:stim' ?semantic_cache ~precise
            ~static_flow_prune ~absint ~design:design' ~transponder:instr
            ~decisions:multi_decisions ~transmitters ~kind ~operand ~iuv_pc ())
        pairs
    in
    let tagged = List.concat_map (fun a -> a.Flow.tagged) all in
    let flow_props =
      List.fold_left (fun acc a -> acc + a.Flow.stats.Flow.q_props) 0 all
    in
    let flow_undet =
      List.fold_left (fun acc a -> acc + a.Flow.stats.Flow.q_undetermined) 0 all
    in
    let flow_pruned =
      List.fold_left (fun acc a -> acc + a.Flow.stats.Flow.q_pruned_static) 0 all
    in
    let flow_pruned_ai =
      List.fold_left (fun acc a -> acc + a.Flow.stats.Flow.q_pruned_absint) 0 all
    in
    let grid = static_leakage_grid ~precise design in
    if static_flow_prune <> Types.Prune_off then assert_inside_grid ~grid tagged;
    {
      instr;
      synth;
      tagged;
      signatures = signatures_of_tagged instr synth.Mupath.Synth.decisions tagged;
      flow_props;
      flow_undetermined = flow_undet;
      flow_pruned_static = flow_pruned;
      flow_pruned_absint = flow_pruned_ai;
      static_flow_live = grid;
      flow_time = Unix.gettimeofday () -. t0;
    }
  end

let run ?cache ?config ?synth_config ?semantic_cache ?static_prune ?dump_cnf
    ?(precise = true)
    ?(static_flow_prune = Types.Prune_on) ?(absint = Types.Prune_on)
    ?(stimulus : stimulus_builder option)
    ?(exclude_sources = []) ?(jobs = 1) ?pool ~(design : unit -> Meta.t)
    ~(instructions : Isa.t list) ~(transmitters : Isa.opcode list)
    ~(kinds : Types.transmitter_kind list) ~(revisit_count_labels : string list)
    ~iuv_pc () =
  let t0 = Unix.gettimeofday () in
  let design_name = (design ()).Meta.design_name in
  (* Per-task configs carry a seed derived from (base seed, task index) —
     a pure function of the input position, so any jobs count (including 1)
     produces bit-identical reports.  Each task builds its own design and
     checker; nothing is shared across domains. *)
  let reseed index c =
    let c = Option.value c ~default:Mc.Checker.default_config in
    Some { c with Mc.Checker.seed = Pool.derive_seed ~base:c.Mc.Checker.seed ~index }
  in
  (* Each task writes verdicts into its own staged view of the shared
     store, created up front in the calling domain; the join merges them
     in task order (the per-domain write staging of the pool design). *)
  let task_caches =
    List.map (fun _ -> Option.map Vcache.stage cache) instructions
  in
  let cache_of index = List.nth task_caches index in
  let n_instrs = List.length instructions in
  let analyze index instr =
    let config = reseed index config in
    let synth_config = reseed index synth_config in
    (* With several instructions, suffix the dump path per task so the
       files don't clobber each other. *)
    let dump_cnf =
      match dump_cnf with
      | Some path when n_instrs > 1 -> Some (path ^ "." ^ string_of_int index)
      | d -> d
    in
    let go () =
      analyze_transponder ?cache:(cache_of index) ?config ?synth_config
        ?semantic_cache ?static_prune ?dump_cnf ~precise ~static_flow_prune
        ~absint ?stimulus
        ~exclude_sources ~design ~instr ~transmitters ~kinds
        ~revisit_count_labels ~iuv_pc ()
    in
    if Obs.enabled () then
      (* Ambient task/seed attribution: every span recorded inside this
         task (checker, cache, synth stages) carries them. *)
      let seed =
        match config with Some c -> c.Mc.Checker.seed | None -> 0
      in
      Obs.with_ctx
        [ ("task", string_of_int index); ("seed", string_of_int seed) ]
        (fun () ->
          Obs.with_span "engine.task" ~args:[ ("instr", Isa.to_string instr) ] go)
    else go ()
  in
  let jobs = match pool with Some p -> Pool.jobs p | None -> max 1 jobs in
  let dispatch () =
    match pool with
    | Some p -> Pool.mapi p ~f:analyze instructions
    | None ->
      if jobs = 1 then List.mapi analyze instructions
      else Pool.with_pool ~jobs (fun p -> Pool.mapi p ~f:analyze instructions)
  in
  let transponders =
    if Obs.enabled () then
      Obs.with_span "engine.run"
        ~args:
          [
            ("design", design_name);
            ("instructions", string_of_int (List.length instructions));
            ("jobs", string_of_int jobs);
          ]
        dispatch
    else dispatch ()
  in
  List.iter (fun c -> Option.iter Vcache.merge c) task_caches;
  let checker_totals =
    List.fold_left
      (fun acc t -> Mc.Checker.Stats.merge acc t.synth.Mupath.Synth.checker_stats)
      (Mc.Checker.Stats.create ()) transponders
  in
  let total_flow_props =
    List.fold_left (fun acc t -> acc + t.flow_props) 0 transponders
  in
  let total_flow_pruned_static =
    List.fold_left (fun acc t -> acc + t.flow_pruned_static) 0 transponders
  in
  let total_flow_pruned_absint =
    List.fold_left (fun acc t -> acc + t.flow_pruned_absint) 0 transponders
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let metrics =
    if Obs.enabled () then begin
      Obs.Metrics.gauge "engine.elapsed_s" elapsed;
      Obs.Metrics.gauge "engine.jobs" (float_of_int jobs);
      Obs.Metrics.snapshot ()
    end
    else []
  in
  {
    design_name;
    transponders;
    checker_totals;
    total_mupath_props = checker_totals.Mc.Checker.Stats.n_props;
    total_flow_props;
    total_flow_pruned_static;
    total_flow_pruned_absint;
    precise;
    jobs;
    elapsed;
    metrics;
  }

(* Semantic report equality: every synthesized fact, ignoring wall-clock
   fields and solver-time accounting.  Reports produced at different [jobs]
   values must compare equal — the determinism guarantee the pool's seed
   derivation exists to uphold. *)
let equal_stats (a : Mc.Checker.Stats.t) (b : Mc.Checker.Stats.t) =
  a.Mc.Checker.Stats.n_props = b.Mc.Checker.Stats.n_props
  && a.Mc.Checker.Stats.n_reachable = b.Mc.Checker.Stats.n_reachable
  && a.Mc.Checker.Stats.n_unreachable = b.Mc.Checker.Stats.n_unreachable
  && a.Mc.Checker.Stats.n_undetermined = b.Mc.Checker.Stats.n_undetermined
  && a.Mc.Checker.Stats.n_sim_discharged = b.Mc.Checker.Stats.n_sim_discharged
  && a.Mc.Checker.Stats.n_inductive = b.Mc.Checker.Stats.n_inductive

let equal_transponder (a : transponder_report) (b : transponder_report) =
  let sa = a.synth and sb = b.synth in
  a.instr = b.instr
  && sa.Mupath.Synth.duv_pls = sb.Mupath.Synth.duv_pls
  && sa.Mupath.Synth.pruned_duv_states = sb.Mupath.Synth.pruned_duv_states
  && sa.Mupath.Synth.iuv_pls = sb.Mupath.Synth.iuv_pls
  && sa.Mupath.Synth.implications = sb.Mupath.Synth.implications
  && sa.Mupath.Synth.exclusives = sb.Mupath.Synth.exclusives
  && sa.Mupath.Synth.naive_sets = sb.Mupath.Synth.naive_sets
  && sa.Mupath.Synth.candidate_sets = sb.Mupath.Synth.candidate_sets
  && sa.Mupath.Synth.paths = sb.Mupath.Synth.paths
  && sa.Mupath.Synth.decisions = sb.Mupath.Synth.decisions
  && sa.Mupath.Synth.revisit_counts = sb.Mupath.Synth.revisit_counts
  && sa.Mupath.Synth.stage_stats = sb.Mupath.Synth.stage_stats
  && equal_stats sa.Mupath.Synth.checker_stats sb.Mupath.Synth.checker_stats
  && a.tagged = b.tagged
  && a.signatures = b.signatures
  && a.flow_props = b.flow_props
  && a.flow_undetermined = b.flow_undetermined
  && a.flow_pruned_static = b.flow_pruned_static
  && a.flow_pruned_absint = b.flow_pruned_absint
  && a.static_flow_live = b.static_flow_live

let equal_report a b =
  a.design_name = b.design_name
  && a.precise = b.precise
  && a.total_mupath_props = b.total_mupath_props
  && a.total_flow_props = b.total_flow_props
  && List.length a.transponders = List.length b.transponders
  && List.for_all2 equal_transponder a.transponders b.transponders

(* A digest over the semantic facts of a report — everything a verification
   consumer acts on — leaving out every wall-clock, cache hit/miss, and
   property-count field: two runs that synthesized the same thing digest
   identically whether their verdicts came from the checker engines, from a
   warm cache, or (for statically-dead covers) from the reachability
   abstraction.  Stage/checker counters are deliberately excluded — they
   differ between [static_prune] modes even though the synthesized facts do
   not.  Marshaled without sharing so physically different but structurally
   equal reports serialize to the same bytes. *)
let report_digest r =
  let transponder (t : transponder_report) =
    let s = t.synth in
    ( t.instr,
      s.Mupath.Synth.duv_pls,
      s.Mupath.Synth.pruned_duv_states,
      s.Mupath.Synth.iuv_pls,
      s.Mupath.Synth.implications,
      s.Mupath.Synth.exclusives,
      (s.Mupath.Synth.naive_sets, s.Mupath.Synth.candidate_sets),
      s.Mupath.Synth.paths,
      s.Mupath.Synth.decisions,
      s.Mupath.Synth.revisit_counts,
      (t.tagged, t.signatures, t.flow_props, t.flow_undetermined) )
  in
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( r.design_name,
            r.precise,
            r.total_flow_props,
            List.map transponder r.transponders )
          [ Marshal.No_sharing ]))

let all_signatures r = List.concat_map (fun t -> t.signatures) r.transponders

let all_transmitter_opcodes r =
  List.sort_uniq compare
    (List.concat_map
       (fun t ->
         List.map (fun (i : Types.explicit_input) -> i.Types.transmitter)
           (List.concat_map (fun (s : Types.signature) -> s.Types.inputs) t.signatures))
       r.transponders)

let pp_report fmt r =
  Format.fprintf fmt "@[<v>== SynthLC report for %s ==@," r.design_name;
  List.iter
    (fun t ->
      Format.fprintf fmt "@,-- transponder %s: %d uPATHs, %d signatures (%.1fs)@,"
        (Isa.to_string t.instr)
        (List.length t.synth.Mupath.Synth.paths)
        (List.length t.signatures) t.flow_time;
      List.iter (fun s -> Format.fprintf fmt "%a@," Types.pp_signature s) t.signatures)
    r.transponders;
  Format.fprintf fmt "@,total properties: %d (uPATH) + %d (IFT, %d pruned \
                      statically, %d known-bits), %.1fs (jobs=%d)@,"
    r.total_mupath_props r.total_flow_props r.total_flow_pruned_static
    r.total_flow_pruned_absint r.elapsed r.jobs;
  Format.fprintf fmt "checker totals: %a@]" Mc.Checker.Stats.pp r.checker_totals
