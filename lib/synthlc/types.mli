(** Shared vocabulary for leakage-contract synthesis (§IV). *)

(** Transmitter typing per Fig. 7: intrinsic (the transponder itself),
    dynamic (a concurrently in-flight older/younger instruction), or static
    (materialized and dematerialized before the transponder reached the
    decision source). *)
type transmitter_kind = Intrinsic | Dynamic_older | Dynamic_younger | Static

val kind_name : transmitter_kind -> string

val kind_short : transmitter_kind -> string
(** The paper's superscript notation: N, D (older/younger), S. *)

type operand = Rs1 | Rs2

val operand_name : operand -> string

type prune_mode = Prune_on | Prune_off | Prune_audit
(** Operating mode of the static taint-flow pre-pass over IFT covers
    ({!Flow.analyze}).  All three modes keep statically-dead covers out of
    the mid-stream checker sequence (dispatching them inline would perturb
    the checker's RNG stream and learned-clause state and could flip later
    verdicts), so {!Engine.report_digest} is bit-identical across modes
    whenever the analysis is sound.  [Prune_on] discharges them without
    checker calls; [Prune_off] dispatches them as a trailing batch and
    trusts the checker (a reachable one is tagged honestly, diverging the
    digest — by design); [Prune_audit] dispatches the same batch but fails
    hard on any reachable verdict. *)

val prune_mode_name : prune_mode -> string

type explicit_input = {
  transmitter : Isa.opcode;
  unsafe_operand : operand;
  kind : transmitter_kind;
}
(** A typed explicit input to a leakage function (§IV-C). *)

type tagged_decision = {
  src : string;  (** Decision-source PL label. *)
  dst : string list;  (** Destination PL set (sorted labels). *)
  input : explicit_input;
}
(** A decision shown (by a reachable taint witness) to depend on the
    transmitter's operand (§V-C1). *)

type signature = {
  transponder : Isa.opcode;
  source : string;
  inputs : explicit_input list;
  destinations : string list list;
}
(** A leakage signature (§IV-D): transponder and decision source (the
    function name), typed transmitters with unsafe operands (explicit
    inputs), decision destinations (return values). *)

val signature_name : signature -> string
(** E.g. ["LD_issue"]. *)

val pp_explicit_input : Format.formatter -> explicit_input -> unit
val pp_signature : Format.formatter -> signature -> unit
