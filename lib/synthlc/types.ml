(* Shared vocabulary for leakage-contract synthesis (§IV). *)

(* Transmitter typing per Fig. 7: intrinsic (the transponder itself),
   dynamic (a concurrently in-flight older/younger instruction), or static
   (materialized and dematerialized before the transponder reached the
   decision source). *)
type transmitter_kind = Intrinsic | Dynamic_older | Dynamic_younger | Static

let kind_name = function
  | Intrinsic -> "intrinsic"
  | Dynamic_older -> "dynamic-older"
  | Dynamic_younger -> "dynamic-younger"
  | Static -> "static"

let kind_short = function
  | Intrinsic -> "N"
  | Dynamic_older -> "D<"
  | Dynamic_younger -> "D>"
  | Static -> "S"

type operand = Rs1 | Rs2

let operand_name = function Rs1 -> "rs1" | Rs2 -> "rs2"

(* Operating mode of the static taint-flow pre-pass over IFT covers.  All
   three modes keep statically-dead covers out of the mid-stream checker
   sequence (the checker's shared RNG stream and learned-clause state mean
   dispatching them inline could flip later verdicts), so the report digest
   is bit-identical across modes whenever the static analysis is sound:
   - [Prune_on]    discharges them as unreachable without checker calls;
   - [Prune_off]   dispatches them as a trailing batch and trusts the
                   checker's verdicts (a reachable one is tagged honestly —
                   and makes the digest diverge, by design);
   - [Prune_audit] dispatches the same trailing batch but fails hard on any
                   reachable verdict (the unsoundness tripwire). *)
type prune_mode = Prune_on | Prune_off | Prune_audit

let prune_mode_name = function
  | Prune_on -> "on"
  | Prune_off -> "off"
  | Prune_audit -> "audit"

(* A typed explicit input to a leakage function: transmitter opcode, its
   unsafe operand, and its runtime type. *)
type explicit_input = {
  transmitter : Isa.opcode;
  unsafe_operand : operand;
  kind : transmitter_kind;
}

(* A tagged decision: the transponder's decision (src, dst) was shown to
   depend on the transmitter's operand (a reachable taint witness). *)
type tagged_decision = {
  src : string;
  dst : string list; (* sorted PL labels *)
  input : explicit_input;
}

(* A leakage signature (§IV-D): everything a leakage function exposes to a
   µPATH-observing receiver — transponder and decision source (the function
   name), typed transmitters with their unsafe operands (explicit inputs),
   and the decision destinations (return values). *)
type signature = {
  transponder : Isa.opcode;
  source : string; (* decision source PL *)
  inputs : explicit_input list;
  destinations : string list list; (* the observed decision destination sets *)
}

let signature_name s =
  Printf.sprintf "%s_%s"
    (String.uppercase_ascii (Isa.mnemonic s.transponder))
    s.source

let pp_explicit_input fmt e =
  Format.fprintf fmt "%s^%s.%s"
    (String.uppercase_ascii (Isa.mnemonic e.transmitter))
    (kind_short e.kind) (operand_name e.unsafe_operand)

let pp_signature fmt s =
  Format.fprintf fmt "@[<v2>dst %s(%s):@," (signature_name s)
    (String.concat ", "
       (List.map (Format.asprintf "%a" pp_explicit_input) s.inputs));
  List.iter
    (fun d -> Format.fprintf fmt "-> {%s}@," (String.concat ", " d))
    s.destinations;
  Format.fprintf fmt "@]"
