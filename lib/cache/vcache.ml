(* Persistent, content-addressed verdict store: a mutex-protected memory
   table with an optional one-file-per-entry disk layer (versioned header,
   atomic tmp+rename writes, corruption-tolerant reads), plus staged views
   for lock-free writes from pool worker domains (merged at the join). *)

let format_version = 1

let entry_suffix = ".vc"

type root = {
  r_dir : string option;
  r_tbl : (string, string) Hashtbl.t;
  r_lock : Mutex.t;
  mutable r_hits : int;
  mutable r_misses : int;
  mutable r_stores : int;
}

type t =
  | Root of root
  | Staged of staged

and staged = {
  s_parent : t;
  s_tbl : (string, string) Hashtbl.t;
  (* Keys in reverse insertion order, so [merge] can publish in order. *)
  mutable s_order : string list;
}

let rec root_of = function Root r -> r | Staged s -> root_of s.s_parent

let locked r f =
  Mutex.lock r.r_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.r_lock) f

(* --- disk layer --------------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end;
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"))

(* Entry files are named after their key; keys with characters unfit for a
   filename fall back to a hash-derived name (the real key is stored in,
   and validated against, the file header). *)
let filename_of_key key =
  let safe =
    String.for_all
      (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true | _ -> false)
      key
    && key <> "" && key.[0] <> '.'
  in
  (if safe then key else "h" ^ Digest.to_hex (Digest.string key)) ^ entry_suffix

let path_of dir key = Filename.concat dir (filename_of_key key)

(* Header: "vcache <version> <blob-length>\n<key>\n" followed by exactly
   <blob-length> bytes.  Anything that does not parse — wrong magic or
   version, truncated blob, key mismatch — reads as a miss, and the file
   is deleted (self-heal): a poisoned entry would otherwise be re-parsed
   as garbage on every run, and deleting lets the next store rewrite it
   cleanly. *)
let read_entry ~dir ~key =
  let path = path_of dir key in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception _ -> None
  | contents -> (
    let parsed =
      try
        let nl1 = String.index contents '\n' in
        let header = String.sub contents 0 nl1 in
        let version, blob_len =
          Scanf.sscanf header "vcache %d %d" (fun v l -> (v, l))
        in
        if version <> format_version then None
        else
          let nl2 = String.index_from contents (nl1 + 1) '\n' in
          let stored_key = String.sub contents (nl1 + 1) (nl2 - nl1 - 1) in
          if stored_key <> key then None
          else if String.length contents - nl2 - 1 <> blob_len then None
          else Some (String.sub contents (nl2 + 1) blob_len)
      with _ -> None
    in
    match parsed with
    | Some blob ->
      if Obs.enabled () then Obs.Metrics.incr "vcache.disk_reads";
      Some blob
    | None ->
      (try Sys.remove path with Sys_error _ -> ());
      if Obs.enabled () then begin
        Obs.Metrics.incr "vcache.corrupt_healed";
        Obs.instant "vcache.corrupt" ~args:[ ("file", filename_of_key key) ]
      end;
      None)

let tmp_counter = Atomic.make 0

let tmp_prefix = ".tmp."

let write_entry ~dir ~key blob =
  let tmp =
    Filename.concat dir
      (Printf.sprintf "%s%d.%d" tmp_prefix (Unix.getpid ())
         (Atomic.fetch_and_add tmp_counter 1))
  in
  let ok =
    try
      Out_channel.with_open_bin tmp (fun oc ->
          Printf.fprintf oc "vcache %d %d\n%s\n" format_version
            (String.length blob) key;
          Out_channel.output_string oc blob);
      true
    with Sys_error _ -> false
  in
  if ok then begin
    (try Sys.rename tmp (path_of dir key)
     with Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ()));
    if Obs.enabled () then Obs.Metrics.incr "vcache.disk_writes"
  end

(* Interrupted writers leave tmp files behind; they are only ever renamed
   over, never read, so any that survive to the next [create] are garbage.
   Sweeping here cannot race this process's own writes (none have happened
   yet) — but a concurrently *live* process may have a tmp file mid-write,
   and deleting it under that writer loses its entry.  Only files older
   than [tmp_max_age] (no write takes a minute) are treated as orphans. *)
let tmp_max_age = 60.0

let sweep_tmp dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | files ->
    let now = Unix.gettimeofday () in
    Array.fold_left
      (fun n f ->
        if String.starts_with ~prefix:tmp_prefix f then begin
          let path = Filename.concat dir f in
          match Unix.stat path with
          | exception Unix.Unix_error _ -> n
          | st when now -. st.Unix.st_mtime <= tmp_max_age -> n
          | _ -> (
            match Sys.remove path with
            | () -> n + 1
            | exception Sys_error _ -> n)
        end
        else n)
      0 files

(* --- store -------------------------------------------------------------- *)

let create ?dir () =
  Option.iter mkdir_p dir;
  Option.iter
    (fun d ->
      let n = sweep_tmp d in
      if n > 0 && Obs.enabled () then
        Obs.Metrics.incr "vcache.tmp_swept" ~by:n)
    dir;
  Root
    {
      r_dir = dir;
      r_tbl = Hashtbl.create 256;
      r_lock = Mutex.create ();
      r_hits = 0;
      r_misses = 0;
      r_stores = 0;
    }

let dir t = (root_of t).r_dir

let root_find r key =
  locked r (fun () ->
      match Hashtbl.find_opt r.r_tbl key with
      | Some v ->
        r.r_hits <- r.r_hits + 1;
        Some v
      | None -> (
        match Option.bind r.r_dir (fun dir -> read_entry ~dir ~key) with
        | Some v ->
          Hashtbl.replace r.r_tbl key v;
          r.r_hits <- r.r_hits + 1;
          Some v
        | None ->
          r.r_misses <- r.r_misses + 1;
          None))

let rec find t key =
  match t with
  | Root r -> root_find r key
  | Staged s -> (
    match Hashtbl.find_opt s.s_tbl key with
    | Some v ->
      let r = root_of t in
      locked r (fun () -> r.r_hits <- r.r_hits + 1);
      Some v
    | None -> find s.s_parent key)

let root_add r key v =
  locked r (fun () ->
      if not (Hashtbl.mem r.r_tbl key) then begin
        (* First write wins; a disk entry from a previous run also wins. *)
        let on_disk =
          match Option.bind r.r_dir (fun dir -> read_entry ~dir ~key) with
          | Some existing ->
            Hashtbl.replace r.r_tbl key existing;
            true
          | None -> false
        in
        if not on_disk then begin
          Hashtbl.replace r.r_tbl key v;
          r.r_stores <- r.r_stores + 1;
          Option.iter (fun dir -> write_entry ~dir ~key v) r.r_dir
        end
      end)

let add t key v =
  match t with
  | Root r -> root_add r key v
  | Staged s ->
    if not (Hashtbl.mem s.s_tbl key) then begin
      Hashtbl.replace s.s_tbl key v;
      s.s_order <- key :: s.s_order
    end

let stage t = Staged { s_parent = t; s_tbl = Hashtbl.create 64; s_order = [] }

let merge = function
  | Root _ -> ()
  | Staged s ->
    List.iter
      (fun key ->
        match Hashtbl.find_opt s.s_tbl key with
        | Some v -> add s.s_parent key v
        | None -> ())
      (List.rev s.s_order);
    Hashtbl.reset s.s_tbl;
    s.s_order <- []

let size = function
  | Root r -> locked r (fun () -> Hashtbl.length r.r_tbl)
  | Staged s -> Hashtbl.length s.s_tbl

let counters t =
  let r = root_of t in
  locked r (fun () -> (r.r_hits, r.r_misses, r.r_stores))

(* --- directory management ---------------------------------------------- *)

let disk_entries ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f entry_suffix)
    |> List.sort String.compare
    |> List.filter_map (fun f ->
           let path = Filename.concat dir f in
           match (Unix.stat path).Unix.st_size with
           | size -> Some (f, size)
           | exception Unix.Unix_error _ -> None)

let clear_dir ~dir =
  List.fold_left
    (fun n (f, _) ->
      match Sys.remove (Filename.concat dir f) with
      | () -> n + 1
      | exception Sys_error _ -> n)
    0 (disk_entries ~dir)

let clear t =
  match t with
  | Root r ->
    locked r (fun () ->
        Hashtbl.reset r.r_tbl;
        r.r_hits <- 0;
        r.r_misses <- 0;
        r.r_stores <- 0;
        Option.iter (fun dir -> ignore (clear_dir ~dir)) r.r_dir)
  | Staged s ->
    Hashtbl.reset s.s_tbl;
    s.s_order <- []
