(** Persistent, content-addressed verdict store.

    A store maps content digests (strings, typically hex MD5 of the
    (netlist, property, config) triple — see {!Mc.Checker}) to opaque
    serialized blobs.  It has two layers:

    - an {b in-memory layer} (a hash table behind a mutex, safe to share
      across {!Pool} worker domains);
    - an optional {b on-disk layer} rooted at a directory: one file per
      entry, with a versioned header, atomic tmp+rename writes, and
      corruption-tolerant reads (a malformed, truncated, or
      version-mismatched file degrades to a miss — never an error — and
      is deleted on sight, so a poisoned directory self-heals instead of
      re-parsing garbage every run).

    Entries are immutable: the first write of a key wins and later writes
    of the same key are ignored.  Keys are content digests, so within one
    toolchain version a key determines its value; "first write wins" makes
    concurrent stores deterministic without comparing payloads.

    {b Staging.}  {!stage} derives a lightweight view whose writes are
    buffered locally (no lock contention) and whose reads fall through to
    the parent.  {!merge} publishes the buffered writes into the parent in
    insertion order and empties the buffer.  Parallel workers each take a
    staged view and the (sequential) join merges them in task order —
    matching the deterministic-join design of {!Pool}-based fan-out. *)

type t

val format_version : int
(** On-disk format version.  Bumped on layout changes; files written by
    other versions read as misses. *)

val create : ?dir:string -> unit -> t
(** [create ?dir ()] makes a root store.  With [dir], entries persist as
    files under that directory (created if missing), and stale temporary
    files left by interrupted writers are swept on creation.  Without, the
    store is memory-only.  Raises [Sys_error] if [dir] exists but is not a
    directory or cannot be created. *)

val dir : t -> string option
(** The backing directory of the underlying root store, if any. *)

val find : t -> string -> string option
(** Look a key up: memory first, then (root stores) disk — a disk hit is
    promoted into memory.  Any disk-layer problem reads as [None]; an
    entry file that exists but does not parse is also deleted. *)

val add : t -> string -> string -> unit
(** Insert a binding.  No-op if the key is already present in this layer.
    On a root store with a directory, the entry is also written to disk
    atomically (tmp file + rename). *)

val stage : t -> t
(** A staged view of [t]: reads fall through, writes are buffered locally.
    A staged view is meant to be used by one domain at a time. *)

val merge : t -> unit
(** Publish a staged view's buffered writes into its parent, in insertion
    order, and clear the buffer.  No-op on a root store. *)

val size : t -> int
(** Entries in this layer's memory table (staged: buffered writes only;
    root: loaded entries — disk entries not yet read are not counted). *)

val counters : t -> int * int * int
(** [(hits, misses, stores)] accumulated at the underlying root store. *)

val clear : t -> unit
(** Root: drop the memory layer, delete every on-disk entry, and reset
    counters.  Staged: drop the buffered writes. *)

(** {1 Directory-level management}

    Used by the [cache stats] / [cache clear] CLI subcommands, which
    operate on a directory without instantiating a store. *)

val disk_entries : dir:string -> (string * int) list
(** [(filename, bytes)] of every entry file under [dir] (empty if the
    directory does not exist). *)

val clear_dir : dir:string -> int
(** Delete every entry file under [dir]; returns how many were removed.
    Missing directory counts as 0. *)
