(** RV-lite: the reproduction's instruction set.

    A downscaled RISC-V-flavoured ISA with exactly 32 opcodes in a dense
    5-bit opcode space, so {e every} 19-bit instruction word is a valid
    encoding (this keeps the model checker's fetch-input constraint to the
    IUV slot only, mirroring how the paper drives issued instructions at the
    IFR).  It covers every instruction-behaviour class the paper's CVA6
    evaluation exercises: single-cycle ALU ops, shifts, the multiplier, the
    serial divider family (DIV/DIVU/REM/REMU), loads and stores of two
    widths, all six conditional branches, and JAL/JALR.

    Encoding (19 bits): [op\[18:14\] rd\[13:12\] rs1\[11:10\] rs2\[9:8\]
    imm\[7:0\]].  XLEN is 8; there are four architectural registers and
    register 0 is hardwired to zero.  PCs count instructions; control-flow
    targets are computed in byte space ([pc*4 + imm] for direct transfers,
    [rs1 + imm] for JALR) and must be 4-byte aligned, else the transfer
    raises a misaligned-target exception — the behaviour whose CVA6
    implementation bugs §VII-B2 uncovers. *)

type opcode =
  | NOP | ADD | SUB | AND | OR | XOR | SLT | SLTU
  | ADDI | ANDI | ORI | XORI
  | SLL | SRL | SRA
  | MUL
  | DIV | DIVU | REM | REMU
  | LW | LB
  | SW | SB
  | BEQ | BNE | BLT | BGE | BLTU | BGEU
  | JAL | JALR

val all_opcodes : opcode list
val opcode_to_int : opcode -> int
val opcode_of_int : int -> opcode
(** Raises [Invalid_argument] outside [0, 31]. *)

val mnemonic : opcode -> string
val opcode_of_mnemonic : string -> opcode option

(** Behaviour classes, used to group Fig. 8 rows/columns. *)
type cls = Alu | Shift | Mulc | Divc | Load | Store | Branch | Jump | Nopc

val class_of : opcode -> cls
val class_name : cls -> string

val reads_rs1 : opcode -> bool
val reads_rs2 : opcode -> bool
val writes_rd : opcode -> bool
val uses_imm : opcode -> bool

(** {1 Instructions} *)

type t = { op : opcode; rd : int; rs1 : int; rs2 : int; imm : int }
(** Register fields in [0, 3]; [imm] is an 8-bit value in [0, 255]. *)

val make : ?rd:int -> ?rs1:int -> ?rs2:int -> ?imm:int -> opcode -> t
val nop : t

(** {1 Encoding} *)

val width : int
(** 19 — the instruction-word width. *)

val xlen : int
(** 8 — the data width. *)

val pc_bits : int
(** 6 — instruction-granular program counter width. *)

val encode : t -> Bitvec.t
val decode : Bitvec.t -> t
(** Total: every 19-bit word decodes. *)

(** Encoding field positions (inclusive bit ranges), for wiring decoders. *)

val op_range : int * int
val rd_range : int * int
val rs1_range : int * int
val rs2_range : int * int
val imm_range : int * int

(** {1 Text} *)

val to_string : t -> string
val parse : string -> (t, string) result
(** Parse one assembly line, e.g. ["add r1, r2, r3"], ["addi r1, r2, 7"],
    ["lw r1, 4(r2)"], ["beq r1, r2, 12"], ["jal r1, 16"]. *)

val assemble : string -> (t list, string) result
(** Parse a whole program; blank lines and [#] comments are skipped. *)

val parse_list : string -> (t list, string) result
(** Parse an instruction list separated by [";"] or [","] (or both), e.g.
    ["add r1, r2, r3; div r1, r2, r3"] or
    ["add r1, r2, r3, div r1, r2, r3"].  The comma doubles as the operand
    separator; a segment starting with a known mnemonic begins a new
    instruction, anything else continues the current one's operands.
    Empty input parses to [[]]. *)

val random : Random.State.t -> t
