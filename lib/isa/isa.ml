type opcode =
  | NOP | ADD | SUB | AND | OR | XOR | SLT | SLTU
  | ADDI | ANDI | ORI | XORI
  | SLL | SRL | SRA
  | MUL
  | DIV | DIVU | REM | REMU
  | LW | LB
  | SW | SB
  | BEQ | BNE | BLT | BGE | BLTU | BGEU
  | JAL | JALR

let all_opcodes =
  [
    NOP; ADD; SUB; AND; OR; XOR; SLT; SLTU; ADDI; ANDI; ORI; XORI; SLL; SRL;
    SRA; MUL; DIV; DIVU; REM; REMU; LW; LB; SW; SB; BEQ; BNE; BLT; BGE; BLTU;
    BGEU; JAL; JALR;
  ]

let opcode_to_int op =
  let rec idx i = function
    | [] -> assert false
    | x :: rest -> if x = op then i else idx (i + 1) rest
  in
  idx 0 all_opcodes

let opcode_of_int i =
  if i < 0 || i > 31 then invalid_arg "Isa.opcode_of_int"
  else List.nth all_opcodes i

let mnemonic = function
  | NOP -> "nop" | ADD -> "add" | SUB -> "sub" | AND -> "and" | OR -> "or"
  | XOR -> "xor" | SLT -> "slt" | SLTU -> "sltu" | ADDI -> "addi"
  | ANDI -> "andi" | ORI -> "ori" | XORI -> "xori" | SLL -> "sll"
  | SRL -> "srl" | SRA -> "sra" | MUL -> "mul" | DIV -> "div" | DIVU -> "divu"
  | REM -> "rem" | REMU -> "remu" | LW -> "lw" | LB -> "lb" | SW -> "sw"
  | SB -> "sb" | BEQ -> "beq" | BNE -> "bne" | BLT -> "blt" | BGE -> "bge"
  | BLTU -> "bltu" | BGEU -> "bgeu" | JAL -> "jal" | JALR -> "jalr"

let opcode_of_mnemonic s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun op -> mnemonic op = s) all_opcodes

type cls = Alu | Shift | Mulc | Divc | Load | Store | Branch | Jump | Nopc

let class_of = function
  | NOP -> Nopc
  | ADD | SUB | AND | OR | XOR | SLT | SLTU | ADDI | ANDI | ORI | XORI -> Alu
  | SLL | SRL | SRA -> Shift
  | MUL -> Mulc
  | DIV | DIVU | REM | REMU -> Divc
  | LW | LB -> Load
  | SW | SB -> Store
  | BEQ | BNE | BLT | BGE | BLTU | BGEU -> Branch
  | JAL | JALR -> Jump

let class_name = function
  | Alu -> "alu" | Shift -> "shift" | Mulc -> "mul" | Divc -> "div"
  | Load -> "load" | Store -> "store" | Branch -> "branch" | Jump -> "jump"
  | Nopc -> "nop"

let reads_rs1 = function
  | NOP | JAL -> false
  | _ -> true

let reads_rs2 = function
  | ADD | SUB | AND | OR | XOR | SLT | SLTU | SLL | SRL | SRA | MUL | DIV
  | DIVU | REM | REMU | SW | SB | BEQ | BNE | BLT | BGE | BLTU | BGEU ->
    true
  | NOP | ADDI | ANDI | ORI | XORI | LW | LB | JAL | JALR -> false

let writes_rd = function
  | NOP | SW | SB | BEQ | BNE | BLT | BGE | BLTU | BGEU -> false
  | _ -> true

let uses_imm = function
  | ADDI | ANDI | ORI | XORI | LW | LB | SW | SB | BEQ | BNE | BLT | BGE
  | BLTU | BGEU | JAL | JALR ->
    true
  | _ -> false

type t = { op : opcode; rd : int; rs1 : int; rs2 : int; imm : int }

let check_field name v hi =
  if v < 0 || v > hi then invalid_arg (Printf.sprintf "Isa.make: %s out of range" name)

let make ?(rd = 0) ?(rs1 = 0) ?(rs2 = 0) ?(imm = 0) op =
  check_field "rd" rd 3;
  check_field "rs1" rs1 3;
  check_field "rs2" rs2 3;
  check_field "imm" imm 255;
  { op; rd; rs1; rs2; imm }

let nop = make NOP

let width = 19
let xlen = 8
let pc_bits = 6

let op_range = (18, 14)
let rd_range = (13, 12)
let rs1_range = (11, 10)
let rs2_range = (9, 8)
let imm_range = (7, 0)

let encode i =
  let field v hi lo = Bitvec.of_int ~width:(hi - lo + 1) v in
  let f (hi, lo) v = field v hi lo in
  Bitvec.concat
    (f op_range (opcode_to_int i.op))
    (Bitvec.concat (f rd_range i.rd)
       (Bitvec.concat (f rs1_range i.rs1)
          (Bitvec.concat (f rs2_range i.rs2) (f imm_range i.imm))))

let decode v =
  if Bitvec.width v <> width then invalid_arg "Isa.decode: bad width";
  let field (hi, lo) = Bitvec.to_int (Bitvec.extract v ~hi ~lo) in
  {
    op = opcode_of_int (field op_range);
    rd = field rd_range;
    rs1 = field rs1_range;
    rs2 = field rs2_range;
    imm = field imm_range;
  }

let to_string i =
  let m = mnemonic i.op in
  match class_of i.op with
  | Nopc -> m
  | Alu | Shift | Mulc | Divc ->
    if uses_imm i.op then Printf.sprintf "%s r%d, r%d, %d" m i.rd i.rs1 i.imm
    else Printf.sprintf "%s r%d, r%d, r%d" m i.rd i.rs1 i.rs2
  | Load -> Printf.sprintf "%s r%d, %d(r%d)" m i.rd i.imm i.rs1
  | Store -> Printf.sprintf "%s r%d, %d(r%d)" m i.rs2 i.imm i.rs1
  | Branch -> Printf.sprintf "%s r%d, r%d, %d" m i.rs1 i.rs2 i.imm
  | Jump ->
    if i.op = JAL then Printf.sprintf "jal r%d, %d" i.rd i.imm
    else Printf.sprintf "jalr r%d, r%d, %d" i.rd i.rs1 i.imm

let parse_reg s =
  let s = String.trim s in
  if String.length s = 2 && s.[0] = 'r' && s.[1] >= '0' && s.[1] <= '3' then
    Ok (Char.code s.[1] - Char.code '0')
  else Error (Printf.sprintf "bad register %S" s)

let parse_imm s =
  match int_of_string_opt (String.trim s) with
  | Some v when v >= -128 && v <= 255 -> Ok (v land 0xFF)
  | _ -> Error (Printf.sprintf "bad immediate %S" s)

let parse_mem_operand s =
  (* "imm(rN)" *)
  match String.index_opt s '(' with
  | None -> Error (Printf.sprintf "bad memory operand %S" s)
  | Some i ->
    let imm_s = String.sub s 0 i in
    (match String.index_opt s ')' with
    | None -> Error (Printf.sprintf "bad memory operand %S" s)
    | Some j ->
      let reg_s = String.sub s (i + 1) (j - i - 1) in
      (match (parse_imm imm_s, parse_reg reg_s) with
      | Ok imm, Ok r -> Ok (imm, r)
      | Error e, _ | _, Error e -> Error e))

let ( let* ) = Result.bind

let parse line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> (
    match opcode_of_mnemonic line with
    | Some NOP -> Ok nop
    | _ -> Error (Printf.sprintf "cannot parse %S" line))
  | Some sp -> (
    let m = String.sub line 0 sp in
    let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
    let args = String.split_on_char ',' rest |> List.map String.trim in
    match opcode_of_mnemonic m with
    | None -> Error (Printf.sprintf "unknown mnemonic %S" m)
    | Some op -> (
      match (class_of op, args) with
      | Nopc, _ -> Ok nop
      | (Alu | Shift | Mulc | Divc), [ a; b; c ] ->
        let* rd = parse_reg a in
        let* rs1 = parse_reg b in
        if uses_imm op then
          let* imm = parse_imm c in
          Ok (make ~rd ~rs1 ~imm op)
        else
          let* rs2 = parse_reg c in
          Ok (make ~rd ~rs1 ~rs2 op)
      | Load, [ a; b ] ->
        let* rd = parse_reg a in
        let* imm, rs1 = parse_mem_operand b in
        Ok (make ~rd ~rs1 ~imm op)
      | Store, [ a; b ] ->
        let* rs2 = parse_reg a in
        let* imm, rs1 = parse_mem_operand b in
        Ok (make ~rs1 ~rs2 ~imm op)
      | Branch, [ a; b; c ] ->
        let* rs1 = parse_reg a in
        let* rs2 = parse_reg b in
        let* imm = parse_imm c in
        Ok (make ~rs1 ~rs2 ~imm op)
      | Jump, args -> (
        match (op, args) with
        | JAL, [ a; b ] ->
          let* rd = parse_reg a in
          let* imm = parse_imm b in
          Ok (make ~rd ~imm JAL)
        | JALR, [ a; b; c ] ->
          let* rd = parse_reg a in
          let* rs1 = parse_reg b in
          let* imm = parse_imm c in
          Ok (make ~rd ~rs1 ~imm JALR)
        | _ -> Error (Printf.sprintf "bad jump %S" line))
      | _, _ -> Error (Printf.sprintf "wrong arity in %S" line)))

let assemble program =
  let lines = String.split_on_char '\n' program in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let stripped =
        match String.index_opt line '#' with
        | Some i -> String.trim (String.sub line 0 i)
        | None -> String.trim line
      in
      if stripped = "" then go acc rest
      else (
        match parse stripped with
        | Ok i -> go (i :: acc) rest
        | Error e -> Error e)
  in
  go [] lines

(* Instruction lists accept both ";" and "," between instructions, even
   though "," also separates operands within one instruction.  The
   ambiguity resolves on mnemonics: a piece whose first word is a known
   mnemonic starts a new instruction, any other piece continues the
   current one's operand list (operands — r0..r3, immediates, imm(rN) —
   can never collide with a mnemonic). *)
let parse_list s =
  let pieces =
    String.split_on_char ';' s
    |> List.concat_map (String.split_on_char ',')
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let first_word p =
    match String.index_opt p ' ' with
    | Some i -> String.sub p 0 i
    | None -> p
  in
  let groups =
    List.fold_left
      (fun acc p ->
        if opcode_of_mnemonic (first_word p) <> None then [ p ] :: acc
        else
          match acc with
          | cur :: rest -> (p :: cur) :: rest
          | [] -> [ [ p ] ])
      [] pieces
  in
  let lines = List.rev_map (fun g -> String.concat ", " (List.rev g)) groups in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      match parse l with Ok i -> go (i :: acc) rest | Error e -> Error e)
  in
  go [] lines

let random st =
  let op = List.nth all_opcodes (Random.State.int st 32) in
  make ~rd:(Random.State.int st 4) ~rs1:(Random.State.int st 4)
    ~rs2:(Random.State.int st 4) ~imm:(Random.State.int st 256) op
