(** RTL2MµPATH synthesis (§V-B): uncover a complete set of formally
    verified µPATHs for one instruction under verification.

    The pipeline mirrors the paper's stages:
    + {b PL reachability for the DUV} — prune state valuations no
      instruction can occupy (§V-B1);
    + {b PL reachability for the IUV} (§V-B2);
    + {b fine-grained pruning} — dominates / exclusive relations between
      IUV PLs (§V-B3);
    + {b PL-set reachability} for each surviving candidate set (§V-B4),
      plus consecutive / non-consecutive revisit classification;
    + {b happens-before edges} from static combinational connectivity,
      confirmed per reachable set (§V-B5);
    + {b revisit cycle counts} for selected PLs (§V-B6 mode (i)).

    A constrained-random simulation pre-pass discharges most reachable
    facts cheaply (witnessed executions also seed the decision extraction
    of §IV-B); unreachability verdicts always come from the model checker.
    Per-stage property counts and outcome statistics are recorded — they
    regenerate the paper's §VII-B3 numbers. *)

type path = {
  pl_set : (string * Uhb.Revisit.t) list;
      (** The reachable PL set with aggregated revisit classification. *)
  hb_edges : (string * string) list;
      (** Confirmed one-cycle happens-before edges between first visits. *)
}

type stage_stats = {
  mutable props : int;  (** Model-checker properties evaluated. *)
  mutable presim_hits : int;  (** Facts discharged by the simulation pre-pass. *)
  mutable undetermined : int;
  mutable pruned_static : int;
      (** Covers discharged by the static FSM-abstraction reachability
          pre-pass — never dispatched to simulation or the model checker.
          Zero when [static_prune] is off (the audit re-checks count as
          [props] instead). *)
  mutable pruned_absint : int;
      (** Covers discharged by the known-bits pre-pass {e beyond} the FSM
          abstraction: dead under {!Hdl.Analysis.fsm_reachable} refined
          with {!Hdl.Absint.known_bits}, or with an occupancy monitor bit
          proven stuck at 0.  Zero unless [absint] is [`On]. *)
}

type result = {
  instr : Isa.t;
  duv_pls : string list;
  pruned_duv_states : string list;
      (** Unlabeled state valuations proven unreachable. *)
  iuv_pls : string list;
  implications : (string * string) list;
      (** [(a, b)]: every completed execution visiting [a] also visits [b]. *)
  exclusives : (string * string) list;
  naive_sets : int;  (** |power set of IUV PLs| before pruning. *)
  candidate_sets : int;  (** Sets surviving dominates/exclusive pruning. *)
  paths : path list;
  decisions : (string * string list list) list;
      (** Per decision source: the observed destination PL sets (§IV-B). *)
  revisit_counts : (string * int list) list;
      (** Possible consecutive-run lengths for tracked PLs (§V-B6). *)
  stage_stats : (string * stage_stats) list;
  checker_stats : Mc.Checker.Stats.t;
}

val run :
  ?cache:Vcache.t ->
  ?cache_salt:string ->
  ?config:Mc.Checker.config ->
  ?stimulus:(Sim.t -> int -> unit) ->
  ?semantic_cache:bool ->
  ?revisit_count_labels:string list ->
  ?max_candidate_sets:int ->
  ?max_revisit_count:int ->
  ?presim_episodes:int ->
  ?presim_cycles:int ->
  ?static_prune:bool ->
  ?absint:[ `On | `Off | `Audit ] ->
  ?dump_cnf:string ->
  ?shards:int ->
  ?pool:Pool.t ->
  meta:Designs.Meta.t ->
  iuv:Isa.t ->
  iuv_pc:int ->
  unit ->
  result
(** Note: [meta] is consumed — the harness extends its netlist with monitor
    state, so build a fresh design per call.

    [static_prune] (default [true]) enables the static FSM-abstraction
    reachability pre-pass: covers over state valuations outside a µFSM's
    abstract reachable set (see {!Hdl.Analysis.fsm_reachable}) are decided
    unreachable without dispatching a property.  This is sound — the
    abstraction over-approximates, so exclusion proves unreachability.
    With [static_prune = false] those covers are instead dispatched as a
    trailing audit batch after the main property stream; a [Reachable]
    audit verdict raises [Failure].  Both modes issue the identical checker
    sequence for every semantically-live cover, so the {!Synthlc} report
    digest is bit-identical across modes.

    [absint] (default [`On]) layers the known-bits pre-pass on top: covers
    the FSM abstraction left undecided but that die under the
    known-bits-refined reachability — or whose occupancy monitor bit is
    proven stuck at 0 ({!Hdl.Absint.known_bits} over the monitored
    netlist) — are discharged without a property.  The dead/live partition
    is computed in {e every} mode, so the mid-stream checker sequence and
    the report digest are bit-identical across [`On]/[`Off]/[`Audit]; with
    [`Off] or [`Audit] the extra dead covers are re-dispatched as a second
    trailing batch (after the [static_prune] audit batch), and a
    [Reachable] verdict raises [Failure] in both — synthesis has no honest
    path to re-admit a cover after the main stream has run.

    [cache] attaches a persistent verdict store (see {!Mc.Checker.create}):
    every checker property — including each shard's — is looked up before
    any engine runs, and a run whose properties all hit is bit-identical to
    the run that filled the store, because cached witness traces replay
    through the same harvesting code paths.  [semantic_cache] switches the
    store to the behavioral key namespace (see {!Mc.Checker.create}), so
    semantically equivalent netlist variants share verdicts.
    [config.sweep] selects the checker's equivalence-sweep mode; the
    design's {!Designs.Meta.signals} are always passed as merge barriers.  With [shards > 1], each
    non-zero shard stages its writes and the joins merge them in shard
    order.

    [shards] (default 1) turns on property sharding: K checker instances
    over the same monitored netlist, with the independent PL / PL-set cover
    batches of a stage split round-robin across them and evaluated in
    parallel (on [pool] if given, else a transient pool of K domains).
    Sharding trades the learned-clause sharing of one incremental solver
    for cores, so per-property engine verdicts (e.g. sim-discharged vs
    BMC) can differ from the unsharded run — the µPATH set itself is
    engine-independent.  For a fixed [shards] value results are
    deterministic regardless of the pool's job count. *)

val to_uhb_paths : result -> Uhb.Path.t list
val to_uhb_decisions : result -> Uhb.Decision.t list
val pp_result : Format.formatter -> result -> unit

val result_digest : result -> string
(** Hex digest of the semantic result fields (µPATH set, implications,
    decisions, revisit counts) — excludes stage/checker statistics, so it
    is stable across job counts, cache warmth, and prune modes. *)
