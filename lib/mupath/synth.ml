module Checker = Mc.Checker
module SS = Set.Make (String)

type path = {
  pl_set : (string * Uhb.Revisit.t) list;
  hb_edges : (string * string) list;
}

type stage_stats = {
  mutable props : int;
  mutable presim_hits : int;
  mutable undetermined : int;
  mutable pruned_static : int;
  mutable pruned_absint : int;
}

type result = {
  instr : Isa.t;
  duv_pls : string list;
  pruned_duv_states : string list;
  iuv_pls : string list;
  implications : (string * string) list;
  exclusives : (string * string) list;
  naive_sets : int;
  candidate_sets : int;
  paths : path list;
  decisions : (string * string list list) list;
  revisit_counts : (string * int list) list;
  stage_stats : (string * stage_stats) list;
  checker_stats : Mc.Checker.Stats.t;
}

(* One completed (or partial) random episode's monitor snapshot. *)
type episode = {
  completed : bool;
  occ_any_seen : SS.t;
  occ_iuv_seen : SS.t;
  final_visited : SS.t;
  cons_seen : SS.t;
  reenter_seen : SS.t;
  edges_seen : (string * string) list;
  maxruns : (string * int) list;
  decision_obs : (string * SS.t) list;
}

let run_inner ?cache ?cache_salt ?config ?stimulus ?(semantic_cache = false)
    ?(revisit_count_labels = [])
    ?(max_candidate_sets = 4096) ?(max_revisit_count = 12) ?(presim_episodes = 64)
    ?(presim_cycles = 48) ?(static_prune = true) ?(absint = `On) ?dump_cnf ~shards
    ~(pool : Pool.t option) ~meta ~iuv ~iuv_pc () =
  let h =
    Harness.create ?cache ?cache_salt ?config ?stimulus ~semantic_cache
      ~revisit_count_labels ~meta ~iuv ~iuv_pc ()
  in
  let nl = meta.Designs.Meta.nl in
  let chk = Harness.checker h in
  let labels = Harness.labels h in
  (* Static FSM-abstraction reachability pre-pass: over-approximate each
     µFSM's reachable state set; a cover over a state outside the
     over-approximation is provably unsatisfiable, so its checker call can
     be discharged without the solver.  With [static_prune] off, the same
     partition is kept but the statically-decided covers are dispatched as
     a trailing audit batch instead — both modes issue the identical checker
     sequence for every semantically-live cover, so their reports digest
     identically, and the audit turns any abstraction unsoundness into a
     hard failure. *)
  let static_reach =
    let go () =
      List.filter_map
        (fun (u : Designs.Meta.ufsm) ->
          Option.map
            (fun set -> (u.Designs.Meta.ufsm_name, set))
            (Hdl.Analysis.fsm_reachable nl ~vars:u.Designs.Meta.vars))
        meta.Designs.Meta.ufsms
    in
    if Obs.enabled () then Obs.with_span "synth.static_reach" go else go ()
  in
  let member_static_dead ((u : Designs.Meta.ufsm), v) =
    match List.assoc_opt u.Designs.Meta.ufsm_name static_reach with
    | None -> false (* abstraction bailed: nothing is pruned for this µFSM *)
    | Some set -> not (List.exists (Bitvec.equal v) set)
  in
  let group_members = Harness.pl_groups meta in
  let label_static_dead lbl =
    match List.assoc_opt lbl group_members with
    | Some members -> members <> [] && List.for_all member_static_dead members
    | None -> false
  in
  (* Known-bits pre-pass, layered on the FSM abstraction: compute bit-level
     invariants of the monitored netlist, re-run the reachability analysis
     with the invariant envelope bounding what the plain value-set analysis
     widened to Top, and additionally discharge any cover whose occupancy
     monitor bit is itself proven stuck at 0.  Only covers the FSM
     abstraction did NOT already discharge count as known-bits prunes.
     Computed in every [absint] mode so the live/dead partition — and with
     it the mid-stream checker sequence and the report digest — is
     mode-independent; the mode only decides whether the extra dead covers
     are discharged ([`On]) or re-checked in a trailing audit batch
     ([`Off]/[`Audit], which both fail hard on a [Reachable] verdict). *)
  let kb =
    let go () = Hdl.Absint.known_bits nl in
    if Obs.enabled () then Obs.with_span "synth.absint" go else go ()
  in
  let absint_reach =
    let go () =
      List.filter_map
        (fun (u : Designs.Meta.ufsm) ->
          Option.map
            (fun set -> (u.Designs.Meta.ufsm_name, set))
            (Hdl.Analysis.fsm_reachable ~known:kb nl ~vars:u.Designs.Meta.vars))
        meta.Designs.Meta.ufsms
    in
    if Obs.enabled () then Obs.with_span "synth.absint_reach" go else go ()
  in
  let member_absint_dead ((u : Designs.Meta.ufsm), v) =
    match List.assoc_opt u.Designs.Meta.ufsm_name absint_reach with
    | None -> false
    | Some set -> not (List.exists (Bitvec.equal v) set)
  in
  let label_absint_refined_dead lbl =
    match List.assoc_opt lbl group_members with
    | Some members -> members <> [] && List.for_all member_absint_dead members
    | None -> false
  in
  (* Property sharding (off unless [shards > 1]): K checker instances over
     the same monitored netlist, each owning its own solver and unrolling.
     Shard 0 is the harness checker; the others get seeds derived from
     (base seed, shard index).  Independent cover batches within a stage
     are split round-robin across the instances and evaluated in parallel —
     trading the shared learned-clause store of one incremental solver for
     cores. *)
  (* Each non-zero shard writes verdicts into a staged view of the store
     (no lock contention from worker domains); every [sharded] join merges
     the staged writes back in shard order — the same deterministic-join
     discipline the stage counters use.  Shard 0 is the harness checker and
     talks to the shared store directly (its root layer is mutex-safe). *)
  let shard_caches =
    if shards <= 1 then [||]
    else
      Array.init shards (fun k ->
          if k = 0 then cache else Option.map Vcache.stage cache)
  in
  let shard_checkers =
    if shards <= 1 then [| chk |]
    else
      Array.init shards (fun k ->
          if k = 0 then chk
          else
            let base = Option.value config ~default:Checker.default_config in
            let cfg =
              { base with Checker.seed = Pool.derive_seed ~base:base.Checker.seed ~index:k }
            in
            Checker.create ?cache:shard_caches.(k) ?cache_salt ?stimulus
              ~config:cfg ~sweep_barriers:(Designs.Meta.signals meta)
              ~semantic_cache ~assumes:(Harness.assumes h) nl)
  in
  let stage names =
    List.map
      (fun n ->
        ( n,
          {
            props = 0;
            presim_hits = 0;
            undetermined = 0;
            pruned_static = 0;
            pruned_absint = 0;
          } ))
      names
  in
  let stages =
    stage [ "duv_pl"; "iuv_pl"; "prune"; "pl_set"; "revisit"; "hb_edge"; "counts" ]
  in
  let st name = List.assoc name stages in
  let check stage_name lits =
    let s = st stage_name in
    s.props <- s.props + 1;
    let o = Checker.check_cover ~name:stage_name chk lits in
    (match o with
    | Checker.Undetermined -> s.undetermined <- s.undetermined + 1
    | _ -> ());
    o
  in
  let hit stage_name =
    let s = st stage_name in
    s.presim_hits <- s.presim_hits + 1
  in
  (* [sharded stage items ~f]: evaluate [f ~check ~hit x] for every item,
     order-preserving.  Unsharded, this is [List.map] on the main checker;
     sharded, chunk [i mod K] runs on checker K in a pool domain, with
     per-chunk stage counters merged at the join so the mutable stage
     records are never touched concurrently.  [f] must route every solver
     query through the [check] it is handed. *)
  let sharded : 'a 'r.
      string ->
      'a list ->
      f:
        (check:((Hdl.Netlist.signal * bool) list -> Checker.outcome) ->
        hit:(unit -> unit) ->
        'a ->
        'r) ->
      'r list =
   fun stage_name items ~f ->
    let go () =
      match (shard_checkers, pool) with
      | [| _ |], _ | _, None ->
        List.map
          (f
             ~check:(fun lits -> check stage_name lits)
             ~hit:(fun () -> hit stage_name))
          items
      | cks, Some p ->
        let k = Array.length cks in
        let n = List.length items in
        let chunks = Array.make k [] in
        List.iteri (fun i x -> chunks.(i mod k) <- (i, x) :: chunks.(i mod k)) items;
        let results = Array.make n None in
        let locals =
          Pool.run p
            (List.init k (fun ci () ->
                 let ck = cks.(ci) in
                 let props = ref 0 and undet = ref 0 and hits = ref 0 in
                 let check lits =
                   incr props;
                   let o = Checker.check_cover ~name:stage_name ck lits in
                   (match o with Checker.Undetermined -> incr undet | _ -> ());
                   o
                 in
                 let hit () = incr hits in
                 List.iter
                   (fun (i, x) -> results.(i) <- Some (f ~check ~hit x))
                   (List.rev chunks.(ci));
                 (!props, !undet, !hits)))
        in
        let s = st stage_name in
        List.iter
          (fun (p_, u, h_) ->
            s.props <- s.props + p_;
            s.undetermined <- s.undetermined + u;
            s.presim_hits <- s.presim_hits + h_)
          locals;
        (* Publish each shard's staged verdicts, in shard order, so later
           stages (and later runs) see them through the shared store. *)
        Array.iter (fun c -> Option.iter Vcache.merge c) shard_caches;
        Array.to_list
          (Array.map
             (function Some r -> r | None -> assert false)
             results)
    in
    if Obs.enabled () then
      Obs.with_span "synth.batch"
        ~args:
          [ ("stage", stage_name); ("items", string_of_int (List.length items)) ]
        go
    else go ()
  in

  (* ------------------------------------------------------------------ *)
  (* Simulation pre-pass: harvest completed executions.                   *)
  (* ------------------------------------------------------------------ *)
  let episode_assumes = Harness.assumes h in
  let run_episode seed =
    let sim = Sim.create ~seed nl in
    let gone_cycle = ref None in
    let occ_any_seen = ref SS.empty in
    let occ_iuv_seen = ref SS.empty in
    let decision_obs = ref [] in
    let prev_set = ref None in
    let aborted = ref false in
    let c = ref 0 in
    while (not !aborted) && !gone_cycle = None && !c < presim_cycles do
      (match stimulus with
      | Some f -> f sim !c
      | None -> Sim.poke_random_inputs sim);
      Sim.eval sim;
      (* The IUV-encoding assumption is enforced by construction of the
         stimulus; design environment assumptions must hold too. *)
      if not (List.for_all (fun a -> Sim.peek_bool sim a) episode_assumes) then
        aborted := true
      else begin
        let occ_now =
          List.fold_left
            (fun acc lbl ->
              if Sim.peek_bool sim (Harness.occ_iuv h lbl) then SS.add lbl acc
              else acc)
            SS.empty labels
        in
        List.iter
          (fun lbl ->
            if Sim.peek_bool sim (Harness.occ_any h lbl) then
              occ_any_seen := SS.add lbl !occ_any_seen)
          labels;
        occ_iuv_seen := SS.union occ_now !occ_iuv_seen;
        (match !prev_set with
        | Some prev when not (SS.is_empty prev) ->
          SS.iter (fun src -> decision_obs := (src, occ_now) :: !decision_obs) prev
        | _ -> ());
        prev_set := Some occ_now;
        if Sim.peek_bool sim (Harness.gone h) then gone_cycle := Some !c;
        Sim.step sim;
        incr c
      end
    done;
    if !aborted then None
    else begin
      Sim.eval sim;
      let flagged f =
        List.fold_left
          (fun acc lbl -> if Sim.peek_bool sim (f h lbl) then SS.add lbl acc else acc)
          SS.empty labels
      in
      let completed = !gone_cycle <> None in
      Some
        {
          completed;
          occ_any_seen = !occ_any_seen;
          occ_iuv_seen = !occ_iuv_seen;
          final_visited = flagged Harness.visited;
          cons_seen = flagged Harness.cons_flag;
          reenter_seen = flagged Harness.reenter_flag;
          edges_seen =
            List.filter
              (fun e -> Sim.peek_bool sim (Harness.edge_flag h e))
              (Harness.edge_candidates h);
          maxruns =
            List.filter_map
              (fun lbl ->
                let rec find n =
                  if n > Harness.max_run_limit then None
                  else if Sim.peek_bool sim (Harness.maxrun_eq h lbl n) then Some n
                  else find (n + 1)
                in
                Option.map (fun n -> (lbl, n)) (find 1))
              revisit_count_labels;
          decision_obs = !decision_obs;
        }
    end
  in
  let episodes =
    let go () =
      List.filter_map (fun i -> run_episode (0x9e3779b lxor (i * 2654435761))) (List.init presim_episodes (fun i -> i))
    in
    if Obs.enabled () then
      Obs.with_span "synth.presim"
        ~args:[ ("episodes", string_of_int presim_episodes) ]
        go
    else go ()
  in
  let completed_eps = List.filter (fun e -> e.completed) episodes in

  (* Soundness tripwire: a statically-dead PL observed occupied during
     random simulation contradicts the over-approximation — fail loudly
     rather than prune a live cover. *)
  let statically_dead_labels = List.filter label_static_dead labels in
  List.iter
    (fun lbl ->
      if List.exists (fun e -> SS.mem lbl e.occ_any_seen) episodes then
        failwith
          (Printf.sprintf
             "Synth: static reachability abstraction unsound: PL %s observed \
              in simulation"
             lbl))
    statically_dead_labels;

  (* Known-bits extra dead set: dead under the refined reachability or with
     a stuck-at-0 occupancy monitor, but NOT already discharged by the FSM
     abstraction.  Same simulation tripwire as above. *)
  let absint_dead_labels =
    List.filter
      (fun lbl ->
        (not (List.mem lbl statically_dead_labels))
        && (label_absint_refined_dead lbl
           || Hdl.Absint.known_zero kb (Harness.occ_any h lbl)))
      labels
  in
  List.iter
    (fun lbl ->
      if List.exists (fun e -> SS.mem lbl e.occ_any_seen) episodes then
        failwith
          (Printf.sprintf
             "Synth: known-bits abstraction unsound: PL %s observed in \
              simulation"
             lbl))
    absint_dead_labels;

  (* ------------------------------------------------------------------ *)
  (* Stage A: PL reachability for the DUV (§V-B1).                        *)
  (* ------------------------------------------------------------------ *)
  (* Statically-dead covers never reach the checkers here, in either mode:
     removing them mid-stream only in prune mode would shift the shared
     RNG/solver state of everything after them and change witnesses.  They
     are either discharged by the abstraction (prune mode) or deferred to
     the trailing audit batch (audit mode). *)
  let live_labels =
    List.filter
      (fun lbl ->
        (not (List.mem lbl statically_dead_labels))
        && not (List.mem lbl absint_dead_labels))
      labels
  in
  let duv_pls =
    let keeps =
      sharded "duv_pl" live_labels ~f:(fun ~check ~hit lbl ->
          if List.exists (fun e -> SS.mem lbl e.occ_any_seen) episodes then begin
            hit ();
            true
          end
          else
            match check [ (Harness.occ_any h lbl, true) ] with
            | Checker.Reachable _ -> true
            | Checker.Unreachable _ | Checker.Undetermined -> false)
    in
    let keep_of = List.combine live_labels keeps in
    List.filter
      (fun lbl -> List.assoc_opt lbl keep_of = Some true)
      labels
  in
  let unlabeled_info = Harness.unlabeled_state_info h in
  let unlabeled_absint_dead (_, occ, m) =
    (not (member_static_dead m))
    && (member_absint_dead m || Hdl.Absint.known_zero kb occ)
  in
  let undecided_unlabeled =
    List.filter
      (fun ((_, _, m) as info) ->
        (not (member_static_dead m)) && not (unlabeled_absint_dead info))
      unlabeled_info
  in
  let undecided_pruned =
    sharded "duv_pl" undecided_unlabeled ~f:(fun ~check ~hit:_ (name, occ, _) ->
        match check [ (occ, true) ] with
        | Checker.Reachable _ -> (name, false)
        | Checker.Unreachable _ | Checker.Undetermined -> (name, true))
  in
  let pruned_duv_states =
    List.filter_map
      (fun ((name, _, m) as info) ->
        if member_static_dead m then Some name
        else if unlabeled_absint_dead info then Some name
        else if List.assoc_opt name undecided_pruned = Some true then Some name
        else None)
      unlabeled_info
  in
  let n_statically_decided =
    List.length statically_dead_labels
    + List.length (List.filter (fun (_, _, m) -> member_static_dead m) unlabeled_info)
  in
  let n_absint_decided =
    List.length absint_dead_labels
    + List.length (List.filter unlabeled_absint_dead unlabeled_info)
  in
  if static_prune then begin
    (st "duv_pl").pruned_static <- n_statically_decided;
    if Obs.enabled () then
      Obs.Metrics.incr "synth.pruned_static" ~by:n_statically_decided
  end;
  (match absint with
  | `On ->
    (st "duv_pl").pruned_absint <- n_absint_decided;
    if Obs.enabled () then
      Obs.Metrics.incr "synth.pruned_absint" ~by:n_absint_decided
  | `Off | `Audit -> ());

  (* ------------------------------------------------------------------ *)
  (* Stage B: PL reachability for the IUV (§V-B2).                        *)
  (* ------------------------------------------------------------------ *)
  let iuv_pls =
    let keeps =
      sharded "iuv_pl" duv_pls ~f:(fun ~check ~hit lbl ->
          if List.exists (fun e -> SS.mem lbl e.occ_iuv_seen) episodes then begin
            hit ();
            true
          end
          else
            match check [ (Harness.occ_iuv h lbl, true) ] with
            | Checker.Reachable _ -> true
            | Checker.Unreachable _ | Checker.Undetermined -> false)
    in
    List.filter_map (fun (lbl, keep) -> if keep then Some lbl else None)
      (List.combine duv_pls keeps)
  in

  (* ------------------------------------------------------------------ *)
  (* Stage C: dominates / exclusive pruning (§V-B3).                      *)
  (* ------------------------------------------------------------------ *)
  let gone_lit = (Harness.gone h, true) in
  let implications =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if a = b then None
            else if
              List.exists
                (fun e -> SS.mem a e.final_visited && not (SS.mem b e.final_visited))
                completed_eps
            then begin
              hit "prune";
              None
            end
            else
              match
                check "prune"
                  [ gone_lit; (Harness.visited h a, true); (Harness.visited h b, false) ]
              with
              | Checker.Unreachable _ -> Some (a, b)
              | Checker.Reachable _ | Checker.Undetermined -> None)
          iuv_pls)
      iuv_pls
  in
  let exclusives =
    let rec pairs = function
      | [] -> []
      | a :: rest -> List.map (fun b -> (a, b)) rest @ pairs rest
    in
    List.filter
      (fun (a, b) ->
        if
          List.exists
            (fun e -> SS.mem a e.final_visited && SS.mem b e.final_visited)
            completed_eps
        then begin
          hit "prune";
          false
        end
        else
          match
            check "prune"
              [ gone_lit; (Harness.visited h a, true); (Harness.visited h b, true) ]
          with
          | Checker.Unreachable _ -> true
          | Checker.Reachable _ | Checker.Undetermined -> false)
      (pairs iuv_pls)
  in

  (* ------------------------------------------------------------------ *)
  (* Candidate PL sets: subsets closed under implications, avoiding        *)
  (* exclusive pairs (§V-B3).                                             *)
  (* ------------------------------------------------------------------ *)
  let naive_sets =
    if List.length iuv_pls >= 62 then max_int else 1 lsl List.length iuv_pls
  in
  let candidates =
    let out = ref [] in
    let n_out = ref 0 in
    let arr = Array.of_list iuv_pls in
    let n = Array.length arr in
    let rec go i chosen =
      if !n_out >= max_candidate_sets then ()
      else if i = n then begin
        if not (SS.is_empty chosen) then begin
          let ok_impl =
            List.for_all
              (fun (a, b) -> (not (SS.mem a chosen)) || SS.mem b chosen)
              implications
          in
          if ok_impl then begin
            out := chosen :: !out;
            incr n_out
          end
        end
      end
      else begin
        (* exclude arr.(i) *)
        go (i + 1) chosen;
        (* include arr.(i) unless it clashes with an exclusive partner *)
        let l = arr.(i) in
        let clash =
          List.exists
            (fun (a, b) ->
              (a = l && SS.mem b chosen) || (b = l && SS.mem a chosen))
            exclusives
        in
        if not clash then go (i + 1) (SS.add l chosen)
      end
    in
    go 0 SS.empty;
    List.rev !out
  in

  (* ------------------------------------------------------------------ *)
  (* Stage D/E: PL-set reachability (§V-B4) and witness collection.       *)
  (* ------------------------------------------------------------------ *)
  let set_pattern s =
    List.map
      (fun lbl -> (Harness.visited h lbl, SS.mem lbl s))
      iuv_pls
  in
  let decision_obs_all = ref (List.concat_map (fun e -> e.decision_obs) completed_eps) in
  let cex_occ cex lbl cyc =
    not
      (Bitvec.is_zero (Checker.Cex.value_exn cex ("mon_occ_" ^ lbl) ~cycle:cyc))
  in
  let cex_bool cex name cyc =
    not (Bitvec.is_zero (Checker.Cex.value_exn cex name ~cycle:cyc))
  in
  let harvest_cex_into acc cex =
    (* Extract decision observations from a witness trace, up to the cycle
       the IUV disappears. *)
    let len = Checker.Cex.length cex in
    let prev = ref SS.empty in
    (try
       for c = 0 to len - 1 do
         if cex_bool cex "mon_gone" c then raise Exit;
         let now =
           List.fold_left
             (fun acc lbl -> if cex_occ cex lbl c then SS.add lbl acc else acc)
             SS.empty labels
         in
         if not (SS.is_empty !prev) then
           SS.iter (fun src -> acc := (src, now) :: !acc) !prev;
         prev := now
       done
     with Exit -> ());
    ()
  in
  let harvest_cex cex = harvest_cex_into decision_obs_all cex in
  let reachable_sets =
    (* Sharded tasks return any harvested observations instead of touching
       the shared accumulator; the merge happens at the (sequential) join. *)
    let candidates_checked =
      sharded "pl_set" candidates ~f:(fun ~check ~hit s ->
          let presim_matches =
            List.filter (fun e -> SS.equal e.final_visited s) completed_eps
          in
          if presim_matches <> [] then begin
            hit ();
            Some (s, presim_matches, [])
          end
          else
            match check (gone_lit :: set_pattern s) with
            | Checker.Reachable cex ->
              let harvested = ref [] in
              harvest_cex_into harvested cex;
              (* Synthesize an episode-like record from the witness tail. *)
              let last = Checker.Cex.length cex - 1 in
              let flags name =
                List.fold_left
                  (fun acc lbl ->
                    if cex_bool cex ("mon_" ^ name ^ "_" ^ lbl) last then
                      SS.add lbl acc
                    else acc)
                  SS.empty labels
              in
              let ep =
                {
                  completed = true;
                  occ_any_seen = SS.empty;
                  occ_iuv_seen = s;
                  final_visited = s;
                  cons_seen = flags "cons";
                  reenter_seen = flags "reenter";
                  edges_seen =
                    List.filter
                      (fun (a, b) ->
                        cex_bool cex (Printf.sprintf "mon_edge_%s__%s" a b) last)
                      (Harness.edge_candidates h);
                  maxruns = [];
                  decision_obs = [];
                }
              in
              Some (s, [ ep ], !harvested)
            | Checker.Unreachable _ | Checker.Undetermined -> None)
    in
    List.filter_map
      (Option.map (fun (s, eps, harvested) ->
           decision_obs_all := harvested @ !decision_obs_all;
           (s, eps)))
      candidates_checked
  in

  (* ------------------------------------------------------------------ *)
  (* Stage F: revisit classification per reachable set.                   *)
  (* ------------------------------------------------------------------ *)
  let paths =
    List.map
      (fun (s, eps) ->
        let pattern = set_pattern s in
        let flag_possible stage_name observed flag_sig =
          if observed then begin
            hit stage_name;
            true
          end
          else
            match check stage_name (gone_lit :: (flag_sig, true) :: pattern) with
            | Checker.Reachable cex ->
              harvest_cex cex;
              true
            | Checker.Unreachable _ | Checker.Undetermined -> false
        in
        let pl_set =
          List.map
            (fun lbl ->
              let cons =
                flag_possible "revisit"
                  (List.exists (fun e -> SS.mem lbl e.cons_seen) eps)
                  (Harness.cons_flag h lbl)
              in
              let reent =
                flag_possible "revisit"
                  (List.exists (fun e -> SS.mem lbl e.reenter_seen) eps)
                  (Harness.reenter_flag h lbl)
              in
              let r =
                match (cons, reent) with
                | false, false -> Uhb.Revisit.Once
                | true, false -> Uhb.Revisit.Consecutive
                | false, true -> Uhb.Revisit.Non_consecutive
                | true, true -> Uhb.Revisit.Both
              in
              (lbl, r))
            (SS.elements s)
        in
        let hb_edges =
          List.filter
            (fun ((a, b) as e) ->
              SS.mem a s && SS.mem b s
              && flag_possible "hb_edge"
                   (List.exists (fun ep -> List.mem e ep.edges_seen) eps)
                   (Harness.edge_flag h e))
            (Harness.edge_candidates h)
        in
        { pl_set; hb_edges })
      reachable_sets
  in

  (* ------------------------------------------------------------------ *)
  (* Stage H: revisit cycle counts (§V-B6 mode (i)).                      *)
  (* ------------------------------------------------------------------ *)
  let revisit_counts =
    List.map
      (fun lbl ->
        let observed =
          List.sort_uniq Int.compare
            (List.concat_map
               (fun e ->
                 List.filter_map
                   (fun (l, n) -> if l = lbl then Some n else None)
                   e.maxruns)
               completed_eps)
        in
        let all =
          List.filter
            (fun n ->
              if List.mem n observed then begin
                hit "counts";
                true
              end
              else
                match
                  check "counts" [ gone_lit; (Harness.maxrun_eq h lbl n, true) ]
                with
                | Checker.Reachable _ -> true
                | Checker.Unreachable _ | Checker.Undetermined -> false)
            (List.init max_revisit_count (fun i -> i + 1))
        in
        (lbl, all))
      revisit_count_labels
  in

  (* Trailing audit (only with [static_prune] off): dispatch every
     statically-decided cover to the model checker after the main stream,
     so the main stream's RNG/solver trajectory is identical in both modes
     while the abstraction's verdicts still get checked.  A [Reachable]
     verdict here means the over-approximation was unsound — fail loudly
     rather than let a pruning bug pass silently. *)
  if not static_prune then begin
    List.iter
      (fun lbl ->
        match check "duv_pl" [ (Harness.occ_any h lbl, true) ] with
        | Checker.Reachable _ ->
          failwith
            (Printf.sprintf
               "Synth: static reachability abstraction unsound: PL %s is \
                reachable"
               lbl)
        | Checker.Unreachable _ | Checker.Undetermined -> ())
      statically_dead_labels;
    List.iter
      (fun (name, occ, m) ->
        if member_static_dead m then
          match check "duv_pl" [ (occ, true) ] with
          | Checker.Reachable _ ->
            failwith
              (Printf.sprintf
                 "Synth: static reachability abstraction unsound: state %s \
                  is reachable"
                 name)
          | Checker.Unreachable _ | Checker.Undetermined -> ())
      unlabeled_info
  end;

  (* Same discipline for the known-bits extra dead set: with [absint] off
     or auditing, re-check each discharged cover after the main stream.
     Synthesis has no honest-feedback path for a late [Reachable] (the
     result is already assembled from the live covers), so both non-prune
     modes treat it as an unsoundness failure. *)
  (match absint with
  | `On -> ()
  | `Off | `Audit ->
    List.iter
      (fun lbl ->
        match check "duv_pl" [ (Harness.occ_any h lbl, true) ] with
        | Checker.Reachable _ ->
          failwith
            (Printf.sprintf
               "Synth: known-bits abstraction unsound: PL %s is reachable" lbl)
        | Checker.Unreachable _ | Checker.Undetermined -> ())
      absint_dead_labels;
    List.iter
      (fun ((name, occ, _) as info) ->
        if unlabeled_absint_dead info then
          match check "duv_pl" [ (occ, true) ] with
          | Checker.Reachable _ ->
            failwith
              (Printf.sprintf
                 "Synth: known-bits abstraction unsound: state %s is \
                  reachable"
                 name)
          | Checker.Unreachable _ | Checker.Undetermined -> ())
      unlabeled_info);

  (* Decisions (§IV-B): aggregate per source PL. *)
  let decisions =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (src, dsts) ->
        let key = src in
        let cur = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
        let dl = SS.elements dsts in
        if not (List.mem dl cur) then Hashtbl.replace tbl key (dl :: cur))
      !decision_obs_all;
    List.filter_map
      (fun lbl ->
        match Hashtbl.find_opt tbl lbl with
        | Some dsts -> Some (lbl, List.sort compare dsts)
        | None -> None)
      labels
  in

  (* Export the harness checker's BMC unrolling for offline debugging.
     Written at the end of the run so the CNF reflects every cover the
     synthesis dispatched on the shared solver. *)
  (match dump_cnf with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Checker.dump_cnf chk);
    close_out oc);

  {
    instr = iuv;
    duv_pls;
    pruned_duv_states;
    iuv_pls;
    implications;
    exclusives;
    naive_sets;
    candidate_sets = List.length candidates;
    paths;
    decisions;
    revisit_counts;
    stage_stats = stages;
    checker_stats =
      (* Snapshot, never the live record: the harness checker keeps
         mutating its stats if the caller reuses it, and the result must
         not change under it. *)
      (match shard_checkers with
      | [| c |] -> Checker.Stats.copy (Checker.stats c)
      | cks ->
        Array.fold_left
          (fun acc c -> Checker.Stats.merge acc (Checker.stats c))
          (Checker.Stats.create ()) cks);
  }

let run ?cache ?cache_salt ?config ?stimulus ?semantic_cache
    ?revisit_count_labels
    ?max_candidate_sets ?max_revisit_count ?presim_episodes ?presim_cycles
    ?static_prune ?absint ?dump_cnf ?(shards = 1) ?pool ~meta ~iuv ~iuv_pc () =
  let shards = max 1 shards in
  let inner pool =
    run_inner ?cache ?cache_salt ?config ?stimulus ?semantic_cache
      ?revisit_count_labels
      ?max_candidate_sets ?max_revisit_count ?presim_episodes ?presim_cycles
      ?static_prune ?absint ?dump_cnf ~shards ~pool ~meta ~iuv ~iuv_pc ()
  in
  let dispatch () =
    match pool with
    | Some p -> inner (Some p)
    | None ->
      if shards = 1 then inner None
      else Pool.with_pool ~jobs:shards (fun p -> inner (Some p))
  in
  if Obs.enabled () then
    Obs.with_span "synth.run" ~args:[ ("instr", Isa.to_string iuv) ] dispatch
  else dispatch ()

let pl_of_label instr lbl =
  ignore instr;
  Uhb.Pl.make ~ufsm:"grp" ~label:lbl ~state:(Bitvec.zero 1)

let to_uhb_paths r =
  List.map
    (fun p ->
      let pls =
        List.map (fun (lbl, rv) -> (pl_of_label r.instr lbl, rv)) p.pl_set
      in
      let edges =
        List.map
          (fun (a, b) -> (pl_of_label r.instr a, pl_of_label r.instr b))
          p.hb_edges
      in
      (* Drop edges that would make the HB relation cyclic (observations of
         distinct executions can compose into cycles; keep a consistent
         prefix). *)
      let rec keep_acyclic acc = function
        | [] -> List.rev acc
        | e :: rest ->
          let cand =
            Uhb.Path.make ~instr:(Isa.to_string r.instr) ~pls
              ~edges:(List.rev (e :: acc))
          in
          if Uhb.Path.check_acyclic cand then keep_acyclic (e :: acc) rest
          else keep_acyclic acc rest
      in
      let edges = keep_acyclic [] edges in
      Uhb.Path.make ~instr:(Isa.to_string r.instr) ~pls ~edges)
    r.paths

let to_uhb_decisions r =
  List.concat_map
    (fun (src, dsts) ->
      List.map
        (fun dst ->
          Uhb.Decision.make
            ~src:(pl_of_label r.instr src)
            ~dsts:(List.map (pl_of_label r.instr) dst))
        dsts)
    r.decisions

(* Semantic fields only: stage_stats and checker_stats are observability
   (they vary with prune modes, cache warmth, and shard count), so two runs
   that uncovered the same µPATH set digest identically — the same contract
   as Synthlc.Engine.report_digest. *)
let result_digest r =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( r.instr,
            r.duv_pls,
            r.pruned_duv_states,
            r.iuv_pls,
            r.implications,
            r.exclusives,
            (r.naive_sets, r.candidate_sets),
            r.paths,
            r.decisions,
            r.revisit_counts )
          [ Marshal.No_sharing ]))

let pp_result fmt r =
  Format.fprintf fmt "@[<v>== RTL2MuPATH result for %s ==@," (Isa.to_string r.instr);
  Format.fprintf fmt "DUV PLs (%d): %s@," (List.length r.duv_pls)
    (String.concat " " r.duv_pls);
  Format.fprintf fmt "pruned unlabeled states: %d@," (List.length r.pruned_duv_states);
  Format.fprintf fmt "IUV PLs (%d): %s@," (List.length r.iuv_pls)
    (String.concat " " r.iuv_pls);
  Format.fprintf fmt "power set %d -> candidates %d -> reachable uPATHs %d@,"
    r.naive_sets r.candidate_sets (List.length r.paths);
  List.iteri
    (fun i p ->
      Format.fprintf fmt "uPATH %d: {%s}@," i
        (String.concat ", "
           (List.map
              (fun (lbl, rv) -> Format.asprintf "%s[%a]" lbl Uhb.Revisit.pp rv)
              p.pl_set));
      Format.fprintf fmt "  edges: %s@,"
        (String.concat " "
           (List.map (fun (a, b) -> Printf.sprintf "%s->%s" a b) p.hb_edges)))
    r.paths;
  List.iter
    (fun (src, dsts) ->
      if List.length dsts > 1 then
        Format.fprintf fmt "decision source %s: %d destinations@," src
          (List.length dsts))
    r.decisions;
  List.iter
    (fun (lbl, ns) ->
      Format.fprintf fmt "revisit counts %s: %s@," lbl
        (String.concat "," (List.map string_of_int ns)))
    r.revisit_counts;
  List.iter
    (fun (name, s) ->
      Format.fprintf fmt
        "stage %-8s: %4d props, %4d presim hits, %d undetermined%s%s@," name
        s.props s.presim_hits s.undetermined
        (if s.pruned_static > 0 then
           Printf.sprintf ", %d static-pruned" s.pruned_static
         else "")
        (if s.pruned_absint > 0 then
           Printf.sprintf ", %d known-bits-pruned" s.pruned_absint
         else ""))
    r.stage_stats;
  Format.fprintf fmt "checker: %a@]" Mc.Checker.Stats.pp r.checker_stats
