module Netlist = Hdl.Netlist
module Meta = Designs.Meta

let max_run_limit = 15

type group = {
  label : string;
  members : (Meta.ufsm * Bitvec.t) list;
}

type monitors = {
  m_occ_any : Netlist.signal;
  m_occ_iuv : Netlist.signal;
  m_prev_occ : Netlist.signal;
  m_visited : Netlist.signal;
  m_cons : Netlist.signal;
  m_reenter : Netlist.signal;
  m_maxrun_eq : Netlist.signal array; (* index 1..max_run_limit; empty if not tracked *)
}

type t = {
  meta : Meta.t;
  iuv : Isa.t;
  iuv_pc : int;
  groups : group list;
  mons : (string, monitors) Hashtbl.t;
  edges : ((string * string) * Netlist.signal) list;
  gone_s : Netlist.signal;
  unlabeled_occs : (string * Netlist.signal * (Meta.ufsm * Bitvec.t)) list;
  assumes : Netlist.signal list;
  checker : Mc.Checker.t;
}

let checker t = t.checker
let meta t = t.meta
let iuv t = t.iuv
let labels t = List.map (fun g -> g.label) t.groups

let mon t lbl =
  match Hashtbl.find_opt t.mons lbl with
  | Some m -> m
  | None -> invalid_arg ("Harness: unknown PL group " ^ lbl)

let occ_any t lbl = (mon t lbl).m_occ_any
let occ_iuv t lbl = (mon t lbl).m_occ_iuv
let prev_occ_iuv t lbl = (mon t lbl).m_prev_occ
let visited t lbl = (mon t lbl).m_visited
let cons_flag t lbl = (mon t lbl).m_cons
let reenter_flag t lbl = (mon t lbl).m_reenter
let gone t = t.gone_s
let assumes t = t.assumes
let edge_candidates t = List.map fst t.edges

let unlabeled_states t = List.map (fun (n, s, _) -> (n, s)) t.unlabeled_occs
let unlabeled_state_info t = t.unlabeled_occs

let edge_flag t e =
  match List.assoc_opt e t.edges with
  | Some s -> s
  | None -> invalid_arg "Harness.edge_flag: not a candidate edge"

let maxrun_eq t lbl n =
  let m = mon t lbl in
  if Array.length m.m_maxrun_eq = 0 then
    invalid_arg ("Harness.maxrun_eq: label not tracked: " ^ lbl)
  else if n < 1 || n > max_run_limit then invalid_arg "Harness.maxrun_eq: bad n"
  else m.m_maxrun_eq.(n - 1)

(* Collect labelled PL groups from the metadata: states sharing a label
   across µFSMs (e.g. all four scoreboard entries' "scbIss") form one
   group. *)
let collect_groups (meta : Meta.t) =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (u : Meta.ufsm) ->
      List.iter
        (fun (state, label) ->
          if List.exists (Bitvec.equal state) u.Meta.idle_states then ()
          else begin
            if not (Hashtbl.mem tbl label) then begin
              Hashtbl.replace tbl label [];
              order := label :: !order
            end;
            Hashtbl.replace tbl label ((u, state) :: Hashtbl.find tbl label)
          end)
        u.Meta.state_labels)
    meta.Meta.ufsms;
  List.map
    (fun label -> { label; members = Hashtbl.find tbl label })
    (List.rev !order)

(* Static netlist analysis (§V-B5): µFSM u0 feeds u1 combinationally when
   u1's state-update logic reads u0's state variables or PCR. *)
let ufsm_connectivity (meta : Meta.t) =
  let nl = meta.Meta.nl in
  let next_of s =
    match (Netlist.node nl s).Netlist.kind with
    | Netlist.Reg { next = Some n; _ } -> n
    | _ -> failwith "Harness: µFSM var is not a register"
  in
  let cones =
    List.map
      (fun (u : Meta.ufsm) ->
        let roots = List.map next_of (u.Meta.pcr :: u.Meta.vars) in
        (u.Meta.ufsm_name, Netlist.comb_cone nl roots))
      meta.Meta.ufsms
  in
  fun (u0 : Meta.ufsm) (u1 : Meta.ufsm) ->
    let cone = List.assoc u1.Meta.ufsm_name cones in
    List.exists (fun s -> Hashtbl.mem cone s) (u0.Meta.pcr :: u0.Meta.vars)

let pl_groups meta =
  List.map (fun g -> (g.label, g.members)) (collect_groups meta)

let create ?cache ?cache_salt ?config ?stimulus ?(semantic_cache = false)
    ?(revisit_count_labels = []) ~meta ~iuv ~iuv_pc () =
  let module D = Hdl.Dsl.Make (struct
    let nl = meta.Meta.nl
  end) in
  let open D in
  let groups = collect_groups meta in
  let pcw = Netlist.width nl meta.Meta.commit_pc in
  let iuv_pc_c = of_int pcw iuv_pc in
  let state_of_ufsm (u : Meta.ufsm) = concat u.Meta.vars in
  let member_occ (u, state) = state_of_ufsm u ==: of_bv state in
  let member_occ_iuv ((u : Meta.ufsm), state) =
    member_occ (u, state) &: (u.Meta.pcr ==: iuv_pc_c)
  in
  let or_all = List.fold_left ( |: ) gnd in

  (* Per-group occupancy. *)
  let occs =
    List.map
      (fun g ->
        let oa = or_all (List.map member_occ g.members) in
        let oi = or_all (List.map member_occ_iuv g.members) in
        (g.label, oa, oi))
      groups
  in

  (* The IUV is gone once it committed and occupies no µFSM. *)
  let in_any = or_all (List.map (fun (_, _, oi) -> oi) occs) in
  let committed_s = reg ~name:"iuv_committed" ~width:1 () in
  let () =
    committed_s
    <== (committed_s |: (meta.Meta.commit &: (meta.Meta.commit_pc ==: iuv_pc_c)))
  in
  let gone_now = committed_s &: ~:in_any in
  let gone_reg = reg ~name:"iuv_gone" ~width:1 () in
  let () = gone_reg <== (gone_reg |: gone_now) in
  let frozen = gone_reg |: gone_now in

  let nm fmt_label lbl = "mon_" ^ fmt_label ^ "_" ^ lbl in
  let mons = Hashtbl.create 16 in
  List.iter
    (fun (lbl, oa, oi) ->
      let freeze_keep r v = mux frozen r (r |: v) in
      let prev = reg ~name:(nm "prev" lbl) ~width:1 () in
      let () = prev <== oi in
      let vis = reg ~name:(nm "vis" lbl) ~width:1 () in
      let () = vis <== freeze_keep vis oi in
      let cons = reg ~name:(nm "cons" lbl) ~width:1 () in
      let () = cons <== freeze_keep cons (prev &: oi) in
      let left = reg ~name:(nm "left" lbl) ~width:1 () in
      let () = left <== freeze_keep left (vis &: ~:oi) in
      let reenter = reg ~name:(nm "reenter" lbl) ~width:1 () in
      let () = reenter <== freeze_keep reenter (left &: oi) in
      let maxrun_eq =
        if not (List.mem lbl revisit_count_labels) then [||]
        else begin
          let cur = reg ~name:(nm "run" lbl) ~width:4 () in
          let maxr = reg ~name:(nm "maxrun" lbl) ~width:4 () in
          let inc =
            mux (cur ==: of_int 4 max_run_limit) cur (cur +: of_int 4 1)
          in
          let cur_next = mux oi inc (zero 4) in
          let () = cur <== mux frozen cur cur_next in
          let () =
            maxr <== mux frozen maxr (mux (maxr <: cur_next) cur_next maxr)
          in
          Array.init max_run_limit (fun i -> maxr ==: of_int 4 (i + 1))
        end
      in
      (* Name the occupancy wires so they appear in witness traces. *)
      let oa_w = wire ~name:(nm "occany" lbl) 1 in
      let () = oa_w <== oa in
      let oi_w = wire ~name:(nm "occ" lbl) 1 in
      let () = oi_w <== oi in
      Hashtbl.replace mons lbl
        {
          m_occ_any = oa_w;
          m_occ_iuv = oi_w;
          m_prev_occ = prev;
          m_visited = vis;
          m_cons = cons;
          m_reenter = reenter;
          m_maxrun_eq = maxrun_eq;
        })
    occs;

  (* Candidate happens-before edges from combinational connectivity. *)
  let connected = ufsm_connectivity meta in
  let edges =
    List.concat_map
      (fun g0 ->
        List.filter_map
          (fun g1 ->
            if g0.label = g1.label then None
            else if
              List.exists
                (fun (u0, _) ->
                  List.exists (fun (u1, _) -> connected u0 u1) g1.members)
                g0.members
            then Some (g0.label, g1.label)
            else None)
          groups)
      groups
  in
  let edge_sigs =
    List.map
      (fun (l0, l1) ->
        let m0 = Hashtbl.find mons l0 and m1 = Hashtbl.find mons l1 in
        let e = reg ~name:(Printf.sprintf "mon_edge_%s__%s" l0 l1) ~width:1 () in
        let () =
          e
          <== mux frozen e
                (e |: (m0.m_prev_occ &: m1.m_occ_iuv &: ~:(m1.m_visited)))
        in
        ((l0, l1), e))
      edges
  in

  let gone_w = wire ~name:"mon_gone" 1 in
  let () = gone_w <== frozen in

  (* Occupancy of every unlabeled, non-idle state valuation (§V-B1): these
     are candidate PLs the designer did not name; the DUV-reachability stage
     is expected to prune them. *)
  let unlabeled_occs =
    List.concat_map
      (fun (u : Meta.ufsm) ->
        List.filter_map
          (fun v ->
            let labelled =
              List.exists (fun (s, _) -> Bitvec.equal s v) u.Meta.state_labels
            in
            let idle = List.exists (Bitvec.equal v) u.Meta.idle_states in
            if labelled || idle then None
            else
              Some (Meta.state_value meta u v, state_of_ufsm u ==: of_bv v, (u, v)))
          (Meta.all_state_valuations meta u))
      meta.Meta.ufsms
  in

  (* IUV fetch constraint: every IFR slot holding the IUV's PC carries the
     IUV's encoding. *)
  let enc = of_bv (Isa.encode iuv) in
  let iuv_assumes =
    List.map
      (fun (slot : Meta.ifr_slot) ->
        ~:(slot.Meta.ifr_valid &: (slot.Meta.ifr_pc ==: iuv_pc_c))
        |: (slot.Meta.ifr_word ==: enc))
      meta.Meta.ifrs
  in
  (* PC-as-IID uniqueness: once the IUV has committed, its PC slot must not
     be fetched again (post-exception replay would otherwise start a second
     dynamic instance under the same IID). *)
  let no_refetch =
    List.map
      (fun (slot : Meta.ifr_slot) ->
        ~:(slot.Meta.ifr_valid &: (slot.Meta.ifr_pc ==: iuv_pc_c) &: committed_s))
      meta.Meta.ifrs
  in
  let assumes = iuv_assumes @ no_refetch @ meta.Meta.extra_assumes in
  let checker =
    Mc.Checker.create ?cache ?cache_salt ?stimulus ?config
      ~sweep_barriers:(Meta.signals meta) ~semantic_cache ~assumes nl
  in
  {
    meta;
    iuv;
    iuv_pc;
    groups;
    mons;
    edges = edge_sigs;
    gone_s = gone_w;
    unlabeled_occs;
    assumes;
    checker;
  }
