(** Per-IUV verification harness.

    Given a design's metadata and an instruction under verification (IUV),
    [create] extends the netlist with the monitor state RTL2MµPATH's
    property templates need, then wraps it in a {!Mc.Checker.t}:

    - {b PL groups}: performing locations sharing a µHB row label are
      grouped (e.g. the four scoreboard entries' "scbIss" states form one
      group); occupancy signals are built per group, both for any
      instruction and for the IUV specifically (IIR = IUV's PC).
    - {b Visited flags}: sticky per-group IUV-visit flags, frozen once the
      IUV is {e gone} (committed and absent from every µFSM) — giving the
      end-of-execution evaluation point of the §V-B templates.
    - {b Revisit monitors}: consecutive-revisit and re-entry flags, plus
      maximum-consecutive-run counters for selected labels (§V-B6 mode (i)).
    - {b Edge flags}: for statically (combinationally) connected PL pairs,
      a flag recording a one-cycle first-entry happens-before observation
      (§V-B5).
    - {b IUV constraint}: an assumption pinning every IFR slot that carries
      the IUV's PC to the IUV's encoding.

    All monitors are materialized {e before} checker creation so that every
    later property is a conjunction of existing 1-bit literals. *)

type t

val pl_groups : Designs.Meta.t -> (string * (Designs.Meta.ufsm * Bitvec.t) list) list
(** The labelled PL groups of a design: non-idle µFSM states sharing a µHB
    row label, e.g. the four scoreboard entries' "scbIss" states. *)

val create :
  ?cache:Vcache.t ->
  ?cache_salt:string ->
  ?config:Mc.Checker.config ->
  ?stimulus:(Sim.t -> int -> unit) ->
  ?semantic_cache:bool ->
  ?revisit_count_labels:string list ->
  meta:Designs.Meta.t ->
  iuv:Isa.t ->
  iuv_pc:int ->
  unit ->
  t
(** [cache]/[cache_salt]/[semantic_cache] are forwarded to
    {!Mc.Checker.create}: the monitored netlist's digest (which covers the
    IUV pin, the PL monitors, and the revisit counters) keys the verdict
    store.  {!Designs.Meta.signals} is passed as the checker's sweep
    barriers, so an equivalence sweep ([config.sweep]) can never merge
    away an annotated signal. *)

val checker : t -> Mc.Checker.t
val meta : t -> Designs.Meta.t
val iuv : t -> Isa.t

val labels : t -> string list
(** All PL-group labels, in declaration order. *)

val occ_any : t -> string -> Hdl.Netlist.signal
(** Group occupied by some instruction this cycle. *)

val occ_iuv : t -> string -> Hdl.Netlist.signal
(** Group occupied by the IUV this cycle. *)

val prev_occ_iuv : t -> string -> Hdl.Netlist.signal
(** [occ_iuv] delayed one cycle — used to phrase [src ##1 dst] covers. *)

val visited : t -> string -> Hdl.Netlist.signal
val cons_flag : t -> string -> Hdl.Netlist.signal
(** The IUV occupied this group on two consecutive cycles at least once. *)

val reenter_flag : t -> string -> Hdl.Netlist.signal
(** The IUV re-entered this group after leaving it. *)

val gone : t -> Hdl.Netlist.signal
(** Sticky: the IUV committed and has left every µFSM. *)

val assumes : t -> Hdl.Netlist.signal list
(** Every per-cycle assumption the checker runs under (IUV encoding pin,
    PC-uniqueness, design environment constraints). *)

val edge_candidates : t -> (string * string) list
(** PL-group pairs combinationally connected in the netlist — the candidate
    happens-before edges of §V-B5. *)

val edge_flag : t -> string * string -> Hdl.Netlist.signal
(** Sticky: the IUV was in the first group one cycle before first entering
    the second. *)

val unlabeled_states : t -> (string * Hdl.Netlist.signal) list
(** Occupancy of every unlabeled non-idle µFSM state valuation — candidate
    PLs the DUV-reachability stage is expected to prune (§V-B1). *)

val unlabeled_state_info :
  t -> (string * Hdl.Netlist.signal * (Designs.Meta.ufsm * Bitvec.t)) list
(** Like {!unlabeled_states}, with the defining (µFSM, valuation) pair —
    what the static reachability pre-pass of {!Synth} keys its pruning on. *)

val maxrun_eq : t -> string -> int -> Hdl.Netlist.signal
(** 1-bit: the IUV's longest consecutive run in the group equals [n]
    (only for labels passed in [revisit_count_labels]; saturates at 15). *)

val max_run_limit : int
