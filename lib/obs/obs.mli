(** Structured tracing and metrics for the checker/synthesis stack.

    The paper's evaluation (§VIII, Table VII) is about {e where time goes} —
    property counts, checker runtimes, undetermined rates per instruction —
    so every layer of the reproduction (checker, verdict cache, synthesis
    stages, engine tasks, work pool) reports into this one registry:

    - {b spans}: nested timed regions on a monotonic clock, attributed to
      the recording domain and to ambient context (e.g. the per-task seed),
      kept in a fixed-capacity ring buffer and exportable as Chrome
      trace-event JSON ([chrome://tracing] / [ui.perfetto.dev]);
    - {b metrics}: named counters, gauges, and histograms with optional
      label sets, exportable as a flat JSON object and merged into
      [BENCH_results.json] and the engine report.

    The whole layer is {b off by default}.  Disabled, every entry point
    reduces to one atomic flag read and allocates nothing, so instrumented
    hot paths cost nothing measurable (bench P4 asserts this).  Nothing
    here feeds back into verdicts, RNG streams, or report digests: a run
    traces identically to an untraced one, bit for bit ({e the
    digest-exclusion rule} — observability fields never enter
    {!Synthlc.Engine.report_digest}). *)

val now_ns : unit -> int
(** Monotonic time in nanoseconds (arbitrary epoch).  Always live, even
    when the layer is disabled. *)

val enabled : unit -> bool
(** One atomic read — the guard instrumented call sites branch on. *)

val enable : ?capacity:int -> unit -> unit
(** Turn the layer on.  [capacity] bounds the event ring buffer (default
    65536 events); when it overflows, the oldest events are dropped and
    {!dropped_events} counts them.  Idempotent; re-enabling with a new
    [capacity] resizes an empty buffer only. *)

val disable : unit -> unit
(** Turn the layer off.  Recorded events and metrics are retained until
    {!reset}. *)

val reset : unit -> unit
(** Drop all recorded events and metric series (enabled state is kept). *)

(** {1 Spans and events} *)

type event = {
  ev_name : string;
  ev_ts_ns : int;  (** Start, {!now_ns} clock. *)
  ev_dur_ns : int;  (** Duration; [0] for instant events. *)
  ev_tid : int;  (** Recording domain's id. *)
  ev_args : (string * string) list;
}

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f ()] and records one event (on completion,
    even if [f] raises).  Nesting is by timestamps within a domain, the
    Chrome trace-event convention.  Ambient {!with_ctx} pairs are appended
    to [args].  Disabled: exactly [f ()]. *)

val instant : ?args:(string * string) list -> string -> unit
(** Record a zero-duration event (e.g. a cache-corruption sighting). *)

val with_ctx : (string * string) list -> (unit -> 'a) -> 'a
(** Push ambient key/value pairs for the dynamic extent of the callback in
    {e this domain} — every span recorded inside carries them.  Used for
    task-seed and instruction attribution across layers that do not know
    about each other. *)

val events : unit -> event list
(** Buffered events, oldest first. *)

val dropped_events : unit -> int
(** Events evicted from the ring since the last {!reset}. *)

(** {1 Metrics} *)

module Metrics : sig
  (** A registry of named series.  A series is [(name, labels)]; labels
      render into the exported name as [name{k=v,...}] (sorted by key).
      All updates are cheap and domain-safe (one mutex).  Every update is
      a no-op while the layer is disabled. *)

  val incr : ?labels:(string * string) list -> ?by:int -> string -> unit
  (** Counter increment (default [by:1]). *)

  val gauge : ?labels:(string * string) list -> string -> float -> unit
  (** Set a gauge to its latest value. *)

  val observe : ?labels:(string * string) list -> string -> float -> unit
  (** Histogram observation; the series exports [.count], [.sum],
      [.mean], [.min], and [.max] components. *)

  val get : string -> float option
  (** Look one exported series component up by its rendered name. *)

  val snapshot : unit -> (string * float) list
  (** Every exported series component, sorted by name.  Counters and
      gauges export one component under their rendered name; histograms
      export five (see {!observe}). *)
end

(** {1 Export} *)

val chrome_trace : unit -> string
(** The buffered events as Chrome trace-event JSON: an object with a
    [traceEvents] array of ["ph": "X"] (complete) events — [ts]/[dur] in
    microseconds, [tid] the recording domain — plus process metadata.
    Loadable by [chrome://tracing] and Perfetto. *)

val write_chrome_trace : string -> unit
(** {!chrome_trace} to a file. *)

val metrics_json : unit -> string
(** {!Metrics.snapshot} as one flat JSON object, keys sorted. *)

val write_metrics_json : string -> unit
(** {!metrics_json} to a file. *)
