/* Monotonic clock for the observability layer.  CLOCK_MONOTONIC where the
   platform has it (Linux/macOS), gettimeofday otherwise — span durations
   must never go backwards under NTP slew, which wall-clock time can. */

#include <caml/mlvalues.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value obs_monotonic_ns(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  {
    struct timespec ts;
    if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
      return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
  }
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return Val_long((intnat)tv.tv_sec * 1000000000 + (intnat)tv.tv_usec * 1000);
  }
}
