(* Structured tracing + metrics registry.  See obs.mli for the contract;
   the implementation notes that matter:

   - [enabled] is one Atomic flag; every public entry point checks it
     first and returns without allocating when the layer is off.
   - Events live in a mutex-protected circular buffer (observability must
     never abort a run, so overflow evicts the oldest event instead of
     growing).  Recording happens at span *completion*, so buffer order is
     end-time order; Chrome trace viewers sort by [ts] themselves.
   - Ambient context is per-domain (Domain.DLS): worker domains inherit
     nothing from their spawner, which is exactly right — the engine
     re-establishes task attribution inside each task. *)

external now_ns : unit -> int = "obs_monotonic_ns" [@@noalloc]

type event = {
  ev_name : string;
  ev_ts_ns : int;
  ev_dur_ns : int;
  ev_tid : int;
  ev_args : (string * string) list;
}

let dummy_event = { ev_name = ""; ev_ts_ns = 0; ev_dur_ns = 0; ev_tid = 0; ev_args = [] }

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* --- event ring --------------------------------------------------------- *)

let default_capacity = 65536
let ring : event array ref = ref [||]
let ring_start = ref 0
let ring_len = ref 0
let dropped = ref 0

let push ev =
  locked (fun () ->
      let cap = Array.length !ring in
      if cap = 0 then ()
      else if !ring_len < cap then begin
        !ring.((!ring_start + !ring_len) mod cap) <- ev;
        incr ring_len
      end
      else begin
        !ring.(!ring_start) <- ev;
        ring_start := (!ring_start + 1) mod cap;
        incr dropped
      end)

let events () =
  locked (fun () ->
      let cap = Array.length !ring in
      List.init !ring_len (fun i -> !ring.((!ring_start + i) mod cap)))

let dropped_events () = locked (fun () -> !dropped)

(* --- metrics ------------------------------------------------------------ *)

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type series = Counter of int ref | Gauge of float ref | Hist of hist

let metrics : (string, series) Hashtbl.t = Hashtbl.create 64

let render_name name labels =
  match labels with
  | [] -> name
  | _ ->
    let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
    name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let series_of key mk =
  locked (fun () ->
      match Hashtbl.find_opt metrics key with
      | Some s -> s
      | None ->
        let s = mk () in
        Hashtbl.replace metrics key s;
        s)

module Metrics = struct
  let incr ?(labels = []) ?(by = 1) name =
    if enabled () then
      match series_of (render_name name labels) (fun () -> Counter (ref 0)) with
      | Counter r -> locked (fun () -> r := !r + by)
      | Gauge _ | Hist _ -> ()

  let gauge ?(labels = []) name v =
    if enabled () then
      match series_of (render_name name labels) (fun () -> Gauge (ref 0.)) with
      | Gauge r -> locked (fun () -> r := v)
      | Counter _ | Hist _ -> ()

  let observe ?(labels = []) name v =
    if enabled () then
      match
        series_of (render_name name labels) (fun () ->
            Hist { h_count = 0; h_sum = 0.; h_min = infinity; h_max = neg_infinity })
      with
      | Hist h ->
        locked (fun () ->
            h.h_count <- h.h_count + 1;
            h.h_sum <- h.h_sum +. v;
            if v < h.h_min then h.h_min <- v;
            if v > h.h_max then h.h_max <- v)
      | Counter _ | Gauge _ -> ()

  let snapshot () =
    let rows =
      locked (fun () ->
          Hashtbl.fold
            (fun key s acc ->
              match s with
              | Counter r -> (key, float_of_int !r) :: acc
              | Gauge r -> (key, !r) :: acc
              | Hist h ->
                if h.h_count = 0 then acc
                else
                  (key ^ ".count", float_of_int h.h_count)
                  :: (key ^ ".sum", h.h_sum)
                  :: (key ^ ".mean", h.h_sum /. float_of_int h.h_count)
                  :: (key ^ ".min", h.h_min)
                  :: (key ^ ".max", h.h_max)
                  :: acc)
            metrics [])
    in
    List.sort (fun (a, _) (b, _) -> String.compare a b) rows

  let get name = List.assoc_opt name (snapshot ())
end

(* --- lifecycle ---------------------------------------------------------- *)

let enable ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  locked (fun () ->
      if Array.length !ring <> capacity && !ring_len = 0 then
        ring := Array.make capacity dummy_event
      else if Array.length !ring = 0 then ring := Array.make capacity dummy_event);
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let reset () =
  locked (fun () ->
      ring_start := 0;
      ring_len := 0;
      dropped := 0;
      Array.fill !ring 0 (Array.length !ring) dummy_event;
      Hashtbl.reset metrics)

(* --- ambient context + spans -------------------------------------------- *)

let ctx_key : (string * string) list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let with_ctx pairs f =
  if not (enabled ()) then f ()
  else begin
    let saved = Domain.DLS.get ctx_key in
    Domain.DLS.set ctx_key (saved @ pairs);
    Fun.protect ~finally:(fun () -> Domain.DLS.set ctx_key saved) f
  end

let tid () = (Domain.self () :> int)

let record name t0 dur args =
  push
    {
      ev_name = name;
      ev_ts_ns = t0;
      ev_dur_ns = dur;
      ev_tid = tid ();
      ev_args = (match Domain.DLS.get ctx_key with [] -> args | ctx -> args @ ctx);
    }

let with_span ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = now_ns () in
    Fun.protect ~finally:(fun () -> record name t0 (now_ns () - t0) args) f
  end

let instant ?(args = []) name =
  if enabled () then record name (now_ns ()) 0 args

(* --- export ------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Finite-by-construction floats (counters, sums of finite observations);
   %.17g round-trips and never prints nan/inf for these. *)
let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let chrome_trace () =
  let evs = events () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  Buffer.add_string buf
    "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"synthlc\"}}";
  List.iter
    (fun e ->
      Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"synthlc\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d"
           (json_escape e.ev_name)
           (float_of_int e.ev_ts_ns /. 1000.)
           (float_of_int e.ev_dur_ns /. 1000.)
           e.ev_tid);
      (match e.ev_args with
      | [] -> ()
      | args ->
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          args;
        Buffer.add_char buf '}');
      Buffer.add_char buf '}')
    evs;
  Buffer.add_string buf
    (Printf.sprintf "\n],\"displayTimeUnit\":\"ms\",\"droppedEvents\":%d}\n"
       (dropped_events ()));
  Buffer.contents buf

let metrics_json () =
  let rows = Metrics.snapshot () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n  \"%s\": %s" (json_escape k) (json_float v)))
    rows;
  Buffer.add_string buf (if rows = [] then "}\n" else "\n}\n");
  Buffer.contents buf

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let write_chrome_trace path = write_file path (chrome_trace ())
let write_metrics_json path = write_file path (metrics_json ())
