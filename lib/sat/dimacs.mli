(** DIMACS CNF import/export for the SAT solver — interoperability with
    external solvers and test corpora. *)

val parse : string -> (int * int list list, string) result
(** Parse DIMACS CNF text into (variable count, clauses), clauses as lists
    of nonzero literals (positive/negative integers, 1-based). *)

val to_string : nvars:int -> int list list -> string
(** Render clauses (same convention) as DIMACS CNF. *)

val of_solver : Solver.t -> string
(** Render a solver's current clause set ({!Solver.export_clauses}) as
    DIMACS CNF — offline debugging of an unrolling with external tools. *)

val load : Solver.t -> string -> (unit, string) result
(** Parse and add every clause to the solver, allocating variables as
    needed (solver variables are 0-based: DIMACS var k maps to k-1). *)
