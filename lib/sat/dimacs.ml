let parse text =
  let lines = String.split_on_char '\n' text in
  let clauses = ref [] in
  let nvars = ref 0 in
  let err = ref None in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if String.length line > 1 && line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; _nc ] -> (
          match int_of_string_opt nv with
          | Some n -> nvars := n
          | None -> err := Some ("bad problem line: " ^ line))
        | _ -> err := Some ("bad problem line: " ^ line)
      end
      else begin
        let toks =
          String.split_on_char ' ' line
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (( <> ) "")
        in
        let lits = ref [] in
        List.iter
          (fun t ->
            match int_of_string_opt t with
            | Some 0 ->
              clauses := List.rev !lits :: !clauses;
              lits := []
            | Some l ->
              nvars := max !nvars (abs l);
              lits := l :: !lits
            | None -> err := Some ("bad literal: " ^ t))
          toks;
        if !lits <> [] then begin
          (* clause continued without terminating 0 on this line: keep the
             strict reading and reject *)
          err := Some "clause not terminated by 0"
        end
      end)
    lines;
  match !err with
  | Some e -> Error e
  | None -> Ok (!nvars, List.rev !clauses)

let to_string ~nvars clauses =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun c ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) c;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let of_solver s = to_string ~nvars:(Solver.nvars s) (Solver.export_clauses s)

let load s text =
  match parse text with
  | Error e -> Error e
  | Ok (nvars, clauses) ->
    while Solver.nvars s < nvars do
      ignore (Solver.new_var s)
    done;
    List.iter
      (fun c ->
        Solver.add_clause s
          (List.map
             (fun l ->
               if l > 0 then Solver.pos (l - 1) else Solver.neg_of_var (-l - 1))
             c))
      clauses;
    Ok ()
