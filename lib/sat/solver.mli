(** A CDCL SAT solver.

    Implements conflict-driven clause learning with two-watched literals,
    first-UIP learning, VSIDS-style activity ordering, Luby restarts, and
    phase saving.  Supports incremental solving under assumptions and a
    conflict budget that yields {!Unknown} when exhausted — the mechanism
    the model checker uses to produce the paper's [undetermined] outcomes.

    Learnt clauses carry an LBD ("glue") score and the database is
    periodically halved by {!reduce_db} once it outgrows a geometrically
    growing limit, keeping binary, glue and locked clauses.  A
    canonical-authoritative portfolio mode ({!solve_portfolio}) races
    diversified solver clones that exchange small learnt clauses without
    perturbing the canonical verdict or model. *)

type t

type lit = int
(** A literal: variable [v] (0-based) appears positively as [2*v] and
    negatively as [2*v+1]. *)

val pos : int -> lit
(** [pos v] is the positive literal of variable [v]. *)

val neg_of_var : int -> lit
(** [neg_of_var v] is the negative literal of variable [v]. *)

val negate : lit -> lit
val var_of : lit -> int
val is_pos : lit -> bool

type result =
  | Sat
  | Unsat
  | Unknown (** Conflict budget exhausted (or a portfolio racer cancelled). *)

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its index. *)

val nvars : t -> int

val add_clause : t -> lit list -> unit
(** Add a clause.  Adding the empty clause (or a clause that simplifies to
    it) makes the instance permanently unsatisfiable.  Clauses added after a
    [Sat] result do not invalidate the stored model ({!value} still reads
    the model of the last [solve]); they take effect at the next [solve]. *)

val solve : ?assumptions:lit list -> ?max_conflicts:int -> t -> result
(** Solve under the given assumptions.  [max_conflicts] bounds the search;
    when exceeded the result is [Unknown].  The solver can be reused after
    any outcome; learned clauses persist (subject to {!reduce_db}). *)

val value : t -> int -> bool
(** [value s v] is the value of variable [v] in the most recent [Sat] model.
    Variables never touched by the search default to [false].

    @raise Invalid_argument if the last [solve] did not return [Sat] (there
    is no model to read — previously this silently returned stale phase). *)

val lit_value : t -> lit -> bool
(** Literal counterpart of {!value}; same precondition. *)

val has_model : t -> bool
(** [true] iff the last [solve] returned [Sat], i.e. {!value}/{!lit_value}
    may be read. *)

(** {2 Learnt-clause database management} *)

val reduce_db : t -> unit
(** Halve the learnt-clause database: binary clauses, glue clauses
    (LBD <= 2) and locked clauses (currently acting as a propagation
    reason) are kept unconditionally; the rest are ranked by activity then
    LBD and the worse half deleted.  Runs automatically during [solve]
    whenever the learnt count reaches the (geometrically growing) limit;
    callable manually between solves. *)

val set_reduce_db : t -> bool -> unit
(** Enable/disable automatic database reduction (default: enabled). *)

val learnt_limit : t -> int
(** Current reduce trigger: when the learnt count reaches this, [solve]
    calls {!reduce_db} and grows the limit by 3/2. *)

val set_learnt_limit : t -> int -> unit
(** Override the reduce trigger (clamped to >= 1).  Mainly for tests. *)

val num_learnts : t -> int
(** Learnt clauses currently in the database. *)

val num_reduces : t -> int
(** Number of {!reduce_db} events that actually deleted clauses. *)

val learnt_peak : t -> int
(** High-water mark of {!num_learnts}. *)

(** {2 Statistics} *)

val num_conflicts : t -> int
(** Total conflicts across all [solve] calls — used for benchmarking. *)

val num_decisions : t -> int
val num_propagations : t -> int

(** {2 CNF export} *)

val export_clauses : t -> int list list
(** The solver's current clause set in DIMACS convention (variable [v] is
    [v+1], negation is integer negation): the clause arena plus the level-0
    unit assignments (unit clauses never enter the arena).  Returns [[[]]]
    (the empty clause) if the instance is known unsatisfiable.  Call
    between [solve]s. *)

(** {2 Portfolio solving} *)

val clone : t -> t
(** Deep copy of a quiescent solver (every [solve] returns at decision
    level 0).  The clone shares no mutable state with the original; its
    per-solve statistics start at zero and exchange hooks are cleared. *)

val diversify : seed:int -> t -> unit
(** Deterministically scramble saved phases and the restart schedule so
    portfolio clones explore the search space in different orders.  Does
    not affect soundness or the clause set. *)

type portfolio_result = {
  p_result : result;  (** The canonical solver's verdict. *)
  p_domains : int;  (** Configurations raced (including the canonical). *)
  p_first : int;
      (** Who finished decisively first: [-1] the canonical solver, [i >= 0]
          racer [i].  Informational only. *)
  p_racer_decisive : int;  (** Racers that returned [Sat]/[Unsat]. *)
  p_shared : int;  (** Clauses posted to the exchange. *)
  p_imported : int;  (** Clause imports across all racers. *)
  p_agree : bool;  (** Decisive racers agreed with the canonical verdict. *)
}

val solve_portfolio :
  ?assumptions:lit list ->
  ?max_conflicts:int ->
  ?share_lbd:int ->
  ?pool:Pool.t ->
  domains:int ->
  t ->
  portfolio_result
(** [solve_portfolio ~domains:k s] races [k] solver configurations on the
    same query: the canonical solver [s] runs the exact sequential search
    (same clause DB trajectory, no imports, never cancelled) and [k-1]
    diversified clones race each other, exchanging learnt clauses with
    LBD <= [share_lbd] (default 6) through a mutex-protected exchange.
    The canonical verdict/model is always the one returned, so results are
    bit-identical to [solve] — racers only provide cross-checking and,
    on multi-core hosts, early wall-clock verdicts for future use.  The
    canonical solver finishing cancels the racers.

    With [~pool], thunks run on the given pool (the canonical thunk is
    submitted first, so a sequential [jobs=1] pool runs it to completion
    before any racer starts); otherwise a transient pool of [domains] jobs
    is used.  [domains <= 1] degenerates to plain [solve].

    @raise Failure if a decisive racer contradicts a decisive canonical
    verdict — that would mean a soundness bug in clause sharing. *)
