type lit = int

let pos v = 2 * v
let neg_of_var v = (2 * v) + 1
let negate l = l lxor 1
let var_of l = l lsr 1
let is_pos l = l land 1 = 0

type result = Sat | Unsat | Unknown

(* Growable int-array vector used for watch lists and the clause arena. *)
module Vec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 4 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let data = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let len v = v.len
  let shrink v n = v.len <- n
  let copy v = { data = Array.copy v.data; len = v.len }
end

type clause = {
  lits : int array;
  mutable activity : float;
  learnt : bool;
  mutable lbd : int;
      (* Literal block distance at learning time: the number of distinct
         decision levels among the clause's literals — the Glucose "glue"
         quality metric.  0 for problem clauses. *)
}

type t = {
  mutable clauses : clause array; (* arena; index = clause id *)
  mutable nclauses : int;
  mutable n_learnt : int; (* learnt clauses currently in the arena *)
  mutable watches : Vec.t array; (* per literal *)
  mutable assigns : int array; (* per var: 0 undef, 1 true, 2 false *)
  mutable level : int array;
  mutable reason : int array; (* clause id or -1 *)
  mutable phase : bool array;
  mutable activity : float array;
  mutable heap : int array; (* binary max-heap of vars by activity *)
  mutable heap_pos : int array; (* -1 when not in heap *)
  mutable heap_len : int;
  mutable trail : Vec.t;
  mutable trail_lim : Vec.t;
  mutable qhead : int;
  mutable nvars : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool; (* false once the empty clause was derived *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable learnt_limit : int; (* reduce_db trigger; grows geometrically *)
  mutable reduce_enabled : bool;
  mutable reduces : int; (* reduce_db events *)
  mutable learnt_peak : int; (* high-water mark of n_learnt *)
  mutable has_model : bool; (* last solve ended Sat and no solve undid it *)
  mutable restart_base : int; (* Luby unit (conflicts); portfolio diversity *)
  mutable stop_check : (unit -> bool) option;
      (* Cooperative cancellation for portfolio racers: polled once per
         search iteration; [true] aborts the solve with [Unknown]. *)
  mutable share_out : (int array -> int -> unit) option;
      (* Called with (copy of learnt clause, lbd) on every learn. *)
  mutable share_in : (unit -> int array list) option;
      (* Polled at restarts; returned clauses are imported at level 0. *)
  mutable seen : Vec.t; (* scratch for analyze: vars marked *)
  mutable seen_arr : bool array; (* persistent analyze marks, cleared via seen *)
  mutable lbd_seen : int array; (* per-level stamps for LBD computation *)
  mutable lbd_stamp : int;
}

let create () =
  {
    clauses = Array.make 16 { lits = [||]; activity = 0.; learnt = false; lbd = 0 };
    nclauses = 0;
    n_learnt = 0;
    watches = Array.init 16 (fun _ -> Vec.create ());
    assigns = Array.make 8 0;
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    phase = Array.make 8 false;
    activity = Array.make 8 0.;
    heap = Array.make 8 0;
    heap_pos = Array.make 8 (-1);
    heap_len = 0;
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    nvars = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    learnt_limit = 4096;
    reduce_enabled = true;
    reduces = 0;
    learnt_peak = 0;
    has_model = false;
    restart_base = 100;
    stop_check = None;
    share_out = None;
    share_in = None;
    seen = Vec.create ();
    seen_arr = Array.make 8 false;
    lbd_seen = Array.make 8 0;
    lbd_stamp = 0;
  }

let nvars s = s.nvars
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations
let num_learnts s = s.n_learnt
let num_reduces s = s.reduces
let learnt_peak s = s.learnt_peak
let learnt_limit s = s.learnt_limit
let set_learnt_limit s n = s.learnt_limit <- max 1 n
let set_reduce_db s b = s.reduce_enabled <- b
let has_model s = s.has_model

let grow_arrays s n =
  let cap = Array.length s.assigns in
  if n > cap then begin
    let newcap = max n (2 * cap) in
    let copy_int a def =
      let a' = Array.make newcap def in
      Array.blit a 0 a' 0 cap; a'
    in
    let copy_float a =
      let a' = Array.make newcap 0. in
      Array.blit a 0 a' 0 cap; a'
    in
    let copy_bool a =
      let a' = Array.make newcap false in
      Array.blit a 0 a' 0 cap; a'
    in
    s.assigns <- copy_int s.assigns 0;
    s.level <- copy_int s.level 0;
    s.reason <- copy_int s.reason (-1);
    s.phase <- copy_bool s.phase;
    s.activity <- copy_float s.activity;
    s.heap <- copy_int s.heap 0;
    s.seen_arr <- copy_bool s.seen_arr;
    s.lbd_seen <- copy_int s.lbd_seen 0;
    let hp = Array.make newcap (-1) in
    Array.blit s.heap_pos 0 hp 0 cap;
    s.heap_pos <- hp
  end;
  let wcap = Array.length s.watches in
  if 2 * n > wcap then begin
    let w =
      Array.init (max (2 * n) (2 * wcap)) (fun i ->
          if i < wcap then s.watches.(i) else Vec.create ())
    in
    s.watches <- w
  end

(* --- activity heap --------------------------------------------------- *)

let heap_swap s i j =
  let vi = s.heap.(i) and vj = s.heap.(j) in
  s.heap.(i) <- vj;
  s.heap.(j) <- vi;
  s.heap_pos.(vi) <- j;
  s.heap_pos.(vj) <- i

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if s.activity.(s.heap.(i)) > s.activity.(s.heap.(p)) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_len && s.activity.(s.heap.(l)) > s.activity.(s.heap.(!best))
  then best := l;
  if r < s.heap_len && s.activity.(s.heap.(r)) > s.activity.(s.heap.(!best))
  then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_len) <- v;
    s.heap_pos.(v) <- s.heap_len;
    s.heap_len <- s.heap_len + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_len <- s.heap_len - 1;
  if s.heap_len > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_len);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  s.heap_pos.(v) <- -1;
  v

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  grow_arrays s s.nvars;
  s.assigns.(v) <- 0;
  s.level.(v) <- 0;
  s.reason.(v) <- -1;
  s.phase.(v) <- false;
  s.activity.(v) <- 0.;
  heap_insert s v;
  v

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let bump_clause s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    for i = 0 to s.nclauses - 1 do
      let ci = s.clauses.(i) in
      if ci.learnt then ci.activity <- ci.activity *. 1e-20
    done;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

(* --- assignment ------------------------------------------------------ *)

let lit_val s l =
  (* 0 undef, 1 true, 2 false for the literal *)
  let a = s.assigns.(var_of l) in
  if a = 0 then 0
  else if (a = 1) = is_pos l then 1
  else 2

let decision_level s = Vec.len s.trail_lim

let enqueue s l reason =
  s.assigns.(var_of l) <- (if is_pos l then 1 else 2);
  s.level.(var_of l) <- decision_level s;
  s.reason.(var_of l) <- reason;
  s.phase.(var_of l) <- is_pos l;
  Vec.push s.trail l

let add_clause_internal s lits learnt lbd =
  let c = { lits; activity = 0.; learnt; lbd } in
  if s.nclauses = Array.length s.clauses then begin
    let a = Array.make (2 * s.nclauses) c in
    Array.blit s.clauses 0 a 0 s.nclauses;
    s.clauses <- a
  end;
  let id = s.nclauses in
  s.clauses.(id) <- c;
  s.nclauses <- id + 1;
  if learnt then begin
    s.n_learnt <- s.n_learnt + 1;
    if s.n_learnt > s.learnt_peak then s.learnt_peak <- s.n_learnt
  end;
  Vec.push s.watches.(negate lits.(0)) id;
  Vec.push s.watches.(negate lits.(1)) id;
  id

(* Simplify a clause against the level-0 assignment and add it.  [learnt]
   clauses carry an [lbd] and are eligible for [reduce_db]; problem clauses
   are permanent. *)
let add_simplified s lits ~learnt ~lbd =
  if s.ok then begin
    (* Simplify: drop duplicates and false lits at level 0; detect tautology. *)
    let lits = List.sort_uniq Int.compare lits in
    let taut = List.exists (fun l -> List.mem (negate l) lits) lits in
    if not taut then begin
      let lits =
        List.filter (fun l -> not (decision_level s = 0 && lit_val s l = 2)) lits
      in
      if List.exists (fun l -> decision_level s = 0 && lit_val s l = 1) lits
      then ()
      else
        match lits with
        | [] -> s.ok <- false
        | [ l ] ->
          if lit_val s l = 2 then s.ok <- false
          else if lit_val s l = 0 then enqueue s l (-1)
        | _ ->
          let arr = Array.of_list lits in
          ignore (add_clause_internal s arr learnt lbd)
    end
  end

let add_clause s lits = add_simplified s lits ~learnt:false ~lbd:0

(* --- propagation ------------------------------------------------------ *)

exception Conflict of int

(* Propagate all enqueued literals.  Returns the conflicting clause id, or
   -1 when no conflict arises. *)
let propagate s =
  try
    while s.qhead < Vec.len s.trail do
      let l = Vec.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      let ws = s.watches.(l) in
      let n = Vec.len ws in
      let j = ref 0 in
      (let i = ref 0 in
       while !i < n do
         let cid = Vec.get ws !i in
         incr i;
         let c = s.clauses.(cid).lits in
         (* Ensure the false literal (negate l) is at position 1. *)
         if c.(0) = negate l then begin
           c.(0) <- c.(1);
           c.(1) <- negate l
         end;
         if lit_val s c.(0) = 1 then begin
           (* Clause already satisfied; keep the watch. *)
           Vec.set ws !j cid;
           incr j
         end
         else begin
           (* Look for a new literal to watch. *)
           let found = ref false in
           let k = ref 2 in
           let len = Array.length c in
           while (not !found) && !k < len do
             if lit_val s c.(!k) <> 2 then begin
               c.(1) <- c.(!k);
               c.(!k) <- negate l;
               Vec.push s.watches.(negate c.(1)) cid;
               found := true
             end;
             incr k
           done;
           if not !found then begin
             (* Unit or conflicting. *)
             Vec.set ws !j cid;
             incr j;
             if lit_val s c.(0) = 2 then begin
               (* Conflict: copy remaining watches and bail out. *)
               while !i < n do
                 Vec.set ws !j (Vec.get ws !i);
                 incr j;
                 incr i
               done;
               Vec.shrink ws !j;
               s.qhead <- Vec.len s.trail;
               raise (Conflict cid)
             end
             else enqueue s c.(0) cid
           end
         end
       done;
       Vec.shrink ws !j)
    done;
    -1
  with Conflict cid -> cid

(* --- conflict analysis ------------------------------------------------ *)

let analyze s confl =
  (* Marks live in the persistent [seen_arr]; every var marked is recorded
     in the [seen] vec and cleared before returning, so no per-conflict
     allocation happens on this path. *)
  let seen = s.seen_arr in
  Vec.shrink s.seen 0;
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  (* -1 means "take all literals of the conflict clause" *)
  let cid = ref confl in
  let idx = ref (Vec.len s.trail - 1) in
  let btlevel = ref 0 in
  let continue = ref true in
  while !continue do
    let c = s.clauses.(!cid) in
    if c.learnt then bump_clause s c;
    let lits = c.lits in
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length lits - 1 do
      let q = lits.(k) in
      let v = var_of q in
      if (not seen.(v)) && s.level.(v) > 0 then begin
        seen.(v) <- true;
        Vec.push s.seen v;
        bump_var s v;
        if s.level.(v) = decision_level s then incr counter
        else begin
          learnt := q :: !learnt;
          if s.level.(v) > !btlevel then btlevel := s.level.(v)
        end
      end
    done;
    (* Find the next marked literal on the trail. *)
    let rec next () =
      let l = Vec.get s.trail !idx in
      decr idx;
      if seen.(var_of l) then l else next ()
    in
    let l = next () in
    p := l;
    seen.(var_of l) <- false;
    decr counter;
    if !counter = 0 then continue := false
    else cid := s.reason.(var_of l)
  done;
  (* Clear the remaining marks (the UIP-path vars were already unset). *)
  for i = 0 to Vec.len s.seen - 1 do
    seen.(Vec.get s.seen i) <- false
  done;
  (negate !p :: !learnt, !btlevel)

(* LBD (glue) of a learnt clause: the number of distinct decision levels
   among its literals, computed before backjumping (levels still valid).
   Stamp-based so repeated calls cost O(|clause|) with no allocation. *)
let compute_lbd s lits =
  s.lbd_stamp <- s.lbd_stamp + 1;
  let stamp = s.lbd_stamp in
  let n = ref 0 in
  List.iter
    (fun l ->
      let lv = s.level.(var_of l) in
      if lv > 0 && s.lbd_seen.(lv) <> stamp then begin
        s.lbd_seen.(lv) <- stamp;
        incr n
      end)
    lits;
  max 1 !n

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.len s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = var_of l in
      s.assigns.(v) <- 0;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- Vec.len s.trail
  end

(* --- learnt-clause DB reduction ---------------------------------------- *)

(* A clause is locked while it is the reason for a current assignment; its
   implied literal sits at position 0 for as long as the assignment stands
   (propagation only repositions false literals), so the check is O(1). *)
let locked s cid =
  let c = s.clauses.(cid) in
  Array.length c.lits > 0
  &&
  let v = var_of c.lits.(0) in
  s.assigns.(v) <> 0 && s.reason.(v) = cid

(* Halve the learnt-clause DB, keeping binary clauses, glue clauses
   (lbd <= 2), and locked clauses unconditionally; the rest are ranked by
   (activity, lbd, id) and the worse half deleted.  The arena is compacted
   in place: reasons are remapped through the old->new id map and every
   watch list is rebuilt with the surviving clauses' current watch
   positions, which restores the exact pre-reduction watch structure minus
   the deleted clauses.  Callable at any propagation fixpoint. *)
let reduce_db s =
  let removable = ref [] in
  for cid = 0 to s.nclauses - 1 do
    let c = s.clauses.(cid) in
    if c.learnt && Array.length c.lits > 2 && c.lbd > 2 && not (locked s cid)
    then removable := cid :: !removable
  done;
  let arr = Array.of_list !removable in
  (* Worst first: lowest activity, then highest lbd, then lowest id — a
     total order, so reduction is deterministic. *)
  Array.sort
    (fun a b ->
      let ca = s.clauses.(a) and cb = s.clauses.(b) in
      let c = compare ca.activity cb.activity in
      if c <> 0 then c
      else
        let c = compare cb.lbd ca.lbd in
        if c <> 0 then c else compare a b)
    arr;
  let ndrop = Array.length arr / 2 in
  if ndrop > 0 then begin
    let drop = Array.make s.nclauses false in
    for i = 0 to ndrop - 1 do
      drop.(arr.(i)) <- true
    done;
    let map = Array.make s.nclauses (-1) in
    let j = ref 0 in
    for cid = 0 to s.nclauses - 1 do
      if not drop.(cid) then begin
        map.(cid) <- !j;
        s.clauses.(!j) <- s.clauses.(cid);
        incr j
      end
    done;
    s.nclauses <- !j;
    s.n_learnt <- s.n_learnt - ndrop;
    for v = 0 to s.nvars - 1 do
      if s.reason.(v) >= 0 then s.reason.(v) <- map.(s.reason.(v))
    done;
    Array.iter (fun w -> Vec.shrink w 0) s.watches;
    for cid = 0 to s.nclauses - 1 do
      let lits = s.clauses.(cid).lits in
      Vec.push s.watches.(negate lits.(0)) cid;
      Vec.push s.watches.(negate lits.(1)) cid
    done;
    s.reduces <- s.reduces + 1
  end

(* --- search ------------------------------------------------------------ *)

let pick_branch s =
  let rec go () =
    if s.heap_len = 0 then -1
    else
      let v = heap_pop s in
      if s.assigns.(v) = 0 then v else go ()
  in
  go ()

let luby i =
  (* Luby sequence: 1 1 2 1 1 2 4 ... *)
  let rec go k i =
    if i = (1 lsl k) - 1 then 1 lsl (k - 1)
    else if i < (1 lsl (k - 1)) - 1 then go (k - 1) i
    else go (k - 1) (i - ((1 lsl (k - 1)) - 1))
  in
  let rec size k = if i < (1 lsl k) - 1 then k else size (k + 1) in
  go (size 1) i

let solve ?(assumptions = []) ?(max_conflicts = max_int) s =
  s.has_model <- false;
  if not s.ok then Unsat
  else begin
    let assumps = Array.of_list assumptions in
    let start_conflicts = s.conflicts in
    let result = ref None in
    let restart_idx = ref 0 in
    let conflicts_this_restart = ref 0 in
    let restart_limit = ref (s.restart_base * luby 1) in
    (* Scale the reduce trigger with the problem: a big unrolling earns a
       proportionally larger learnt DB before the first reduction. *)
    if s.reduce_enabled then
      s.learnt_limit <- max s.learnt_limit ((s.nclauses - s.n_learnt) / 2);
    (match propagate s with
    | -1 -> ()
    | _ -> begin s.ok <- false; result := Some Unsat end);
    while !result = None do
      (match s.stop_check with
      | Some f when f () -> result := Some Unknown
      | _ -> ());
      if !result <> None then ()
      else begin
      let confl = propagate s in
      if confl >= 0 then begin
        s.conflicts <- s.conflicts + 1;
        incr conflicts_this_restart;
        if decision_level s = 0 then begin
          s.ok <- false;
          result := Some Unsat
        end
        else if s.conflicts - start_conflicts > max_conflicts then
          result := Some Unknown
        else begin
          let learnt, btlevel = analyze s confl in
          let lbd = compute_lbd s learnt in
          cancel_until s btlevel;
          (match learnt with
          | [] -> begin s.ok <- false; result := Some Unsat end
          | [ l ] -> enqueue s l (-1)
          | l :: _ ->
            let arr = Array.of_list learnt in
            (* Position a literal of btlevel at index 1 for correct watching. *)
            let pos1 = ref 1 in
            for k = 1 to Array.length arr - 1 do
              if s.level.(var_of arr.(k)) > s.level.(var_of arr.(!pos1)) then
                pos1 := k
            done;
            let tmp = arr.(1) in
            arr.(1) <- arr.(!pos1);
            arr.(!pos1) <- tmp;
            let id = add_clause_internal s arr true lbd in
            enqueue s l id);
          (match s.share_out with
          | Some f -> f (Array.of_list learnt) lbd
          | None -> ());
          s.var_inc <- s.var_inc /. 0.95;
          s.cla_inc <- s.cla_inc /. 0.999
        end
      end
      else if s.reduce_enabled && s.n_learnt >= s.learnt_limit then begin
        (* Propagation fixpoint: safe to halve the learnt DB in place.  The
           limit grows geometrically so reductions get rarer as the search
           earns its keepers. *)
        reduce_db s;
        s.learnt_limit <- s.learnt_limit + max 1 (s.learnt_limit / 2)
      end
      else if
        !conflicts_this_restart >= !restart_limit && decision_level s > Array.length assumps
      then begin
        (* Restart, keeping the assumption prefix. *)
        conflicts_this_restart := 0;
        incr restart_idx;
        restart_limit := s.restart_base * luby (!restart_idx + 1);
        match s.share_in with
        | None -> cancel_until s (min (decision_level s) (Array.length assumps))
        | Some f ->
          (* Portfolio import point: backtrack all the way to level 0 so the
             foreign clauses can be simplified against the root assignment
             (units enqueue, satisfied clauses drop), then let the decide
             branch re-establish the assumptions. *)
          cancel_until s 0;
          List.iter
            (fun lits ->
              add_simplified s (Array.to_list lits) ~learnt:true
                ~lbd:(Array.length lits))
            (f ());
          if not s.ok then result := Some Unsat
      end
      else begin
        (* Decide: first re-establish pending assumptions, then branch. *)
        let dl = decision_level s in
        if dl < Array.length assumps then begin
          let a = assumps.(dl) in
          match lit_val s a with
          | 1 ->
            (* Already true: open an empty decision level. *)
            Vec.push s.trail_lim (Vec.len s.trail)
          | 2 -> result := Some Unsat (* assumptions are contradictory *)
          | _ ->
            Vec.push s.trail_lim (Vec.len s.trail);
            s.decisions <- s.decisions + 1;
            enqueue s a (-1)
        end
        else begin
          let v = pick_branch s in
          if v < 0 then result := Some Sat
          else begin
            Vec.push s.trail_lim (Vec.len s.trail);
            s.decisions <- s.decisions + 1;
            let l = if s.phase.(v) then pos v else neg_of_var v in
            enqueue s l (-1)
          end
        end
      end
      end
    done;
    (* For Sat we keep the trail so [value] can read the model, but reset
       the decision stack before the next call. *)
    (match !result with
    | Some Sat ->
      (* Snapshot model into phase (phase saving already updated on enqueue),
         then backtrack. *)
      for v = 0 to s.nvars - 1 do
        if s.assigns.(v) <> 0 then s.phase.(v) <- s.assigns.(v) = 1
      done;
      s.has_model <- true;
      cancel_until s 0
    | _ -> cancel_until s 0);
    match !result with Some r -> r | None -> assert false
  end

let value s v =
  if not s.has_model then
    invalid_arg "Solver.value: no model (last result was not Sat)";
  s.phase.(v)

let lit_value s l =
  if not s.has_model then
    invalid_arg "Solver.lit_value: no model (last result was not Sat)";
  if is_pos l then s.phase.(var_of l) else not s.phase.(var_of l)

(* --- CNF export --------------------------------------------------------- *)

(* The solver's clause set in DIMACS convention (variable [v] is [v + 1];
   negative literals are negated ints): the arena clauses plus the level-0
   trail units (unit clauses never enter the arena — [add_clause] enqueues
   them directly).  Exporting mid-search would also capture search
   assignments, so call this between [solve]s (any quiescent point). *)
let export_clauses s =
  let dimacs l = if is_pos l then var_of l + 1 else -(var_of l + 1) in
  let units_upto =
    if Vec.len s.trail_lim = 0 then Vec.len s.trail else Vec.get s.trail_lim 0
  in
  let units =
    List.init units_upto (fun i -> [ dimacs (Vec.get s.trail i) ])
  in
  let arena =
    List.init s.nclauses (fun cid ->
        Array.to_list (Array.map dimacs s.clauses.(cid).lits))
  in
  if s.ok then units @ arena else [ [] ]

(* --- cloning and portfolio solving -------------------------------------- *)

(* Deep copy of a quiescent solver (decision level 0 — the state every
   [solve] leaves behind).  Clause literal arrays are copied because
   propagation reorders them in place; exchange hooks are not inherited. *)
let clone s =
  {
    clauses =
      Array.init (Array.length s.clauses) (fun i ->
          let c = s.clauses.(i) in
          { lits = Array.copy c.lits; activity = c.activity; learnt = c.learnt; lbd = c.lbd });
    nclauses = s.nclauses;
    n_learnt = s.n_learnt;
    watches = Array.map Vec.copy s.watches;
    assigns = Array.copy s.assigns;
    level = Array.copy s.level;
    reason = Array.copy s.reason;
    phase = Array.copy s.phase;
    activity = Array.copy s.activity;
    heap = Array.copy s.heap;
    heap_pos = Array.copy s.heap_pos;
    heap_len = s.heap_len;
    trail = Vec.copy s.trail;
    trail_lim = Vec.copy s.trail_lim;
    qhead = s.qhead;
    nvars = s.nvars;
    var_inc = s.var_inc;
    cla_inc = s.cla_inc;
    ok = s.ok;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    learnt_limit = s.learnt_limit;
    reduce_enabled = s.reduce_enabled;
    reduces = 0;
    learnt_peak = s.n_learnt;
    has_model = false;
    restart_base = s.restart_base;
    stop_check = None;
    share_out = None;
    share_in = None;
    seen = Vec.create ();
    seen_arr = Array.make (Array.length s.seen_arr) false;
    lbd_seen = Array.make (Array.length s.lbd_seen) 0;
    lbd_stamp = 0;
  }

(* Deterministic configuration diversity for portfolio racers: scramble the
   saved phases and pick a different Luby restart unit.  Nothing here
   affects soundness — only the order the search explores the space. *)
let diversify ~seed s =
  let rng = Random.State.make [| 0x5EED1; seed |] in
  for v = 0 to s.nvars - 1 do
    if Random.State.int rng 4 < 3 then s.phase.(v) <- Random.State.bool rng
  done;
  s.restart_base <-
    (match seed land 3 with 0 -> 64 | 1 -> 110 | 2 -> 170 | _ -> 260)

type portfolio_result = {
  p_result : result;
  p_domains : int;
  p_first : int;
  p_racer_decisive : int;
  p_shared : int;
  p_imported : int;
  p_agree : bool;
}

(* Canonical-authoritative portfolio: the calling solver [s] runs exactly
   the sequential search — no imported clauses, no cancellation — and its
   verdict/model is what the caller sees, so results (and everything
   downstream: witnesses, report digests) are bit-identical to [solve].
   The remaining [domains - 1] slots run diversified clones that race each
   other, exchanging small learnt clauses through per-racer inboxes under
   one mutex; they are cancelled as soon as the canonical solver finishes.
   Decisive racer verdicts are cross-checked against the canonical one —
   a contradiction means a soundness bug, and fails loudly. *)
let solve_portfolio ?(assumptions = []) ?(max_conflicts = max_int)
    ?(share_lbd = 6) ?pool ~domains s =
  let domains = max 1 domains in
  if domains = 1 then
    {
      p_result = solve ~assumptions ~max_conflicts s;
      p_domains = 1;
      p_first = -1;
      p_racer_decisive = 0;
      p_shared = 0;
      p_imported = 0;
      p_agree = true;
    }
  else begin
    let n_racers = domains - 1 in
    let racers =
      Array.init n_racers (fun i ->
          let r = clone s in
          diversify ~seed:((i * 0x9E3779B1) lxor 0x5EED) r;
          r)
    in
    let stop = Atomic.make false in
    let first = Atomic.make min_int in
    let shared = Atomic.make 0 in
    let imported = Atomic.make 0 in
    let lock = Mutex.create () in
    let inboxes = Array.init n_racers (fun _ -> ref []) in
    let canonical () =
      let r = solve ~assumptions ~max_conflicts s in
      Atomic.set stop true;
      ignore (Atomic.compare_and_set first min_int (-1));
      r
    in
    let racer i () =
      let r = racers.(i) in
      r.stop_check <- Some (fun () -> Atomic.get stop);
      r.share_out <-
        Some
          (fun lits lbd ->
            if lbd <= share_lbd && Array.length lits <= 32 then begin
              Mutex.lock lock;
              for j = 0 to n_racers - 1 do
                if j <> i then inboxes.(j) := lits :: !(inboxes.(j))
              done;
              Mutex.unlock lock;
              Atomic.incr shared
            end);
      r.share_in <-
        Some
          (fun () ->
            Mutex.lock lock;
            let l = !(inboxes.(i)) in
            inboxes.(i) := [];
            Mutex.unlock lock;
            List.iter (fun _ -> Atomic.incr imported) l;
            l);
      let res = solve ~assumptions ~max_conflicts r in
      if res <> Unknown then
        ignore (Atomic.compare_and_set first min_int i);
      res
    in
    let thunks = canonical :: List.init n_racers racer in
    let results =
      match pool with
      | Some p -> Pool.run p thunks
      | None -> Pool.with_pool ~jobs:domains (fun p -> Pool.run p thunks)
    in
    let canon = List.hd results in
    let racer_results = List.tl results in
    let decisive = List.filter (fun r -> r <> Unknown) racer_results in
    let agree =
      canon = Unknown || List.for_all (fun r -> r = canon) decisive
    in
    if not agree then
      failwith
        "Solver.solve_portfolio: a racer verdict contradicts the canonical \
         solver (soundness bug)";
    {
      p_result = canon;
      p_domains = domains;
      p_first = (match Atomic.get first with x when x = min_int -> -1 | x -> x);
      p_racer_decisive = List.length decisive;
      p_shared = Atomic.get shared;
      p_imported = Atomic.get imported;
      p_agree = agree;
    }
  end
