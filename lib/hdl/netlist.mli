(** Word-level netlist intermediate representation.

    A netlist is a table of nodes.  Each node produces one signal of a fixed
    width.  Sequential elements are registers ([Reg]) whose [next] input may
    be connected after creation, permitting feedback loops; similarly [Wire]
    nodes are forward declarations for combinational feedback-free loops
    (an unconnected or combinationally-cyclic design is rejected by
    {!validate}).

    This IR plays the role SystemVerilog-after-elaboration plays for the
    paper's tools: the static analyses (combinational connectivity, cone of
    influence), the simulator, the bit-blaster, and the IFT instrumentation
    all consume it. *)

type signal = int
(** Index of a node in its netlist.  Exposed as [int] so client layers
    (simulator, bit-blaster) can use signals as array indices directly. *)

type op2 =
  | And
  | Or
  | Xor
  | Add
  | Sub
  | Mul
  | Eq  (** 1-bit result *)
  | Ult (** unsigned less-than, 1-bit result *)
  | Slt (** signed less-than, 1-bit result *)

type init =
  | Init_value of Bitvec.t
  | Init_symbolic
     (** Architectural state is symbolically initialized (§V-B): the model
          checker treats the reset value as free; the simulator draws it
          randomly. *)

type kind =
  | Input
  | Const of Bitvec.t
  | Reg of { init : init; mutable next : signal option; mutable enable : signal option }
     (** When [enable] is connected, the register keeps its value on cycles
          where the enable signal is 0. *)
  | Wire of { mutable driver : signal option }
  | Not of signal
  | Op2 of op2 * signal * signal
  | Mux of { sel : signal; on_true : signal; on_false : signal }
  | Extract of { hi : int; lo : int; arg : signal }
  | Concat of signal list (** Head holds the most significant bits. *)
  | ReduceOr of signal  (** 1-bit: OR of all bits. *)
  | ReduceAnd of signal (** 1-bit: AND of all bits. *)

type node = { id : signal; width : int; kind : kind; name : string option }

type t

val create : string -> t
val name : t -> string
val node : t -> signal -> node
val width : t -> signal -> int
val num_nodes : t -> int
val iter_nodes : t -> (node -> unit) -> unit
val fold_nodes : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val find_named : t -> string -> signal option
(** Look a node up by its (unique) name. *)

(** {1 Node creation} *)

val input : t -> string -> int -> signal
val const : t -> Bitvec.t -> signal
val reg : t -> ?enable:signal -> name:string -> init:init -> width:int -> unit -> signal
val wire : t -> ?name:string -> int -> signal

val connect_reg : t -> signal -> signal -> unit
(** [connect_reg t r next] connects the D input of register [r].
    Raises if [r] is not a register, is already connected, or widths differ. *)

val connect_enable : t -> signal -> signal -> unit
val connect_wire : t -> signal -> signal -> unit

val not_ : t -> signal -> signal
val op2 : t -> op2 -> signal -> signal -> signal
val mux : t -> sel:signal -> on_true:signal -> on_false:signal -> signal
val extract : t -> hi:int -> lo:int -> signal -> signal
val concat : t -> signal list -> signal
val reduce_or : t -> signal -> signal
val reduce_and : t -> signal -> signal

val set_name : t -> signal -> string -> unit
(** Name (or rename) a node; names must be unique within the netlist. *)

(** {1 Validation and ordering} *)

val validate : t -> unit
(** Check every register and wire is connected and that combinational logic
    is acyclic.  Raises [Failure] otherwise; the message lists {e every}
    problem — each unconnected register/wire and each combinational cycle —
    with node ids and names, so one failure carries the full repair list. *)

val comb_sccs : t -> signal list list
(** Nontrivial strongly connected components of the combinational dependency
    graph: each is a set of nodes forming at least one combinational cycle
    (more than one node, or a single node reading itself).  Empty on a valid
    netlist.  Members are sorted by id. *)

val comb_order : t -> signal array
(** Topological order of all nodes for single-pass combinational evaluation:
    registers, inputs and constants first, then combinational nodes in
    dependency order.  Requires a validated netlist. *)

val comb_fanin : t -> signal -> signal list
(** Direct combinational inputs of a node (registers and inputs have none —
    they are sequential/primary sources). *)

val comb_cone : t -> signal list -> (signal, unit) Hashtbl.t
(** Transitive combinational fan-in of the given signals, stopping at
    registers and inputs (which are included in the cone as sources).
    This is the static netlist analysis RTL2MμPATH uses to find candidate
    happens-before edges (§V-B5). *)

val registers : t -> signal list
val inputs : t -> signal list

(** {1 Digest} *)

val digest : t -> string
(** Hex digest of the elaborated structure: every node's id, width, name,
    kind, operand wiring, constant values, and register initialization.
    A pure function of construction order, so independently elaborated
    copies of the same design digest identically across processes — the
    design component of the verdict-cache key ({!Mc.Checker}).

    Memoized per instance: the first call walks the node table, repeated
    calls on an unmutated netlist are O(1).  Any mutation (adding a node,
    naming one, connecting a register/enable/wire) invalidates the cache. *)
