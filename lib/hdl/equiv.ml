module S = Sat.Solver

type cls = {
  rep : Netlist.signal;
  members : (Netlist.signal * bool) list;
  const_value : Bitvec.t option;
}

type stats = {
  comb_nodes : int;
  candidates : int;
  classes : int;
  merged : int;
  complement_merged : int;
  const_merged : int;
  vetoed : int;
  sat_queries : int;
  sat_refuted : int;
  sat_unknown : int;
  patterns : int;
}

(* ------------------------------------------------------------------ *)
(* Concrete evaluation.  [eval_step] evaluates combinational logic in
   topological order; inputs and registers must be pre-populated in
   [values] by the caller (free sources for sweeping, sequential state
   for the canonical stimulus). *)

let eval_step nl order values =
  let open Netlist in
  Array.iter
    (fun id ->
      match (node nl id).kind with
      | Input | Reg _ -> ()
      | Const v -> values.(id) <- v
      | Wire { driver = Some d } -> values.(id) <- values.(d)
      | Wire { driver = None } -> assert false
      | Not a -> values.(id) <- Bitvec.lognot values.(a)
      | Op2 (op, a, b) ->
        let va = values.(a) and vb = values.(b) in
        values.(id) <-
          (match op with
          | And -> Bitvec.logand va vb
          | Or -> Bitvec.logor va vb
          | Xor -> Bitvec.logxor va vb
          | Add -> Bitvec.add va vb
          | Sub -> Bitvec.sub va vb
          | Mul -> Bitvec.mul va vb
          | Eq -> Bitvec.of_bool (Bitvec.equal va vb)
          | Ult -> Bitvec.of_bool (Bitvec.ult va vb)
          | Slt -> Bitvec.of_bool (Bitvec.slt va vb))
      | Mux { sel; on_true; on_false } ->
        values.(id) <-
          (if Bitvec.is_zero values.(sel) then values.(on_false)
           else values.(on_true))
      | Extract { hi; lo; arg } -> values.(id) <- Bitvec.extract values.(arg) ~hi ~lo
      | Concat parts ->
        let v =
          List.fold_left
            (fun acc p ->
              match acc with
              | None -> Some values.(p)
              | Some hi -> Some (Bitvec.concat hi values.(p)))
            None parts
        in
        values.(id) <- Option.get v
      | ReduceOr a -> values.(id) <- Bitvec.of_bool (not (Bitvec.is_zero values.(a)))
      | ReduceAnd a -> values.(id) <- Bitvec.of_bool (Bitvec.is_ones values.(a)))
    order

(* ------------------------------------------------------------------ *)
(* Depth-0 CNF encoding of the combinational logic, directly on the SAT
   solver: inputs and register outputs are free variables.  This is a
   deliberately separate, miniature cousin of [Mc.Blast] — [lib/hdl]
   sits below [lib/mc], and sweeping needs no time unrolling. *)

type enc = {
  s : S.t;
  lt : S.lit; (* constant true *)
  lits : S.lit array array; (* per node, LSB first *)
  and_cache : (S.lit * S.lit, S.lit) Hashtbl.t;
  xor_cache : (int * int, S.lit) Hashtbl.t;
}

let fresh e = S.pos (S.new_var e.s)

let g_and e a b =
  let lf = S.negate e.lt in
  if a = lf || b = lf then lf
  else if a = e.lt then b
  else if b = e.lt then a
  else if a = b then a
  else if a = S.negate b then lf
  else begin
    let key = (min a b, max a b) in
    match Hashtbl.find_opt e.and_cache key with
    | Some z -> z
    | None ->
      let z = fresh e in
      S.add_clause e.s [ S.negate z; a ];
      S.add_clause e.s [ S.negate z; b ];
      S.add_clause e.s [ z; S.negate a; S.negate b ];
      Hashtbl.add e.and_cache key z;
      z
  end

let g_or e a b = S.negate (g_and e (S.negate a) (S.negate b))

let g_xor e a b =
  let lf = S.negate e.lt in
  if a = lf then b
  else if a = e.lt then S.negate b
  else if b = lf then a
  else if b = e.lt then S.negate a
  else if a = b then lf
  else if a = S.negate b then e.lt
  else begin
    (* Fold signs out: xor(~a, b) = ~xor(a, b). *)
    let va = S.var_of a and vb = S.var_of b in
    let sign = S.is_pos a <> S.is_pos b in
    let key = (min va vb, max va vb) in
    let z =
      match Hashtbl.find_opt e.xor_cache key with
      | Some z -> z
      | None ->
        let pa = S.pos va and pb = S.pos vb in
        let z = fresh e in
        S.add_clause e.s [ S.negate z; pa; pb ];
        S.add_clause e.s [ S.negate z; S.negate pa; S.negate pb ];
        S.add_clause e.s [ z; S.negate pa; pb ];
        S.add_clause e.s [ z; pa; S.negate pb ];
        Hashtbl.add e.xor_cache key z;
        z
    in
    if sign then S.negate z else z
  end

let g_mux e sel t f =
  let lf = S.negate e.lt in
  if sel = e.lt then t
  else if sel = lf then f
  else if t = f then t
  else if t = e.lt && f = lf then sel
  else if t = lf && f = e.lt then S.negate sel
  else begin
    let z = fresh e in
    S.add_clause e.s [ S.negate sel; S.negate t; z ];
    S.add_clause e.s [ S.negate sel; t; S.negate z ];
    S.add_clause e.s [ sel; S.negate f; z ];
    S.add_clause e.s [ sel; f; S.negate z ];
    S.add_clause e.s [ S.negate t; S.negate f; z ];
    S.add_clause e.s [ t; f; S.negate z ];
    z
  end

let full_add e a b cin =
  let ab = g_xor e a b in
  (g_xor e ab cin, g_or e (g_and e a b) (g_and e cin ab))

let ripple_add e ?(cin : S.lit option) la lb =
  let w = Array.length la in
  let carry = ref (match cin with Some c -> c | None -> S.negate e.lt) in
  Array.init w (fun i ->
      let s, c = full_add e la.(i) lb.(i) !carry in
      carry := c;
      s)

(* Unsigned less-than by LSB-to-MSB scan: at each bit, a difference
   overrides the verdict of the lower bits. *)
let ripple_ult e la lb =
  let w = Array.length la in
  let lt = ref (S.negate e.lt) in
  for i = 0 to w - 1 do
    let diff = g_xor e la.(i) lb.(i) in
    lt := g_mux e diff lb.(i) !lt
  done;
  !lt

let ripple_slt e la lb =
  let w = Array.length la in
  let lt = ref (S.negate e.lt) in
  for i = 0 to w - 1 do
    let diff = g_xor e la.(i) lb.(i) in
    (* At the sign bit the comparison flips: a set sign means smaller. *)
    let when_diff = if i = w - 1 then la.(i) else lb.(i) in
    lt := g_mux e diff when_diff !lt
  done;
  !lt

let encode nl order =
  let s = S.create () in
  let tv = S.new_var s in
  let lt = S.pos tv in
  S.add_clause s [ lt ];
  let e =
    {
      s;
      lt;
      lits = Array.make (Netlist.num_nodes nl) [||];
      and_cache = Hashtbl.create 1024;
      xor_cache = Hashtbl.create 1024;
    }
  in
  let lf = S.negate lt in
  let open Netlist in
  Array.iter
    (fun id ->
      let n = node nl id in
      let w = n.width in
      let l =
        match n.kind with
        | Input | Reg _ -> Array.init w (fun _ -> fresh e)
        | Const v -> Array.init w (fun i -> if Bitvec.bit v i then lt else lf)
        | Wire { driver = Some d } -> e.lits.(d)
        | Wire { driver = None } -> assert false
        | Not a -> Array.map S.negate e.lits.(a)
        | Op2 (op, a, b) -> (
          let la = e.lits.(a) and lb = e.lits.(b) in
          match op with
          | And -> Array.init w (fun i -> g_and e la.(i) lb.(i))
          | Or -> Array.init w (fun i -> g_or e la.(i) lb.(i))
          | Xor -> Array.init w (fun i -> g_xor e la.(i) lb.(i))
          | Add -> ripple_add e la lb
          | Sub -> ripple_add e ~cin:lt la (Array.map S.negate lb)
          | Mul ->
            let acc = ref (Array.make w lf) in
            for j = 0 to w - 1 do
              let row =
                Array.init w (fun i ->
                    if i >= j then g_and e la.(i - j) lb.(j) else lf)
              in
              acc := ripple_add e !acc row
            done;
            !acc
          | Eq ->
            let z =
              Array.to_list la
              |> List.mapi (fun i ai -> S.negate (g_xor e ai lb.(i)))
              |> List.fold_left (g_and e) lt
            in
            [| z |]
          | Ult -> [| ripple_ult e la lb |]
          | Slt -> [| ripple_slt e la lb |])
        | Mux { sel; on_true; on_false } ->
          let ls = e.lits.(sel).(0) in
          let la = e.lits.(on_true) and lb = e.lits.(on_false) in
          Array.init w (fun i -> g_mux e ls la.(i) lb.(i))
        | Extract { hi; lo; arg } -> Array.sub e.lits.(arg) lo (hi - lo + 1)
        | Concat parts ->
          List.rev parts
          |> List.map (fun p -> Array.to_list e.lits.(p))
          |> List.concat |> Array.of_list
        | ReduceOr a -> [| Array.fold_left (g_or e) lf e.lits.(a) |]
        | ReduceAnd a -> [| Array.fold_left (g_and e) lt e.lits.(a) |]
      in
      e.lits.(id) <- l)
    order;
  e

(* ------------------------------------------------------------------ *)
(* Union-find with parity: each node carries whether it equals (false)
   or complements (true) its parent. *)

type uf = { parent : int array; parity : bool array; rank : int array }

let uf_create n =
  { parent = Array.init n Fun.id; parity = Array.make n false; rank = Array.make n 0 }

let rec uf_find u x =
  if u.parent.(x) = x then (x, false)
  else begin
    let r, p = uf_find u u.parent.(x) in
    let px = u.parity.(x) <> p in
    u.parent.(x) <- r;
    u.parity.(x) <- px;
    (r, px)
  end

let uf_union u x y ph =
  let rx, px = uf_find u x and ry, py = uf_find u y in
  if rx <> ry then begin
    (* parity(x -> y) = ph, so parity(rx -> ry) = px xor ph xor py *)
    let pr = px <> ph <> py in
    if u.rank.(rx) < u.rank.(ry) then begin
      u.parent.(rx) <- ry;
      u.parity.(rx) <- pr
    end
    else begin
      u.parent.(ry) <- rx;
      u.parity.(ry) <- pr;
      if u.rank.(rx) = u.rank.(ry) then u.rank.(rx) <- u.rank.(rx) + 1
    end
  end

(* ------------------------------------------------------------------ *)

type analysis = {
  a_classes : cls list;
  a_comb : int;
  a_cands : int;
  a_queries : int;
  a_refuted : int;
  a_unknown : int;
  a_patterns : int;
  a_candidate : bool array; (* per node: sweepable *)
}

let is_comb (k : Netlist.kind) =
  match k with
  | Input | Const _ | Reg _ | Wire _ -> false
  | Not _ | Op2 _ | Mux _ | Extract _ | Concat _ | ReduceOr _ | ReduceAnd _ -> true

let complement_trace t =
  String.map (function '0' -> '1' | '1' -> '0' | c -> c) t

let analyze_internal ?(patterns = 64) ?(max_conflicts = 10_000) ?(barriers = [])
    nl =
  Netlist.validate nl;
  let n = Netlist.num_nodes nl in
  let order = Netlist.comb_order nl in
  let barrier = Array.make n false in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Equiv: barrier signal out of range";
      barrier.(s) <- true)
    barriers;
  let comb = Array.make n false in
  let candidate = Array.make n false in
  let eligible = Array.make n false in
  Netlist.iter_nodes nl (fun nd ->
      let id = nd.Netlist.id in
      if is_comb nd.Netlist.kind then begin
        comb.(id) <- true;
        if nd.Netlist.name = None && not barrier.(id) then candidate.(id) <- true
      end;
      (match nd.Netlist.kind with Netlist.Wire _ -> () | _ -> eligible.(id) <- true));
  let sources =
    List.sort compare (Netlist.inputs nl @ Netlist.registers nl)
  in
  (* Traces. *)
  let bufs = Array.init n (fun _ -> Buffer.create 128) in
  let first_val = Array.make n None in
  let is_const_trace = Array.make n true in
  let pattern_count = ref 0 in
  let values = Array.make n (Bitvec.zero 1) in
  let run_pattern fill =
    List.iter (fun s -> values.(s) <- fill s) sources;
    eval_step nl order values;
    for id = 0 to n - 1 do
      Buffer.add_string bufs.(id) (Bitvec.to_hex_string values.(id));
      Buffer.add_char bufs.(id) ';';
      (match first_val.(id) with
      | None -> first_val.(id) <- Some values.(id)
      | Some v -> if not (Bitvec.equal v values.(id)) then is_const_trace.(id) <- false)
    done;
    incr pattern_count
  in
  let rng = Random.State.make [| 0x53eeb; n |] in
  for _ = 1 to max 1 patterns do
    run_pattern (fun s -> Bitvec.random rng (Netlist.width nl s))
  done;
  (* SAT side. *)
  let e = encode nl order in
  let queries = ref 0 and refuted = ref 0 and unknown = ref 0 in
  let miter_solve diffs =
    let act = fresh e in
    S.add_clause e.s (S.negate act :: diffs);
    incr queries;
    let r = S.solve ~assumptions:[ act ] ~max_conflicts e.s in
    (match r with
    | S.Sat ->
      incr refuted;
      (* Counterexample pattern: the model's source values refine the
         partition so this pair never pairs up again. *)
      run_pattern (fun s ->
          let ls = e.lits.(s) in
          Bitvec.of_bits
            (List.init (Array.length ls) (fun i -> S.lit_value e.s ls.(i))))
    | S.Unsat -> ()
    | S.Unknown -> incr unknown);
    S.add_clause e.s [ S.negate act ];
    r
  in
  let pair_diffs a b ph =
    let la = e.lits.(a) and lb = e.lits.(b) in
    Array.to_list la
    |> List.mapi (fun i ai ->
           g_xor e ai (if ph then S.negate lb.(i) else lb.(i)))
  in
  let const_diffs a v =
    e.lits.(a) |> Array.to_list
    |> List.mapi (fun i ai -> if Bitvec.bit v i then S.negate ai else ai)
  in
  (* Partition from current traces: eligible nodes keyed by width + trace
     (1-bit nodes: the lexicographically smaller of trace / complemented
     trace, remembering which phase matched). *)
  let classify () =
    let tbl : (string, (int * bool) list ref) Hashtbl.t = Hashtbl.create 256 in
    let ordered = ref [] in
    for id = n - 1 downto 0 do
      if eligible.(id) then begin
        let w = Netlist.width nl id in
        let t = Buffer.contents bufs.(id) in
        let key, ph =
          if w = 1 then begin
            let ct = complement_trace t in
            if String.compare ct t < 0 then ("1|" ^ ct, true) else ("1|" ^ t, false)
          end
          else (string_of_int w ^ "|" ^ t, false)
        in
        match Hashtbl.find_opt tbl key with
        | Some l -> l := (id, ph) :: !l
        | None ->
          let l = ref [ (id, ph) ] in
          Hashtbl.add tbl key l;
          ordered := l :: !ordered
      end
    done;
    (* [ordered] lists classes by ascending lowest member id; members are
       ascending already (downward loop + cons). *)
    List.filter_map
      (fun l -> match !l with [] | [ _ ] -> None | ms -> Some ms)
      (List.rev !ordered)
  in
  let proven : (int * int * bool, bool) Hashtbl.t = Hashtbl.create 256 in
  (* proven maps (low, high, phase) to true (equal) / false (refuted or
     budget-exhausted: never retried). *)
  let fixpoint = ref false in
  while not !fixpoint do
    fixpoint := true;
    let classes = classify () in
    List.iter
      (fun members ->
        match members with
        | [] -> ()
        | (rep, prep) :: rest ->
          List.iter
            (fun (m, pm) ->
              let ph = prep <> pm in
              let key = (rep, m, ph) in
              if not (Hashtbl.mem proven key) then begin
                match miter_solve (pair_diffs rep m ph) with
                | S.Unsat -> Hashtbl.replace proven key true
                | S.Sat ->
                  Hashtbl.replace proven key false;
                  fixpoint := false
                | S.Unknown -> Hashtbl.replace proven key false
              end)
            rest)
      classes
  done;
  (* Transitive closure of the proven equalities. *)
  let u = uf_create n in
  Hashtbl.iter (fun (a, b, ph) eq -> if eq then uf_union u a b ph) proven;
  let groups : (int, (int * bool) list ref) Hashtbl.t = Hashtbl.create 64 in
  for id = n - 1 downto 0 do
    if eligible.(id) then begin
      let r, p = uf_find u id in
      match Hashtbl.find_opt groups r with
      | Some l -> l := (id, p) :: !l
      | None -> Hashtbl.add groups r (ref [ (id, p) ])
    end
  done;
  (* Constant proving: group representatives and lone combinational nodes
     whose trace never varied. *)
  let try_const id =
    match first_val.(id) with
    | Some v when is_const_trace.(id) && comb.(id) -> (
      match miter_solve (const_diffs id v) with S.Unsat -> Some v | _ -> None)
    | _ -> None
  in
  let classes = ref [] in
  let group_list =
    Hashtbl.fold (fun _ l acc -> !l :: acc) groups []
    |> List.map (fun ms -> List.sort compare ms)
    |> List.sort compare
  in
  List.iter
    (fun ms ->
      match ms with
      | [] -> ()
      | [ (id, _) ] ->
        (* Singleton: only interesting if provably constant. *)
        if is_const_trace.(id) then
          Option.iter
            (fun v -> classes := { rep = id; members = []; const_value = Some v } :: !classes)
            (try_const id)
      | (rep, prep) :: rest ->
        let members = List.map (fun (m, pm) -> (m, prep <> pm)) rest in
        let const_value = if is_const_trace.(rep) then try_const rep else None in
        classes := { rep; members; const_value } :: !classes)
    group_list;
  let a_classes = List.rev !classes in
  let a_comb = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 comb in
  let a_cands =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 candidate
  in
  {
    a_classes;
    a_comb;
    a_cands;
    a_queries = !queries;
    a_refuted = !refuted;
    a_unknown = !unknown;
    a_patterns = !pattern_count;
    a_candidate = candidate;
  }

let stats_of_analysis a ~classes ~merged ~complement_merged ~const_merged ~vetoed
    =
  {
    comb_nodes = a.a_comb;
    candidates = a.a_cands;
    classes;
    merged;
    complement_merged;
    const_merged;
    vetoed;
    sat_queries = a.a_queries;
    sat_refuted = a.a_refuted;
    sat_unknown = a.a_unknown;
    patterns = a.a_patterns;
  }

let analyze ?patterns ?max_conflicts ?barriers nl =
  let a = analyze_internal ?patterns ?max_conflicts ?barriers nl in
  (* Pre-veto would-be merge counts. *)
  let classes = ref 0
  and merged = ref 0
  and compl_ = ref 0
  and const_ = ref 0 in
  List.iter
    (fun c ->
      let cand = a.a_candidate in
      let here = ref 0 in
      (match c.const_value with
      | Some _ -> if cand.(c.rep) then (incr here; incr const_)
      | None -> ());
      List.iter
        (fun (m, ph) ->
          if cand.(m) then begin
            incr here;
            if ph then incr compl_;
            if c.const_value <> None then incr const_
          end)
        c.members;
      if !here > 0 then incr classes;
      merged := !merged + !here)
    a.a_classes;
  ( a.a_classes,
    stats_of_analysis a ~classes:!classes ~merged:!merged
      ~complement_merged:!compl_ ~const_merged:!const_ ~vetoed:0 )

(* ------------------------------------------------------------------ *)
(* Rewriting. *)

type merge = { m_rep : int; m_phase : bool; m_const : Bitvec.t option }

let reduce ?patterns ?max_conflicts ?(barriers = []) nl =
  let a = analyze_internal ?patterns ?max_conflicts ~barriers nl in
  let n = Netlist.num_nodes nl in
  let cand = a.a_candidate in
  let merge_to : merge option array = Array.make n None in
  List.iter
    (fun c ->
      (match c.const_value with
      | Some v when cand.(c.rep) ->
        merge_to.(c.rep) <- Some { m_rep = c.rep; m_phase = false; m_const = Some v }
      | _ -> ());
      List.iter
        (fun (m, ph) ->
          if cand.(m) then
            let mc =
              match c.const_value with
              | Some v -> Some (if ph then Bitvec.lognot v else v)
              | None -> None
            in
            merge_to.(m) <- Some { m_rep = c.rep; m_phase = ph; m_const = mc })
        c.members)
    a.a_classes;
  (* Cycle veto: wire drivers may point forward, so redirecting a fanin
     onto a lower-id representative with a different cone can close a
     combinational loop.  Kahn-peel the rewritten dependency graph; while
     a cyclic residue remains, abandon the lowest-id merge feeding it. *)
  let target o =
    match merge_to.(o) with
    | Some { m_const = Some _; _ } -> None (* constants depend on nothing *)
    | Some { m_rep; _ } -> Some m_rep
    | None -> Some o
  in
  let vetoed = ref 0 in
  let consumers = Array.make n [] in
  for u = 0 to n - 1 do
    List.iter (fun o -> consumers.(o) <- u :: consumers.(o)) (Netlist.comb_fanin nl u)
  done;
  let rec veto_pass () =
    let indeg = Array.make n 0 in
    let succ = Array.make n [] in
    for u = 0 to n - 1 do
      if merge_to.(u) = None then
        List.iter
          (fun o ->
            match target o with
            | Some t ->
              indeg.(u) <- indeg.(u) + 1;
              succ.(t) <- u :: succ.(t)
            | None -> ())
          (Netlist.comb_fanin nl u)
    done;
    let queue = Queue.create () in
    let remaining = ref 0 in
    for u = 0 to n - 1 do
      if merge_to.(u) = None then begin
        incr remaining;
        if indeg.(u) = 0 then Queue.add u queue
      end
    done;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      decr remaining;
      List.iter
        (fun v ->
          indeg.(v) <- indeg.(v) - 1;
          if indeg.(v) = 0 then Queue.add v queue)
        succ.(u)
    done;
    if !remaining > 0 then begin
      (* Residue contains a cycle; it can only have been closed by a
         merge redirect, so some merged node [o] has its representative
         and a consumer both stuck in the residue. *)
      let in_residue u = merge_to.(u) = None && indeg.(u) > 0 in
      let victim = ref None in
      for o = n - 1 downto 0 do
        match merge_to.(o) with
        | Some { m_rep; m_const = None; _ }
          when in_residue m_rep && List.exists in_residue consumers.(o) ->
          victim := Some o
        | _ -> ()
      done;
      match !victim with
      | Some o ->
        merge_to.(o) <- None;
        incr vetoed;
        veto_pass ()
      | None -> failwith "Equiv.reduce: internal: unresolvable combinational cycle"
    end
  in
  veto_pass ();
  (* Rebuild in id order.  Constants are pooled (so proven constants and
     duplicate unnamed literals share one node); complement merges
     materialize one cached inverter per representative. *)
  let out = Netlist.create (Netlist.name nl) in
  let image = Array.make n (-1) in
  let barrier = Array.make n false in
  List.iter (fun s -> barrier.(s) <- true) barriers;
  let const_pool : (Bitvec.t, int) Hashtbl.t = Hashtbl.create 64 in
  let not_pool : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let const_of v =
    match Hashtbl.find_opt const_pool v with
    | Some s -> s
    | None ->
      let s = Netlist.const out v in
      Hashtbl.add const_pool v s;
      s
  in
  let not_of s =
    match Hashtbl.find_opt not_pool s with
    | Some z -> z
    | None ->
      let z = Netlist.not_ out s in
      Hashtbl.add not_pool s z;
      z
  in
  let merged = ref 0 and compl_ = ref 0 and const_ = ref 0 in
  let merged_classes : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let img o = image.(o) in
  Netlist.iter_nodes nl (fun nd ->
      let id = nd.Netlist.id in
      let w = nd.Netlist.width in
      let name = nd.Netlist.name in
      match merge_to.(id) with
      | Some { m_rep; m_phase; m_const } ->
        incr merged;
        Hashtbl.replace merged_classes m_rep ();
        (match m_const with
        | Some v ->
          incr const_;
          image.(id) <- const_of v
        | None ->
          if m_phase then begin
            incr compl_;
            image.(id) <- not_of image.(m_rep)
          end
          else image.(id) <- image.(m_rep))
      | None ->
        let s =
          match nd.Netlist.kind with
          | Netlist.Input -> Netlist.input out (Option.get name) w
          | Netlist.Const v ->
            if name = None && not barrier.(id) then begin
              (* Duplicate unnamed literal: share the pooled node. *)
              match Hashtbl.find_opt const_pool v with
              | Some s ->
                incr merged;
                incr const_;
                s
              | None -> const_of v
            end
            else begin
              let s = Netlist.const out v in
              if not (Hashtbl.mem const_pool v) then Hashtbl.add const_pool v s;
              s
            end
          | Netlist.Reg { init; _ } ->
            Netlist.reg out ~name:(Option.get name) ~init ~width:w ()
          | Netlist.Wire _ -> Netlist.wire out ?name w
          | Netlist.Not a -> Netlist.not_ out (img a)
          | Netlist.Op2 (op, x, y) -> Netlist.op2 out op (img x) (img y)
          | Netlist.Mux { sel; on_true; on_false } ->
            Netlist.mux out ~sel:(img sel) ~on_true:(img on_true)
              ~on_false:(img on_false)
          | Netlist.Extract { hi; lo; arg } -> Netlist.extract out ~hi ~lo (img arg)
          | Netlist.Concat parts -> Netlist.concat out (List.map img parts)
          | Netlist.ReduceOr x -> Netlist.reduce_or out (img x)
          | Netlist.ReduceAnd x -> Netlist.reduce_and out (img x)
        in
        (match (name, nd.Netlist.kind) with
        | Some nm, (Netlist.Const _ | Netlist.Not _ | Netlist.Op2 _ | Netlist.Mux _
                   | Netlist.Extract _ | Netlist.Concat _ | Netlist.ReduceOr _
                   | Netlist.ReduceAnd _) ->
          Netlist.set_name out s nm
        | _ -> ());
        image.(id) <- s);
  (* Second pass: sequential and forward connections. *)
  Netlist.iter_nodes nl (fun nd ->
      match nd.Netlist.kind with
      | Netlist.Reg { next; enable; _ } when merge_to.(nd.Netlist.id) = None ->
        Option.iter
          (fun nx -> Netlist.connect_reg out image.(nd.Netlist.id) (img nx))
          next;
        Option.iter
          (fun en -> Netlist.connect_enable out image.(nd.Netlist.id) (img en))
          enable
      | Netlist.Wire { driver } when merge_to.(nd.Netlist.id) = None ->
        Option.iter
          (fun d -> Netlist.connect_wire out image.(nd.Netlist.id) (img d))
          driver
      | _ -> ());
  Netlist.validate out;
  let stats =
    stats_of_analysis a
      ~classes:(Hashtbl.length merged_classes)
      ~merged:!merged ~complement_merged:!compl_ ~const_merged:!const_
      ~vetoed:!vetoed
  in
  (out, image, stats)

(* ------------------------------------------------------------------ *)
(* Canonical stimulus: behavioral fingerprints independent of node ids
   and construction order.  Inputs are driven by name-seeded PRNGs,
   symbolic-init registers start at zero, so any two netlists with the
   same interface names and the same observable behavior produce the
   same signatures for their named signals. *)

let stimulus_seed name episode =
  let d = Digest.string name in
  Array.init 5 (fun i ->
      if i = 4 then episode
      else
        let b j = Char.code d.[(4 * i) + j] in
        (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3)

let signatures ?(episodes = 4) ?(cycles = 24) nl =
  Netlist.validate nl;
  let n = Netlist.num_nodes nl in
  let order = Netlist.comb_order nl in
  let bufs = Array.init n (fun _ -> Buffer.create 256) in
  let values = Array.make n (Bitvec.zero 1) in
  let inputs = Netlist.inputs nl in
  let regs = Netlist.registers nl in
  for episode = 0 to episodes - 1 do
    let rngs =
      List.map
        (fun i ->
          let name =
            match (Netlist.node nl i).Netlist.name with
            | Some nm -> nm
            | None -> assert false
          in
          (i, Random.State.make (stimulus_seed name episode)))
        inputs
    in
    List.iter
      (fun r ->
        match (Netlist.node nl r).Netlist.kind with
        | Netlist.Reg { init = Netlist.Init_value v; _ } -> values.(r) <- v
        | Netlist.Reg { init = Netlist.Init_symbolic; _ } ->
          values.(r) <- Bitvec.zero (Netlist.width nl r)
        | _ -> assert false)
      regs;
    for _cycle = 1 to cycles do
      List.iter
        (fun (i, st) -> values.(i) <- Bitvec.random st (Netlist.width nl i))
        rngs;
      eval_step nl order values;
      for id = 0 to n - 1 do
        Buffer.add_string bufs.(id) (Bitvec.to_hex_string values.(id));
        Buffer.add_char bufs.(id) ';'
      done;
      (* Clock edge, mirroring [Sim.step]. *)
      let latched =
        List.filter_map
          (fun r ->
            match (Netlist.node nl r).Netlist.kind with
            | Netlist.Reg { next = Some nx; enable; _ } ->
              let update =
                match enable with
                | None -> true
                | Some en -> not (Bitvec.is_zero values.(en))
              in
              if update then Some (r, values.(nx)) else None
            | _ -> None)
          regs
      in
      List.iter (fun (r, v) -> values.(r) <- v) latched
    done
  done;
  Array.mapi
    (fun id buf ->
      Digest.to_hex
        (Digest.string
           (string_of_int (Netlist.width nl id) ^ ":" ^ Buffer.contents buf)))
    bufs

let semantic_digest ?episodes ?cycles nl =
  let sigs = signatures ?episodes ?cycles nl in
  let named = ref [] in
  Netlist.iter_nodes nl (fun nd ->
      match nd.Netlist.name with
      | Some nm ->
        named :=
          Printf.sprintf "%s=%d:%s" nm nd.Netlist.width sigs.(nd.Netlist.id)
          :: !named
      | None -> ());
  let sorted = List.sort compare !named in
  Digest.to_hex (Digest.string (String.concat "\n" sorted))

(* Name-structural descriptors, in post-order over node ids (operands
   always precede their consumers, so one left-to-right pass suffices).
   A named node is its name — nothing below it leaks into any consumer's
   descriptor — so the strings are stable across semantically equivalent
   netlist variants as long as logic above the named frontier is built
   identically (which is exactly how per-variant monitor construction
   works: the same code, over name-resolved signals).  Hash-consing via
   per-node digests keeps the pass linear. *)
let describe_all nl =
  let n = Netlist.num_nodes nl in
  let desc = Array.make n "" in
  let op_tag = function
    | Netlist.And -> "and"
    | Netlist.Or -> "or"
    | Netlist.Xor -> "xor"
    | Netlist.Add -> "add"
    | Netlist.Sub -> "sub"
    | Netlist.Mul -> "mul"
    | Netlist.Eq -> "eq"
    | Netlist.Ult -> "ult"
    | Netlist.Slt -> "slt"
  in
  Netlist.iter_nodes nl (fun nd ->
      let id = nd.Netlist.id in
      let d s = desc.(s) in
      let term =
        match nd.Netlist.name with
        | Some nm -> Printf.sprintf "name:%s:%d" nm nd.Netlist.width
        | None -> (
          match nd.Netlist.kind with
          | Netlist.Input -> assert false (* inputs are always named *)
          | Netlist.Const v -> "const:" ^ Bitvec.to_hex_string v
          | Netlist.Reg _ ->
            (* Registers are always named, so this arm is unreachable for
               admitted netlists; key on the id as a safe fallback. *)
            Printf.sprintf "reg:%d" id
          | Netlist.Wire { driver = Some s } -> "wire:" ^ d s
          | Netlist.Wire { driver = None } -> Printf.sprintf "wire:%d" id
          | Netlist.Not a -> "not:" ^ d a
          | Netlist.Op2 (op, a, b) ->
            Printf.sprintf "%s:%s:%s" (op_tag op) (d a) (d b)
          | Netlist.Mux { sel; on_true; on_false } ->
            Printf.sprintf "mux:%s:%s:%s" (d sel) (d on_true) (d on_false)
          | Netlist.Extract { hi; lo; arg } ->
            Printf.sprintf "ex:%d:%d:%s" hi lo (d arg)
          | Netlist.Concat parts ->
            "cat:" ^ String.concat ":" (List.map d parts)
          | Netlist.ReduceOr a -> "ror:" ^ d a
          | Netlist.ReduceAnd a -> "rand:" ^ d a)
      in
      desc.(id) <-
        Digest.to_hex
          (Digest.string (string_of_int nd.Netlist.width ^ "|" ^ term)));
  desc
