(* Word-level -> gate-level lowering; see the interface for the contract.
   [bits.(id)] holds the 1-bit signals of a lowered node (LSB first);
   word-level survivors (sources, arithmetic macros, wires) instead get
   [word.(id)].  Each use of a word-level signal re-extracts the bits it
   needs — deliberately redundant, mirroring post-synthesis netlists. *)

module N = Netlist

type st = {
  out : N.t;
  bits : N.signal array array; (* [||] when the node is word-level *)
  word : int array; (* -1 when not (yet) materialized *)
  is_word : bool array;
}

let use_bits st nl o =
  if st.is_word.(o) then
    let w = N.width nl o in
    Array.init w (fun i -> N.extract st.out ~hi:i ~lo:i st.word.(o))
  else st.bits.(o)

let word_of st o =
  if st.is_word.(o) then st.word.(o)
  else if st.word.(o) >= 0 then st.word.(o)
  else begin
    let b = st.bits.(o) in
    let s =
      if Array.length b = 1 then b.(0)
      else N.concat st.out (List.rev (Array.to_list b))
    in
    st.word.(o) <- s;
    s
  end

let run nl =
  N.validate nl;
  let n = N.num_nodes nl in
  let out = N.create (N.name nl) in
  let st =
    { out; bits = Array.make n [||]; word = Array.make n (-1); is_word = Array.make n false }
  in
  let mark_word id s =
    st.is_word.(id) <- true;
    st.word.(id) <- s
  in
  N.iter_nodes nl (fun nd ->
      let id = nd.N.id in
      let w = nd.N.width in
      match nd.N.kind with
      | N.Input -> mark_word id (N.input out (Option.get nd.N.name) w)
      | N.Const v ->
        let s = N.const out v in
        Option.iter (N.set_name out s) nd.N.name;
        mark_word id s
      | N.Reg { init; _ } ->
        mark_word id (N.reg out ~name:(Option.get nd.N.name) ~init ~width:w ())
      | N.Wire _ -> mark_word id (N.wire out ?name:nd.N.name w)
      | N.Op2 (((N.Add | N.Sub | N.Mul | N.Slt) as op), a, b) ->
        (* Arithmetic macro: stays word-level. *)
        let s = N.op2 out op (word_of st a) (word_of st b) in
        Option.iter (N.set_name out s) nd.N.name;
        mark_word id s
      | kind ->
        let bits =
          match kind with
          | N.Not a -> Array.map (N.not_ out) (use_bits st nl a)
          | N.Op2 (((N.And | N.Or | N.Xor) as op), a, b) ->
            let ba = use_bits st nl a and bb = use_bits st nl b in
            Array.mapi (fun i x -> N.op2 out op x bb.(i)) ba
          | N.Op2 (N.Eq, a, b) ->
            let ba = use_bits st nl a and bb = use_bits st nl b in
            let xnors =
              Array.mapi (fun i x -> N.not_ out (N.op2 out N.Xor x bb.(i))) ba
            in
            let tree =
              if Array.length xnors = 1 then xnors.(0)
              else
                Array.fold_left
                  (fun acc x ->
                    match acc with
                    | None -> Some x
                    | Some y -> Some (N.op2 out N.And y x))
                  None xnors
                |> Option.get
            in
            [| tree |]
          | N.Op2 (N.Ult, a, b) ->
            (* LSB-to-MSB scan: a difference at a higher bit overrides. *)
            let ba = use_bits st nl a and bb = use_bits st nl b in
            let lt = ref (N.const out (Bitvec.zero 1)) in
            Array.iteri
              (fun i x ->
                let diff = N.op2 out N.Xor x bb.(i) in
                lt := N.mux out ~sel:diff ~on_true:bb.(i) ~on_false:!lt)
              ba;
            [| !lt |]
          | N.Op2 ((N.Add | N.Sub | N.Mul | N.Slt), _, _) -> assert false
          | N.Mux { sel; on_true; on_false } ->
            let s1 = (use_bits st nl sel).(0) in
            let bt = use_bits st nl on_true and bf = use_bits st nl on_false in
            Array.mapi
              (fun i t -> N.mux out ~sel:s1 ~on_true:t ~on_false:bf.(i))
              bt
          | N.Extract { hi; lo; arg } ->
            if st.is_word.(arg) then
              Array.init (hi - lo + 1) (fun i ->
                  N.extract out ~hi:(lo + i) ~lo:(lo + i) st.word.(arg))
            else Array.sub st.bits.(arg) lo (hi - lo + 1)
          | N.Concat parts ->
            Array.concat (List.map (use_bits st nl) (List.rev parts))
          | N.ReduceOr a ->
            let ba = use_bits st nl a in
            if Array.length ba = 1 then
              (* Keep a fresh node (x | x) so naming never aliases. *)
              [| N.op2 out N.Or ba.(0) ba.(0) |]
            else
              [|
                Array.fold_left
                  (fun acc x ->
                    match acc with
                    | None -> Some x
                    | Some y -> Some (N.op2 out N.Or y x))
                  None ba
                |> Option.get;
              |]
          | N.ReduceAnd a ->
            let ba = use_bits st nl a in
            if Array.length ba = 1 then [| N.op2 out N.And ba.(0) ba.(0) |]
            else
              [|
                Array.fold_left
                  (fun acc x ->
                    match acc with
                    | None -> Some x
                    | Some y -> Some (N.op2 out N.And y x))
                  None ba
                |> Option.get;
              |]
          | N.Input | N.Const _ | N.Reg _ | N.Wire _ -> assert false
        in
        st.bits.(id) <- bits;
        (* A named combinational signal reappears as a fresh named node so
           sidecars keep resolving it (never aliasing an existing name). *)
        Option.iter
          (fun nm ->
            let s =
              if w = 1 then N.extract out ~hi:0 ~lo:0 bits.(0)
              else N.concat out (List.rev (Array.to_list bits))
            in
            N.set_name out s nm;
            st.word.(id) <- s)
          nd.N.name);
  (* Sequential / forward connections. *)
  N.iter_nodes nl (fun nd ->
      match nd.N.kind with
      | N.Reg { next; enable; _ } ->
        Option.iter (fun nx -> N.connect_reg out st.word.(nd.N.id) (word_of st nx)) next;
        Option.iter (fun en -> N.connect_enable out st.word.(nd.N.id) (word_of st en)) enable
      | N.Wire { driver } ->
        Option.iter (fun d -> N.connect_wire out st.word.(nd.N.id) (word_of st d)) driver
      | _ -> ());
  (* Total mapping. *)
  let image = Array.init n (fun id -> word_of st id) in
  N.validate out;
  (out, image)
