(** Known-bits abstract interpretation over the word-level IR.

    A forward dataflow analysis on a ternary per-bit lattice: every bit of
    every signal is either proven 0, proven 1, or unknown (⊤).  The result
    abstracts {e every} reachable concrete state from reset, at every
    cycle — including cycle 0 — so a bit reported known is a true invariant
    of the design, usable to discharge covers statically or to freeze unit
    literals before SAT encoding.

    Precision notes: mux arms are killed by (even partially) known selects,
    And/Or/Xor/Not use exact bitwise rules, Extract/Concat route bits,
    Add/Sub/Mul keep the contiguous low bits determined by both operands
    (carries propagate strictly upward), Eq/Ult fold via bit-disagreement
    and unsigned-interval reasoning, and everything else widens to ⊤.
    Primary inputs and [Init_symbolic] registers are unconstrained. *)

(** Abstract value of one signal: bit [i] of [known] set means bit [i] is
    proven equal to bit [i] of [value] in every reachable state.  Unknown
    bits of [value] are normalized to zero. *)
type fact = { known : Bitvec.t; value : Bitvec.t }

val top : int -> fact
(** [top w] is the unconstrained fact of width [w]. *)

val exact : Bitvec.t -> fact
(** [exact v] is the fully-known fact with value [v]. *)

val is_exact : fact -> bool

val join : fact -> fact -> fact
(** Least upper bound: a bit stays known only if both sides know it and
    agree on its value. *)

val fact_equal : fact -> fact -> bool

val transfer : (Netlist.signal -> fact) -> Netlist.node -> fact
(** One cell's transfer function, reading operand facts through the given
    environment.  Registers return their own fact unchanged (the
    register-step join lives in the fixpoint, not here).  Exposed for unit
    tests of individual rules. *)

val analyze : Netlist.t -> fact array
(** Full analysis: register-step fixpoint seeded from reset state, then one
    final combinational sweep.  Requires a validated netlist (acyclic
    combinational logic); register facts only lose known bits across
    rounds, so the fixpoint terminates in at most total-register-bits
    rounds.  Index the result by signal id. *)

val known_bits : Netlist.t -> (Bitvec.t * Bitvec.t) array
(** [analyze] with facts flattened to [(known, value)] pairs — the shape
    the prune, lint, and SAT-simplification clients consume. *)

val stuck_value : (Bitvec.t * Bitvec.t) array -> Netlist.signal -> Bitvec.t option
(** The signal's proven constant value, if every bit is known. *)

val known_zero : (Bitvec.t * Bitvec.t) array -> Netlist.signal -> bool
(** True when the signal is proven identically zero. *)

val known_count : (Bitvec.t * Bitvec.t) array -> int
(** Total number of proven bits across all signals (a precision metric). *)
