(** Word-level to gate-level lowering.

    Rewrites a netlist so that every bitwise/control operation (And, Or,
    Xor, Not, Mux, Eq, Ult, ReduceOr, ReduceAnd, Extract, Concat) becomes
    a forest of 1-bit gates, the shape Yosys + abc emit for synthesized
    cores.  Arithmetic (Add, Sub, Mul, Slt) is kept word-level, standing
    in for the adder/multiplier macro-cells a real gate-level flow leaves
    unmapped.  Inputs, constants and registers stay word-level and keep
    their names and relative order (so simulation draws the same random
    stimulus for both variants); every named combinational signal
    reappears under its name as the concatenation of its bits.

    The lowering is deliberately naive — each use of a word-level signal
    re-extracts the bits it needs, so structurally duplicate gates abound.
    That makes its output the canonical workload for {!Equiv}: a
    post-synthesis-shaped netlist that sweeps back down to size, while
    {!Equiv.semantic_digest} is preserved by construction. *)

val run : Netlist.t -> Netlist.t * Netlist.signal array
(** [run nl] returns the gate-level netlist and the total mapping [image]
    with [image.(old_id)] the new signal carrying the same word value.
    The input netlist must validate; so does the output. *)
