(** Static netlist analyses beyond {!Netlist}'s cone/order primitives.

    These back the µLint passes (structural and reachability) and the
    static cover-pruning pre-pass of µPATH synthesis: constant folding,
    observability (dead cells), and an abstract interpretation that
    over-approximates the reachable state set of a µFSM's state
    registers. *)

val const_values : Netlist.t -> Bitvec.t option array
(** Per-signal constant value, when one exists: [Some v] for nodes whose
    value is determined by the netlist structure alone (constants and
    combinational logic over them; a mux with a constant selector folds
    through the taken branch even if the other branch is not constant, and
    an extract folds through Concat/Extract/Wire/Not chains whenever the
    {e selected} bits land on constant parts, even if the whole source word
    does not fold).  Registers and inputs are never constant.  Tolerates
    unconnected and cyclic nodes (they fold to [None]). *)

val constant_foldable : Netlist.t -> Netlist.signal list
(** Non-[Const] combinational nodes whose value [const_values] proves
    constant — logic a synthesizer would fold away, and a µLint finding. *)

val dead_cells : Netlist.t -> roots:Netlist.signal list -> Netlist.signal list
(** Nodes outside the liveness closure of [roots], where the closure
    follows combinational fan-in and the sequential inputs (next/enable)
    of registers.  With roots = registers + named signals + annotated
    signals this is exactly "not in the cone of influence of any output,
    register, or annotated signal": such nodes cannot influence anything
    observable.  Sorted by id. *)

val taint_reach :
  ?precise:bool ->
  ?known:(Bitvec.t * Bitvec.t) array ->
  ?blocked:Netlist.signal list ->
  sources:Netlist.signal list ->
  Netlist.t ->
  Bitvec.t array
(** Over-approximate word-level taint dataflow on the un-instrumented
    netlist: seed every [sources] register all-tainted, propagate per-bit
    may-taint masks through the combinational cones with cell rules
    mirroring [Ift.instrument]'s (value-aware AND/OR/MUX when [precise],
    taint-union otherwise; whole-word conservative for arithmetic and
    comparisons) and across register steps to a fixpoint.  [blocked]
    registers are kill sites — their masks are pinned to zero (unless also
    a source; injection wins, as in [Ift]) — and a register behind an
    enable whose mask is nonzero degrades to all-tainted ([Ift] rejects
    enables; the static rule stays sound for designs it cannot
    instrument).

    Returns one mask per signal, indexed by signal id: bit [i] set means
    taint {e may} reach bit [i] of that signal on some cycle of some
    execution.  {b Soundness}: the mask contains every bit the
    [Ift]-instrumented design can dynamically taint under any inject
    condition, flush schedule, and stimulus — {e when the instrumentation
    uses the same [precise] mode}.  The precise static rules are not sound
    against the imprecise dynamic rules (a constant-0 AND operand stops
    taint statically that the union rule propagates), so analyze with the
    precision you instrument with.  A µFSM state variable or PCR whose mask
    is zero can never become tainted, so IFT covers requiring its taint may
    be discharged as unreachable without the model checker.

    [known] optionally refines the precise rules with per-signal known-bits
    invariants ({!Absint.known_bits} of the same netlist): the value-aware
    AND/OR/MUX rules then use the bit-level envelope instead of only
    whole-word constants, killing more propagation paths while remaining an
    over-approximation of the dynamic shadow (runtime values always lie
    inside the invariant envelope).  Ignored when [precise] is false. *)

val taint_reaches : Bitvec.t array -> Netlist.signal -> bool
(** [taint_reaches (taint_reach ...) s]: some bit of [s] may carry taint. *)

val fsm_reachable :
  ?known:(Bitvec.t * Bitvec.t) array ->
  Netlist.t ->
  vars:Netlist.signal list ->
  Bitvec.t list option
(** Over-approximate the reachable joint-state set of the given state
    registers by abstract interpretation over value sets: starting from the
    registers' reset values (a symbolic init contributes every value), each
    step evaluates the next-state cones with the state registers bound to
    their accumulated sets and everything else (inputs, other registers)
    unconstrained, until a fixpoint.  Mux selectors that collapse to a
    single value prune the untaken branch; unknown selectors union both.
    Registers whose enable is provably stuck at 0 keep their reset value.

    Returns the joint valuations with the {e first} variable in the most
    significant bits (the layout [Dsl.concat] gives a harness's
    state-of-µFSM vector), or [None] when the analysis cannot bound the
    domain (a var is not a connected register, widths are too large, or
    value sets blow past the widening cap).  {b Soundness}: a valuation
    absent from [Some set] is truly unreachable in the concrete design
    under {e any} input sequence — environment assumptions only shrink the
    concrete set further — so covers over such states may be discharged
    as unreachable without the model checker.

    [known] optionally supplies known-bits invariants
    ({!Absint.known_bits}): any node the value-set evaluation widens to
    Top — an input, a foreign register, a wide arithmetic result — is then
    bounded by enumerating the completions of its unknown bits (when at
    most {!kb_enum_cap} bits are unknown), letting the product survive
    where the unrefined analysis bails. *)

val kb_enum_cap : int
(** Maximum number of unknown bits [fsm_reachable] enumerates when bounding
    a Top node by its known-bits envelope (2{^ cap} completions). *)
