type signal = int

type op2 = And | Or | Xor | Add | Sub | Mul | Eq | Ult | Slt

type init = Init_value of Bitvec.t | Init_symbolic

type kind =
  | Input
  | Const of Bitvec.t
  | Reg of { init : init; mutable next : signal option; mutable enable : signal option }
  | Wire of { mutable driver : signal option }
  | Not of signal
  | Op2 of op2 * signal * signal
  | Mux of { sel : signal; on_true : signal; on_false : signal }
  | Extract of { hi : int; lo : int; arg : signal }
  | Concat of signal list
  | ReduceOr of signal
  | ReduceAnd of signal

type node = { id : signal; width : int; kind : kind; name : string option }

type t = {
  netlist_name : string;
  mutable nodes : node array;
  mutable count : int;
  names : (string, signal) Hashtbl.t;
  mutable digest_cache : string option;
      (* Memoized [digest]: the checker recomputes the digest per cover for
         every cache key, so it must be O(1) between mutations.  Every
         mutation path (add / set_name / connect functions) clears it. *)
}

let create netlist_name =
  {
    netlist_name;
    nodes = Array.make 64 { id = 0; width = 1; kind = Input; name = None };
    count = 0;
    names = Hashtbl.create 64;
    digest_cache = None;
  }

let name t = t.netlist_name

let node t s =
  if s < 0 || s >= t.count then
    invalid_arg
      (Printf.sprintf "Netlist.node: bad signal %d in %s (%d nodes)" s
         t.netlist_name t.count);
  t.nodes.(s)

(* Shared by every error site: name the offending node when it has a name,
   and always give its id, so a failure inside a large elaboration points
   at the node rather than just the operation. *)
let describe_node n =
  match n.name with
  | Some nm -> Printf.sprintf "%s (node %d)" nm n.id
  | None -> Printf.sprintf "node %d" n.id

let describe t s =
  if s < 0 || s >= t.count then Printf.sprintf "signal %d" s
  else describe_node t.nodes.(s)

let width t s = (node t s).width
let num_nodes t = t.count

let iter_nodes t f =
  for i = 0 to t.count - 1 do
    f t.nodes.(i)
  done

let fold_nodes t ~init ~f =
  let acc = ref init in
  iter_nodes t (fun n -> acc := f !acc n);
  !acc

let find_named t nm = Hashtbl.find_opt t.names nm

let register_name t s nm =
  (match Hashtbl.find_opt t.names nm with
  | Some holder ->
    failwith
      (Printf.sprintf "Netlist %s: duplicate name %s (held by %s, wanted for node %d)"
         t.netlist_name nm (describe t holder) s)
  | None -> ());
  Hashtbl.replace t.names nm s

let add t ?name width kind =
  t.digest_cache <- None;
  if width <= 0 then
    invalid_arg
      (Printf.sprintf "Netlist.add: width must be positive, got %d for %s (node %d)"
         width
         (match name with Some nm -> nm | None -> "<unnamed>")
         t.count);
  if t.count = Array.length t.nodes then begin
    let a = Array.make (2 * t.count) t.nodes.(0) in
    Array.blit t.nodes 0 a 0 t.count;
    t.nodes <- a
  end;
  let id = t.count in
  let n = { id; width; kind; name } in
  t.nodes.(id) <- n;
  t.count <- id + 1;
  (match name with Some nm -> register_name t id nm | None -> ());
  id

let set_name t s nm =
  t.digest_cache <- None;
  let n = node t s in
  (match n.name with
  | Some old -> Hashtbl.remove t.names old
  | None -> ());
  t.nodes.(s) <- { n with name = Some nm };
  register_name t s nm

let input t nm w = add t ~name:nm w Input
let const t v = add t (Bitvec.width v) (Const v)

let reg t ?enable ~name ~init ~width () =
  (match init with
  | Init_value v ->
    if Bitvec.width v <> width then
      invalid_arg
        (Printf.sprintf
           "Netlist.reg: init width mismatch for %s (node %d): init is %d bits, \
            register is %d"
           name t.count (Bitvec.width v) width)
  | Init_symbolic -> ());
  add t ~name width (Reg { init; next = None; enable })

let wire t ?name w = add t ?name w (Wire { driver = None })

let connect_reg t r nxt =
  t.digest_cache <- None;
  match (node t r).kind with
  | Reg re ->
    (match re.next with
    | Some _ ->
      failwith
        (Printf.sprintf "Netlist.connect_reg: %s already connected" (describe t r))
    | None ->
      if width t nxt <> width t r then
        failwith
          (Printf.sprintf
             "Netlist.connect_reg: width mismatch: %s is %d bits, next %s is %d"
             (describe t r) (width t r) (describe t nxt) (width t nxt));
      re.next <- Some nxt)
  | _ ->
    failwith
      (Printf.sprintf "Netlist.connect_reg: %s is not a register" (describe t r))

let connect_enable t r en =
  t.digest_cache <- None;
  match (node t r).kind with
  | Reg re ->
    (match re.enable with
    | Some _ ->
      failwith
        (Printf.sprintf "Netlist.connect_enable: %s already connected"
           (describe t r))
    | None ->
      if width t en <> 1 then
        failwith
          (Printf.sprintf
             "Netlist.connect_enable: enable for %s must be 1 bit, %s is %d"
             (describe t r) (describe t en) (width t en));
      re.enable <- Some en)
  | _ ->
    failwith
      (Printf.sprintf "Netlist.connect_enable: %s is not a register"
         (describe t r))

let connect_wire t w drv =
  t.digest_cache <- None;
  match (node t w).kind with
  | Wire wi ->
    (match wi.driver with
    | Some _ ->
      failwith
        (Printf.sprintf "Netlist.connect_wire: %s already connected"
           (describe t w))
    | None ->
      if width t drv <> width t w then
        failwith
          (Printf.sprintf
             "Netlist.connect_wire: width mismatch: %s is %d bits, driver %s is %d"
             (describe t w) (width t w) (describe t drv) (width t drv));
      wi.driver <- Some drv)
  | _ ->
    failwith
      (Printf.sprintf "Netlist.connect_wire: %s is not a wire" (describe t w))

let not_ t a = add t (width t a) (Not a)

let op2 t op a b =
  let wa = width t a and wb = width t b in
  (match op with
  | And | Or | Xor | Add | Sub | Mul | Eq | Ult | Slt ->
    if wa <> wb then
      invalid_arg
        (Printf.sprintf "Netlist.op2: width mismatch: %s is %d bits, %s is %d"
           (describe t a) wa (describe t b) wb));
  let w = match op with Eq | Ult | Slt -> 1 | _ -> wa in
  add t w (Op2 (op, a, b))

let mux t ~sel ~on_true ~on_false =
  if width t sel <> 1 then
    invalid_arg
      (Printf.sprintf "Netlist.mux: selector %s must be 1 bit, got %d"
         (describe t sel) (width t sel));
  if width t on_true <> width t on_false then
    invalid_arg
      (Printf.sprintf
         "Netlist.mux: branch width mismatch: %s is %d bits, %s is %d"
         (describe t on_true) (width t on_true) (describe t on_false)
         (width t on_false));
  add t (width t on_true) (Mux { sel; on_true; on_false })

let extract t ~hi ~lo arg =
  let w = width t arg in
  if lo < 0 || hi >= w || hi < lo then
    invalid_arg
      (Printf.sprintf "Netlist.extract: bad range [%d:%d] of %s (%d bits)" hi lo
         (describe t arg) w);
  add t (hi - lo + 1) (Extract { hi; lo; arg })

let concat t parts =
  match parts with
  | [] ->
    invalid_arg
      (Printf.sprintf "Netlist.concat: empty part list in %s" t.netlist_name)
  | [ s ] -> s
  | _ ->
    let w = List.fold_left (fun acc s -> acc + width t s) 0 parts in
    add t w (Concat parts)

let reduce_or t a = add t 1 (ReduceOr a)
let reduce_and t a = add t 1 (ReduceAnd a)

(* Combinational inputs of a node: the signals read in the same cycle.
   A register reads [next]/[enable] for the *following* cycle, so it has no
   combinational fan-in. *)
let comb_fanin t s =
  match (node t s).kind with
  | Input | Const _ | Reg _ -> []
  | Wire { driver } -> (match driver with Some d -> [ d ] | None -> [])
  | Not a | ReduceOr a | ReduceAnd a -> [ a ]
  | Op2 (_, a, b) -> [ a; b ]
  | Mux { sel; on_true; on_false } -> [ sel; on_true; on_false ]
  | Extract { arg; _ } -> [ arg ]
  | Concat parts -> parts

(* Nontrivial strongly connected components of the combinational dependency
   graph (node -> comb_fanin): every combinational cycle lies inside one, and
   a component is nontrivial when it has more than one node or a self-edge.
   Tarjan's algorithm; members are sorted by id, components come out in
   first-discovery order. *)
let comb_sccs t =
  let n = t.count in
  let index = Array.make (max n 1) (-1) in
  let lowlink = Array.make (max n 1) 0 in
  let on_stack = Array.make (max n 1) false in
  let stack = ref [] in
  let next_index = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (comb_fanin t v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
      in
      let comp = pop [] in
      let nontrivial =
        match comp with [ s ] -> List.mem s (comb_fanin t s) | _ -> true
      in
      if nontrivial then sccs := List.sort Int.compare comp :: !sccs
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  List.rev !sccs

let validate t =
  let describe = describe_node in
  (* Collect every problem before failing: all unconnected registers and
     wires, then every combinational cycle (one per nontrivial SCC), so a
     partial design surfaces its full repair list in one error. *)
  let unconnected =
    fold_nodes t ~init:[] ~f:(fun acc n ->
        match n.kind with
        | Reg { next = None; _ } ->
          Printf.sprintf "unconnected register %s" (describe n) :: acc
        | Wire { driver = None } ->
          Printf.sprintf "unconnected wire %s" (describe n) :: acc
        | _ -> acc)
    |> List.rev
  in
  let cycles =
    List.map
      (fun scc ->
        Printf.sprintf "combinational cycle through %s"
          (String.concat " -> " (List.map (fun s -> describe (node t s)) scc)))
      (comb_sccs t)
  in
  match unconnected @ cycles with
  | [] -> ()
  | [ msg ] -> failwith (Printf.sprintf "Netlist %s: %s" t.netlist_name msg)
  | msgs ->
    failwith
      (Printf.sprintf "Netlist %s: %d problems: %s" t.netlist_name
         (List.length msgs) (String.concat "; " msgs))

let comb_order t =
  let order = Array.make t.count 0 in
  let pos = ref 0 in
  let color = Array.make t.count 0 in
  let rec visit s =
    if color.(s) = 0 then begin
      color.(s) <- 1;
      List.iter visit (comb_fanin t s);
      color.(s) <- 2;
      order.(!pos) <- s;
      incr pos
    end
  in
  for s = 0 to t.count - 1 do
    visit s
  done;
  order

let comb_cone t roots =
  let seen = Hashtbl.create 64 in
  let rec visit s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.replace seen s ();
      List.iter visit (comb_fanin t s)
    end
  in
  List.iter visit roots;
  seen

let registers t =
  fold_nodes t ~init:[] ~f:(fun acc n ->
      match n.kind with Reg _ -> n.id :: acc | _ -> acc)
  |> List.rev

let inputs t =
  fold_nodes t ~init:[] ~f:(fun acc n ->
      match n.kind with Input -> n.id :: acc | _ -> acc)
  |> List.rev

(* --- structural digest --------------------------------------------------- *)

let compute_digest t =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sig_opt = function None -> "." | Some s -> string_of_int s in
  let bv v =
    Printf.sprintf "%d'%s" (Bitvec.width v) (Bitvec.to_hex_string v)
  in
  add "netlist %s %d\n" t.netlist_name t.count;
  iter_nodes t (fun n ->
      add "%d %d %s " n.id n.width (Option.value n.name ~default:".");
      (match n.kind with
      | Input -> add "in"
      | Const v -> add "c %s" (bv v)
      | Reg { init; next; enable } ->
        let i = match init with Init_value v -> bv v | Init_symbolic -> "sym" in
        add "r %s %s %s" i (sig_opt next) (sig_opt enable)
      | Wire { driver } -> add "w %s" (sig_opt driver)
      | Not a -> add "not %d" a
      | Op2 (op, a, b) ->
        let o =
          match op with
          | And -> "and" | Or -> "or" | Xor -> "xor" | Add -> "add"
          | Sub -> "sub" | Mul -> "mul" | Eq -> "eq" | Ult -> "ult"
          | Slt -> "slt"
        in
        add "%s %d %d" o a b
      | Mux { sel; on_true; on_false } -> add "mux %d %d %d" sel on_true on_false
      | Extract { hi; lo; arg } -> add "ex %d %d %d" hi lo arg
      | Concat args -> add "cat %s" (String.concat "," (List.map string_of_int args))
      | ReduceOr a -> add "ror %d" a
      | ReduceAnd a -> add "rand %d" a);
      Buffer.add_char buf '\n');
  Digest.to_hex (Digest.string (Buffer.contents buf))

let digest t =
  match t.digest_cache with
  | Some d -> d
  | None ->
    let d = compute_digest t in
    t.digest_cache <- Some d;
    d
