(* Static netlist analyses beyond the cone/order primitives of [Netlist]:
   constant folding, observability (dead cells), and an abstract
   interpretation of µFSM state registers that over-approximates their
   reachable state sets.  These back the µLint passes and the static
   cover-pruning pre-pass of [Mupath.Synth]. *)

module N = Netlist

(* --- constant folding --------------------------------------------------- *)

let eval_op2 op a b =
  match op with
  | N.And -> Bitvec.logand a b
  | N.Or -> Bitvec.logor a b
  | N.Xor -> Bitvec.logxor a b
  | N.Add -> Bitvec.add a b
  | N.Sub -> Bitvec.sub a b
  | N.Mul -> Bitvec.mul a b
  | N.Eq -> Bitvec.of_bool (Bitvec.equal a b)
  | N.Ult -> Bitvec.of_bool (Bitvec.ult a b)
  | N.Slt -> Bitvec.of_bool (Bitvec.slt a b)

let const_values t =
  let n = N.num_nodes t in
  let memo = Array.make (max n 1) `Unknown in
  let rec value s =
    match memo.(s) with
    | `Done v -> v
    | `Busy -> None (* combinational cycle: not a constant *)
    | `Unknown ->
      memo.(s) <- `Busy;
      let v = compute s in
      memo.(s) <- `Done v;
      v
  and compute s =
    match (N.node t s).N.kind with
    | N.Const v -> Some v
    | N.Input | N.Reg _ -> None
    | N.Wire { driver = Some d } -> value d
    | N.Wire { driver = None } -> None
    | N.Not a -> Option.map Bitvec.lognot (value a)
    | N.Op2 (op, a, b) -> (
      match (value a, value b) with
      | Some va, Some vb -> Some (eval_op2 op va vb)
      | _ -> None)
    | N.Mux { sel; on_true; on_false } -> (
      match value sel with
      | Some v -> if Bitvec.is_zero v then value on_false else value on_true
      | None -> (
        match (value on_true, value on_false) with
        | Some a, Some b when Bitvec.equal a b -> Some a
        | _ -> None))
    | N.Extract { hi; lo; arg } -> slice n arg hi lo
    | N.Concat parts ->
      List.fold_left
        (fun acc p ->
          match (acc, value p) with
          | Some a, Some v -> Some (Bitvec.concat a v)
          | _ -> None)
        (value (List.hd parts))
        (List.tl parts)
    | N.ReduceOr a ->
      Option.map (fun v -> Bitvec.of_bool (not (Bitvec.is_zero v))) (value a)
    | N.ReduceAnd a -> Option.map (fun v -> Bitvec.of_bool (Bitvec.is_ones v)) (value a)
  (* Bits [hi..lo] of signal [s], folding the extract *through* the
     structure: a slice of a partially-constant Concat is itself constant
     whenever the selected range lands on constant parts, even though the
     whole word is not.  [fuel] bounds chain length so cyclic wire chains in
     unvalidated netlists (µLint's input) terminate. *)
  and slice fuel s hi lo =
    match value s with
    | Some v -> Some (Bitvec.extract v ~hi ~lo)
    | None when fuel <= 0 -> None
    | None -> (
      match (N.node t s).N.kind with
      | N.Wire { driver = Some d } -> slice (fuel - 1) d hi lo
      | N.Not a -> Option.map Bitvec.lognot (slice (fuel - 1) a hi lo)
      | N.Extract { lo = l2; arg; _ } -> slice (fuel - 1) arg (l2 + hi) (l2 + lo)
      | N.Concat parts ->
        (* Walk the parts LSB-first (the list head holds the MSBs),
           slicing each part that overlaps the requested range. *)
        let rec collect parts_lsb_first off =
          match parts_lsb_first with
          | [] -> Some []
          | p :: rest ->
            let w = N.width t p in
            if off > hi then Some []
            else if off + w <= lo then collect rest (off + w)
            else
              let plo = max lo off - off and phi = min hi (off + w - 1) - off in
              (match slice (fuel - 1) p phi plo with
              | None -> None
              | Some v ->
                Option.map (fun tl -> v :: tl) (collect rest (off + w)))
        in
        (match collect (List.rev parts) 0 with
        | Some (piece :: pieces) ->
          (* pieces are LSB-first: fold each higher piece onto the top *)
          Some (List.fold_left (fun acc v -> Bitvec.concat v acc) piece pieces)
        | _ -> None)
      | _ -> None)
  in
  Array.init (max n 1) (fun s -> if s < n then value s else None)

let constant_foldable t =
  let consts = const_values t in
  N.fold_nodes t ~init:[] ~f:(fun acc n ->
      match n.N.kind with
      | N.Const _ | N.Input | N.Reg _ -> acc
      | _ -> if consts.(n.N.id) <> None then n.N.id :: acc else acc)
  |> List.rev

(* --- observability (dead cells) ----------------------------------------- *)

(* Liveness closure from [roots] through both combinational fan-in and the
   sequential inputs of registers (next/enable): a node outside the closure
   cannot influence any root — for roots = {registers, named signals,
   annotated signals} this is exactly "not in the cone of influence of any
   output, register, or annotated signal". *)
let dead_cells t ~roots =
  let n = N.num_nodes t in
  let live = Array.make (max n 1) false in
  let fanin s =
    match (N.node t s).N.kind with
    | N.Reg { next; enable; _ } -> List.filter_map Fun.id [ next; enable ]
    | _ -> N.comb_fanin t s
  in
  let rec mark s =
    if not live.(s) then begin
      live.(s) <- true;
      List.iter mark (fanin s)
    end
  in
  List.iter mark roots;
  let acc = ref [] in
  for s = n - 1 downto 0 do
    if not live.(s) then acc := s :: !acc
  done;
  !acc

(* --- static taint dataflow ---------------------------------------------- *)

(* Word-level may-taint masks to a sequential fixpoint.  The combinational
   rules mirror [Ift.instrument]'s cell rules with runtime values replaced
   by static constants where [const_values] knows them and by all-ones
   (taint may pass) where it does not, so the per-signal mask always
   over-approximates the dynamic shadow the instrumented design computes —
   in the matching [precise] mode.  (The precise static rules are *not*
   sound against the imprecise dynamic rules: a constant-0 AND operand
   stops taint statically but the union rule propagates it dynamically, so
   callers must analyze with the same precision they instrument with.)

   [known] optionally supplies per-signal known-bits invariants
   ([Absint.known_bits] of the same netlist): the precise rules then use
   the bit-level envelope (a bit proven 0 cannot pass taint through an AND,
   a partially-known mux select with a proven-1 bit kills the false arm)
   instead of only whole-word constants.  Sound for the same reason the
   constant map is: every runtime value of the instrumented design lies
   inside the invariant envelope.  Ignored when [precise] is false — the
   imprecise dynamic rules are plain unions, so value reasoning would
   under-approximate them. *)
let taint_reach ?(precise = true) ?known ?(blocked = []) ~sources t =
  let n = N.num_nodes t in
  let kb = if precise then known else None in
  let consts =
    if precise && kb = None then const_values t else [||]
  in
  let cval s =
    match kb with
    | Some k ->
      let kn, v = k.(s) in
      if Bitvec.is_ones kn then Some v else None
    | None -> if precise then consts.(s) else None
  in
  let masks = Array.init n (fun s -> Bitvec.zero (N.width t s)) in
  let is_source = Array.make (max n 1) false in
  List.iter (fun s -> is_source.(s) <- true) sources;
  (* An injected source register reads as tainted even when also listed as
     blocked, matching [Ift]'s phase-3 priority (inject over blocked). *)
  let is_blocked = Array.make (max n 1) false in
  List.iter (fun s -> if not is_source.(s) then is_blocked.(s) <- true) blocked;
  List.iter (fun s -> masks.(s) <- Bitvec.ones (N.width t s)) sources;
  let order = N.comb_order t in
  (* Bits that may be 1 / may be 0 at runtime: with known-bits this is the
     per-bit envelope; with only the constant map it degrades to all-ones
     for non-constant signals. *)
  let val_or_ones s =
    match kb with
    | Some k ->
      let kn, v = k.(s) in
      Bitvec.logor v (Bitvec.lognot kn)
    | None -> (
      match cval s with Some v -> v | None -> Bitvec.ones (N.width t s))
  in
  let nval_or_ones s =
    match kb with
    | Some k ->
      let kn, v = k.(s) in
      Bitvec.lognot (Bitvec.logand kn v)
    | None -> (
      match cval s with
      | Some v -> Bitvec.lognot v
      | None -> Bitvec.ones (N.width t s))
  in
  (* Bits where the two mux arms may disagree at runtime. *)
  let may_differ a b =
    match kb with
    | Some k ->
      let ka, va = k.(a) and kbm, vb = k.(b) in
      let agree =
        Bitvec.logand (Bitvec.logand ka kbm)
          (Bitvec.lognot (Bitvec.logxor va vb))
      in
      Bitvec.lognot agree
    | None -> (
      match (cval a, cval b) with
      | Some va, Some vb -> Bitvec.logxor va vb
      | _ -> Bitvec.ones (N.width t a))
  in
  (* A select with any proven-1 bit is nonzero at runtime: the mux always
     takes its true arm. *)
  let sel_known_nonzero s =
    match kb with
    | Some k ->
      let kn, v = k.(s) in
      not (Bitvec.is_zero (Bitvec.logand kn v))
    | None -> false
  in
  let repl1 b w = if b then Bitvec.ones w else Bitvec.zero w in
  let any m = not (Bitvec.is_zero m) in
  let comb_mask id =
    let w = N.width t id in
    match (N.node t id).N.kind with
    | N.Input | N.Const _ | N.Reg _ -> masks.(id)
    | N.Wire { driver = Some d } -> masks.(d)
    | N.Wire { driver = None } -> Bitvec.zero w
    | N.Not a -> masks.(a)
    | N.Op2 (N.And, a, b) ->
      if precise then
        (* an output bit flips only where a controlling input is tainted *)
        Bitvec.logor
          (Bitvec.logand masks.(a) (Bitvec.logor (val_or_ones b) masks.(b)))
          (Bitvec.logand masks.(b) (val_or_ones a))
      else Bitvec.logor masks.(a) masks.(b)
    | N.Op2 (N.Or, a, b) ->
      if precise then
        Bitvec.logor
          (Bitvec.logand masks.(a) (Bitvec.logor (nval_or_ones b) masks.(b)))
          (Bitvec.logand masks.(b) (nval_or_ones a))
      else Bitvec.logor masks.(a) masks.(b)
    | N.Op2 (N.Xor, a, b) -> Bitvec.logor masks.(a) masks.(b)
    | N.Op2 ((N.Add | N.Sub | N.Mul), a, b) ->
      (* conservative: any tainted input bit taints the whole word *)
      repl1 (any (Bitvec.logor masks.(a) masks.(b))) w
    | N.Op2 ((N.Eq | N.Ult | N.Slt), a, b) ->
      Bitvec.of_bool (any (Bitvec.logor masks.(a) masks.(b)))
    | N.Mux { sel; on_true; on_false } ->
      let tt = masks.(on_true) and tf = masks.(on_false) in
      let tsel = any masks.(sel) in
      if precise then begin
        let base =
          if sel_known_nonzero sel then tt
          else
            match cval sel with
            | Some v -> if Bitvec.is_zero v then tf else tt
            | None -> Bitvec.logor tt tf
        in
        let differ =
          if not tsel then Bitvec.zero w
          else
            Bitvec.logor (may_differ on_true on_false) (Bitvec.logor tt tf)
        in
        Bitvec.logor base differ
      end
      else Bitvec.logor (Bitvec.logor tt tf) (repl1 tsel w)
    | N.Extract { hi; lo; arg } -> Bitvec.extract masks.(arg) ~hi ~lo
    | N.Concat parts -> (
      match parts with
      | [] -> Bitvec.zero w
      | p :: rest ->
        List.fold_left (fun acc p' -> Bitvec.concat acc masks.(p')) masks.(p) rest)
    | N.ReduceOr a | N.ReduceAnd a -> Bitvec.of_bool (any masks.(a))
  in
  (* Alternate combinational and sequential passes until the register masks
     stop growing.  Every rule is monotone in its input masks and register
     masks only accumulate, so the loop terminates within (total register
     bits + 1) iterations. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun id ->
        match (N.node t id).N.kind with
        | N.Reg _ | N.Input | N.Const _ -> ()
        | _ ->
          if not (is_source.(id) || is_blocked.(id)) then
            masks.(id) <- comb_mask id)
      order;
    N.iter_nodes t (fun node ->
        match node.N.kind with
        | N.Reg { next; enable; _ }
          when not (is_source.(node.N.id) || is_blocked.(node.N.id)) ->
          let upd =
            (* A tainted enable makes whether-the-register-updates itself
               operand-dependent: the whole word may carry taint.  ([Ift]
               rejects enables outright; the static rule stays sound for
               designs it cannot instrument.) *)
            match enable with
            | Some en when any masks.(en) -> Bitvec.ones node.N.width
            | _ -> (
              match next with
              | Some nxt -> masks.(nxt)
              | None -> Bitvec.zero node.N.width)
          in
          let m = Bitvec.logor masks.(node.N.id) upd in
          if not (Bitvec.equal m masks.(node.N.id)) then begin
            masks.(node.N.id) <- m;
            changed := true
          end
        | _ -> ())
  done;
  masks

let taint_reaches masks s = not (Bitvec.is_zero masks.(s))

(* --- abstract µFSM reachability ----------------------------------------- *)

module BvSet = Set.Make (Bitvec)

type aval = Top | Vals of BvSet.t

(* Value-set widening threshold: beyond this many distinct values a node's
   abstract value degrades to Top.  State registers are a few bits wide, so
   the sets that matter stay far below the cap. *)
let set_cap = 64

(* The per-variable analysis bails (returning [None]) rather than enumerate
   huge domains: registers wider than this cannot go to "all values", and
   joint products beyond [joint_cap] states are refused. *)
let max_var_width = 10
let joint_cap = 4096

exception Bail

let full_set w =
  if w > max_var_width then raise Bail
  else
    List.fold_left
      (fun acc i -> BvSet.add (Bitvec.of_int ~width:w i) acc)
      BvSet.empty
      (List.init (1 lsl w) Fun.id)

let clamp s = if BvSet.cardinal s > set_cap then Top else Vals s

let join a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Vals x, Vals y -> clamp (BvSet.union x y)

let map1 f = function Top -> Top | Vals s -> clamp (BvSet.map f s)

let map2 f a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Vals x, Vals y ->
    if BvSet.cardinal x * BvSet.cardinal y > set_cap * set_cap then Top
    else
      clamp
        (BvSet.fold
           (fun vx acc ->
             BvSet.fold (fun vy acc -> BvSet.add (f vx vy) acc) y acc)
           x BvSet.empty)

(* Known-bits rescue for [fsm_reachable]: a node the value-set evaluation
   widens to Top can still be bounded by its known-bits envelope when few
   enough bits are unknown to enumerate.  2^6 = 64 completions = [set_cap]. *)
let kb_enum_cap = 6

let kb_set known s =
  match known with
  | None -> None
  | Some k ->
    let kn, v = k.(s) in
    let w = Bitvec.width kn in
    let unknown = w - Bitvec.popcount kn in
    if unknown = 0 then Some (BvSet.singleton v)
    else if unknown > kb_enum_cap then None
    else begin
      let idxs =
        List.filter (fun i -> not (Bitvec.bit kn i)) (List.init w Fun.id)
      in
      let expand acc i =
        BvSet.fold
          (fun bv a -> BvSet.add (Bitvec.set_bit bv i true) (BvSet.add bv a))
          acc BvSet.empty
      in
      Some (List.fold_left expand (BvSet.singleton v) idxs)
    end

let fsm_reachable ?known t ~vars =
  match vars with
  | [] -> None
  | _ -> (
    try
      (* Pull each state register's init / next / enable up front; a var
         that is not a connected register defeats the analysis. *)
      let regs =
        List.map
          (fun v ->
            match (N.node t v).N.kind with
            | N.Reg { init; next = Some nxt; enable } -> (v, init, nxt, enable)
            | _ -> raise Bail)
          vars
      in
      let init_set v init =
        match init with
        | N.Init_value bv -> BvSet.singleton bv
        | N.Init_symbolic -> full_set (N.width t v)
      in
      (* env: accumulated reachable value set per state register.  Every
         other register and every input reads as Top, so the abstraction
         over-approximates regardless of the rest of the design (and of any
         checker-side environment assumptions, which only shrink the
         concrete reachable set). *)
      let env = Hashtbl.create 8 in
      List.iter (fun (v, init, _, _) -> Hashtbl.replace env v (init_set v init)) regs;
      let eval_with memo s =
        let rec eval s =
          match Hashtbl.find_opt memo s with
          | Some v -> v
          | None ->
            Hashtbl.replace memo s Top;
            (* cycle guard: sound *)
            let v =
              match (N.node t s).N.kind with
              | N.Input -> Top
              | N.Const c -> Vals (BvSet.singleton c)
              | N.Reg _ -> (
                match Hashtbl.find_opt env s with
                | Some set -> Vals set
                | None -> Top)
              | N.Wire { driver = Some d } -> eval d
              | N.Wire { driver = None } -> Top
              | N.Not a -> map1 Bitvec.lognot (eval a)
              | N.Op2 (op, a, b) -> map2 (eval_op2 op) (eval a) (eval b)
              | N.Mux { sel; on_true; on_false } -> (
                match eval sel with
                | Vals s1 when BvSet.cardinal s1 = 1 ->
                  if Bitvec.is_zero (BvSet.choose s1) then eval on_false
                  else eval on_true
                | _ -> join (eval on_true) (eval on_false))
              | N.Extract { hi; lo; arg } ->
                map1 (fun v -> Bitvec.extract v ~hi ~lo) (eval arg)
              | N.Concat parts ->
                List.fold_left
                  (fun acc p -> map2 Bitvec.concat acc (eval p))
                  (eval (List.hd parts))
                  (List.tl parts)
              | N.ReduceOr a ->
                map1 (fun v -> Bitvec.of_bool (not (Bitvec.is_zero v))) (eval a)
              | N.ReduceAnd a ->
                map1 (fun v -> Bitvec.of_bool (Bitvec.is_ones v)) (eval a)
            in
            let v =
              match v with
              | Top -> (
                match kb_set known s with Some set -> clamp set | None -> Top)
              | Vals _ -> v
            in
            Hashtbl.replace memo s v;
            v
        in
        eval s
      in
      (* Accumulate to fixpoint: each step evaluates every var's next-state
         expression under the current value sets and unions the results in
         (an enable that is not provably 1 means the register may also hold,
         but the held value is already accumulated). *)
      let changed = ref true in
      let iterations = ref 0 in
      while !changed do
        incr iterations;
        if !iterations > set_cap * List.length regs + 4 then raise Bail;
        changed := false;
        let memo = Hashtbl.create 256 in
        List.iter
          (fun (v, _, nxt, enable) ->
            let cur = Hashtbl.find env v in
            let upd =
              match eval_with memo nxt with
              | Top -> full_set (N.width t v)
              | Vals s -> s
            in
            (* An enable provably stuck at 0 freezes the register. *)
            let frozen =
              match enable with
              | None -> false
              | Some en -> (
                match eval_with memo en with
                | Vals s ->
                  (not (BvSet.is_empty s)) && BvSet.for_all Bitvec.is_zero s
                | Top -> false)
            in
            let nxt_set = if frozen then cur else BvSet.union cur upd in
            if not (BvSet.equal nxt_set cur) then begin
              Hashtbl.replace env v nxt_set;
              changed := true
            end)
          regs
      done;
      (* Joint states: cross product in variable order, concatenated with
         the first variable in the most-significant bits — the same layout
         [Dsl.concat] gives the harness's state_of_ufsm. *)
      let per_var = List.map (fun (v, _, _, _) -> BvSet.elements (Hashtbl.find env v)) regs in
      let joint =
        List.fold_left
          (fun acc vals ->
            if List.length acc * List.length vals > joint_cap then raise Bail
            else
              List.concat_map
                (fun hi -> List.map (fun lo -> Bitvec.concat hi lo) vals)
                acc)
          (List.map Fun.id (List.hd per_var))
          (List.tl per_var)
      in
      Some joint
    with Bail -> None)
