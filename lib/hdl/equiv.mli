(** Simulation-guided SAT sweeping (fraig-style equivalence reduction).

    Combinational nodes are treated as functions of the netlist's primary
    inputs and register outputs.  64 random patterns partition them into
    candidate equivalence classes (1-bit nodes additionally pair up with
    their complements); incremental miter queries on {!Sat.Solver} then
    prove or refute each candidate, with every refutation yielding a
    counterexample pattern that refines the partition, to a fixpoint.

    Proven classes are merged by a deterministic representative rule:
    the lowest node id wins.  Ports (inputs), registers, named signals —
    which covers everything a µFSM/IFR metadata sidecar can reference,
    since sidecars resolve signals by name — and caller-supplied extra
    signals are {e merge barriers}: they may anchor a class (serve as its
    representative for lower-id'd duplicates to merge into is not possible
    since barriers keep their position; rather, duplicates {e of} them are
    redirected onto them) but are never themselves rewritten away, so the
    observable semantics of the design are untouched.

    The pass also proves constants: a candidate whose value is invariant
    under every pattern is checked against that constant, and proven
    constants merge into a [Const] node — strictly stronger than the
    known-bits analysis ({!Absint}), which only propagates structural
    constants. *)

type cls = {
  rep : Netlist.signal;  (** Lowest-id member: the representative. *)
  members : (Netlist.signal * bool) list;
      (** Other proven-equal members, sorted by id.  The flag is [true]
          when the member equals the {e complement} of the representative
          (1-bit classes only). *)
  const_value : Bitvec.t option;
      (** When the class is additionally proven equal to a constant. *)
}

type stats = {
  comb_nodes : int;  (** Combinational (non-source, non-wire) nodes. *)
  candidates : int;  (** Sweepable subset: unnamed and not a barrier. *)
  classes : int;  (** Proven classes that produced at least one merge. *)
  merged : int;  (** Candidates rewritten away. *)
  complement_merged : int;  (** Merges through an inverter. *)
  const_merged : int;  (** Merges onto a proven constant. *)
  vetoed : int;
      (** Proven merges abandoned because applying them would have created
          a combinational cycle through a wire's forward driver. *)
  sat_queries : int;
  sat_refuted : int;  (** Queries whose counterexample refined the classes. *)
  sat_unknown : int;  (** Conflict-budget exhaustions; candidate not merged. *)
  patterns : int;  (** Simulation patterns used, including counterexamples. *)
}

val analyze :
  ?patterns:int ->
  ?max_conflicts:int ->
  ?barriers:Netlist.signal list ->
  Netlist.t ->
  cls list * stats
(** Prove equivalence classes without rewriting the netlist (the µLint
    client).  [patterns] (default 64) is the initial random-pattern count;
    [max_conflicts] (default 10_000) bounds each miter query; [barriers]
    adds extra merge barriers on top of the built-in rule.  Classes are
    sorted by representative id.  The netlist must validate. *)

val reduce :
  ?patterns:int ->
  ?max_conflicts:int ->
  ?barriers:Netlist.signal list ->
  Netlist.t ->
  Netlist.t * Netlist.signal array * stats
(** Sweep: returns the reduced netlist together with the total mapping
    [image] — [image.(old_id)] is the signal in the new netlist carrying
    the same value — and merge statistics.  Every named signal, input and
    register survives under its own name; node ids are renumbered densely.
    Merges that would create a combinational cycle (possible because wire
    drivers may point forward) are vetoed deterministically and counted. *)

(** {1 Semantic identity} *)

val signatures : ?episodes:int -> ?cycles:int -> Netlist.t -> string array
(** Per-node behavioral fingerprints under a canonical stimulus: for each
    of [episodes] (default 4) episodes, registers start at their init value
    (symbolic-init registers at zero) and every input is driven for
    [cycles] (default 24) cycles by a PRNG seeded from the {e input's name}
    and the episode index — so the fingerprint of a node depends only on
    its behavior and the design's interface names, never on node ids or
    construction order.  Two nodes (in the same or different netlists) with
    equal observable behavior under this stimulus get equal signatures. *)

val semantic_digest : ?episodes:int -> ?cycles:int -> Netlist.t -> string
(** Hex digest of the design's observable behavior: the sorted
    [(name, width, signature)] set of all named signals and inputs under
    the canonical stimulus of {!signatures}.  Independent of the module
    name and of internal structure, so a word-level design and its
    gate-level re-synthesis digest identically — the key of the Vcache
    semantic namespace. *)

val describe_all : Netlist.t -> string array
(** Name-structural descriptor per node: a named node is identified by its
    (name, width); an unnamed node by its kind and its operands'
    descriptors, hash-consed into one digest per node.  Descriptors of a
    wire are transparent to its driver.

    Unlike {!signatures} (behavioral, collision-prone for logic the
    canonical stimulus never exercises), descriptors never collide for
    structurally distinct cones, and they are stable across semantically
    equivalent netlist variants for any logic built identically above the
    named-signal frontier — the property semantic cache keys need:
    per-variant monitor construction runs the same code over name-resolved
    signals, so a cover's literals descriptor-match across variants while
    two different covers never do. *)
