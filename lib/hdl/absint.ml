(* Known-bits abstract interpretation over the word-level netlist IR.

   Each signal is abstracted by a pair [(known, value)] of equal-width
   bit-vectors: bit [i] of [known] set means bit [i] of the signal is proven
   constant — equal to bit [i] of [value] — in every reachable state from
   reset, at every cycle.  Unknown bits of [value] are normalized to zero so
   structural equality on facts coincides with lattice equality.

   The analysis is a forward dataflow: one combinational sweep in
   [Netlist.comb_order] evaluates the transfer function of every cell, then
   each register joins the abstract value of its next-state input into its
   own fact (respecting enables).  Register facts only lose known bits, so
   the register-step fixpoint terminates in at most (total register bits)
   rounds.  Reset seeding: [Init_value v] registers start fully known at
   [v]; [Init_symbolic] registers and primary inputs are unconstrained. *)

module N = Netlist

type fact = { known : Bitvec.t; value : Bitvec.t }

let top w = { known = Bitvec.zero w; value = Bitvec.zero w }
let exact v = { known = Bitvec.ones (Bitvec.width v); value = v }
let norm ~known ~value = { known; value = Bitvec.logand value known }
let is_exact f = Bitvec.is_ones f.known

let fact_equal a b =
  Bitvec.equal a.known b.known && Bitvec.equal a.value b.value

(* Least upper bound: a bit stays known only if both sides know it and
   agree on it. *)
let join a b =
  let agree = Bitvec.lognot (Bitvec.logxor a.value b.value) in
  let known = Bitvec.logand (Bitvec.logand a.known b.known) agree in
  norm ~known ~value:a.value

(* {1 Transfer functions} *)

let not_f a =
  norm ~known:a.known ~value:(Bitvec.lognot a.value)

(* A result bit of AND is known if both inputs are known, or either input
   is known zero. *)
let and_f a b =
  let kz_a = Bitvec.logand a.known (Bitvec.lognot a.value) in
  let kz_b = Bitvec.logand b.known (Bitvec.lognot b.value) in
  let known = Bitvec.logor (Bitvec.logand a.known b.known) (Bitvec.logor kz_a kz_b) in
  norm ~known ~value:(Bitvec.logand a.value b.value)

(* Dual: known if both known, or either is known one. *)
let or_f a b =
  let k1_a = Bitvec.logand a.known a.value in
  let k1_b = Bitvec.logand b.known b.value in
  let known = Bitvec.logor (Bitvec.logand a.known b.known) (Bitvec.logor k1_a k1_b) in
  norm ~known ~value:(Bitvec.logor a.value b.value)

let xor_f a b =
  let known = Bitvec.logand a.known b.known in
  norm ~known ~value:(Bitvec.logxor a.value b.value)

(* Number of contiguous low bits known in both operands: carries propagate
   strictly upward, so that many low result bits of add/sub/mul are
   determined by the (masked) operand values alone. *)
let trailing_known a b =
  let w = Bitvec.width a.known in
  let t = ref 0 in
  while !t < w && Bitvec.bit a.known !t && Bitvec.bit b.known !t do incr t done;
  !t

let low_mask w t =
  if t = 0 then Bitvec.zero w
  else if t >= w then Bitvec.ones w
  else Bitvec.shift_right_logical (Bitvec.ones w) (w - t)

let carry_chain_f op a b =
  if is_exact a && is_exact b then exact (op a.value b.value)
  else
    let w = Bitvec.width a.known in
    let known = low_mask w (trailing_known a b) in
    norm ~known ~value:(op a.value b.value)

(* Unsigned interval from a fact: the value with unknown bits cleared is
   the minimum, with unknown bits set the maximum. *)
let min_of f = f.value
let max_of f = Bitvec.logor f.value (Bitvec.lognot f.known)

let eq_f a b =
  let disagree = Bitvec.logand (Bitvec.logand a.known b.known) (Bitvec.logxor a.value b.value) in
  if not (Bitvec.is_zero disagree) then exact (Bitvec.of_bool false)
  else if is_exact a && is_exact b then exact (Bitvec.of_bool true)
  else top 1

let ult_f a b =
  if Bitvec.ult (max_of a) (min_of b) then exact (Bitvec.of_bool true)
  else if not (Bitvec.ult (min_of a) (max_of b)) then exact (Bitvec.of_bool false)
  else top 1

let slt_f a b =
  if is_exact a && is_exact b then exact (Bitvec.of_bool (Bitvec.slt a.value b.value))
  else top 1

let op2_f op a b =
  match (op : N.op2) with
  | N.And -> and_f a b
  | N.Or -> or_f a b
  | N.Xor -> xor_f a b
  | N.Add -> carry_chain_f Bitvec.add a b
  | N.Sub -> carry_chain_f Bitvec.sub a b
  | N.Mul -> carry_chain_f Bitvec.mul a b
  | N.Eq -> eq_f a b
  | N.Ult -> ult_f a b
  | N.Slt -> slt_f a b

(* Mux semantics mirror the simulator: any nonzero select takes [on_true],
   so a single known-one select bit suffices to kill the false arm. *)
let mux_f sel t f =
  if not (Bitvec.is_zero (Bitvec.logand sel.known sel.value)) then t
  else if is_exact sel && Bitvec.is_zero sel.value then f
  else join t f

let extract_f ~hi ~lo a =
  { known = Bitvec.extract a.known ~hi ~lo; value = Bitvec.extract a.value ~hi ~lo }

let concat_f parts =
  match parts with
  | [] -> invalid_arg "Absint.concat_f: empty"
  | hd :: tl ->
    List.fold_left
      (fun acc p ->
        { known = Bitvec.concat acc.known p.known;
          value = Bitvec.concat acc.value p.value })
      hd tl

let reduce_or_f a =
  if not (Bitvec.is_zero (Bitvec.logand a.known a.value)) then
    exact (Bitvec.of_bool true)
  else if is_exact a && Bitvec.is_zero a.value then exact (Bitvec.of_bool false)
  else top 1

let reduce_and_f a =
  if not (Bitvec.is_zero (Bitvec.logand a.known (Bitvec.lognot a.value))) then
    exact (Bitvec.of_bool false)
  else if is_exact a && Bitvec.is_ones a.value then exact (Bitvec.of_bool true)
  else top 1

(* {1 Fixpoint} *)

let transfer facts (n : N.node) =
  match n.N.kind with
  | N.Input -> top n.N.width
  | N.Const v -> exact v
  | N.Reg _ -> facts n.N.id (* filled in by the caller from the register map *)
  | N.Wire { driver = Some d } -> facts d
  | N.Wire { driver = None } -> top n.N.width
  | N.Not a -> not_f (facts a)
  | N.Op2 (op, a, b) -> op2_f op (facts a) (facts b)
  | N.Mux { sel; on_true; on_false } ->
    mux_f (facts sel) (facts on_true) (facts on_false)
  | N.Extract { hi; lo; arg } -> extract_f ~hi ~lo (facts arg)
  | N.Concat parts -> concat_f (List.map facts parts)
  | N.ReduceOr a -> reduce_or_f (facts a)
  | N.ReduceAnd a -> reduce_and_f (facts a)

let analyze nl =
  let nn = N.num_nodes nl in
  let order = N.comb_order nl in
  let facts = Array.init nn (fun s -> top (N.width nl s)) in
  let reg_fact = Hashtbl.create 16 in
  N.iter_nodes nl (fun n ->
      match n.N.kind with
      | N.Reg { init = N.Init_value v; _ } ->
        Hashtbl.replace reg_fact n.N.id (exact v)
      | N.Reg { init = N.Init_symbolic; _ } ->
        Hashtbl.replace reg_fact n.N.id (top n.N.width)
      | _ -> ());
  let eval_round () =
    Array.iter
      (fun s ->
        let n = N.node nl s in
        facts.(s) <-
          (match n.N.kind with
          | N.Reg _ -> Hashtbl.find reg_fact s
          | _ -> transfer (fun d -> facts.(d)) n))
      order
  in
  let changed = ref true in
  while !changed do
    changed := false;
    eval_round ();
    N.iter_nodes nl (fun n ->
        match n.N.kind with
        | N.Reg { next = Some nx; enable; _ } ->
          let cur = Hashtbl.find reg_fact n.N.id in
          let nf = facts.(nx) in
          let stepped =
            match enable with
            | None -> nf
            | Some e ->
              let ef = facts.(e) in
              if is_exact ef then
                if Bitvec.is_zero ef.value then cur else nf
              else join nf cur
          in
          let merged = join cur stepped in
          if not (fact_equal merged cur) then begin
            Hashtbl.replace reg_fact n.N.id merged;
            changed := true
          end
        | _ -> ())
  done;
  eval_round ();
  facts

let known_bits nl =
  Array.map (fun f -> (f.known, f.value)) (analyze nl)

let stuck_value kb s =
  let known, value = kb.(s) in
  if Bitvec.is_ones known then Some value else None

let known_zero kb s =
  let known, value = kb.(s) in
  Bitvec.is_ones known && Bitvec.is_zero value

let known_count kb =
  Array.fold_left (fun a (known, _) -> a + Bitvec.popcount known) 0 kb
