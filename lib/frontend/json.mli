(** Minimal JSON reader/writer for the Yosys netlist frontend.

    The repo carries no JSON dependency ({!Lint.Diagnostic.to_json} is
    hand-rolled for the same reason), so the frontend brings its own
    parser.  Object member order is preserved — Yosys emits cells and
    netnames in a meaningful order and the importer's determinism leans
    on it. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

exception Parse_error of string
(** Raised by the parsers; the message includes line/column. *)

val parse_string : string -> t
val parse_file : string -> t
(** [parse_file] raises [Sys_error] on unreadable paths and
    {!Parse_error} on malformed content. *)

val to_string : ?compact:bool -> t -> string
(** Serialize.  The default layout mirrors Yosys' own pretty-printer
    closely enough for small diffs; [compact] drops all whitespace. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** [member k (Assoc ...)] is the value bound to [k], if any; [None] on
    non-objects. *)

val to_assoc : t -> (string * t) list option
val to_list : t -> t list option
val to_int : t -> int option
val to_str : t -> string option
