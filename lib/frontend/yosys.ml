(* Yosys write_json importer/exporter.  See yosys.mli for the contract,
   DESIGN.md §18 for the architecture. *)

module N = Hdl.Netlist
module D = Lint.Diagnostic

type t = { nl : N.t; warnings : D.t list }

(* A connection bit: a net id, or an inline 0/1/x/z constant. *)
type bit = Bnet of int | Bconst of char

type cell = {
  c_inst : string;
  c_type : string;
  c_params : (string * Json.t) list;
  c_conns : (string * bit array) list;
}

(* Schema-level problems inside one cell or connection; converted to an
   F512 rejection by the import driver. *)
exception Malformed of string

(* --- cell classification ------------------------------------------------ *)

type cls =
  | C_comb (* word-level combinational *)
  | C_ff (* $dff family *)
  | C_gate (* 1-bit gate-level combinational *)
  | C_gate_ff (* $_DFF_P_ / $_DFFE_P?_ *)
  | C_wire (* $pos / $_BUF_: forward-declarable buffers *)
  | C_reject of string

let starts p s = String.starts_with ~prefix:p s

let reject_reason ty =
  if starts "$mem" ty then
    "memory cell; run Yosys `memory_map` to lower memories to flip-flops"
  else if
    List.mem ty [ "$dlatch"; "$adlatch"; "$dlatchsr"; "$sr" ]
    || starts "$_DLATCH" ty || starts "$_SR_" ty
  then "level-sensitive latch; this flow is synchronous-only"
  else if
    List.mem ty [ "$dffsr"; "$dffsre"; "$aldff"; "$aldffe"; "$sdffce"; "$ff" ]
    || starts "$_DFFSR" ty || starts "$_ALDFF" ty || starts "$_SDFFCE" ty
    || starts "$_FF" ty
  then
    "flip-flop variant outside the supported $dff/$dffe/$adff/$adffe/\
     $sdff/$sdffe family"
  else if starts "$_DFF" ty || starts "$_SDFF" ty then
    "gate-level flip-flop with negative clock/reset polarity (only \
     $_DFF_P_, $_DFFE_PP_ and $_DFFE_PN_ are supported)"
  else if
    List.mem ty
      [
        "$assert"; "$assume"; "$cover"; "$live"; "$fair"; "$check";
        "$anyconst"; "$anyseq"; "$allconst"; "$allseq"; "$initstate";
        "$equiv";
      ]
  then "formal/verification cell; strip with Yosys `chformal -remove`"
  else if List.mem ty [ "$print"; "$scopeinfo"; "$specify2"; "$specify3"; "$specrule" ]
  then "simulation/metadata cell with no synthesizable semantics"
  else if List.mem ty [ "$div"; "$mod"; "$divfloor"; "$modfloor"; "$pow" ] then
    "word-level divider/power cell; decompose it (Yosys `techmap`) before \
     import"
  else if
    List.mem ty
      [
        "$shift"; "$shiftx"; "$bmux"; "$demux"; "$lut"; "$sop"; "$alu";
        "$lcu"; "$macc"; "$macc_v2"; "$fa"; "$fsm";
      ]
  then "coarse-grained cell; `techmap` it to the base word-level library"
  else if
    List.mem ty [ "$tribuf"; "$_TBUF_" ]
    || starts "$_MUX4" ty || starts "$_MUX8" ty || starts "$_MUX16" ty
  then "tristate or wide-mux cell outside the supported library"
  else if ty <> "" && ty.[0] = '$' then "unknown Yosys internal cell type"
  else
    "instance of a user module (hierarchical design); run Yosys `flatten` \
     first"

let classify = function
  | "$pos" | "$_BUF_" -> C_wire
  | "$not" | "$neg" | "$and" | "$or" | "$xor" | "$xnor" | "$reduce_and"
  | "$reduce_or" | "$reduce_xor" | "$reduce_xnor" | "$reduce_bool"
  | "$logic_not" | "$logic_and" | "$logic_or" | "$add" | "$sub" | "$mul"
  | "$eq" | "$ne" | "$eqx" | "$nex" | "$lt" | "$le" | "$gt" | "$ge" | "$shl"
  | "$shr" | "$sshl" | "$sshr" | "$mux" | "$pmux" | "$slice" | "$concat"
  | "$const" ->
    C_comb
  | "$dff" | "$dffe" | "$adff" | "$adffe" | "$sdff" | "$sdffe" -> C_ff
  | "$_NOT_" | "$_AND_" | "$_NAND_" | "$_OR_" | "$_NOR_" | "$_XOR_"
  | "$_XNOR_" | "$_ANDNOT_" | "$_ORNOT_" | "$_MUX_" | "$_NMUX_" | "$_AOI3_"
  | "$_OAI3_" | "$_AOI4_" | "$_OAI4_" ->
    C_gate
  | "$_DFF_P_" | "$_DFFE_PP_" | "$_DFFE_PN_" -> C_gate_ff
  | ty -> C_reject (reject_reason ty)

let is_ff = function C_ff | C_gate_ff -> true | _ -> false

let clk_pin = function C_ff -> "CLK" | _ -> "C"
let out_pin cls = if is_ff cls then "Q" else "Y"

(* --- small helpers ------------------------------------------------------ *)

let bin_int inst key s =
  String.fold_left
    (fun acc ch ->
      match ch with
      | '0' | 'x' | 'z' -> acc * 2
      | '1' -> (acc * 2) + 1
      | _ ->
        raise
          (Malformed
             (Printf.sprintf "cell %s: parameter %s: bad binary literal %S"
                inst key s)))
    0 s

let param_int c key ~default =
  match List.assoc_opt key c.c_params with
  | None -> default
  | Some (Json.Int n) -> n
  | Some (Json.String s) -> bin_int c.c_inst key s
  | Some _ ->
    raise
      (Malformed
         (Printf.sprintf "cell %s: parameter %s is not an integer" c.c_inst key))

(* Parameter as a bit-vector of exactly [width] bits; x/z read as 0 (the
   caller accounts for the warning). *)
let param_bv c key ~width =
  let normalize v =
    let wv = Bitvec.width v in
    if wv = width then v
    else if wv > width then Bitvec.extract ~hi:(width - 1) ~lo:0 v
    else Bitvec.concat (Bitvec.zero (width - wv)) v
  in
  match List.assoc_opt key c.c_params with
  | None -> Bitvec.zero width
  | Some (Json.Int n) -> Bitvec.of_int ~width n
  | Some (Json.String s) ->
    let s = String.map (function 'x' | 'z' -> '0' | ch -> ch) s in
    if s = "" then Bitvec.zero width
    else if String.for_all (function '0' | '1' -> true | _ -> false) s then
      normalize (Bitvec.of_binary_string s)
    else
      raise
        (Malformed
           (Printf.sprintf "cell %s: parameter %s: bad binary literal"
              c.c_inst key))
  | Some _ ->
    raise
      (Malformed
         (Printf.sprintf "cell %s: parameter %s is not a bit-vector" c.c_inst
            key))

let bit_str = function Bnet n -> string_of_int n | Bconst ch -> String.make 1 ch

let pattern_key bits =
  String.concat "," (Array.to_list (Array.map bit_str bits))

(* --- import ------------------------------------------------------------- *)

type psrc = P_input of string * int | P_cell of cell * cls

type prod = { key : int; out : int array; src : psrc }

type netname = { nn_name : string; nn_hide : bool; nn_init : Json.t option }

exception Cycle of string list

let attr_true j name =
  match Option.bind (Json.member "attributes" j) (Json.member name) with
  | Some (Json.Int n) -> n <> 0
  | Some (Json.String s) -> String.exists (fun ch -> ch = '1') s
  | _ -> false

let import ?top j =
  let design = ref "netlist" in
  let fail code msg = Diag.reject ~design:!design [ Diag.error ~code msg ] in
  (* ---- module selection ---- *)
  let modules =
    match Json.member "modules" j with
    | Some (Json.Assoc m) -> m
    | _ -> fail "F502" "missing \"modules\" object"
  in
  let mod_name, mj =
    match top with
    | Some nm -> (
      match List.assoc_opt nm modules with
      | Some m -> (nm, m)
      | None ->
        fail "F502"
          (Printf.sprintf "no module %S (available: %s)" nm
             (String.concat ", " (List.map fst modules))))
    | None -> (
      let candidates =
        List.filter (fun (_, m) -> not (attr_true m "blackbox")) modules
      in
      match List.filter (fun (_, m) -> attr_true m "top") candidates with
      | [ m ] -> m
      | _ :: _ :: _ -> fail "F502" "multiple modules carry the top attribute"
      | [] -> (
        match candidates with
        | [ m ] -> m
        | [] -> fail "F502" "no non-blackbox module in the netlist"
        | _ ->
          fail "F502"
            (Printf.sprintf
               "cannot choose a top module among %s; pass --top"
               (String.concat ", " (List.map fst candidates)))))
  in
  design := mod_name;
  let errs = ref [] and warns = ref [] in
  let err d = errs := d :: !errs in
  let warn d = warns := d :: !warns in
  let flush_errs () =
    if !errs <> [] then
      Diag.reject ~design:mod_name (List.rev_append !errs (List.rev !warns))
  in
  let xz_bits = ref 0 in
  let bit_of_json ~where = function
    | Json.Int n -> Bnet n
    | Json.String ("0" | "1" | "x" | "z" as s) ->
      if s = "x" || s = "z" then incr xz_bits;
      Bconst (if s = "1" then '1' else '0')
    | _ -> raise (Malformed (where ^ ": bad connection bit"))
  in
  let bits_of_json ~where v =
    match Json.to_list v with
    | Some l -> Array.of_list (List.map (bit_of_json ~where) l)
    | None -> raise (Malformed (where ^ ": connection is not a bit list"))
  in
  (* ---- ports ---- *)
  let ports =
    match Json.member "ports" mj with
    | Some (Json.Assoc l) ->
      List.filter_map
        (fun (pname, pj) ->
          let where = "port " ^ pname in
          match
            let dir =
              match Option.bind (Json.member "direction" pj) Json.to_str with
              | Some d -> d
              | None -> raise (Malformed (where ^ ": missing direction"))
            in
            let bits =
              match Json.member "bits" pj with
              | Some b -> bits_of_json ~where b
              | None -> raise (Malformed (where ^ ": missing bits"))
            in
            (dir, bits)
          with
          | "inout", _ ->
            err
              (Diag.error ~code:"F502" ~signal_name:pname
                 (Printf.sprintf "port %s: unsupported direction \"inout\""
                    pname));
            None
          | dir, bits when dir = "input" || dir = "output" ->
            if Array.length bits = 0 then begin
              err
                (Diag.error ~code:"F502" ~signal_name:pname
                   (Printf.sprintf "port %s: zero width" pname));
              None
            end
            else Some (pname, dir, bits)
          | dir, _ ->
            err
              (Diag.error ~code:"F502" ~signal_name:pname
                 (Printf.sprintf "port %s: unknown direction %S" pname dir));
            None
          | exception Malformed m ->
            err (Diag.error ~code:"F512" ~signal_name:pname m);
            None)
        l
    | _ -> []
  in
  (* ---- memories section: named rejection, pre-analysis ---- *)
  (match Json.member "memories" mj with
  | Some (Json.Assoc (_ :: _ as mems)) ->
    List.iter
      (fun (mname, _) ->
        err
          (Diag.error ~code:"F501" ~signal_name:mname
             (Printf.sprintf
                "memory block %s: memories are not supported; run Yosys \
                 `memory_map` to lower them to flip-flops"
                mname)))
      mems
  | _ -> ());
  (* ---- cells: parse and classify; every unsupported cell is named ---- *)
  let cells =
    match Json.member "cells" mj with
    | Some (Json.Assoc l) ->
      List.filter_map
        (fun (inst, cj) ->
          let ty =
            match Option.bind (Json.member "type" cj) Json.to_str with
            | Some t -> t
            | None -> ""
          in
          match classify ty with
          | C_reject reason ->
            err
              (Diag.error ~code:"F501" ~signal_name:inst
                 (Printf.sprintf "unsupported cell type %s (instance %s): %s"
                    ty inst reason));
            None
          | cls -> (
            match
              let params =
                match Json.member "parameters" cj with
                | Some (Json.Assoc p) -> p
                | _ -> []
              in
              let conns =
                match Json.member "connections" cj with
                | Some (Json.Assoc cs) ->
                  List.map
                    (fun (pin, bj) ->
                      ( pin,
                        bits_of_json
                          ~where:(Printf.sprintf "cell %s pin %s" inst pin)
                          bj ))
                    cs
                | _ -> []
              in
              { c_inst = inst; c_type = ty; c_params = params; c_conns = conns }
            with
            | c -> Some (c, cls)
            | exception Malformed m ->
              err (Diag.error ~code:"F512" ~signal_name:inst m);
              None))
        l
    | _ -> []
  in
  flush_errs ();
  let conn_opt c pin = List.assoc_opt pin c.c_conns in
  let conn c pin =
    match conn_opt c pin with
    | Some b -> b
    | None ->
      raise
        (Malformed
           (Printf.sprintf "cell %s (%s): missing connection %s" c.c_inst
              c.c_type pin))
  in
  (* ---- clock discipline: one net, positive polarity, input-driven ---- *)
  let clock_net = ref None in
  List.iter
    (fun (c, cls) ->
      if is_ff cls then begin
        (match c.c_type with
        | "$_DFF_P_" | "$_DFFE_PP_" | "$_DFFE_PN_" -> ()
        | _ ->
          if param_int c "CLK_POLARITY" ~default:1 = 0 then
            err
              (Diag.error ~code:"F503" ~signal_name:c.c_inst
                 (Printf.sprintf
                    "cell %s (%s): negative clock polarity is not supported"
                    c.c_inst c.c_type)));
        match conn c (clk_pin cls) with
        | [| Bnet n |] -> (
          match !clock_net with
          | None -> clock_net := Some n
          | Some n0 when n0 = n -> ()
          | Some n0 ->
            err
              (Diag.error ~code:"F503" ~signal_name:c.c_inst
                 (Printf.sprintf
                    "cell %s: second clock net %d (first was %d); \
                     single-clock designs only"
                    c.c_inst n n0)))
        | [| Bconst _ |] ->
          err
            (Diag.error ~code:"F503" ~signal_name:c.c_inst
               (Printf.sprintf "cell %s: constant clock" c.c_inst))
        | _ ->
          err
            (Diag.error ~code:"F503" ~signal_name:c.c_inst
               (Printf.sprintf "cell %s: clock pin is not 1 bit" c.c_inst))
        | exception Malformed m -> err (Diag.error ~code:"F512" m)
      end)
    cells;
  flush_errs ();
  let is_clock_bit = function
    | Bnet n -> !clock_net = Some n
    | Bconst _ -> false
  in
  (* ---- netnames table (for register names and init values) ---- *)
  let nn_tbl : (string, netname list) Hashtbl.t = Hashtbl.create 64 in
  let nn_order = ref [] in
  (match Json.member "netnames" mj with
  | Some (Json.Assoc l) ->
    List.iter
      (fun (nm, nj) ->
        match
          bits_of_json ~where:("netname " ^ nm)
            (Option.value (Json.member "bits" nj) ~default:(Json.List []))
        with
        | bits ->
          let hide =
            match Json.member "hide_name" nj with
            | Some (Json.Int n) -> n <> 0
            | _ -> false
          in
          let init = Option.bind (Json.member "attributes" nj) (Json.member "init") in
          let key = pattern_key bits in
          let entry = { nn_name = nm; nn_hide = hide; nn_init = init } in
          Hashtbl.replace nn_tbl key
            (Option.value (Hashtbl.find_opt nn_tbl key) ~default:[] @ [ entry ]);
          nn_order := (nm, bits, hide) :: !nn_order
        | exception Malformed m -> err (Diag.error ~code:"F512" ~signal_name:nm m))
      l
  | _ -> ());
  let nn_order = List.rev !nn_order in
  flush_errs ();
  (* ---- producers: one per input port (clock elided) and cell ---- *)
  let min_bit out =
    Array.fold_left (fun acc b -> min acc b) max_int out
  in
  let clock_port =
    List.find_opt
      (fun (_, dir, bits) ->
        dir = "input" && Array.exists is_clock_bit bits)
      ports
  in
  (match clock_port with
  | Some (pname, _, bits) when Array.length bits > 1 ->
    err
      (Diag.error ~code:"F503" ~signal_name:pname
         (Printf.sprintf
            "clock must be a dedicated 1-bit input port (port %s is %d bits)"
            pname (Array.length bits)))
  | _ -> ());
  let prods = ref [] in
  List.iter
    (fun (pname, dir, bits) ->
      if dir = "input" && not (Array.exists is_clock_bit bits) then begin
        match
          Array.map
            (function
              | Bnet n -> n
              | Bconst _ ->
                raise
                  (Malformed
                     (Printf.sprintf "port %s: constant bit in input port"
                        pname)))
            bits
        with
        | out ->
          prods :=
            { key = min_bit out; out; src = P_input (pname, Array.length out) }
            :: !prods
        | exception Malformed m -> err (Diag.error ~code:"F512" ~signal_name:pname m)
      end)
    ports;
  List.iter
    (fun (c, cls) ->
      match conn c (out_pin cls) with
      | bits -> (
        match
          Array.map
            (function
              | Bnet n -> n
              | Bconst _ ->
                raise
                  (Malformed
                     (Printf.sprintf "cell %s: constant bit in output pin"
                        c.c_inst)))
            bits
        with
        | out when Array.length out > 0 ->
          prods := { key = min_bit out; out; src = P_cell (c, cls) } :: !prods
        | _ ->
          err
            (Diag.error ~code:"F512" ~signal_name:c.c_inst
               (Printf.sprintf "cell %s: zero-width output" c.c_inst))
        | exception Malformed m ->
          err (Diag.error ~code:"F512" ~signal_name:c.c_inst m))
      | exception Malformed m ->
        err (Diag.error ~code:"F512" ~signal_name:c.c_inst m))
    cells;
  flush_errs ();
  let prod_label p =
    match p.src with
    | P_input (nm, _) -> Printf.sprintf "port %s" nm
    | P_cell (c, _) -> Printf.sprintf "%s (%s)" c.c_inst c.c_type
  in
  let prods =
    Array.of_list
      (List.sort
         (fun a b ->
           match Int.compare a.key b.key with
           | 0 -> String.compare (prod_label a) (prod_label b)
           | c -> c)
         !prods)
  in
  let np = Array.length prods in
  (* bit id -> (producer index, offset) *)
  let bit2prod : (int, int * int) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun i p ->
      Array.iteri
        (fun off b ->
          match Hashtbl.find_opt bit2prod b with
          | Some (i0, _) ->
            err
              (Diag.error ~code:"F506"
                 (Printf.sprintf "net %d driven by both %s and %s" b
                    (prod_label prods.(i0)) (prod_label p)))
          | None -> Hashtbl.replace bit2prod b (i, off))
        p.out)
    prods;
  (* Undriven-net and clock-as-data scan over every consumer position. *)
  let check_use ~who pin bits =
    Array.iter
      (fun b ->
        match b with
        | Bconst _ -> ()
        | Bnet n ->
          if is_clock_bit b then
            err
              (Diag.error ~code:"F503"
                 (Printf.sprintf "clock net %d also used as data by %s (pin %s)"
                    n who pin))
          else if not (Hashtbl.mem bit2prod n) then
            err
              (Diag.error ~code:"F505"
                 (Printf.sprintf "net %d (%s, pin %s) has no driver" n who pin)))
      bits
  in
  List.iter
    (fun (c, cls) ->
      let op = out_pin cls and ck = clk_pin cls in
      List.iter
        (fun (pin, bits) ->
          if pin <> op && not (is_ff cls && pin = ck) then
            check_use ~who:(Printf.sprintf "cell %s (%s)" c.c_inst c.c_type) pin
              bits)
        c.c_conns)
    cells;
  List.iter
    (fun (pname, dir, bits) ->
      if dir = "output" then check_use ~who:("output port " ^ pname) "-" bits)
    ports;
  (match (!clock_net, clock_port) with
  | Some n, None ->
    err
      (Diag.error ~code:"F503"
         (Printf.sprintf
            "clock net %d is not driven by a top-level input port \
             (clock trees must be cleaned up before import, e.g. Yosys \
             `opt_clean`)"
            n))
  | _ -> ());
  flush_errs ();
  (* ---- emission: DFS over producers in min-output-bit order ---- *)
  let nl = N.create mod_name in
  (* Chunk-level memo: inline constants and slices synthesized while
     resolving a connection pattern are shared (deterministically) across
     patterns. *)
  let chunk_memo : (string, N.signal) Hashtbl.t = Hashtbl.create 64 in
  let pattern_memo : (string, N.signal) Hashtbl.t = Hashtbl.create 256 in
  let sigs = Array.make (max np 1) (-1) in
  let const_node v =
    let k = "c:" ^ Bitvec.to_binary_string v in
    match Hashtbl.find_opt chunk_memo k with
    | Some s -> s
    | None ->
      let s = N.const nl v in
      Hashtbl.replace chunk_memo k s;
      s
  in
  (* Resolve a connection pattern to a signal.  Producers of every net bit
     in the pattern must already be emitted. *)
  let resolve bits =
    let key = pattern_key bits in
    match Hashtbl.find_opt pattern_memo key with
    | Some s -> s
    | None ->
      let w = Array.length bits in
      if w = 0 then raise (Malformed "zero-width connection");
      (* Decompose LSB->MSB into maximal constant runs and producer slices. *)
      let chunks = ref [] in
      let i = ref 0 in
      while !i < w do
        (match bits.(!i) with
        | Bconst _ ->
          let j = ref !i in
          while !j < w && (match bits.(!j) with Bconst _ -> true | _ -> false) do
            incr j
          done;
          let run =
            Array.to_list (Array.sub bits !i (!j - !i))
            |> List.map (function Bconst ch -> ch | _ -> assert false)
          in
          chunks := `Const run :: !chunks;
          i := !j
        | Bnet n ->
          let p, off = Hashtbl.find bit2prod n in
          let j = ref (!i + 1) in
          let k = ref (off + 1) in
          while
            !j < w
            && (match bits.(!j) with
               | Bnet n' -> (
                 match Hashtbl.find_opt bit2prod n' with
                 | Some (p', off') -> p' = p && off' = !k
                 | None -> false)
               | Bconst _ -> false)
          do
            incr j;
            incr k
          done;
          chunks := `Slice (p, off, !k - 1) :: !chunks;
          i := !j)
      done;
      let chunks = List.rev !chunks (* LSB-first *) in
      let build_chunk = function
        | `Const run ->
          (* run is LSB-first; of_binary_string wants MSB-first. *)
          let s =
            String.init (List.length run) (fun k ->
                List.nth run (List.length run - 1 - k))
          in
          const_node (Bitvec.of_binary_string s)
        | `Slice (p, lo, hi) ->
          let s = sigs.(p) in
          let wp = Array.length prods.(p).out in
          if lo = 0 && hi = wp - 1 then s
          else
            let k = Printf.sprintf "x:%d:%d:%d" s lo hi in
            (match Hashtbl.find_opt chunk_memo k with
            | Some e -> e
            | None ->
              let e = N.extract nl ~hi ~lo s in
              Hashtbl.replace chunk_memo k e;
              e)
      in
      let s =
        match chunks with
        | [ one ] -> build_chunk one
        | many ->
          (* Build LSB->MSB (stable creation order), concat MSB-first. *)
          let built =
            List.fold_left (fun acc ch -> build_chunk ch :: acc) [] many
          in
          N.concat nl built
      in
      Hashtbl.replace pattern_memo key s;
      s
  in
  let rsig c pin = resolve (conn c pin) in
  (* Widen or truncate a signal to [w] bits. *)
  let ext_sig ~signed s w =
    let ws = N.width nl s in
    if ws = w then s
    else if ws > w then N.extract nl ~hi:(w - 1) ~lo:0 s
    else if signed then begin
      let m = N.extract nl ~hi:(ws - 1) ~lo:(ws - 1) s in
      N.concat nl (List.init (w - ws) (fun _ -> m) @ [ s ])
    end
    else N.concat nl [ const_node (Bitvec.zero (w - ws)); s ]
  in
  let yext s yw =
    if N.width nl s >= yw then s
    else N.concat nl [ const_node (Bitvec.zero (yw - N.width nl s)); s ]
  in
  let a_signed c = param_int c "A_SIGNED" ~default:0 <> 0 in
  let both_signed c =
    a_signed c && param_int c "B_SIGNED" ~default:0 <> 0
  in
  (* Deferred connections: flip-flop D/EN/reset inputs and wire drivers
     resolve after every producer exists (feedback is legal there). *)
  let deferred_ffs = ref [] and deferred_wires = ref [] in
  let reg_name_of c out =
    let qkey = pattern_key (Array.map (fun b -> Bnet b) out) in
    let entries = Option.value (Hashtbl.find_opt nn_tbl qkey) ~default:[] in
    let base =
      match List.find_opt (fun e -> not e.nn_hide) entries with
      | Some e -> e.nn_name
      | None -> (
        match entries with e :: _ -> e.nn_name | [] -> c.c_inst)
    in
    let base =
      if N.find_named nl base = None then base
      else Printf.sprintf "%s$%d" base (min_bit out)
    in
    let init =
      match List.find_opt (fun e -> e.nn_init <> None) entries with
      | Some { nn_init = Some (Json.String s); _ } ->
        if String.exists (fun ch -> ch = 'x' || ch = 'z') s then begin
          warn
            (Diag.warning ~code:"F504" ~signal_name:base
               (Printf.sprintf
                  "register %s: init value contains x/z bits; treating \
                   initialization as symbolic"
                  base));
          N.Init_symbolic
        end
        else
          let w = Array.length out in
          let v = Bitvec.of_binary_string s in
          let wv = Bitvec.width v in
          let v =
            if wv = w then v
            else if wv > w then Bitvec.extract ~hi:(w - 1) ~lo:0 v
            else Bitvec.concat (Bitvec.zero (w - wv)) v
          in
          N.Init_value v
      | Some { nn_init = Some (Json.Int n); _ } ->
        N.Init_value (Bitvec.of_int ~width:(Array.length out) n)
      | _ -> N.Init_symbolic
    in
    (base, init)
  in
  let build_cell c cls out =
    let yw () = Array.length out in
    match cls with
    | C_ff | C_gate_ff ->
      let name, init = reg_name_of c out in
      let r = N.reg nl ~name ~init ~width:(Array.length out) () in
      (if starts "$adff" c.c_type then
         warn
           (Diag.warning ~code:"F503" ~signal_name:name
              (Printf.sprintf
                 "cell %s: asynchronous reset modeled as synchronous \
                  (this abstraction is sound for reachability only if \
                  reset is quiescent mid-trace)"
                 c.c_inst)));
      deferred_ffs := (c, cls, r) :: !deferred_ffs;
      r
    | C_wire ->
      let wsig = N.wire nl (Array.length out) in
      deferred_wires := (c, wsig) :: !deferred_wires;
      wsig
    | C_gate -> (
      let g pin = rsig c pin in
      match c.c_type with
      | "$_NOT_" -> N.not_ nl (g "A")
      | "$_AND_" ->
        let a = g "A" in
        let b = g "B" in
        N.op2 nl N.And a b
      | "$_NAND_" ->
        let a = g "A" in
        let b = g "B" in
        N.not_ nl (N.op2 nl N.And a b)
      | "$_OR_" ->
        let a = g "A" in
        let b = g "B" in
        N.op2 nl N.Or a b
      | "$_NOR_" ->
        let a = g "A" in
        let b = g "B" in
        N.not_ nl (N.op2 nl N.Or a b)
      | "$_XOR_" ->
        let a = g "A" in
        let b = g "B" in
        N.op2 nl N.Xor a b
      | "$_XNOR_" ->
        let a = g "A" in
        let b = g "B" in
        N.not_ nl (N.op2 nl N.Xor a b)
      | "$_ANDNOT_" ->
        let a = g "A" in
        let b = g "B" in
        N.op2 nl N.And a (N.not_ nl b)
      | "$_ORNOT_" ->
        let a = g "A" in
        let b = g "B" in
        N.op2 nl N.Or a (N.not_ nl b)
      | "$_MUX_" ->
        let a = g "A" in
        let b = g "B" in
        let s = g "S" in
        N.mux nl ~sel:s ~on_true:b ~on_false:a
      | "$_NMUX_" ->
        let a = g "A" in
        let b = g "B" in
        let s = g "S" in
        N.not_ nl (N.mux nl ~sel:s ~on_true:b ~on_false:a)
      | "$_AOI3_" ->
        let a = g "A" in
        let b = g "B" in
        let cc = g "C" in
        N.not_ nl (N.op2 nl N.Or (N.op2 nl N.And a b) cc)
      | "$_OAI3_" ->
        let a = g "A" in
        let b = g "B" in
        let cc = g "C" in
        N.not_ nl (N.op2 nl N.And (N.op2 nl N.Or a b) cc)
      | "$_AOI4_" ->
        let a = g "A" in
        let b = g "B" in
        let cc = g "C" in
        let d = g "D" in
        N.not_ nl (N.op2 nl N.Or (N.op2 nl N.And a b) (N.op2 nl N.And cc d))
      | "$_OAI4_" ->
        let a = g "A" in
        let b = g "B" in
        let cc = g "C" in
        let d = g "D" in
        N.not_ nl (N.op2 nl N.And (N.op2 nl N.Or a b) (N.op2 nl N.Or cc d))
      | _ -> assert false)
    | C_comb -> (
      match c.c_type with
      | "$const" ->
        N.const nl (param_bv c "VALUE" ~width:(yw ()))
      | "$slice" ->
        let a = rsig c "A" in
        let off = param_int c "OFFSET" ~default:0 in
        let hi = off + yw () - 1 in
        if off < 0 || hi >= N.width nl a then
          raise
            (Malformed
               (Printf.sprintf "cell %s: $slice range [%d:%d] exceeds input \
                                width %d"
                  c.c_inst hi off (N.width nl a)));
        N.extract nl ~hi ~lo:off a
      | "$concat" ->
        let parts =
          if conn_opt c "A0" <> None then begin
            let rec gather k acc =
              match conn_opt c (Printf.sprintf "A%d" k) with
              | Some b -> gather (k + 1) (b :: acc)
              | None -> List.rev acc
            in
            gather 0 []
          end
          else [ conn c "A"; conn c "B" ]
        in
        (* Parts are LSB-first; resolve in that order, concat MSB-first. *)
        let built =
          List.fold_left (fun acc b -> resolve b :: acc) [] parts
        in
        N.concat nl built
      | "$mux" ->
        let a = rsig c "A" in
        let b = rsig c "B" in
        let s = rsig c "S" in
        N.mux nl ~sel:s ~on_true:b ~on_false:a
      | "$pmux" ->
        let a = rsig c "A" in
        let w = N.width nl a in
        let sbits = conn c "S" in
        let bbits = conn c "B" in
        if Array.length bbits <> w * Array.length sbits then
          raise
            (Malformed (Printf.sprintf "cell %s: $pmux B/S width mismatch" c.c_inst));
        let acc = ref a in
        Array.iteri
          (fun k sb ->
            let s = resolve [| sb |] in
            let b = resolve (Array.sub bbits (k * w) w) in
            acc := N.mux nl ~sel:s ~on_true:b ~on_false:!acc)
          sbits;
        !acc
      | "$not" ->
        let a = ext_sig ~signed:(a_signed c) (rsig c "A") (yw ()) in
        N.not_ nl a
      | "$neg" ->
        let a = ext_sig ~signed:(a_signed c) (rsig c "A") (yw ()) in
        N.op2 nl N.Sub (const_node (Bitvec.zero (yw ()))) a
      | "$and" | "$or" | "$xor" | "$xnor" | "$add" | "$sub" | "$mul" ->
        let signed = both_signed c in
        let a = ext_sig ~signed (rsig c "A") (yw ()) in
        let b = ext_sig ~signed (rsig c "B") (yw ()) in
        let op =
          match c.c_type with
          | "$and" -> N.And
          | "$or" -> N.Or
          | "$xor" | "$xnor" -> N.Xor
          | "$add" -> N.Add
          | "$sub" -> N.Sub
          | _ -> N.Mul
        in
        let r = N.op2 nl op a b in
        if c.c_type = "$xnor" then N.not_ nl r else r
      | "$eq" | "$ne" | "$eqx" | "$nex" ->
        (if c.c_type = "$eqx" || c.c_type = "$nex" then
           warn
             (Diag.warning ~code:"F504" ~signal_name:c.c_inst
                (Printf.sprintf
                   "cell %s: %s treated as its 2-valued counterpart (no x \
                    semantics)"
                   c.c_inst c.c_type)));
        let signed = both_signed c in
        let a0 = rsig c "A" in
        let b0 = rsig c "B" in
        let w = max (N.width nl a0) (N.width nl b0) in
        let a = ext_sig ~signed a0 w in
        let b = ext_sig ~signed b0 w in
        let e = N.op2 nl N.Eq a b in
        let r =
          if c.c_type = "$ne" || c.c_type = "$nex" then N.not_ nl e else e
        in
        yext r (yw ())
      | "$lt" | "$le" | "$gt" | "$ge" ->
        let signed = both_signed c in
        let a0 = rsig c "A" in
        let b0 = rsig c "B" in
        let w = max (N.width nl a0) (N.width nl b0) in
        let a = ext_sig ~signed a0 w in
        let b = ext_sig ~signed b0 w in
        let op = if signed then N.Slt else N.Ult in
        let r =
          match c.c_type with
          | "$lt" -> N.op2 nl op a b
          | "$gt" -> N.op2 nl op b a
          | "$le" -> N.not_ nl (N.op2 nl op b a)
          | _ -> N.not_ nl (N.op2 nl op a b)
        in
        yext r (yw ())
      | "$reduce_or" | "$reduce_bool" -> yext (N.reduce_or nl (rsig c "A")) (yw ())
      | "$reduce_and" -> yext (N.reduce_and nl (rsig c "A")) (yw ())
      | "$reduce_xor" | "$reduce_xnor" ->
        let a = rsig c "A" in
        let w = N.width nl a in
        let acc = ref (if w = 1 then a else N.extract nl ~hi:0 ~lo:0 a) in
        for k = 1 to w - 1 do
          acc := N.op2 nl N.Xor !acc (N.extract nl ~hi:k ~lo:k a)
        done;
        let r = if c.c_type = "$reduce_xnor" then N.not_ nl !acc else !acc in
        yext r (yw ())
      | "$logic_not" -> yext (N.not_ nl (N.reduce_or nl (rsig c "A"))) (yw ())
      | "$logic_and" | "$logic_or" ->
        let a = N.reduce_or nl (rsig c "A") in
        let b = N.reduce_or nl (rsig c "B") in
        let op = if c.c_type = "$logic_and" then N.And else N.Or in
        yext (N.op2 nl op a b) (yw ())
      | "$shl" | "$sshl" | "$shr" | "$sshr" ->
        let w = yw () in
        let asig = a_signed c in
        let a = ext_sig ~signed:asig (rsig c "A") w in
        let b = rsig c "B" in
        let wb = N.width nl b in
        let left = c.c_type = "$shl" || c.c_type = "$sshl" in
        let arith = c.c_type = "$sshr" && asig in
        let sign () = N.extract nl ~hi:(w - 1) ~lo:(w - 1) a in
        let acc = ref a in
        for k = 0 to wb - 1 do
          let amt = if k >= 62 then max_int else 1 lsl k in
          let bk = if wb = 1 then b else N.extract nl ~hi:k ~lo:k b in
          let shifted =
            if amt >= w then
              if arith then
                let m = sign () in
                if w = 1 then m else N.concat nl (List.init w (fun _ -> m))
              else const_node (Bitvec.zero w)
            else if left then
              let low = N.extract nl ~hi:(w - 1 - amt) ~lo:0 !acc in
              N.concat nl [ low; const_node (Bitvec.zero amt) ]
            else
              let hi = N.extract nl ~hi:(w - 1) ~lo:amt !acc in
              if arith then
                let m = sign () in
                N.concat nl (List.init amt (fun _ -> m) @ [ hi ])
              else N.concat nl [ const_node (Bitvec.zero amt); hi ]
          in
          acc := N.mux nl ~sel:bk ~on_true:shifted ~on_false:!acc
        done;
        !acc
      | ty -> raise (Malformed (Printf.sprintf "unhandled cell type %s" ty)))
    | C_reject _ -> assert false
  in
  (* Combinational dependencies: producer indices read at build time. *)
  let deps i =
    match prods.(i).src with
    | P_input _ -> []
    | P_cell (_, (C_ff | C_gate_ff | C_wire)) -> []
    | P_cell (c, cls) ->
      let op = out_pin cls in
      let acc = ref [] in
      List.iter
        (fun (pin, bits) ->
          if pin <> op then
            Array.iter
              (fun b ->
                match b with
                | Bnet n -> (
                  match Hashtbl.find_opt bit2prod n with
                  | Some (p, _) when not (List.mem p !acc) -> acc := p :: !acc
                  | _ -> ())
                | Bconst _ -> ())
              bits)
        c.c_conns;
      List.rev !acc
  in
  let state = Array.make (max np 1) 0 in
  let stack = ref [] in
  let rec emit i =
    match state.(i) with
    | 2 -> ()
    | 1 ->
      let rec cycle acc = function
        | [] -> acc
        | j :: _ when j = i -> i :: acc
        | j :: rest -> cycle (j :: acc) rest
      in
      raise (Cycle (List.map (fun j -> prod_label prods.(j)) (cycle [] !stack)))
    | _ ->
      state.(i) <- 1;
      stack := i :: !stack;
      List.iter emit (deps i);
      (sigs.(i) <-
        (match prods.(i).src with
        | P_input (nm, w) -> N.input nl nm w
        | P_cell (c, cls) -> build_cell c cls prods.(i).out));
      stack := List.tl !stack;
      state.(i) <- 2
  in
  (try
     for i = 0 to np - 1 do
       emit i
     done;
     (* Phase 2: feedback connections, in producer order. *)
     List.iter
       (fun (c, cls, r) ->
         let d = rsig c "D" in
         match c.c_type with
         | "$dff" | "$_DFF_P_" -> N.connect_reg nl r d
         | "$dffe" | "$_DFFE_PP_" | "$_DFFE_PN_" ->
           N.connect_reg nl r d;
           let en = rsig c (if cls = C_gate_ff then "E" else "EN") in
           let pol =
             if c.c_type = "$_DFFE_PN_" then 0
             else if c.c_type = "$_DFFE_PP_" then 1
             else param_int c "EN_POLARITY" ~default:1
           in
           N.connect_enable nl r (if pol = 0 then N.not_ nl en else en)
         | _ ->
           let sync = starts "$sdff" c.c_type in
           let rpin, vkey, polkey =
             if sync then ("SRST", "SRST_VALUE", "SRST_POLARITY")
             else ("ARST", "ARST_VALUE", "ARST_POLARITY")
           in
           let rst = rsig c rpin in
           let rst =
             if param_int c polkey ~default:1 = 0 then N.not_ nl rst else rst
           in
           let v = const_node (param_bv c vkey ~width:(N.width nl r)) in
           let hold =
             if c.c_type = "$adffe" || c.c_type = "$sdffe" then begin
               let en = rsig c "EN" in
               let en =
                 if param_int c "EN_POLARITY" ~default:1 = 0 then N.not_ nl en
                 else en
               in
               N.mux nl ~sel:en ~on_true:d ~on_false:r
             end
             else d
           in
           N.connect_reg nl r (N.mux nl ~sel:rst ~on_true:v ~on_false:hold))
       (List.rev !deferred_ffs);
     List.iter
       (fun (c, wsig) ->
         let d = rsig c "A" in
         N.connect_wire nl wsig
           (ext_sig ~signed:(a_signed c) d (N.width nl wsig)))
       (List.rev !deferred_wires);
     (* Output ports: force their cones into existence and carry the port
        name onto the driving node when it has none (so sidecars can refer
        to outputs by port name). *)
     List.iter
       (fun (pname, dir, bits) ->
         if dir = "output" then begin
           let s = resolve bits in
           if (N.node nl s).N.name = None && N.find_named nl pname = None then
             N.set_name nl s pname
         end)
       ports
   with
  | Malformed m -> Diag.reject ~design:mod_name [ Diag.error ~code:"F512" m ]
  | Failure m -> Diag.reject ~design:mod_name [ Diag.error ~code:"F512" m ]
  | Cycle labels ->
    Diag.reject ~design:mod_name
      [
        Diag.error ~code:"F507"
          (Printf.sprintf "combinational cycle through %s"
             (String.concat " -> " labels));
      ]);
  (* Names for every exactly-matching public netname. *)
  List.iter
    (fun (nm, bits, hide) ->
      if not hide then
        let full_match =
          if Array.length bits = 0 then None
          else
            match bits.(0) with
            | Bconst _ -> None
            | Bnet n0 -> (
              match Hashtbl.find_opt bit2prod n0 with
              | Some (p, 0) when Array.length prods.(p).out = Array.length bits
                -> (
                let ok = ref true in
                Array.iteri
                  (fun off b ->
                    match b with
                    | Bnet n when Hashtbl.find_opt bit2prod n = Some (p, off) ->
                      ()
                    | _ -> ok := false)
                  bits;
                match !ok with true -> Some sigs.(p) | false -> None)
              | _ -> None)
        in
        match full_match with
        | Some s when (N.node nl s).N.name = None && N.find_named nl nm = None
          ->
          N.set_name nl s nm
        | Some _ -> ()
        | None ->
          warn
            (Diag.info ~code:"F509" ~signal_name:nm
               (Printf.sprintf
                  "netname %s does not align with a word-level node; name \
                   dropped"
                  nm)))
    nn_order;
  if !xz_bits > 0 then
    warn
      (Diag.warning ~code:"F504"
         (Printf.sprintf "%d x/z constant bit(s) treated as 0" !xz_bits));
  (match N.validate nl with
  | () -> ()
  | exception Failure m ->
    Diag.reject ~design:mod_name
      (Diag.error ~code:"F508" m :: List.rev !warns));
  { nl; warnings = List.rev !warns }

let import_string ?top ~design s =
  match Json.parse_string s with
  | exception Json.Parse_error m ->
    Diag.reject ~design [ Diag.error ~code:"F502" m ]
  | j -> import ?top j

let import_file ?top path =
  let design = Filename.remove_extension (Filename.basename path) in
  match Json.parse_file path with
  | exception Sys_error m -> Diag.reject ~design [ Diag.error ~code:"F502" m ]
  | exception Json.Parse_error m ->
    Diag.reject ~design [ Diag.error ~code:"F502" (path ^ ": " ^ m) ]
  | j -> import ?top j

(* --- export ------------------------------------------------------------- *)

let export nl =
  N.validate nl;
  let n = N.num_nodes nl in
  let has_regs = N.registers nl <> [] in
  (* Net ids: Yosys convention starts at 2; the synthetic clock takes the
     first id, then every node gets a fresh consecutive range in id order —
     the importer recovers creation order from min output ids. *)
  let next = ref 2 in
  let clk_bit =
    if has_regs then begin
      let b = !next in
      incr next;
      Some b
    end
    else None
  in
  let bits =
    Array.init n (fun id ->
        let w = N.width nl id in
        let b0 = !next in
        next := !next + w;
        Array.init w (fun k -> b0 + k))
  in
  let jbits id = Json.List (Array.to_list (Array.map (fun b -> Json.Int b) bits.(id))) in
  let jclk () = Json.List [ Json.Int (Option.get clk_bit) ] in
  let cell_name id =
    match (N.node nl id).N.name with
    | Some nm -> nm
    | None -> Printf.sprintf "$n%d" id
  in
  let dir d = Json.String d in
  let cells = ref [] in
  let netnames = ref [] in
  let add_cell id ty ~params ~dirs ~conns =
    cells :=
      ( cell_name id,
        Json.Assoc
          [
            ("hide_name", Json.Int (if (N.node nl id).N.name = None then 1 else 0));
            ("type", Json.String ty);
            ("parameters", Json.Assoc params);
            ("attributes", Json.Assoc []);
            ("port_directions", Json.Assoc dirs);
            ("connections", Json.Assoc conns);
          ] )
      :: !cells
  in
  let pint k v = (k, Json.Int v) in
  N.iter_nodes nl (fun node ->
      let id = node.N.id in
      let w = node.N.width in
      (match node.N.kind with
      | N.Input -> ()
      | N.Const v ->
        add_cell id "$const"
          ~params:[ ("VALUE", Json.String (Bitvec.to_binary_string v)); pint "WIDTH" w ]
          ~dirs:[ ("Y", dir "output") ]
          ~conns:[ ("Y", jbits id) ]
      | N.Reg { next = nx; enable; init = _ } ->
        let nx = Option.get nx in
        let ty = if enable = None then "$dff" else "$dffe" in
        let params =
          [ pint "WIDTH" w; pint "CLK_POLARITY" 1 ]
          @ if enable = None then [] else [ pint "EN_POLARITY" 1 ]
        in
        let dirs =
          [ ("CLK", dir "input"); ("D", dir "input"); ("Q", dir "output") ]
          @ if enable = None then [] else [ ("EN", dir "input") ]
        in
        let conns =
          [ ("CLK", jclk ()); ("D", jbits nx); ("Q", jbits id) ]
          @
          match enable with
          | None -> []
          | Some en -> [ ("EN", jbits en) ]
        in
        add_cell id ty ~params ~dirs ~conns
      | N.Wire { driver } ->
        let d = Option.get driver in
        add_cell id "$pos"
          ~params:[ pint "A_SIGNED" 0; pint "A_WIDTH" (N.width nl d); pint "Y_WIDTH" w ]
          ~dirs:[ ("A", dir "input"); ("Y", dir "output") ]
          ~conns:[ ("A", jbits d); ("Y", jbits id) ]
      | N.Not a ->
        add_cell id "$not"
          ~params:[ pint "A_SIGNED" 0; pint "A_WIDTH" (N.width nl a); pint "Y_WIDTH" w ]
          ~dirs:[ ("A", dir "input"); ("Y", dir "output") ]
          ~conns:[ ("A", jbits a); ("Y", jbits id) ]
      | N.Op2 (op, a, b) ->
        let ty, signed =
          match op with
          | N.And -> ("$and", 0)
          | N.Or -> ("$or", 0)
          | N.Xor -> ("$xor", 0)
          | N.Add -> ("$add", 0)
          | N.Sub -> ("$sub", 0)
          | N.Mul -> ("$mul", 0)
          | N.Eq -> ("$eq", 0)
          | N.Ult -> ("$lt", 0)
          | N.Slt -> ("$lt", 1)
        in
        add_cell id ty
          ~params:
            [
              pint "A_SIGNED" signed; pint "B_SIGNED" signed;
              pint "A_WIDTH" (N.width nl a); pint "B_WIDTH" (N.width nl b);
              pint "Y_WIDTH" w;
            ]
          ~dirs:[ ("A", dir "input"); ("B", dir "input"); ("Y", dir "output") ]
          ~conns:[ ("A", jbits a); ("B", jbits b); ("Y", jbits id) ]
      | N.Mux { sel; on_true; on_false } ->
        add_cell id "$mux"
          ~params:[ pint "WIDTH" w ]
          ~dirs:
            [
              ("A", dir "input"); ("B", dir "input"); ("S", dir "input");
              ("Y", dir "output");
            ]
          ~conns:
            [
              ("A", jbits on_false); ("B", jbits on_true); ("S", jbits sel);
              ("Y", jbits id);
            ]
      | N.Extract { hi = _; lo; arg } ->
        add_cell id "$slice"
          ~params:
            [ pint "OFFSET" lo; pint "A_WIDTH" (N.width nl arg); pint "Y_WIDTH" w ]
          ~dirs:[ ("A", dir "input"); ("Y", dir "output") ]
          ~conns:[ ("A", jbits arg); ("Y", jbits id) ]
      | N.Concat parts ->
        (* parts is MSB-first; ports A0.. are LSB-first. *)
        let lsb_first = List.rev parts in
        let conns =
          List.mapi (fun k p -> (Printf.sprintf "A%d" k, jbits p)) lsb_first
          @ [ ("Y", jbits id) ]
        in
        let dirs =
          List.mapi (fun k _ -> (Printf.sprintf "A%d" k, dir "input")) lsb_first
          @ [ ("Y", dir "output") ]
        in
        add_cell id "$concat" ~params:[ pint "Y_WIDTH" w ] ~dirs ~conns
      | N.ReduceOr a ->
        add_cell id "$reduce_or"
          ~params:[ pint "A_SIGNED" 0; pint "A_WIDTH" (N.width nl a); pint "Y_WIDTH" w ]
          ~dirs:[ ("A", dir "input"); ("Y", dir "output") ]
          ~conns:[ ("A", jbits a); ("Y", jbits id) ]
      | N.ReduceAnd a ->
        add_cell id "$reduce_and"
          ~params:[ pint "A_SIGNED" 0; pint "A_WIDTH" (N.width nl a); pint "Y_WIDTH" w ]
          ~dirs:[ ("A", dir "input"); ("Y", dir "output") ]
          ~conns:[ ("A", jbits a); ("Y", jbits id) ]);
      match node.N.name with
      | None -> ()
      | Some nm ->
        let attrs =
          match node.N.kind with
          | N.Reg { init = N.Init_value v; _ } ->
            [ ("init", Json.String (Bitvec.to_binary_string v)) ]
          | _ -> []
        in
        netnames :=
          ( nm,
            Json.Assoc
              [
                ("hide_name", Json.Int 0);
                ("bits", jbits id);
                ("attributes", Json.Assoc attrs);
              ] )
          :: !netnames);
  let ports =
    (match clk_bit with
    | Some b ->
      [
        ( "clk",
          Json.Assoc
            [ ("direction", dir "input"); ("bits", Json.List [ Json.Int b ]) ]
        );
      ]
    | None -> [])
    @ List.filter_map
        (fun id ->
          match (N.node nl id).N.kind with
          | N.Input ->
            Some
              ( cell_name id,
                Json.Assoc [ ("direction", dir "input"); ("bits", jbits id) ] )
          | _ -> None)
        (N.inputs nl)
  in
  Json.Assoc
    [
      ("creator", Json.String "synthlc export");
      ( "modules",
        Json.Assoc
          [
            ( N.name nl,
              Json.Assoc
                [
                  ("attributes", Json.Assoc [ ("top", Json.Int 1) ]);
                  ("ports", Json.Assoc ports);
                  ("cells", Json.Assoc (List.rev !cells));
                  ("netnames", Json.Assoc (List.rev !netnames));
                ] );
          ] );
    ]

let export_string nl = Json.to_string (export nl)
