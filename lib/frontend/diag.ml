(* Frontend admission diagnostics.  See diag.mli. *)

exception Rejected of Lint.Diagnostic.report

let reject ~design diags =
  raise (Rejected { Lint.Diagnostic.design; diags })

let make severity ?signal_name ~code message =
  Lint.Diagnostic.make ?signal_name ~code ~severity message

let error = make Lint.Diagnostic.Error
let warning = make Lint.Diagnostic.Warning
let info = make Lint.Diagnostic.Info
