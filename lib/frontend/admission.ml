(* Admission pipeline: import -> sidecar -> mandatory µLint.  See
   admission.mli. *)

module D = Lint.Diagnostic

type design = {
  meta : Designs.Meta.t;
  iuv_pc : int;
  stimulus : Sidecar.stim;
  report : D.report;
}

let load ?top ?(lint = true) ~json_path ~meta_path () =
  let { Yosys.nl; warnings } = Yosys.import_file ?top json_path in
  let sc = Sidecar.resolve_file nl meta_path in
  let meta = sc.Sidecar.meta in
  let lint_diags = if lint then (Lint.Driver.run_design meta).D.diags else [] in
  let report =
    { D.design = meta.Designs.Meta.design_name; diags = warnings @ lint_diags }
  in
  if List.exists (fun d -> d.D.severity = D.Error) report.D.diags then
    raise (Diag.Rejected report);
  { meta; iuv_pc = sc.Sidecar.iuv_pc; stimulus = sc.Sidecar.stimulus; report }
