(** µFSM/IFR metadata sidecar for imported netlists.

    A Yosys JSON netlist carries structure but none of the paper's Table
    II annotations.  The sidecar is a small JSON document shipped next to
    the netlist ([DESIGN.meta.json]) naming, {e by signal name}, the
    fetch-stage IFR slots, the operand stage, commit/flush, the µFSMs
    (performing-location state registers, idle states, PL labels), the
    operand taint sources, and the architectural state — everything
    {!Designs.Meta.t} needs, so an imported design plugs into
    {!Mupath.Synth} and {!Synthlc.Flow} unchanged.  See DESIGN.md §18
    for the schema.

    Every reference is by name and resolved against
    {!Hdl.Netlist.find_named}; unresolved names are collected (code F510)
    and reported together via {!Diag.Rejected}, as are schema errors
    (F511). *)

type stim = S_none | S_core | S_ibex | S_cache
(** Which built-in constrained-random stimulus family drives the design's
    fetch interface (the sidecar ["stimulus"] field; default none). *)

type t = {
  meta : Designs.Meta.t;
  iuv_pc : int;  (** IUV program-counter slot (§V-A constraint). *)
  stimulus : stim;
}

val stim_name : stim -> string
val stim_of_string : string -> stim option

val resolve : Hdl.Netlist.t -> Json.t -> t
(** Raises {!Diag.Rejected} with every unresolved name and schema
    violation. *)

val resolve_file : Hdl.Netlist.t -> string -> t

val of_meta : stimulus:stim -> iuv_pc:int -> Designs.Meta.t -> Json.t
(** Serialize annotations back out (the [synthlc export] path).  Raises
    [Failure] if an annotated signal is unnamed. *)
