(** Frontend admission diagnostics.

    The frontend reuses {!Lint.Diagnostic} (codes, severities, JSON
    artifact format) under its own F5xx namespace, so `synthlc import
    --json` output drops into the same CI dashboards as `synthlc lint
    --json`.

    Rejection is total: an importer or sidecar error never yields a
    half-built netlist — it raises {!Rejected} carrying the complete
    collected report, so one failed admission surfaces every offending
    cell, net, and annotation at once. *)

exception Rejected of Lint.Diagnostic.report

val reject : design:string -> Lint.Diagnostic.t list -> 'a
(** Raise {!Rejected} with the given diagnostics (errors first is the
    caller's concern; order is preserved). *)

val error : ?signal_name:string -> code:string -> string -> Lint.Diagnostic.t
val warning : ?signal_name:string -> code:string -> string -> Lint.Diagnostic.t
val info : ?signal_name:string -> code:string -> string -> Lint.Diagnostic.t

(** F5xx code catalogue (summaries live in {!Lint.Diagnostic.rule_summary}):
    - F501 unsupported cell type
    - F502 malformed netlist JSON
    - F503 clock discipline violation
    - F504 x/z bit treated as constant 0
    - F505 undriven net
    - F506 multiply-driven net
    - F507 combinational cycle among imported cells
    - F508 imported netlist failed validation
    - F509 netname not representable word-level
    - F510 sidecar names an unknown signal
    - F511 malformed sidecar
    - F512 malformed cell connection or parameter *)
