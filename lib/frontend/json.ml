(* Recursive-descent JSON parser and printer.  See json.mli. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

exception Parse_error of string

(* --- parser ------------------------------------------------------------- *)

type cursor = { src : string; mutable pos : int }

let error c msg =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min c.pos (String.length c.src) - 1 do
    if c.src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  raise (Parse_error (Printf.sprintf "line %d, column %d: %s" !line !col msg))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> error c (Printf.sprintf "expected %c, found %c" ch x)
  | None -> error c (Printf.sprintf "expected %c, found end of input" ch)

let utf8_of_code buf u =
  (* Encode a Unicode scalar value as UTF-8. *)
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_hex4 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek c with
    | Some ch ->
      let d =
        match ch with
        | '0' .. '9' -> Char.code ch - Char.code '0'
        | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
        | _ -> error c "invalid \\u escape"
      in
      v := (!v * 16) + d
    | None -> error c "truncated \\u escape");
    advance c
  done;
  !v

let parse_string_lit c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'; advance c
      | Some '\\' -> Buffer.add_char buf '\\'; advance c
      | Some '/' -> Buffer.add_char buf '/'; advance c
      | Some 'b' -> Buffer.add_char buf '\b'; advance c
      | Some 'f' -> Buffer.add_char buf '\012'; advance c
      | Some 'n' -> Buffer.add_char buf '\n'; advance c
      | Some 'r' -> Buffer.add_char buf '\r'; advance c
      | Some 't' -> Buffer.add_char buf '\t'; advance c
      | Some 'u' ->
        advance c;
        utf8_of_code buf (parse_hex4 c)
      | Some ch -> error c (Printf.sprintf "invalid escape \\%c" ch)
      | None -> error c "truncated escape");
      loop ()
    | Some ch when Char.code ch < 0x20 -> error c "raw control character in string"
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let consume_while p =
    let rec go () =
      match peek c with
      | Some ch when p ch ->
        advance c;
        go ()
      | _ -> ()
    in
    go ()
  in
  if peek c = Some '-' then advance c;
  (* JSON forbids leading zeros: 0 alone is fine, 01 is not. *)
  let int_start = c.pos in
  consume_while (function '0' .. '9' -> true | _ -> false);
  if c.pos = int_start then error c "expected a digit";
  if
    c.pos - int_start > 1
    && c.src.[int_start] = '0'
  then error c "leading zero in number";
  (match peek c with
  | Some '.' ->
    is_float := true;
    advance c;
    consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  (match peek c with
  | Some ('e' | 'E') ->
    is_float := true;
    advance c;
    (match peek c with Some ('+' | '-') -> advance c | _ -> ());
    consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error c (Printf.sprintf "invalid number %s" text)
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> (
      (* Out-of-range integer literal: keep it as a float. *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error c (Printf.sprintf "invalid number %s" text))

let parse_keyword c word value =
  String.iter (fun ch -> expect c ch) word;
  value

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Assoc []
    end
    else begin
      let members = ref [] in
      let rec loop () =
        skip_ws c;
        let key = parse_string_lit c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        members := (key, v) :: !members;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          loop ()
        | Some '}' -> advance c
        | _ -> error c "expected , or } in object"
      in
      loop ();
      Assoc (List.rev !members)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [] in
      let rec loop () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          loop ()
        | Some ']' -> advance c
        | _ -> error c "expected , or ] in array"
      in
      loop ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string_lit c)
  | Some 't' -> parse_keyword c "true" (Bool true)
  | Some 'f' -> parse_keyword c "false" (Bool false)
  | Some 'n' -> parse_keyword c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c (Printf.sprintf "unexpected character %c" ch)

let parse_string src =
  let c = { src; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  (match peek c with
  | Some ch -> error c (Printf.sprintf "trailing garbage starting with %c" ch)
  | None -> ());
  v

let parse_file path = parse_string (In_channel.with_open_bin path In_channel.input_all)

(* --- printer ------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"'

let to_string ?(compact = false) v =
  let buf = Buffer.create 1024 in
  let indent n = if not compact then Buffer.add_string buf (String.make n ' ') in
  let newline () = if not compact then Buffer.add_char buf '\n' in
  (* Scalars and flat lists of scalars print inline (Yosys keeps bit lists
     on one line); structured values get one member per line. *)
  let is_scalar = function
    | Null | Bool _ | Int _ | Float _ | String _ -> true
    | List _ | Assoc _ -> false
  in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | String s -> escape buf s
    | List items when compact || List.for_all is_scalar items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf (if compact then "," else ", ");
          go depth item)
        items;
      Buffer.add_char buf ']'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          newline ();
          indent (depth + 2);
          go (depth + 2) item)
        items;
      newline ();
      indent depth;
      Buffer.add_char buf ']'
    | Assoc [] -> Buffer.add_string buf "{}"
    | Assoc members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          newline ();
          indent (depth + 2);
          escape buf k;
          Buffer.add_string buf (if compact then ":" else ": ");
          go (depth + 2) v)
        members;
      newline ();
      indent depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  newline ();
  Buffer.contents buf

(* --- accessors ---------------------------------------------------------- *)

let member k = function
  | Assoc members -> List.assoc_opt k members
  | _ -> None

let to_assoc = function Assoc m -> Some m | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_int = function Int n -> Some n | _ -> None
let to_str = function String s -> Some s | _ -> None
