(** Admission pipeline for imported designs.

    [load] is the single entry point the CLI uses for [.json] designs:
    parse + import the Yosys netlist ({!Yosys}), resolve the metadata
    sidecar ({!Sidecar}), then run µLint (L/T/A-series) as the mandatory
    admission filter.  Any error-severity finding — frontend (F5xx) or
    lint — raises {!Diag.Rejected} with the combined report; no checker
    ever sees an unvetted design. *)

type design = {
  meta : Designs.Meta.t;
  iuv_pc : int;
  stimulus : Sidecar.stim;
  report : Lint.Diagnostic.report;
      (** Admission findings that did not block: frontend warnings plus
          lint warnings/infos. *)
}

val load :
  ?top:string -> ?lint:bool -> json_path:string -> meta_path:string -> unit ->
  design
(** Raises {!Diag.Rejected} on any admission error.  [lint] defaults to
    [true]; pass [false] only when re-building a design that already
    passed admission this run (e.g. the per-task rebuild thunk —
    {!Mupath.Synth} consumes its meta). *)
