(* Sidecar metadata reader/writer.  See sidecar.mli and DESIGN.md §18. *)

module N = Hdl.Netlist
module M = Designs.Meta

type stim = S_none | S_core | S_ibex | S_cache

type t = { meta : M.t; iuv_pc : int; stimulus : stim }

let stim_name = function
  | S_none -> "none"
  | S_core -> "core"
  | S_ibex -> "ibex"
  | S_cache -> "cache"

let stim_of_string = function
  | "none" -> Some S_none
  | "core" -> Some S_core
  | "ibex" -> Some S_ibex
  | "cache" -> Some S_cache
  | _ -> None

let resolve nl j =
  let design = N.name nl in
  let errs = ref [] in
  let err d = errs := d :: !errs in
  let schema ctx msg =
    err (Diag.error ~code:"F511" (Printf.sprintf "%s: %s" ctx msg))
  in
  (* On error, record the diagnostic and return a placeholder; the
     collected report is rejected before any placeholder can escape. *)
  let sig_named ctx nm =
    match N.find_named nl nm with
    | Some s -> s
    | None ->
      err
        (Diag.error ~code:"F510" ~signal_name:nm
           (Printf.sprintf "%s: no signal named %S in the netlist" ctx nm));
      0
  in
  let field_str ctx k o =
    match Option.bind (Json.member k o) Json.to_str with
    | Some s -> s
    | None ->
      schema ctx (Printf.sprintf "missing or non-string field %S" k);
      ""
  in
  let field_sig ctx k o =
    match field_str ctx k o with "" -> 0 | nm -> sig_named ctx nm
  in
  let field_int ctx k o =
    match Option.bind (Json.member k o) Json.to_int with
    | Some n -> n
    | None ->
      schema ctx (Printf.sprintf "missing or non-integer field %S" k);
      0
  in
  let str_list ctx k o =
    match Json.member k o with
    | None -> []
    | Some (Json.List l) ->
      List.filter_map
        (fun v ->
          match Json.to_str v with
          | Some s -> Some s
          | None ->
            schema ctx (Printf.sprintf "field %S: non-string element" k);
            None)
        l
    | Some _ ->
      schema ctx (Printf.sprintf "field %S is not a list" k);
      []
  in
  let sig_list ctx k o = List.map (sig_named ctx) (str_list ctx k o) in
  (match Option.bind (Json.member "design" j) Json.to_str with
  | Some d when d <> design ->
    schema "sidecar"
      (Printf.sprintf "names design %S but the netlist module is %S" d design)
  | _ -> ());
  let stimulus =
    match Option.bind (Json.member "stimulus" j) Json.to_str with
    | None -> S_none
    | Some s -> (
      match stim_of_string s with
      | Some st -> st
      | None ->
        schema "sidecar"
          (Printf.sprintf
             "unknown stimulus %S (expected none, core, ibex, or cache)" s);
        S_none)
  in
  let iuv_pc = field_int "sidecar" "iuv_pc" j in
  let ifrs =
    match Json.member "ifrs" j with
    | Some (Json.List l) ->
      List.mapi
        (fun i o ->
          let ctx = Printf.sprintf "ifrs[%d]" i in
          {
            M.ifr_valid = field_sig ctx "valid" o;
            ifr_pc = field_sig ctx "pc" o;
            ifr_word = field_sig ctx "word" o;
          })
        l
    | _ ->
      schema "sidecar" "missing \"ifrs\" list";
      []
  in
  let operand_stage_valid, operand_stage_pc =
    match Json.member "operand_stage" j with
    | Some o -> (field_sig "operand_stage" "valid" o, field_sig "operand_stage" "pc" o)
    | None ->
      schema "sidecar" "missing \"operand_stage\" object";
      (0, 0)
  in
  let commit = field_sig "sidecar" "commit" j in
  let commit_pc = field_sig "sidecar" "commit_pc" j in
  let flush = field_sig "sidecar" "flush" j in
  let state_bv ctx width s =
    if s = "" || not (String.for_all (function '0' | '1' -> true | _ -> false) s)
    then begin
      schema ctx (Printf.sprintf "state key %S is not a binary string" s);
      Bitvec.zero width
    end
    else if String.length s <> width then begin
      schema ctx
        (Printf.sprintf "state key %S has width %d, expected %d (the summed \
                         width of the µFSM's vars)"
           s (String.length s) width);
      Bitvec.zero width
    end
    else Bitvec.of_binary_string s
  in
  let ufsms =
    match Json.member "ufsms" j with
    | None -> []
    | Some (Json.List l) ->
      List.map
        (fun o ->
          let name =
            match Option.bind (Json.member "name" o) Json.to_str with
            | Some s -> s
            | None ->
              schema "ufsms" "entry without a \"name\"";
              "?"
          in
          let ctx = "ufsm " ^ name in
          let vars = sig_list ctx "vars" o in
          let width =
            max 1
              (List.fold_left (fun acc v -> acc + N.width nl v) 0 vars)
          in
          let idle_states =
            List.map (state_bv ctx width) (str_list ctx "idle" o)
          in
          let state_labels =
            match Json.member "labels" o with
            | None -> []
            | Some (Json.Assoc kv) ->
              List.map
                (fun (k, v) ->
                  let label =
                    match Json.to_str v with
                    | Some s -> s
                    | None ->
                      schema ctx
                        (Printf.sprintf "label for state %S is not a string" k);
                      "?"
                  in
                  (state_bv ctx width k, label))
                kv
            | Some _ ->
              schema ctx "\"labels\" is not an object";
              []
          in
          {
            M.ufsm_name = name;
            pcr = field_sig ctx "pcr" o;
            vars;
            idle_states;
            state_labels;
          })
        l
    | Some _ ->
      schema "sidecar" "\"ufsms\" is not a list";
      []
  in
  let operand_regs =
    match Json.member "operands" j with
    | None -> []
    | Some (Json.Assoc kv) ->
      List.map
        (fun (k, v) ->
          match Json.to_str v with
          | Some nm -> (k, sig_named ("operand " ^ k) nm)
          | None ->
            schema "operands" (Printf.sprintf "operand %S is not a string" k);
            (k, 0))
        kv
    | Some _ ->
      schema "sidecar" "\"operands\" is not an object";
      []
  in
  let arf = sig_list "sidecar" "arf" j in
  let amem = sig_list "sidecar" "amem" j in
  let extra_assumes = sig_list "sidecar" "assumes" j in
  if !errs <> [] then Diag.reject ~design (List.rev !errs);
  {
    meta =
      {
        M.design_name = design;
        nl;
        ifrs;
        operand_stage_valid;
        operand_stage_pc;
        commit;
        commit_pc;
        flush;
        ufsms;
        operand_regs;
        arf;
        amem;
        extra_assumes;
      };
    iuv_pc;
    stimulus;
  }

let resolve_file nl path =
  let design = N.name nl in
  match Json.parse_file path with
  | exception Sys_error m -> Diag.reject ~design [ Diag.error ~code:"F511" m ]
  | exception Json.Parse_error m ->
    Diag.reject ~design [ Diag.error ~code:"F511" (path ^ ": " ^ m) ]
  | j -> resolve nl j

(* --- writer ------------------------------------------------------------- *)

let of_meta ~stimulus ~iuv_pc (meta : M.t) =
  let nl = meta.M.nl in
  let name_of s =
    match (N.node nl s).N.name with
    | Some nm -> nm
    | None ->
      failwith
        (Printf.sprintf
           "Sidecar.of_meta: node %d of %s is unnamed; name every annotated \
            signal"
           s meta.M.design_name)
  in
  let jstr s = Json.String s in
  let jsig s = jstr (name_of s) in
  let jsigs l = Json.List (List.map jsig l) in
  Json.Assoc
    [
      ("design", jstr meta.M.design_name);
      ("stimulus", jstr (stim_name stimulus));
      ("iuv_pc", Json.Int iuv_pc);
      ( "ifrs",
        Json.List
          (List.map
             (fun (i : M.ifr_slot) ->
               Json.Assoc
                 [
                   ("valid", jsig i.M.ifr_valid);
                   ("pc", jsig i.M.ifr_pc);
                   ("word", jsig i.M.ifr_word);
                 ])
             meta.M.ifrs) );
      ( "operand_stage",
        Json.Assoc
          [
            ("valid", jsig meta.M.operand_stage_valid);
            ("pc", jsig meta.M.operand_stage_pc);
          ] );
      ("commit", jsig meta.M.commit);
      ("commit_pc", jsig meta.M.commit_pc);
      ("flush", jsig meta.M.flush);
      ( "ufsms",
        Json.List
          (List.map
             (fun (u : M.ufsm) ->
               Json.Assoc
                 [
                   ("name", jstr u.M.ufsm_name);
                   ("pcr", jsig u.M.pcr);
                   ("vars", jsigs u.M.vars);
                   ( "idle",
                     Json.List
                       (List.map
                          (fun v -> jstr (Bitvec.to_binary_string v))
                          u.M.idle_states) );
                   ( "labels",
                     Json.Assoc
                       (List.map
                          (fun (v, l) -> (Bitvec.to_binary_string v, jstr l))
                          u.M.state_labels) );
                 ])
             meta.M.ufsms) );
      ( "operands",
        Json.Assoc (List.map (fun (k, s) -> (k, jsig s)) meta.M.operand_regs)
      );
      ("arf", jsigs meta.M.arf);
      ("amem", jsigs meta.M.amem);
      ("assumes", jsigs meta.M.extra_assumes);
    ]
