(** Yosys [write_json] netlist frontend.

    {2 Import}

    [import] maps one module of a Yosys JSON netlist onto {!Hdl.Netlist}:
    the word-level cell library ($add/$sub/$and/$or/$xor/$not/$mux/$eq/
    $lt/$shl/$shr/$slice/$concat/$pmux/…), the $dff/$dffe/$adff/$sdff
    flip-flop family, and the [$_*_] gate-level forms Yosys emits after
    [abc].  Everything else — memories, latches, $assert, tristates,
    unknown types — is rejected {e by name}: the importer collects a
    diagnostic per offending cell (type and instance) and raises
    {!Diag.Rejected} before any analysis runs.  It never silently
    misencodes a cell.

    Single-clock discipline: every flip-flop must be clocked by the same
    positive-polarity net, driven by a dedicated 1-bit input port; that
    port is elided from the imported netlist (the {!Hdl} IR is implicitly
    synchronous).  [$adff]/[$sdff] asynchronous/synchronous resets are
    both modeled as a synchronous reset mux (a warning records the
    async→sync abstraction).

    {2 Export}

    [export] emits a Yosys-compatible JSON netlist from a validated
    {!Hdl.Netlist}.  The encoding is chosen so that the round trip is the
    identity on {!Hdl.Netlist.digest}: one cell per node with output bit
    ids assigned in node order, constants as [$const] cells, wires as
    [$pos], extracts as [$slice], concats as an [A0..An] [$concat], and
    named nodes recorded as netnames (register init values as ["init"]
    attributes).  [import (export nl)] is structurally identical to [nl]
    — the fuzz battery's round-trip oracle holds this as an invariant. *)

type t = {
  nl : Hdl.Netlist.t;
  warnings : Lint.Diagnostic.t list;
      (** Non-fatal admission findings: x/z bits zeroed, async-reset
          abstraction, unrepresentable netnames, … *)
}

val import : ?top:string -> Json.t -> t
(** Raises {!Diag.Rejected} with the full collected report on any
    unsupported or malformed construct.  [top] selects a module by name;
    the default is the module marked with the [top] attribute, or the
    only non-blackbox module. *)

val import_string : ?top:string -> design:string -> string -> t
(** Parse then import; [design] attributes parse errors. *)

val import_file : ?top:string -> string -> t

val export : Hdl.Netlist.t -> Json.t
(** Validates first: raises [Failure] on an unconnected or cyclic
    netlist. *)

val export_string : Hdl.Netlist.t -> string
