module Netlist = Hdl.Netlist

type t = {
  nl : Netlist.t;
  taint : (Netlist.signal, Netlist.signal) Hashtbl.t;
}

let taint_of t s =
  match Hashtbl.find_opt t.taint s with
  | Some ts -> ts
  | None -> invalid_arg "Ift.taint_of: signal was created after instrumentation"

let any_taint t s = Netlist.reduce_or t.nl (taint_of t s)

let instrument ?(precise = true) ?(inject = []) ?(blocked = []) ?flush ?(persistent = []) nl =
  let open Netlist in
  let t = { nl; taint = Hashtbl.create 256 } in
  let shadows = Hashtbl.create 64 in
  let n0 = num_nodes nl in
  let original = List.init n0 (fun i -> i) in
  let order = comb_order nl in
  let zero w = const nl (Bitvec.zero w) in
  let ones w = const nl (Bitvec.ones w) in
  let band a b = op2 nl And a b in
  let bor a b = op2 nl Or a b in
  let bnot a = not_ nl a in
  let repl1 b w =
    (* replicate a 1-bit signal across w bits *)
    if w = 1 then b else concat nl (List.init w (fun _ -> b))
  in
  let any s = reduce_or nl s in
  let tn s = Hashtbl.find t.taint s in

  (* Phase 1: shadow registers (so feedback taints resolve). *)
  List.iter
    (fun id ->
      match (node nl id).kind with
      | Reg { enable = Some _; _ } ->
        (* An enabled register holds on enable-0 cycles, which the shadow
           next-state logic of phase 3 does not model: instrumenting it
           would silently drop taint on every hold cycle.  Name the
           offender so the caller knows which annotation to fix. *)
        let name =
          match (node nl id).name with
          | Some nm -> nm
          | None -> Printf.sprintf "n%d" id
        in
        invalid_arg
          (Printf.sprintf
             "Ift.instrument: register %s has an enable (unsupported: taint \
              would be lost on hold cycles)"
             name)
      | Reg _ ->
        let w = width nl id in
        let name =
          match (node nl id).name with
          | Some nm -> nm ^ "_taint"
          | None -> Printf.sprintf "n%d_taint" id
        in
        let sh = reg nl ~name ~init:(Init_value (Bitvec.zero w)) ~width:w () in
        Hashtbl.replace shadows id sh;
        Hashtbl.replace t.taint id sh
      | _ -> ())
    original;

  (* Injected registers must read as tainted during the very cycle the
     injection condition holds (the operand is consumed that cycle), so
     their visible taint is shadow | replicate(cond). *)
  List.iter
    (fun (r, cond) ->
      let w = width nl r in
      let sh = Hashtbl.find shadows r in
      let now = mux nl ~sel:cond ~on_true:(ones w) ~on_false:(zero w) in
      Hashtbl.replace t.taint r (op2 nl Or sh now))
    inject;

  (* Phase 2: combinational taint in dependency order. *)
  Array.iter
    (fun id ->
      if id < n0 && not (Hashtbl.mem t.taint id) then begin
        let w = width nl id in
        let ts =
          match (node nl id).kind with
          | Reg _ -> assert false
          | Input -> zero w
          | Const _ -> zero w
          | Wire { driver = Some d } -> tn d
          | Wire { driver = None } -> failwith "Ift.instrument: unconnected wire"
          | Not a -> tn a
          | Op2 (And, a_, b_) ->
            if precise then
              (* out bit flips only if a controlling input is tainted *)
              bor (band (tn a_) (bor b_ (tn b_))) (band (tn b_) a_)
            else bor (tn a_) (tn b_)
          | Op2 (Or, a_, b_) ->
            if precise then
              bor (band (tn a_) (bor (bnot b_) (tn b_))) (band (tn b_) (bnot a_))
            else bor (tn a_) (tn b_)
          | Op2 (Xor, a_, b_) -> bor (tn a_) (tn b_)
          | Op2 ((Add | Sub | Mul), a_, b_) ->
            (* conservative: any tainted input bit taints the whole word *)
            repl1 (any (bor (tn a_) (tn b_))) w
          | Op2 ((Eq | Ult | Slt), a_, b_) -> any (bor (tn a_) (tn b_))
          | Mux { sel; on_true; on_false } ->
            let tsel = tn sel in
            if precise then
              let base = mux nl ~sel ~on_true:(tn on_true) ~on_false:(tn on_false) in
              let differ =
                bor (op2 nl Xor on_true on_false) (bor (tn on_true) (tn on_false))
              in
              bor base (band (repl1 tsel w) differ)
            else bor (bor (tn on_true) (tn on_false)) (repl1 tsel w)
          | Extract { hi; lo; arg } -> extract nl ~hi ~lo (tn arg)
          | Concat parts -> concat nl (List.map tn parts)
          | ReduceOr a | ReduceAnd a -> any (tn a)
        in
        Hashtbl.replace t.taint id ts
      end)
    order;

  (* Phase 3: connect shadow-register next-state logic. *)
  let blocked_tbl = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace blocked_tbl s ()) blocked;
  let persistent_tbl = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace persistent_tbl s ()) persistent;
  let inject_tbl = Hashtbl.create 8 in
  List.iter (fun (r, c) -> Hashtbl.replace inject_tbl r c) inject;
  List.iter
    (fun id ->
      match (node nl id).kind with
      | Reg { next = Some nxt; _ } ->
        let w = width nl id in
        let sh = Hashtbl.find shadows id in
        let propagated = tn nxt in
        let base =
          if Hashtbl.mem blocked_tbl id then zero w
          else
            match flush with
            | Some f when not (Hashtbl.mem persistent_tbl id) ->
              mux nl ~sel:f ~on_true:(zero w) ~on_false:propagated
            | _ -> propagated
        in
        let final =
          match Hashtbl.find_opt inject_tbl id with
          | Some cond -> mux nl ~sel:cond ~on_true:(ones w) ~on_false:base
          | None -> base
        in
        connect_reg nl sh final
      | Reg { next = None; _ } -> failwith "Ift.instrument: unconnected register"
      | _ -> ())
    original;
  t
