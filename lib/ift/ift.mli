(** Cell-level information-flow tracking (CellIFT-style) instrumentation
    (§V-C1).

    [instrument] extends a netlist in place with one shadow taint bit per
    data bit: each combinational cell gets a taint-propagation cell
    (precise for inverters, muxes and bitwise logic; conservative —
    any-tainted-input-taints-every-output-bit — for arithmetic and
    comparisons, which reproduces the paper's §VII-B1 over-taint false
    positives), and each register gets a shadow taint register.

    Three knobs mirror SynthLC's usage:
    - [inject]: (register, 1-bit condition) pairs — while the condition
      holds, the register's shadow is forced all-ones.  SynthLC points this
      at an operand register, conditioned on the transmitter occupying the
      issue stage (Fig. 7).
    - [blocked]: registers whose shadow is pinned to zero — the ARF and
      AMEM, blocking architectural taint propagation between instruction
      outputs and inputs (§V-A).
    - [flush]: an optional 1-bit signal; while it holds, every shadow
      register {e except} those in [persistent] is cleared.  This is the
      paper's second "sticky" taint bit mechanism enabling Assumption 3
      (static transmitters): after the transmitter dematerializes, only
      taint lodged in persistent state (cache arrays, memories) survives. *)

type t

val instrument :
  ?precise:bool ->
  ?inject:(Hdl.Netlist.signal * Hdl.Netlist.signal) list ->
  ?blocked:Hdl.Netlist.signal list ->
  ?flush:Hdl.Netlist.signal ->
  ?persistent:Hdl.Netlist.signal list ->
  Hdl.Netlist.t ->
  t
(** Appends shadow logic for every node present at call time.  Registers
    with enables are not supported (the shadow next-state logic would drop
    taint on hold cycles): a netlist containing one raises
    [Invalid_argument] naming the register.  [precise] (default true)
    selects the value-aware rules for AND/OR/MUX cells; [false] degrades
    them to taint-union — the ablation knob for measuring how cell-level
    precision controls §VII-B1 false positives. *)

val taint_of : t -> Hdl.Netlist.signal -> Hdl.Netlist.signal
(** The shadow signal carrying a node's per-bit taint. *)

val any_taint : t -> Hdl.Netlist.signal -> Hdl.Netlist.signal
(** 1-bit: some bit of the node is tainted. *)
