(* Known-bits abstract interpretation tests: unit transfer rules, the
   qcheck containment differential against lib/sim (every concrete state
   of a 24-cycle simulation lies inside the invariant envelope) on both
   random combinational netlists and full Fuzz.Gen pipeline designs, and
   the known-bits refinements of the fsm-reachability and taint-reach
   analyses. *)

module N = Hdl.Netlist
module A = Hdl.Analysis
module AI = Hdl.Absint

let bv w i = Bitvec.of_int ~width:w i

(* --- unit transfer rules ------------------------------------------------ *)

let fact k v w = { AI.known = bv w k; value = bv w v }

let check_fact msg expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected (k=%s,v=%s) got (k=%s,v=%s)" msg
       (Bitvec.to_hex_string expected.AI.known)
       (Bitvec.to_hex_string expected.AI.value)
       (Bitvec.to_hex_string got.AI.known)
       (Bitvec.to_hex_string got.AI.value))
    true
    (AI.fact_equal expected got)

let test_transfer_rules () =
  (* AND: known-zero operand bits force known-zero output bits. *)
  let nl = N.create "t" in
  let a = N.input nl "a" 8 in
  let b = N.input nl "b" 8 in
  let facts = Hashtbl.create 8 in
  let env s = Hashtbl.find facts s in
  let node_of s = N.node nl s in
  let set s f = Hashtbl.replace facts s f in
  set a (fact 0x0F 0x05 8);
  (* a: low nibble known 0101, high nibble unknown *)
  set b (fact 0xFF 0x33 8);
  (* b: fully known 0x33 *)
  let g = N.op2 nl N.And a b in
  set g (AI.transfer env (node_of g));
  (* high nibble of b is 0x3: bits 6,7 known-0 kill the unknown a bits;
     bits 4,5 stay unknown.  Low nibble fully known: 0x05 & 0x03 = 0x01. *)
  check_fact "and" (fact 0xCF 0x01 8) (env g);
  let g = N.op2 nl N.Or a b in
  set g (AI.transfer env (node_of g));
  (* known-1 bits of b (0x33) shine through the unknown high nibble. *)
  check_fact "or" (fact 0x3F 0x37 8) (env g);
  let g = N.op2 nl N.Xor a b in
  set g (AI.transfer env (node_of g));
  check_fact "xor" (fact 0x0F 0x06 8) (env g);
  let g = N.op2 nl N.Add a b in
  set g (AI.transfer env (node_of g));
  (* carries ride upward: only the 4 trailing jointly-known bits hold. *)
  check_fact "add" (fact 0x0F 0x08 8) (env g);
  let g = N.op2 nl N.Eq a b in
  set g (AI.transfer env (node_of g));
  (* bit 1: a known 0, b known 1 -> provably unequal. *)
  check_fact "eq disagree" { AI.known = Bitvec.ones 1; value = Bitvec.zero 1 } (env g);
  (* Mux with a known-one select takes the true arm. *)
  let sel = N.input nl "sel" 1 in
  set sel (fact 0x1 0x1 1);
  let g = N.mux nl ~sel ~on_true:a ~on_false:b in
  set g (AI.transfer env (node_of g));
  check_fact "mux known-nonzero sel" (fact 0x0F 0x05 8) (env g);
  (* Unknown select joins the arms where they agree. *)
  set sel (AI.top 1);
  let g2 = N.mux nl ~sel ~on_true:a ~on_false:b in
  set g2 (AI.transfer env (node_of g2));
  (* agreement on jointly-known bits: 0x05 vs 0x33 low nibble -> bits 0,1
     agree (1,0 vs 1,1? 0x5=0101 0x3=0011: bit0 1=1, bit1 0<>1, bit2 1<>0,
     bit3 0=0) -> known = 0x09. *)
  check_fact "mux join" (fact 0x09 0x01 8) (env g2);
  (* Ult via intervals: a in [0x05,0xF5], b = 0x33 -> undecided; but
     a | high-unknown vs small known bound decides when ranges separate. *)
  let c = N.input nl "c" 8 in
  set c (fact 0xF0 0x40 8);
  (* c in [0x40,0x4F] *)
  let g3 = N.op2 nl N.Ult b c in
  set g3 (AI.transfer env (node_of g3));
  (* 0x33 < [0x40,0x4F] always *)
  check_fact "ult true" (AI.exact (Bitvec.of_bool true)) (env g3);
  let g4 = N.op2 nl N.Ult c b in
  set g4 (AI.transfer env (node_of g4));
  check_fact "ult false" (AI.exact (Bitvec.of_bool false)) (env g4);
  (* ReduceOr of a value with a known-1 bit is known true. *)
  let g5 = N.reduce_or nl b in
  set g5 (AI.transfer env (node_of g5));
  check_fact "reduce_or" (AI.exact (Bitvec.of_bool true)) (env g5)

let test_fixpoint_stuck_register () =
  (* A register fed by itself AND-ed with a constant mask stays inside the
     mask; bits outside it are proven stuck at 0 even though the register
     also absorbs an input. *)
  let nl = N.create "stuck" in
  let d = N.input nl "d" 8 in
  let r = N.reg nl ~name:"r" ~init:(N.Init_value (bv 8 0)) ~width:8 () in
  N.connect_reg nl r (N.op2 nl N.And d (N.const nl (bv 8 0x0F)));
  let kb = AI.known_bits nl in
  let known, value = kb.(r) in
  Alcotest.(check int) "high nibble stuck at 0" 0xF0
    (Bitvec.to_int (Bitvec.logand known (bv 8 0xF0)));
  Alcotest.(check bool) "stuck bits are zero" true
    (Bitvec.is_zero (Bitvec.logand value (bv 8 0xF0)));
  Alcotest.(check bool) "low nibble unknown" true
    (Bitvec.is_zero (Bitvec.logand known (bv 8 0x0F)))

let test_enable_frozen_register () =
  (* An enable proven stuck at 0 freezes the register at its reset value. *)
  let nl = N.create "frozen" in
  let d = N.input nl "d" 4 in
  let en = N.op2 nl N.And (N.input nl "e" 1) (N.const nl (bv 1 0)) in
  let r = N.reg nl ~enable:en ~name:"r" ~init:(N.Init_value (bv 4 0x9)) ~width:4 () in
  N.connect_reg nl r d;
  let kb = AI.known_bits nl in
  Alcotest.(check (option int)) "frozen at reset" (Some 0x9)
    (Option.map Bitvec.to_int (AI.stuck_value kb r))

(* --- qcheck containment: known-bits >= every concrete state ------------ *)

let check_containment nl ~seed ~cycles =
  let kb = AI.known_bits nl in
  let sim = Sim.create ~seed nl in
  let nn = N.num_nodes nl in
  let ok = ref true in
  for cycle = 0 to cycles - 1 do
    Sim.poke_random_inputs sim;
    Sim.eval sim;
    for s = 0 to nn - 1 do
      let known, value = kb.(s) in
      let concrete = Sim.peek sim s in
      if not (Bitvec.equal (Bitvec.logand concrete known) value) then begin
        ok := false;
        QCheck.Test.fail_reportf
          "seed %d cycle %d: signal %d value %s escapes known bits (k=%s,v=%s)"
          seed cycle s
          (Bitvec.to_hex_string concrete)
          (Bitvec.to_hex_string known)
          (Bitvec.to_hex_string value)
      end
    done;
    Sim.step sim
  done;
  !ok

(* Random combinational netlists over two registers (the taint-test
   generator's shape): exercises every op kind including enables. *)
let random_netlist seed =
  let rng = Random.State.make [| seed |] in
  let nl = N.create "rand" in
  let data = N.input nl "data" 8 in
  let other = N.input nl "other" 8 in
  let src = N.reg nl ~name:"src" ~init:(N.Init_value (bv 8 (Random.State.int rng 256))) ~width:8 () in
  N.connect_reg nl src (N.op2 nl N.And data (N.const nl (bv 8 (Random.State.int rng 256))));
  let const () = N.const nl (bv 8 (Random.State.int rng 256)) in
  let rec gen depth =
    if depth = 0 then
      match Random.State.int rng 3 with
      | 0 -> src
      | 1 -> other
      | _ -> const ()
    else
      let a = gen (depth - 1) and b = gen (depth - 1) in
      match Random.State.int rng 12 with
      | 0 -> N.op2 nl N.And a b
      | 1 -> N.op2 nl N.Or a b
      | 2 -> N.op2 nl N.Xor a b
      | 3 -> N.op2 nl N.Add a b
      | 4 -> N.op2 nl N.Sub a b
      | 5 -> N.not_ nl a
      | 6 ->
        let sel = N.extract nl ~hi:0 ~lo:0 b in
        N.mux nl ~sel ~on_true:a ~on_false:b
      | 7 -> N.concat nl [ N.extract nl ~hi:3 ~lo:0 a; N.extract nl ~hi:7 ~lo:4 b ]
      | 8 ->
        let c = N.op2 nl N.Ult a b in
        N.mux nl ~sel:c ~on_true:a ~on_false:(N.op2 nl N.Sub a b)
      | 9 ->
        let c = N.op2 nl N.Slt a b in
        N.concat nl [ N.extract nl ~hi:6 ~lo:0 a; c ]
      | 10 -> N.op2 nl N.Mul a (const ())
      | _ ->
        let c = N.op2 nl N.Eq a b in
        N.mux nl ~sel:c ~on_true:a ~on_false:b
  in
  let f = gen (1 + Random.State.int rng 3) in
  let dst = N.reg nl ~name:"dst" ~init:N.Init_symbolic ~width:8 () in
  N.connect_reg nl dst f;
  let held =
    N.reg nl ~enable:(N.extract nl ~hi:0 ~lo:0 f) ~name:"held"
      ~init:(N.Init_value (bv 4 (Random.State.int rng 16)))
      ~width:4 ()
  in
  N.connect_reg nl held (N.extract nl ~hi:5 ~lo:2 f);
  nl

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

let qcheck_containment_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80
       ~name:"known bits contain 24-cycle sim (random comb)" arb_seed
       (fun seed -> check_containment (random_netlist seed) ~seed ~cycles:24))

let qcheck_containment_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:10
       ~name:"known bits contain 24-cycle sim (Fuzz.Gen pipelines)" arb_seed
       (fun seed ->
         let cfg = Fuzz.Gen.config_for ~seed 0 in
         let meta = Fuzz.Gen.build cfg in
         check_containment meta.Designs.Meta.nl ~seed ~cycles:24))

let test_builtin_designs_contained () =
  List.iter
    (fun build ->
      let meta = build () in
      Alcotest.(check bool)
        (N.name meta.Designs.Meta.nl ^ ": containment")
        true
        (check_containment meta.Designs.Meta.nl ~seed:7 ~cycles:24))
    [
      (fun () -> Designs.Core.build Designs.Core.baseline);
      (fun () -> Designs.Ibex.build ());
      (fun () -> Designs.Cache.build ());
    ]

(* --- known-bits refinement of the fsm/taint analyses -------------------- *)

let test_fsm_reachable_refined () =
  (* A 2-bit state register whose next state concatenates a stuck-at-0 bit:
     unrefined analysis sees the foreign feeding register as Top only if it
     routes through arithmetic; here we force Top via an Add, then let
     known-bits recover the stuck upper bit. *)
  let nl = N.create "fsmkb" in
  let d = N.input nl "d" 2 in
  (* feeder: (d & 01) + 0 — the Add widens the value-set to Top without
     known-bits, but bit 1 is provably 0. *)
  let feeder =
    N.op2 nl N.Add
      (N.op2 nl N.And d (N.const nl (bv 2 0x1)))
      (N.const nl (bv 2 0))
  in
  let st = N.reg nl ~name:"st" ~init:(N.Init_value (bv 2 0)) ~width:2 () in
  N.connect_reg nl st feeder;
  let base = A.fsm_reachable nl ~vars:[ st ] in
  let refined = A.fsm_reachable ~known:(AI.known_bits nl) nl ~vars:[ st ] in
  (* Unrefined: Add -> Top -> all four states.  Refined: bit 1 stuck. *)
  Alcotest.(check int) "unrefined reaches 4" 4
    (List.length (Option.get base));
  Alcotest.(check int) "refined reaches 2" 2
    (List.length (Option.get refined));
  List.iter
    (fun v ->
      Alcotest.(check bool) "refined states have bit1 clear" false
        (Bitvec.bit v 1))
    (Option.get refined)

let test_taint_reach_refined () =
  (* src & gate where gate's low nibble is stuck at 0 through a register:
     the constant map cannot see it (gate is a register), known-bits can. *)
  let nl = N.create "taintkb" in
  let d = N.input nl "d" 8 in
  let src = N.reg nl ~name:"src" ~init:(N.Init_value (bv 8 0)) ~width:8 () in
  N.connect_reg nl src d;
  let gate = N.reg nl ~name:"gate" ~init:(N.Init_value (bv 8 0)) ~width:8 () in
  N.connect_reg nl gate (N.op2 nl N.And (N.input nl "g" 8) (N.const nl (bv 8 0xF0)));
  let dst = N.reg nl ~name:"dst" ~init:(N.Init_value (bv 8 0)) ~width:8 () in
  N.connect_reg nl dst (N.op2 nl N.And src gate);
  let base = (A.taint_reach ~sources:[ src ] nl).(dst) in
  let refined =
    (A.taint_reach ~known:(AI.known_bits nl) ~sources:[ src ] nl).(dst)
  in
  Alcotest.(check int) "unrefined taints whole word" 0xFF (Bitvec.to_int base);
  Alcotest.(check int) "refined confines taint to high nibble" 0xF0
    (Bitvec.to_int refined)

(* --- end-to-end: absint prune tri-mode digest identity ----------------- *)

(* The gated demo DUV (see Designs.Gated): its "gate" µFSM reaches all four
   states under the plain FSM abstraction but only two once known-bits
   proves the gating register stuck at 0 — so exactly two covers are
   discharged by the absint prune, beyond the one the base prune gets. *)
let gated_config =
  {
    Mc.Checker.default_config with
    Mc.Checker.bmc_depth = 10;
    sim_episodes = 8;
    sim_cycles = 16;
  }

let run_gated absint =
  let design () = Designs.Gated.build () in
  Synthlc.Engine.run ~config:gated_config ~synth_config:gated_config ~absint
    ~design ~jobs:1
    ~instructions:[ Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD ]
    ~transmitters:[ Isa.ADD ]
    ~kinds:[ Synthlc.Types.Intrinsic ]
    ~revisit_count_labels:[] ~iuv_pc:Designs.Gated.iuv_pc ()

let synth_of r =
  match r.Synthlc.Engine.transponders with
  | [ t ] -> t.Synthlc.Engine.synth
  | _ -> Alcotest.fail "expected one transponder"

let test_absint_prune_digest_identical () =
  let on = run_gated Synthlc.Types.Prune_on in
  let off = run_gated Synthlc.Types.Prune_off in
  let audit = run_gated Synthlc.Types.Prune_audit in
  let d = Synthlc.Engine.report_digest in
  Alcotest.(check string) "digest on = off" (d off) (d on);
  Alcotest.(check string) "digest on = audit" (d audit) (d on);
  let duv_stats r = List.assoc "duv_pl" (synth_of r).Mupath.Synth.stage_stats in
  Alcotest.(check int) "on mode discharges two absint covers" 2
    (duv_stats on).Mupath.Synth.pruned_absint;
  Alcotest.(check int) "off mode discharges nothing" 0
    (duv_stats off).Mupath.Synth.pruned_absint;
  Alcotest.(check int) "audit mode discharges nothing" 0
    (duv_stats audit).Mupath.Synth.pruned_absint;
  (* The base prune is orthogonal and still fires (state st=3). *)
  Alcotest.(check int) "base static prune unaffected" 1
    (duv_stats on).Mupath.Synth.pruned_static;
  (* The dead states land in pruned_duv_states in every mode — they are
     part of the report digest, so mode-independence is load-bearing. *)
  let pruned r = (synth_of r).Mupath.Synth.pruned_duv_states in
  Alcotest.(check (list string)) "pruned states mode-independent"
    (pruned on) (pruned off);
  Alcotest.(check (list string)) "pruned states mode-independent (audit)"
    (pruned on) (pruned audit);
  Alcotest.(check bool) "gate µFSM states are among the pruned" true
    (List.exists (fun s -> String.length s >= 4 && String.sub s 0 4 = "gate")
       (pruned on))

(* Known-bits SAT substitution (Checker.known_bits) must not change any
   verdict: same workload, flag on vs off, bit-identical report. *)
let test_known_bits_encoding_digest_identical () =
  let run kb =
    let design () = Designs.Gated.build () in
    let config = { gated_config with Mc.Checker.known_bits = kb } in
    Synthlc.Engine.run ~config ~synth_config:config ~design ~jobs:1
      ~instructions:[ Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD ]
      ~transmitters:[ Isa.ADD ]
      ~kinds:[ Synthlc.Types.Intrinsic ]
      ~revisit_count_labels:[] ~iuv_pc:Designs.Gated.iuv_pc ()
  in
  let with_kb = run true and without_kb = run false in
  Alcotest.(check string) "digest identical across known_bits on/off"
    (Synthlc.Engine.report_digest without_kb)
    (Synthlc.Engine.report_digest with_kb)

(* Tri-mode identity on a built-in core (mirroring test_taint's flow-prune
   test): ibex_lite has no register-level known bits, so the refinement
   must discharge nothing — and, exactly because the dead/live partition
   is computed identically in every mode, the digest must still match. *)
let test_absint_noop_on_ibex () =
  let run absint =
    let design () = Designs.Ibex.build () in
    let stimulus ~pins ~rotate meta = Designs.Stimulus.ibex ~pins ~rotate meta in
    Synthlc.Engine.run ~config:Test_parallel.light_config
      ~synth_config:Test_parallel.light_config ~absint ~stimulus ~design
      ~jobs:1
      ~instructions:[ Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.DIV ]
      ~transmitters:[ Isa.DIV ]
      ~kinds:[ Synthlc.Types.Intrinsic ]
      ~revisit_count_labels:[ "divU" ] ~iuv_pc:Designs.Core.iuv_pc ()
  in
  let on = run Synthlc.Types.Prune_on in
  let off = run Synthlc.Types.Prune_off in
  let audit = run Synthlc.Types.Prune_audit in
  let d = Synthlc.Engine.report_digest in
  Alcotest.(check string) "digest on = off" (d off) (d on);
  Alcotest.(check string) "digest on = audit" (d audit) (d on);
  let absint_pruned (r : Synthlc.Engine.report) =
    List.fold_left
      (fun acc (t : Synthlc.Engine.transponder_report) ->
        List.fold_left
          (fun acc (_, (s : Mupath.Synth.stage_stats)) ->
            acc + s.Mupath.Synth.pruned_absint)
          acc t.Synthlc.Engine.synth.Mupath.Synth.stage_stats
        + t.Synthlc.Engine.flow_pruned_absint)
      0 r.Synthlc.Engine.transponders
  in
  Alcotest.(check int) "nothing to discharge on ibex_lite" 0
    (absint_pruned on)

let suite =
  ( "absint",
    [
      Alcotest.test_case "transfer rules" `Quick test_transfer_rules;
      Alcotest.test_case "fixpoint stuck register" `Quick
        test_fixpoint_stuck_register;
      Alcotest.test_case "enable-frozen register" `Quick
        test_enable_frozen_register;
      qcheck_containment_random;
      qcheck_containment_fuzz;
      Alcotest.test_case "built-in designs contained" `Quick
        test_builtin_designs_contained;
      Alcotest.test_case "fsm_reachable known-bits refinement" `Quick
        test_fsm_reachable_refined;
      Alcotest.test_case "taint_reach known-bits refinement" `Quick
        test_taint_reach_refined;
      Alcotest.test_case "absint prune digest-identical" `Quick
        test_absint_prune_digest_identical;
      Alcotest.test_case "known-bits encoding digest-identical" `Quick
        test_known_bits_encoding_digest_identical;
      Alcotest.test_case "absint no-op digest-identical on ibex" `Slow
        test_absint_noop_on_ibex;
    ] )
