(* Design-space fuzzing tests: generator determinism (same seed + config
   => identical netlist digest), generated designs always pass
   Netlist.validate and uLint admission, seeded metadata defects are
   caught by the lint oracle, and shrinking is sound — a shrunk config
   still reproduces the original oracle failure class (qcheck over the
   parameter lattice).  One engine-level battery on the minimal config
   keeps the expensive oracles (jobs/cache/prune/portfolio/grid) covered
   without ballooning tier-1 runtime. *)

module G = Fuzz.Gen
module O = Fuzz.Oracle
module Dr = Fuzz.Driver
module D = Lint.Diagnostic

let sampled_configs =
  (* A spread of lattice points: the two named anchors plus the first
     designs of two campaign seeds. *)
  [ G.minimal; G.default ]
  @ List.init 4 (fun i -> G.config_for ~seed:42 i)
  @ List.init 2 (fun i -> G.config_for ~seed:7 i)

let lint_errors cfg =
  let r = Lint.Driver.run_design (G.build cfg) in
  List.filter (fun (d : D.t) -> d.D.severity = D.Error) r.D.diags

let test_config_for_stable () =
  for i = 0 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "config_for 42 %d stable" i)
      true
      (G.config_for ~seed:42 i = G.config_for ~seed:42 i)
  done;
  let distinct =
    List.init 8 (fun i -> G.describe (G.config_for ~seed:42 i))
    |> List.sort_uniq compare |> List.length
  in
  Alcotest.(check bool) "campaign draws distinct configs" true (distinct >= 4)

let test_generator_determinism () =
  List.iter
    (fun cfg ->
      let d1 = Hdl.Netlist.digest (G.build cfg).Designs.Meta.nl in
      let d2 = Hdl.Netlist.digest (G.build cfg).Designs.Meta.nl in
      Alcotest.(check string) (G.describe cfg ^ ": digest stable") d1 d2)
    sampled_configs

let test_generated_valid_and_lint_clean () =
  List.iter
    (fun cfg ->
      let meta = G.build cfg in
      Hdl.Netlist.validate meta.Designs.Meta.nl;
      Alcotest.(check int)
        (G.describe cfg ^ ": uLint admission (no errors)")
        0
        (List.length (lint_errors cfg)))
    sampled_configs

let test_defects_detected () =
  let expect cfg code =
    let codes = List.map (fun (d : D.t) -> d.D.code) (lint_errors cfg) in
    Alcotest.(check bool)
      (Printf.sprintf "%s -> %s" (G.describe cfg) code)
      true (List.mem code codes)
  in
  List.iter
    (fun base ->
      expect { base with G.defect = Some G.Defect_label_idle } "L104";
      expect { base with G.defect = Some G.Defect_pc_width } "L102")
    [ G.minimal; G.default ]

let test_shrink_lattice () =
  Alcotest.(check int)
    "minimal has no shrink steps" 0
    (List.length (G.shrink_steps G.minimal));
  (* Every step preserves the defect and stays buildable + well-formed. *)
  let cfg = { G.default with G.defect = Some G.Defect_label_idle } in
  let steps = G.shrink_steps cfg in
  Alcotest.(check bool) "default has shrink steps" true (steps <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "shrink preserves defect" true
        (c.G.defect = Some G.Defect_label_idle);
      Hdl.Netlist.validate (G.build c).Designs.Meta.nl)
    steps;
  (* Greedy descent terminates at the lattice bottom on a lint-class
     failure (the lint oracle fires on every defect-injected config, so
     every reduction is accepted down to minimal-plus-defect). *)
  let shrunk, steps = Dr.shrink O.O_lint cfg in
  Alcotest.(check bool) "descent accepted steps" true (steps > 0);
  Alcotest.(check bool) "descent reaches lattice minimum" true
    ({ shrunk with G.defect = None } = G.minimal)

let test_reproducer_format () =
  Alcotest.(check string)
    "defaults omitted"
    "synthlc fuzz --seed 42 --only 3"
    (Dr.reproducer ~seed:42 ~depth:Dr.default_depth
       ~episodes:Dr.default_episodes ~defect:None 3);
  Alcotest.(check string)
    "defect and overrides spelled out"
    "synthlc fuzz --seed 7 --only 0 --inject-defect pc-width --depth 4 --episodes 2"
    (Dr.reproducer ~seed:7 ~depth:4 ~episodes:2
       ~defect:(Some G.Defect_pc_width) 0)

(* qcheck shrink-soundness: an arbitrary defect-injected lattice point
   fails the lint oracle, and the shrunk config reproduces that same
   failure class.  Lint-class failures stop the battery before any
   engine run, so each case stays cheap. *)
let arb_defective_config =
  QCheck.make
    ~print:(fun (s, d) ->
      G.describe { (G.sample (Random.State.make [| s |])) with G.defect = Some d })
    QCheck.Gen.(
      pair (int_bound 10_000)
        (oneofl [ G.Defect_label_idle; G.Defect_pc_width ]))

let prop_shrink_sound (s, d) =
  let cfg = { (G.sample (Random.State.make [| s |])) with G.defect = Some d } in
  let outcome = O.run cfg in
  match O.failure outcome with
  | Some (O.O_lint, _) ->
    let shrunk, _steps = Dr.shrink O.O_lint cfg in
    O.fails_like O.O_lint shrunk && shrunk.G.defect = Some d
  | _ -> false

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:6 ~name:"shrunk config reproduces failure class"
        arb_defective_config prop_shrink_sound;
    ]

(* Campaign-level contract on the cheap failing path: exit code 1, the
   failure row carries a shrunk config and a replayable reproducer, and
   the corpus JSON advertises the schema. *)
let test_campaign_defect_path () =
  let s =
    Dr.campaign ~seed:42 ~count:1 ~defect:(Some G.Defect_label_idle) ()
  in
  Alcotest.(check int) "divergence exit code" 1 (Dr.exit_code s);
  match s.Dr.failures with
  | [ f ] ->
    Alcotest.(check bool) "failure is lint-class" true (f.Dr.fr_oracle = O.O_lint);
    Alcotest.(check string)
      "reproducer line"
      "synthlc fuzz --seed 42 --only 0 --inject-defect label-idle"
      f.Dr.fr_reproducer;
    Alcotest.(check bool) "shrunk to lattice minimum" true
      ({ f.Dr.fr_shrunk with G.defect = None } = G.minimal);
    let json = Dr.summary_to_json s in
    let has sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length json && (String.sub json i n = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "corpus schema tag" true
      (has {|"schema":"synthlc-fuzz-corpus/1"|});
    Alcotest.(check bool) "corpus failure count" true (has {|"failures_count":1|})
  | l -> Alcotest.failf "expected one failure row, got %d" (List.length l)

(* One engine-level battery: the minimal config through every oracle
   (validate/lint/determinism/jobs/cache-warm/prune-modes/portfolio/
   sweep/grid), every verdict Pass. *)
let test_minimal_battery_green () =
  let outcome = O.run ~depth:5 ~episodes:2 G.minimal in
  List.iter
    (fun (orc, v) ->
      Alcotest.(check bool)
        ("oracle " ^ O.oracle_name orc ^ " passes")
        true (v = O.Pass))
    outcome.O.verdicts;
  Alcotest.(check bool) "battery produced a report digest" true
    (outcome.O.report_digest <> None)

let suite =
  ( "fuzz",
    [
      Alcotest.test_case "config_for is stable per (seed, index)" `Quick
        test_config_for_stable;
      Alcotest.test_case "same seed+config => identical netlist digest" `Quick
        test_generator_determinism;
      Alcotest.test_case "generated designs validate and pass uLint" `Quick
        test_generated_valid_and_lint_clean;
      Alcotest.test_case "seeded defects trip the lint oracle" `Quick
        test_defects_detected;
      Alcotest.test_case "shrink steps descend the lattice soundly" `Quick
        test_shrink_lattice;
      Alcotest.test_case "reproducer one-liner format" `Quick
        test_reproducer_format;
      Alcotest.test_case "defect campaign: exit 1, shrunk row, corpus JSON"
        `Quick test_campaign_defect_path;
      Alcotest.test_case "minimal config passes the full oracle battery"
        `Slow test_minimal_battery_green;
    ]
    @ qcheck_tests )
